// Reproduces paper Figure 20 / Section 6.6: comparison against the
// AutoAdmin relational-layout technique.
//
// Paper findings to reproduce:
//  * AutoAdmin's layout separates LINEITEM / ORDERS / I_L_ORDERKEY but,
//    misled by cardinality-estimate errors on temp space, keeps LINEITEM
//    on a single target so TEMP SPACE can be isolated;
//  * on OLAP1-63 the AutoAdmin layout performs about as well as the
//    advisor's (32634s vs 31789s; SEE 40927s);
//  * because AutoAdmin only sees SQL text, it recommends the *same* layout
//    for OLAP8-63 — where it is worse than SEE (19937s vs 16201s), while
//    the advisor's concurrency-aware layout is not;
//  * AutoAdmin produces its layout faster than the NLP-based advisor.

#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/autoadmin.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 20 / Sec 6.6", "AutoAdmin layout tool comparison",
              env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;
  auto olap1 = MakeOlapSpec(rig->catalog(), 3, 1, env.seed);
  auto olap8 = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
  if (!olap1.ok() || !olap8.ok()) return 1;

  // Advisor layouts (concurrency-aware: one per workload).
  auto advised1 = AdviseForWorkload(*rig, &*olap1, nullptr);
  auto advised8 = AdviseForWorkload(*rig, &*olap8, nullptr);
  if (!advised1.ok() || !advised8.ok()) return 1;

  // AutoAdmin layout: built from SQL-level estimates; identical for both
  // workloads by construction (it cannot see the concurrency level).
  AutoAdminAdvisor autoadmin;
  const auto t0 = std::chrono::steady_clock::now();
  auto estimates = EstimateQueriesFromSpec(
      *olap1, advised1->problem, AutoAdminOptions{}.temp_estimate_error);
  auto aa_layout = autoadmin.Recommend(advised1->problem, estimates);
  const double aa_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!aa_layout.ok()) return 1;

  std::printf("AutoAdmin layout (same for OLAP1-63 and OLAP8-63):\n%s\n",
              TopObjectsLayoutString(advised1->problem, *aa_layout, 8)
                  .c_str());

  TextTable table({"Workload", "SEE (s)", "AutoAdmin (s)", "Advisor (s)",
                   "Paper (SEE/AA/Advisor)"});
  double see8 = 0, aa8 = 0;
  for (int concurrency : {1, 8}) {
    const OlapSpec& olap = concurrency == 1 ? *olap1 : *olap8;
    const Layout& advisor_layout = concurrency == 1
                                       ? advised1->result.final_layout
                                       : advised8->result.final_layout;
    auto see_run = rig->Execute(SeeLayout(*rig), &olap, nullptr);
    auto aa_run = rig->Execute(*aa_layout, &olap, nullptr);
    auto adv_run = rig->Execute(advisor_layout, &olap, nullptr);
    if (!see_run.ok() || !aa_run.ok() || !adv_run.ok()) return 1;
    if (concurrency == 8) {
      see8 = see_run->elapsed_seconds;
      aa8 = aa_run->elapsed_seconds;
    }
    table.AddRow({olap.name, StrFormat("%.0f", see_run->elapsed_seconds),
                  StrFormat("%.0f", aa_run->elapsed_seconds),
                  StrFormat("%.0f", adv_run->elapsed_seconds),
                  concurrency == 1 ? "40927/32634/31789"
                                   : "16201/19937/13608"});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "AutoAdmin hurts under concurrency: OLAP8-63 AutoAdmin/SEE = %.2fx "
      "(paper 1.23x slower) %s\n",
      aa8 / see8, aa8 > see8 ? "[ok]" : "[MISS]");
  std::printf(
      "Tool running time: AutoAdmin %.3fs vs advisor %.3fs (paper: "
      "AutoAdmin about half the advisor's time) %s\n",
      aa_seconds, advised1->result.total_seconds(),
      aa_seconds < advised1->result.total_seconds() ? "[ok]" : "[MISS]");
  return 0;
}
