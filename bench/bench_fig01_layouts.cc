// Reproduces paper Figure 1: the SEE baseline layout vs. the
// advisor-recommended layout of the TPC-H database objects on four
// identical disks under the OLAP1-63 workload, shown for the most heavily
// accessed objects.
//
// Paper shape to reproduce: LINEITEM and ORDERS separated from each other;
// I_L_ORDERKEY separated from both; TEMP SPACE co-located with a rarely
// co-accessed object; low-rate objects on the least-loaded targets.

#include <cstdio>

#include "bench/bench_common.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 1", "SEE vs optimized layouts, OLAP1-63, 4 disks",
              env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  auto olap = MakeOlapSpec(rig->catalog(), 3, 1, env.seed);
  if (!olap.ok()) return 1;

  auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
  if (!advised.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advised.status().ToString().c_str());
    return 1;
  }

  std::printf("Baseline: stripe-everything-everywhere\n%s\n",
              TopObjectsLayoutString(advised->problem, SeeLayout(*rig), 8)
                  .c_str());
  std::printf("Advisor-recommended layout\n%s\n",
              TopObjectsLayoutString(advised->problem,
                                     advised->result.final_layout, 8)
                  .c_str());

  const auto t_li = advised->problem.workloads;
  (void)t_li;
  auto targets_of = [&](const char* name) {
    for (int i = 0; i < advised->problem.num_objects(); ++i) {
      if (advised->problem.object_names[static_cast<size_t>(i)] == name) {
        return advised->result.final_layout.TargetsOf(i);
      }
    }
    return std::vector<int>{};
  };
  const auto li = targets_of("LINEITEM");
  const auto ord = targets_of("ORDERS");
  int shared = 0;
  for (int j : li) {
    for (int k : ord) shared += (j == k);
  }
  std::printf(
      "Paper property check: LINEITEM on %zu target(s), ORDERS on %zu, "
      "sharing %d target(s) (paper: heavy sequential tables separated).\n",
      li.size(), ord.size(), shared);
  return 0;
}
