// Reproduces paper Figure 19: the layout advisor's running time as the
// problem grows — N objects x M targets — split into NLP-solver time and
// regularization time.
//
// Paper rows: OLAP8-63 (N=20, M=4) 3.6s; consolidation (N=40) on M=4/10/
// 20/40 (12.6s/57.2s/129s/226s); and synthetic 2x/3x/4x replications of
// the consolidation workload (N=80/120/160) on M=10 (59s/380s/662s).
// Shapes to reproduce: seconds-to-minutes totals at these scales, time
// growing with both N and M, and solver time dominating regularization.
//
// As in the paper's timing experiment, the advisor runs from a single
// initial layout (no multi-start).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

/// Replicates a problem's objects `copies` times (the paper's synthetic
/// 2x/3x/4x consolidation workloads): workload descriptions and sizes are
/// duplicated; overlap matrices extend block-diagonally (copies never
/// co-access each other).
LayoutProblem ReplicateObjects(const LayoutProblem& base, int copies) {
  LayoutProblem out = base;
  const int n = base.num_objects();
  out.object_names.clear();
  out.object_sizes.clear();
  out.object_kinds.clear();
  out.workloads.clear();
  for (int c = 0; c < copies; ++c) {
    for (int i = 0; i < n; ++i) {
      out.object_names.push_back(
          StrFormat("%s#%d", base.object_names[static_cast<size_t>(i)].c_str(),
                    c));
      out.object_sizes.push_back(base.object_sizes[static_cast<size_t>(i)]);
      out.object_kinds.push_back(base.object_kinds[static_cast<size_t>(i)]);
      WorkloadDesc w = base.workloads[static_cast<size_t>(i)];
      std::vector<double> overlap(static_cast<size_t>(n * copies), 0.0);
      for (int k = 0; k < n; ++k) {
        overlap[static_cast<size_t>(c * n + k)] = w.overlap[static_cast<size_t>(k)];
      }
      w.overlap = std::move(overlap);
      out.workloads.push_back(std::move(w));
    }
  }
  return out;
}

/// Swaps in `m` identical disk targets.
void UseTargets(LayoutProblem* problem, const AdvisorTarget& prototype,
                int m) {
  problem->targets.assign(static_cast<size_t>(m), prototype);
  for (int j = 0; j < m; ++j) {
    problem->targets[static_cast<size_t>(j)].name = StrFormat("disk%d", j);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 19", "advisor running time vs problem size", env);

  // Base problems: TPC-H under OLAP8-63 (N=20) and the consolidation
  // workload (N=40), both fitted on the standard four-disk rig.
  auto rig20 = FourDiskTpchRig(env);
  if (!rig20.ok()) return 1;
  auto olap8 = MakeOlapSpec(rig20->catalog(), 3, 8, env.seed);
  if (!olap8.ok()) return 1;
  auto ws20 = rig20->FitWorkloads(SeeLayout(*rig20), &*olap8, nullptr);
  if (!ws20.ok()) return 1;
  auto base20 = rig20->MakeProblem(std::move(ws20).value());
  if (!base20.ok()) return 1;

  Catalog merged = Catalog::Merge(Catalog::TpcH(env.scale),
                                  Catalog::TpcC(env.scale), "", "C_");
  auto rig40 = ExperimentRig::Create(
      merged, {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}}, env.scale,
      env.seed);
  if (!rig40.ok()) return 1;
  auto olap21 = MakeOlapSpec(rig40->catalog(), 1, 1, env.seed);
  auto oltp = MakeOltpSpec(rig40->catalog(), "C_", 9, 5.0);
  if (!olap21.ok() || !oltp.ok()) return 1;
  auto ws40 = rig40->FitWorkloads(SeeLayout(*rig40), &*olap21, &*oltp);
  if (!ws40.ok()) return 1;
  auto base40 = rig40->MakeProblem(std::move(ws40).value());
  if (!base40.ok()) return 1;

  const AdvisorTarget disk_proto = base20->targets[0];

  struct Row {
    const char* workload;
    const LayoutProblem* base;
    int copies;
    int m;
  };
  const Row rows[] = {
      {"OLAP8-63", &*base20, 1, 4},       {"consolidation", &*base40, 1, 4},
      {"consolidation", &*base40, 1, 10}, {"consolidation", &*base40, 1, 20},
      {"consolidation", &*base40, 1, 40}, {"2xconsolidation", &*base40, 2, 10},
      {"3xconsolidation", &*base40, 3, 10},
      {"4xconsolidation", &*base40, 4, 10},
  };

  AdvisorOptions options;
  options.extra_random_seeds = 0;  // paper's timing runs: one initial layout
  LayoutAdvisor advisor(options);

  TextTable table({"Workload", "N", "M", "Solver (s)", "Regularization (s)",
                   "Total (s)"});
  double previous_total = 0.0;
  bool monotone = true;
  for (const Row& row : rows) {
    LayoutProblem problem = row.copies == 1
                                ? *row.base
                                : ReplicateObjects(*row.base, row.copies);
    UseTargets(&problem, disk_proto, row.m);
    auto rec = advisor.Recommend(problem);
    if (!rec.ok()) {
      std::fprintf(stderr, "advisor (%s, M=%d): %s\n", row.workload, row.m,
                   rec.status().ToString().c_str());
      return 1;
    }
    table.AddRow({row.workload, StrFormat("%d", problem.num_objects()),
                  StrFormat("%d", row.m),
                  StrFormat("%.2f", rec->solver_seconds),
                  StrFormat("%.2f", rec->regularization_seconds),
                  StrFormat("%.2f", rec->total_seconds())});
    if (row.copies > 1) {
      monotone = monotone && rec->total_seconds() >= previous_total;
      previous_total = rec->total_seconds();
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shapes: totals grow with N and M; solver time dominates "
      "regularization; replicated workloads scale it further %s\n",
      monotone ? "[ok]" : "[check rows]");
  return 0;
}
