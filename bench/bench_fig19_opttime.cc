// Reproduces paper Figure 19: the layout advisor's running time as the
// problem grows — N objects x M targets — split into NLP-solver time and
// regularization time.
//
// Paper rows: OLAP8-63 (N=20, M=4) 3.6s; consolidation (N=40) on M=4/10/
// 20/40 (12.6s/57.2s/129s/226s); and synthetic 2x/3x/4x replications of
// the consolidation workload (N=80/120/160) on M=10 (59s/380s/662s).
// Shapes to reproduce: seconds-to-minutes totals at these scales, time
// growing with both N and M, and solver time dominating regularization.
//
// On top of the paper's figure, each row also benchmarks the solver's
// evaluation engines: the pre-cache baseline (full µ_j recomputation per
// finite-difference perturbation, serial), the incremental column cache
// (serially and with --threads workers), and the analytic-gradient engine
// (fused value+gradient kernel passes instead of FD perturbations). Each
// engine must produce the same final max-utilization for every thread
// count; the analytic engine is additionally checked bit-identical across
// thread counts {1, 2, --threads}. The baseline column is what makes the
// speedups measurable.
//
// Flags beyond the common bench set:
//   --row=<substr>    run only rows whose workload name contains <substr>
//   --skip-baseline   skip the slow pre-cache baseline advisor runs
//
// As in the paper's timing experiment, the advisor runs from a single
// initial layout (no multi-start).

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

/// Replicates a problem's objects `copies` times (the paper's synthetic
/// 2x/3x/4x consolidation workloads): workload descriptions and sizes are
/// duplicated; overlap matrices extend block-diagonally (copies never
/// co-access each other).
LayoutProblem ReplicateObjects(const LayoutProblem& base, int copies) {
  LayoutProblem out = base;
  const int n = base.num_objects();
  out.object_names.clear();
  out.object_sizes.clear();
  out.object_kinds.clear();
  out.workloads.clear();
  for (int c = 0; c < copies; ++c) {
    for (int i = 0; i < n; ++i) {
      out.object_names.push_back(
          StrFormat("%s#%d", base.object_names[static_cast<size_t>(i)].c_str(),
                    c));
      out.object_sizes.push_back(base.object_sizes[static_cast<size_t>(i)]);
      out.object_kinds.push_back(base.object_kinds[static_cast<size_t>(i)]);
      WorkloadDesc w = base.workloads[static_cast<size_t>(i)];
      std::vector<double> overlap(static_cast<size_t>(n * copies), 0.0);
      for (int k = 0; k < n; ++k) {
        overlap[static_cast<size_t>(c * n + k)] = w.overlap[static_cast<size_t>(k)];
      }
      w.overlap = std::move(overlap);
      out.workloads.push_back(std::move(w));
    }
  }
  return out;
}

/// Swaps in `m` identical disk targets.
void UseTargets(LayoutProblem* problem, const AdvisorTarget& prototype,
                int m) {
  problem->targets.assign(static_cast<size_t>(m), prototype);
  for (int j = 0; j < m; ++j) {
    problem->targets[static_cast<size_t>(j)].name = StrFormat("disk%d", j);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  std::string row_filter;
  bool skip_baseline = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--row=", 6) == 0) {
      row_filter = argv[a] + 6;
    } else if (std::strcmp(argv[a], "--skip-baseline") == 0) {
      skip_baseline = true;
    }
  }
  PrintHeader("Figure 19", "advisor running time vs problem size", env);

  // Base problems: TPC-H under OLAP8-63 (N=20) and the consolidation
  // workload (N=40), both fitted on the standard four-disk rig.
  auto rig20 = FourDiskTpchRig(env);
  if (!rig20.ok()) return 1;
  auto olap8 = MakeOlapSpec(rig20->catalog(), 3, 8, env.seed);
  if (!olap8.ok()) return 1;
  auto ws20 = rig20->FitWorkloads(SeeLayout(*rig20), &*olap8, nullptr);
  if (!ws20.ok()) return 1;
  auto base20 = rig20->MakeProblem(std::move(ws20).value());
  if (!base20.ok()) return 1;

  Catalog merged = Catalog::Merge(Catalog::TpcH(env.scale),
                                  Catalog::TpcC(env.scale), "", "C_");
  auto rig40 = MakeRig(env, merged,
                       {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
  if (!rig40.ok()) return 1;
  auto olap21 = MakeOlapSpec(rig40->catalog(), 1, 1, env.seed);
  auto oltp = MakeOltpSpec(rig40->catalog(), "C_", 9, 5.0);
  if (!olap21.ok() || !oltp.ok()) return 1;
  auto ws40 = rig40->FitWorkloads(SeeLayout(*rig40), &*olap21, &*oltp);
  if (!ws40.ok()) return 1;
  auto base40 = rig40->MakeProblem(std::move(ws40).value());
  if (!base40.ok()) return 1;

  const AdvisorTarget disk_proto = base20->targets[0];

  struct Row {
    const char* workload;
    const LayoutProblem* base;
    int copies;
    int m;
  };
  const Row rows[] = {
      {"OLAP8-63", &*base20, 1, 4},       {"consolidation", &*base40, 1, 4},
      {"consolidation", &*base40, 1, 10}, {"consolidation", &*base40, 1, 20},
      {"consolidation", &*base40, 1, 40}, {"2xconsolidation", &*base40, 2, 10},
      {"3xconsolidation", &*base40, 3, 10},
      {"4xconsolidation", &*base40, 4, 10},
  };

  // Engine configurations per row. "baseline" is the pre-cache serial FD
  // evaluator; "engine" adds the incremental column cache; "mt"
  // additionally fans the finite-difference columns out over threads.
  // "analytic" replaces the FD grid with fused value+gradient kernel
  // passes, serially and (for the invariance check) at 2 and --threads
  // workers. The FD engines pin gradient_mode = kFd so they stay
  // measurable as the comparison baseline.
  const int mt_threads = ThreadPool::EffectiveThreads(env.num_threads);
  AdvisorOptions baseline_opts;
  baseline_opts.extra_random_seeds = 0;  // paper timing runs: one seed
  baseline_opts.solver.gradient_mode = GradientMode::kFd;
  baseline_opts.solver.use_incremental_cache = false;
  baseline_opts.solver.num_threads = 1;
  AdvisorOptions engine_opts = baseline_opts;
  engine_opts.solver.use_incremental_cache = true;
  AdvisorOptions mt_opts = engine_opts;
  mt_opts.solver.num_threads = mt_threads;
  AdvisorOptions an_opts = engine_opts;
  an_opts.solver.gradient_mode = GradientMode::kAnalytic;
  an_opts.solver.num_threads = 1;
  AdvisorOptions an2_opts = an_opts;
  an2_opts.solver.num_threads = 2;
  AdvisorOptions anmt_opts = an_opts;
  anmt_opts.solver.num_threads = mt_threads;
  // The serial analytic run records its convergence trace: the analytic
  // engine takes cheaper steps but more of them (exact gradients keep
  // finding descent after FD's noisy ones stall), so the like-for-like
  // timing is time-to-FD-quality — when the trace first reaches the FD
  // engine's final max-utilization — not time-to-own-convergence.
  an_opts.solver.record_trace = true;
  const LayoutAdvisor baseline_advisor(baseline_opts);
  const LayoutAdvisor engine_advisor(engine_opts);
  const LayoutAdvisor mt_advisor(mt_opts);
  const LayoutAdvisor an_advisor(an_opts);
  const LayoutAdvisor an2_advisor(an2_opts);
  const LayoutAdvisor anmt_advisor(anmt_opts);

  TextTable table({"Workload", "N", "M", "Base (s)", "Cache (s)",
                   StrFormat("x%d thr (s)", mt_threads), "Analytic (s)",
                   "A-speedup", "TTQ-speedup", "Grad evals", "Incr evals",
                   "Regular. (s)"});
  JsonRows json;
  double previous_total = 0.0;
  bool monotone = true;
  bool deterministic = true;
  for (const Row& row : rows) {
    if (!row_filter.empty() &&
        std::string(row.workload).find(row_filter) == std::string::npos) {
      continue;
    }
    LayoutProblem problem = row.copies == 1
                                ? *row.base
                                : ReplicateObjects(*row.base, row.copies);
    UseTargets(&problem, disk_proto, row.m);
    auto engine_rec = engine_advisor.Recommend(problem);
    auto mt_rec = mt_advisor.Recommend(problem);
    auto an_rec = an_advisor.Recommend(problem);
    auto an2_rec = an2_advisor.Recommend(problem);
    auto anmt_rec = anmt_advisor.Recommend(problem);
    if (!engine_rec.ok() || !mt_rec.ok() || !an_rec.ok() || !an2_rec.ok() ||
        !anmt_rec.ok()) {
      std::fprintf(
          stderr, "advisor (%s, M=%d): %s\n", row.workload, row.m,
          (!engine_rec.ok()   ? engine_rec.status()
           : !mt_rec.ok()     ? mt_rec.status()
           : !an_rec.ok()     ? an_rec.status()
           : !an2_rec.ok()    ? an2_rec.status()
                              : anmt_rec.status())
              .ToString()
              .c_str());
      return 1;
    }
    double baseline_seconds = 0.0;
    int64_t baseline_evals = 0;
    if (!skip_baseline) {
      auto base_rec = baseline_advisor.Recommend(problem);
      if (!base_rec.ok()) {
        std::fprintf(stderr, "advisor (%s, M=%d): %s\n", row.workload, row.m,
                     base_rec.status().ToString().c_str());
        return 1;
      }
      baseline_seconds = base_rec->solver_seconds;
      baseline_evals = base_rec->solver_stats.objective_evaluations;
    }
    // Thread-count invariance: every engine must land on exactly the
    // serial run's answer; the analytic engine across {1, 2, mt}.
    const bool fd_same =
        mt_rec->solver_stats.max_utilization ==
            engine_rec->solver_stats.max_utilization &&
        mt_rec->solver_stats.layout == engine_rec->solver_stats.layout;
    const bool an_same =
        an2_rec->solver_stats.max_utilization ==
            an_rec->solver_stats.max_utilization &&
        an2_rec->solver_stats.layout == an_rec->solver_stats.layout &&
        anmt_rec->solver_stats.max_utilization ==
            an_rec->solver_stats.max_utilization &&
        anmt_rec->solver_stats.layout == an_rec->solver_stats.layout;
    const bool same = fd_same && an_same;
    deterministic = deterministic && same;

    const double speedup =
        mt_rec->solver_seconds > 0.0 && !skip_baseline
            ? baseline_seconds / mt_rec->solver_seconds
            : 0.0;
    // The headline number: analytic serial vs incremental-FD serial —
    // same thread budget, engine change only.
    const double analytic_speedup =
        an_rec->solver_seconds > 0.0
            ? engine_rec->solver_seconds / an_rec->solver_seconds
            : 0.0;
    const double max_util_diff_vs_fd =
        an_rec->solver_stats.max_utilization -
        engine_rec->solver_stats.max_utilization;
    // Time-to-matched-quality: elapsed solve time at the first traced
    // accepted step whose true max µ is no worse than the FD engine's
    // final answer. When the engines land in different basins and the
    // analytic run never gets there, its full solve time is charged.
    const double fd_quality = engine_rec->solver_stats.max_utilization;
    double ttq_seconds = an_rec->solver_seconds;
    bool reached_fd_quality = false;
    for (const SolverTracePoint& p : an_rec->solver_stats.trace) {
      if (p.true_max <= fd_quality) {
        ttq_seconds = static_cast<double>(p.ns) * 1e-9;
        reached_fd_quality = true;
        break;
      }
    }
    const double ttq_speedup =
        ttq_seconds > 0.0 ? engine_rec->solver_seconds / ttq_seconds : 0.0;
    const SolverProfile& prof = an_rec->solver_stats.profile;
    table.AddRow({row.workload, StrFormat("%d", problem.num_objects()),
                  StrFormat("%d", row.m),
                  skip_baseline ? std::string("-")
                                : StrFormat("%.2f", baseline_seconds),
                  StrFormat("%.2f", engine_rec->solver_seconds),
                  StrFormat("%.2f%s", mt_rec->solver_seconds,
                            same ? "" : " [MISMATCH]"),
                  StrFormat("%.3f", an_rec->solver_seconds),
                  StrFormat("%.1fx", analytic_speedup),
                  StrFormat("%.1fx%s", ttq_speedup,
                            reached_fd_quality ? "" : " [unmatched]"),
                  StrFormat("%lld",
                            static_cast<long long>(
                                an_rec->solver_stats.gradient_evaluations)),
                  StrFormat("%lld",
                            static_cast<long long>(
                                mt_rec->solver_stats.incremental_evaluations)),
                  StrFormat("%.2f", mt_rec->regularization_seconds)});
    if (env.json) {
      json.BeginRow();
      json.Field("workload", row.workload);
      json.Field("n", problem.num_objects());
      json.Field("m", row.m);
      json.Field("threads", mt_threads);
      json.Field("baseline_solver_seconds", baseline_seconds);
      json.Field("cache_solver_seconds", engine_rec->solver_seconds);
      json.Field("mt_solver_seconds", mt_rec->solver_seconds);
      json.Field("analytic_solver_seconds", an_rec->solver_seconds);
      json.Field("analytic_mt_solver_seconds", anmt_rec->solver_seconds);
      json.Field("speedup", speedup);
      json.Field("analytic_speedup", analytic_speedup);
      json.Field("analytic_time_to_fd_quality_seconds", ttq_seconds);
      json.Field("analytic_ttq_speedup", ttq_speedup);
      json.Field("analytic_reached_fd_quality", reached_fd_quality);
      json.Field("baseline_objective_evaluations", baseline_evals);
      json.Field("objective_evaluations",
                 mt_rec->solver_stats.objective_evaluations);
      json.Field("incremental_evaluations",
                 mt_rec->solver_stats.incremental_evaluations);
      json.Field("gradient_evaluations",
                 an_rec->solver_stats.gradient_evaluations);
      json.Field("interp_queries", an_rec->solver_stats.interp_queries);
      json.Field("gradient_ns", prof.gradient.ns);
      json.Field("line_search_ns", prof.line_search.ns);
      json.Field("refresh_ns", prof.refresh.ns);
      const SolverProfile& fd_prof = engine_rec->solver_stats.profile;
      json.Field("fd_iterations", engine_rec->solver_stats.iterations);
      json.Field("analytic_iterations", an_rec->solver_stats.iterations);
      json.Field("fd_gradient_ns", fd_prof.gradient.ns);
      json.Field("fd_line_search_ns", fd_prof.line_search.ns);
      json.Field("fd_refresh_ns", fd_prof.refresh.ns);
      json.Field("regularization_seconds", mt_rec->regularization_seconds);
      json.Field("total_seconds", mt_rec->total_seconds());
      json.Field("max_utilization", mt_rec->solver_stats.max_utilization);
      json.Field("analytic_max_utilization",
                 an_rec->solver_stats.max_utilization);
      json.Field("max_util_diff_vs_fd", max_util_diff_vs_fd);
      json.Field("thread_invariant", same);
      json.Field("analytic_thread_invariant", an_same);
    }
    if (row.copies > 1) {
      monotone = monotone && mt_rec->total_seconds() >= previous_total;
      previous_total = mt_rec->total_seconds();
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shapes: totals grow with N and M; solver time dominates "
      "regularization; replicated workloads scale it further %s\n",
      monotone ? "[ok]" : "[check rows]");
  std::printf(
      "Engine: identical layouts and max-utilization across thread "
      "counts (FD mt vs serial; analytic across {1, 2, %d}) %s\n",
      mt_threads, deterministic ? "[ok]" : "[MISMATCH]");
  if (env.json && !json.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return deterministic ? 0 : 1;
}
