// Reproduces paper Figure 11: workload execution times under the SEE
// baseline and the advisor's optimized layout on four identical disks, for
// OLAP1-63 and OLAP8-63.
//
// Paper numbers: OLAP1-63 40927s -> 31879s (1.28x); OLAP8-63 16201s ->
// 13608s (1.19x). Shape to reproduce: the optimized layout wins on both,
// with a larger gain at concurrency 1 than at concurrency 8.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 11",
              "SEE vs optimized execution times, homogeneous targets", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;

  TextTable table({"Workload", "SEE (s)", "Optimized (s)", "Speedup",
                   "Paper speedup"});
  JsonRows json;
  struct Row {
    int concurrency;
    const char* paper;
    double paper_speedup;
  };
  for (const Row& r : {Row{1, "1.28x", 1.28}, Row{8, "1.19x", 1.19}}) {
    auto olap = MakeOlapSpec(rig->catalog(), 3, r.concurrency, env.seed);
    if (!olap.ok()) return 1;
    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) {
      std::fprintf(stderr, "advisor: %s\n",
                   advised.status().ToString().c_str());
      return 1;
    }
    auto see_run = rig->Execute(SeeLayout(*rig), &*olap, nullptr);
    auto opt_run =
        rig->Execute(advised->result.final_layout, &*olap, nullptr);
    if (!see_run.ok() || !opt_run.ok()) return 1;
    const double speedup =
        see_run->elapsed_seconds / opt_run->elapsed_seconds;
    table.AddRow({olap->name,
                  StrFormat("%.0f", see_run->elapsed_seconds),
                  StrFormat("%.0f", opt_run->elapsed_seconds),
                  StrFormat("%.2fx", speedup), r.paper});
    if (env.json) {
      json.BeginRow();
      json.Field("workload", olap->name);
      json.Field("concurrency", r.concurrency);
      json.Field("see_seconds", see_run->elapsed_seconds);
      json.Field("optimized_seconds", opt_run->elapsed_seconds);
      json.Field("speedup", speedup);
      json.Field("paper_speedup", r.paper_speedup);
      json.Field("advisor_seconds", advised->result.total_seconds());
    }
  }
  std::printf("%s", table.ToString().c_str());
  if (env.json && !json.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return 0;
}
