// Reproduces paper Figure 11: workload execution times under the SEE
// baseline and the advisor's optimized layout on four identical disks, for
// OLAP1-63 and OLAP8-63.
//
// Paper numbers: OLAP1-63 40927s -> 31879s (1.28x); OLAP8-63 16201s ->
// 13608s (1.19x). Shape to reproduce: the optimized layout wins on both,
// with a larger gain at concurrency 1 than at concurrency 8.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 11",
              "SEE vs optimized execution times, homogeneous targets", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;

  TextTable table({"Workload", "SEE (s)", "Optimized (s)", "Speedup",
                   "Paper speedup"});
  struct Row {
    int concurrency;
    const char* paper;
  };
  for (const Row& r : {Row{1, "1.28x"}, Row{8, "1.19x"}}) {
    auto olap = MakeOlapSpec(rig->catalog(), 3, r.concurrency, env.seed);
    if (!olap.ok()) return 1;
    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) {
      std::fprintf(stderr, "advisor: %s\n",
                   advised.status().ToString().c_str());
      return 1;
    }
    auto see_run = rig->Execute(SeeLayout(*rig), &*olap, nullptr);
    auto opt_run =
        rig->Execute(advised->result.final_layout, &*olap, nullptr);
    if (!see_run.ok() || !opt_run.ok()) return 1;
    table.AddRow({olap->name,
                  StrFormat("%.0f", see_run->elapsed_seconds),
                  StrFormat("%.0f", opt_run->elapsed_seconds),
                  StrFormat("%.2fx", see_run->elapsed_seconds /
                                         opt_run->elapsed_seconds),
                  r.paper});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
