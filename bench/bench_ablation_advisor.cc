// Ablation study of the layout advisor's design choices (the decisions
// DESIGN.md calls out): seed choice, multi-start, smooth-max annealing,
// regularizer refinement, and the regularizer's balancing candidates.
//
// Paper connections:
//  * "SEE seed" tests the paper's observation (Section 4.2) that SEE is a
//    local optimum the solver struggles to escape — expect little or no
//    improvement from that seed;
//  * "no balancing candidates" ablates the second candidate class of
//    Section 4.3, whose purpose is correcting regularization imbalance.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include <chrono>

#include "core/initial.h"
#include "solver/projected_gradient.h"
#include "solver/randomized.h"
#include "util/table.h"
#include "workload/estimator.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Ablation", "advisor design choices, OLAP1-63 problem", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;
  auto olap = MakeOlapSpec(rig->catalog(), 3, 1, env.seed);
  if (!olap.ok()) return 1;
  auto workloads = rig->FitWorkloads(SeeLayout(*rig), &*olap, nullptr);
  if (!workloads.ok()) return 1;
  auto problem = rig->MakeProblem(std::move(workloads).value());
  if (!problem.ok()) return 1;
  const TargetModel model = problem->MakeTargetModel();
  const double see_mu =
      model.MaxUtilization(problem->workloads, SeeLayout(*rig));

  TextTable table({"Variant", "Est. max util", "Measured (s)",
                   "Advisor time (s)"});
  auto run_variant = [&](const char* name, AdvisorOptions options,
                         const Layout* forced_seed) {
    LayoutAdvisor advisor(options);
    Result<AdvisorResult> rec = Status::Internal("unset");
    if (forced_seed == nullptr) {
      rec = advisor.Recommend(*problem);
    } else {
      // Bypass the heuristic seed: run the bare solver + regularizer.
      const LayoutNlpProblem nlp = problem->MakeNlp(&model);
      ProjectedGradientSolver solver(options.solver);
      auto solved = solver.Solve(nlp, *forced_seed);
      if (!solved.ok()) {
        std::fprintf(stderr, "%s: %s\n", name,
                     solved.status().ToString().c_str());
        return;
      }
      AdvisorResult result;
      Regularizer regularizer(&*problem, &model, options.regularizer);
      auto regular = regularizer.Regularize(solved->layout);
      if (!regular.ok()) return;
      result.final_layout = std::move(regular).value();
      result.utilization_final =
          model.Utilizations(problem->workloads, result.final_layout);
      result.max_utilization_final =
          *std::max_element(result.utilization_final.begin(),
                            result.utilization_final.end());
      rec = std::move(result);
    }
    if (!rec.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   rec.status().ToString().c_str());
      return;
    }
    auto run = rig->Execute(rec->final_layout, &*olap, nullptr);
    if (!run.ok()) return;
    table.AddRow({name,
                  StrFormat("%.1f%%", 100 * rec->max_utilization_final),
                  StrFormat("%.0f", run->elapsed_seconds),
                  StrFormat("%.2f", rec->total_seconds())});
  };

  auto see_run = rig->Execute(SeeLayout(*rig), &*olap, nullptr);
  if (!see_run.ok()) return 1;
  table.AddRow({"SEE baseline (no advisor)",
                StrFormat("%.1f%%", 100 * see_mu),
                StrFormat("%.0f", see_run->elapsed_seconds), "-"});

  run_variant("full advisor (default)", AdvisorOptions{}, nullptr);

  AdvisorOptions no_multistart;
  no_multistart.extra_random_seeds = 0;
  run_variant("single seed (no multi-start)", no_multistart, nullptr);

  AdvisorOptions no_anneal;
  no_anneal.solver.smoothmax_t0 = 2000.0;
  no_anneal.solver.smoothmax_growth = 1.0;
  run_variant("no smooth-max annealing", no_anneal, nullptr);

  AdvisorOptions no_refine;
  no_refine.regularizer.refinement_passes = 0;
  run_variant("regularizer: no refinement", no_refine, nullptr);

  AdvisorOptions no_balance;
  no_balance.regularizer.balancing_candidates = false;
  run_variant("regularizer: consistent candidates only", no_balance,
              nullptr);

  const Layout see_seed = SeeLayout(*rig);
  run_variant("solver seeded at SEE (paper's local-optimum trap)",
              AdvisorOptions{}, &see_seed);

  // Alternative solver (paper Section 7): DAD-style randomized search
  // over regular layouts, no regularization step needed.
  {
    const TargetModel rnd_model = problem->MakeTargetModel();
    const LayoutNlpProblem nlp = problem->MakeNlp(&rnd_model);
    auto seed = InitialLayout(*problem);
    if (seed.ok()) {
      const auto t0 = std::chrono::steady_clock::now();
      RandomizedSearchSolver rnd;
      auto r = rnd.Solve(nlp, *seed);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (r.ok()) {
        auto run = rig->Execute(r->layout, &*olap, nullptr);
        if (run.ok()) {
          table.AddRow({"randomized search (DAD-style, Sec. 7)",
                        StrFormat("%.1f%%", 100 * r->max_utilization),
                        StrFormat("%.0f", run->elapsed_seconds),
                        StrFormat("%.2f", secs)});
        }
      }
    }
  }

  // Input-path ablation: estimator-derived workload descriptions instead
  // of trace-fitted ones (paper Section 5.1: convenient but less
  // accurate).
  {
    auto est = EstimateWorkloads(rig->catalog(), &*olap, nullptr);
    if (est.ok()) {
      auto est_problem = rig->MakeProblem(std::move(est).value());
      if (est_problem.ok()) {
        LayoutAdvisor advisor;
        auto rec = advisor.Recommend(*est_problem);
        if (rec.ok()) {
          auto run = rig->Execute(rec->final_layout, &*olap, nullptr);
          if (run.ok()) {
            // Estimated utilization is not comparable across workload
            // inputs; report the measured time only.
            table.AddRow({"estimator-driven workloads (no tracing)", "-",
                          StrFormat("%.0f", run->elapsed_seconds),
                          StrFormat("%.2f", rec->total_seconds())});
          }
        }
      }
    }
  }

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected: the full advisor leads; the SEE seed barely improves on "
      "SEE (a symmetric local optimum); dropping refinement or balancing "
      "candidates costs quality.\n");
  return 0;
}
