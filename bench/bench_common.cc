#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

#include "util/table.h"

namespace ldb {
namespace bench {

BenchEnv ParseBenchEnv(int argc, char** argv) {
  BenchEnv env;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      env.scale = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--seed=", 7) == 0) {
      env.seed = static_cast<uint64_t>(std::atoll(argv[a] + 7));
    }
  }
  LDB_CHECK_GT(env.scale, 0.0);
  return env;
}

void PrintHeader(const char* figure, const char* description,
                 const BenchEnv& env) {
  std::printf("=== %s: %s\n", figure, description);
  std::printf(
      "    (simulated testbed at scale %.3g, seed %llu; speedups and "
      "orderings are the reproduction targets, not absolute times)\n\n",
      env.scale, static_cast<unsigned long long>(env.seed));
}

Result<ExperimentRig> FourDiskTpchRig(const BenchEnv& env) {
  return ExperimentRig::Create(
      Catalog::TpcH(env.scale),
      {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}}, env.scale, env.seed);
}

Layout SeeLayout(const ExperimentRig& rig) {
  return Layout::StripeEverythingEverywhere(rig.catalog().num_objects(),
                                            rig.num_targets());
}

Result<AdvisedLayout> AdviseForWorkload(const ExperimentRig& rig,
                                        const OlapSpec* olap,
                                        const OltpSpec* oltp,
                                        AdvisorOptions options,
                                        double oltp_duration_s) {
  auto workloads =
      rig.FitWorkloads(SeeLayout(rig), olap, oltp, oltp_duration_s);
  if (!workloads.ok()) return workloads.status();
  auto problem = rig.MakeProblem(std::move(workloads).value());
  if (!problem.ok()) return problem.status();
  LayoutAdvisor advisor(options);
  auto result = advisor.Recommend(*problem);
  if (!result.ok()) return result.status();
  return AdvisedLayout{std::move(problem).value(),
                       std::move(result).value()};
}

std::string TopObjectsLayoutString(const LayoutProblem& problem,
                                   const Layout& layout, int count) {
  std::vector<int> order(static_cast<size_t>(problem.num_objects()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return problem.workloads[static_cast<size_t>(a)].total_rate() >
           problem.workloads[static_cast<size_t>(b)].total_rate();
  });
  const int n = std::min<int>(count, problem.num_objects());

  std::vector<std::string> header{"Object"};
  for (int j = 0; j < layout.num_targets(); ++j) {
    header.push_back(problem.targets[static_cast<size_t>(j)].name);
  }
  TextTable table(std::move(header));
  for (int rank = 0; rank < n; ++rank) {
    const int i = order[static_cast<size_t>(rank)];
    std::vector<std::string> row{problem.object_names[static_cast<size_t>(i)]};
    for (int j = 0; j < layout.num_targets(); ++j) {
      const double v = layout.At(i, j);
      row.push_back(v <= 1e-9 ? "." : StrFormat("%.0f%%", 100.0 * v));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace bench
}  // namespace ldb
