#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <utility>

#include "util/table.h"

namespace ldb {
namespace bench {

BenchEnv ParseBenchEnv(int argc, char** argv) {
  BenchEnv env;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--scale=", 8) == 0) {
      env.scale = std::atof(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--seed=", 7) == 0) {
      env.seed = static_cast<uint64_t>(std::atoll(argv[a] + 7));
    } else if (std::strncmp(argv[a], "--threads=", 10) == 0) {
      env.num_threads = std::atoi(argv[a] + 10);
    } else if (std::strcmp(argv[a], "--json") == 0) {
      env.json = true;
      env.json_path = "-";
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      env.json = true;
      env.json_path = argv[a] + 7;
    } else if (std::strncmp(argv[a], "--calibration-cache=", 20) == 0) {
      env.calibration_cache = argv[a] + 20;
    }
  }
  LDB_CHECK_GT(env.scale, 0.0);
  LDB_CHECK_GE(env.num_threads, 0);
  return env;
}

void JsonRows::BeginRow() { rows_.emplace_back(); }

void JsonRows::Append(const std::string& name, const std::string& rendered) {
  LDB_CHECK(!rows_.empty());
  std::string& row = rows_.back();
  if (!row.empty()) row += ",";
  row += "\"";
  row += name;
  row += "\":";
  row += rendered;
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}
}  // namespace

void JsonRows::Field(const std::string& name, const std::string& value) {
  Append(name, JsonEscape(value));
}
void JsonRows::Field(const std::string& name, const char* value) {
  Append(name, JsonEscape(value));
}
void JsonRows::Field(const std::string& name, double value) {
  Append(name, StrFormat("%.9g", value));
}
void JsonRows::Field(const std::string& name, int64_t value) {
  Append(name, StrFormat("%lld", static_cast<long long>(value)));
}
void JsonRows::Field(const std::string& name, int value) {
  Field(name, static_cast<int64_t>(value));
}
void JsonRows::Field(const std::string& name, bool value) {
  Append(name, value ? "true" : "false");
}

std::string JsonRows::ToString() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ",";
    out += "\n  {";
    out += rows_[r];
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool JsonRows::WriteTo(const std::string& path) const {
  const std::string text = ToString();
  if (path.empty() || path == "-") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void PrintHeader(const char* figure, const char* description,
                 const BenchEnv& env) {
  std::printf("=== %s: %s\n", figure, description);
  std::printf(
      "    (simulated testbed at scale %.3g, seed %llu; speedups and "
      "orderings are the reproduction targets, not absolute times)\n\n",
      env.scale, static_cast<unsigned long long>(env.seed));
}

CalibrationOptions RigCalibration(const BenchEnv& env) {
  CalibrationOptions cal;
  cal.num_threads = env.num_threads;
  cal.cache_dir = env.calibration_cache;
  return cal;
}

Result<ExperimentRig> MakeRig(const BenchEnv& env, Catalog catalog,
                              std::vector<RigTargetDef> targets) {
  return ExperimentRig::Create(std::move(catalog), std::move(targets),
                               env.scale, env.seed, RigCalibration(env));
}

Result<ExperimentRig> FourDiskTpchRig(const BenchEnv& env) {
  return MakeRig(env, Catalog::TpcH(env.scale),
                 {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
}

Layout SeeLayout(const ExperimentRig& rig) {
  return Layout::StripeEverythingEverywhere(rig.catalog().num_objects(),
                                            rig.num_targets());
}

Result<AdvisedLayout> AdviseForWorkload(const ExperimentRig& rig,
                                        const OlapSpec* olap,
                                        const OltpSpec* oltp,
                                        AdvisorOptions options,
                                        double oltp_duration_s) {
  auto workloads =
      rig.FitWorkloads(SeeLayout(rig), olap, oltp, oltp_duration_s);
  if (!workloads.ok()) return workloads.status();
  auto problem = rig.MakeProblem(std::move(workloads).value());
  if (!problem.ok()) return problem.status();
  LayoutAdvisor advisor(options);
  auto result = advisor.Recommend(*problem);
  if (!result.ok()) return result.status();
  return AdvisedLayout{std::move(problem).value(),
                       std::move(result).value()};
}

std::string TopObjectsLayoutString(const LayoutProblem& problem,
                                   const Layout& layout, int count) {
  std::vector<int> order(static_cast<size_t>(problem.num_objects()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return problem.workloads[static_cast<size_t>(a)].total_rate() >
           problem.workloads[static_cast<size_t>(b)].total_rate();
  });
  const int n = std::min<int>(count, problem.num_objects());

  std::vector<std::string> header{"Object"};
  for (int j = 0; j < layout.num_targets(); ++j) {
    header.push_back(problem.targets[static_cast<size_t>(j)].name);
  }
  TextTable table(std::move(header));
  for (int rank = 0; rank < n; ++rank) {
    const int i = order[static_cast<size_t>(rank)];
    std::vector<std::string> row{problem.object_names[static_cast<size_t>(i)]};
    for (int j = 0; j < layout.num_targets(); ++j) {
      const double v = layout.At(i, j);
      row.push_back(v <= 1e-9 ? "." : StrFormat("%.0f%%", 100.0 * v));
    }
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace bench
}  // namespace ldb
