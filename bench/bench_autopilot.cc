// Closed-loop layout autopilot benchmark: phase-shift scenarios where the
// live workload departs from what the deployed layout was advised for, and
// the autopilot must notice, re-advise, and migrate online.
//
// Protocol (consolidated TPC-H + TPC-C catalog on four disks):
//   1. Day/night alternation: the layout is advised for the OLTP "day";
//      then the workload flips to the OLAP "night" and back, twice. After
//      every phase the autopilot's deployed layout is scored (model max
//      utilization under that phase's fitted workloads) against an oracle
//      that re-advises per phase, and against the static day layout.
//      Acceptance: autopilot within 5% of the oracle after every phase;
//      the static layout measurably worse on the night phases.
//   2. Consolidation ramp: the layout is advised for OLAP alone; OLTP
//      terminals then ramp in alongside it. Same scoring.
//   3. Cost-benefit gate: with an impossibly high gain bar the autopilot
//      trips, prices the migration, and suppresses it — the deployed
//      layout must survive untouched (the gate working as designed).
//   4. Determinism: one full drift->migrate phase repeated with solver
//      threads 1/2/8 must produce bit-identical reports (fingerprints).
//   5. Monitor overhead: with drift disabled the autopilot is a pure
//      observer — the run must match plain Execute bit for bit, and the
//      wall-clock overhead of the streaming analyzer stays small (the
//      per-event cost is pinned by bench_micro's BM_OnlineAnalyzerObserve).
//
// --json emits machine-readable rows for all five stages.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/autopilot.h"
#include "model/target_model.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

// Fast-reacting loop for short benchmark phases: two consecutive
// above-threshold evaluations to trip and a generous amortization
// horizon so genuinely better layouts pass the gate. The analyzer
// window tracks the testbed scale: OLAP phase length is proportional
// to data volume, and a window tuned for the default 0.05 scale would
// straddle whole phases at smaller smoke scales.
AutopilotOptions LoopOptions(const BenchEnv& env) {
  AutopilotOptions o;
  o.config.analyzer.half_life_s = std::max(5.0, 25.0 * (env.scale / 0.05));
  o.config.check_interval_s = 2.0;
  o.config.drift.threshold = 0.3;
  o.config.drift.trip_evaluations = 2;
  o.config.drift.cooldown_s = 10.0;
  o.config.gate_min_gain = 0.01;
  o.config.gate_horizon_s = 2000.0;
  o.advisor.solver.num_threads = env.num_threads;
  return o;
}

struct PhaseScore {
  double autopilot_util = 0.0;
  double oracle_util = 0.0;
  double static_util = 0.0;
  bool within = false;
};

PhaseScore ScorePhase(const TargetModel& model, const WorkloadSet& phase_ws,
                      const Layout& autopilot_layout,
                      const Layout& static_layout, double oracle_util) {
  PhaseScore s;
  s.autopilot_util = model.MaxUtilization(phase_ws, autopilot_layout);
  s.oracle_util = oracle_util;
  s.static_util = model.MaxUtilization(phase_ws, static_layout);
  // Within 5% of the oracle, with a small absolute slack so near-zero
  // utilizations do not produce false misses.
  s.within = s.autopilot_util <= s.oracle_util * 1.05 + 0.01;
  return s;
}

double WallSeconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Autopilot",
              "closed-loop drift detection and cost-gated online re-layout",
              env);

  Catalog merged = Catalog::Merge(Catalog::TpcH(env.scale),
                                  Catalog::TpcC(env.scale), "", "C_");
  auto rig = MakeRig(env, merged,
                     {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  const int n = rig->catalog().num_objects();
  const Layout see = SeeLayout(*rig);

  auto olap = MakeOlapSpec(rig->catalog(), 1, 1, env.seed);
  auto oltp = MakeOltpSpec(rig->catalog(), "C_", 9, /*warmup_s=*/0.0);
  auto oltp_light = MakeOltpSpec(rig->catalog(), "C_", 3, /*warmup_s=*/0.0);
  if (!olap.ok() || !oltp.ok() || !oltp_light.ok()) return 1;
  constexpr double kDayS = 60.0;

  // Fit each phase's workload description once (under SEE, the tracing
  // layout) and advise the per-phase oracle layouts.
  auto ws_day = rig->FitWorkloads(see, nullptr, &*oltp, kDayS);
  auto ws_night = rig->FitWorkloads(see, &*olap, nullptr);
  auto ws_mix_light = rig->FitWorkloads(see, &*olap, &*oltp_light);
  auto ws_mix_heavy = rig->FitWorkloads(see, &*olap, &*oltp);
  if (!ws_day.ok() || !ws_night.ok() || !ws_mix_light.ok() ||
      !ws_mix_heavy.ok()) {
    std::fprintf(stderr, "workload fit failed\n");
    return 1;
  }

  AdvisorOptions adv_options;
  adv_options.solver.num_threads = env.num_threads;
  LayoutAdvisor advisor(adv_options);
  struct Oracle {
    Layout layout;
    double max_util = 0.0;
    Oracle() : layout(1, 1) {}
  };
  auto advise = [&](const WorkloadSet& ws) -> Result<Oracle> {
    auto problem = rig->MakeProblem(ws);
    if (!problem.ok()) return problem.status();
    auto r = advisor.Recommend(*problem);
    if (!r.ok()) return r.status();
    Oracle o;
    o.layout = r->final_layout;
    o.max_util = r->max_utilization_final;
    return o;
  };
  auto day_adv = advise(*ws_day);
  auto night_adv = advise(*ws_night);
  auto mix_light_adv = advise(*ws_mix_light);
  auto mix_heavy_adv = advise(*ws_mix_heavy);
  if (!day_adv.ok() || !night_adv.ok() || !mix_light_adv.ok() ||
      !mix_heavy_adv.ok()) {
    std::fprintf(stderr, "oracle advise failed\n");
    return 1;
  }
  auto problem_day = rig->MakeProblem(*ws_day);
  if (!problem_day.ok()) return 1;
  const TargetModel model = problem_day->MakeTargetModel();

  JsonRows json;
  bool all_ok = true;
  // Phase lengths scale with data volume, so the oracle-tracking bars
  // are only meaningful when phases are long enough for the loop's time
  // constants — enforce them at the default scale and above, report
  // them otherwise. Structural checks (static-worse, gate suppression,
  // determinism, bit-identity, overhead) hold at any scale.
  const bool enforce_quality_bars = env.scale >= 0.05 - 1e-12;
  if (!enforce_quality_bars) {
    std::printf(
        "note: scale %.3f < 0.05 — oracle-tracking bars reported, not "
        "enforced (phases too short for the loop's window)\n",
        env.scale);
  }

  // ---- 1. OLTP-day / OLAP-night alternation. ----
  struct Phase {
    const char* name;
    const OlapSpec* olap;
    const OltpSpec* oltp;
    double duration_s;
    const WorkloadSet* ws;
    const Oracle* oracle;
  };
  {
    std::printf("\nDay/night alternation (deployed: day-advised layout)\n");
    const std::vector<Phase> phases = {
        {"night-1", &*olap, nullptr, 0.0, &*ws_night, &*night_adv},
        {"day-2", nullptr, &*oltp, kDayS, &*ws_day, &*day_adv},
        {"night-2", &*olap, nullptr, 0.0, &*ws_night, &*night_adv},
    };
    TextTable table({"Phase", "oracle max-util", "autopilot", "static(day)",
                     "migrations", "within 5%"});
    Layout current = day_adv->layout;
    WorkloadSet reference = *ws_day;
    bool static_worse_somewhere = false;
    for (const Phase& ph : phases) {
      auto ap = rig->ExecuteWithAutopilot(current, reference, ph.olap,
                                          ph.oltp, FaultPlan{},
                                          LoopOptions(env), ph.duration_s);
      if (!ap.ok()) {
        std::fprintf(stderr, "%s: %s\n", ph.name,
                     ap.status().ToString().c_str());
        return 1;
      }
      const PhaseScore s = ScorePhase(model, *ph.ws, ap->final_layout,
                                      day_adv->layout, ph.oracle->max_util);
      all_ok = all_ok && (s.within || !enforce_quality_bars);
      static_worse_somewhere =
          static_worse_somewhere ||
          s.static_util > s.oracle_util * 1.05 + 0.02;
      table.AddRow({ph.name, StrFormat("%.1f%%", 100 * s.oracle_util),
                    StrFormat("%.1f%%", 100 * s.autopilot_util),
                    StrFormat("%.1f%%", 100 * s.static_util),
                    StrFormat("%d/%d", ap->migrations_started,
                              ap->migrations_completed),
                    s.within ? "yes" : "NO"});
      json.BeginRow();
      json.Field("stage", "day_night");
      json.Field("phase", ph.name);
      json.Field("oracle_max_util", s.oracle_util);
      json.Field("autopilot_max_util", s.autopilot_util);
      json.Field("static_max_util", s.static_util);
      json.Field("within_5pct", s.within);
      json.Field("migrations_started", ap->migrations_started);
      json.Field("migrations_completed", ap->migrations_completed);
      json.Field("migrations_suppressed", ap->migrations_suppressed);
      json.Field("bytes_copied", ap->bytes_copied);
      json.Field("decisions", static_cast<int>(ap->decisions.size()));
      json.Field("elapsed_simulated_s", ap->run.elapsed_seconds);
      current = ap->final_layout;
      if (ap->migrations_completed > 0) reference = *ph.ws;
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("static day layout measurably worse on some phase: %s\n",
                static_worse_somewhere ? "yes" : "NO");
    all_ok = all_ok && static_worse_somewhere;
  }

  // ---- 2. Consolidation ramp: OLTP joins a steady OLAP workload. ----
  {
    std::printf("\nConsolidation ramp (deployed: OLAP-advised layout)\n");
    const std::vector<Phase> phases = {
        {"olap+oltp3", &*olap, &*oltp_light, 0.0, &*ws_mix_light,
         &*mix_light_adv},
        {"olap+oltp9", &*olap, &*oltp, 0.0, &*ws_mix_heavy, &*mix_heavy_adv},
    };
    TextTable table({"Phase", "oracle max-util", "autopilot", "static(olap)",
                     "migrations", "within 5%"});
    Layout current = night_adv->layout;
    WorkloadSet reference = *ws_night;
    for (const Phase& ph : phases) {
      auto ap = rig->ExecuteWithAutopilot(current, reference, ph.olap,
                                          ph.oltp, FaultPlan{},
                                          LoopOptions(env), ph.duration_s);
      if (!ap.ok()) {
        std::fprintf(stderr, "%s: %s\n", ph.name,
                     ap.status().ToString().c_str());
        return 1;
      }
      const PhaseScore s = ScorePhase(model, *ph.ws, ap->final_layout,
                                      night_adv->layout,
                                      ph.oracle->max_util);
      all_ok = all_ok && (s.within || !enforce_quality_bars);
      table.AddRow({ph.name, StrFormat("%.1f%%", 100 * s.oracle_util),
                    StrFormat("%.1f%%", 100 * s.autopilot_util),
                    StrFormat("%.1f%%", 100 * s.static_util),
                    StrFormat("%d/%d", ap->migrations_started,
                              ap->migrations_completed),
                    s.within ? "yes" : "NO"});
      json.BeginRow();
      json.Field("stage", "consolidation_ramp");
      json.Field("phase", ph.name);
      json.Field("oracle_max_util", s.oracle_util);
      json.Field("autopilot_max_util", s.autopilot_util);
      json.Field("static_max_util", s.static_util);
      json.Field("within_5pct", s.within);
      json.Field("migrations_started", ap->migrations_started);
      json.Field("migrations_completed", ap->migrations_completed);
      json.Field("bytes_copied", ap->bytes_copied);
      current = ap->final_layout;
      if (ap->migrations_completed > 0) reference = *ph.ws;
    }
    std::printf("%s", table.ToString().c_str());
  }

  // ---- 3. The gate suppresses an unprofitable migration. ----
  {
    AutopilotOptions gated = LoopOptions(env);
    gated.config.gate_min_gain = 0.9;  // no re-layout can gain 90 points
    auto ap = rig->ExecuteWithAutopilot(night_adv->layout, *ws_night,
                                        nullptr, &*oltp, FaultPlan{}, gated,
                                        kDayS);
    if (!ap.ok()) {
      std::fprintf(stderr, "gate stage: %s\n",
                   ap.status().ToString().c_str());
      return 1;
    }
    const bool suppressed =
        ap->migrations_suppressed >= 1 && ap->migrations_started == 0 &&
        ap->bytes_copied == 0;
    std::printf(
        "\nGate (min gain 0.9): %d trip(s), %d suppressed, %d started: %s\n",
        static_cast<int>(ap->decisions.size()), ap->migrations_suppressed,
        ap->migrations_started,
        suppressed ? "[ok: unprofitable migration suppressed]"
                   : "[MISS: gate did not suppress]");
    if (!ap->decisions.empty()) {
      std::printf("  first verdict: %s\n",
                  ap->decisions.front().note.c_str());
    }
    all_ok = all_ok && suppressed;
    json.BeginRow();
    json.Field("stage", "gate");
    json.Field("trips", static_cast<int>(ap->decisions.size()));
    json.Field("gate_suppressed", ap->migrations_suppressed);
    json.Field("migrations_started", ap->migrations_started);
    json.Field("suppressed_ok", suppressed);
  }

  // ---- 4. Bit-identical across solver thread counts. ----
  {
    std::vector<std::string> prints;
    int started = 0;
    for (int threads : {1, 2, 8}) {
      AutopilotOptions o = LoopOptions(env);
      o.advisor.solver.num_threads = threads;
      auto ap = rig->ExecuteWithAutopilot(night_adv->layout, *ws_night,
                                          nullptr, &*oltp, FaultPlan{}, o,
                                          kDayS);
      if (!ap.ok()) {
        std::fprintf(stderr, "determinism stage: %s\n",
                     ap.status().ToString().c_str());
        return 1;
      }
      prints.push_back(ap->Fingerprint());
      started = ap->migrations_started;
    }
    const bool identical =
        prints[0] == prints[1] && prints[0] == prints[2];
    std::printf(
        "\nThreads 1/2/8 fingerprints identical: %s (%d migration(s) in "
        "the run)\n",
        identical ? "yes" : "NO", started);
    all_ok = all_ok && identical;
    json.BeginRow();
    json.Field("stage", "determinism");
    json.Field("threads_identical", identical);
    json.Field("migrations_started", started);
  }

  // ---- 5. Disabled autopilot: bit-identity and monitor overhead. ----
  {
    constexpr double kLongDayS = 600.0;
    constexpr int kReps = 3;
    double base_wall = std::numeric_limits<double>::infinity();
    double ap_wall = std::numeric_limits<double>::infinity();
    Result<RunResult> base = Status::Internal("unset");
    Result<AutopilotReport> ap = Status::Internal("unset");
    for (int r = 0; r < kReps; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      base = rig->Execute(day_adv->layout, nullptr, &*oltp, kLongDayS);
      base_wall = std::min(base_wall, WallSeconds(t0));
      if (!base.ok()) return 1;
    }
    AutopilotOptions off = LoopOptions(env);
    off.config.drift.threshold = std::numeric_limits<double>::infinity();
    for (int r = 0; r < kReps; ++r) {
      auto t0 = std::chrono::steady_clock::now();
      ap = rig->ExecuteWithAutopilot(day_adv->layout, *ws_day, nullptr,
                                     &*oltp, FaultPlan{}, off, kLongDayS);
      ap_wall = std::min(ap_wall, WallSeconds(t0));
      if (!ap.ok()) return 1;
    }
    bool identical =
        base->elapsed_seconds == ap->run.elapsed_seconds &&
        base->total_requests == ap->run.total_requests &&
        base->tpm == ap->run.tpm;
    for (size_t j = 0; identical && j < base->utilization.size(); ++j) {
      identical = base->utilization[j] == ap->run.utilization[j];
    }
    // The hot-path budget: in deployment the analyzer rides on real I/O
    // completions, so its per-event CPU cost is measured against the mean
    // foreground I/O latency of the modeled testbed (<2% of the I/O path).
    const double per_event_s =
        ap->monitor_events > 0
            ? std::max(0.0, ap_wall - base_wall) /
                  static_cast<double>(ap->monitor_events)
            : 0.0;
    const double io_fraction = ap->fg_mean_latency_s > 0.0
                                   ? per_event_s / ap->fg_mean_latency_s
                                   : 0.0;
    const bool cheap = io_fraction < 0.02;
    std::printf(
        "\nDisabled autopilot vs plain Execute: %s; monitor cost %.0f ns "
        "per completion = %.4f%% of the %.2f ms mean I/O latency "
        "(budget 2%%): %s\n",
        identical ? "[ok: bit-identical]" : "[MISS: runs diverge]",
        1e9 * per_event_s, 100 * io_fraction, 1e3 * ap->fg_mean_latency_s,
        cheap ? "[ok]" : "[MISS]");
    all_ok = all_ok && identical && cheap;
    json.BeginRow();
    json.Field("stage", "observer_overhead");
    json.Field("identical", identical);
    json.Field("base_wall_s", base_wall);
    json.Field("autopilot_wall_s", ap_wall);
    json.Field("monitor_ns_per_event", 1e9 * per_event_s);
    json.Field("fraction_of_io_latency", io_fraction);
    json.Field("hot_path_within_budget", cheap);
    json.Field("monitor_events",
               static_cast<int64_t>(ap->monitor_events));
  }

  (void)n;
  if (env.json && !json.WriteTo(env.json_path)) return 1;
  std::printf("\n%s\n", all_ok ? "AUTOPILOT BENCH: all checks passed"
                               : "AUTOPILOT BENCH: CHECKS FAILED");
  return all_ok ? 0 : 1;
}
