// Online migration benchmark: impact-vs-duration of carrying a re-layout
// out in the background, plus the fault-during-migration differential.
//
// Protocol (5-disk TPC-H rig, OLAP8; disk4 starts empty so it can act as
// a pure migration destination):
//   1. Empty-plan differential: ExecuteWithMigration with from == to must
//      reproduce Execute bit for bit — the executor schedules zero copy
//      events, so the foreground run is untouched (exit 1 on mismatch).
//   2. Throttle curve: migrate SEE-over-4-disks to the advised 5-disk
//      layout unthrottled to get the copy volume and floor duration, then
//      at rates that stretch the migration 2x/6x/18x. Tightening the
//      throttle must monotonically increase migration duration and must
//      not increase foreground p99 degradation.
//   3. Destination loss mid-copy: the pure-destination disk fail-stops
//      halfway through a throttled migration. The executor must roll
//      back, every byte must remain readable, and the differential
//      checker must agree (migration priced by PriceMigration).
//   4. Replanning around the loss: ReplanAfterFailure moves the advised
//      layout off the dead disk; migrating to the replanned layout with
//      the disk dead from t=0 must complete with all data readable.
//   5. Journal overhead: the same migration with a durable WAL journal
//      attached must be simulation-identical, and the real wall-clock
//      cost of the appends + commit fsyncs is reported (<2% target).
//
// --json emits machine-readable rows for all five stages.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/migrate.h"
#include "core/replan.h"
#include "storage/fault.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

void PrintSkipped(const MigrationRunReport& r, const char* stage) {
  for (const std::string& s : r.skipped_faults) {
    std::printf("  %s skipped fault: %s\n", stage, s.c_str());
  }
}

double MigrationSeconds(const MigrationRunReport& r) {
  if (r.stats.start_time < 0.0 || r.stats.end_time < 0.0) return -1.0;
  return r.stats.end_time - r.stats.start_time;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Migration",
              "throttled online re-layout: impact vs duration, fault "
              "tolerance",
              env);

  auto rig = MakeRig(env, Catalog::TpcH(env.scale),
                     {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}, {"disk4"}});
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
  if (!olap.ok()) return 1;

  const int m = rig->num_targets();
  const int n = rig->catalog().num_objects();

  // The layout in effect before the re-layout: everything striped over the
  // first four disks; disk4 holds nothing (a freshly added device).
  Layout from(n, m);
  for (int i = 0; i < n; ++i) from.SetRowRegular(i, {0, 1, 2, 3});

  auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
  if (!advised.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advised.status().ToString().c_str());
    return 1;
  }
  const LayoutProblem& problem = advised->problem;
  const Layout& to = advised->result.final_layout;

  JsonRows json;
  bool all_ok = true;

  // ---- 1. Empty-plan migration == plain run, bit for bit. ----
  auto plain = rig->Execute(from, &*olap, nullptr);
  if (!plain.ok()) return 1;
  auto noop = rig->ExecuteWithMigration(from, from, &*olap, nullptr,
                                        FaultPlan{}, MigrateOptions{});
  if (!noop.ok()) {
    std::fprintf(stderr, "noop migration: %s\n",
                 noop.status().ToString().c_str());
    return 1;
  }
  {
    const double tol = 1e-9;
    bool same =
        std::fabs(plain->elapsed_seconds - noop->run.elapsed_seconds) <=
            tol &&
        plain->total_requests == noop->run.total_requests &&
        noop->stats.chunks_total == 0 &&
        noop->outcome == MigrationOutcome::kCompleted;
    for (int j = 0; same && j < m; ++j) {
      same = std::fabs(plain->utilization[j] -
                       noop->run.utilization[j]) <= tol;
    }
    std::printf(
        "empty migration plan vs plain run: %s (%.3fs vs %.3fs, %lld "
        "chunks)\n",
        same ? "[ok: identical]" : "[MISS: runs diverge]",
        plain->elapsed_seconds, noop->run.elapsed_seconds,
        static_cast<long long>(noop->stats.chunks_total));
    PrintSkipped(*noop, "noop");
    json.BeginRow();
    json.Field("stage", "empty_plan_differential");
    json.Field("identical", same);
    json.Field("elapsed_s", plain->elapsed_seconds);
    json.Field("chunks_total",
               static_cast<int64_t>(noop->stats.chunks_total));
    all_ok = all_ok && same;
  }
  const double base_p99 = noop->fg_p99_s;

  // ---- 2. Throttle curve: migration duration vs foreground impact. ----
  MigrateOptions unthrottled;
  unthrottled.max_inflight_chunks = 4;
  auto fast = rig->ExecuteWithMigration(from, to, &*olap, nullptr,
                                        FaultPlan{}, unthrottled);
  if (!fast.ok()) {
    std::fprintf(stderr, "migration: %s\n",
                 fast.status().ToString().c_str());
    return 1;
  }
  PrintSkipped(*fast, "unthrottled");
  if (fast->outcome != MigrationOutcome::kCompleted ||
      !fast->readable.ok()) {
    std::fprintf(stderr, "unthrottled migration did not complete cleanly: "
                         "%s / %s\n",
                 MigrationOutcomeName(fast->outcome),
                 fast->readable.ToString().c_str());
    return 1;
  }
  const double floor_s = MigrationSeconds(*fast);
  const double copied_bytes = static_cast<double>(fast->stats.bytes_written);
  std::printf(
      "unthrottled: %.1f MB copied in %.3fs (%lld chunks, %lld recopied), "
      "fg p99 %.2f ms (baseline %.2f ms)\n",
      copied_bytes / (1024.0 * 1024.0), floor_s,
      static_cast<long long>(fast->stats.chunks_total),
      static_cast<long long>(fast->stats.chunks_recopied),
      1e3 * fast->fg_p99_s, 1e3 * base_p99);

  TextTable table({"throttle MB/s", "migration s", "fg p99 ms",
                   "p99 vs baseline", "deferrals"});
  std::vector<double> durations{floor_s};
  std::vector<double> p99s{fast->fg_p99_s};
  table.AddRow({"unlimited", StrFormat("%.3f", floor_s),
                StrFormat("%.2f", 1e3 * fast->fg_p99_s),
                StrFormat("%.2fx", fast->fg_p99_s / base_p99),
                StrFormat("%llu", static_cast<unsigned long long>(
                                      fast->stats.backpressure_deferrals))});
  json.BeginRow();
  json.Field("stage", "throttle_curve");
  json.Field("rate_mb_s", 0.0);
  json.Field("migration_s", floor_s);
  json.Field("fg_p99_ms", 1e3 * fast->fg_p99_s);
  json.Field("degradation", fast->fg_p99_s / base_p99);

  for (const double stretch : {2.0, 6.0, 18.0}) {
    MigrateOptions opts;
    opts.max_inflight_chunks = 4;
    opts.bandwidth_bytes_per_s = copied_bytes / (stretch * floor_s);
    opts.max_bg_share = 0.5;
    auto run = rig->ExecuteWithMigration(from, to, &*olap, nullptr,
                                         FaultPlan{}, opts);
    if (!run.ok()) {
      std::fprintf(stderr, "throttled migration: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    PrintSkipped(*run, "throttled");
    if (run->outcome != MigrationOutcome::kCompleted ||
        !run->readable.ok()) {
      std::fprintf(stderr, "throttled migration did not complete\n");
      return 1;
    }
    durations.push_back(MigrationSeconds(*run));
    p99s.push_back(run->fg_p99_s);
    table.AddRow(
        {StrFormat("%.2f", opts.bandwidth_bytes_per_s / (1024.0 * 1024.0)),
         StrFormat("%.3f", durations.back()),
         StrFormat("%.2f", 1e3 * run->fg_p99_s),
         StrFormat("%.2fx", run->fg_p99_s / base_p99),
         StrFormat("%llu", static_cast<unsigned long long>(
                               run->stats.backpressure_deferrals))});
    json.BeginRow();
    json.Field("stage", "throttle_curve");
    json.Field("rate_mb_s", opts.bandwidth_bytes_per_s / (1024.0 * 1024.0));
    json.Field("migration_s", durations.back());
    json.Field("fg_p99_ms", 1e3 * run->fg_p99_s);
    json.Field("degradation", run->fg_p99_s / base_p99);
  }
  std::printf("%s", table.ToString().c_str());
  bool monotonic = true;
  for (size_t k = 1; k < durations.size(); ++k) {
    // Tighter throttle: strictly longer migration, no worse p99 (a hair of
    // simulator noise is tolerated).
    monotonic = monotonic && durations[k] > durations[k - 1] &&
                p99s[k] <= p99s[k - 1] * 1.02 + 1e-6;
  }
  std::printf("throttle tradeoff monotonic: %s\n\n",
              monotonic ? "[ok]" : "[MISS]");
  all_ok = all_ok && monotonic;

  // ---- 3. Destination fail-stop mid-copy -> rollback, all readable. ----
  // The victim must be a *pure* destination (no foreground data on it yet),
  // i.e. disk4 — killing a source disk is a different experiment (the data
  // on it is gone no matter what the executor does). PriceMigration
  // confirms the migration actually moves bytes onto it.
  const int victim = m - 1;
  const MigrationPlan price = PriceMigration(problem, from, to);
  double victim_in = 0.0;
  for (int i = 0; i < n; ++i) victim_in += price.moved_in_bytes[i][victim];
  std::printf("victim disk%d receives %.1f MB of the %.1f MB migration\n",
              victim, victim_in / (1024.0 * 1024.0),
              price.total_bytes / (1024.0 * 1024.0));
  if (victim_in <= 0.0) {
    std::printf("advised layout puts nothing on disk%d; cannot stage the "
                "destination-loss experiment [MISS]\n", victim);
    all_ok = false;
  } else {
    MigrateOptions opts;
    opts.max_inflight_chunks = 4;
    opts.bandwidth_bytes_per_s = copied_bytes / (3.0 * floor_s);
    opts.max_bg_share = 0.5;
    const double t_fail = 1.5 * floor_s;  // mid-copy of a ~3x migration
    FaultPlan plan;
    plan.faults.push_back(
        {t_fail, victim, 0, FaultKind::kFailStop, 2.0, 0.1, 0.0});
    auto run = rig->ExecuteWithMigration(from, to, &*olap, nullptr, plan,
                                         opts);
    if (!run.ok()) {
      std::fprintf(stderr, "fault migration: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    PrintSkipped(*run, "dest_loss");
    const bool rolled_back = run->outcome == MigrationOutcome::kRolledBack;
    const bool readable = run->readable.ok();
    std::printf(
        "destination dies at t=%.3fs: outcome %s (%lld/%lld chunks were "
        "committed), every byte readable: %s %s\n",
        t_fail, MigrationOutcomeName(run->outcome),
        static_cast<long long>(run->stats.chunks_committed),
        static_cast<long long>(run->stats.chunks_total),
        readable ? "yes" : run->readable.ToString().c_str(),
        rolled_back && readable ? "[ok]" : "[MISS]");
    if (!run->failure_reason.empty()) {
      std::printf("  rollback reason: %s\n", run->failure_reason.c_str());
    }
    json.BeginRow();
    json.Field("stage", "destination_loss");
    json.Field("fault_t_s", t_fail);
    json.Field("outcome", MigrationOutcomeName(run->outcome));
    json.Field("chunks_committed",
               static_cast<int64_t>(run->stats.chunks_committed));
    json.Field("chunks_total",
               static_cast<int64_t>(run->stats.chunks_total));
    json.Field("all_readable", readable);
    all_ok = all_ok && rolled_back && readable;
  }

  // ---- 4. Replan around the dead disk, then migrate to safety. ----
  {
    TargetHealth health = TargetHealth::Healthy(m);
    health.MarkFailed(victim);
    ReplanOptions ropts;
    ropts.solver.num_threads = env.num_threads;
    auto replanned = ReplanAfterFailure(problem, to, health, ropts);
    if (!replanned.ok()) {
      std::fprintf(stderr, "replan: %s\n",
                   replanned.status().ToString().c_str());
      return 1;
    }
    FaultPlan dead_from_start;
    dead_from_start.faults.push_back(
        {0.0, victim, 0, FaultKind::kFailStop, 2.0, 0.1, 0.0});
    MigrateOptions opts;
    opts.max_inflight_chunks = 4;
    auto run = rig->ExecuteWithMigration(from, replanned->layout, &*olap,
                                         nullptr, dead_from_start, opts);
    if (!run.ok()) {
      std::fprintf(stderr, "replanned migration: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    PrintSkipped(*run, "replanned");
    const bool completed = run->outcome == MigrationOutcome::kCompleted;
    const bool readable = run->readable.ok();
    std::printf(
        "migrate to replanned layout with disk%d dead: outcome %s, %d "
        "object(s) replanned off the dead disk, every byte readable: %s "
        "%s\n",
        victim, MigrationOutcomeName(run->outcome),
        replanned->migration.objects_moved,
        readable ? "yes" : run->readable.ToString().c_str(),
        completed && readable ? "[ok]" : "[MISS]");
    json.BeginRow();
    json.Field("stage", "replan_after_loss");
    json.Field("outcome", MigrationOutcomeName(run->outcome));
    json.Field("objects_replanned", replanned->migration.objects_moved);
    json.Field("all_readable", readable);
    all_ok = all_ok && completed && readable;
  }

  // ---- 5. Journal overhead: durability must be nearly free. ----
  // The same migration with and without a WAL journal must be
  // simulation-identical (appends and fsyncs happen outside the event
  // clock, so the journal can never perturb the run), and the real
  // wall-clock cost of the appends + commit-point fsyncs is reported
  // against the <2% target.
  {
    MigrateOptions opts;
    opts.max_inflight_chunks = 4;
    const auto t0 = std::chrono::steady_clock::now();
    auto bare = rig->ExecuteWithMigration(from, to, &*olap, nullptr,
                                          FaultPlan{}, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (!bare.ok()) {
      std::fprintf(stderr, "bare migration: %s\n",
                   bare.status().ToString().c_str());
      return 1;
    }
    const std::string wal_path = "bench_migration_journal.wal";
    std::remove(wal_path.c_str());
    opts.journal_path = wal_path;
    const auto t2 = std::chrono::steady_clock::now();
    auto logged = rig->ExecuteWithMigration(from, to, &*olap, nullptr,
                                            FaultPlan{}, opts);
    const auto t3 = std::chrono::steady_clock::now();
    if (!logged.ok()) {
      std::fprintf(stderr, "journaled migration: %s\n",
                   logged.status().ToString().c_str());
      return 1;
    }
    const auto wall = [](std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
      return std::chrono::duration<double>(b - a).count();
    };
    const double bare_s = wall(t0, t1);
    const double logged_s = wall(t2, t3);
    // The WAL's cost (appends + fsyncs) is real time either way; the
    // migration's wall-clock in deployment is its *simulated* duration
    // (the simulator compresses the I/O, the journal cannot ride that
    // compression). So the "<2% added migration wall-clock" target is the
    // absolute WAL cost amortized over the migration's duration; the raw
    // harness slowdown is reported alongside for the curious.
    const double wal_cost_s = std::max(0.0, logged_s - bare_s);
    const double migration_s = MigrationSeconds(*logged);
    const double overhead =
        migration_s > 0.0 ? wal_cost_s / migration_s : 0.0;
    const bool identical =
        logged->outcome == bare->outcome &&
        logged->stats.chunks_committed == bare->stats.chunks_committed &&
        logged->stats.bytes_written == bare->stats.bytes_written &&
        migration_s == MigrationSeconds(*bare) &&
        logged->fg_p99_s == bare->fg_p99_s;
    std::printf(
        "journaled: %lld WAL records (%.1f KB) for %lld chunks; simulated "
        "run identical to unjournaled: %s\n"
        "journal cost %.1f ms real over a %.1f s migration: %+.3f%% "
        "wall-clock (target <2%%) %s; harness time %.3fs -> %.3fs\n",
        static_cast<long long>(logged->journal_records),
        logged->journal_bytes / 1024.0,
        static_cast<long long>(logged->stats.chunks_total),
        identical ? "yes" : "NO",
        1e3 * wal_cost_s, migration_s, 100.0 * overhead,
        identical && overhead < 0.02 ? "[ok]" : "[MISS]",
        bare_s, logged_s);
    json.BeginRow();
    json.Field("stage", "journal_overhead");
    json.Field("wal_records", logged->journal_records);
    json.Field("wal_bytes", logged->journal_bytes);
    json.Field("wal_cost_s", wal_cost_s);
    json.Field("migration_s", migration_s);
    json.Field("bare_wall_s", bare_s);
    json.Field("journaled_wall_s", logged_s);
    json.Field("overhead_pct", 100.0 * overhead);
    json.Field("overhead_under_target", overhead < 0.02);
    json.Field("sim_identical", identical);
    // The sim-identity is load-bearing and gates the bench; the wall-clock
    // target is reported (machine- and filesystem-dependent).
    all_ok = all_ok && identical;
    std::remove(wal_path.c_str());
  }

  if (env.json) json.WriteTo(env.json_path);
  return all_ok ? 0 : 1;
}
