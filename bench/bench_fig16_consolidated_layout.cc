// Reproduces paper Figure 16: the optimized layout of the 40 consolidated
// TPC-H + TPC-C objects, most heavily requested first (the paper shows the
// top 12, tagging objects with (h)/(c) for their database).
//
// Paper shape to reproduce: the TPC-H LINEITEM table is separated from the
// TPC-C STOCK and CUSTOMER tables, which see heavy non-sequential
// workloads.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 16", "optimized layout for the consolidated workload",
              env);

  Catalog merged = Catalog::Merge(Catalog::TpcH(env.scale),
                                  Catalog::TpcC(env.scale), "", "C_");
  auto rig = MakeRig(env, merged,
                     {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
  if (!rig.ok()) return 1;
  auto olap = MakeOlapSpec(rig->catalog(), 1, 1, env.seed);
  auto oltp = MakeOltpSpec(rig->catalog(), "C_", 9, 5.0);
  if (!olap.ok() || !oltp.ok()) return 1;

  auto advised = AdviseForWorkload(*rig, &*olap, &*oltp);
  if (!advised.ok()) return 1;

  std::printf("Top consolidated objects (C_ prefix = TPC-C):\n%s\n",
              TopObjectsLayoutString(advised->problem,
                                     advised->result.final_layout, 12)
                  .c_str());

  auto targets_of = [&](const char* name) {
    for (int i = 0; i < advised->problem.num_objects(); ++i) {
      if (advised->problem.object_names[static_cast<size_t>(i)] == name) {
        return advised->result.final_layout.TargetsOf(i);
      }
    }
    return std::vector<int>{};
  };
  const auto li = targets_of("LINEITEM");
  const auto stock = targets_of("C_STOCK");
  int shared = 0;
  for (int a : li) {
    for (int b : stock) shared += (a == b);
  }
  std::printf(
      "LINEITEM and C_STOCK share %d target(s) out of %zu/%zu used "
      "(paper: separated).\n",
      shared, li.size(), stock.size());
  return 0;
}
