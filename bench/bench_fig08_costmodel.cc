// Reproduces paper Figure 8: one slice of the calibrated read-cost model
// for the 15K-RPM disk — the cost of 8 KiB read requests as a function of
// the contention factor, one series per run count (degree of
// sequentiality).
//
// Paper shape to reproduce:
//  * at low contention, sequential requests are much cheaper than random;
//  * the sequential advantage survives small contention (the drive tracks
//    a small number of concurrent streams) and collapses by χ ≈ 2;
//  * the cost of non-sequential requests (run count 1) *decreases* with
//    contention, because device scheduling works better on deeper queues.

#include <cstdio>

#include "bench/bench_common.h"
#include "model/calibration.h"
#include "storage/disk.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 8",
              "cost model slice: 8 KiB reads vs contention factor", env);

  DiskModel disk(Scsi15kParams());
  CalibrationOptions options;
  options.seed = env.seed;
  auto model = CalibrateDevice(disk, options);
  if (!model.ok()) {
    std::fprintf(stderr, "calibration: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  const double run_counts[] = {1, 4, 16, 64, 128};
  const double chis[] = {0, 0.5, 1, 1.5, 2, 3, 4, 8, 16};

  std::vector<std::string> header{"contention"};
  for (double q : run_counts) header.push_back(StrFormat("run=%.0f", q));
  TextTable table(std::move(header));
  for (double chi : chis) {
    std::vector<std::string> row{StrFormat("%.1f", chi)};
    for (double q : run_counts) {
      row.push_back(
          StrFormat("%.2f ms", 1e3 * model->ReadCost(8 * kKiB, q, chi)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());

  const double seq0 = model->ReadCost(8 * kKiB, 128, 0);
  const double seq1 = model->ReadCost(8 * kKiB, 128, 1);
  const double seq2 = model->ReadCost(8 * kKiB, 128, 2);
  const double rnd0 = model->ReadCost(8 * kKiB, 1, 0);
  const double rnd4 = model->ReadCost(8 * kKiB, 1, 4);
  std::printf("Shape checks (paper Figure 8):\n");
  std::printf("  sequential %.1fx cheaper than random at chi=0  %s\n",
              rnd0 / seq0, rnd0 / seq0 > 4 ? "[ok]" : "[MISS]");
  std::printf("  sequential advantage at chi=1 still %.1fx       %s\n",
              rnd0 / seq1, rnd0 / seq1 > 1.5 ? "[ok]" : "[MISS]");
  std::printf("  collapse by chi=2: seq cost grew %.1fx          %s\n",
              seq2 / seq0, seq2 / seq0 > 4 ? "[ok]" : "[MISS]");
  std::printf("  random cost falls with contention (%.2f -> %.2f ms) %s\n",
              1e3 * rnd0, 1e3 * rnd4, rnd4 < rnd0 ? "[ok]" : "[MISS]");
  return 0;
}
