// Micro-benchmarks (google-benchmark) of the hot kernels: device service
// times, the simulator's event throughput, LVM mapping, cost-model
// interpolation, the target model's utilization computation (the solver's
// inner loop), the incremental column evaluator, simplex projection, and a
// small end-to-end solve.
//
// --json[=path] maps onto google-benchmark's JSON reporters, so every
// benchmark binary in this repo shares one machine-readable flag.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "model/calibration.h"
#include "model/target_model.h"
#include "monitor/online_analyzer.h"
#include "solver/projected_gradient.h"
#include "solver/simplex.h"
#include "storage/disk.h"
#include "storage/event_queue.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/random.h"
#include "util/units.h"

namespace ldb {
namespace {

const CostModel& SharedCostModel() {
  static const CostModel* model = [] {
    DiskModel disk(Scsi15kParams());
    CalibrationOptions options;
    options.sample_requests = 64;  // coarse is fine for micro-bench input
    auto m = CalibrateDevice(disk, options);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

void BM_DiskServiceTimeSequential(benchmark::State& state) {
  DiskModel disk(Scsi15kParams());
  int64_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(disk.ServiceTime({offset, 64 * kKiB, false}));
    offset += 64 * kKiB;
    if (offset + 64 * kKiB > disk.capacity_bytes()) offset = 0;
  }
}
BENCHMARK(BM_DiskServiceTimeSequential);

void BM_DiskServiceTimeRandom(benchmark::State& state) {
  DiskModel disk(Scsi15kParams());
  Rng rng(1);
  const int64_t slots = disk.capacity_bytes() / (8 * kKiB) - 1;
  for (auto _ : state) {
    const int64_t offset = rng.UniformInt(int64_t{0}, slots) * 8 * kKiB;
    benchmark::DoNotOptimize(disk.ServiceTime({offset, 8 * kKiB, false}));
  }
}
BENCHMARK(BM_DiskServiceTimeRandom);

void BM_CalibrationPoint(benchmark::State& state) {
  // One grid point of the calibration sweep at the heaviest contention
  // level — the unit of work CalibrateDevice parallelizes over.
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options;
  options.size_axis = {64 * kKiB};
  options.run_axis = {16};
  options.contention_axis = {16};
  for (auto _ : state) {
    auto m = CalibrateDevice(disk, options);
    benchmark::DoNotOptimize(m.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CalibrationPoint);

void BM_CalibrateDeviceDefaultGrid(benchmark::State& state) {
  // Full default grid (9 sizes x 8 run counts x 7 contention levels) with
  // num_threads = range(0). Arg(1) is the serial baseline; Arg(8) must show
  // the >=3x parallel speedup, with bit-identical tables (see
  // threading_test.cc).
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto m = CalibrateDevice(disk, options);
    benchmark::DoNotOptimize(m.ok());
  }
}
BENCHMARK(BM_CalibrateDeviceDefaultGrid)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_SimulatorEventThroughput(benchmark::State& state) {
  DiskModel proto(Scsi15kParams());
  for (auto _ : state) {
    state.PauseTiming();
    StorageSystem sys({{"d0", &proto, 1, 64 * kKiB},
                       {"d1", &proto, 1, 64 * kKiB}});
    state.ResumeTiming();
    int outstanding = 0;
    for (int i = 0; i < 1024; ++i) {
      sys.Submit(i % 2, {(i / 2) * 64 * kKiB, 64 * kKiB, false, 0, 0},
                 nullptr);
      ++outstanding;
    }
    sys.queue().RunUntilIdle();
    benchmark::DoNotOptimize(outstanding);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  // Bulk schedule-then-drain: stresses the slab/free-list reuse path with
  // many outstanding events. Steady state performs zero callback heap
  // allocations (capture fits the inline buffer).
  const int kEvents = 1024;
  EventQueue q;
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < kEvents; ++i) {
      q.ScheduleAfter(static_cast<double>(i % 17) * 1e-6,
                      [&sink, i] { sink += static_cast<uint64_t>(i); });
    }
    q.RunUntilIdle();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventQueueScheduleDrain);

struct Ticker {
  EventQueue* q;
  uint64_t remaining;
  void Tick() {
    if (remaining-- > 0) q->ScheduleAfter(1e-6, [this] { Tick(); });
  }
};

void BM_EventQueueChainedTimers(benchmark::State& state) {
  // Self-rescheduling timer chain: the simulator's steady-state shape (one
  // completion schedules the next). A single pool slot is recycled for the
  // whole chain with no heap allocation per event.
  const uint64_t kChain = 4096;
  EventQueue q;
  for (auto _ : state) {
    Ticker t{&q, kChain};
    t.Tick();
    q.RunUntilIdle();
    benchmark::DoNotOptimize(t.remaining);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kChain));
}
BENCHMARK(BM_EventQueueChainedTimers);

void BM_LvmMap(benchmark::State& state) {
  auto mgr = StripedVolumeManager::Create(
      {10 * kGiB}, {{0, 1, 2, 3}}, {20 * kGiB, 20 * kGiB, 20 * kGiB, 20 * kGiB},
      64 * kKiB);
  LDB_CHECK(mgr.ok());
  std::vector<TargetChunk> chunks;
  int64_t offset = 0;
  for (auto _ : state) {
    chunks.clear();
    mgr->Map(0, offset, 256 * kKiB, &chunks);
    benchmark::DoNotOptimize(chunks.data());
    offset = (offset + 256 * kKiB) % (9 * kGiB);
  }
}
BENCHMARK(BM_LvmMap);

void BM_OnlineAnalyzerObserve(benchmark::State& state) {
  // The autopilot monitor's I/O hot path: one completion event through the
  // streaming analyzer (rates, sizes, run detection, overlap rings), with
  // a dense concurrent stream so the overlap scans do real work. The cost
  // per event is the monitor's whole per-I/O overhead; the acceptance
  // budget is <2% of a device I/O (hundreds of microseconds), checked
  // end-to-end by bench_autopilot's observer_overhead stage.
  const int n = static_cast<int>(state.range(0));
  OnlineAnalyzer analyzer(n);
  Rng rng(7);
  // ~n active streams at ~1 krps each with overlapping in-flight windows.
  std::vector<IoEvent> events(8192);
  double t = 0.0;
  uint64_t seq = 0;
  for (IoEvent& ev : events) {
    t += 1e-3 / n;
    ev.submit_time = t;
    ev.complete_time = t + 2e-3;
    ev.seq = seq++;
    ev.target = -1;
    ev.object = static_cast<ObjectId>(rng.Uniform(0, n - 1));
    ev.logical_offset = rng.Uniform(0, 1024) * 8192;
    ev.size = 8192;
    ev.is_write = (ev.seq % 4) == 0;
  }
  size_t i = 0;
  double shift = 0.0;
  for (auto _ : state) {
    IoEvent ev = events[i];
    // Keep simulated time moving forward across passes over the buffer.
    ev.submit_time += shift;
    ev.complete_time += shift;
    analyzer.Observe(ev);
    if (++i == events.size()) {
      i = 0;
      shift += events.back().complete_time;
    }
  }
  benchmark::DoNotOptimize(analyzer.events());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineAnalyzerObserve)->Arg(4)->Arg(40);

void BM_OnlineAnalyzerSnapshot(benchmark::State& state) {
  // The controller-tick path: fitting the windowed WorkloadSet from the
  // live counters (runs every check_interval_s, not per I/O).
  const int n = 40;
  OnlineAnalyzer analyzer(n);
  Rng rng(7);
  double t = 0.0;
  for (int k = 0; k < 8192; ++k) {
    IoEvent ev;
    t += 1e-3 / n;
    ev.submit_time = t;
    ev.complete_time = t + 2e-3;
    ev.seq = static_cast<uint64_t>(k);
    ev.target = -1;
    ev.object = static_cast<ObjectId>(rng.Uniform(0, n - 1));
    ev.logical_offset = rng.Uniform(0, 1024) * 8192;
    ev.size = 8192;
    analyzer.Observe(ev);
  }
  for (auto _ : state) {
    WorkloadSet ws = analyzer.Snapshot();
    benchmark::DoNotOptimize(ws.data());
  }
}
BENCHMARK(BM_OnlineAnalyzerSnapshot);

void BM_CostModelLookup(benchmark::State& state) {
  const CostModel& model = SharedCostModel();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ReadCost(rng.Uniform(8192, 262144),
                                            rng.Uniform(1, 100),
                                            rng.Uniform(0, 8)));
  }
}
BENCHMARK(BM_CostModelLookup);

WorkloadSet MakeWorkloads(int n, Rng* rng) {
  WorkloadSet ws(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = ws[static_cast<size_t>(i)];
    w.read_rate = rng->Uniform(1, 200);
    w.read_size = 64 * kKiB;
    w.write_rate = rng->Uniform(0, 20);
    w.write_size = 64 * kKiB;
    w.run_count = rng->Uniform(1, 100);
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k) {
      if (k != i) w.overlap[static_cast<size_t>(k)] = rng->Uniform(0, 1);
    }
  }
  return ws;
}

void BM_TargetModelUtilizations(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Utilizations(ws, layout));
  }
}
BENCHMARK(BM_TargetModelUtilizations)->Arg(20)->Arg(40)->Arg(160);

void BM_TargetModelColumnFull(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  // The baseline engine's finite-difference unit of work: one full O(N²)
  // column evaluation after perturbing one entry.
  int i = 0;
  for (auto _ : state) {
    layout.Set(i, 0, 0.7);
    benchmark::DoNotOptimize(model.TargetUtilization(ws, layout, 0));
    layout.Set(i, 0, 1.0 / m);
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_TargetModelColumnFull)->Arg(20)->Arg(40)->Arg(160);

void BM_TargetModelColumnIncremental(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  // The cached engine's unit of work: the same perturbation priced as a
  // rank-1 update against the column context.
  auto ctx = model.MakeColumnEvaluator(ws, 0);
  ctx->Rebuild(layout);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->WithObject(i, 0.7));
    i = (i + 1) % n;
  }
}
BENCHMARK(BM_TargetModelColumnIncremental)->Arg(20)->Arg(40)->Arg(160);

void BM_GridInterpAt(benchmark::State& state) {
  // Baseline for BM_GridInterpAtWithGrad: value-only lookups. A central
  // difference needs 2·dims of these per gradient, the fused pass one.
  const CostModel& model = SharedCostModel();
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ReadCost(rng.Uniform(8192, 262144),
                                            rng.Uniform(1, 100),
                                            rng.Uniform(0, 8)));
  }
}
BENCHMARK(BM_GridInterpAt);

void BM_GridInterpAtWithGrad(benchmark::State& state) {
  // The fused value+gradient lookup: one cell location pass, value plus
  // all three partials. Compare against 1 + 2·dims = 7 At calls for the
  // same information via central differences.
  const CostModel& model = SharedCostModel();
  Rng rng(2);
  double d_run = 0.0, d_chi = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.CostWithGrad(false, rng.Uniform(8192, 262144),
                           rng.Uniform(1, 100), rng.Uniform(0, 8), &d_run,
                           &d_chi));
    benchmark::DoNotOptimize(d_run);
    benchmark::DoNotOptimize(d_chi);
  }
}
BENCHMARK(BM_GridInterpAtWithGrad);

void BM_TargetModelColumnBatched(benchmark::State& state) {
  // The analytic engine's value unit of work: one SoA-batched µ_j pass
  // (same answer as BM_TargetModelColumnFull's scalar loop, restructured
  // over contiguous arrays).
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  auto ctx = model.MakeColumnEvaluator(ws, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->Evaluate(layout));
  }
}
BENCHMARK(BM_TargetModelColumnBatched)->Arg(20)->Arg(40)->Arg(160);

void BM_TargetModelColumnGradient(benchmark::State& state) {
  // The analytic engine's gradient unit of work: one fused pass returning
  // µ_j and all N partials ∂µ_j/∂L_ij. The FD engine needs 2·N rank-1
  // incremental evaluations (BM_TargetModelColumnIncremental) for the
  // same column gradient.
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  auto ctx = model.MakeColumnEvaluator(ws, 0);
  std::vector<double> grad(static_cast<size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->EvaluateWithGradient(layout, grad.data()));
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_TargetModelColumnGradient)->Arg(20)->Arg(40)->Arg(160);

/// Tenant-banded workloads: each object overlaps only its `neighbors`
/// ring neighbours, converted to the CSR representation (dense cleared).
WorkloadSet MakeSparseWorkloads(int n, int neighbors, Rng* rng) {
  WorkloadSet ws(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = ws[static_cast<size_t>(i)];
    w.read_rate = rng->Uniform(1, 200);
    w.read_size = 64 * kKiB;
    w.write_rate = rng->Uniform(0, 20);
    w.write_size = 64 * kKiB;
    w.run_count = rng->Uniform(1, 100);
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    w.overlap[static_cast<size_t>(i)] = rng->Uniform(0, 1.5);
    for (int d = 1; d <= neighbors / 2; ++d) {
      w.overlap[static_cast<size_t>((i + d) % n)] = rng->Uniform(0.05, 1);
      w.overlap[static_cast<size_t>((i - d + n) % n)] = rng->Uniform(0.05, 1);
    }
  }
  SparsifyOverlap(&ws);
  return ws;
}

void BM_DenseInterferenceDot(benchmark::State& state) {
  // The raw interference kernel under the dense representation: one
  // overlap-row · presence-vector dot per object, O(N) each, O(N²) per
  // column evaluation.
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<double> row(static_cast<size_t>(n)), x(static_cast<size_t>(n));
  for (auto& v : row) v = rng.Uniform(0, 1);
  for (auto& v : x) v = rng.Uniform(0, 1);
  for (auto _ : state) {
    double acc = 0.0;
    for (int k = 0; k < n; ++k) {
      acc += row[static_cast<size_t>(k)] * x[static_cast<size_t>(k)];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DenseInterferenceDot)->Arg(160)->Arg(1000)->Arg(10000);

void BM_SparseInterferenceDot(benchmark::State& state) {
  // Same dot against a CSR row with 16 stored entries: the fleet-scale
  // representation, O(nnz) regardless of N.
  const int n = static_cast<int>(state.range(0));
  constexpr int kNnz = 16;
  Rng rng(6);
  std::vector<int32_t> index;
  std::vector<double> value, x(static_cast<size_t>(n));
  for (int e = 0; e < kNnz; ++e) {
    index.push_back(static_cast<int32_t>(
        rng.UniformInt(static_cast<uint64_t>(n))));
    value.push_back(rng.Uniform(0, 1));
  }
  for (auto& v : x) v = rng.Uniform(0, 1);
  for (auto _ : state) {
    double acc = 0.0;
    for (size_t e = 0; e < index.size(); ++e) {
      acc += value[e] * x[static_cast<size_t>(index[e])];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * kNnz);
}
BENCHMARK(BM_SparseInterferenceDot)->Arg(160)->Arg(1000)->Arg(10000);

void BM_TargetModelColumnGradientSparse(benchmark::State& state) {
  // The analytic gradient pass over CSR workloads (ring band, 16 stored
  // neighbours per row). Compare against BM_TargetModelColumnGradient:
  // dense scales O(N²) per column, sparse O(N·nnz).
  const int n = static_cast<int>(state.range(0));
  const int m = 4;
  Rng rng(3);
  WorkloadSet ws = MakeSparseWorkloads(n, 16, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  Layout layout = Layout::StripeEverythingEverywhere(n, m);
  auto ctx = model.MakeColumnEvaluator(ws, 0);
  std::vector<double> grad(static_cast<size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->EvaluateWithGradient(layout, grad.data()));
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_TargetModelColumnGradientSparse)->Arg(160)->Arg(640)->Arg(2560);

void BM_SimplexProjection(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> v(n);
  for (auto _ : state) {
    for (auto& x : v) x = rng.Uniform(-1, 2);
    ProjectToSimplex(v.data(), n);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_SimplexProjection)->Arg(4)->Arg(40);

void BM_SolverSmallProblem(benchmark::State& state) {
  const int n = 10, m = 4;
  Rng rng(5);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  LayoutNlpProblem nlp;
  nlp.num_objects = n;
  nlp.num_targets = m;
  nlp.object_sizes.assign(static_cast<size_t>(n), kGiB);
  nlp.target_capacities.assign(static_cast<size_t>(m), 20 * kGiB);
  nlp.target_utilization = [&](const Layout& l, int j) {
    return model.TargetUtilization(ws, l, j);
  };
  SolverOptions options;
  options.annealing_rounds = 2;
  options.max_iterations_per_round = 10;
  ProjectedGradientSolver solver(options);
  const Layout seed = Layout::StripeEverythingEverywhere(n, m);
  for (auto _ : state) {
    auto r = solver.Solve(nlp, seed);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SolverSmallProblem);

void BM_SolverSmallProblemCached(benchmark::State& state) {
  const int n = 10, m = 4;
  Rng rng(5);
  WorkloadSet ws = MakeWorkloads(n, &rng);
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m),
      TargetModelInfo{&SharedCostModel(), 1, 64 * kKiB});
  TargetModel model(infos, LvmLayoutModel(64 * kKiB));
  LayoutNlpProblem nlp;
  nlp.num_objects = n;
  nlp.num_targets = m;
  nlp.object_sizes.assign(static_cast<size_t>(n), kGiB);
  nlp.target_capacities.assign(static_cast<size_t>(m), 20 * kGiB);
  nlp.target_utilization = [&](const Layout& l, int j) {
    return model.TargetUtilization(ws, l, j);
  };
  nlp.make_column_eval = [&](int j) { return model.MakeColumnEvaluator(ws, j); };
  SolverOptions options;
  options.annealing_rounds = 2;
  options.max_iterations_per_round = 10;
  ProjectedGradientSolver solver(options);
  const Layout seed = Layout::StripeEverythingEverywhere(n, m);
  for (auto _ : state) {
    auto r = solver.Solve(nlp, seed);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SolverSmallProblemCached);

}  // namespace
}  // namespace ldb

// Custom main: translate the repo-wide --json[=path] flag onto
// google-benchmark's reporter options, pass everything else through.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 2);
  for (int a = 0; a < argc; ++a) {
    if (std::strcmp(argv[a], "--json") == 0) {
      storage.emplace_back("--benchmark_format=json");
    } else if (std::strncmp(argv[a], "--json=", 7) == 0) {
      storage.emplace_back(std::string("--benchmark_out=") + (argv[a] + 7));
      storage.emplace_back("--benchmark_out_format=json");
    } else {
      storage.emplace_back(argv[a]);
    }
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
