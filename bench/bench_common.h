#ifndef LAYOUTDB_BENCH_BENCH_COMMON_H_
#define LAYOUTDB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/baselines.h"
#include "core/harness.h"
#include "model/layout.h"
#include "util/status.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace bench {

/// Shared configuration for the paper-reproduction benchmark binaries.
///
/// `scale` proportionally shrinks database and device sizes (1.0 = the
/// paper's testbed; the default keeps every benchmark within seconds).
/// Absolute times therefore differ from the paper; the reported speedups
/// and orderings are the reproduction targets.
struct BenchEnv {
  double scale = 0.05;
  uint64_t seed = 7;
  /// Solver threads for the "parallel" benchmark configurations:
  /// 0 = one per hardware core (default), n = exactly n.
  int num_threads = 0;
  /// When --json is given, machine-readable results are written here
  /// ("-" = stdout) in addition to the human-readable tables.
  std::string json_path;
  bool json = false;
  /// Directory of the persistent device cost-model cache
  /// (--calibration-cache=<dir>); empty = no cache (or the
  /// LDB_CALIBRATION_CACHE environment variable).
  std::string calibration_cache;
};

/// Parses --scale=<f>, --seed=<n>, --threads=<n>, --json[=path], and
/// --calibration-cache=<dir> from argv (ignores anything else, so binaries
/// still run under blanket bench runners).
BenchEnv ParseBenchEnv(int argc, char** argv);

/// Calibration options implied by a BenchEnv (parallelism from --threads,
/// cache directory from --calibration-cache).
CalibrationOptions RigCalibration(const BenchEnv& env);

/// ExperimentRig::Create with the env's scale, seed, and calibration
/// options — every bench builds its rigs through this, so they all honor
/// --calibration-cache.
Result<ExperimentRig> MakeRig(const BenchEnv& env, Catalog catalog,
                              std::vector<RigTargetDef> targets);

/// Minimal JSON emitter for benchmark results: a flat array of objects
/// with string / double / integer fields. No dependency, no cleverness —
/// just enough for scripts to scrape benchmark output reliably.
class JsonRows {
 public:
  void BeginRow();
  void Field(const std::string& name, const std::string& value);
  void Field(const std::string& name, const char* value);
  void Field(const std::string& name, double value);
  void Field(const std::string& name, int64_t value);
  void Field(const std::string& name, int value);
  void Field(const std::string& name, bool value);

  /// The accumulated rows as a JSON array.
  std::string ToString() const;

  /// Writes ToString() to `path` ("-" or empty = stdout). Returns false on
  /// I/O failure.
  bool WriteTo(const std::string& path) const;

 private:
  void Append(const std::string& name, const std::string& rendered);

  std::vector<std::string> rows_;
};

/// Prints the standard benchmark banner.
void PrintHeader(const char* figure, const char* description,
                 const BenchEnv& env);

/// Builds the paper's homogeneous rig: TPC-H on four 15K-RPM disks.
Result<ExperimentRig> FourDiskTpchRig(const BenchEnv& env);

/// SEE layout for a rig.
Layout SeeLayout(const ExperimentRig& rig);

/// The full advisor pipeline of Section 6: trace the workloads under SEE,
/// fit workload descriptions, and recommend a layout.
struct AdvisedLayout {
  LayoutProblem problem;
  AdvisorResult result;
};
Result<AdvisedLayout> AdviseForWorkload(const ExperimentRig& rig,
                                        const OlapSpec* olap,
                                        const OltpSpec* oltp,
                                        AdvisorOptions options = {},
                                        double oltp_duration_s = 60.0);

/// Renders the rows of `layout` restricted to the `count` objects with the
/// highest fitted request rates (the way the paper's layout figures show
/// only the most heavily accessed objects), in decreasing request-rate
/// order.
std::string TopObjectsLayoutString(const LayoutProblem& problem,
                                   const Layout& layout, int count);

}  // namespace bench
}  // namespace ldb

#endif  // LAYOUTDB_BENCH_BENCH_COMMON_H_
