// Reproduces paper Figure 12: the advisor-recommended layout for the
// OLAP8-63 workload (eight concurrent queries), most heavily requested
// objects first.
//
// Paper shape to reproduce: unlike the OLAP1-63 layout (Figure 1),
// LINEITEM is *not* completely isolated — query concurrency makes its
// workload less sequential, lowering the penalty for interference — and
// the optimizer instead distributes I_L_ORDERKEY and TEMP SPACE across
// targets to balance load.

#include <cstdio>

#include "bench/bench_common.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 12", "optimized layout for OLAP8-63", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;
  auto olap8 = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
  auto olap1 = MakeOlapSpec(rig->catalog(), 3, 1, env.seed);
  if (!olap8.ok() || !olap1.ok()) return 1;

  auto advised8 = AdviseForWorkload(*rig, &*olap8, nullptr);
  auto advised1 = AdviseForWorkload(*rig, &*olap1, nullptr);
  if (!advised8.ok() || !advised1.ok()) return 1;

  std::printf("Optimized layout for OLAP8-63:\n%s\n",
              TopObjectsLayoutString(advised8->problem,
                                     advised8->result.final_layout, 8)
                  .c_str());

  // The concurrency effect the paper calls out: LINEITEM's fitted run
  // count (sequentiality) is lower under OLAP8-63 than under OLAP1-63.
  int li = -1;
  for (int i = 0; i < advised8->problem.num_objects(); ++i) {
    if (advised8->problem.object_names[static_cast<size_t>(i)] ==
        "LINEITEM") {
      li = i;
    }
  }
  const double run8 =
      advised8->problem.workloads[static_cast<size_t>(li)].run_count;
  const double run1 =
      advised1->problem.workloads[static_cast<size_t>(li)].run_count;
  std::printf(
      "LINEITEM fitted run count: %.0f under OLAP1-63 vs %.0f under "
      "OLAP8-63 %s\n",
      run1, run8,
      run8 < run1 ? "[ok: less sequential under concurrency, as in paper]"
                  : "[MISS]");
  const size_t li_targets = static_cast<size_t>(
      advised8->result.final_layout.TargetsOf(li).size());
  std::printf("LINEITEM spread over %zu targets (paper: not isolated).\n",
              li_targets);
  return 0;
}
