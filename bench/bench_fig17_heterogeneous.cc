// Reproduces paper Figure 17: OLAP8-63 execution times on heterogeneous
// storage-target configurations built from the four disks — "3-1" (a
// 3-disk RAID0 group plus one disk), "2-1-1", and the homogeneous
// "1-1-1-1" — under SEE, the heuristic isolation baselines a DBA might
// pick, and the advisor's optimized layout.
//
// Paper numbers (seconds): 3-1: SEE 18103, isolate-tables 14507,
// optimized 13317 (1.36x); 2-1-1: SEE 16922, isolate-tables-and-indexes
// 22359 (worse than SEE!), optimized 13163 (1.29x); 1-1-1-1: SEE 16201,
// optimized 13608 (1.19x). Shapes to reproduce: SEE degrades as targets
// become more heterogeneous; the tables+indexes isolation heuristic
// backfires; the optimizer wins everywhere.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 17", "heterogeneous disk configurations, OLAP8-63",
              env);

  struct Config {
    const char* name;
    std::vector<RigTargetDef> targets;
  };
  const Config configs[] = {
      {"3-1", {{"raid0x3", 3}, {"disk", 1}}},
      {"2-1-1", {{"raid0x2", 2}, {"diskA", 1}, {"diskB", 1}}},
      {"1-1-1-1", {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}}},
  };

  TextTable table({"Config", "SEE (s)", "Isolate baseline (s)",
                   "Optimized (s)", "Speedup vs SEE"});
  JsonRows json;
  double see_elapsed[3] = {0, 0, 0};
  int row = 0;
  for (const Config& config : configs) {
    auto rig = MakeRig(env, Catalog::TpcH(env.scale), config.targets);
    if (!rig.ok()) return 1;
    auto olap = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
    if (!olap.ok()) return 1;

    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) return 1;

    auto see_run = rig->Execute(SeeLayout(*rig), &*olap, nullptr);
    auto opt_run =
        rig->Execute(advised->result.final_layout, &*olap, nullptr);
    if (!see_run.ok() || !opt_run.ok()) return 1;

    // Heuristic isolation baseline for the heterogeneous configs:
    // tables on the big target ("3-1"); tables / indexes / temp separated
    // ("2-1-1").
    std::string isolate = "n/a";
    double isolate_elapsed = -1;
    Result<Layout> baseline = Status::NotFound("none");
    if (std::string(config.name) == "3-1") {
      baseline = IsolateTablesBaseline(advised->problem, 0);
    } else if (std::string(config.name) == "2-1-1") {
      baseline = IsolateTablesIndexesBaseline(advised->problem, 0, 1, 2);
    }
    if (baseline.ok()) {
      auto run = rig->Execute(*baseline, &*olap, nullptr);
      if (run.ok()) {
        isolate_elapsed = run->elapsed_seconds;
        isolate = StrFormat("%.0f", isolate_elapsed);
      }
    }

    see_elapsed[row++] = see_run->elapsed_seconds;
    table.AddRow({config.name, StrFormat("%.0f", see_run->elapsed_seconds),
                  isolate, StrFormat("%.0f", opt_run->elapsed_seconds),
                  StrFormat("%.2fx", see_run->elapsed_seconds /
                                         opt_run->elapsed_seconds)});
    if (env.json) {
      json.BeginRow();
      json.Field("config", config.name);
      json.Field("see_seconds", see_run->elapsed_seconds);
      json.Field("isolate_seconds", isolate_elapsed);
      json.Field("optimized_seconds", opt_run->elapsed_seconds);
      json.Field("speedup",
                 see_run->elapsed_seconds / opt_run->elapsed_seconds);
      json.Field("advisor_seconds", advised->result.total_seconds());
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "SEE degradation with heterogeneity: 3-1 %.0fs >= 2-1-1 %.0fs >= "
      "1-1-1-1 %.0fs %s\n",
      see_elapsed[0], see_elapsed[1], see_elapsed[2],
      see_elapsed[0] >= see_elapsed[1] && see_elapsed[1] >= see_elapsed[2]
          ? "[ok: matches paper ordering]"
          : "[MISS]");
  if (env.json && !json.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return 0;
}
