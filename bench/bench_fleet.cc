// Fleet-scale advisor benchmark: the hierarchical FleetSolver against the
// flat projected-gradient solver as the problem grows to O(10k) objects on
// O(100) targets — the scale where the flat NLP's dense interference rows
// stop fitting in cache (a dense overlap matrix at N=10k is 800 MB) and
// its per-iteration cost collapses.
//
// Workloads are synthetic multi-tenant fleets built directly in the sparse
// CSR overlap form: objects cluster into tenants of ~8 that co-access each
// other heavily, plus a few weak cross-tenant links, with heavy-tailed
// request rates. That is the regime the sharded solve exploits — the
// co-access graph is nearly block-diagonal, so clustering recovers the
// tenants and the disjoint-target decomposition is near-exact.
//
// Reported per row: shard count, fleet solve time (split into cluster /
// shard-solve / coordination phases), flat solve time, final max
// utilizations, and the quality ratio fleet/flat. The flat solver is
// skipped above --flat-cutoff objects (default 1200), where it takes
// minutes. Rows with N <= 1000 additionally check that the fleet result is
// bit-identical across solver thread counts {1, 2}; any mismatch or an
// infeasible fleet layout fails the binary.
//
// Flags beyond the common bench set:
//   --row=<substr>     run only rows whose name (e.g. "n4000m100")
//                      contains <substr>
//   --flat-cutoff=<n>  largest N for which the flat solver runs

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/fleet.h"
#include "core/initial.h"
#include "model/calibration.h"
#include "solver/projected_gradient.h"
#include "storage/disk.h"
#include "util/random.h"
#include "util/table.h"
#include "util/units.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Synthetic multi-tenant fleet problem with sparse-only overlap rows.
LayoutProblem MakeFleetProblem(int n, int m, const CostModel* cost_model,
                               uint64_t seed) {
  constexpr int kTenantSize = 8;
  Rng rng(MixSeed(seed, static_cast<uint64_t>(n) * 1000 +
                            static_cast<uint64_t>(m)));
  LayoutProblem p;
  p.object_names.reserve(static_cast<size_t>(n));
  p.object_sizes.reserve(static_cast<size_t>(n));
  p.object_kinds.reserve(static_cast<size_t>(n));
  p.workloads.reserve(static_cast<size_t>(n));
  int64_t total_bytes = 0;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    const int64_t size = rng.UniformInt(int64_t{64}, int64_t{512}) * kMiB;
    p.object_sizes.push_back(size);
    total_bytes += size;
    p.object_kinds.push_back(ObjectKind::kTable);

    WorkloadDesc w;
    // Heavy-tailed rates: most objects are cool, a few dominate.
    const double heat = rng.Uniform();
    w.read_rate = 2.0 + 400.0 * heat * heat * heat;
    w.read_size = 64 * kKiB;
    w.write_rate = w.read_rate * rng.Uniform(0.0, 0.25);
    w.write_size = 64 * kKiB;
    w.run_count = rng.Uniform(1.0, 32.0);
    // Sparse overlap row: the whole tenant, the diagonal, and one or two
    // weak cross-tenant links.
    std::vector<std::pair<int, double>> entries;
    const int tenant = i / kTenantSize;
    const int lo = tenant * kTenantSize;
    const int hi = std::min(n, lo + kTenantSize);
    for (int k = lo; k < hi; ++k) {
      if (k == i) continue;
      entries.emplace_back(k, rng.Uniform(0.05, 0.6));
    }
    entries.emplace_back(i, rng.Uniform(0.0, 1.5));  // self-overlap
    const int cross_links = static_cast<int>(rng.UniformInt(uint64_t{3}));
    for (int c = 0; c < cross_links; ++c) {
      const int k = static_cast<int>(
          rng.UniformInt(int64_t{0}, static_cast<int64_t>(n) - 1));
      if (k >= lo && k < hi) continue;
      entries.emplace_back(k, rng.Uniform(0.01, 0.1));
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [k, v] : entries) {
      if (!w.overlap_index.empty() && w.overlap_index.back() == k) continue;
      w.overlap_index.push_back(static_cast<int32_t>(k));
      w.overlap_value.push_back(v);
    }
    p.workloads.push_back(std::move(w));
  }
  const int64_t capacity = total_bytes * 8 / (5 * m) + kMiB;  // 1.6x total
  for (int j = 0; j < m; ++j) {
    AdvisorTarget t;
    t.name = StrFormat("disk%d", j);
    t.capacity_bytes = capacity;
    t.cost_model = cost_model;
    p.targets.push_back(std::move(t));
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  std::string row_filter;
  int flat_cutoff = 1200;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--row=", 6) == 0) {
      row_filter = argv[a] + 6;
    } else if (std::strncmp(argv[a], "--flat-cutoff=", 14) == 0) {
      flat_cutoff = std::atoi(argv[a] + 14);
    }
  }
  PrintHeader("Fleet", "hierarchical vs flat solve at fleet scale", env);

  DiskModel disk(Scsi15kParams());
  auto cm = CalibrateDeviceCached(disk, RigCalibration(env));
  if (!cm.ok()) {
    std::fprintf(stderr, "calibration: %s\n",
                 cm.status().ToString().c_str());
    return 1;
  }

  struct Row {
    int n;
    int m;
  };
  const Row rows[] = {{160, 10},  {1000, 10},  {1000, 40},
                      {4000, 40}, {4000, 100}, {10000, 100}};

  FleetOptions fleet_opts;
  fleet_opts.num_threads = env.num_threads;
  fleet_opts.seed = env.seed;
  SolverOptions flat_opts;
  flat_opts.num_threads = env.num_threads;

  TextTable table({"Row", "N", "M", "Shards", "Fleet (s)", "cluster",
                   "shards", "coord", "Fleet max-u", "Flat (s)",
                   "Flat max-u", "Quality", "Invariant"});
  JsonRows json;
  bool ok = true;
  for (const Row& row : rows) {
    const std::string name = StrFormat("n%dm%d", row.n, row.m);
    if (!row_filter.empty() && name.find(row_filter) == std::string::npos) {
      continue;
    }
    const LayoutProblem problem =
        MakeFleetProblem(row.n, row.m, &*cm, env.seed);

    auto t0 = std::chrono::steady_clock::now();
    const FleetSolver fleet(fleet_opts);
    auto fr = fleet.Solve(problem);
    const double fleet_seconds = SecondsSince(t0);
    if (!fr.ok()) {
      std::fprintf(stderr, "fleet solve (%s): %s\n", name.c_str(),
                   fr.status().ToString().c_str());
      return 1;
    }
    if (!fr->feasible) {
      std::fprintf(stderr, "fleet solve (%s): layout not feasible\n",
                   name.c_str());
      ok = false;
    }

    // Thread-count invariance on the small rows: exactly the same layout
    // at 1 and 2 solver threads.
    bool invariance_checked = false;
    bool invariant = true;
    if (row.n <= 1000) {
      invariance_checked = true;
      for (const int threads : {1, 2}) {
        FleetOptions alt = fleet_opts;
        alt.num_threads = threads;
        auto ar = FleetSolver(alt).Solve(problem);
        if (!ar.ok() || !(ar->layout == fr->layout) ||
            ar->max_utilization != fr->max_utilization) {
          invariant = false;
        }
      }
      ok = ok && invariant;
    }

    double flat_seconds = 0.0;
    double flat_max = 0.0;
    bool flat_ran = false;
    if (row.n <= flat_cutoff) {
      const TargetModel model = problem.MakeTargetModel();
      const LayoutNlpProblem nlp = problem.MakeNlp(&model);
      auto init = InitialLayout(problem);
      if (init.ok()) {
        t0 = std::chrono::steady_clock::now();
        auto sr = ProjectedGradientSolver(flat_opts).Solve(nlp, *init);
        flat_seconds = SecondsSince(t0);
        if (sr.ok()) {
          flat_ran = true;
          flat_max = sr->max_utilization;
        }
      }
    }
    const double quality =
        flat_ran && flat_max > 0.0 ? fr->max_utilization / flat_max : 0.0;

    table.AddRow(
        {name, StrFormat("%d", row.n), StrFormat("%d", row.m),
         StrFormat("%zu", fr->shards.size()),
         StrFormat("%.2f", fleet_seconds),
         StrFormat("%.2f", fr->cluster_seconds),
         StrFormat("%.2f", fr->shard_solve_seconds),
         StrFormat("%.2f", fr->coordination_seconds),
         StrFormat("%.4f", fr->max_utilization),
         flat_ran ? StrFormat("%.2f", flat_seconds) : std::string("-"),
         flat_ran ? StrFormat("%.4f", flat_max) : std::string("-"),
         flat_ran ? StrFormat("%.3f", quality) : std::string("-"),
         invariance_checked ? (invariant ? "yes" : "MISMATCH")
                            : std::string("-")});
    if (env.json) {
      json.BeginRow();
      json.Field("row", name);
      json.Field("n", row.n);
      json.Field("m", row.m);
      json.Field("shards", static_cast<int64_t>(fr->shards.size()));
      json.Field("fleet_seconds", fleet_seconds);
      json.Field("cluster_seconds", fr->cluster_seconds);
      json.Field("shard_solve_seconds", fr->shard_solve_seconds);
      json.Field("coordination_seconds", fr->coordination_seconds);
      json.Field("fleet_max_utilization", fr->max_utilization);
      json.Field("coordination_rounds", fr->coordination_rounds);
      json.Field("accepted_moves", fr->accepted_moves);
      json.Field("feasible", fr->feasible);
      json.Field("flat_ran", flat_ran);
      json.Field("flat_seconds", flat_seconds);
      json.Field("flat_max_utilization", flat_max);
      json.Field("quality_vs_flat", quality);
      json.Field("thread_invariant", invariance_checked ? invariant : true);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Hierarchical solve: time should stay near-linear in N while flat "
      "blows up; quality (fleet/flat max-u, lower=better) should stay "
      "within a few percent where both run %s\n",
      ok ? "[ok]" : "[FAIL]");
  if (env.json && !json.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return ok ? 0 : 1;
}
