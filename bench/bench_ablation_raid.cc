// RAID-level ablation: the same four disks organized as RAID0 groups,
// RAID1 mirrored pairs, and one RAID5 group, under the OLAP8-63 workload
// (read-heavy) and the TPC-C OLTP workload (write-heavy).
//
// The paper's targets are RAID0 groups and single disks; this ablation
// exercises the library's RAID1/RAID5 support: mirrored pairs double read
// parallelism but halve capacity and pay full write fan-out; RAID5 pays
// the small-write parity penalty, which the write-heavy OLTP workload
// exposes.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"
#include "workload/catalog.h"
#include "workload/spec.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("RAID ablation",
              "four disks as RAID0 / RAID1 pairs / RAID5, advised layouts",
              env);

  struct Config {
    const char* name;
    std::vector<RigTargetDef> targets;
  };
  RigTargetDef raid1a{"mirrorA", 2};
  raid1a.raid_level = RaidLevel::kRaid1;
  RigTargetDef raid1b{"mirrorB", 2};
  raid1b.raid_level = RaidLevel::kRaid1;
  RigTargetDef raid5{"raid5x4", 4};
  raid5.raid_level = RaidLevel::kRaid5;
  const Config configs[] = {
      {"4 x single disk (RAID0)", {{"d0"}, {"d1"}, {"d2"}, {"d3"}}},
      {"2 x RAID0 pair", {{"pairA", 2}, {"pairB", 2}}},
      {"2 x RAID1 mirror", {raid1a, raid1b}},
      {"1 x RAID5 (4 disks)", {raid5}},
  };

  TextTable table({"Configuration", "Targets", "OLAP8-63 opt (s)",
                   "OLTP opt (tpm)"});
  for (const Config& config : configs) {
    // OLAP side (TPC-H).
    auto rig = MakeRig(env, Catalog::TpcH(env.scale), config.targets);
    if (!rig.ok()) {
      std::fprintf(stderr, "%s: %s\n", config.name,
                   rig.status().ToString().c_str());
      continue;
    }
    auto olap = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
    if (!olap.ok()) continue;
    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    std::string olap_cell = "n/a";
    if (advised.ok()) {
      auto run = rig->Execute(advised->result.final_layout, &*olap, nullptr);
      if (run.ok()) olap_cell = StrFormat("%.0f", run->elapsed_seconds);
    }

    // OLTP side (TPC-C): write-heavy, exposes RAID5's parity penalty.
    auto oltp_rig = MakeRig(env, Catalog::TpcC(env.scale), config.targets);
    std::string oltp_cell = "n/a";
    if (oltp_rig.ok()) {
      auto oltp = MakeOltpSpec(oltp_rig->catalog(), "", 9, 5.0);
      if (oltp.ok()) {
        auto advised_oltp = AdviseForWorkload(*oltp_rig, nullptr, &*oltp,
                                              AdvisorOptions{});
        if (advised_oltp.ok()) {
          auto run = oltp_rig->Execute(advised_oltp->result.final_layout,
                                       nullptr, &*oltp, /*duration=*/60.0);
          if (run.ok()) oltp_cell = StrFormat("%.0f", run->tpm);
        }
      }
    }
    table.AddRow({config.name,
                  StrFormat("%zu", config.targets.size()), olap_cell,
                  oltp_cell});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Expected shapes: RAID1 mirrors competitive on the read-heavy OLAP "
      "workload; RAID5 clearly behind on write-heavy OLTP (parity "
      "read-modify-write).\n");
  return 0;
}
