// Sim-vs-real drift: the same request classes replayed once through the
// event-queue simulator (SimBackend) and once through real files
// (FileBackend), reporting per-class service-time drift.
//
// Each class is a (pattern, request size, direction) tuple — the axes the
// calibrated cost tables are built over — replayed as a serial (depth-1)
// request chain against one target, so per-request service time is
// directly observable on both engines with no queueing ambiguity. The sim
// side runs on a calibrated 15K-disk model in virtual seconds; the real
// side stripes the same byte space over a file under --backend-dir and
// measures wall-clock seconds (timing-only replay: null data buffers move
// through the backend's aligned scratch).
//
// Absolute drift against the *disk* model is expected on any modern
// filesystem (page cache, NVMe, tmpfs) — the point of the bench is the
// measurement seam itself: the table makes the gap visible, per class, so
// a file backend on the paper's actual testbed hardware can be validated
// against the model, and the relative ordering of classes (sequential
// faster than random, large requests amortizing better) can be checked
// anywhere. A `calib` sanity column reruns the sim side a second time and
// must reproduce it exactly (the sim is deterministic).
//
// --json emits one row per (target, class) for tools/bench_record.py.
// --backend-dir=<dir> places the backing files (default: a fresh
// directory under the system temp dir). --requests=<n> sets the per-class
// request count.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "io/backend.h"
#include "io/file_backend.h"
#include "io/sim_backend.h"
#include "storage/disk.h"
#include "storage/storage_system.h"
#include "util/random.h"
#include "util/table.h"
#include "util/units.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

struct RequestClass {
  const char* name;
  int64_t request_bytes;
  bool is_write;
  bool sequential;
};

const RequestClass kClasses[] = {
    {"seq-read-256K", 256 * kKiB, false, true},
    {"seq-read-64K", 64 * kKiB, false, true},
    {"rand-read-64K", 64 * kKiB, false, false},
    {"rand-read-8K", 8 * kKiB, false, false},
    {"seq-write-256K", 256 * kKiB, true, true},
    {"rand-write-8K", 8 * kKiB, true, false},
};

/// The byte space each class walks (shared by both engines so offsets are
/// identical request for request).
constexpr int64_t kSpanBytes = 64 * kMiB;

/// Offsets for one class: sequential wraps a linear walk, random draws
/// aligned offsets from a seeded stream.
std::vector<int64_t> MakeOffsets(const RequestClass& c, int requests,
                                 uint64_t seed) {
  std::vector<int64_t> offsets;
  offsets.reserve(static_cast<size_t>(requests));
  Rng rng(seed);
  const int64_t slots = kSpanBytes / c.request_bytes;
  for (int k = 0; k < requests; ++k) {
    const int64_t slot =
        c.sequential
            ? k % slots
            : static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(slots)));
    offsets.push_back(slot * c.request_bytes);
  }
  return offsets;
}

double MeanS(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
}

double P99S(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t idx = static_cast<size_t>(
      0.99 * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

/// Serial replay through the simulator on a *fresh* system (so the run is
/// a pure function of the offsets — repeating it must reproduce every
/// service time bit for bit): each request's virtual service time is its
/// completion time minus its submit time.
std::vector<double> ReplaySim(const DiskModel& proto, const RequestClass& c,
                              const std::vector<int64_t>& offsets) {
  std::vector<TargetSpec> specs{{"d0", &proto, 1, 64 * kKiB}};
  StorageSystem sys(specs);
  SimBackend backend(&sys);
  std::vector<double> service;
  service.reserve(offsets.size());
  for (int64_t off : offsets) {
    TargetRequest req;
    req.offset = off;
    req.size = c.request_bytes;
    req.is_write = c.is_write;
    const double submitted = sys.Now();
    backend.Submit(0, req, nullptr,
                   [&service, submitted](double when, const Status&) {
                     service.push_back(when - submitted);
                   });
    sys.queue().RunUntilIdle();
  }
  return service;
}

/// Serial replay through the file backend: wall-clock per request,
/// measured around Submit+Drain (depth 1, so no queueing is hidden).
std::vector<double> ReplayReal(FileBackend* backend, const RequestClass& c,
                               const std::vector<int64_t>& offsets) {
  std::vector<double> service;
  service.reserve(offsets.size());
  for (int64_t off : offsets) {
    TargetRequest req;
    req.offset = off;
    req.size = c.request_bytes;
    req.is_write = c.is_write;
    const auto t0 = std::chrono::steady_clock::now();
    Status got = Status::Ok();
    backend->Submit(0, req, nullptr,
                    [&got](double, const Status& s) { got = s; });
    const Status drained = backend->Drain();
    const auto t1 = std::chrono::steady_clock::now();
    if (!got.ok() || !drained.ok()) continue;  // dropped from the sample
    service.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  return service;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  std::string backend_dir;
  int requests = 64;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--backend-dir=", 14) == 0) {
      backend_dir = argv[a] + 14;
    } else if (std::strncmp(argv[a], "--requests=", 11) == 0) {
      requests = std::atoi(argv[a] + 11);
    }
  }
  if (requests <= 0) {
    std::fprintf(stderr, "--requests needs a count > 0\n");
    return 1;
  }
  if (backend_dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    backend_dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                  StrFormat("/bench_realio_%d", static_cast<int>(::getpid()));
  }
  PrintHeader("Real I/O",
              "sim-vs-real service-time drift per request class", env);

  // Sim side: one calibrated 15K disk, the model every cost table and the
  // drift comparison are anchored to.
  DiskModel proto(Scsi15kParams());

  // Real side: one backing file covering the same span. Populate it once
  // so reads hit written extents, not filesystem holes.
  FileBackendOptions fopts;
  fopts.dir = backend_dir;
  fopts.capacity_bytes = {kSpanBytes};
  fopts.quiet = true;
  auto opened = FileBackend::Open(fopts);
  if (!opened.ok()) {
    std::fprintf(stderr, "file backend: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  FileBackend* real = opened->get();
  {
    std::vector<char> block(static_cast<size_t>(kMiB), 0x5a);
    for (int64_t off = 0; off < kSpanBytes; off += kMiB) {
      const Status s = real->WriteSync(0, off, kMiB, block.data());
      if (!s.ok()) {
        std::fprintf(stderr, "prefill: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    const Status s = real->Sync();
    if (!s.ok()) {
      std::fprintf(stderr, "prefill sync: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("backing file: %s (%s, block %lld B)\n\n",
              real->target_path(0).c_str(),
              real->geometry().direct_io ? "O_DIRECT" : "buffered",
              static_cast<long long>(real->geometry().logical_block_bytes));

  TextTable table({"class", "requests", "sim mean", "real mean", "sim p99",
                   "real p99", "drift", "calib"});
  JsonRows rows;
  bool sim_reproducible = true;
  for (const RequestClass& c : kClasses) {
    const std::vector<int64_t> offsets =
        MakeOffsets(c, requests, env.seed);
    const std::vector<double> sim_s = ReplaySim(proto, c, offsets);
    const std::vector<double> real_s = ReplayReal(real, c, offsets);
    // The sim is deterministic: replaying the same offsets on a fresh
    // system must reproduce every service time exactly.
    const bool calib_ok = sim_s == ReplaySim(proto, c, offsets);
    sim_reproducible = sim_reproducible && calib_ok;

    const double sim_mean = MeanS(sim_s);
    const double real_mean = MeanS(real_s);
    const double drift = sim_mean > 0.0 ? real_mean / sim_mean : 0.0;
    table.AddRow({c.name, StrFormat("%d", requests),
                  StrFormat("%.3f ms", sim_mean * 1e3),
                  StrFormat("%.3f ms", real_mean * 1e3),
                  StrFormat("%.3f ms", P99S(sim_s) * 1e3),
                  StrFormat("%.3f ms", P99S(real_s) * 1e3),
                  StrFormat("%.4fx", drift), calib_ok ? "ok" : "DRIFTED"});

    rows.BeginRow();
    rows.Field("bench", "realio");
    rows.Field("class", c.name);
    rows.Field("request_bytes", c.request_bytes);
    rows.Field("requests", static_cast<int64_t>(real_s.size()));
    rows.Field("sim_mean_ms", sim_mean * 1e3);
    rows.Field("real_mean_ms", real_mean * 1e3);
    rows.Field("sim_p99_ms", P99S(sim_s) * 1e3);
    rows.Field("real_p99_ms", P99S(real_s) * 1e3);
    rows.Field("drift", drift);
    rows.Field("direct_io", real->geometry().direct_io);
    rows.Field("sim_reproducible", calib_ok);
  }
  std::printf("%s\n", table.ToString().c_str());

  const BackendCounters rc = real->counters();
  std::printf("real backend: %llu reads, %llu writes, %.1f MB moved, "
              "%.3f s in I/O syscalls, %llu unaligned, %llu errors\n",
              static_cast<unsigned long long>(rc.reads),
              static_cast<unsigned long long>(rc.writes),
              static_cast<double>(rc.bytes_read + rc.bytes_written) / 1e6,
              rc.io_time_s,
              static_cast<unsigned long long>(rc.unaligned_requests),
              static_cast<unsigned long long>(rc.errors));
  if (!sim_reproducible) {
    std::fprintf(stderr, "FAIL: sim replay is not reproducible\n");
  }

  if (env.json && !rows.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return sim_reproducible ? 0 : 1;
}
