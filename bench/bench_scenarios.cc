// Adversarial scenario matrix: the declarative scenario library replayed
// as an oracle / static / autopilot / fleet-solver validation grid.
//
// Five scenario classes from src/scenario (each a one-line declarative
// spec, the same grammar the `scenario` problem-file directive accepts):
//
//   phase_shift   two tenants swap dominance mid-run (×30 up, ×0.05 down)
//   tenant_churn  a second tenant arrives at t=50 at twice the rate
//   flash_crowd   a ×50 crowd descends on a quiet tenant for 30 s
//   graph_rewire  community co-access structure rewires every 40 s
//   slow_drift    a geometric ramp held just under the drift threshold
//                 (caught only by the sustained sub-threshold detector)
//
// For every class the analytic timeline (BuildTimeline) splits the run
// into segments. A calibration pass replays the scenario under SEE (the
// tracing layout) with an OnlineAnalyzer attached and snapshots fitted
// workload descriptions at every segment end — the same frame the
// autopilot's own analyzer sees, exactly how the other benches fit
// reference workloads. The matrix then scores four layouts per segment
// under the segment's fitted workloads (model max utilization):
//
//   oracle     LayoutAdvisor re-advised per segment (clairvoyant)
//   static     advised once for segment 0, never changed
//   autopilot  the closed loop's deployed layout, sampled at each
//              segment end via AutopilotOptions::layout_sample_times
//   fleet      FleetSolver per segment (the sharded hierarchical path,
//              cross-checked against the flat oracle; no bar)
//
// Acceptance (scale-gated at >= 0.05, like the other benches): on every
// class where the static layout degrades by more than 15% versus the
// oracle, the autopilot must land within 10% of the oracle. Enforced at
// every scale: each class's autopilot run is bit-identical across solver
// thread counts 1/2/8 (full report fingerprints). Exit is nonzero when
// either bar fails.
//
// --json emits one row per class for tools/bench_record.py. --journal=<dir>
// gives every autopilot replay a durable control journal under <dir>,
// running the whole matrix through the WAL write path (nightly CI does
// this); journaling must never change a fingerprint.

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/advisor.h"
#include "core/autopilot.h"
#include "core/fleet.h"
#include "model/target_model.h"
#include "monitor/online_analyzer.h"
#include "scenario/scenario.h"
#include "scenario/sim.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

// One scenario class: a name, the declarative spec, and the autopilot
// loop configuration it is validated under.
struct ScenarioClass {
  std::string name;
  std::string spec;
  // Sustained sub-threshold detection (0 = edge detector only). The
  // slow_drift class holds its score under the edge threshold, so it is
  // only caught when these are set.
  double sustained_ratio = 0.0;
  double sustained_s = 0.0;
  // Edge-trip threshold; slow_drift raises it so its ramp stays
  // sub-threshold and only the sustained path can catch it.
  double threshold = 0.3;
};

// Fast-reacting loop for the 120-160 s scenario runs: short analyzer
// memory, two consecutive trips, migrations fast enough (256 MB/s) that
// a re-layout lands well inside a segment.
AutopilotOptions LoopOptions(const BenchEnv& env, const ScenarioClass& sc) {
  AutopilotOptions o;
  o.config.analyzer.half_life_s = 5.0;
  o.config.analyzer.sparse_overlap = true;
  o.config.check_interval_s = 2.0;
  o.config.drift.threshold = sc.threshold;
  o.config.drift.trip_evaluations = 2;
  o.config.drift.cooldown_s = 10.0;
  o.config.drift.sustained_ratio = sc.sustained_ratio;
  o.config.drift.sustained_s = sc.sustained_s;
  o.config.gate_min_gain = 0.01;
  o.config.gate_horizon_s = 2000.0;
  o.migrate.bandwidth_bytes_per_s = 256.0 * (1 << 20);
  o.advisor.solver.num_threads = env.num_threads;
  return o;
}

// Segment-weighted mean of per-segment max utilizations: the class-level
// score a layout policy gets for the whole scenario.
double WeightedMean(const std::vector<ScenarioSegment>& segments,
                    const std::vector<double>& utils) {
  double acc = 0.0, total = 0.0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const double w = segments[i].end_s - segments[i].start_s;
    acc += w * utils[i];
    total += w;
  }
  return total > 0.0 ? acc / total : 0.0;
}

struct ClassResult {
  std::vector<ScenarioSegment> segments;
  double oracle = 0.0;
  double stat = 0.0;
  double autopilot = 0.0;
  double fleet = 0.0;
  bool static_degraded = false;  ///< static > oracle * 1.15
  bool within = false;           ///< autopilot <= oracle * 1.10 + 0.01
  bool deterministic = false;    ///< fingerprints identical across threads
  int migrations = 0;
  double final_drift_score = 0.0;
  uint64_t requests = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  // --journal=<dir>: run every autopilot replay with a durable control
  // journal under <dir> (one WAL per class x thread count), exercising the
  // WAL write path — including the scenario-position records — under the
  // full matrix. Determinism is still enforced: journaling must never
  // perturb the simulation.
  std::string journal_dir;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--journal=", 10) == 0) {
      journal_dir = argv[a] + 10;
    }
  }
  if (!journal_dir.empty()) {
    ::mkdir(journal_dir.c_str(), 0755);  // best-effort; Open reports errors
  }
  PrintHeader("Scenarios",
              "adversarial scenario matrix: oracle/static/autopilot/fleet",
              env);

  // Synthetic multi-tenant catalog: 16 equal objects, two 8-object tenant
  // ranges, on the paper's four-disk testbed. Sizes scale with the bench
  // scale the same way the TPC catalogs do.
  const int64_t obj_bytes =
      std::max<int64_t>(1 << 20, static_cast<int64_t>(256.0 * (1 << 20) *
                                                      env.scale));
  Catalog catalog;
  for (int i = 0; i < 16; ++i) {
    catalog.Add(DbObject{StrFormat("obj%02d", i), ObjectKind::kTable,
                         obj_bytes});
  }
  auto rig = MakeRig(env, catalog,
                     {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }
  const int n = rig->catalog().num_objects();

  // The scenario library. Rates are arrivals/s per object; every arrival
  // issues a burst of community co-accessed requests, so the aggregate
  // load keeps the four disks busy without saturating them.
  std::vector<ScenarioClass> classes;
  classes.push_back(
      {"phase_shift",
       "duration=120;seed=13;"
       "tenant=alpha,objects=0:8,rate=10,bytes=65536,write=0.2,runs=4;"
       "tenant=beta,objects=8:16,rate=0.5,bytes=65536,write=0.2,runs=4;"
       "phase=alpha,start=60,end=120,x=0.05;"
       "phase=beta,start=60,end=120,x=30;"
       "graph=alpha,communities=4,coaccess=0.8,burst=3;"
       "graph=beta,communities=4,coaccess=0.8,burst=3"});
  classes.push_back(
      {"tenant_churn",
       "duration=120;seed=17;"
       "tenant=resident,objects=0:8,rate=7,bytes=65536,write=0.2,runs=4;"
       "tenant=newcomer,objects=8:16,rate=14,bytes=65536,write=0.2,"
       "runs=4,arrive=50;"
       "graph=resident,communities=4,coaccess=0.8,burst=3;"
       "graph=newcomer,communities=4,coaccess=0.8,burst=3"});
  classes.push_back(
      {"flash_crowd",
       "duration=120;seed=23;"
       "tenant=steady,objects=0:8,rate=6,bytes=65536,write=0.2,runs=4;"
       "tenant=spiky,objects=8:16,rate=0.3,bytes=65536,write=0.2,runs=4;"
       "flash=spiky,at=60,for=30,x=50;"
       "graph=steady,communities=4,coaccess=0.8,burst=3;"
       "graph=spiky,communities=4,coaccess=0.8,burst=3"});
  classes.push_back(
      {"graph_rewire",
       "duration=120;seed=29;"
       "tenant=social,objects=0:16,rate=3,bytes=262144,write=0.2,runs=4;"
       "graph=social,communities=2,coaccess=0.9,rewire=40,burst=4",
       /*sustained_ratio=*/0.0, /*sustained_s=*/0.0, /*threshold=*/0.2});
  classes.push_back(
      {"slow_drift",
       "duration=170;seed=31;"
       "tenant=base,objects=0:8,rate=5,bytes=65536,write=0.2,runs=4;"
       "tenant=creeper,objects=8:16,rate=0.2,bytes=65536,write=0.2,runs=4;"
       "drift=creeper,start=30,end=120,x=60;"
       "graph=base,communities=4,coaccess=0.8,burst=3;"
       "graph=creeper,communities=4,coaccess=0.8,burst=3",
       /*sustained_ratio=*/0.5, /*sustained_s=*/15.0, /*threshold=*/0.45});

  const bool enforce_quality_bars = env.scale >= 0.05 - 1e-12;
  bool all_ok = true;
  JsonRows json;
  TextTable table({"class", "segs", "oracle", "static", "autopilot",
                   "fleet", "migr", "degraded", "within10%", "threads"});

  for (const ScenarioClass& sc : classes) {
    auto spec = ParseScenarioSpec(sc.spec);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s: %s\n", sc.name.c_str(),
                   spec.status().ToString().c_str());
      return 1;
    }
    ClassResult r;
    r.segments = BuildTimeline(*spec, n);

    // Calibration pass: replay the scenario statically under SEE with an
    // OnlineAnalyzer (same window as the loop's) and snapshot the fitted
    // workloads at every segment end. These are the per-segment reference
    // descriptions every layout in the matrix is scored under.
    auto seed_problem = rig->MakeProblem(r.segments.front().workloads);
    if (!seed_problem.ok()) {
      std::fprintf(stderr, "%s problem: %s\n", sc.name.c_str(),
                   seed_problem.status().ToString().c_str());
      return 1;
    }
    OnlineAnalyzerOptions an;
    an.half_life_s = 5.0;
    an.sparse_overlap = true;
    OnlineAnalyzer analyzer(n, an);
    std::vector<WorkloadSet> fitted;
    auto fit_system = rig->MakeSystem();
    for (const ScenarioSegment& seg : r.segments) {
      fit_system->queue().ScheduleAt(seg.end_s - 1e-6, [&analyzer, &fitted]() {
        fitted.push_back(analyzer.Snapshot());
      });
    }
    auto fit = PlayScenarioStatic(
        fit_system.get(), *seed_problem, SeeLayout(*rig), *spec,
        FaultPlan{}, ScenarioPlayerOptions{},
        [&analyzer](const IoEvent& ev) { analyzer.Observe(ev); });
    if (!fit.ok()) {
      std::fprintf(stderr, "%s fit pass: %s\n", sc.name.c_str(),
                   fit.status().ToString().c_str());
      return 1;
    }
    if (fitted.size() != r.segments.size()) {
      std::fprintf(stderr, "%s fit pass: %zu/%zu snapshots\n",
                   sc.name.c_str(), fitted.size(), r.segments.size());
      return 1;
    }

    // The deployed problem: segment 0's fitted workloads (what a DBA
    // would have advised for before the scenario unfolds). Also the
    // autopilot's drift reference.
    auto problem = rig->MakeProblem(fitted.front());
    if (!problem.ok()) {
      std::fprintf(stderr, "%s problem: %s\n", sc.name.c_str(),
                   problem.status().ToString().c_str());
      return 1;
    }
    const TargetModel model = problem->MakeTargetModel();

    AdvisorOptions aopts;
    aopts.solver.num_threads = env.num_threads;
    const LayoutAdvisor advisor(aopts);
    auto static_adv = advisor.Recommend(*problem);
    if (!static_adv.ok()) {
      std::fprintf(stderr, "%s static advise: %s\n", sc.name.c_str(),
                   static_adv.status().ToString().c_str());
      return 1;
    }
    const Layout static_layout = static_adv->final_layout;

    // Oracle and fleet columns: re-solve per segment, score under the
    // segment's workloads.
    std::vector<double> oracle_u, static_u, fleet_u;
    for (const WorkloadSet& ws : fitted) {
      auto seg_problem = rig->MakeProblem(ws);
      if (!seg_problem.ok()) return 1;
      auto seg_adv = advisor.Recommend(*seg_problem);
      if (!seg_adv.ok()) {
        std::fprintf(stderr, "%s oracle advise: %s\n", sc.name.c_str(),
                     seg_adv.status().ToString().c_str());
        return 1;
      }
      oracle_u.push_back(
          model.MaxUtilization(ws, seg_adv->final_layout));
      static_u.push_back(model.MaxUtilization(ws, static_layout));
      FleetOptions fopts;
      fopts.solver.num_threads = env.num_threads;
      auto fleet = FleetSolver(fopts).Solve(*seg_problem);
      if (!fleet.ok()) {
        std::fprintf(stderr, "%s fleet solve: %s\n", sc.name.c_str(),
                     fleet.status().ToString().c_str());
        return 1;
      }
      fleet_u.push_back(model.MaxUtilization(ws, fleet->layout));
    }

    // Autopilot column: play the scenario under the closed loop with the
    // static layout deployed, sampling the deployed layout at every
    // segment end. Repeated at solver threads 1/2/8 — the full report
    // fingerprint must be bit-identical (enforced at every scale).
    std::vector<double> sample_times;
    for (const ScenarioSegment& seg : r.segments) {
      sample_times.push_back(seg.end_s - 1e-9);
    }
    std::vector<std::string> prints;
    ScenarioOutcome scored;
    for (int threads : {1, 2, 8}) {
      AutopilotOptions o = LoopOptions(env, sc);
      o.advisor.solver.num_threads = threads;
      o.layout_sample_times = sample_times;
      if (!journal_dir.empty()) {
        o.journal_path = journal_dir +
                         StrFormat("/%s-t%d.wal", sc.name.c_str(), threads);
        std::remove(o.journal_path.c_str());
      }
      auto system = rig->MakeSystem();
      auto out = PlayScenarioAutopilot(system.get(), *problem,
                                       static_layout, *spec, FaultPlan{},
                                       o);
      if (!out.ok()) {
        std::fprintf(stderr, "%s autopilot: %s\n", sc.name.c_str(),
                     out.status().ToString().c_str());
        return 1;
      }
      prints.push_back(out->Fingerprint());
      if (threads == 1) scored = std::move(*out);
    }
    r.deterministic = prints[0] == prints[1] && prints[0] == prints[2];

    std::vector<double> ap_u;
    for (size_t i = 0; i < r.segments.size(); ++i) {
      ap_u.push_back(model.MaxUtilization(
          fitted[i], scored.autopilot.sampled_layouts[i].layout));
    }

    r.oracle = WeightedMean(r.segments, oracle_u);
    r.stat = WeightedMean(r.segments, static_u);
    r.autopilot = WeightedMean(r.segments, ap_u);
    r.fleet = WeightedMean(r.segments, fleet_u);
    r.static_degraded = r.stat > r.oracle * 1.15;
    r.within = r.autopilot <= r.oracle * 1.10 + 0.01;
    r.migrations = scored.autopilot.migrations_completed;
    r.final_drift_score = scored.autopilot.final_drift_score;
    r.requests = scored.run.total_requests;

    const bool class_ok =
        r.deterministic &&
        (!enforce_quality_bars || !r.static_degraded || r.within);
    all_ok = all_ok && class_ok;

    table.AddRow({sc.name, StrFormat("%d", (int)r.segments.size()),
                  StrFormat("%.1f%%", 100 * r.oracle),
                  StrFormat("%.1f%%", 100 * r.stat),
                  StrFormat("%.1f%%", 100 * r.autopilot),
                  StrFormat("%.1f%%", 100 * r.fleet),
                  StrFormat("%d", r.migrations),
                  r.static_degraded ? "yes" : "no",
                  r.static_degraded ? (r.within ? "yes" : "NO") : "-",
                  r.deterministic ? "1=2=8" : "DIVERGED"});
    json.BeginRow();
    json.Field("row", sc.name);
    json.Field("segments", static_cast<int>(r.segments.size()));
    json.Field("oracle_max_util", r.oracle);
    json.Field("static_max_util", r.stat);
    json.Field("autopilot_max_util", r.autopilot);
    json.Field("fleet_max_util", r.fleet);
    json.Field("static_degraded", r.static_degraded);
    json.Field("autopilot_within_10pct", r.within);
    json.Field("migrations_completed", r.migrations);
    json.Field("threads_identical", r.deterministic);
    json.Field("final_drift_score", r.final_drift_score);
    json.Field("requests", static_cast<int64_t>(r.requests));
  }

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nBars: where static degrades >15%% vs the per-segment oracle the "
      "autopilot must land within 10%% of it (scale-gated%s); every class "
      "must be bit-identical across solver threads 1/2/8 (always "
      "enforced).\n%s\n",
      enforce_quality_bars ? ", active" : ", inactive at this scale",
      all_ok ? "[ok]" : "[MISS]");

  if (env.json && !json.WriteTo(env.json_path)) return 1;
  return all_ok ? 0 : 1;
}
