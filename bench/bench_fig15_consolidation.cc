// Reproduces paper Figure 15: the consolidation scenario — a TPC-H
// instance running OLAP1-21 and a TPC-C instance running the OLTP workload
// share the same four disks (40 objects total).
//
// Paper numbers: OLAP1-21 24416s -> 17005s (1.43x); OLTP 304 -> 360 tpmC
// (1.18x). Shape to reproduce: the optimized layout improves the OLAP
// completion time substantially and does not sacrifice (ideally improves)
// OLTP throughput, primarily by separating the TPC-H scan tables from the
// TPC-C random-access tables.

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 15", "consolidated OLAP + OLTP on four disks", env);

  Catalog merged = Catalog::Merge(Catalog::TpcH(env.scale),
                                  Catalog::TpcC(env.scale), "", "C_");
  auto rig = MakeRig(env, merged,
                     {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}});
  if (!rig.ok()) return 1;

  auto olap = MakeOlapSpec(rig->catalog(), 1, 1, env.seed);
  auto oltp = MakeOltpSpec(rig->catalog(), "C_", 9, /*warmup_s=*/5.0);
  if (!olap.ok() || !oltp.ok()) return 1;

  auto advised = AdviseForWorkload(*rig, &*olap, &*oltp);
  if (!advised.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advised.status().ToString().c_str());
    return 1;
  }
  auto see_run = rig->Execute(SeeLayout(*rig), &*olap, &*oltp);
  auto opt_run = rig->Execute(advised->result.final_layout, &*olap, &*oltp);
  if (!see_run.ok() || !opt_run.ok()) return 1;

  TextTable table({"Layout", "OLAP1-21 (s)", "OLTP (tpm)"});
  table.AddRow({"SEE baseline", StrFormat("%.0f", see_run->elapsed_seconds),
                StrFormat("%.0f", see_run->tpm)});
  table.AddRow({"Optimized", StrFormat("%.0f", opt_run->elapsed_seconds),
                StrFormat("%.0f", opt_run->tpm)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "OLAP speedup %.2fx (paper 1.43x); OLTP throughput ratio %.2fx "
      "(paper 1.18x)\n",
      see_run->elapsed_seconds / opt_run->elapsed_seconds,
      opt_run->tpm / see_run->tpm);
  if (env.json) {
    JsonRows json;
    json.BeginRow();
    json.Field("workload", "consolidation-olap1-21");
    json.Field("see_seconds", see_run->elapsed_seconds);
    json.Field("optimized_seconds", opt_run->elapsed_seconds);
    json.Field("speedup",
               see_run->elapsed_seconds / opt_run->elapsed_seconds);
    json.Field("paper_speedup", 1.43);
    json.Field("see_tpm", see_run->tpm);
    json.Field("optimized_tpm", opt_run->tpm);
    json.Field("tpm_ratio", opt_run->tpm / see_run->tpm);
    json.Field("paper_tpm_ratio", 1.18);
    json.Field("advisor_seconds", advised->result.total_seconds());
    if (!json.WriteTo(env.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
