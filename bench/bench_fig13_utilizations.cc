// Reproduces paper Figure 13: estimated storage-target utilizations (µ_j)
// at each stage of the advisor's execution — under the SEE baseline, the
// heuristic initial layout, the NLP solver's layout, and the final
// regularized layout — for OLAP1-63 and OLAP8-63.
//
// Paper shape to reproduce: SEE utilizations are flat but high (~67% for
// OLAP1-63); the initial layouts are unbalanced; the solver's layouts are
// balanced and lower; regularization stays close to the solver.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 13",
              "estimated utilizations at each advisor stage", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;

  for (int concurrency : {1, 8}) {
    auto olap = MakeOlapSpec(rig->catalog(), 3, concurrency, env.seed);
    if (!olap.ok()) return 1;
    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) return 1;
    const TargetModel model = advised->problem.MakeTargetModel();
    const auto see_mu =
        model.Utilizations(advised->problem.workloads, SeeLayout(*rig));

    std::printf("%s:\n", olap->name.c_str());
    TextTable table({"Stage", "T0", "T1", "T2", "T3", "max"});
    auto add = [&table](const char* stage, const std::vector<double>& mu) {
      std::vector<std::string> row{stage};
      for (double m : mu) row.push_back(StrFormat("%.1f%%", 100 * m));
      row.push_back(StrFormat("%.1f%%",
                              100 * *std::max_element(mu.begin(), mu.end())));
      table.AddRow(std::move(row));
    };
    add("SEE baseline", see_mu);
    add("initial layout", advised->result.utilization_initial);
    add("NLP solver", advised->result.utilization_solver);
    add("regularized", advised->result.utilization_final);
    std::printf("%s\n", table.ToString().c_str());

    const double spread_initial =
        *std::max_element(advised->result.utilization_initial.begin(),
                          advised->result.utilization_initial.end()) -
        *std::min_element(advised->result.utilization_initial.begin(),
                          advised->result.utilization_initial.end());
    const double spread_solver =
        *std::max_element(advised->result.utilization_solver.begin(),
                          advised->result.utilization_solver.end()) -
        *std::min_element(advised->result.utilization_solver.begin(),
                          advised->result.utilization_solver.end());
    std::printf(
        "  initial layout imbalance %.1f%% vs solver %.1f%% %s\n\n",
        100 * spread_initial, 100 * spread_solver,
        spread_solver < spread_initial
            ? "[ok: solver balances the unbalanced seed]"
            : "[MISS]");
  }
  return 0;
}
