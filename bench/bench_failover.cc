// Failover benchmark: what happens to the advised layout when a disk dies
// mid-run, and how much of the loss failure-aware re-layout wins back.
//
// Protocol (default 4-disk TPC-H rig, OLAP8):
//   1. Differential self-check: ExecuteWithFaults with an *empty* fault
//      plan must reproduce Execute exactly (exit 1 on mismatch).
//   2. Mid-run death: the advised layout runs with the busiest disk
//      fail-stopping halfway through the healthy elapsed time; the fault
//      counters (failed requests, degraded time) land in the JSON.
//   3. Transient window: the same disk instead flips 20% of completions to
//      I/O errors for the whole run; bounded retries mask all of them.
//   4. Post-failure comparison: the dead disk's objects either spill
//      evenly over the survivors (no_replan — what a naive volume manager
//      rebuild does) or are re-placed by ReplanAfterFailure (replan); both
//      layouts then run with the disk dead from t=0. Replan must end with
//      strictly lower measured max utilization.
//
// --json emits machine-readable rows for all four stages.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/replan.h"
#include "storage/fault.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

namespace {

double MaxUtil(const std::vector<double>& u) {
  return *std::max_element(u.begin(), u.end());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Failover",
              "fault injection + failure-aware re-layout vs naive spill",
              env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;
  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
  if (!olap.ok()) return 1;
  auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
  if (!advised.ok()) {
    std::fprintf(stderr, "advisor: %s\n",
                 advised.status().ToString().c_str());
    return 1;
  }
  const LayoutProblem& problem = advised->problem;
  const Layout& layout = advised->result.final_layout;
  const int m = problem.num_targets();

  JsonRows json;

  // ---- 1. Differential self-check: empty plan == no plan. ----
  auto healthy = rig->Execute(layout, &*olap, nullptr);
  if (!healthy.ok()) return 1;
  auto nofault = rig->ExecuteWithFaults(layout, &*olap, nullptr, FaultPlan{});
  if (!nofault.ok()) return 1;
  {
    const double tol = 1e-9;
    bool same =
        std::fabs(healthy->elapsed_seconds - nofault->elapsed_seconds) <=
            tol &&
        healthy->total_requests == nofault->total_requests;
    for (int j = 0; same && j < m; ++j) {
      same = std::fabs(healthy->utilization[j] - nofault->utilization[j]) <=
             tol;
    }
    std::printf("empty fault plan vs plain run: %s (%.3fs vs %.3fs)\n",
                same ? "[ok: identical]" : "[MISS: runs diverge]",
                healthy->elapsed_seconds, nofault->elapsed_seconds);
    json.BeginRow();
    json.Field("scenario", "none");
    json.Field("config", "differential_check");
    json.Field("identical", same);
    json.Field("elapsed_s", healthy->elapsed_seconds);
    if (!same) {
      std::printf("%s\n", json.ToString().c_str());
      return 1;
    }
  }

  // The victim: the busiest disk under the advised layout.
  const int victim = static_cast<int>(
      std::max_element(healthy->utilization.begin(),
                       healthy->utilization.end()) -
      healthy->utilization.begin());
  const double t_fail = 0.5 * healthy->elapsed_seconds;
  std::printf("victim: target %d (%.1f%% utilized), fails at t=%.3fs\n\n",
              victim, 100 * healthy->utilization[victim], t_fail);

  // ---- 2. Mid-run fail-stop on the advised layout (no reaction). ----
  {
    FaultPlan plan;
    plan.faults.push_back(
        {t_fail, victim, 0, FaultKind::kFailStop, 2.0, 0.1, 0.0});
    auto run = rig->ExecuteWithFaults(layout, &*olap, nullptr, plan);
    if (!run.ok()) return 1;
    std::printf(
        "mid-run death, no reaction: %.3fs elapsed, %llu requests failed, "
        "%.3fs degraded\n",
        run->elapsed_seconds,
        static_cast<unsigned long long>(run->faults.failed_requests),
        run->faults.degraded_time);
    for (const std::string& s : run->skipped_faults) {
      std::printf("  skipped fault: %s\n", s.c_str());
    }
    json.BeginRow();
    json.Field("scenario", "midrun_disk_loss");
    json.Field("config", "no_reaction");
    json.Field("elapsed_s", run->elapsed_seconds);
    json.Field("faults_injected",
               static_cast<int64_t>(run->faults.faults_injected));
    json.Field("failed_requests",
               static_cast<int64_t>(run->faults.failed_requests));
    json.Field("degraded_s", run->faults.degraded_time);
    json.Field("skipped_faults",
               static_cast<int64_t>(run->skipped_faults.size()));
  }

  // ---- 3. Transient error window, masked by bounded retries. ----
  {
    FaultPlan plan;
    plan.faults.push_back(
        {0.0, victim, 0, FaultKind::kTransient, 2.0, 0.2, 0.0});
    auto run = rig->ExecuteWithFaults(layout, &*olap, nullptr, plan);
    if (!run.ok()) return 1;
    std::printf(
        "transient errors (p=0.2): %llu errors, %llu retries, %llu "
        "requests surfaced failure\n",
        static_cast<unsigned long long>(run->faults.transient_errors),
        static_cast<unsigned long long>(run->faults.retries),
        static_cast<unsigned long long>(run->faults.failed_requests));
    for (const std::string& s : run->skipped_faults) {
      std::printf("  skipped fault: %s\n", s.c_str());
    }
    json.BeginRow();
    json.Field("scenario", "transient");
    json.Field("config", "retries");
    json.Field("elapsed_s", run->elapsed_seconds);
    json.Field("transient_errors",
               static_cast<int64_t>(run->faults.transient_errors));
    json.Field("retries", static_cast<int64_t>(run->faults.retries));
    json.Field("failed_requests",
               static_cast<int64_t>(run->faults.failed_requests));
    json.Field("skipped_faults",
               static_cast<int64_t>(run->skipped_faults.size()));
  }

  // ---- 4. Post-failure: naive spill vs failure-aware replan. ----
  TargetHealth health = TargetHealth::Healthy(m);
  health.MarkFailed(victim);

  // no_replan: workload-oblivious rebuild into free space — each displaced
  // object lands on the fewest emptiest survivors that have room for it
  // (largest objects first), exactly what a volume manager restoring onto
  // spare capacity does without workload knowledge.
  Layout spill = layout;
  std::vector<int> survivors;
  for (int j = 0; j < m; ++j) {
    if (j != victim) survivors.push_back(j);
  }
  {
    const std::vector<int64_t> capacities = problem.capacities();
    std::vector<int> displaced;
    for (int i = 0; i < problem.num_objects(); ++i) {
      if (layout.At(i, victim) > 1e-9) {
        displaced.push_back(i);
        for (int j = 0; j < m; ++j) spill.Set(i, j, 0.0);
      }
    }
    std::stable_sort(displaced.begin(), displaced.end(), [&](int a, int b) {
      return problem.object_sizes[a] > problem.object_sizes[b];
    });
    for (int i : displaced) {
      std::vector<double> used(m, 0.0);
      for (int o = 0; o < problem.num_objects(); ++o) {
        for (int j = 0; j < m; ++j) {
          used[j] += spill.At(o, j) *
                     static_cast<double>(problem.object_sizes[o]);
        }
      }
      std::vector<int> by_free = survivors;
      std::stable_sort(by_free.begin(), by_free.end(), [&](int a, int b) {
        return capacities[a] - used[a] > capacities[b] - used[b];
      });
      for (size_t k = 1; k <= by_free.size(); ++k) {
        spill.SetRowRegular(
            i, std::vector<int>(by_free.begin(), by_free.begin() + k));
        if (spill.SatisfiesCapacity(problem.object_sizes, capacities)) break;
      }
    }
  }

  ReplanOptions ropts;
  ropts.solver.num_threads = env.num_threads;
  auto replanned = ReplanAfterFailure(problem, layout, health, ropts);
  if (!replanned.ok()) {
    std::fprintf(stderr, "replan: %s\n",
                 replanned.status().ToString().c_str());
    return 1;
  }

  FaultPlan dead_from_start;
  dead_from_start.faults.push_back(
      {0.0, victim, 0, FaultKind::kFailStop, 2.0, 0.1, 0.0});

  const TargetModel model = problem.MakeTargetModel();
  TextTable table({"config", "est max util", "measured max util",
                   "elapsed", "moved MB"});
  struct Row {
    double est = 0, measured = 0;
  };
  Row rows[2];
  const Layout* candidates[2] = {&spill, &replanned->layout};
  const char* names[2] = {"no_replan", "replan"};
  double moved_mb[2] = {0.0, replanned->migration.total_bytes /
                                 (1024.0 * 1024.0)};
  for (int i = 0; i < problem.num_objects(); ++i) {
    moved_mb[0] += layout.At(i, victim) *
                   static_cast<double>(problem.object_sizes[i]) /
                   (1024.0 * 1024.0);
  }
  for (int c = 0; c < 2; ++c) {
    double est = 0.0;
    for (int j : survivors) {
      est = std::max(
          est, model.TargetUtilization(problem.workloads, *candidates[c], j));
    }
    auto run =
        rig->ExecuteWithFaults(*candidates[c], &*olap, nullptr,
                               dead_from_start);
    if (!run.ok()) return 1;
    for (const std::string& s : run->skipped_faults) {
      std::printf("  %s skipped fault: %s\n", names[c], s.c_str());
    }
    rows[c].est = est;
    rows[c].measured = MaxUtil(run->utilization);
    table.AddRow({names[c], StrFormat("%.1f%%", 100 * est),
                  StrFormat("%.1f%%", 100 * rows[c].measured),
                  StrFormat("%.3fs", run->elapsed_seconds),
                  StrFormat("%.1f", moved_mb[c])});
    json.BeginRow();
    json.Field("scenario", "disk_loss");
    json.Field("config", names[c]);
    json.Field("est_max_utilization", est);
    json.Field("max_utilization", rows[c].measured);
    json.Field("elapsed_s", run->elapsed_seconds);
    json.Field("migration_mb", moved_mb[c]);
    json.Field("objects_moved",
               c == 0 ? -1 : replanned->migration.objects_moved);
  }
  std::printf("%s\n", table.ToString().c_str());
  const bool ok = rows[1].measured < rows[0].measured;
  std::printf("replan vs spill measured max utilization: %.1f%% vs %.1f%% "
              "%s\n",
              100 * rows[1].measured, 100 * rows[0].measured,
              ok ? "[ok: replan lower]" : "[MISS]");

  if (env.json) json.WriteTo(env.json_path);
  return ok ? 0 : 1;
}
