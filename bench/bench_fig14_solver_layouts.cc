// Reproduces paper Figure 14: the (generally non-regular) layouts produced
// by the NLP solver — before regularization — for OLAP1-63 and OLAP8-63.
//
// Paper shape to reproduce: the solver layouts are balanced, beat SEE on
// estimated utilization, and carry non-regular fractions that the
// regularization step must then convert.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 14", "NLP solver layouts (pre-regularization)", env);

  auto rig = FourDiskTpchRig(env);
  if (!rig.ok()) return 1;

  for (int concurrency : {1, 8}) {
    auto olap = MakeOlapSpec(rig->catalog(), 3, concurrency, env.seed);
    if (!olap.ok()) return 1;
    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) return 1;

    std::printf("%s solver layout (non-regular fractions):\n%s\n",
                olap->name.c_str(),
                TopObjectsLayoutString(advised->problem,
                                       advised->result.solver_layout, 8)
                    .c_str());
    const TargetModel model = advised->problem.MakeTargetModel();
    const double see_max = model.MaxUtilization(advised->problem.workloads,
                                                SeeLayout(*rig));
    const double solver_max = *std::max_element(
        advised->result.utilization_solver.begin(),
        advised->result.utilization_solver.end());
    std::printf(
        "  regular: %s; est. max utilization %.1f%% vs SEE %.1f%% %s\n\n",
        advised->result.solver_layout.IsRegular(1e-3) ? "yes" : "no",
        100 * solver_max, 100 * see_max,
        solver_max <= see_max + 1e-9 ? "[ok]" : "[MISS]");
  }
  return 0;
}
