// Reproduces paper Figure 18: OLAP8-63 on the four disks plus an SSD whose
// capacity is varied (32 / 10 / 6 / 4 GB pre-scaling) — SEE, an
// all-objects-on-SSD baseline (where capacity permits), and the advisor's
// optimized layout.
//
// Paper numbers (seconds): SEE 12145 (32 GB only); SSD-only 6742;
// optimized 6182 / 6354 / 6234 / 8529. Shapes to reproduce: SEE performs
// poorly with a fast+slow mix; the optimized layout beats even SSD-only by
// using disks *and* SSD; with an SSD too small to hold everything the
// advisor still exploits it (the 4 GB case beats the disk-only optimized
// time).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"

using namespace ldb;
using namespace ldb::bench;

int main(int argc, char** argv) {
  const BenchEnv env = ParseBenchEnv(argc, argv);
  PrintHeader("Figure 18", "four disks + SSD of varying capacity, OLAP8-63",
              env);

  TextTable table({"SSD capacity", "SEE (s)", "All-on-SSD (s)",
                   "Optimized (s)", "Speedup vs SEE"});
  JsonRows json;
  for (int64_t cap_gb : {32, 10, 6, 4}) {
    std::vector<RigTargetDef> targets{{"disk0"}, {"disk1"}, {"disk2"},
                                      {"disk3"}};
    targets.push_back(RigTargetDef{"ssd", 1, true, cap_gb * kGiB});
    auto rig = MakeRig(env, Catalog::TpcH(env.scale), targets);
    if (!rig.ok()) return 1;
    auto olap = MakeOlapSpec(rig->catalog(), 3, 8, env.seed);
    if (!olap.ok()) return 1;

    auto advised = AdviseForWorkload(*rig, &*olap, nullptr);
    if (!advised.ok()) {
      std::fprintf(stderr, "advisor (%lldGB): %s\n",
                   static_cast<long long>(cap_gb),
                   advised.status().ToString().c_str());
      return 1;
    }
    auto opt_run =
        rig->Execute(advised->result.final_layout, &*olap, nullptr);
    if (!opt_run.ok()) return 1;

    // SEE needs every target to hold 1/5 of every object — infeasible for
    // the small SSDs, as in the paper (Figure 18 reports SEE only at 32GB).
    std::string see_cell = "n/a (capacity)";
    double see_elapsed = -1;
    const Layout see = SeeLayout(*rig);
    if (see.SatisfiesCapacity(advised->problem.object_sizes,
                              advised->problem.capacities())) {
      auto run = rig->Execute(see, &*olap, nullptr);
      if (run.ok()) {
        see_elapsed = run->elapsed_seconds;
        see_cell = StrFormat("%.0f", see_elapsed);
      }
    }
    std::string ssd_cell = "n/a (capacity)";
    double ssd_elapsed = -1;
    auto ssd_only = AllOnOneTargetBaseline(advised->problem, 4);
    if (ssd_only.ok()) {
      auto run = rig->Execute(*ssd_only, &*olap, nullptr);
      if (run.ok()) {
        ssd_elapsed = run->elapsed_seconds;
        ssd_cell = StrFormat("%.0f", ssd_elapsed);
      }
    }
    table.AddRow({StrFormat("%lld GB", static_cast<long long>(cap_gb)),
                  see_cell, ssd_cell,
                  StrFormat("%.0f", opt_run->elapsed_seconds),
                  see_elapsed > 0
                      ? StrFormat("%.2fx",
                                  see_elapsed / opt_run->elapsed_seconds)
                      : std::string("-")});
    if (env.json) {
      json.BeginRow();
      json.Field("ssd_capacity_gb", cap_gb);
      json.Field("see_seconds", see_elapsed);
      json.Field("ssd_only_seconds", ssd_elapsed);
      json.Field("optimized_seconds", opt_run->elapsed_seconds);
      json.Field("speedup", see_elapsed > 0
                                ? see_elapsed / opt_run->elapsed_seconds
                                : -1.0);
      json.Field("advisor_seconds", advised->result.total_seconds());
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper shapes: SEE poor on the fast+slow mix; optimized <= SSD-only "
      "at 32GB; even a small SSD yields a large boost over disk-only.\n");
  if (env.json && !json.WriteTo(env.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", env.json_path.c_str());
    return 1;
  }
  return 0;
}
