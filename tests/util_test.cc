#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/interp.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument,
        StatusCode::kCapacityExceeded, StatusCode::kInfeasible,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingOp() { return Status::Internal("boom"); }
Status Chained() {
  LDB_RETURN_IF_ERROR(FailingOp());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Chained().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{4});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.UniformInt(uint64_t{8})];
  for (int c : seen) EXPECT_GT(c, 0);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ---------------------------------------------------------------- Interp

TEST(InterpTest, LocateOnAxisInterior) {
  std::vector<double> axis{0, 10, 20};
  size_t i;
  double w;
  LocateOnAxis(axis, 5.0, &i, &w);
  EXPECT_EQ(i, 0u);
  EXPECT_DOUBLE_EQ(w, 0.5);
  LocateOnAxis(axis, 17.5, &i, &w);
  EXPECT_EQ(i, 1u);
  EXPECT_DOUBLE_EQ(w, 0.75);
}

TEST(InterpTest, LocateOnAxisClampsOutside) {
  std::vector<double> axis{0, 10, 20};
  size_t i;
  double w;
  LocateOnAxis(axis, -5.0, &i, &w);
  EXPECT_EQ(i, 0u);
  EXPECT_DOUBLE_EQ(w, 0.0);
  LocateOnAxis(axis, 100.0, &i, &w);
  EXPECT_EQ(i, 1u);
  EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(InterpTest, OneDimensionalLinear) {
  auto r = GridInterpolator::Create({{0, 1, 2}}, {10, 20, 40});
  ASSERT_TRUE(r.ok());
  const auto& g = *r;
  EXPECT_DOUBLE_EQ(g.At({0.0}), 10);
  EXPECT_DOUBLE_EQ(g.At({0.5}), 15);
  EXPECT_DOUBLE_EQ(g.At({1.5}), 30);
  EXPECT_DOUBLE_EQ(g.At({2.0}), 40);
  // Clamped outside.
  EXPECT_DOUBLE_EQ(g.At({-1.0}), 10);
  EXPECT_DOUBLE_EQ(g.At({5.0}), 40);
}

TEST(InterpTest, TwoDimensionalBilinear) {
  // f(x, y) = x + 10*y on grid {0,1} x {0,1}: values row-major (y fastest).
  auto r = GridInterpolator::Create({{0, 1}, {0, 1}}, {0, 10, 1, 11});
  ASSERT_TRUE(r.ok());
  const auto& g = *r;
  EXPECT_DOUBLE_EQ(g.At({0.5, 0.5}), 5.5);
  EXPECT_DOUBLE_EQ(g.At({1.0, 0.25}), 3.5);
}

TEST(InterpTest, ThreeDimensionalExactAtNodes) {
  std::vector<double> ax{1, 2}, ay{0, 5, 9}, az{2, 4};
  std::vector<double> values;
  auto f = [](double x, double y, double z) { return x * 100 + y * 10 + z; };
  for (double x : ax)
    for (double y : ay)
      for (double z : az) values.push_back(f(x, y, z));
  auto r = GridInterpolator::Create({ax, ay, az}, values);
  ASSERT_TRUE(r.ok());
  for (double x : ax)
    for (double y : ay)
      for (double z : az) EXPECT_DOUBLE_EQ(r->At({x, y, z}), f(x, y, z));
}

TEST(InterpTest, TrilinearIsLinearInEachAxis) {
  std::vector<double> ax{0, 2}, ay{0, 2}, az{0, 2};
  std::vector<double> values;
  auto f = [](double x, double y, double z) {
    return 3 * x - 2 * y + 0.5 * z + 7;
  };
  for (double x : ax)
    for (double y : ay)
      for (double z : az) values.push_back(f(x, y, z));
  auto r = GridInterpolator::Create({ax, ay, az}, values);
  ASSERT_TRUE(r.ok());
  for (double x : {0.0, 0.7, 1.3, 2.0})
    for (double y : {0.0, 1.1, 2.0})
      for (double z : {0.4, 1.9})
        EXPECT_NEAR(r->At({x, y, z}), f(x, y, z), 1e-12);
}

TEST(InterpTest, DegenerateSingleNodeAxis) {
  auto r = GridInterpolator::Create({{5.0}, {0, 1}}, {3.0, 9.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->At({5.0, 0.5}), 6.0);
  EXPECT_DOUBLE_EQ(r->At({123.0, 1.0}), 9.0);  // clamped on degenerate axis
}

TEST(InterpTest, RejectsBadInputs) {
  EXPECT_FALSE(GridInterpolator::Create({}, {}).ok());
  EXPECT_FALSE(GridInterpolator::Create({{1, 1}}, {1, 2}).ok());  // not incr.
  EXPECT_FALSE(GridInterpolator::Create({{1, 2}}, {1, 2, 3}).ok());  // size
  EXPECT_FALSE(GridInterpolator::Create({{}}, {}).ok());  // empty axis
}

// ---------------------------------------------------------------- Units

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB + 512 * kKiB), "3.5 MiB");
  EXPECT_EQ(FormatBytes(18 * kGiB), "18.0 GiB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1234.53), "1234.5 s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(1e-5), "10.0 us");
}

// ---------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  TextTable t({"A", "Name"});
  t.AddRow({"1", "x"});
  t.AddRow({"22", "longer"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| A  | Name   |"), std::string::npos);
  EXPECT_NE(s.find("| 22 | longer |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 3, "x", 1.5), "3-x-1.50");
  EXPECT_EQ(StrFormat("%s", std::string(300, 'a').c_str()),
            std::string(300, 'a'));
}

}  // namespace
}  // namespace ldb
