#include "scenario/scenario.h"

#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "model/layout.h"
#include "model/workload.h"
#include "scenario/player.h"
#include "scenario/sim.h"
#include "storage/fault.h"
#include "util/check.h"
#include "workload/catalog.h"

namespace ldb {
namespace {

// ---------------------------------------------------------------------------
// Grammar

const char kFullSpec[] =
    "duration=120;seed=7;"
    "tenant=oltp,objects=0:5,rate=20,bytes=8192,write=0.3,runs=4;"
    "tenant=batch,objects=5:9,rate=5,arrive=30,depart=90;"
    "phase=oltp,start=10,end=40,x=3;"
    "flash=oltp,at=50,for=5,x=50;"
    "graph=batch,communities=2,coaccess=0.6,rewire=20,burst=2;"
    "drift=oltp,start=60,end=110,x=1.4";

TEST(ScenarioSpecTest, ParsesTheFullGrammar) {
  auto spec = ParseScenarioSpec(kFullSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_DOUBLE_EQ(spec->duration_s, 120.0);
  EXPECT_EQ(spec->seed, 7u);
  ASSERT_EQ(spec->tenants.size(), 2u);
  EXPECT_EQ(spec->tenants[0].name, "oltp");
  EXPECT_EQ(spec->tenants[0].first_object, 0);
  EXPECT_EQ(spec->tenants[0].count, 5);
  EXPECT_DOUBLE_EQ(spec->tenants[0].rate, 20.0);
  EXPECT_EQ(spec->tenants[0].request_bytes, 8192);
  EXPECT_DOUBLE_EQ(spec->tenants[0].write_fraction, 0.3);
  EXPECT_DOUBLE_EQ(spec->tenants[0].run_length, 4.0);
  EXPECT_DOUBLE_EQ(spec->tenants[1].arrive_s, 30.0);
  EXPECT_DOUBLE_EQ(spec->tenants[1].depart_s, 90.0);
  // flash= is sugar for a phase window.
  ASSERT_EQ(spec->phases.size(), 2u);
  EXPECT_DOUBLE_EQ(spec->phases[1].start_s, 50.0);
  EXPECT_DOUBLE_EQ(spec->phases[1].end_s, 55.0);
  EXPECT_DOUBLE_EQ(spec->phases[1].multiplier, 50.0);
  ASSERT_EQ(spec->graphs.size(), 1u);
  EXPECT_EQ(spec->graphs[0].tenant, 1);
  ASSERT_EQ(spec->drifts.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->drifts[0].multiplier, 1.4);
}

TEST(ScenarioSpecTest, RoundTripsThroughToString) {
  auto spec = ParseScenarioSpec(kFullSpec);
  ASSERT_TRUE(spec.ok());
  const std::string text = ScenarioToString(*spec);
  auto again = ParseScenarioSpec(text);
  ASSERT_TRUE(again.ok()) << text << ": " << again.status().ToString();
  EXPECT_EQ(ScenarioToString(*again), text);
}

TEST(ScenarioSpecTest, ErrorsAreClauseIndexed) {
  // Clause 2 (1-based): bad rate.
  auto r = ParseScenarioSpec("duration=10;tenant=a,objects=0:2,rate=frog");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("scenario spec clause 2"),
            std::string::npos)
      << r.status().ToString();

  // Clause 3: phase referencing an undeclared tenant.
  r = ParseScenarioSpec(
      "duration=10;tenant=a,objects=0:2,rate=1;"
      "phase=ghost,start=0,end=5,x=2");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("scenario spec clause 3"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("unknown tenant 'ghost'"),
            std::string::npos);

  // Missing duration is the one spec-level (not clause-level) error.
  r = ParseScenarioSpec("tenant=a,objects=0:2,rate=1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("missing duration"), std::string::npos);

  // Validation failures carry the clause of the offending tenant.
  r = ParseScenarioSpec("duration=10;tenant=a,objects=4:2,rate=1");
  ASSERT_FALSE(r.ok());
}

TEST(ScenarioSpecTest, ValidateChecksObjectRanges) {
  auto spec = ParseScenarioSpec("duration=10;tenant=a,objects=0:8,rate=1");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->Validate(8).ok());
  EXPECT_FALSE(spec->Validate(6).ok());
}

TEST(ScenarioSpecTest, RateMultiplierComposesWindows) {
  auto spec = ParseScenarioSpec(
      "duration=100;"
      "tenant=a,objects=0:2,rate=1,arrive=10,depart=90;"
      "phase=a,start=20,end=30,x=3;"
      "phase=a,start=25,end=40,x=2;"
      "drift=a,start=50,end=70,x=4");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 5.0), 0.0);   // not arrived
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 15.0), 1.0);  // plain
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 22.0), 3.0);  // one phase
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 27.0), 6.0);  // overlapping
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 35.0), 2.0);
  // Geometric drift ramp: halfway in log space at the midpoint, plateau
  // after the end.
  EXPECT_NEAR(TenantRateMultiplier(*spec, 0, 60.0), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 80.0), 4.0);  // plateau
  EXPECT_DOUBLE_EQ(TenantRateMultiplier(*spec, 0, 95.0), 0.0);  // departed
}

// ---------------------------------------------------------------------------
// Interaction graph

TEST(InteractionGraphTest, PartitionsAndRewiresDeterministically) {
  auto spec = ParseScenarioSpec(
      "duration=60;tenant=g,objects=2:14,rate=1;"
      "graph=g,communities=3,coaccess=0.5,rewire=20,burst=2");
  ASSERT_TRUE(spec.ok());
  InteractionGraph graph(*spec);
  InteractionGraph graph2(*spec);

  EXPECT_EQ(graph.GraphOf(0), -1);
  EXPECT_EQ(graph.GraphOf(2), 0);
  EXPECT_EQ(graph.GraphOf(13), 0);
  EXPECT_EQ(graph.GraphOf(14), -1);

  for (double t : {0.0, 25.0, 45.0}) {
    // Communities partition the tenant's objects.
    std::set<int> seen;
    for (int o = 2; o < 14; ++o) {
      const std::vector<int>& c = graph.Community(o, t);
      EXPECT_FALSE(c.empty());
      // The member lists are consistent: every member maps back to the
      // same community.
      for (int m : c) {
        EXPECT_EQ(graph.Community(m, t), c);
        seen.insert(m);
      }
      // Identical construction — the player and the timeline agree.
      EXPECT_EQ(graph2.Community(o, t), c);
    }
    EXPECT_EQ(seen.size(), 12u);
  }
  // Rewiring actually changes the partition between epochs.
  bool changed = false;
  for (int o = 2; o < 14 && !changed; ++o) {
    changed = graph.Community(o, 0.0) != graph.Community(o, 25.0);
  }
  EXPECT_TRUE(changed);
}

// ---------------------------------------------------------------------------
// Analytic timeline

TEST(ScenarioTimelineTest, SegmentsTileTheDurationWithValidCsr) {
  auto spec = ParseScenarioSpec(kFullSpec);
  ASSERT_TRUE(spec.ok());
  const int n = 9;
  auto segments = BuildTimeline(*spec, n);
  ASSERT_FALSE(segments.empty());
  EXPECT_DOUBLE_EQ(segments.front().start_s, 0.0);
  EXPECT_DOUBLE_EQ(segments.back().end_s, spec->duration_s);
  for (size_t s = 0; s < segments.size(); ++s) {
    EXPECT_LT(segments[s].start_s, segments[s].end_s);
    if (s > 0) {
      EXPECT_DOUBLE_EQ(segments[s].start_s, segments[s - 1].end_s);
    }
    ASSERT_EQ(segments[s].workloads.size(), static_cast<size_t>(n));
    // The emitted overlap rows are in the sparse CSR form and valid.
    EXPECT_TRUE(ValidateWorkloadSet(segments[s].workloads).ok())
        << "segment " << s;
  }
  // Before the batch tenant arrives its rows idle at zero; afterwards
  // they carry the graph's co-access overlap.
  const WorkloadSet& first = segments.front().workloads;
  EXPECT_DOUBLE_EQ(first[5].read_rate + first[5].write_rate, 0.0);
  bool batch_active_somewhere = false;
  for (const auto& seg : segments) {
    if (seg.workloads[5].read_rate > 0.0) {
      batch_active_somewhere = true;
      EXPECT_GT(seg.workloads[5].overlap_with(6) +
                    seg.workloads[5].overlap_with(7) +
                    seg.workloads[5].overlap_with(8),
                0.0);
    }
  }
  EXPECT_TRUE(batch_active_somewhere);
}

// ---------------------------------------------------------------------------
// Player

constexpr int kObjects = 6;

const ExperimentRig& PlayerRig() {
  static const ExperimentRig* rig = [] {
    Catalog catalog;
    for (int i = 0; i < kObjects; ++i) {
      catalog.Add({"obj" + std::to_string(i), ObjectKind::kTable,
                   int64_t{24} * 1024 * 1024});
    }
    auto r = ExperimentRig::Create(std::move(catalog),
                                   {{"d0"}, {"d1"}, {"d2"}}, 1.0, 3);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();
  return *rig;
}

ScenarioSpec PlayerSpec() {
  auto spec = ParseScenarioSpec(
      "duration=8;seed=11;"
      "tenant=front,objects=0:3,rate=30,bytes=16384,write=0.2;"
      "tenant=back,objects=3:6,rate=10,arrive=2,depart=6;"
      "phase=front,start=3,end=5,x=4;"
      "graph=back,communities=2,coaccess=0.5,rewire=3,burst=2");
  LDB_CHECK(spec.ok());
  return std::move(spec).value();
}

Result<LayoutProblem> PlayerProblem() {
  const ExperimentRig& rig = PlayerRig();
  auto segments = BuildTimeline(PlayerSpec(), kObjects);
  LDB_CHECK(!segments.empty());
  return rig.MakeProblem(segments.front().workloads);
}

TEST(ScenarioPlayerTest, ReplaysBitIdentically) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  const ScenarioSpec spec = PlayerSpec();
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 3);

  std::string first;
  for (int rep = 0; rep < 2; ++rep) {
    auto system = rig.MakeSystem();
    auto out = PlayScenarioStatic(system.get(), *problem, see, spec,
                                  FaultPlan{});
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_GT(out->play.arrivals, 0u);
    EXPECT_GT(out->run.total_requests, 0u);
    if (rep == 0) {
      first = out->Fingerprint();
    } else {
      EXPECT_EQ(out->Fingerprint(), first);
    }
  }
}

TEST(ScenarioPlayerTest, ChurnAndPhasesShapeTheArrivals) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok());
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 3);

  // Doubling a tenant's rate must increase submitted requests; a tenant
  // that never arrives contributes nothing.
  ScenarioSpec spec = PlayerSpec();
  auto system = rig.MakeSystem();
  auto base = PlayScenarioStatic(system.get(), *problem, see, spec,
                                 FaultPlan{});
  ASSERT_TRUE(base.ok());

  ScenarioSpec loud = spec;
  loud.tenants[0].rate *= 2.0;
  system = rig.MakeSystem();
  auto louder = PlayScenarioStatic(system.get(), *problem, see, loud,
                                   FaultPlan{});
  ASSERT_TRUE(louder.ok());
  EXPECT_GT(louder->play.requests, base->play.requests);

  ScenarioSpec solo = spec;
  solo.tenants[1].arrive_s = spec.duration_s;  // never active
  solo.tenants[1].depart_s = 0.0;              // (0 = scenario end)
  system = rig.MakeSystem();
  auto fewer = PlayScenarioStatic(system.get(), *problem, see, solo,
                                  FaultPlan{});
  ASSERT_TRUE(fewer.ok());
  EXPECT_LT(fewer->play.requests, base->play.requests);
}

// The player analog of InfiniteThresholdIsBitIdenticalToExecute: with
// drift disabled the autopilot is a pure observer, so the foreground half
// of the outcome must match the static play bit for bit.
TEST(ScenarioPlayerTest, StaticMatchesAutopilotWithDriftDisabled) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok());
  const ScenarioSpec spec = PlayerSpec();
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 3);

  auto system = rig.MakeSystem();
  auto fixed = PlayScenarioStatic(system.get(), *problem, see, spec,
                                  FaultPlan{});
  ASSERT_TRUE(fixed.ok());

  AutopilotOptions options;
  options.config.check_interval_s = 1.0;
  options.config.drift.threshold = std::numeric_limits<double>::infinity();
  system = rig.MakeSystem();
  auto ap = PlayScenarioAutopilot(system.get(), *problem, see, spec,
                                  FaultPlan{}, options);
  ASSERT_TRUE(ap.ok()) << ap.status().ToString();

  EXPECT_EQ(ap->RunFingerprint(), fixed->RunFingerprint());
  EXPECT_TRUE(ap->autopilot.decisions.empty());
  EXPECT_GT(ap->autopilot.monitor_events, 0u);
}

// Whole-closed-loop determinism: the spec's promise is that a scenario
// replays bit-identically for any solver thread count, including the
// re-advises the autopilot runs mid-scenario.
TEST(ScenarioPlayerTest, AutopilotScenarioIsThreadCountInvariant) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok());
  const ScenarioSpec spec = PlayerSpec();
  // Deploy everything on one target so a re-advise has an obvious win,
  // and trip aggressively so the solver actually runs mid-scenario.
  Layout skew(kObjects, 3);
  for (int i = 0; i < kObjects; ++i) skew.Set(i, 0, 1.0);

  std::string first;
  bool decided = false;
  for (int threads : {1, 2, 8}) {
    AutopilotOptions options;
    options.config.analyzer.half_life_s = 2.0;
    options.config.check_interval_s = 0.5;
    options.config.drift.threshold = 0.05;
    options.config.drift.trip_evaluations = 1;
    options.config.drift.cooldown_s = 2.0;
    options.config.gate_min_gain = 0.0;
    options.config.gate_horizon_s = 1e9;
    options.config.gate_fallback_bandwidth = 1e12;
    options.advisor.solver.num_threads = threads;
    auto system = rig.MakeSystem();
    auto out = PlayScenarioAutopilot(system.get(), *problem, skew, spec,
                                     FaultPlan{}, options);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    decided = decided || !out->autopilot.decisions.empty();
    if (first.empty()) {
      first = out->Fingerprint();
    } else {
      EXPECT_EQ(out->Fingerprint(), first) << "threads=" << threads;
    }
  }
  // The invariance claim is only interesting if the solver actually ran.
  EXPECT_TRUE(decided);
}

// Layout sampling is a pure read: requesting samples must not perturb the
// run, and times past the end record the final layout.
TEST(ScenarioPlayerTest, LayoutSamplingDoesNotPerturbTheRun) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok());
  const ScenarioSpec spec = PlayerSpec();
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 3);

  AutopilotOptions options;
  options.config.check_interval_s = 1.0;
  options.config.drift.threshold = std::numeric_limits<double>::infinity();
  auto system = rig.MakeSystem();
  auto plain = PlayScenarioAutopilot(system.get(), *problem, see, spec,
                                     FaultPlan{}, options);
  ASSERT_TRUE(plain.ok());

  options.layout_sample_times = {2.0, 5.0, 1e9};
  system = rig.MakeSystem();
  auto sampled = PlayScenarioAutopilot(system.get(), *problem, see, spec,
                                       FaultPlan{}, options);
  ASSERT_TRUE(sampled.ok());

  EXPECT_EQ(sampled->RunFingerprint(), plain->RunFingerprint());
  ASSERT_EQ(sampled->autopilot.sampled_layouts.size(), 3u);
  EXPECT_DOUBLE_EQ(sampled->autopilot.sampled_layouts[0].time, 2.0);
  for (const auto& s : sampled->autopilot.sampled_layouts) {
    EXPECT_EQ(s.layout.num_objects(), kObjects);
  }
}

TEST(ScenarioPlayerTest, RejectsSpecsBeyondTheCatalog) {
  const ExperimentRig& rig = PlayerRig();
  auto problem = PlayerProblem();
  ASSERT_TRUE(problem.ok());
  auto spec = ParseScenarioSpec("duration=5;tenant=a,objects=0:99,rate=1");
  ASSERT_TRUE(spec.ok());
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 3);
  auto system = rig.MakeSystem();
  auto out = PlayScenarioStatic(system.get(), *problem, see, *spec,
                                FaultPlan{});
  EXPECT_FALSE(out.ok());
}

}  // namespace
}  // namespace ldb
