// Tests of the fleet-scale layer: the sparse CSR overlap representation
// against the dense one through every TargetModel evaluation path, and the
// hierarchical FleetSolver (shard decomposition, coordination, determinism).

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/fleet.h"
#include "core/initial.h"
#include "model/cost_model.h"
#include "model/target_model.h"
#include "model/workload.h"
#include "solver/projected_gradient.h"
#include "solver/simplex.h"
#include "util/random.h"
#include "util/units.h"

namespace ldb {
namespace {

/// Synthetic multi-point cost grid (no device calibration in unit tests):
/// cost grows with size and contention, shrinks with run length.
CostModel MakeTestCostModel() {
  std::vector<double> sizes{static_cast<double>(8 * kKiB),
                            static_cast<double>(64 * kKiB),
                            static_cast<double>(512 * kKiB)};
  std::vector<double> runs{1, 8, 64};
  std::vector<double> chis{0, 0.5, 1, 2, 4};
  std::vector<double> reads, writes;
  for (double s : sizes) {
    for (double q : runs) {
      for (double c : chis) {
        const double v =
            0.004 * (s / (8 * kKiB)) * (1.0 + 0.7 * c) / std::sqrt(q);
        reads.push_back(v);
        writes.push_back(1.4 * v);
      }
    }
  }
  auto m = CostModel::Create("fleet-grid", sizes, runs, chis, reads, writes);
  LDB_CHECK(m.ok());
  return std::move(m).value();
}

/// Tenant-structured workloads with genuinely sparse co-access: dense rows
/// whose off-diagonals are mostly exact zeros.
WorkloadSet MakeTenantWorkloads(int n, Rng* rng) {
  constexpr int kTenantSize = 6;
  WorkloadSet ws(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = ws[static_cast<size_t>(i)];
    w.read_rate = rng->Uniform(1, 150);
    w.read_size = 64 * kKiB;
    w.write_rate = rng->Uniform(0, 25);
    w.write_size = 8 * kKiB;
    w.run_count = rng->Uniform(1, 60);
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    const int lo = (i / kTenantSize) * kTenantSize;
    const int hi = std::min(n, lo + kTenantSize);
    for (int k = lo; k < hi; ++k) {
      if (k != i) w.overlap[static_cast<size_t>(k)] = rng->Uniform(0.05, 0.8);
    }
    w.overlap[static_cast<size_t>(i)] = rng->Uniform(0, 1.5);
    // One weak cross-tenant link now and then.
    if (rng->Uniform() < 0.5) {
      const int k = static_cast<int>(
          rng->UniformInt(int64_t{0}, static_cast<int64_t>(n) - 1));
      if (k != i) w.overlap[static_cast<size_t>(k)] = rng->Uniform(0.01, 0.1);
    }
  }
  return ws;
}

LayoutProblem MakeFleetProblem(int n, int m, const CostModel* cost_model,
                               uint64_t seed, bool sparse) {
  Rng rng(seed);
  LayoutProblem p;
  p.workloads = MakeTenantWorkloads(n, &rng);
  if (sparse) SparsifyOverlap(&p.workloads);
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back("o" + std::to_string(i));
    const int64_t size = rng.UniformInt(int64_t{1}, int64_t{8}) * kGiB;
    p.object_sizes.push_back(size);
    total += size;
    p.object_kinds.push_back(ObjectKind::kTable);
  }
  for (int j = 0; j < m; ++j) {
    AdvisorTarget t;
    t.name = "d" + std::to_string(j);
    t.capacity_bytes = total * 8 / (5 * m) + kMiB;
    t.cost_model = cost_model;
    p.targets.push_back(std::move(t));
  }
  return p;
}

Layout RandomSimplexLayout(int n, int m, Rng* rng) {
  Layout layout(n, m);
  for (int i = 0; i < n; ++i) {
    double* row = layout.Row(i);
    for (int j = 0; j < m; ++j) row[j] = rng->Uniform(0, 1);
    ProjectToSimplex(row, static_cast<size_t>(m));
    if (rng->Uniform() < 0.4) {
      row[rng->UniformInt(static_cast<uint64_t>(m - 1))] = 0.0;
    }
  }
  return layout;
}

// -------------------------------------------- sparse ≡ dense differential

class SparseDenseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cost_ = std::make_unique<CostModel>(MakeTestCostModel());
    Rng rng(91);
    dense_ = MakeTenantWorkloads(kN, &rng);
    sparse_ = dense_;
    SparsifyOverlap(&sparse_);
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(sparse_[static_cast<size_t>(i)].has_sparse_overlap());
      ASSERT_TRUE(sparse_[static_cast<size_t>(i)].overlap.empty());
    }
    std::vector<TargetModelInfo> infos(
        static_cast<size_t>(kM), TargetModelInfo{cost_.get(), 1, 64 * kKiB});
    model_ = std::make_unique<TargetModel>(infos, LvmLayoutModel(64 * kKiB));
  }

  static constexpr int kN = 24;
  static constexpr int kM = 4;
  std::unique_ptr<CostModel> cost_;
  std::unique_ptr<TargetModel> model_;
  WorkloadSet dense_;
  WorkloadSet sparse_;
};

TEST_F(SparseDenseTest, ScalarUtilizationMatches) {
  // Threshold-0 sparsification drops only exact-zero products, so the
  // sparse path must reproduce the dense µ_j to well inside 1e-9 relative
  // (lane assignment differs between the representations).
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    const Layout layout = RandomSimplexLayout(kN, kM, &rng);
    for (int j = 0; j < kM; ++j) {
      const double d = model_->TargetUtilization(dense_, layout, j);
      const double s = model_->TargetUtilization(sparse_, layout, j);
      EXPECT_NEAR(s, d, 1e-9 * std::max(1.0, std::fabs(d)))
          << "j=" << j << " trial=" << trial;
    }
  }
}

TEST_F(SparseDenseTest, UtilizationsAndMuMatrixMatch) {
  Rng rng(18);
  const Layout layout = RandomSimplexLayout(kN, kM, &rng);
  std::vector<double> mu_ij_d, mu_ij_s;
  const std::vector<double> mu_d =
      model_->Utilizations(dense_, layout, &mu_ij_d);
  const std::vector<double> mu_s =
      model_->Utilizations(sparse_, layout, &mu_ij_s);
  ASSERT_EQ(mu_d.size(), mu_s.size());
  for (size_t j = 0; j < mu_d.size(); ++j) {
    EXPECT_NEAR(mu_s[j], mu_d[j], 1e-9 * std::max(1.0, std::fabs(mu_d[j])));
  }
  ASSERT_EQ(mu_ij_d.size(), mu_ij_s.size());
  for (size_t e = 0; e < mu_ij_d.size(); ++e) {
    EXPECT_NEAR(mu_ij_s[e], mu_ij_d[e],
                1e-9 * std::max(1.0, std::fabs(mu_ij_d[e])));
  }
}

TEST_F(SparseDenseTest, BatchedEvaluateAndGradientMatch) {
  Rng rng(19);
  std::vector<double> grad_d(kN), grad_s(kN);
  for (int trial = 0; trial < 4; ++trial) {
    const Layout layout = RandomSimplexLayout(kN, kM, &rng);
    for (int j = 0; j < kM; ++j) {
      auto ctx_d = model_->MakeColumnEvaluator(dense_, j);
      auto ctx_s = model_->MakeColumnEvaluator(sparse_, j);
      ASSERT_TRUE(ctx_s->SupportsGradient());
      const double vd = ctx_d->EvaluateWithGradient(layout, grad_d.data());
      const double vs = ctx_s->EvaluateWithGradient(layout, grad_s.data());
      EXPECT_NEAR(vs, vd, 1e-9 * std::max(1.0, std::fabs(vd)));
      for (int i = 0; i < kN; ++i) {
        EXPECT_NEAR(grad_s[static_cast<size_t>(i)],
                    grad_d[static_cast<size_t>(i)],
                    1e-9 * std::max(1.0,
                                    std::fabs(grad_d[static_cast<size_t>(i)])))
            << "i=" << i << " j=" << j;
      }
      EXPECT_NEAR(ctx_s->Evaluate(layout), ctx_d->Evaluate(layout),
                  1e-9 * std::max(1.0, std::fabs(vd)));
    }
  }
}

TEST_F(SparseDenseTest, IncrementalWithObjectMatches) {
  // The rank-1 repricing path walks a transposed CSR cache under the
  // sparse representation; same answers as the dense walk.
  Rng rng(20);
  const Layout layout = RandomSimplexLayout(kN, kM, &rng);
  for (int j = 0; j < kM; ++j) {
    auto ctx_d = model_->MakeColumnEvaluator(dense_, j);
    auto ctx_s = model_->MakeColumnEvaluator(sparse_, j);
    ctx_d->Rebuild(layout);
    ctx_s->Rebuild(layout);
    for (int i = 0; i < kN; ++i) {
      for (const double v : {0.0, 0.2, 0.9}) {
        const double d = ctx_d->WithObject(i, v);
        const double s = ctx_s->WithObject(i, v);
        EXPECT_NEAR(s, d, 1e-9 * std::max(1.0, std::fabs(d)))
            << "i=" << i << " j=" << j << " v=" << v;
      }
    }
  }
}

// ------------------------------------------------------------ FleetSolver

FleetOptions FastFleetOptions() {
  FleetOptions options;
  options.shard_target_objects = 24;
  options.solver.annealing_rounds = 3;
  options.solver.max_iterations_per_round = 25;
  options.max_coordination_rounds = 4;
  options.coordination_free_rows = 32;
  return options;
}

TEST(FleetSolverTest, RejectsPlacementConstraints) {
  CostModel cost = MakeTestCostModel();
  LayoutProblem problem = MakeFleetProblem(12, 3, &cost, 5, true);
  problem.constraints.allowed_targets.assign(12, {});
  problem.constraints.allowed_targets[0] = {0};
  const auto result = FleetSolver(FastFleetOptions()).Solve(problem);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(FleetSolverTest, SolvesShardedProblem) {
  CostModel cost = MakeTestCostModel();
  const LayoutProblem problem = MakeFleetProblem(72, 6, &cost, 6, true);
  const auto result = FleetSolver(FastFleetOptions()).Solve(problem);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->feasible);
  EXPECT_TRUE(
      result->layout.IsValid(problem.object_sizes, problem.capacities()));
  EXPECT_GT(result->max_utilization, 0.0);
  EXPECT_GT(result->shards.size(), 1u);

  // Shards partition the objects and the targets.
  std::vector<int> object_owner(72, -1);
  std::vector<int> target_owner(6, -1);
  for (size_t s = 0; s < result->shards.size(); ++s) {
    for (const int o : result->shards[s].objects) {
      EXPECT_EQ(object_owner[static_cast<size_t>(o)], -1);
      object_owner[static_cast<size_t>(o)] = static_cast<int>(s);
    }
    for (const int t : result->shards[s].targets) {
      EXPECT_EQ(target_owner[static_cast<size_t>(t)], -1);
      target_owner[static_cast<size_t>(t)] = static_cast<int>(s);
    }
  }
  for (const int owner : object_owner) EXPECT_NE(owner, -1);
  for (const int owner : target_owner) EXPECT_NE(owner, -1);

  // Max utilization agrees with the reported per-target vector, and the
  // sharded result must at least beat stripe-everything-everywhere (the
  // maximally interfering baseline).
  const TargetModel model = problem.MakeTargetModel();
  double expect_max = 0.0;
  for (const double mu : result->utilizations) {
    expect_max = std::max(expect_max, mu);
  }
  EXPECT_DOUBLE_EQ(result->max_utilization, expect_max);
  const double see_max = model.MaxUtilization(
      problem.workloads, Layout::StripeEverythingEverywhere(72, 6));
  EXPECT_LT(result->max_utilization, see_max);
}

TEST(FleetSolverTest, BitIdenticalAcrossThreadCountsAndRuns) {
  CostModel cost = MakeTestCostModel();
  const LayoutProblem problem = MakeFleetProblem(48, 6, &cost, 7, true);
  FleetOptions options = FastFleetOptions();
  options.num_threads = 1;
  const auto base = FleetSolver(options).Solve(problem);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  for (const int threads : {1, 2, 8}) {
    FleetOptions alt = options;
    alt.num_threads = threads;
    const auto run = FleetSolver(alt).Solve(problem);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    EXPECT_TRUE(run->layout == base->layout) << "threads=" << threads;
    EXPECT_EQ(run->max_utilization, base->max_utilization)
        << "threads=" << threads;
    EXPECT_EQ(run->accepted_moves, base->accepted_moves)
        << "threads=" << threads;
  }
}

TEST(FleetSolverTest, SingleShardDegeneratesGracefully) {
  CostModel cost = MakeTestCostModel();
  const LayoutProblem problem = MakeFleetProblem(12, 3, &cost, 8, true);
  FleetOptions options = FastFleetOptions();
  options.shard_target_objects = 100;  // everything fits one shard
  const auto result = FleetSolver(options).Solve(problem);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->shards.size(), 1u);
  EXPECT_EQ(result->coordination_rounds, 0);
  EXPECT_TRUE(result->feasible);
}

TEST(FleetSolverTest, DenseRowsSolveToo) {
  // The fleet path does not require sparse inputs; dense overlap rows run
  // through the same decomposition.
  CostModel cost = MakeTestCostModel();
  const LayoutProblem problem = MakeFleetProblem(48, 4, &cost, 9, false);
  const auto result = FleetSolver(FastFleetOptions()).Solve(problem);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->feasible);
}

}  // namespace
}  // namespace ldb
