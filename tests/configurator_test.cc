#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/configurator.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

// Synthetic cost models: a "disk" (sequential-friendly, slow random) and
// an "ssd" (flat). Both built on tiny grids.
const CostModel& DiskCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v =
              0.005 * (0.5 + 0.5 * s / (8 * kKiB)) * (1 + c) / std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("disk", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

const CostModel& SsdCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads(12, 0.0003), writes(12, 0.0004);
    auto m = CostModel::Create("ssd", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

ConfiguratorInput MakeInput(int n) {
  ConfiguratorInput input;
  for (int i = 0; i < n; ++i) {
    input.object_names.push_back(StrFormat("obj%d", i));
    input.object_sizes.push_back(kGiB);
    input.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = 120.0 / (i + 1);
    w.read_size = 64 * kKiB;
    w.run_count = i == 0 ? 100.0 : 1.0;  // object 0 is a sequential scan
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    input.workloads.push_back(std::move(w));
  }
  return input;
}

TEST(ConfiguratorTest, RejectsBadInputs) {
  ConfiguratorInput empty;
  EXPECT_FALSE(RecommendConfiguration(empty).ok());
  ConfiguratorInput input = MakeInput(2);
  input.pools.push_back(DevicePool{"disk", 0, 10 * kGiB, &DiskCost()});
  EXPECT_FALSE(RecommendConfiguration(input).ok());
  input.pools[0] = DevicePool{"disk", 2, 10 * kGiB, nullptr};
  EXPECT_FALSE(RecommendConfiguration(input).ok());
}

TEST(ConfiguratorTest, SingleDeviceHasOneConfiguration) {
  ConfiguratorInput input = MakeInput(2);
  input.pools.push_back(DevicePool{"disk", 1, 10 * kGiB, &DiskCost()});
  auto r = RecommendConfiguration(input);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->description, "disk x [1]");
  EXPECT_EQ(r->problem.num_targets(), 1);
  EXPECT_TRUE(r->advice.final_layout.IsValid(r->problem.object_sizes,
                                             r->problem.capacities()));
}

TEST(ConfiguratorTest, ExploresPartitionsAndPicksBest) {
  ConfiguratorInput input = MakeInput(4);
  input.pools.push_back(DevicePool{"disk", 3, 10 * kGiB, &DiskCost()});
  auto r = RecommendConfiguration(input);
  ASSERT_TRUE(r.ok());
  // With separate objects and interference-free workloads the advisor
  // should prefer independent targets or a split, and the result must be
  // one of the three partitions of 3.
  EXPECT_TRUE(r->description == "disk x [3]" ||
              r->description == "disk x [2,1]" ||
              r->description == "disk x [1,1,1]");
  EXPECT_GT(r->advice.max_utilization_final, 0.0);
}

TEST(ConfiguratorTest, UngroupablePoolStaysIndividual) {
  ConfiguratorInput input = MakeInput(3);
  DevicePool ssd{"ssd", 2, 4 * kGiB, &SsdCost()};
  ssd.allow_grouping = false;
  input.pools.push_back(ssd);
  auto r = RecommendConfiguration(input);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->description, "ssd x [1,1]");
  EXPECT_EQ(r->problem.num_targets(), 2);
}

TEST(ConfiguratorTest, MixedPoolsCombineDescriptions) {
  ConfiguratorInput input = MakeInput(4);
  input.pools.push_back(DevicePool{"disk", 2, 10 * kGiB, &DiskCost()});
  DevicePool ssd{"ssd", 1, 4 * kGiB, &SsdCost()};
  ssd.allow_grouping = false;
  input.pools.push_back(ssd);
  auto r = RecommendConfiguration(input);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->description.find("disk x ["), std::string::npos);
  EXPECT_NE(r->description.find("ssd x [1]"), std::string::npos);
  // Hot random objects should gravitate to the SSD target (last index).
  const int ssd_target = r->problem.num_targets() - 1;
  double ssd_rate = 0;
  for (int i = 0; i < 4; ++i) {
    ssd_rate += r->advice.final_layout.At(i, ssd_target) *
                input.workloads[static_cast<size_t>(i)].total_rate();
  }
  EXPECT_GT(ssd_rate, 0.0);
}

TEST(ConfiguratorTest, InfeasibleWhenNothingFits) {
  ConfiguratorInput input = MakeInput(2);  // 2 GiB of objects
  input.pools.push_back(DevicePool{"disk", 1, kGiB, &DiskCost()});
  auto r = RecommendConfiguration(input);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace ldb
