#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/initial.h"
#include "core/problem.h"
#include "model/constraints.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

// Synthetic cost model shared by the constraint tests.
const CostModel& TestCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v =
              0.004 * (0.5 + 0.5 * s / (8 * kKiB)) * (1 + c) / std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("tc", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

LayoutProblem MakeProblem(int n, int m) {
  LayoutProblem p;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    p.object_sizes.push_back(kGiB);
    p.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = 100.0 / (i + 1);
    w.read_size = 8 * kKiB;
    w.run_count = 1.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    p.workloads.push_back(std::move(w));
  }
  for (int j = 0; j < m; ++j) {
    p.targets.push_back(AdvisorTarget{StrFormat("t%d", j), 100 * kGiB,
                                      &TestCost(), 1, 64 * kKiB});
  }
  return p;
}

// ------------------------------------------------------- PlacementConstraints

TEST(ConstraintsTest, ValidateChecksReferences) {
  PlacementConstraints c;
  EXPECT_TRUE(c.Validate(3, 2).ok());
  c.allowed_targets = {{0}, {}, {1}};
  EXPECT_TRUE(c.Validate(3, 2).ok());
  c.allowed_targets = {{0}, {}};
  EXPECT_FALSE(c.Validate(3, 2).ok());  // wrong outer size
  c.allowed_targets = {{0}, {}, {7}};
  EXPECT_FALSE(c.Validate(3, 2).ok());  // unknown target
  c.allowed_targets = {{0, 0}, {}, {1}};
  EXPECT_FALSE(c.Validate(3, 2).ok());  // duplicate
  c.allowed_targets.clear();
  c.separate = {{0, 0}};
  EXPECT_FALSE(c.Validate(3, 2).ok());  // self-pair
  c.separate = {{0, 5}};
  EXPECT_FALSE(c.Validate(3, 2).ok());  // unknown object
}

TEST(ConstraintsTest, SatisfiedByChecksAllowedTargets) {
  PlacementConstraints c;
  c.allowed_targets = {{0}, {}};
  Layout l(2, 2);
  l.SetRowRegular(0, {0});
  l.SetRowRegular(1, {0, 1});
  EXPECT_TRUE(c.SatisfiedBy(l));
  l.SetRowRegular(0, {0, 1});
  EXPECT_FALSE(c.SatisfiedBy(l));
}

TEST(ConstraintsTest, SatisfiedByChecksSeparation) {
  PlacementConstraints c;
  c.separate = {{0, 1}};
  Layout l(2, 2);
  l.SetRowRegular(0, {0});
  l.SetRowRegular(1, {1});
  EXPECT_TRUE(c.SatisfiedBy(l));
  l.SetRowRegular(1, {0, 1});
  EXPECT_FALSE(c.SatisfiedBy(l));
}

TEST(ConstraintsTest, AllowedForOutOfRangeIsUnrestricted) {
  PlacementConstraints c;
  EXPECT_TRUE(c.AllowedFor(5).empty());
  c.allowed_targets = {{1}};
  EXPECT_EQ(c.AllowedFor(0), (std::vector<int>{1}));
  EXPECT_TRUE(c.AllowedFor(3).empty());
}

// ---------------------------------------------------------- InitialLayout

TEST(ConstraintsTest, InitialLayoutHonorsPinning) {
  LayoutProblem p = MakeProblem(4, 3);
  p.constraints.allowed_targets = {{2}, {}, {}, {}};
  auto l = InitialLayout(p);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->TargetsOf(0), (std::vector<int>{2}));
  EXPECT_TRUE(p.constraints.SatisfiedBy(*l));
}

TEST(ConstraintsTest, InitialLayoutHonorsSeparation) {
  LayoutProblem p = MakeProblem(2, 2);
  // Make both objects want the same least-loaded target: equal rates.
  p.workloads[1].read_rate = p.workloads[0].read_rate;
  p.constraints.separate = {{0, 1}};
  auto l = InitialLayout(p);
  ASSERT_TRUE(l.ok());
  EXPECT_NE(l->TargetsOf(0)[0], l->TargetsOf(1)[0]);
}

TEST(ConstraintsTest, InitialLayoutInfeasiblePinningFails) {
  LayoutProblem p = MakeProblem(2, 2);
  p.targets[0].capacity_bytes = kGiB;  // fits exactly one object
  p.constraints.allowed_targets = {{0}, {0}};
  auto l = InitialLayout(p);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kInfeasible);
}

// --------------------------------------------------------------- Advisor

TEST(ConstraintsTest, AdvisorRespectsPinnedObject) {
  LayoutProblem p = MakeProblem(4, 3);
  p.constraints.allowed_targets = {{}, {1, 2}, {}, {0}};
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(p.constraints.SatisfiedBy(r->final_layout));
  EXPECT_TRUE(r->final_layout.IsRegular(1e-9));
  // Object 3 only on target 0.
  EXPECT_EQ(r->final_layout.TargetsOf(3), (std::vector<int>{0}));
}

TEST(ConstraintsTest, AdvisorSeparatesConstrainedPair) {
  LayoutProblem p = MakeProblem(4, 3);
  // Objects 0 and 1 are the two hottest; force separation even though the
  // unconstrained optimum might co-stripe them.
  p.constraints.separate = {{0, 1}};
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  const auto t0 = r->final_layout.TargetsOf(0);
  const auto t1 = r->final_layout.TargetsOf(1);
  for (int j : t0) EXPECT_EQ(std::count(t1.begin(), t1.end(), j), 0);
}

TEST(ConstraintsTest, AdvisorStillOptimizesUnderConstraints) {
  // Pinning one cold object must not stop the advisor from balancing the
  // rest: the result should beat the all-on-one-target seed clearly.
  LayoutProblem p = MakeProblem(6, 3);
  p.constraints.allowed_targets = {{}, {}, {}, {}, {}, {1}};
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  TargetModel model = p.MakeTargetModel();
  Layout all_on_one(6, 3);
  for (int i = 0; i < 6; ++i) all_on_one.SetRowRegular(i, {1});
  EXPECT_LT(r->max_utilization_final,
            0.7 * model.MaxUtilization(p.workloads, all_on_one));
  EXPECT_TRUE(p.constraints.SatisfiedBy(r->final_layout));
}

TEST(ConstraintsTest, ProblemValidateRejectsBadConstraints) {
  LayoutProblem p = MakeProblem(2, 2);
  p.constraints.separate = {{0, 9}};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ConstraintsTest, LayoutToPlacementsEnforcesConstraints) {
  LayoutProblem p = MakeProblem(2, 2);
  p.constraints.allowed_targets = {{0}, {}};
  Layout l(2, 2);
  l.SetRowRegular(0, {1});  // violates the pin
  l.SetRowRegular(1, {0});
  EXPECT_FALSE(LayoutToPlacements(p, l).ok());
  l.SetRowRegular(0, {0});
  EXPECT_TRUE(LayoutToPlacements(p, l).ok());
}

}  // namespace
}  // namespace ldb
