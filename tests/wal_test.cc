// Durable WAL layer: record framing, torn-tail recovery, interior
// corruption detection, deterministic crash injection, and the durable
// file-replace helper. The load-bearing properties are the fuzz sweeps:
// truncating the log at *every* byte offset, and flipping random bits,
// must always yield a clean prefix of the written records or a hard
// error — never a silently wrong record list.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/status.h"
#include "util/wal.h"

namespace ldb {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Writes `records` through a fresh WalWriter and returns the file bytes.
std::string BuildLog(const std::string& path,
                     const std::vector<std::string>& records) {
  std::remove(path.c_str());
  auto w = WalWriter::Open(path);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  for (const std::string& r : records) {
    EXPECT_TRUE((*w)->Append(r).ok());
  }
  EXPECT_TRUE((*w)->Sync().ok());
  return ReadFileBytes(path);
}

// ---------------------------------------------------------------- framing

TEST(WalTest, Crc32cKnownVector) {
  // The canonical CRC32C check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // Chained partial checksums equal the one-shot checksum.
  const uint32_t head = Crc32c("12345", 5);
  EXPECT_EQ(Crc32c("6789", 4, head), 0xE3069283u);
}

TEST(WalTest, RoundTripsRecordsIncludingEmptyAndBinary)
{
  const std::string path = TmpPath("wal_roundtrip.wal");
  std::vector<std::string> records{"hello", "", std::string("\x00\xff\n", 3),
                                   std::string(100000, 'x')};
  BuildLog(path, records);

  auto read = ReadWalRecords(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read->torn_tail);
  ASSERT_EQ(read->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(read->records[i], records[i]) << "record " << i;
  }
}

TEST(WalTest, ReopenAppendsAfterExistingRecords) {
  const std::string path = TmpPath("wal_reopen.wal");
  BuildLog(path, {"a", "b"});
  {
    auto w = WalWriter::Open(path);
    ASSERT_TRUE(w.ok());
    EXPECT_EQ((*w)->recovered(), 2);
    EXPECT_TRUE((*w)->Append("c").ok());
    EXPECT_TRUE((*w)->Sync().ok());
    EXPECT_EQ((*w)->appended(), 1);
  }
  auto read = ReadWalRecords(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(WalTest, MissingFileReadsAsError) {
  auto read = ReadWalRecords(TmpPath("wal_nonexistent.wal"));
  EXPECT_FALSE(read.ok());
}

TEST(WalTest, ForeignHeaderIsHardError) {
  const std::string path = TmpPath("wal_foreign.wal");
  WriteFileBytes(path, "NOTAWAL0 some junk");
  EXPECT_FALSE(ReadWalRecords(path).ok());
  EXPECT_FALSE(WalWriter::Open(path).ok());
}

TEST(WalTest, OversizedLengthWithDataAfterIsHardError) {
  const std::string path = TmpPath("wal_oversize.wal");
  std::string bytes = BuildLog(path, {"abc", "def"});
  // Claim an implausible payload length in the first frame; the second
  // frame's bytes follow, so this is interior corruption.
  bytes[8] = '\xff';
  bytes[9] = '\xff';
  bytes[10] = '\xff';
  bytes[11] = '\x7f';
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReadWalRecords(path).ok());
}

// ------------------------------------------------------- torn-tail sweeps

// Truncation at every byte offset: a crash can cut the file anywhere, and
// recovery must always produce an exact prefix of the appended records.
TEST(WalTest, TruncationAtEveryByteRecoversExactPrefix) {
  const std::string path = TmpPath("wal_trunc.wal");
  const std::vector<std::string> records{"first", "", "third-record",
                                         std::string(3000, 'z'), "tail"};
  const std::string bytes = BuildLog(path, records);

  const std::string cut = TmpPath("wal_trunc_cut.wal");
  for (size_t len = 0; len <= bytes.size(); ++len) {
    WriteFileBytes(cut, bytes.substr(0, len));
    auto read = ReadWalRecords(cut);
    ASSERT_TRUE(read.ok()) << "len=" << len << ": "
                           << read.status().ToString();
    ASSERT_LE(read->records.size(), records.size()) << "len=" << len;
    for (size_t i = 0; i < read->records.size(); ++i) {
      EXPECT_EQ(read->records[i], records[i]) << "len=" << len;
    }
    if (len < bytes.size()) {
      EXPECT_LT(read->records.size(), records.size()) << "len=" << len;
    }
    // Reopening for append must land the writer on the same prefix.
    auto w = WalWriter::Open(cut);
    ASSERT_TRUE(w.ok()) << "len=" << len;
    EXPECT_EQ((*w)->recovered(),
              static_cast<int64_t>(read->records.size()))
        << "len=" << len;
  }
}

TEST(WalTest, TailCorruptionDropsOnlyTheLastRecord) {
  const std::string path = TmpPath("wal_tailflip.wal");
  const std::vector<std::string> records{"aaaa", "bbbb", "cccc"};
  std::string bytes = BuildLog(path, records);
  // Flip a bit inside the last record's payload: nothing follows it, so
  // this must read as a torn tail, not corruption.
  bytes[bytes.size() - 2] ^= 0x01;
  WriteFileBytes(path, bytes);
  auto read = ReadWalRecords(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->torn_tail);
  EXPECT_EQ(read->records, (std::vector<std::string>{"aaaa", "bbbb"}));
}

TEST(WalTest, InteriorCorruptionIsAHardError) {
  const std::string path = TmpPath("wal_interior.wal");
  const std::vector<std::string> records{"aaaa", "bbbb", "cccc"};
  std::string bytes = BuildLog(path, records);
  // Flip a payload bit in the *first* record; intact frames follow, so a
  // silent drop would lose committed history — must be a hard error.
  bytes[16] ^= 0x10;
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReadWalRecords(path).ok());
  EXPECT_FALSE(WalWriter::Open(path).ok());
}

// Seeded fuzz: random records, then a random truncation and/or single-bit
// flip. Every outcome must be a clean prefix or a hard error — the reader
// may never invent or alter a record.
TEST(WalTest, FuzzedDamageYieldsPrefixOrError) {
  const std::string path = TmpPath("wal_fuzz.wal");
  const std::string hurt = TmpPath("wal_fuzz_hurt.wal");
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const int count = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    std::vector<std::string> records;
    for (int i = 0; i < count; ++i) {
      std::string r(rng.UniformInt(uint64_t{400}), '\0');
      for (char& c : r) c = static_cast<char>(rng.UniformInt(uint64_t{256}));
      records.push_back(std::move(r));
    }
    std::string bytes = BuildLog(path, records);

    const bool truncate = rng.Bernoulli(0.5);
    if (truncate) {
      bytes.resize(rng.UniformInt(static_cast<uint64_t>(bytes.size() + 1)));
    }
    const bool flip = !truncate || rng.Bernoulli(0.3);
    if (flip && !bytes.empty()) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(bytes.size())));
      bytes[pos] ^= static_cast<char>(1u << rng.UniformInt(uint64_t{8}));
    }
    WriteFileBytes(hurt, bytes);

    auto read = ReadWalRecords(hurt);
    if (!read.ok()) continue;  // hard corruption error: acceptable
    ASSERT_LE(read->records.size(), records.size()) << "trial " << trial;
    for (size_t i = 0; i < read->records.size(); ++i) {
      // A flipped bit could land in an already-read record only if the CRC
      // collides; with CRC32C a single-bit flip never does.
      EXPECT_EQ(read->records[i], records[i]) << "trial " << trial;
    }
  }
}

// ------------------------------------------------------- crash injection

TEST(WalTest, ParseWalCrashPolicyGrammar) {
  auto p = ParseWalCrashPolicy("after=12,torn=5,seed=7");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->fail_after_appends, 12);
  EXPECT_EQ(p->torn_bytes, 5);
  EXPECT_EQ(p->seed, 7u);
  EXPECT_TRUE(p->enabled());

  auto s = ParseWalCrashPolicy("syncs=3");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->drop_syncs_after, 3);

  // An empty spec is a disabled policy, mirroring ParseFaultPlan.
  auto none = ParseWalCrashPolicy("");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->enabled());

  auto bad_key = ParseWalCrashPolicy("bogus=1");
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().ToString().find("clause 1"), std::string::npos);
  // torn without after has no crashing append to tear.
  EXPECT_FALSE(ParseWalCrashPolicy("torn=3").ok());
  EXPECT_FALSE(ParseWalCrashPolicy("after=").ok());
  EXPECT_FALSE(ParseWalCrashPolicy("after=-2").ok());
}

TEST(WalTest, FailAfterAppendsCrashesExactlyThere) {
  const std::string path = TmpPath("wal_crash_after.wal");
  std::remove(path.c_str());
  WalCrashPolicy policy;
  policy.fail_after_appends = 3;
  auto w = WalWriter::Open(path, policy);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE((*w)->Append("r0").ok());
  EXPECT_TRUE((*w)->Append("r1").ok());
  EXPECT_TRUE((*w)->Append("r2").ok());
  EXPECT_FALSE((*w)->crashed());
  const Status dead = (*w)->Append("r3");
  EXPECT_EQ(dead.code(), StatusCode::kIoError);
  EXPECT_TRUE((*w)->crashed());
  // The dead writer stays dead.
  EXPECT_FALSE((*w)->Append("r4").ok());
  EXPECT_FALSE((*w)->Sync().ok());

  auto read = ReadWalRecords(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records, (std::vector<std::string>{"r0", "r1", "r2"}));
  EXPECT_FALSE(read->torn_tail);
}

TEST(WalTest, TornCrashLeavesAPrefixTheReopenTruncates) {
  const std::string path = TmpPath("wal_crash_torn.wal");
  for (int64_t torn : {int64_t{1}, int64_t{4}, int64_t{9}, int64_t{11}}) {
    std::remove(path.c_str());
    WalCrashPolicy policy;
    policy.fail_after_appends = 2;
    policy.torn_bytes = torn;
    auto w = WalWriter::Open(path, policy);
    ASSERT_TRUE(w.ok());
    EXPECT_TRUE((*w)->Append("alpha").ok());
    EXPECT_TRUE((*w)->Append("beta").ok());
    EXPECT_FALSE((*w)->Append("gamma").ok());

    auto read = ReadWalRecords(path);
    ASSERT_TRUE(read.ok()) << "torn=" << torn;
    EXPECT_EQ(read->records, (std::vector<std::string>{"alpha", "beta"}))
        << "torn=" << torn;
    EXPECT_TRUE(read->torn_tail) << "torn=" << torn;

    // Reopen truncates the torn bytes and appends cleanly after them.
    auto w2 = WalWriter::Open(path);
    ASSERT_TRUE(w2.ok()) << "torn=" << torn;
    EXPECT_EQ((*w2)->recovered(), 2) << "torn=" << torn;
    EXPECT_TRUE((*w2)->Append("delta").ok());
    EXPECT_TRUE((*w2)->Sync().ok());
    auto again = ReadWalRecords(path);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->records,
              (std::vector<std::string>{"alpha", "beta", "delta"}));
  }
}

TEST(WalTest, DroppedSyncsRollBackToLastEffectiveSyncOnCrash) {
  const std::string path = TmpPath("wal_crash_syncs.wal");
  std::remove(path.c_str());
  WalCrashPolicy policy;
  policy.fail_after_appends = 4;
  policy.drop_syncs_after = 1;
  auto w = WalWriter::Open(path, policy);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE((*w)->Append("synced-0").ok());
  EXPECT_TRUE((*w)->Append("synced-1").ok());
  EXPECT_TRUE((*w)->Sync().ok());  // effective sync #1
  EXPECT_TRUE((*w)->Append("lost-2").ok());
  EXPECT_TRUE((*w)->Sync().ok());  // dropped: never reached media
  EXPECT_TRUE((*w)->Append("lost-3").ok());
  EXPECT_FALSE((*w)->Append("crash").ok());  // power loss

  auto read = ReadWalRecords(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records,
            (std::vector<std::string>{"synced-0", "synced-1"}));
}

// -------------------------------------------------------- durable helpers

TEST(WalTest, WriteFileDurableCreatesAndReplaces) {
  const std::string path = TmpPath("durable.txt");
  ASSERT_TRUE(WriteFileDurable(path, "first contents").ok());
  EXPECT_EQ(ReadFileBytes(path), "first contents");
  ASSERT_TRUE(WriteFileDurable(path, "second").ok());
  EXPECT_EQ(ReadFileBytes(path), "second");
}

TEST(WalTest, WriteFileDurableFailsInMissingDirectory) {
  EXPECT_FALSE(
      WriteFileDurable(TmpPath("no_such_dir/child.txt"), "x").ok());
}

TEST(WalTest, SyncPathOnMissingFileFails) {
  EXPECT_FALSE(SyncPath(TmpPath("wal_sync_missing")).ok());
}

}  // namespace
}  // namespace ldb
