// Tests for the on-disk cost-model cache: exact round-trips, stale-key
// detection when device parameters or calibration options change, graceful
// fallback on corrupt or missing files, and the warm-cache guarantee that
// no grid point is re-measured.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "model/calibration.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/units.h"

namespace ldb {
namespace {

// A deliberately tiny grid so each calibration costs milliseconds.
CalibrationOptions SmallOptions() {
  CalibrationOptions options;
  options.size_axis = {static_cast<double>(8 * kKiB),
                       static_cast<double>(64 * kKiB)};
  options.run_axis = {1, 8};
  options.contention_axis = {0, 2};
  options.warmup_requests = 4;
  options.sample_requests = 24;
  return options;
}

std::string FreshCacheDir(const char* name) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  dir += "ldb-calib-";
  dir += name;
  dir += "-";
  dir += std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  dir += "-";
  dir += std::to_string(getpid());
  return dir;
}

TEST(CalibrationCacheTest, SaveLoadRoundTripIsBitIdentical) {
  DiskModel disk(Scsi15kParams());
  const CalibrationOptions options = SmallOptions();
  auto model = CalibrateDevice(disk, options);
  ASSERT_TRUE(model.ok());

  const std::string dir = FreshCacheDir("roundtrip");
  const std::string path = CalibrationCachePath(dir, disk, options);
  const uint64_t key = CalibrationCacheKey(disk, options);
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveCostModelCache(path, key, *model).ok());

  auto loaded = LoadCostModelCache(path, key);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToText(), model->ToText());
}

TEST(CalibrationCacheTest, KeyChangesWithOptionsAndDeviceParams) {
  DiskModel disk(Scsi15kParams());
  const CalibrationOptions base = SmallOptions();
  const uint64_t key = CalibrationCacheKey(disk, base);

  CalibrationOptions seed_changed = base;
  seed_changed.seed = 99;
  EXPECT_NE(CalibrationCacheKey(disk, seed_changed), key);

  CalibrationOptions samples_changed = base;
  samples_changed.sample_requests += 1;
  EXPECT_NE(CalibrationCacheKey(disk, samples_changed), key);

  CalibrationOptions axis_changed = base;
  axis_changed.contention_axis.push_back(4);
  EXPECT_NE(CalibrationCacheKey(disk, axis_changed), key);

  DiskParams params = Scsi15kParams();
  params.capacity_bytes += kMiB;
  DiskModel resized(params);
  EXPECT_NE(CalibrationCacheKey(resized, base), key);

  SsdModel ssd(SsdParams{});
  EXPECT_NE(CalibrationCacheKey(ssd, base), key);

  // num_threads and cache_dir are execution details, not measurement
  // parameters: they must not invalidate the cache.
  CalibrationOptions threads_changed = base;
  threads_changed.num_threads = 7;
  threads_changed.cache_dir = "/somewhere/else";
  EXPECT_EQ(CalibrationCacheKey(disk, threads_changed), key);
}

TEST(CalibrationCacheTest, LoadRejectsStaleKey) {
  DiskModel disk(Scsi15kParams());
  const CalibrationOptions options = SmallOptions();
  auto model = CalibrateDevice(disk, options);
  ASSERT_TRUE(model.ok());

  const std::string dir = FreshCacheDir("stalekey");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/model.costmodel";
  ASSERT_TRUE(
      SaveCostModelCache(path, CalibrationCacheKey(disk, options), *model)
          .ok());

  CalibrationOptions other = options;
  other.seed = 1234;
  EXPECT_FALSE(
      LoadCostModelCache(path, CalibrationCacheKey(disk, other)).ok());
}

TEST(CalibrationCacheTest, WarmCacheMeasuresNothing) {
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options = SmallOptions();
  options.cache_dir = FreshCacheDir("warm");

  const uint64_t cold_before = CalibrationMeasurePoints();
  auto cold = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(CalibrationMeasurePoints(), cold_before);

  const uint64_t warm_before = CalibrationMeasurePoints();
  auto warm = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CalibrationMeasurePoints(), warm_before);
  EXPECT_EQ(warm->ToText(), cold->ToText());
}

TEST(CalibrationCacheTest, CorruptFileFallsBackToCalibration) {
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options = SmallOptions();
  options.cache_dir = FreshCacheDir("corrupt");

  auto cold = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(cold.ok());

  // Truncate the cache file mid-table.
  const std::string path = CalibrationCachePath(options.cache_dir, disk,
                                                options);
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << "calibcache v1 0000000000000000\ngarbage";
  }

  const uint64_t before = CalibrationMeasurePoints();
  auto recovered = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(recovered.ok());
  // Corrupt file -> full recalibration, then the cache is repaired.
  EXPECT_GT(CalibrationMeasurePoints(), before);
  EXPECT_EQ(recovered->ToText(), cold->ToText());

  const uint64_t after_repair = CalibrationMeasurePoints();
  auto warm = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CalibrationMeasurePoints(), after_repair);
}

TEST(CalibrationCacheTest, MissingDirectoryIsCreatedOnSave) {
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options = SmallOptions();
  options.cache_dir = FreshCacheDir("mkdir") + "/nested/deeper";

  auto cold = CalibrateDeviceCached(disk, options);
  ASSERT_TRUE(cold.ok());
  const std::string path = CalibrationCachePath(options.cache_dir, disk,
                                                options);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(CalibrationCacheTest, RegistrySharesCacheAcrossDeviceTypes) {
  DiskModel disk(Scsi15kParams());
  SsdModel ssd(SsdParams{});
  CalibrationOptions options = SmallOptions();
  options.cache_dir = FreshCacheDir("registry");

  auto cold = CostModelRegistry::ForDevices({&disk, &ssd}, options);
  ASSERT_TRUE(cold.ok());
  ASSERT_NE(cold->Find(disk.model_name()), nullptr);
  ASSERT_NE(cold->Find(ssd.model_name()), nullptr);

  const uint64_t before = CalibrationMeasurePoints();
  auto warm = CostModelRegistry::ForDevices({&disk, &ssd}, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CalibrationMeasurePoints(), before);
  EXPECT_EQ(warm->Find(disk.model_name())->ToText(),
            cold->Find(disk.model_name())->ToText());
  EXPECT_EQ(warm->Find(ssd.model_name())->ToText(),
            cold->Find(ssd.model_name())->ToText());
}

}  // namespace
}  // namespace ldb
