// Tests for RAID1/RAID5 target behaviour in the simulator and the
// corresponding utilization model.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/target_model.h"
#include "storage/disk.h"
#include "storage/event_queue.h"
#include "storage/ssd.h"
#include "storage/target.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

std::unique_ptr<StorageTarget> MakeTarget(EventQueue* q, int members,
                                          RaidLevel level) {
  SsdParams params;  // deterministic flat service times simplify checks
  SsdModel proto(params);
  std::vector<std::unique_ptr<BlockDevice>> devs;
  for (int i = 0; i < members; ++i) devs.push_back(proto.Clone());
  return std::make_unique<StorageTarget>("t", std::move(devs), 64 * kKiB, q,
                                         0.06, level);
}

// ----------------------------------------------------------- capacities

TEST(RaidTest, CapacityPerLevel) {
  EventQueue q;
  auto r0 = MakeTarget(&q, 3, RaidLevel::kRaid0);
  auto r1 = MakeTarget(&q, 3, RaidLevel::kRaid1);
  auto r5 = MakeTarget(&q, 3, RaidLevel::kRaid5);
  const int64_t one = SsdParams{}.capacity_bytes;
  EXPECT_EQ(r0->capacity_bytes(), 3 * one);
  EXPECT_EQ(r1->capacity_bytes(), one);
  EXPECT_EQ(r5->capacity_bytes(), 2 * one);
  EXPECT_EQ(r5->raid_level(), RaidLevel::kRaid5);
}

TEST(RaidTest, LevelNames) {
  EXPECT_STREQ(RaidLevelName(RaidLevel::kRaid0), "raid0");
  EXPECT_STREQ(RaidLevelName(RaidLevel::kRaid1), "raid1");
  EXPECT_STREQ(RaidLevelName(RaidLevel::kRaid5), "raid5");
}

// ----------------------------------------------------------- RAID1

TEST(RaidTest, Raid1WritesAllMembersReadsOne) {
  EventQueue q;
  auto t = MakeTarget(&q, 2, RaidLevel::kRaid1);
  // One write: busy time is ~2x the single-device write service.
  t->Submit({0, 8 * kKiB, true, 0}, nullptr);
  q.RunUntilIdle();
  const double write_busy = t->busy_time();
  t->Reset();
  // One read: busy time is one device's read service.
  t->Submit({0, 8 * kKiB, false, 0}, nullptr);
  q.RunUntilIdle();
  const double read_busy = t->busy_time();
  EXPECT_GT(write_busy, 2.0 * read_busy);  // writes also cost more on SSD
  t->Reset();
  // Two concurrent reads are served in parallel on distinct mirrors.
  std::vector<double> done;
  t->Submit({0, 8 * kKiB, false, 0}, [&](double w) { done.push_back(w); });
  t->Submit({0, 8 * kKiB, false, 0}, [&](double w) { done.push_back(w); });
  q.RunUntilIdle();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], done[1], 1e-9);
}

// ----------------------------------------------------------- RAID5

TEST(RaidTest, Raid5SmallWritePaysParityPenalty) {
  EventQueue q1, q2;
  auto r0 = MakeTarget(&q1, 3, RaidLevel::kRaid0);
  auto r5 = MakeTarget(&q2, 3, RaidLevel::kRaid5);
  r0->Submit({0, 8 * kKiB, true, 0}, nullptr);
  r5->Submit({0, 8 * kKiB, true, 0}, nullptr);
  q1.RunUntilIdle();
  q2.RunUntilIdle();
  // RAID5 adds a parity read + parity write.
  EXPECT_GT(r5->busy_time(), 2.0 * r0->busy_time());
}

TEST(RaidTest, Raid5ReadCostsLikeRaid0) {
  EventQueue q1, q2;
  auto r0 = MakeTarget(&q1, 3, RaidLevel::kRaid0);
  auto r5 = MakeTarget(&q2, 3, RaidLevel::kRaid5);
  r0->Submit({0, 64 * kKiB, false, 0}, nullptr);
  r5->Submit({0, 64 * kKiB, false, 0}, nullptr);
  q1.RunUntilIdle();
  q2.RunUntilIdle();
  EXPECT_NEAR(r5->busy_time(), r0->busy_time(), 1e-9);
}

TEST(RaidTest, Raid5RotatesParityAcrossRows) {
  // Sequential writes across several rows must hit every member (rotating
  // parity); with a fixed parity disk one member would stay idle.
  EventQueue q;
  DiskModel proto(Scsi15kParams());
  std::vector<std::unique_ptr<BlockDevice>> devs;
  for (int i = 0; i < 3; ++i) devs.push_back(proto.Clone());
  StorageTarget t("t", std::move(devs), 64 * kKiB, &q, 0.06,
                  RaidLevel::kRaid5);
  // Write six data stripes (three rows of two data columns each).
  for (int s = 0; s < 6; ++s) {
    t.Submit({s * 64 * kKiB, 64 * kKiB, true, 0}, nullptr);
  }
  const double total = q.RunUntilIdle();
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(t.requests_completed(), 6u);
}

// ----------------------------------------------------------- model side

CostModel FlatCostModel() {
  std::vector<double> sizes{static_cast<double>(8 * kKiB),
                            static_cast<double>(64 * kKiB)};
  std::vector<double> runs{1, 64};
  std::vector<double> chis{0, 8};
  std::vector<double> reads(8, 0.001), writes(8, 0.002);
  auto m = CostModel::Create("flat", sizes, runs, chis, reads, writes);
  LDB_CHECK(m.ok());
  return std::move(m).value();
}

WorkloadSet OneWorkload(double read_rate, double write_rate) {
  WorkloadDesc w;
  w.read_rate = read_rate;
  w.read_size = 8 * kKiB;
  w.write_rate = write_rate;
  w.write_size = 8 * kKiB;
  w.run_count = 1;
  w.overlap = {0.0};
  return {w};
}

double UtilizationFor(RaidLevel level, int members, double reads,
                      double writes, const CostModel& cm) {
  TargetModelInfo info;
  info.cost_model = &cm;
  info.num_members = members;
  info.stripe_bytes = 64 * kKiB;
  info.raid_level = level;
  TargetModel model({info}, LvmLayoutModel(64 * kKiB));
  Layout l(1, 1);
  l.Set(0, 0, 1.0);
  return model.Utilizations(OneWorkload(reads, writes), l)[0];
}

TEST(RaidTest, ModelRaid1ReadScalingAndWritePenalty) {
  const CostModel cm = FlatCostModel();
  // Reads: mirrored pair serves at 2x, so utilization halves.
  EXPECT_NEAR(UtilizationFor(RaidLevel::kRaid1, 2, 100, 0, cm),
              0.5 * UtilizationFor(RaidLevel::kRaid0, 1, 100, 0, cm), 1e-9);
  // Writes: every mirror writes — no utilization benefit over one device.
  EXPECT_NEAR(UtilizationFor(RaidLevel::kRaid1, 2, 0, 100, cm),
              UtilizationFor(RaidLevel::kRaid0, 1, 0, 100, cm), 1e-9);
}

TEST(RaidTest, ModelRaid5WritePenaltyExceedsRaid0) {
  const CostModel cm = FlatCostModel();
  const double r5 = UtilizationFor(RaidLevel::kRaid5, 3, 0, 100, cm);
  const double r0 = UtilizationFor(RaidLevel::kRaid0, 3, 0, 100, cm);
  EXPECT_GT(r5, 2.0 * r0);
  // Reads: similar per-level cost.
  EXPECT_NEAR(UtilizationFor(RaidLevel::kRaid5, 3, 100, 0, cm),
              UtilizationFor(RaidLevel::kRaid0, 3, 100, 0, cm), 1e-3);
}

}  // namespace
}  // namespace ldb
