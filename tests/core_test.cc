#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/autoadmin.h"
#include "core/baselines.h"
#include "core/initial.h"
#include "core/problem.h"
#include "core/regularize.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/catalog.h"

namespace ldb {
namespace {

// A synthetic cost model: cost rises with contention, falls with run
// count. Shared by all unit tests (no calibration needed).
const CostModel& SyntheticCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v = 0.004 * (0.5 + 0.5 * s / (8 * kKiB)) *
                           (1.0 + 1.5 * c) / std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("synthetic", sizes, runs, chis, reads,
                               writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

/// Builds a problem with `n` objects and `m` identical targets. Rates
/// descend with object index; overlap defaults to zero.
LayoutProblem MakeProblem(int n, int m, int64_t object_size = kGiB,
                          int64_t capacity = 100 * kGiB) {
  LayoutProblem p;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    p.object_sizes.push_back(object_size);
    p.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = 100.0 / (i + 1);
    w.read_size = 8 * kKiB;
    w.run_count = 1.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    p.workloads.push_back(std::move(w));
  }
  for (int j = 0; j < m; ++j) {
    p.targets.push_back(AdvisorTarget{StrFormat("t%d", j), capacity,
                                      &SyntheticCost(), 1, 64 * kKiB});
  }
  return p;
}

// ------------------------------------------------------------ LayoutProblem

TEST(LayoutProblemTest, ValidatesDimensions) {
  LayoutProblem p = MakeProblem(3, 2);
  EXPECT_TRUE(p.Validate().ok());
  p.object_names.pop_back();
  EXPECT_FALSE(p.Validate().ok());
}

TEST(LayoutProblemTest, DetectsInsufficientTotalCapacity) {
  LayoutProblem p = MakeProblem(4, 2, 10 * kGiB, 15 * kGiB);
  const Status s = p.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
}

TEST(LayoutProblemTest, NlpCallbackMatchesTargetModel) {
  LayoutProblem p = MakeProblem(3, 2);
  TargetModel model = p.MakeTargetModel();
  LayoutNlpProblem nlp = p.MakeNlp(&model);
  Layout l = Layout::StripeEverythingEverywhere(3, 2);
  EXPECT_DOUBLE_EQ(nlp.target_utilization(l, 0),
                   model.TargetUtilization(p.workloads, l, 0));
}

TEST(LayoutProblemTest, LayoutToPlacementsRequiresRegular) {
  LayoutProblem p = MakeProblem(2, 2);
  Layout bad(2, 2);
  bad.Set(0, 0, 0.3);
  bad.Set(0, 1, 0.7);
  bad.SetRowRegular(1, {0});
  EXPECT_FALSE(LayoutToPlacements(p, bad).ok());
  Layout good(2, 2);
  good.SetRowRegular(0, {0, 1});
  good.SetRowRegular(1, {1});
  auto placements = LayoutToPlacements(p, good);
  ASSERT_TRUE(placements.ok());
  EXPECT_EQ((*placements)[0], (std::vector<int>{0, 1}));
  EXPECT_EQ((*placements)[1], (std::vector<int>{1}));
}

// ------------------------------------------------------------ InitialLayout

TEST(InitialLayoutTest, AssignsEachObjectToOneTarget) {
  LayoutProblem p = MakeProblem(6, 3);
  auto l = InitialLayout(p);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->IsValid(p.object_sizes, p.capacities()));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(l->TargetsOf(i).size(), 1u);
}

TEST(InitialLayoutTest, BalancesRequestRates) {
  LayoutProblem p = MakeProblem(8, 2);
  auto l = InitialLayout(p);
  ASSERT_TRUE(l.ok());
  double rate[2] = {0, 0};
  for (int i = 0; i < 8; ++i) {
    const int j = l->TargetsOf(i)[0];
    rate[j] += p.workloads[static_cast<size_t>(i)].total_rate();
  }
  // Greedy balance: neither target gets more than ~65% of the total.
  const double total = rate[0] + rate[1];
  EXPECT_LT(std::max(rate[0], rate[1]) / total, 0.65);
}

TEST(InitialLayoutTest, RespectsCapacity) {
  // Target 0 can hold only one object.
  LayoutProblem p = MakeProblem(3, 2, 10 * kGiB, 30 * kGiB);
  p.targets[0].capacity_bytes = 10 * kGiB;
  auto l = InitialLayout(p);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->SatisfiesCapacity(p.object_sizes, p.capacities()));
}

TEST(InitialLayoutTest, FailsWhenNothingFits) {
  LayoutProblem p = MakeProblem(3, 2, 10 * kGiB, 14 * kGiB);
  // Total capacity 28 < 30 needed; Validate already rejects, and the
  // greedy layout must also fail cleanly.
  auto l = InitialLayout(p);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kInfeasible);
}

// ------------------------------------------------------------- Regularizer

TEST(RegularizerTest, OutputIsRegularAndValid) {
  LayoutProblem p = MakeProblem(5, 3);
  TargetModel model = p.MakeTargetModel();
  Regularizer reg(&p, &model);
  Layout solver_layout(5, 3);
  // Non-regular solver output.
  for (int i = 0; i < 5; ++i) {
    solver_layout.Set(i, 0, 0.47);
    solver_layout.Set(i, 1, 0.35);
    solver_layout.Set(i, 2, 0.18);
  }
  auto r = reg.Regularize(solver_layout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsRegular(1e-9));
  EXPECT_TRUE(r->IsValid(p.object_sizes, p.capacities()));
}

TEST(RegularizerTest, PreservesAlreadyRegularBalancedLayout) {
  // Two equal-rate objects isolated on two targets is optimal; the
  // regularizer must not disturb it.
  LayoutProblem p = MakeProblem(2, 2);
  p.workloads[1].read_rate = p.workloads[0].read_rate;
  TargetModel model = p.MakeTargetModel();
  Regularizer reg(&p, &model);
  Layout l(2, 2);
  l.SetRowRegular(0, {0});
  l.SetRowRegular(1, {1});
  auto r = reg.Regularize(l);
  ASSERT_TRUE(r.ok());
  const double mu_before = model.MaxUtilization(p.workloads, l);
  const double mu_after = model.MaxUtilization(p.workloads, *r);
  EXPECT_LE(mu_after, mu_before + 1e-9);
}

TEST(RegularizerTest, NearRegularSolverLayoutStaysClose) {
  // The paper notes (Fig. 12 vs 14b) that an almost-regular solver layout
  // regularizes to nearly the same thing: max utilization should not jump.
  LayoutProblem p = MakeProblem(4, 2);
  TargetModel model = p.MakeTargetModel();
  Layout solver_layout(4, 2);
  solver_layout.Set(0, 0, 0.52);
  solver_layout.Set(0, 1, 0.48);
  solver_layout.SetRowRegular(1, {1});
  solver_layout.SetRowRegular(2, {0});
  solver_layout.Set(3, 0, 0.49);
  solver_layout.Set(3, 1, 0.51);
  Regularizer reg(&p, &model);
  auto r = reg.Regularize(solver_layout);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(model.MaxUtilization(p.workloads, *r),
            1.15 * model.MaxUtilization(p.workloads, solver_layout));
}

TEST(RegularizerTest, BalancingCandidatesFixImbalance) {
  // Solver layout crams everything on target 0; balancing candidates must
  // spread the load.
  LayoutProblem p = MakeProblem(6, 3);
  TargetModel model = p.MakeTargetModel();
  Layout l(6, 3);
  for (int i = 0; i < 6; ++i) l.SetRowRegular(i, {0});
  Regularizer reg(&p, &model);
  auto r = reg.Regularize(l);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(model.MaxUtilization(p.workloads, *r),
            0.7 * model.MaxUtilization(p.workloads, l));
}

TEST(RegularizerTest, FailsUnderImpossibleCapacity) {
  // Objects of 10 GiB; targets of 12 GiB each. Any single-target candidate
  // for the second object on a used target violates capacity, but
  // balancing candidates onto the other targets succeed — so build a case
  // where even that fails: 4 objects, 2 targets, each target fits one.
  LayoutProblem p = MakeProblem(4, 2, 10 * kGiB, 12 * kGiB);
  // Validate() fails (40 GiB into 24 GiB); Regularize must surface it.
  TargetModel model = p.MakeTargetModel();
  Regularizer reg(&p, &model);
  EXPECT_FALSE(reg.Regularize(Layout::StripeEverythingEverywhere(4, 2)).ok());
}

// ---------------------------------------------------------------- Advisor

TEST(AdvisorTest, BeatsSeeOnInterferingWorkload) {
  // Two heavy sequential objects that always overlap: SEE co-locates them
  // everywhere; the advisor should separate them.
  LayoutProblem p = MakeProblem(4, 2);
  for (int i : {0, 1}) {
    p.workloads[static_cast<size_t>(i)].read_rate = 80;
    p.workloads[static_cast<size_t>(i)].read_size = 256 * kKiB;
    p.workloads[static_cast<size_t>(i)].run_count = 64;
  }
  p.workloads[0].overlap[1] = 1.0;
  p.workloads[1].overlap[0] = 1.0;
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  TargetModel model = p.MakeTargetModel();
  const double see_mu =
      model.MaxUtilization(p.workloads, SeeBaseline(p));
  EXPECT_LT(r->max_utilization_final, see_mu);
  EXPECT_TRUE(r->final_layout.IsRegular(1e-9));
  EXPECT_TRUE(r->final_layout.IsValid(p.object_sizes, p.capacities()));
  // The two hot objects end up disjoint.
  const auto t0 = r->final_layout.TargetsOf(0);
  const auto t1 = r->final_layout.TargetsOf(1);
  for (int j : t0) {
    EXPECT_EQ(std::count(t1.begin(), t1.end(), j), 0);
  }
}

TEST(AdvisorTest, ReportsAllStages) {
  LayoutProblem p = MakeProblem(5, 3);
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->utilization_initial.size(), 3u);
  EXPECT_EQ(r->utilization_solver.size(), 3u);
  EXPECT_EQ(r->utilization_final.size(), 3u);
  EXPECT_GE(r->solver_seconds, 0.0);
  EXPECT_GE(r->regularization_seconds, 0.0);
  EXPECT_GT(r->solver_stats.objective_evaluations, 0);
  // Solver should do no worse than its seed.
  const double init_max = *std::max_element(
      r->utilization_initial.begin(), r->utilization_initial.end());
  const double solver_max = *std::max_element(
      r->utilization_solver.begin(), r->utilization_solver.end());
  EXPECT_LE(solver_max, init_max + 1e-9);
}

TEST(AdvisorTest, NonRegularModeReturnsSolverLayout) {
  LayoutProblem p = MakeProblem(4, 2);
  AdvisorOptions opts;
  opts.regularize = false;
  LayoutAdvisor advisor(opts);
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->final_layout, r->solver_layout);
  EXPECT_DOUBLE_EQ(r->regularization_seconds, 0.0);
}

TEST(AdvisorTest, FavorsFasterTargetsUnderHeterogeneity) {
  // Target 0 is a 3-member group (3x the throughput): the hottest object
  // should land with more capacity share there.
  LayoutProblem p = MakeProblem(4, 2);
  p.targets[0].num_members = 3;
  p.targets[0].capacity_bytes *= 3;
  LayoutAdvisor advisor;
  auto r = advisor.Recommend(p);
  ASSERT_TRUE(r.ok());
  // Aggregate request rate assigned to the fast target exceeds the slow's.
  double fast = 0, slow = 0;
  for (int i = 0; i < 4; ++i) {
    fast += r->final_layout.At(i, 0) * p.workloads[static_cast<size_t>(i)].total_rate();
    slow += r->final_layout.At(i, 1) * p.workloads[static_cast<size_t>(i)].total_rate();
  }
  EXPECT_GT(fast, slow);
}

// --------------------------------------------------------------- Baselines

TEST(BaselinesTest, SeeStripesEverything) {
  LayoutProblem p = MakeProblem(3, 4);
  Layout l = SeeBaseline(p);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(l.TargetsOf(i).size(), 4u);
    EXPECT_DOUBLE_EQ(l.At(i, 0), 0.25);
  }
}

TEST(BaselinesTest, IsolateTablesSplitsByKind) {
  LayoutProblem p = MakeProblem(4, 3);
  p.object_kinds[2] = ObjectKind::kIndex;
  p.object_kinds[3] = ObjectKind::kTempSpace;
  auto l = IsolateTablesBaseline(p, 0);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->TargetsOf(0), (std::vector<int>{0}));
  EXPECT_EQ(l->TargetsOf(1), (std::vector<int>{0}));
  EXPECT_EQ(l->TargetsOf(2), (std::vector<int>{1, 2}));
  EXPECT_EQ(l->TargetsOf(3), (std::vector<int>{1, 2}));
}

TEST(BaselinesTest, IsolateTablesIndexesThreeWay) {
  LayoutProblem p = MakeProblem(4, 3);
  p.object_kinds[1] = ObjectKind::kIndex;
  p.object_kinds[2] = ObjectKind::kTempSpace;
  p.object_kinds[3] = ObjectKind::kLog;
  auto l = IsolateTablesIndexesBaseline(p, 0, 1, 2);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->TargetsOf(0), (std::vector<int>{0}));
  EXPECT_EQ(l->TargetsOf(1), (std::vector<int>{1}));
  EXPECT_EQ(l->TargetsOf(2), (std::vector<int>{2}));
  EXPECT_EQ(l->TargetsOf(3), (std::vector<int>{2}));
  EXPECT_FALSE(IsolateTablesIndexesBaseline(p, 0, 0, 2).ok());
}

TEST(BaselinesTest, AllOnOneTargetChecksCapacity) {
  LayoutProblem p = MakeProblem(3, 2, 10 * kGiB, 35 * kGiB);
  auto ok = AllOnOneTargetBaseline(p, 0);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->TargetsOf(1), (std::vector<int>{0}));
  p.targets[1].capacity_bytes = 25 * kGiB;
  EXPECT_FALSE(AllOnOneTargetBaseline(p, 1).ok());
}

// --------------------------------------------------------------- AutoAdmin

std::vector<QueryEstimate> TwoHotCoAccessedObjects() {
  // Queries access objects 0 and 1 together, heavily; 2 and 3 lightly.
  std::vector<QueryEstimate> queries;
  for (int q = 0; q < 10; ++q) {
    QueryEstimate est;
    est.accesses.push_back({0, 1e9});
    est.accesses.push_back({1, 8e8});
    if (q % 3 == 0) est.accesses.push_back({2, 1e7});
    if (q % 4 == 0) est.accesses.push_back({3, 1e7});
    queries.push_back(est);
  }
  return queries;
}

TEST(AutoAdminTest, SeparatesHeavilyCoAccessedObjects) {
  LayoutProblem p = MakeProblem(4, 3);
  AutoAdminAdvisor advisor;
  auto l = advisor.Recommend(p, TwoHotCoAccessedObjects());
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(l->IsRegular(1e-9));
  const auto t0 = l->TargetsOf(0);
  const auto t1 = l->TargetsOf(1);
  for (int j : t0) EXPECT_EQ(std::count(t1.begin(), t1.end(), j), 0);
}

TEST(AutoAdminTest, SpreadsHeavyObjectForParallelism) {
  // A single dominant object with no co-access should be striped widely.
  LayoutProblem p = MakeProblem(3, 4);
  std::vector<QueryEstimate> queries;
  QueryEstimate est;
  est.accesses.push_back({0, 1e9});
  queries.push_back(est);
  QueryEstimate est2;
  est2.accesses.push_back({1, 1e6});
  est2.accesses.push_back({2, 1e6});
  queries.push_back(est2);
  AutoAdminAdvisor advisor;
  auto l = advisor.Recommend(p, queries);
  ASSERT_TRUE(l.ok());
  EXPECT_GT(l->TargetsOf(0).size(), 1u);
}

TEST(AutoAdminTest, RejectsBadEstimates) {
  LayoutProblem p = MakeProblem(2, 2);
  AutoAdminAdvisor advisor;
  EXPECT_FALSE(advisor.Recommend(p, {}).ok());
  std::vector<QueryEstimate> bad{{{{77, 1.0}}}};
  EXPECT_FALSE(advisor.Recommend(p, bad).ok());
}

TEST(AutoAdminTest, EstimatesIgnoreConcurrencyAndInflateTemp) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap1 = MakeOlapSpec(cat, 1, 1, 7);
  auto olap8 = MakeOlapSpec(cat, 1, 8, 7);
  ASSERT_TRUE(olap1.ok());
  LayoutProblem p = MakeProblem(cat.num_objects(), 4);
  p.object_sizes = cat.sizes();
  for (int i = 0; i < cat.num_objects(); ++i) {
    p.object_kinds[static_cast<size_t>(i)] = cat.object(i).kind;
    p.object_names[static_cast<size_t>(i)] = cat.object(i).name;
  }
  auto e1 = EstimateQueriesFromSpec(*olap1, p, 8.0);
  auto e8 = EstimateQueriesFromSpec(*olap8, p, 8.0);
  ASSERT_EQ(e1.size(), e8.size());
  for (size_t q = 0; q < e1.size(); ++q) {
    ASSERT_EQ(e1[q].accesses.size(), e8[q].accesses.size());
    for (size_t a = 0; a < e1[q].accesses.size(); ++a) {
      EXPECT_EQ(e1[q].accesses[a].object, e8[q].accesses[a].object);
      EXPECT_DOUBLE_EQ(e1[q].accesses[a].estimated_bytes,
                       e8[q].accesses[a].estimated_bytes);
    }
  }
  // Temp volume estimates are inflated 8x relative to the true profile.
  auto no_error = EstimateQueriesFromSpec(*olap1, p, 1.0);
  const ObjectId temp = *cat.Find("TEMP SPACE");
  for (size_t q = 0; q < e1.size(); ++q) {
    for (size_t a = 0; a < e1[q].accesses.size(); ++a) {
      if (e1[q].accesses[a].object == temp) {
        EXPECT_DOUBLE_EQ(e1[q].accesses[a].estimated_bytes,
                         8.0 * no_error[q].accesses[a].estimated_bytes);
      }
    }
  }
}

}  // namespace
}  // namespace ldb
