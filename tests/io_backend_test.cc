// BlockBackend seam: the sim adapter must be bit-identical to calling the
// simulator directly, and the file backend must move real bytes — probe
// validation, alignment accounting, async submission, the dual-epoch data
// plane, and a full in-process migration whose every byte verifies against
// the deterministic pattern afterward.

#include <unistd.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/migrate.h"
#include "io/backend.h"
#include "io/file_backend.h"
#include "io/pattern.h"
#include "io/sim_backend.h"
#include "storage/disk.h"
#include "storage/fault.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/check.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/catalog.h"
#include "workload/query.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace ldb {
namespace {

std::unique_ptr<StorageSystem> MakeSystem3(const DiskModel& proto) {
  std::vector<TargetSpec> specs{
      {"d0", &proto, 1, 64 * kKiB},
      {"d1", &proto, 1, 64 * kKiB},
      {"d2", &proto, 1, 64 * kKiB},
  };
  return std::make_unique<StorageSystem>(specs);
}

StripedVolumeManager MakeVolumes(std::vector<int64_t> sizes,
                                 std::vector<std::vector<int>> placements,
                                 std::vector<int64_t> capacities) {
  auto v = StripedVolumeManager::Create(std::move(sizes),
                                        std::move(placements),
                                        std::move(capacities), 64 * kKiB);
  LDB_CHECK(v.ok());
  return std::move(v).value();
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string FreshDir(const std::string& name) {
  static int counter = 0;
  std::string dir = testing::TempDir() + "/io_backend_" + name +
                    StrFormat("_%d_%d", static_cast<int>(::getpid()),
                              counter++);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

FileBackendOptions SmallFileOptions(const std::string& dir, int targets,
                                    int64_t capacity) {
  FileBackendOptions o;
  o.dir = dir;
  o.capacity_bytes.assign(static_cast<size_t>(targets), capacity);
  o.quiet = true;  // tmpfs build dirs reject O_DIRECT; that's fine here
  return o;
}

// ------------------------------------------------------------- SimBackend

TEST(SimBackendTest, GeometryAndDataPlaneContract) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  SimBackend backend(sys.get());
  const BackendGeometry& g = backend.geometry();
  EXPECT_EQ(g.kind, BackendKind::kSim);
  EXPECT_EQ(g.num_targets, 3);
  ASSERT_EQ(g.capacity_bytes.size(), 3u);
  EXPECT_FALSE(g.direct_io);
  // The sim has no bytes to serve.
  char buf[512];
  EXPECT_FALSE(backend.ReadSync(0, 0, 512, buf).ok());
  EXPECT_FALSE(backend.WriteSync(0, 0, 512, buf).ok());
  EXPECT_TRUE(backend.Sync().ok());
  EXPECT_EQ(backend.PumpCompletions(), 0);
  EXPECT_TRUE(backend.Drain().ok());
}

TEST(SimBackendTest, BitIdenticalToDirectSimulatorRun) {
  // The load-bearing differential: the same workload, same seed, run once
  // through the direct submission path and once through the SimBackend
  // seam, must produce *exactly* equal results — same virtual clock, same
  // request count, same per-target utilization to the last bit.
  Catalog cat = Catalog::TpcH(0.01);
  auto spec = MakeOlapSpec(cat, 1, 2, 7);
  ASSERT_TRUE(spec.ok());
  DiskModel proto(Scsi15kParams());

  auto run = [&](bool through_backend) {
    std::vector<TargetSpec> specs;
    for (int j = 0; j < 3; ++j) {
      specs.push_back({StrFormat("disk%d", j), &proto, 1, 64 * kKiB});
    }
    auto sys = std::make_unique<StorageSystem>(specs);
    std::vector<std::vector<int>> placements(
        static_cast<size_t>(cat.num_objects()), std::vector<int>{0, 1, 2});
    auto vol = StripedVolumeManager::Create(cat.sizes(), placements,
                                            sys->capacities(), kMiB);
    LDB_CHECK(vol.ok());
    WorkloadRunner runner(sys.get(), &*vol, /*seed=*/42);
    std::unique_ptr<SimBackend> backend;
    if (through_backend) {
      backend = std::make_unique<SimBackend>(sys.get());
      runner.set_backend(backend.get());
    }
    auto result = runner.RunOlap(*spec);
    LDB_CHECK(result.ok());
    return std::move(result).value();
  };

  const RunResult direct = run(false);
  const RunResult seamed = run(true);
  EXPECT_EQ(seamed.elapsed_seconds, direct.elapsed_seconds);
  EXPECT_EQ(seamed.olap_queries_completed, direct.olap_queries_completed);
  EXPECT_EQ(seamed.total_requests, direct.total_requests);
  ASSERT_EQ(seamed.utilization.size(), direct.utilization.size());
  for (size_t j = 0; j < direct.utilization.size(); ++j) {
    EXPECT_EQ(seamed.utilization[j], direct.utilization[j]) << "target " << j;
  }
}

TEST(SimBackendTest, CountersCountSeamSubmissions) {
  Catalog cat = Catalog::TpcH(0.01);
  auto spec = MakeOlapSpec(cat, 1, 1, 7);
  ASSERT_TRUE(spec.ok());
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  std::vector<std::vector<int>> placements(
      static_cast<size_t>(cat.num_objects()), std::vector<int>{0, 1, 2});
  auto vol = StripedVolumeManager::Create(cat.sizes(), placements,
                                          sys->capacities(), kMiB);
  ASSERT_TRUE(vol.ok());
  WorkloadRunner runner(sys.get(), &*vol);
  SimBackend backend(sys.get());
  runner.set_backend(&backend);
  auto result = runner.RunOlap(*spec);
  ASSERT_TRUE(result.ok());
  const BackendCounters c = backend.counters();
  // Every target-level request flowed through the seam.
  EXPECT_EQ(c.reads + c.writes, result->total_requests);
  EXPECT_GT(c.bytes_read + c.bytes_written, 0);
  EXPECT_EQ(c.errors, 0u);
}

// ------------------------------------------------------------ FileBackend

TEST(FileBackendTest, ProbeRejectsSizeNotMultipleOfBlock) {
  const std::string dir = FreshDir("badsize");
  // Pre-create target 0 with a torn 1000-byte size.
  const std::string path = dir + "/target-000.dat";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::vector<char> junk(1000, 'x');
  ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  std::fclose(f);

  auto opened = FileBackend::Open(SmallFileOptions(dir, 2, 64 * kKiB));
  ASSERT_FALSE(opened.ok());
  const std::string msg = opened.status().message();
  EXPECT_NE(msg.find("backend target clause 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not a multiple"), std::string::npos) << msg;
}

TEST(FileBackendTest, ProbeRejectsNonRegularTarget) {
  const std::string dir = FreshDir("nonreg");
  ASSERT_EQ(::mkdir((dir + "/target-000.dat").c_str(), 0755), 0);
  auto opened = FileBackend::Open(SmallFileOptions(dir, 1, 64 * kKiB));
  ASSERT_FALSE(opened.ok());
  const std::string msg = opened.status().message();
  EXPECT_NE(msg.find("backend target clause 1"), std::string::npos) << msg;
}

TEST(FileBackendTest, ProbeRejectsNonPositiveCapacity) {
  const std::string dir = FreshDir("zerocap");
  FileBackendOptions o = SmallFileOptions(dir, 2, 64 * kKiB);
  o.capacity_bytes[1] = 0;
  auto opened = FileBackend::Open(o);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("backend target clause 2"),
            std::string::npos)
      << opened.status().message();
}

TEST(FileBackendTest, SyncRoundtripAndAlignmentCounters) {
  const std::string dir = FreshDir("roundtrip");
  auto opened = FileBackend::Open(SmallFileOptions(dir, 1, kMiB));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& b = **opened;
  ASSERT_EQ(b.geometry().num_targets, 1);
  EXPECT_EQ(b.geometry().capacity_bytes[0], kMiB);

  std::vector<char> out(8192), in(8192, 0);
  FillPattern(/*object=*/3, /*offset=*/0, 8192, out.data());
  ASSERT_TRUE(b.WriteSync(0, 4096, 8192, out.data()).ok());
  ASSERT_TRUE(b.Sync().ok());
  ASSERT_TRUE(b.ReadSync(0, 4096, 8192, in.data()).ok());
  EXPECT_EQ(std::memcmp(out.data(), in.data(), 8192), 0);

  // An unaligned request is served (buffered fallback) and counted.
  const uint64_t before = b.counters().unaligned_requests;
  ASSERT_TRUE(b.ReadSync(0, 100, 700, in.data()).ok());
  EXPECT_EQ(b.counters().unaligned_requests, before + 1);
  EXPECT_GE(b.counters().writes, 1u);
  EXPECT_GE(b.counters().reads, 2u);
  EXPECT_GE(b.counters().syncs, 1u);
  EXPECT_GE(b.counters().io_time_s, 0.0);
}

TEST(FileBackendTest, AsyncSubmitDeliversCompletionsOnPump) {
  const std::string dir = FreshDir("async");
  auto opened = FileBackend::Open(SmallFileOptions(dir, 2, kMiB));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& b = **opened;

  std::vector<char> data(64 * kKiB);
  FillPattern(/*object=*/1, /*offset=*/0, 64 * kKiB, data.data());
  int fired = 0;
  Status last;
  double when = -1.0;
  TargetRequest req;
  req.offset = 128 * kKiB;
  req.size = 64 * kKiB;
  req.is_write = true;
  b.Submit(1, req, data.data(), [&](double t, const Status& s) {
    ++fired;
    when = t;
    last = s;
  });
  // Timing-only replay: null data moves bytes through worker scratch.
  TargetRequest replay;
  replay.offset = 0;
  replay.size = 64 * kKiB;
  replay.is_write = false;
  b.Submit(0, replay, nullptr, [&](double, const Status& s) {
    ++fired;
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  ASSERT_TRUE(b.Drain().ok());
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(last.ok()) << last.ToString();
  EXPECT_GE(when, 0.0);

  std::vector<char> back(64 * kKiB, 0);
  ASSERT_TRUE(b.ReadSync(1, 128 * kKiB, 64 * kKiB, back.data()).ok());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), data.size()), 0);
}

TEST(FileBackendTest, OutOfRangeSubmitCompletesWithError) {
  const std::string dir = FreshDir("range");
  auto opened = FileBackend::Open(SmallFileOptions(dir, 1, kMiB));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& b = **opened;
  std::vector<char> buf(4096);
  Status got = Status::Ok();
  TargetRequest req;
  req.offset = kMiB;  // starts exactly at capacity
  req.size = 4096;
  req.is_write = false;
  b.Submit(0, req, buf.data(), [&](double, const Status& s) { got = s; });
  ASSERT_TRUE(b.Drain().ok());
  EXPECT_FALSE(got.ok());
  EXPECT_GE(b.counters().errors, 1u);
}

TEST(FileBackendTest, DualEpochHalvesAreDisjoint) {
  const std::string dir = FreshDir("epoch");
  FileBackendOptions o = SmallFileOptions(dir, 1, kMiB);
  o.dual_epoch = true;
  auto opened = FileBackend::Open(o);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& b = **opened;
  // Provisioned at 2x; the stride is the single-epoch capacity.
  EXPECT_EQ(b.geometry().capacity_bytes[0], 2 * kMiB);
  ASSERT_EQ(b.geometry().epoch_stride.size(), 1u);
  EXPECT_EQ(b.geometry().epoch_stride[0], kMiB);

  // The same simulated chunk offset lands in different file halves per
  // epoch, so a destination write cannot clobber source bytes.
  const TargetChunk src{/*target=*/0, /*offset=*/0, /*size=*/4096,
                        /*epoch=*/0};
  TargetChunk dst = src;
  dst.epoch = 1;
  EXPECT_EQ(DataPlaneOffset(b.geometry(), src), 0);
  EXPECT_EQ(DataPlaneOffset(b.geometry(), dst), kMiB);

  std::vector<char> a(4096, 'a'), z(4096, 'z'), back(4096);
  ASSERT_TRUE(
      b.WriteSync(0, DataPlaneOffset(b.geometry(), src), 4096, a.data())
          .ok());
  ASSERT_TRUE(
      b.WriteSync(0, DataPlaneOffset(b.geometry(), dst), 4096, z.data())
          .ok());
  ASSERT_TRUE(
      b.ReadSync(0, DataPlaneOffset(b.geometry(), src), 4096, back.data())
          .ok());
  EXPECT_EQ(back[0], 'a');
  ASSERT_TRUE(
      b.ReadSync(0, DataPlaneOffset(b.geometry(), dst), 4096, back.data())
          .ok());
  EXPECT_EQ(back[0], 'z');
}

TEST(FileBackendTest, PatternPopulateThenVerify) {
  const std::string dir = FreshDir("pattern");
  auto opened = FileBackend::Open(SmallFileOptions(dir, 3, 8 * kMiB));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& b = **opened;

  const std::vector<int64_t> sizes{2 * kMiB, kMiB + 64 * kKiB, 512 * kKiB};
  StripedVolumeManager vol =
      MakeVolumes(sizes, {{0, 1}, {2}, {0, 2}}, {8 * kMiB, 8 * kMiB, 8 * kMiB});
  PassthroughRouter router(&vol);

  ASSERT_TRUE(PopulateBackendPattern(&b, &router).ok());
  auto verified = VerifyBackendPattern(&b, &router);
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, 2 * kMiB + kMiB + 64 * kKiB + 512 * kKiB);

  // Corrupt one block under object 0's first extent: verification must
  // name the mismatch instead of passing.
  std::vector<char> zeros(4096, 0);
  ASSERT_TRUE(b.WriteSync(0, 0, 4096, zeros.data()).ok());
  auto broken = VerifyBackendPattern(&b, &router);
  ASSERT_FALSE(broken.ok());
  EXPECT_NE(broken.status().message().find("pattern mismatch"),
            std::string::npos)
      << broken.status().message();
}

// ------------------------------------------------- real-migration e2e

TEST(RealMigrationTest, MigrationCopiesEveryByteThroughFileBackend) {
  const std::string dir = FreshDir("migrate");
  FileBackendOptions o = SmallFileOptions(dir, 3, 32 * kMiB);
  o.dual_epoch = true;
  auto opened = FileBackend::Open(o);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{2 * kMiB, kMiB + 64 * kKiB, 512 * kKiB};

  // A small closed-loop OLTP foreground (with writes) runs while the
  // migration copies real bytes underneath it; sim writes are
  // location-independent pattern-keyed traffic, so the real bytes still
  // verify afterward.
  OltpSpec oltp;
  oltp.name = "tiny";
  QueryStep step;
  step.streams.push_back(
      {/*object=*/0, /*bytes=*/256 * kKiB, /*request_bytes=*/64 * kKiB,
       AccessPattern::kRandom, /*write_fraction=*/0.25});
  step.streams.push_back(
      {/*object=*/2, /*bytes=*/128 * kKiB, /*request_bytes=*/64 * kKiB,
       AccessPattern::kSequential, /*write_fraction=*/0.0});
  oltp.transaction.name = "txn";
  oltp.transaction.steps.push_back(step);
  oltp.terminals = 2;
  oltp.txn_overhead_s = 0.1;

  MigrateOptions mopts;
  mopts.chunk_bytes = kMiB;
  mopts.data_backend = opened->get();
  auto report = RunMigrationSim(sys.get(), sizes,
                                {{0}, {0, 1}, {1}}, {{1, 2}, {2}, {0, 2}},
                                64 * kKiB, /*olap=*/nullptr, &oltp,
                                /*oltp_duration_s=*/10.0, FaultPlan{}, mopts,
                                /*seed=*/42);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, MigrationOutcome::kCompleted);
  EXPECT_TRUE(report->readable.ok()) << report->readable.ToString();
  ASSERT_TRUE(report->real_backend);
  EXPECT_TRUE(report->real_readable.ok()) << report->real_readable.ToString();
  EXPECT_EQ(report->real_bytes_verified, 2 * kMiB + kMiB + 64 * kKiB +
                                             512 * kKiB);
  // Every chunk's bytes crossed the backend: at least one read and one
  // write per copied chunk, plus the populate/verify passes.
  const BackendCounters c = opened->get()->counters();
  EXPECT_GE(c.bytes_written, report->stats.bytes_written);
  EXPECT_GE(c.syncs, 1u);
}

TEST(RealMigrationTest, RealCopyFailureRollsBack) {
  // Undersized backend files: the first destination write past the file
  // end fails, and the executor must roll back rather than report success.
  const std::string dir = FreshDir("rollback");
  FileBackendOptions o = SmallFileOptions(dir, 3, kMiB);
  o.capacity_bytes[0] = 4 * kMiB;  // source fits; destination (t1) does not
  auto opened = FileBackend::Open(o);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{2 * kMiB};

  OltpSpec oltp;
  oltp.name = "tiny";
  QueryStep step;
  step.streams.push_back({/*object=*/0, /*bytes=*/64 * kKiB,
                          /*request_bytes=*/64 * kKiB,
                          AccessPattern::kSequential,
                          /*write_fraction=*/0.0});
  oltp.transaction.name = "txn";
  oltp.transaction.steps.push_back(step);
  oltp.terminals = 1;
  oltp.txn_overhead_s = 0.1;

  MigrateOptions mopts;
  mopts.chunk_bytes = kMiB;
  mopts.data_backend = opened->get();
  auto report = RunMigrationSim(sys.get(), sizes, {{0}}, {{1}}, 64 * kKiB,
                                /*olap=*/nullptr, &oltp,
                                /*oltp_duration_s=*/6.0, FaultPlan{}, mopts,
                                /*seed=*/42);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, MigrationOutcome::kRolledBack);
  // Rollback keeps the source authoritative: bytes still verify there.
  ASSERT_TRUE(report->real_backend);
  EXPECT_TRUE(report->real_readable.ok()) << report->real_readable.ToString();
}

}  // namespace
}  // namespace ldb
