# Kill→resume e2e driven through the CLI (see tests/CMakeLists.txt):
#   1. `--migrate --journal --journal-crash=after=6` must die mid-migration
#      with exit status 3 (the distinct "journal crash fired" code) and
#      leave a recoverable journal behind.
#   2. `--migrate --journal --resume` must recover that journal and run
#      the same migration to completion, recovering a non-empty prefix.
# Invoked as `cmake -DADVISOR=... -DPROBLEM=... -DWORKDIR=... -P`.

set(journal "${WORKDIR}/resume_e2e.wal")
file(REMOVE "${journal}")

execute_process(
  COMMAND "${ADVISOR}" "${PROBLEM}" --migrate --seeds=2
          "--journal=${journal}" --journal-crash=after=6
  RESULT_VARIABLE crash_rc
  OUTPUT_VARIABLE crash_out
  ERROR_VARIABLE crash_err)
if(NOT crash_rc EQUAL 3)
  message(FATAL_ERROR "crash run: expected exit 3, got ${crash_rc}\n"
                      "stdout:\n${crash_out}\nstderr:\n${crash_err}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "crash run left no journal at ${journal}")
endif()

execute_process(
  COMMAND "${ADVISOR}" "${PROBLEM}" --migrate --seeds=2
          "--journal=${journal}" --resume
  RESULT_VARIABLE resume_rc
  OUTPUT_VARIABLE resume_out
  ERROR_VARIABLE resume_err)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "resume run: expected exit 0, got ${resume_rc}\n"
                      "stdout:\n${resume_out}\nstderr:\n${resume_err}")
endif()
if(NOT resume_out MATCHES "Migration \\(SEE -> recommended\\): completed")
  message(FATAL_ERROR "resume run did not complete the migration:\n"
                      "${resume_out}")
endif()
if(NOT resume_out MATCHES "\\([1-9][0-9]* recovered\\)")
  message(FATAL_ERROR "resume run recovered no journal records:\n"
                      "${resume_out}")
endif()

file(REMOVE "${journal}")
