# Kill→resume e2e driven through the CLI (see tests/CMakeLists.txt):
#   1. `--migrate --journal --journal-crash=after=6` must die mid-migration
#      with exit status 3 (the distinct "journal crash fired" code) and
#      leave a recoverable journal behind.
#   2. `--migrate --journal --resume` must recover that journal and run
#      the same migration to completion, recovering a non-empty prefix.
# With BACKEND_DIR set, both runs add `--backend=file --backend-dir=...`
# so the migration moves real bytes, and the resume run must additionally
# report every object byte readable on the real files.
# Invoked as `cmake -DADVISOR=... -DPROBLEM=... -DWORKDIR=... -P`.

set(journal "${WORKDIR}/resume_e2e.wal")
set(backend_args "")
if(DEFINED BACKEND_DIR AND NOT BACKEND_DIR STREQUAL "")
  set(journal "${WORKDIR}/realio_resume_e2e.wal")
  set(backend_args --backend=file "--backend-dir=${BACKEND_DIR}")
  file(REMOVE_RECURSE "${BACKEND_DIR}")
endif()
file(REMOVE "${journal}")

execute_process(
  COMMAND "${ADVISOR}" "${PROBLEM}" --migrate --seeds=2
          "--journal=${journal}" --journal-crash=after=6 ${backend_args}
  RESULT_VARIABLE crash_rc
  OUTPUT_VARIABLE crash_out
  ERROR_VARIABLE crash_err)
if(NOT crash_rc EQUAL 3)
  message(FATAL_ERROR "crash run: expected exit 3, got ${crash_rc}\n"
                      "stdout:\n${crash_out}\nstderr:\n${crash_err}")
endif()
if(NOT EXISTS "${journal}")
  message(FATAL_ERROR "crash run left no journal at ${journal}")
endif()

execute_process(
  COMMAND "${ADVISOR}" "${PROBLEM}" --migrate --seeds=2
          "--journal=${journal}" --resume ${backend_args}
  RESULT_VARIABLE resume_rc
  OUTPUT_VARIABLE resume_out
  ERROR_VARIABLE resume_err)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "resume run: expected exit 0, got ${resume_rc}\n"
                      "stdout:\n${resume_out}\nstderr:\n${resume_err}")
endif()
if(NOT resume_out MATCHES "Migration \\(SEE -> recommended\\): completed")
  message(FATAL_ERROR "resume run did not complete the migration:\n"
                      "${resume_out}")
endif()
if(NOT resume_out MATCHES "\\([1-9][0-9]* recovered\\)")
  message(FATAL_ERROR "resume run recovered no journal records:\n"
                      "${resume_out}")
endif()
if(NOT backend_args STREQUAL "")
  if(NOT resume_out MATCHES
     "every object byte readable on real files: yes")
    message(FATAL_ERROR "resume run did not verify the real files:\n"
                        "${resume_out}")
  endif()
  file(REMOVE_RECURSE "${BACKEND_DIR}")
endif()

file(REMOVE "${journal}")
