// Property-based tests: invariants checked over parameter sweeps
// (gtest TEST_P). These complement the example-based unit tests by
// exercising each component across its input space.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/incremental.h"
#include "core/problem.h"
#include "core/replan.h"
#include "model/cost_model.h"
#include "model/layout.h"
#include "model/layout_model.h"
#include "model/target_model.h"
#include "monitor/online_analyzer.h"
#include "scenario/player.h"
#include "scenario/scenario.h"
#include "solver/projected_gradient.h"
#include "solver/simplex.h"
#include "storage/disk.h"
#include "storage/lvm.h"
#include "trace/analyzer.h"
#include "util/check.h"
#include "util/random.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

// ------------------------------------------------- simplex projection

class SimplexProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SimplexProperty, ProjectionInvariants) {
  const int dim = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(static_cast<size_t>(dim));
    for (auto& x : v) x = rng.Uniform(-3, 3);
    const std::vector<double> original = v;
    ProjectToSimplex(v.data(), v.size());

    // On the simplex.
    double sum = 0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // Idempotent.
    std::vector<double> again = v;
    ProjectToSimplex(again.data(), again.size());
    for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(again[i], v[i], 1e-9);

    // No sampled feasible point is closer to the original (projection
    // minimizes Euclidean distance).
    auto dist2 = [&](const std::vector<double>& p) {
      double d = 0;
      for (size_t i = 0; i < p.size(); ++i) {
        d += (p[i] - original[i]) * (p[i] - original[i]);
      }
      return d;
    };
    const double proj_dist = dist2(v);
    for (int s = 0; s < 20; ++s) {
      std::vector<double> q(static_cast<size_t>(dim));
      for (auto& x : q) x = rng.Uniform(0, 1);
      ProjectToSimplex(q.data(), q.size());  // a feasible point
      EXPECT_LE(proj_dist, dist2(q) + 1e-9);
    }

    // Order-preserving: if original[i] >= original[j], then v[i] >= v[j].
    for (size_t i = 0; i < v.size(); ++i) {
      for (size_t j = 0; j < v.size(); ++j) {
        if (original[i] >= original[j]) {
          EXPECT_GE(v[i], v[j] - 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, SimplexProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 8, 40),
                       ::testing::Values(uint64_t{1}, uint64_t{99})));

// ------------------------------------------------- LVM mapping

class LvmProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int>> {};

TEST_P(LvmProperty, EveryByteMapsExactlyOnceAndNothingOverlaps) {
  const int64_t stripe = std::get<0>(GetParam());
  const int num_targets = std::get<1>(GetParam());
  // Three objects with sizes that are not stripe multiples.
  const std::vector<int64_t> sizes{5 * stripe + 100, 2 * stripe,
                                   3 * stripe - 7};
  std::vector<std::vector<int>> placements;
  std::vector<int> all(static_cast<size_t>(num_targets));
  std::iota(all.begin(), all.end(), 0);
  placements.push_back(all);
  placements.push_back({0});
  placements.push_back(num_targets > 1 ? std::vector<int>{1, 0}
                                       : std::vector<int>{0});
  auto mgr = StripedVolumeManager::Create(
      sizes, placements,
      std::vector<int64_t>(static_cast<size_t>(num_targets), kGiB), stripe);
  ASSERT_TRUE(mgr.ok());

  // Collect every mapped byte range per target; verify disjointness and
  // total coverage.
  struct Range {
    int64_t lo, hi;
    int object;
  };
  std::vector<std::vector<Range>> per_target(
      static_cast<size_t>(num_targets));
  std::vector<TargetChunk> chunks;
  for (size_t i = 0; i < sizes.size(); ++i) {
    int64_t mapped = 0;
    // Map in odd-sized pieces to exercise splitting.
    const int64_t piece = stripe / 2 + 13;
    for (int64_t off = 0; off < sizes[i]; off += piece) {
      const int64_t len = std::min(piece, sizes[i] - off);
      chunks.clear();
      mgr->Map(static_cast<ObjectId>(i), off, len, &chunks);
      int64_t chunk_total = 0;
      for (const TargetChunk& c : chunks) {
        chunk_total += c.size;
        per_target[static_cast<size_t>(c.target)].push_back(
            Range{c.offset, c.offset + c.size, static_cast<int>(i)});
      }
      EXPECT_EQ(chunk_total, len);
      mapped += len;
    }
    EXPECT_EQ(mapped, sizes[i]);
  }
  for (auto& ranges : per_target) {
    std::sort(ranges.begin(), ranges.end(),
              [](const Range& a, const Range& b) { return a.lo < b.lo; });
    for (size_t r = 1; r < ranges.size(); ++r) {
      EXPECT_LE(ranges[r - 1].hi, ranges[r].lo)
          << "overlap between objects " << ranges[r - 1].object << " and "
          << ranges[r].object;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StripesAndTargets, LvmProperty,
    ::testing::Combine(::testing::Values(int64_t{64} * kKiB, kMiB),
                       ::testing::Values(1, 2, 4)));

// ------------------------------------------------- disk model

class DiskProperty : public ::testing::TestWithParam<DiskParams> {};

TEST_P(DiskProperty, ServiceTimeInvariants) {
  DiskModel disk(GetParam());
  Rng rng(3);
  const int64_t cap = disk.capacity_bytes();
  // Sequential run is never slower than random access at the same size.
  for (int64_t size : {int64_t{8} * kKiB, int64_t{64} * kKiB}) {
    DiskModel seq(GetParam());
    seq.ServiceTime({0, size, false});
    double seq_total = 0;
    for (int r = 1; r <= 16; ++r) seq_total += seq.ServiceTime({r * size, size, false});
    DiskModel rnd(GetParam());
    rnd.ServiceTime({0, size, false});
    double rnd_total = 0;
    for (int r = 0; r < 16; ++r) {
      const int64_t off =
          rng.UniformInt(int64_t{0}, (cap - size) / size) * size;
      rnd_total += rnd.ServiceTime({off, size, false});
    }
    EXPECT_LT(seq_total, rnd_total);
  }
  // All service times positive and bounded by a full stroke + rotation +
  // transfer.
  DiskModel d(GetParam());
  for (int t = 0; t < 200; ++t) {
    const int64_t size = 8 * kKiB;
    const int64_t off = rng.UniformInt(int64_t{0}, (cap - size) / size) * size;
    const double s = d.ServiceTime({off, size, rng.Bernoulli(0.3)});
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, GetParam().max_seek_s + 60.0 / GetParam().rpm + 0.1);
  }
  // Seek time is monotone in distance.
  double prev = -1;
  for (int64_t frac = 1; frac <= 16; ++frac) {
    const double t = d.SeekTime(cap / 16 * frac);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Drives, DiskProperty,
                         ::testing::Values(Scsi15kParams(),
                                           Nearline7200Params()));

// ------------------------------------------------- layout model (Fig. 7)

class LayoutModelProperty : public ::testing::TestWithParam<double> {};

TEST_P(LayoutModelProperty, TransformConservesRatesAndBoundsRuns) {
  const double q = GetParam();  // object run count
  LvmLayoutModel lm(64 * kKiB);
  WorkloadDesc w;
  w.read_rate = 100;
  w.read_size = 32 * kKiB;
  w.write_rate = 25;
  w.write_size = 8 * kKiB;
  w.run_count = q;
  for (int parts : {1, 2, 3, 4, 8}) {
    const double fraction = 1.0 / parts;
    double read_sum = 0, write_sum = 0;
    for (int p = 0; p < parts; ++p) {
      const PerTargetWorkload t = lm.Transform(w, fraction);
      read_sum += t.read_rate;
      write_sum += t.write_rate;
      // Per-target run count within [1, Q_i].
      EXPECT_GE(t.run_count, 1.0);
      EXPECT_LE(t.run_count, std::max(1.0, q) + 1e-9);
      // Request sizes unchanged by striping.
      EXPECT_DOUBLE_EQ(t.read_size, w.read_size);
      EXPECT_DOUBLE_EQ(t.write_size, w.write_size);
    }
    // Rates are conserved across the stripes.
    EXPECT_NEAR(read_sum, w.read_rate, 1e-9);
    EXPECT_NEAR(write_sum, w.write_rate, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RunCounts, LayoutModelProperty,
                         ::testing::Values(1.0, 2.0, 7.5, 64.0, 1000.0));

// ------------------------------------------------- solver on random problems

class SolverProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverProperty, NeverWorseThanSeedAndAlwaysFeasible) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.UniformInt(uint64_t{5}));
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  std::vector<double> rates(static_cast<size_t>(n));
  std::vector<double> speeds(static_cast<size_t>(m));
  for (auto& r : rates) r = rng.Uniform(1, 50);
  for (auto& s : speeds) s = rng.Uniform(0.5, 4);

  LayoutNlpProblem p;
  p.num_objects = n;
  p.num_targets = m;
  p.object_sizes.assign(static_cast<size_t>(n), kGiB);
  p.target_capacities.assign(static_cast<size_t>(m), 50 * kGiB);
  p.target_utilization = [rates, speeds](const Layout& l, int j) {
    double load = 0;
    for (int i = 0; i < l.num_objects(); ++i) {
      load += rates[static_cast<size_t>(i)] * l.At(i, j);
    }
    return load / speeds[static_cast<size_t>(j)];
  };

  // Random simplex seed.
  Layout seed(n, m);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) seed.Set(i, j, rng.Uniform(0, 1));
    ProjectToSimplex(seed.Row(i), static_cast<size_t>(m));
  }
  double seed_max = 0;
  for (int j = 0; j < m; ++j) {
    seed_max = std::max(seed_max, p.target_utilization(seed, j));
  }

  SolverOptions fast;
  fast.annealing_rounds = 3;
  fast.max_iterations_per_round = 25;
  ProjectedGradientSolver solver(fast);
  auto r = solver.Solve(p, seed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feasible);
  EXPECT_TRUE(r->layout.SatisfiesIntegrity(1e-6));
  EXPECT_LE(r->max_utilization, seed_max + 1e-6);
  // The theoretical optimum spreads total weighted load over total speed.
  const double ideal = std::accumulate(rates.begin(), rates.end(), 0.0) /
                       std::accumulate(speeds.begin(), speeds.end(), 0.0);
  EXPECT_GE(r->max_utilization, ideal - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverProperty,
                         ::testing::Range(uint64_t{10}, uint64_t{20}));

// ------------------------------------------------- analyzer round trip

struct SyntheticWorkload {
  double rate;        // requests/s
  int64_t size;       // request bytes
  int run_length;     // requests per sequential run
  double write_frac;  // fraction of writes
};

class AnalyzerRoundTrip
    : public ::testing::TestWithParam<SyntheticWorkload> {};

TEST_P(AnalyzerRoundTrip, RecoversKnownParameters) {
  const SyntheticWorkload& spec = GetParam();
  Rng rng(11);
  IoTrace trace;
  const int total = 3000;
  double now = 0;
  int64_t offset = 0;
  int in_run = 0;
  for (int r = 0; r < total; ++r) {
    if (in_run >= spec.run_length) {
      offset = rng.UniformInt(int64_t{0}, int64_t{10000}) * spec.size * 50;
      in_run = 0;
    }
    IoEvent ev;
    ev.submit_time = now;
    ev.complete_time = now + 0.002;
    ev.seq = static_cast<uint64_t>(r);
    ev.object = 0;
    ev.logical_offset = offset;
    ev.offset = offset;
    ev.size = spec.size;
    ev.is_write = rng.Bernoulli(spec.write_frac);
    trace.Add(ev);
    offset += spec.size;
    ++in_run;
    now += 1.0 / spec.rate;
  }
  TraceAnalyzer analyzer;
  auto ws = analyzer.Analyze(trace, 1);
  ASSERT_TRUE(ws.ok());
  const WorkloadDesc& w = (*ws)[0];
  EXPECT_NEAR(w.total_rate(), spec.rate, 0.05 * spec.rate);
  EXPECT_NEAR(w.run_count, spec.run_length,
              std::max(1.0, 0.1 * spec.run_length));
  EXPECT_NEAR(w.write_rate / std::max(1e-9, w.total_rate()),
              spec.write_frac, 0.05);
  EXPECT_DOUBLE_EQ(w.mean_size(), static_cast<double>(spec.size));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AnalyzerRoundTrip,
    ::testing::Values(SyntheticWorkload{200, 8 * kKiB, 1, 0.0},
                      SyntheticWorkload{500, 64 * kKiB, 25, 0.0},
                      SyntheticWorkload{100, 16 * kKiB, 100, 0.5},
                      SyntheticWorkload{50, 128 * kKiB, 8, 1.0}));

// ------------------------------------------------- layout regularity

class LayoutRegularityProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(LayoutRegularityProperty, SetRowRegularAlwaysRegularAndComplete) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const int m = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    Layout l(n, m);
    for (int i = 0; i < n; ++i) {
      std::vector<int> targets;
      for (int j = 0; j < m; ++j) {
        if (rng.Bernoulli(0.5)) targets.push_back(j);
      }
      if (targets.empty()) targets.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(m))));
      l.SetRowRegular(i, targets);
      EXPECT_EQ(l.TargetsOf(i), targets);
    }
    EXPECT_TRUE(l.IsRegular(1e-12));
    EXPECT_TRUE(l.SatisfiesIntegrity(1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutRegularityProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

// ---------------------------------------- incremental / failure re-layout

const CostModel& PropertyCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v =
              0.004 * (0.5 + 0.5 * s / (8 * kKiB)) * (1 + c) / std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("pc", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

// A random but always-feasible problem: every target alone could hold all
// the data, so failing one target never makes re-layout infeasible on
// capacity grounds.
LayoutProblem RandomProblem(Rng& rng, int n, int m) {
  LayoutProblem p;
  int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    p.object_sizes.push_back(
        static_cast<int64_t>(1 + rng.UniformInt(uint64_t{4})) * kGiB);
    total += p.object_sizes.back();
    p.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = rng.Uniform(1, 200);
    w.read_size = 8 * kKiB;
    if (rng.Bernoulli(0.3)) {
      w.write_rate = rng.Uniform(1, 50);
      w.write_size = 8 * kKiB;
    }
    w.run_count = rng.Bernoulli(0.5) ? 1.0 : 32.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    p.workloads.push_back(std::move(w));
  }
  for (int j = 0; j < m; ++j) {
    p.targets.push_back(AdvisorTarget{StrFormat("t%d", j), 2 * total,
                                      &PropertyCost(), 1, 64 * kKiB});
  }
  return p;
}

Layout RandomRegularLayout(Rng& rng, int n, int m) {
  Layout l(n, m);
  for (int i = 0; i < n; ++i) {
    std::vector<int> targets;
    for (int j = 0; j < m; ++j) {
      if (rng.Bernoulli(0.4)) targets.push_back(j);
    }
    if (targets.empty()) {
      targets.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(m))));
    }
    l.SetRowRegular(i, targets);
  }
  return l;
}

class ReplanProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReplanProperty, InvariantsHoldOverRandomFailures) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
    const LayoutProblem p = RandomProblem(rng, n, m);
    const Layout current = RandomRegularLayout(rng, n, m);

    TargetHealth health = TargetHealth::Healthy(m);
    const int victim = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(m)));
    if (rng.Bernoulli(0.7)) health.MarkFailed(victim);
    for (int j = 0; j < m; ++j) {
      if (!health.IsFailed(j) && rng.Bernoulli(0.25)) {
        health.Derate(j, rng.Uniform(0.3, 0.9));
      }
    }

    auto result = ReplanAfterFailure(p, current, health);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Layout& l = result->layout;

    // Structural invariants.
    EXPECT_TRUE(l.SatisfiesIntegrity(1e-9));
    EXPECT_TRUE(l.IsRegular(1e-9));
    EXPECT_TRUE(l.SatisfiesCapacity(p.object_sizes, p.capacities()));

    // Failed targets end with zero allocation.
    for (int j = 0; j < m; ++j) {
      if (!health.IsFailed(j)) continue;
      for (int i = 0; i < n; ++i) EXPECT_EQ(l.At(i, j), 0.0);
    }

    // Rows untouched by the failure never move.
    for (int i = 0; i < n; ++i) {
      bool movable = false;
      for (int j = 0; j < m; ++j) {
        if (current.At(i, j) > 1e-9 &&
            (health.IsFailed(j) || health.derate[j] < 1.0)) {
          movable = true;
        }
      }
      if (movable) continue;
      for (int j = 0; j < m; ++j) EXPECT_EQ(l.At(i, j), current.At(i, j));
    }

    // Migration accounting matches the layout delta.
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < m; ++j) {
        const double expected =
            std::max(0.0, l.At(i, j) - current.At(i, j)) *
            static_cast<double>(p.object_sizes[i]);
        EXPECT_NEAR(result->migration.moved_in_bytes[i][j], expected, 1.0);
        total += expected;
      }
    }
    EXPECT_NEAR(result->migration.total_bytes, total, 1.0);

    if (health.AllHealthy()) {
      EXPECT_FALSE(result->replanned);
      EXPECT_EQ(result->migration.total_bytes, 0.0);
      EXPECT_EQ(result->migration.objects_moved, 0);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < m; ++j) EXPECT_EQ(l.At(i, j), current.At(i, j));
      }
    }
  }
}

TEST_P(ReplanProperty, RespectsAllowedTargetConstraints) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{4}));
    const int m = 3 + static_cast<int>(rng.UniformInt(uint64_t{2}));
    LayoutProblem p = RandomProblem(rng, n, m);
    const Layout current = RandomRegularLayout(rng, n, m);
    // Allow each object its current targets plus one random extra, so the
    // constraints are satisfiable before and (usually) after failure.
    p.constraints.allowed_targets.assign(static_cast<size_t>(n), {});
    for (int i = 0; i < n; ++i) {
      std::vector<int> allowed = current.TargetsOf(i);
      const int extra = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(m)));
      if (std::find(allowed.begin(), allowed.end(), extra) == allowed.end()) {
        allowed.push_back(extra);
      }
      std::sort(allowed.begin(), allowed.end());
      p.constraints.allowed_targets[static_cast<size_t>(i)] = allowed;
    }

    TargetHealth health = TargetHealth::Healthy(m);
    health.MarkFailed(static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(m))));

    auto result = ReplanAfterFailure(p, current, health);
    if (!result.ok()) {
      // Legitimate when some object's allowed set has no survivor.
      EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
      continue;
    }
    EXPECT_TRUE(p.constraints.SatisfiedBy(result->layout));
    for (int i = 0; i < n; ++i) {
      for (int j : result->layout.TargetsOf(i)) {
        EXPECT_FALSE(health.IsFailed(j));
      }
    }
  }
}

class IncrementalProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalProperty, FrozenRowsNeverMoveAndNewRowsArePlaced) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
    const LayoutProblem p = RandomProblem(rng, n, m);
    Layout current = RandomRegularLayout(rng, n, m);
    // Blank a random non-empty subset of rows: these are the "new" objects.
    std::vector<bool> is_new(static_cast<size_t>(n), false);
    for (int i = 0; i < n; ++i) is_new[i] = rng.Bernoulli(0.4);
    is_new[static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(n)))] =
        true;
    for (int i = 0; i < n; ++i) {
      if (!is_new[i]) continue;
      for (int j = 0; j < m; ++j) current.Set(i, j, 0.0);
    }

    auto result = PlaceIncrementally(p, current);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->SatisfiesIntegrity(1e-9));
    EXPECT_TRUE(result->IsRegular(1e-9));
    EXPECT_TRUE(result->SatisfiesCapacity(p.object_sizes, p.capacities()));
    for (int i = 0; i < n; ++i) {
      if (is_new[i]) {
        EXPECT_FALSE(result->TargetsOf(i).empty());
      } else {
        for (int j = 0; j < m; ++j) {
          EXPECT_EQ(result->At(i, j), current.At(i, j));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplanProperty,
                         ::testing::Values(uint64_t{11}, uint64_t{12},
                                           uint64_t{13}));
INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalProperty,
                         ::testing::Values(uint64_t{21}, uint64_t{22},
                                           uint64_t{23}));

// ------------------------------------------- analytic utilization gradient

/// Synthetic multi-point cost grid: interior cells and clamped tails on
/// every axis, so the gradient sweep crosses real interpolation kinks.
CostModel MakeGradientCostModel() {
  std::vector<double> sizes{static_cast<double>(8 * kKiB),
                            static_cast<double>(64 * kKiB),
                            static_cast<double>(512 * kKiB)};
  std::vector<double> runs{1, 8, 64};
  std::vector<double> chis{0, 0.5, 1, 2, 4};
  std::vector<double> reads, writes;
  for (double s : sizes) {
    for (double q : runs) {
      for (double c : chis) {
        const double v =
            0.004 * (s / (8 * kKiB)) * (1.0 + 0.7 * c) / std::sqrt(q);
        reads.push_back(v);
        writes.push_back(1.4 * v);
      }
    }
  }
  auto m = CostModel::Create("grad-grid", sizes, runs, chis, reads, writes);
  LDB_CHECK(m.ok());
  return std::move(m).value();
}

struct GradientInstance {
  std::unique_ptr<CostModel> cost;
  std::unique_ptr<TargetModel> model;
  std::unique_ptr<WorkloadSet> workloads;
  LayoutNlpProblem nlp;
};

GradientInstance MakeGradientInstance(int n, int m, Rng* rng) {
  GradientInstance gi;
  gi.cost = std::make_unique<CostModel>(MakeGradientCostModel());
  gi.workloads = std::make_unique<WorkloadSet>(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = (*gi.workloads)[static_cast<size_t>(i)];
    w.read_rate = rng->Uniform(1, 150);
    w.read_size = 64 * kKiB;
    w.write_rate = rng->Uniform(0, 25);
    w.write_size = 8 * kKiB;
    w.run_count = rng->Uniform(1, 60);
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k) {
      w.overlap[static_cast<size_t>(k)] =
          k == i ? rng->Uniform(0, 0.5) : rng->Uniform(0, 1);
    }
  }
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m), TargetModelInfo{gi.cost.get(), 1, 64 * kKiB});
  gi.model = std::make_unique<TargetModel>(infos, LvmLayoutModel(64 * kKiB));
  gi.nlp.num_objects = n;
  gi.nlp.num_targets = m;
  gi.nlp.object_sizes.assign(static_cast<size_t>(n), kGiB);
  gi.nlp.target_capacities.assign(static_cast<size_t>(m), 50 * kGiB);
  const TargetModel* model = gi.model.get();
  const WorkloadSet* ws = gi.workloads.get();
  gi.nlp.target_utilization = [model, ws](const Layout& l, int j) {
    return model->TargetUtilization(*ws, l, j);
  };
  gi.nlp.make_column_eval = [model, ws](int j) {
    return model->MakeColumnEvaluator(*ws, j);
  };
  return gi;
}

class GradientProperty : public ::testing::TestWithParam<uint64_t> {};

/// Subgradient containment sweep shared by the dense and sparse overlap
/// representations: every analytic Jacobian entry must lie inside the
/// interval spanned by the one-sided difference slopes.
void CheckGradientContainment(const GradientInstance& gi, Layout& layout,
                              int n, int m) {
  std::vector<double> grad(static_cast<size_t>(n) * static_cast<size_t>(m));
  ASSERT_TRUE(gi.nlp.Gradient(layout, grad.data()));

  const double h = 1e-6;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < n; ++i) {
      const double g =
          grad[static_cast<size_t>(i) * static_cast<size_t>(m) +
               static_cast<size_t>(j)];
      const double v = layout.At(i, j);
      const double mu0 = gi.nlp.target_utilization(layout, j);
      double d_plus = 0.0, d_minus = 0.0;
      bool have_minus = false;
      {
        layout.Set(i, j, v + h);
        d_plus = (gi.nlp.target_utilization(layout, j) - mu0) / h;
        layout.Set(i, j, v);
      }
      if (v >= h) {
        layout.Set(i, j, v - h);
        d_minus = (mu0 - gi.nlp.target_utilization(layout, j)) / h;
        layout.Set(i, j, v);
        have_minus = true;
      }
      const double lo = have_minus ? std::min(d_plus, d_minus) : d_plus;
      const double hi = have_minus ? std::max(d_plus, d_minus) : d_plus;
      const double scale =
          std::max({1.0, std::fabs(lo), std::fabs(hi), std::fabs(g)});
      EXPECT_GE(g, lo - 1e-3 * scale)
          << "i=" << i << " j=" << j << " v=" << v << " d+=" << d_plus
          << " d-=" << (have_minus ? d_minus : d_plus);
      EXPECT_LE(g, hi + 1e-3 * scale)
          << "i=" << i << " j=" << j << " v=" << v << " d+=" << d_plus
          << " d-=" << (have_minus ? d_minus : d_plus);
    }
  }
}

/// Random simplex layout with occasional exact zeros (absent-object limits).
Layout MakeGradientLayout(int n, int m, Rng* rng) {
  Layout layout(n, m);
  for (int i = 0; i < n; ++i) {
    double* row = layout.Row(i);
    for (int j = 0; j < m; ++j) row[j] = rng->Uniform(0, 1);
    ProjectToSimplex(row, static_cast<size_t>(m));
    if (rng->Uniform() < 0.5) {
      row[rng->UniformInt(static_cast<uint64_t>(m - 1))] = 0.0;
    }
  }
  return layout;
}

TEST_P(GradientProperty, AnalyticMatchesDirectionalDifferences) {
  // The analytic Jacobian entry ∂µ_j/∂L_ij must be a valid (sub)gradient of
  // the piecewise-smooth utilization: at smooth points it matches the
  // central difference; at kinks (interpolation cell boundaries, Transform
  // branch switches, the run ≥ 1 clamp) it must lie inside the interval
  // spanned by the one-sided slopes.
  Rng rng(GetParam());
  const int n = 4 + static_cast<int>(rng.UniformInt(uint64_t{5}));
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  GradientInstance gi = MakeGradientInstance(n, m, &rng);
  Layout layout = MakeGradientLayout(n, m, &rng);
  CheckGradientContainment(gi, layout, n, m);
}

TEST_P(GradientProperty, SparseAnalyticMatchesDirectionalDifferences) {
  // Same containment property through the sparse-overlap evaluation path:
  // off-diagonals are thinned to genuine zeros, rows are converted to CSR
  // (dropping the dense form), and the analytic Jacobian must still bracket
  // the one-sided slopes.
  Rng rng(GetParam());
  const int n = 4 + static_cast<int>(rng.UniformInt(uint64_t{5}));
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  GradientInstance gi = MakeGradientInstance(n, m, &rng);
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = (*gi.workloads)[static_cast<size_t>(i)];
    for (int k = 0; k < n; ++k) {
      if (k != i && rng.Uniform() < 0.6) w.overlap[static_cast<size_t>(k)] = 0.0;
    }
  }
  SparsifyOverlap(gi.workloads.get());
  ASSERT_TRUE((*gi.workloads)[0].has_sparse_overlap());
  ASSERT_TRUE((*gi.workloads)[0].overlap.empty());
  Layout layout = MakeGradientLayout(n, m, &rng);
  CheckGradientContainment(gi, layout, n, m);
}

TEST_P(GradientProperty, BatchedValueMatchesScalarUtilization) {
  // The SoA-batched Evaluate must price µ_j within FP-reassociation noise
  // of the scalar TargetUtilization — same statistics, different summation
  // order.
  Rng rng(GetParam() + 1000);
  const int n = 4 + static_cast<int>(rng.UniformInt(uint64_t{6}));
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  GradientInstance gi = MakeGradientInstance(n, m, &rng);

  for (int trial = 0; trial < 4; ++trial) {
    Layout layout(n, m);
    for (int i = 0; i < n; ++i) {
      double* row = layout.Row(i);
      for (int j = 0; j < m; ++j) row[j] = rng.Uniform(0, 1);
      ProjectToSimplex(row, static_cast<size_t>(m));
      if (rng.Uniform() < 0.5) {
        row[rng.UniformInt(static_cast<uint64_t>(m - 1))] = 0.0;
      }
    }
    for (int j = 0; j < m; ++j) {
      auto ctx = gi.nlp.make_column_eval(j);
      ASSERT_TRUE(ctx != nullptr && ctx->SupportsGradient());
      const double batched = ctx->Evaluate(layout);
      const double scalar = gi.nlp.target_utilization(layout, j);
      EXPECT_NEAR(batched, scalar, 1e-9 * std::max(1.0, std::fabs(scalar)))
          << "j=" << j << " trial=" << trial;
      EXPECT_GT(ctx->interp_queries(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientProperty,
                         ::testing::Range(uint64_t{40}, uint64_t{48}));

// -------------------------------------------- scenario churn snapshots

// Under tenant churn (arrivals mid-run, departures that drive rows to
// zero) the streaming analyzer's sparse CSR snapshots must stay valid
// WorkloadSets at every drift-check boundary — the autopilot hands these
// snapshots straight to the drift detector and the re-advise solver.
class ScenarioChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioChurnProperty, SnapshotsStayValidAcrossChurn) {
  constexpr int kObjects = 8;
  static const ExperimentRig* rig = [] {
    Catalog catalog;
    for (int i = 0; i < kObjects; ++i) {
      catalog.Add({"c" + std::to_string(i), ObjectKind::kTable,
                   int64_t{16} * 1024 * 1024});
    }
    auto r = ExperimentRig::Create(std::move(catalog), {{"d0"}, {"d1"}},
                                   1.0, 5);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();

  auto spec = ParseScenarioSpec(
      "duration=10;"
      "tenant=early,objects=0:4,rate=25,write=0.2,depart=5;"
      "tenant=late,objects=4:8,rate=25,arrive=3;"
      "graph=early,communities=2,coaccess=0.6,rewire=2,burst=2");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  spec->seed = GetParam();

  auto segments = BuildTimeline(*spec, kObjects);
  auto problem = rig->MakeProblem(segments.front().workloads);
  ASSERT_TRUE(problem.ok()) << problem.status().ToString();
  const Layout see = Layout::StripeEverythingEverywhere(kObjects, 2);
  auto placements = LayoutToPlacements(*problem, see);
  ASSERT_TRUE(placements.ok());
  auto system = rig->MakeSystem();
  auto volumes = StripedVolumeManager::Create(
      problem->object_sizes, std::move(placements).value(),
      system->capacities(), problem->lvm_stripe_bytes);
  ASSERT_TRUE(volumes.ok());
  PassthroughRouter router(&volumes.value());

  OnlineAnalyzerOptions aopts;
  aopts.half_life_s = 1.0;  // fast decay so departures actually zero rows
  aopts.sparse_overlap = true;
  OnlineAnalyzer analyzer(kObjects, aopts);

  ScenarioPlayer player(system.get(), &router, *spec);
  player.set_logical_observer(
      [&](const IoEvent& ev) { analyzer.Observe(ev); });

  // Snapshot at every simulated drift-check boundary, the way the
  // autopilot's periodic tick does.
  int checks = 0;
  double early_rate_at_depart = -1.0;
  double early_rate_at_end = -1.0;
  for (double t = 0.5; t < spec->duration_s + 1e-9; t += 0.5) {
    system->queue().ScheduleAt(t, [&, t]() {
      const WorkloadSet snap = analyzer.Snapshot();
      ++checks;
      EXPECT_TRUE(ValidateWorkloadSet(snap).ok()) << "t=" << t;
      double early = 0.0;
      for (int i = 0; i < 4; ++i) {
        early += snap[static_cast<size_t>(i)].read_rate +
                 snap[static_cast<size_t>(i)].write_rate;
      }
      if (t == 5.0) early_rate_at_depart = early;
      if (t == 10.0) early_rate_at_end = early;
    });
  }
  auto run = player.Play();
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(checks, 20);
  EXPECT_GT(analyzer.events(), 0u);

  // The departed tenant's rows decayed through the sparse path: five
  // half-lives after departure its rates are a small fraction of what
  // they were when it left.
  ASSERT_GE(early_rate_at_depart, 0.0);
  ASSERT_GE(early_rate_at_end, 0.0);
  EXPECT_GT(early_rate_at_depart, 0.0);
  EXPECT_LT(early_rate_at_end, 0.2 * early_rate_at_depart);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioChurnProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace ldb
