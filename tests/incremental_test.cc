#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/incremental.h"
#include "core/problem.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

const CostModel& TestCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v =
              0.004 * (0.5 + 0.5 * s / (8 * kKiB)) * (1 + c) / std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("tc", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

LayoutProblem MakeProblem(int n, int m, int64_t capacity = 100 * kGiB) {
  LayoutProblem p;
  for (int i = 0; i < n; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    p.object_sizes.push_back(kGiB);
    p.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = 100.0 / (i + 1);
    w.read_size = 8 * kKiB;
    w.run_count = 1.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    p.workloads.push_back(std::move(w));
  }
  for (int j = 0; j < m; ++j) {
    p.targets.push_back(AdvisorTarget{StrFormat("t%d", j), capacity,
                                      &TestCost(), 1, 64 * kKiB});
  }
  return p;
}

TEST(IncrementalTest, PlacesNewObjectsWithoutMovingFrozenOnes) {
  LayoutProblem p = MakeProblem(4, 2);
  Layout current(4, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  // Objects 2 and 3 are new (all-zero rows).
  auto result = PlaceIncrementally(p, current);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TargetsOf(0), (std::vector<int>{0}));
  EXPECT_EQ(result->TargetsOf(1), (std::vector<int>{1}));
  EXPECT_FALSE(result->TargetsOf(2).empty());
  EXPECT_FALSE(result->TargetsOf(3).empty());
  EXPECT_TRUE(result->IsRegular(1e-9));
  EXPECT_TRUE(result->IsValid(p.object_sizes, p.capacities()));
}

TEST(IncrementalTest, NewHotObjectGoesToLeastLoadedTarget) {
  LayoutProblem p = MakeProblem(3, 2);
  // Object 0 (hottest) frozen on target 0; object 2 is new and hot.
  p.workloads[2].read_rate = 90;
  Layout current(3, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  auto result = PlaceIncrementally(p, current);
  ASSERT_TRUE(result.ok());
  // Target 1 carries only obj1 (50 req/s) vs target 0's 100 req/s, so the
  // new hot object should prefer target 1 (or spread, but favoring 1).
  EXPECT_GT(result->At(2, 1), 0.0);
}

TEST(IncrementalTest, NoNewObjectsIsANoOp) {
  LayoutProblem p = MakeProblem(2, 2);
  Layout current(2, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  auto result = PlaceIncrementally(p, current);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, current);
}

TEST(IncrementalTest, RejectsPartiallyPlacedRows) {
  LayoutProblem p = MakeProblem(2, 2);
  Layout current(2, 2);
  current.Set(0, 0, 0.5);  // row sums to 0.5
  auto result = PlaceIncrementally(p, current);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, FailsWhenNewObjectFitsNowhere) {
  // Total capacity suffices (Validate passes) but no regular candidate
  // fits the new 3.5 GiB object: target 0 has 1 GiB free, target 1 has
  // 3 GiB free, and an even 2-way stripe needs 1.75 GiB on each.
  LayoutProblem p = MakeProblem(3, 2);
  p.object_sizes[2] = 3 * kGiB + 512 * kMiB;
  p.targets[0].capacity_bytes = 2 * kGiB;
  p.targets[1].capacity_bytes = 4 * kGiB;
  Layout current(3, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  auto result = PlaceIncrementally(p, current);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(IncrementalTest, DetectsFrozenOverflowAfterGrowth) {
  LayoutProblem p = MakeProblem(2, 2, /*capacity=*/2 * kGiB);
  Layout current(2, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  p.object_sizes[0] = 3 * kGiB;  // grew past its target
  auto result = PlaceIncrementally(p, current);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCapacityExceeded);
}

TEST(IncrementalTest, RespectsPlacementConstraints) {
  LayoutProblem p = MakeProblem(3, 3);
  p.constraints.allowed_targets = {{}, {}, {2}};
  Layout current(3, 3);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  auto result = PlaceIncrementally(p, current);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TargetsOf(2), (std::vector<int>{2}));
}

TEST(IncrementalTest, MatchesFullAdvisorQualityApproximately) {
  // Incremental placement of half the objects onto an advisor-placed base
  // should stay within a reasonable factor of the full advisor's quality.
  LayoutProblem base = MakeProblem(8, 4);
  LayoutProblem first_half = base;
  // Zero the workloads of the not-yet-created objects for the first run.
  for (int i = 4; i < 8; ++i) {
    first_half.workloads[static_cast<size_t>(i)] = WorkloadDesc{};
    first_half.workloads[static_cast<size_t>(i)].overlap.assign(8, 0.0);
    first_half.workloads[static_cast<size_t>(i)].read_size = 0;
  }
  LayoutAdvisor advisor;
  auto first = advisor.Recommend(first_half);
  ASSERT_TRUE(first.ok());
  Layout current = first->final_layout;
  // "Create" objects 4..7: clear their rows, then place incrementally
  // with the real workloads.
  for (int i = 4; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) current.Set(i, j, 0.0);
  }
  auto incremental = PlaceIncrementally(base, current);
  ASSERT_TRUE(incremental.ok());
  auto full = advisor.Recommend(base);
  ASSERT_TRUE(full.ok());
  TargetModel model = base.MakeTargetModel();
  EXPECT_LE(model.MaxUtilization(base.workloads, *incremental),
            1.5 * model.MaxUtilization(base.workloads, full->final_layout));
}

}  // namespace
}  // namespace ldb
