#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "model/calibration.h"
#include "model/cost_model.h"
#include "model/layout.h"
#include "model/layout_model.h"
#include "model/target_model.h"
#include "model/workload.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/units.h"

namespace ldb {
namespace {

// ---------------------------------------------------------------- Layout

TEST(LayoutTest, SeeIsValidAndRegular) {
  Layout l = Layout::StripeEverythingEverywhere(3, 4);
  EXPECT_TRUE(l.SatisfiesIntegrity());
  EXPECT_TRUE(l.IsRegular());
  EXPECT_DOUBLE_EQ(l.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(l.RowSum(2), 1.0);
}

TEST(LayoutTest, IntegrityDetectsBadRows) {
  Layout l(2, 2);
  l.Set(0, 0, 0.5);
  l.Set(0, 1, 0.5);
  l.Set(1, 0, 0.7);  // row sums to 0.7
  EXPECT_FALSE(l.SatisfiesIntegrity());
  l.Set(1, 1, 0.3);
  EXPECT_TRUE(l.SatisfiesIntegrity());
}

TEST(LayoutTest, CapacityConstraint) {
  Layout l(1, 2);
  l.Set(0, 0, 1.0);
  std::vector<int64_t> sizes{10 * kGiB};
  EXPECT_FALSE(l.SatisfiesCapacity(sizes, {5 * kGiB, 50 * kGiB}));
  EXPECT_TRUE(l.SatisfiesCapacity(sizes, {10 * kGiB, kGiB}));
  l.Set(0, 0, 0.5);
  l.Set(0, 1, 0.5);
  EXPECT_TRUE(l.SatisfiesCapacity(sizes, {5 * kGiB, 5 * kGiB}));
}

TEST(LayoutTest, RegularityDefinition) {
  Layout l(2, 3);
  l.SetRowRegular(0, {0, 2});
  l.SetRowRegular(1, {1});
  EXPECT_TRUE(l.IsRegular());
  EXPECT_EQ(l.TargetsOf(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(l.TargetsOf(1), (std::vector<int>{1}));
  // Non-regular: 47/35/18 split (the paper's Section 4.3 example).
  l.Set(0, 0, 0.47);
  l.Set(0, 1, 0.35);
  l.Set(0, 2, 0.18);
  EXPECT_FALSE(l.IsRegular());
  EXPECT_TRUE(l.SatisfiesIntegrity());
}

TEST(LayoutTest, BytesPerTargetRoundsUp) {
  Layout l(2, 2);
  l.SetRowRegular(0, {0, 1});
  l.SetRowRegular(1, {0});
  const auto bytes = l.BytesPerTarget({kGiB, kMiB});
  EXPECT_EQ(bytes[0], kGiB / 2 + kMiB);
  EXPECT_EQ(bytes[1], kGiB / 2);
}

TEST(LayoutTest, ToStringShowsPercentages) {
  Layout l(1, 2);
  l.SetRowRegular(0, {1});
  const std::string s = l.ToString({"LINEITEM"});
  EXPECT_NE(s.find("LINEITEM"), std::string::npos);
  EXPECT_NE(s.find("100%"), std::string::npos);
}

// ---------------------------------------------------------------- Workload

TEST(WorkloadTest, MeanSizeIsRateWeighted) {
  WorkloadDesc w;
  w.read_rate = 30;
  w.read_size = 8 * kKiB;
  w.write_rate = 10;
  w.write_size = 64 * kKiB;
  EXPECT_DOUBLE_EQ(w.total_rate(), 40);
  EXPECT_DOUBLE_EQ(w.mean_size(), (30.0 * 8 * kKiB + 10.0 * 64 * kKiB) / 40);
}

TEST(WorkloadTest, ZeroRateWorkloadHasZeroMeanSize) {
  WorkloadDesc w;
  EXPECT_DOUBLE_EQ(w.mean_size(), 0.0);
}

TEST(WorkloadTest, Validation) {
  WorkloadDesc w;
  w.overlap.assign(3, 0.5);
  EXPECT_TRUE(IsValidWorkload(w, 3));
  EXPECT_FALSE(IsValidWorkload(w, 4));  // wrong overlap size
  w.run_count = 0.5;
  EXPECT_FALSE(IsValidWorkload(w, 3));
  w.run_count = 1.0;
  w.read_rate = 5.0;  // rate without size
  EXPECT_FALSE(IsValidWorkload(w, 3));
  w.read_size = 8 * kKiB;
  EXPECT_TRUE(IsValidWorkload(w, 3));
  w.overlap[1] = 1.5;
  EXPECT_FALSE(IsValidWorkload(w, 3));
}

TEST(WorkloadTest, SparseValidation) {
  WorkloadDesc w;  // sparse-only row for object 1 of 3
  w.overlap_index = {0, 1};
  w.overlap_value = {0.25, 2.0};  // diagonal may exceed 1
  EXPECT_TRUE(IsValidWorkload(w, 3, 1));

  WorkloadDesc bad = w;
  bad.overlap_index = {1, 0};  // unsorted
  bad.overlap_value = {2.0, 0.25};
  EXPECT_FALSE(IsValidWorkload(bad, 3, 1));

  bad = w;
  bad.overlap_index = {0, 1, 5};  // out of range
  bad.overlap_value = {0.25, 2.0, 0.1};
  EXPECT_FALSE(IsValidWorkload(bad, 3, 1));

  bad = w;
  bad.overlap_index = {0, 2};  // diagonal (1) missing
  bad.overlap_value = {0.25, 0.5};
  EXPECT_FALSE(IsValidWorkload(bad, 3, 1));

  bad = w;
  bad.overlap_value = {1.5, 2.0};  // off-diagonal fraction > 1
  EXPECT_FALSE(IsValidWorkload(bad, 3, 1));

  // When both representations are present they must agree entrywise.
  WorkloadDesc both = w;
  both.overlap = {0.25, 2.0, 0.0};
  EXPECT_TRUE(IsValidWorkload(both, 3, 1));
  both.overlap[0] = 0.3;
  EXPECT_FALSE(IsValidWorkload(both, 3, 1));
}

TEST(WorkloadTest, ValidateWorkloadSetPinpointsClause) {
  WorkloadSet ws(3);
  for (size_t i = 0; i < 3; ++i) ws[i].overlap.assign(3, 0.1);
  EXPECT_TRUE(ValidateWorkloadSet(ws).ok());

  ws[1].overlap_index = {2, 0};  // unsorted sparse row on workload 1
  ws[1].overlap_value = {0.1, 0.1};
  const Status unsorted = ValidateWorkloadSet(ws);
  ASSERT_FALSE(unsorted.ok());
  EXPECT_NE(unsorted.message().find("workload 1"), std::string::npos)
      << unsorted.message();
  EXPECT_NE(unsorted.message().find("not sorted"), std::string::npos)
      << unsorted.message();

  ws[1].overlap_index.clear();
  ws[1].overlap_value = {0.1};  // values without indices
  const Status orphan = ValidateWorkloadSet(ws);
  ASSERT_FALSE(orphan.ok());
  EXPECT_NE(orphan.message().find("without overlap_index"),
            std::string::npos)
      << orphan.message();

  ws[1].overlap_value.clear();
  ws[2].overlap.clear();  // no overlap row at all
  const Status missing = ValidateWorkloadSet(ws);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.message().find("workload 2"), std::string::npos)
      << missing.message();
  EXPECT_NE(missing.message().find("no overlap row"), std::string::npos)
      << missing.message();
}

TEST(WorkloadTest, SparsifyOverlapThresholdZeroKeepsEveryNonzero) {
  WorkloadSet ws(4);
  for (size_t i = 0; i < 4; ++i) {
    ws[i].overlap.assign(4, 0.0);
    ws[i].overlap[i] = 0.5 * static_cast<double>(i);
  }
  ws[0].overlap[2] = 0.3;
  ws[0].overlap[3] = 0.7;
  SparsifyOverlap(&ws);
  // Row 0: diagonal + both nonzeros, sorted; dense form dropped.
  EXPECT_TRUE(ws[0].overlap.empty());
  ASSERT_EQ(ws[0].overlap_index, (std::vector<int32_t>{0, 2, 3}));
  EXPECT_EQ(ws[0].overlap_value, (std::vector<double>{0.0, 0.3, 0.7}));
  // Row 1: zero off-diagonals leave only the diagonal entry.
  ASSERT_EQ(ws[1].overlap_index, (std::vector<int32_t>{1}));
  EXPECT_EQ(ws[1].overlap_value, (std::vector<double>{0.5}));
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(IsValidWorkload(ws[i], 4, i));
}

TEST(WorkloadTest, SparsifyOverlapTopKAndThreshold) {
  WorkloadSet ws(5);
  ws[0].overlap = {2.0, 0.4, 0.1, 0.3, 0.2};
  for (size_t i = 1; i < 5; ++i) ws[i].overlap.assign(5, 0.0);

  SparsifyOptions options;
  options.threshold = 0.15;  // drops the 0.1 entry
  options.top_k = 2;         // keeps the two largest of the rest
  options.keep_dense = true;
  SparsifyOverlap(&ws, options);
  ASSERT_EQ(ws[0].overlap_index, (std::vector<int32_t>{0, 1, 3}));
  EXPECT_EQ(ws[0].overlap_value, (std::vector<double>{2.0, 0.4, 0.3}));
  EXPECT_FALSE(ws[0].overlap.empty());  // keep_dense retains the row
  EXPECT_TRUE(IsValidWorkload(ws[0], 5, 0));
}

TEST(WorkloadTest, OverlapWithReadsEitherRepresentation) {
  WorkloadDesc dense;
  dense.overlap = {0.0, 0.4, 0.0, 0.2};
  EXPECT_DOUBLE_EQ(dense.overlap_with(1), 0.4);
  EXPECT_DOUBLE_EQ(dense.overlap_with(2), 0.0);

  WorkloadDesc sparse;
  sparse.overlap_index = {1, 3};
  sparse.overlap_value = {0.4, 0.2};
  EXPECT_DOUBLE_EQ(sparse.overlap_with(1), 0.4);
  EXPECT_DOUBLE_EQ(sparse.overlap_with(2), 0.0);
  EXPECT_DOUBLE_EQ(sparse.overlap_with(3), 0.2);
}

// ----------------------------------------------------------- LayoutModel

TEST(LvmLayoutModelTest, RatesScaleWithFraction) {
  LvmLayoutModel lm(kMiB);
  WorkloadDesc w;
  w.read_rate = 100;
  w.read_size = 8 * kKiB;
  w.write_rate = 20;
  w.write_size = 8 * kKiB;
  w.run_count = 1;
  const PerTargetWorkload t = lm.Transform(w, 0.25);
  EXPECT_DOUBLE_EQ(t.read_rate, 25);
  EXPECT_DOUBLE_EQ(t.write_rate, 5);
  EXPECT_DOUBLE_EQ(t.read_size, 8 * kKiB);
}

TEST(LvmLayoutModelTest, ZeroFractionMeansAbsent) {
  LvmLayoutModel lm(kMiB);
  WorkloadDesc w;
  w.read_rate = 100;
  w.read_size = 8 * kKiB;
  const PerTargetWorkload t = lm.Transform(w, 0.0);
  EXPECT_DOUBLE_EQ(t.total_rate(), 0.0);
}

TEST(LvmLayoutModelTest, ShortRunsSurviveStriping) {
  // Q*B = 4*8KiB = 32KiB < 1MiB stripe: the run fits a stripe.
  LvmLayoutModel lm(kMiB);
  WorkloadDesc w;
  w.read_rate = 10;
  w.read_size = 8 * kKiB;
  w.run_count = 4;
  EXPECT_DOUBLE_EQ(lm.Transform(w, 0.5).run_count, 4);
}

TEST(LvmLayoutModelTest, LongRunsScaleWithFraction) {
  // Q*B = 1024*64KiB = 64MiB > stripe/L = 2MiB: target sees Q*L.
  LvmLayoutModel lm(kMiB);
  WorkloadDesc w;
  w.read_rate = 10;
  w.read_size = 64 * kKiB;
  w.run_count = 1024;
  EXPECT_DOUBLE_EQ(lm.Transform(w, 0.5).run_count, 512);
}

TEST(LvmLayoutModelTest, IntermediateRunsCappedByStripe) {
  // Q*B = 24*8KiB = 192KiB with stripe 256KiB, L = 0.05:
  // stripe < Q*B ... no: need StripeSize <= Q*B <= StripeSize/L.
  // Q*B=192KiB < 256KiB -> first case. Pick stripe 128KiB instead:
  // 128KiB <= 192KiB <= 128KiB/0.05 = 2.5MiB -> capped at stripe/B = 16.
  LvmLayoutModel lm(128 * kKiB);
  WorkloadDesc w;
  w.read_rate = 10;
  w.read_size = 8 * kKiB;
  w.run_count = 24;
  EXPECT_DOUBLE_EQ(lm.Transform(w, 0.05).run_count, 16);
}

TEST(LvmLayoutModelTest, RunCountNeverBelowOne) {
  LvmLayoutModel lm(kMiB);
  WorkloadDesc w;
  w.read_rate = 10;
  w.read_size = 2 * kMiB;  // requests bigger than the stripe
  w.run_count = 1024;
  EXPECT_GE(lm.Transform(w, 1e-4).run_count, 1.0);
}

// ------------------------------------------------------------- CostModel

CostModel MakeSyntheticCostModel(double base = 0.005) {
  // Cost grows with contention, shrinks with run count; reads cost 2x
  // writes. Axes kept tiny for clarity.
  std::vector<double> sizes{static_cast<double>(8 * kKiB),
                            static_cast<double>(64 * kKiB)};
  std::vector<double> runs{1, 16};
  std::vector<double> chis{0, 2};
  std::vector<double> reads, writes;
  for (double s : sizes) {
    for (double q : runs) {
      for (double c : chis) {
        const double v =
            base * (s / (8 * kKiB)) * (1.0 + c) / std::sqrt(q);
        reads.push_back(v);
        writes.push_back(v / 2);
      }
    }
  }
  auto m = CostModel::Create("synthetic", sizes, runs, chis, reads, writes);
  LDB_CHECK(m.ok());
  return std::move(m).value();
}

TEST(CostModelTest, ExactAtGridPoints) {
  CostModel m = MakeSyntheticCostModel();
  EXPECT_NEAR(m.ReadCost(8 * kKiB, 1, 0), 0.005, 1e-12);
  EXPECT_NEAR(m.ReadCost(8 * kKiB, 1, 2), 0.015, 1e-12);
  EXPECT_NEAR(m.ReadCost(64 * kKiB, 16, 0), 0.01, 1e-12);
  EXPECT_NEAR(m.WriteCost(8 * kKiB, 1, 0), 0.0025, 1e-12);
}

TEST(CostModelTest, InterpolatesBetweenPoints) {
  CostModel m = MakeSyntheticCostModel();
  const double lo = m.ReadCost(8 * kKiB, 1, 0);
  const double hi = m.ReadCost(8 * kKiB, 1, 2);
  const double mid = m.ReadCost(8 * kKiB, 1, 1);
  EXPECT_GT(mid, lo);
  EXPECT_LT(mid, hi);
}

TEST(CostModelTest, ClampsOutsideGrid) {
  CostModel m = MakeSyntheticCostModel();
  EXPECT_DOUBLE_EQ(m.ReadCost(8 * kKiB, 1, 100), m.ReadCost(8 * kKiB, 1, 2));
  EXPECT_DOUBLE_EQ(m.ReadCost(4 * kKiB, 1, 0), m.ReadCost(8 * kKiB, 1, 0));
  EXPECT_DOUBLE_EQ(m.ReadCost(8 * kKiB, 500, 0), m.ReadCost(8 * kKiB, 16, 0));
}

TEST(CostModelTest, RoundTripsThroughText) {
  CostModel m = MakeSyntheticCostModel();
  auto m2 = CostModel::FromText(m.ToText());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->device_model(), "synthetic");
  for (double s : {8.0 * kKiB, 20.0 * kKiB, 64.0 * kKiB}) {
    for (double q : {1.0, 3.0, 16.0}) {
      for (double c : {0.0, 0.7, 2.0}) {
        EXPECT_DOUBLE_EQ(m2->ReadCost(s, q, c), m.ReadCost(s, q, c));
        EXPECT_DOUBLE_EQ(m2->WriteCost(s, q, c), m.WriteCost(s, q, c));
      }
    }
  }
}

TEST(CostModelTest, RejectsMalformedText) {
  EXPECT_FALSE(CostModel::FromText("garbage").ok());
  EXPECT_FALSE(CostModel::FromText("costmodel v1 dev\nsizes 2 1 2\n").ok());
}

TEST(CostModelTest, RejectsBadInputs) {
  EXPECT_FALSE(
      CostModel::Create("", {8192}, {1}, {0}, {0.1}, {0.1}).ok());
  EXPECT_FALSE(
      CostModel::Create("d", {-1}, {1}, {0}, {0.1}, {0.1}).ok());
  EXPECT_FALSE(
      CostModel::Create("d", {8192}, {0.5}, {0}, {0.1}, {0.1}).ok());
  EXPECT_FALSE(
      CostModel::Create("d", {8192}, {1}, {0}, {0.0}, {0.1}).ok());
  EXPECT_FALSE(
      CostModel::Create("d", {8192}, {1}, {0}, {0.1, 0.2}, {0.1}).ok());
}

// ------------------------------------------------------------ TargetModel

WorkloadDesc SimpleWorkload(int n, double rate, double size, double run) {
  WorkloadDesc w;
  w.read_rate = rate;
  w.read_size = size;
  w.run_count = run;
  w.overlap.assign(static_cast<size_t>(n), 0.0);
  return w;
}

TEST(TargetModelTest, UtilizationIsRateTimesCost) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}}, LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(1, 40.0, 8 * kKiB, 1.0)};
  Layout l(1, 1);
  l.Set(0, 0, 1.0);
  const auto mu = tm.Utilizations(ws, l);
  EXPECT_NEAR(mu[0], 40.0 * cm.ReadCost(8 * kKiB, 1, 0), 1e-12);
}

TEST(TargetModelTest, SplitHalvesPerTargetLoad) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}, {&cm, 1, 64 * kKiB}},
                 LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(1, 40.0, 8 * kKiB, 1.0)};
  Layout l(1, 2);
  l.SetRowRegular(0, {0, 1});
  const auto mu = tm.Utilizations(ws, l);
  EXPECT_NEAR(mu[0], 20.0 * cm.ReadCost(8 * kKiB, 1, 0), 1e-12);
  EXPECT_NEAR(mu[1], mu[0], 1e-12);
}

TEST(TargetModelTest, OverlappingCoLocatedObjectsInterfere) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}, {&cm, 1, 64 * kKiB}},
                 LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(2, 40.0, 8 * kKiB, 1.0),
                 SimpleWorkload(2, 40.0, 8 * kKiB, 1.0)};
  ws[0].overlap[1] = 1.0;
  ws[1].overlap[0] = 1.0;

  Layout together(2, 2);
  together.SetRowRegular(0, {0});
  together.SetRowRegular(1, {0});
  Layout apart(2, 2);
  apart.SetRowRegular(0, {0});
  apart.SetRowRegular(1, {1});

  const double mu_together = tm.Utilizations(ws, together)[0];
  const auto mu_apart = tm.Utilizations(ws, apart);
  // Co-located overlapping workloads pay contention (χ=1 each):
  EXPECT_GT(mu_together, 2 * mu_apart[0]);
  EXPECT_NEAR(mu_apart[0], 40.0 * cm.ReadCost(8 * kKiB, 1, 0), 1e-12);
}

TEST(TargetModelTest, NonOverlappingObjectsDoNotInterfere) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}}, LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(2, 40.0, 8 * kKiB, 1.0),
                 SimpleWorkload(2, 40.0, 8 * kKiB, 1.0)};
  Layout l(2, 1);
  l.SetRowRegular(0, {0});
  l.SetRowRegular(1, {0});
  const auto mu = tm.Utilizations(ws, l);
  // χ = 0 for both: total is exactly the sum of isolated loads.
  EXPECT_NEAR(mu[0], 2 * 40.0 * cm.ReadCost(8 * kKiB, 1, 0), 1e-12);
}

TEST(TargetModelTest, MoreMembersLowerUtilization) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}, {&cm, 3, 64 * kKiB}},
                 LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(1, 40.0, 8 * kKiB, 1.0)};
  Layout on_single(1, 2), on_raid(1, 2);
  on_single.SetRowRegular(0, {0});
  on_raid.SetRowRegular(0, {1});
  EXPECT_GT(tm.Utilizations(ws, on_single)[0],
            2.5 * tm.Utilizations(ws, on_raid)[1]);
}

TEST(TargetModelTest, PerObjectBreakdownSumsToTotal) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}, {&cm, 1, 64 * kKiB}},
                 LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(3, 40.0, 8 * kKiB, 1.0),
                 SimpleWorkload(3, 10.0, 64 * kKiB, 8.0),
                 SimpleWorkload(3, 5.0, 8 * kKiB, 1.0)};
  ws[0].overlap[1] = ws[1].overlap[0] = 0.5;
  Layout l = Layout::StripeEverythingEverywhere(3, 2);
  std::vector<double> mu_ij;
  const auto mu = tm.Utilizations(ws, l, &mu_ij);
  for (int j = 0; j < 2; ++j) {
    double sum = 0;
    for (int i = 0; i < 3; ++i) sum += mu_ij[static_cast<size_t>(i) * 2 + j];
    EXPECT_NEAR(sum, mu[static_cast<size_t>(j)], 1e-12);
  }
}

TEST(TargetModelTest, TargetUtilizationMatchesFullComputation) {
  CostModel cm = MakeSyntheticCostModel();
  TargetModel tm({{&cm, 1, 64 * kKiB}, {&cm, 2, 64 * kKiB}},
                 LvmLayoutModel(kMiB));
  WorkloadSet ws{SimpleWorkload(2, 40.0, 8 * kKiB, 1.0),
                 SimpleWorkload(2, 10.0, 64 * kKiB, 16.0)};
  ws[0].overlap[1] = ws[1].overlap[0] = 1.0;
  Layout l(2, 2);
  l.Set(0, 0, 0.3);
  l.Set(0, 1, 0.7);
  l.Set(1, 0, 0.6);
  l.Set(1, 1, 0.4);
  const auto mu = tm.Utilizations(ws, l);
  EXPECT_NEAR(tm.TargetUtilization(ws, l, 0), mu[0], 1e-12);
  EXPECT_NEAR(tm.TargetUtilization(ws, l, 1), mu[1], 1e-12);
  EXPECT_NEAR(tm.MaxUtilization(ws, l), std::max(mu[0], mu[1]), 1e-12);
}

// ------------------------------------------------------------ Calibration

CalibrationOptions FastCalibration() {
  CalibrationOptions opts;
  opts.size_axis = {static_cast<double>(8 * kKiB),
                    static_cast<double>(64 * kKiB)};
  opts.run_axis = {1, 8, 64};
  opts.contention_axis = {0, 1, 2, 4};
  opts.sample_requests = 160;
  opts.warmup_requests = 16;
  return opts;
}

TEST(CalibrationTest, DiskSequentialCheaperThanRandom) {
  DiskModel disk(Scsi15kParams());
  auto cm = CalibrateDevice(disk, FastCalibration());
  ASSERT_TRUE(cm.ok());
  EXPECT_LT(cm->ReadCost(8 * kKiB, 64, 0) * 5, cm->ReadCost(8 * kKiB, 1, 0));
}

TEST(CalibrationTest, SequentialAdvantageCollapsesNearChiTwo) {
  // The Figure 8 effect: sequential requests stay cheap under light
  // contention but collapse once the contention factor reaches ~2 (the
  // drive tracks two streams).
  DiskModel disk(Scsi15kParams());
  auto cm = CalibrateDevice(disk, FastCalibration());
  ASSERT_TRUE(cm.ok());
  const double seq0 = cm->ReadCost(8 * kKiB, 64, 0);
  const double seq2 = cm->ReadCost(8 * kKiB, 64, 2);
  const double rnd2 = cm->ReadCost(8 * kKiB, 1, 2);
  EXPECT_GT(seq2, 4 * seq0);        // collapse happened
  EXPECT_LT(seq2, rnd2 * 1.5);      // ... roughly to random cost
}

TEST(CalibrationTest, RandomCostDecreasesWithContention) {
  // Deeper queues let the SCAN-like scheduler shorten seeks.
  DiskModel disk(Scsi15kParams());
  auto cm = CalibrateDevice(disk, FastCalibration());
  ASSERT_TRUE(cm.ok());
  EXPECT_LT(cm->ReadCost(8 * kKiB, 1, 4), cm->ReadCost(8 * kKiB, 1, 0));
}

TEST(CalibrationTest, SsdInsensitiveToRunAndContention) {
  SsdModel ssd(SsdParams{});
  auto cm = CalibrateDevice(ssd, FastCalibration());
  ASSERT_TRUE(cm.ok());
  const double base = cm->ReadCost(8 * kKiB, 1, 0);
  EXPECT_NEAR(cm->ReadCost(8 * kKiB, 64, 0), base, base * 0.01);
  EXPECT_NEAR(cm->ReadCost(8 * kKiB, 1, 4), base, base * 0.01);
}

TEST(CalibrationTest, LargerRequestsCostMore) {
  DiskModel disk(Scsi15kParams());
  auto cm = CalibrateDevice(disk, FastCalibration());
  ASSERT_TRUE(cm.ok());
  EXPECT_GT(cm->ReadCost(64 * kKiB, 1, 0), cm->ReadCost(8 * kKiB, 1, 0));
}

TEST(CalibrationTest, RegistryCalibratesEachModelOnce) {
  DiskModel d1(Scsi15kParams()), d2(Scsi15kParams());
  SsdModel s(SsdParams{});
  auto reg =
      CostModelRegistry::ForDevices({&d1, &d2, &s}, FastCalibration());
  ASSERT_TRUE(reg.ok());
  EXPECT_NE(reg->Find("disk-15k"), nullptr);
  EXPECT_NE(reg->Find("ssd"), nullptr);
  EXPECT_EQ(reg->Find("nope"), nullptr);
}

TEST(CalibrationTest, RejectsEmptyAxes) {
  DiskModel disk(Scsi15kParams());
  CalibrationOptions opts = FastCalibration();
  opts.run_axis.clear();
  EXPECT_FALSE(CalibrateDevice(disk, opts).ok());
}

}  // namespace
}  // namespace ldb
