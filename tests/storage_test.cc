#include <functional>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"
#include "storage/event_queue.h"
#include "storage/lvm.h"
#include "storage/ssd.h"
#include "storage/storage_system.h"
#include "storage/target.h"
#include "util/units.h"

namespace ldb {
namespace {

// ------------------------------------------------------------ EventQueue

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(q.RunUntilIdle(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.ScheduleAt(1.0, [&, i] { order.push_back(i); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) q.ScheduleAfter(0.5, chain);
  };
  q.ScheduleAfter(0.5, chain);
  EXPECT_DOUBLE_EQ(q.RunUntilIdle(), 5.0);
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] { ++fired; });
  q.ScheduleAt(10.0, [&] { ++fired; });
  q.RunUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.Empty());
  q.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CountsEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.ScheduleAfter(1.0, [] {});
  q.RunUntilIdle();
  EXPECT_EQ(q.events_executed(), 7u);
}

TEST(EventQueueTest, SteadyStateChainRecyclesOneSlotWithoutHeap) {
  EventQueue q;
  const uint64_t heap_before = EventQueue::callback_heap_allocations();
  uint64_t fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 1000) q.ScheduleAfter(1.0, [&] { chain(); });
  };
  q.ScheduleAfter(1.0, [&] { chain(); });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 1000u);
  // One event outstanding at a time: the slab never grows past one slot,
  // and no capture spills to the heap.
  EXPECT_EQ(q.callback_pool_slots(), 1u);
  EXPECT_EQ(EventQueue::callback_heap_allocations(), heap_before);
}

TEST(EventQueueTest, BurstGrowsSlabOnceThenReusesIt) {
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 64; ++i) q.ScheduleAfter(1.0, [&] { ++fired; });
    q.RunUntilIdle();
    // The slab grows to the burst size on the first round and is reused
    // (free-list) on every later one.
    EXPECT_EQ(q.callback_pool_slots(), 64u);
  }
  EXPECT_EQ(fired, 5 * 64);
}

TEST(EventQueueTest, OversizeCaptureFallsBackToHeapAndStillRuns) {
  EventQueue q;
  const uint64_t heap_before = EventQueue::callback_heap_allocations();
  struct Big {
    char payload[EventQueue::kInlineCallbackBytes + 32];
  };
  Big big{};
  big.payload[0] = 42;
  int seen = 0;
  q.ScheduleAfter(1.0, [big, &seen] { seen = big.payload[0]; });
  EXPECT_EQ(EventQueue::callback_heap_allocations(), heap_before + 1);
  q.RunUntilIdle();
  EXPECT_EQ(seen, 42);
}

// ------------------------------------------------------------ DiskModel

TEST(DiskModelTest, SequentialRunIsMediaRate) {
  DiskModel d(Scsi15kParams());
  const int64_t sz = 64 * kKiB;
  // First request pays positioning.
  const double first = d.ServiceTime({0, sz, false});
  // Continuations are transfer + overhead only.
  const double expect_seq =
      d.params().per_request_overhead_s +
      static_cast<double>(sz) / (d.params().transfer_mbps * kMiB);
  for (int i = 1; i < 10; ++i) {
    const double t = d.ServiceTime({i * sz, sz, false});
    EXPECT_NEAR(t, expect_seq, 1e-9);
  }
  EXPECT_GT(first, 2 * expect_seq);
}

TEST(DiskModelTest, RandomRequestPaysSeekAndRotation) {
  DiskModel d(Scsi15kParams());
  d.ServiceTime({0, 8 * kKiB, false});
  const double t = d.ServiceTime({10 * kGiB, 8 * kKiB, false});
  // At least half a rotation (2 ms at 15K RPM) plus some seek.
  EXPECT_GT(t, 0.002);
}

TEST(DiskModelTest, SeekTimeConcaveAndMonotone) {
  DiskModel d(Scsi15kParams());
  const double s1 = d.SeekTime(kGiB);
  const double s4 = d.SeekTime(4 * kGiB);
  const double s16 = d.SeekTime(16 * kGiB);
  EXPECT_LT(s1, s4);
  EXPECT_LT(s4, s16);
  // Concavity: quadrupling distance less than quadruples the marginal time.
  EXPECT_LT(s16 - s4, 4 * (s4 - s1));
  EXPECT_DOUBLE_EQ(d.SeekTime(0), 0.0);
}

TEST(DiskModelTest, TracksTwoInterleavedStreams) {
  DiskParams p = Scsi15kParams();
  ASSERT_EQ(p.readahead_streams, 2);
  DiskModel d(p);
  const int64_t sz = 64 * kKiB;
  const int64_t base_b = 8 * kGiB;
  // Establish both streams.
  d.ServiceTime({0, sz, false});
  d.ServiceTime({base_b, sz, false});
  // Interleaved continuations keep their prefetch slots: no full seek +
  // rotation, but every request pays the stream-switch penalty because the
  // head alternates between the two regions.
  const double expect_seq =
      p.per_request_overhead_s + static_cast<double>(sz) / (p.transfer_mbps * kMiB);
  const double expect_switch = expect_seq + p.stream_switch_penalty_s;
  for (int i = 1; i < 8; ++i) {
    EXPECT_NEAR(d.ServiceTime({i * sz, sz, false}), expect_switch, 1e-9);
    EXPECT_NEAR(d.ServiceTime({base_b + i * sz, sz, false}), expect_switch,
                1e-9);
  }
  // A full positioning miss costs clearly more than a stream switch.
  DiskModel fresh(p);
  fresh.ServiceTime({0, sz, false});
  EXPECT_GT(fresh.ServiceTime({12 * kGiB, sz, false}), 2 * expect_switch);
}

TEST(DiskModelTest, UninterruptedStreamPaysNoSwitchPenalty) {
  DiskParams p = Scsi15kParams();
  DiskModel d(p);
  const int64_t sz = 64 * kKiB;
  d.ServiceTime({0, sz, false});
  const double expect_seq =
      p.per_request_overhead_s + static_cast<double>(sz) / (p.transfer_mbps * kMiB);
  EXPECT_NEAR(d.ServiceTime({sz, sz, false}), expect_seq, 1e-9);
}

TEST(DiskModelTest, ThirdStreamDestroysSequentiality) {
  DiskParams p = Scsi15kParams();
  DiskModel d(p);
  const int64_t sz = 64 * kKiB;
  const int64_t bases[3] = {0, 6 * kGiB, 12 * kGiB};
  for (int64_t b : bases) d.ServiceTime({b, sz, false});
  // Round-robin over three streams with two slots: every request misses.
  const double expect_seq =
      p.per_request_overhead_s + static_cast<double>(sz) / (p.transfer_mbps * kMiB);
  double total = 0;
  int n = 0;
  for (int i = 1; i < 8; ++i) {
    for (int64_t b : bases) {
      total += d.ServiceTime({b + i * sz, sz, false});
      ++n;
    }
  }
  EXPECT_GT(total / n, 3 * expect_seq);
}

TEST(DiskModelTest, WritePositioningDiscount) {
  DiskParams p = Scsi15kParams();
  DiskModel d1(p), d2(p);
  d1.ServiceTime({0, 8 * kKiB, false});
  d2.ServiceTime({0, 8 * kKiB, true});
  const double read_cost = d1.ServiceTime({9 * kGiB, 8 * kKiB, false});
  const double write_cost = d2.ServiceTime({9 * kGiB, 8 * kKiB, true});
  EXPECT_LT(write_cost, read_cost);
}

TEST(DiskModelTest, ResetRestoresInitialState) {
  DiskModel d(Scsi15kParams());
  const double first = d.ServiceTime({0, 8 * kKiB, false});
  d.ServiceTime({5 * kGiB, 8 * kKiB, false});
  d.Reset();
  EXPECT_DOUBLE_EQ(d.ServiceTime({0, 8 * kKiB, false}), first);
}

TEST(DiskModelTest, CloneIsIndependentFreshDevice) {
  DiskModel d(Scsi15kParams());
  d.ServiceTime({0, 64 * kKiB, false});
  auto c = d.Clone();
  // Clone has no stream state: at offset 64K it must pay positioning.
  EXPECT_GT(c->ServiceTime({64 * kKiB, 64 * kKiB, false}),
            d.ServiceTime({64 * kKiB, 64 * kKiB, false}));
}

TEST(DiskModelTest, PositioningEstimateMatchesSequentialState) {
  DiskModel d(Scsi15kParams());
  d.ServiceTime({0, 64 * kKiB, false});
  EXPECT_DOUBLE_EQ(d.PositioningEstimate({64 * kKiB, 64 * kKiB, false}), 0.0);
  EXPECT_GT(d.PositioningEstimate({10 * kGiB, 64 * kKiB, false}), 0.001);
}

TEST(DiskModelTest, NearlineSlowerRandomThan15k) {
  DiskModel fast(Scsi15kParams());
  DiskModel slow(Nearline7200Params());
  fast.ServiceTime({0, 8 * kKiB, false});
  slow.ServiceTime({0, 8 * kKiB, false});
  // Compare a half-stroke seek on each drive: the 15K drive positions
  // faster (shorter seeks and less rotational latency).
  EXPECT_LT(
      fast.ServiceTime({fast.capacity_bytes() / 2, 8 * kKiB, false}),
      slow.ServiceTime({slow.capacity_bytes() / 2, 8 * kKiB, false}));
}

// ------------------------------------------------------------ SsdModel

TEST(SsdModelTest, RandomEqualsSequential) {
  SsdModel s(SsdParams{});
  const double a = s.ServiceTime({0, 8 * kKiB, false});
  const double b = s.ServiceTime({10 * kGiB, 8 * kKiB, false});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SsdModelTest, MuchFasterThanDiskForRandomReads) {
  SsdModel s(SsdParams{});
  DiskModel d(Scsi15kParams());
  d.ServiceTime({0, 8 * kKiB, false});
  const double ssd = s.ServiceTime({5 * kGiB, 8 * kKiB, false});
  const double disk = d.ServiceTime({10 * kGiB, 8 * kKiB, false});
  EXPECT_GT(disk / ssd, 10.0);
}

TEST(SsdModelTest, WritesSlowerThanReads) {
  SsdModel s(SsdParams{});
  EXPECT_GT(s.ServiceTime({0, 8 * kKiB, true}),
            s.ServiceTime({0, 8 * kKiB, false}));
}

// ------------------------------------------------------------ Target

std::unique_ptr<StorageTarget> MakeDiskTarget(EventQueue* q, int members = 1) {
  DiskModel proto(Scsi15kParams());
  std::vector<std::unique_ptr<BlockDevice>> devs;
  for (int i = 0; i < members; ++i) devs.push_back(proto.Clone());
  return std::make_unique<StorageTarget>("t", std::move(devs), 64 * kKiB, q);
}

TEST(StorageTargetTest, CompletesSingleRequest) {
  EventQueue q;
  auto t = MakeDiskTarget(&q);
  double completed = -1;
  t->Submit({0, 8 * kKiB, false, 0}, [&](double when) { completed = when; });
  q.RunUntilIdle();
  EXPECT_GT(completed, 0.0);
  EXPECT_EQ(t->requests_completed(), 1u);
  EXPECT_NEAR(t->busy_time(), completed, 1e-12);
}

TEST(StorageTargetTest, QueuedRequestsServializeOnOneDisk) {
  EventQueue q;
  auto t = MakeDiskTarget(&q);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    t->Submit({i * kGiB, 8 * kKiB, false, 0},
              [&](double when) { done.push_back(when); });
  }
  q.RunUntilIdle();
  ASSERT_EQ(done.size(), 4u);
  for (size_t i = 1; i < done.size(); ++i) EXPECT_GT(done[i], done[i - 1]);
}

TEST(StorageTargetTest, Raid0SplitsLargeRequestAcrossMembers) {
  EventQueue q1, q2;
  auto one = MakeDiskTarget(&q1, 1);
  auto three = MakeDiskTarget(&q2, 3);
  double t_one = 0, t_three = 0;
  // A large sequential read: RAID0 should be substantially faster.
  const int64_t size = 16 * kMiB;
  one->Submit({0, size, false, 0}, [&](double w) { t_one = w; });
  three->Submit({0, size, false, 0}, [&](double w) { t_three = w; });
  q1.RunUntilIdle();
  q2.RunUntilIdle();
  EXPECT_GT(t_one / t_three, 2.0);
}

TEST(StorageTargetTest, Raid0ServesIndependentRequestsConcurrently) {
  EventQueue q;
  auto t = MakeDiskTarget(&q, 2);
  // Two small requests landing on different members (stripe 64K).
  std::vector<double> done;
  t->Submit({0, 8 * kKiB, false, 0}, [&](double w) { done.push_back(w); });
  t->Submit({64 * kKiB, 8 * kKiB, false, 0},
            [&](double w) { done.push_back(w); });
  q.RunUntilIdle();
  ASSERT_EQ(done.size(), 2u);
  // Concurrent service: both finish at (nearly) the same time.
  EXPECT_NEAR(done[0], done[1], 1e-4);
}

TEST(StorageTargetTest, CapacitySumsMembers) {
  EventQueue q;
  auto t1 = MakeDiskTarget(&q, 1);
  auto t3 = MakeDiskTarget(&q, 3);
  EXPECT_EQ(t3->capacity_bytes(), 3 * t1->capacity_bytes());
  EXPECT_EQ(t3->num_members(), 3);
}

TEST(StorageTargetTest, SchedulerPrefersNearbyRequest) {
  // Queue a far request then a sequential one while busy; the sequential
  // continuation should be served first (shortest positioning first).
  EventQueue q;
  auto t = MakeDiskTarget(&q);
  std::vector<int> order;
  t->Submit({0, 64 * kKiB, false, 0}, [&](double) { order.push_back(0); });
  t->Submit({10 * kGiB, 8 * kKiB, false, 0},
            [&](double) { order.push_back(1); });
  t->Submit({64 * kKiB, 64 * kKiB, false, 0},
            [&](double) { order.push_back(2); });
  q.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);  // sequential continuation jumps the queue
  EXPECT_EQ(order[2], 1);
}

TEST(StorageTargetTest, ResetClearsStatistics) {
  EventQueue q;
  auto t = MakeDiskTarget(&q);
  t->Submit({0, 8 * kKiB, false, 0}, nullptr);
  q.RunUntilIdle();
  EXPECT_GT(t->busy_time(), 0.0);
  t->Reset();
  EXPECT_DOUBLE_EQ(t->busy_time(), 0.0);
  EXPECT_EQ(t->requests_completed(), 0u);
}

// ------------------------------------------------------------ StorageSystem

TEST(StorageSystemTest, BuildsTargetsFromSpecs) {
  DiskModel disk(Scsi15kParams());
  SsdModel ssd(SsdParams{});
  std::vector<TargetSpec> specs{
      {"raid3", &disk, 3, 64 * kKiB},
      {"disk", &disk, 1, 64 * kKiB},
      {"ssd", &ssd, 1, 64 * kKiB},
  };
  StorageSystem sys(specs);
  EXPECT_EQ(sys.num_targets(), 3);
  EXPECT_EQ(sys.target(0).num_members(), 3);
  EXPECT_EQ(sys.target(2).device_model(), "ssd");
  const auto caps = sys.capacities();
  EXPECT_EQ(caps[0], 3 * caps[1]);
}

TEST(StorageSystemTest, ObserverSeesCompletedRequests) {
  DiskModel disk(Scsi15kParams());
  StorageSystem sys({{"d", &disk, 1, 64 * kKiB}});
  std::vector<IoEvent> events;
  sys.set_observer([&](const IoEvent& ev) { events.push_back(ev); });
  sys.Submit(0, {4 * kKiB, 8 * kKiB, true, 7}, nullptr);
  sys.queue().RunUntilIdle();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].object, 7);
  EXPECT_EQ(events[0].target, 0);
  EXPECT_TRUE(events[0].is_write);
  EXPECT_EQ(events[0].size, 8 * kKiB);
  EXPECT_GT(events[0].complete_time, events[0].submit_time);
}

TEST(StorageSystemTest, MeasuredUtilizationBounded) {
  DiskModel disk(Scsi15kParams());
  StorageSystem sys({{"d", &disk, 1, 64 * kKiB}});
  for (int i = 0; i < 10; ++i) sys.Submit(0, {i * kGiB, 8 * kKiB, false, 0}, nullptr);
  const double elapsed = sys.queue().RunUntilIdle();
  const double u = sys.MeasuredUtilization(0, elapsed);
  EXPECT_GT(u, 0.9);  // back-to-back service: busy almost the whole time
  EXPECT_LE(u, 1.0 + 1e-9);
}

// ------------------------------------------------------------ LVM

TEST(LvmTest, SingleTargetObjectMapsContiguously) {
  auto mgr = StripedVolumeManager::Create({10 * kMiB}, {{0}}, {kGiB}, kMiB);
  ASSERT_TRUE(mgr.ok());
  std::vector<TargetChunk> chunks;
  mgr->Map(0, 3 * kMiB + 100, 2 * kMiB, &chunks);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].target, 0);
  EXPECT_EQ(chunks[0].offset, 3 * kMiB + 100);
  EXPECT_EQ(chunks[0].size, 2 * kMiB);
}

TEST(LvmTest, StripesRoundRobinAcrossTargets) {
  auto mgr = StripedVolumeManager::Create({4 * kMiB}, {{0, 1}}, {kGiB, kGiB},
                                          kMiB);
  ASSERT_TRUE(mgr.ok());
  std::vector<TargetChunk> chunks;
  mgr->Map(0, 0, 4 * kMiB, &chunks);
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].target, 0);
  EXPECT_EQ(chunks[1].target, 1);
  EXPECT_EQ(chunks[2].target, 0);
  EXPECT_EQ(chunks[3].target, 1);
  // Stripes 0 and 2 are contiguous on target 0's extent.
  EXPECT_EQ(chunks[2].offset, chunks[0].offset + kMiB);
}

TEST(LvmTest, SecondObjectExtentDoesNotOverlapFirst) {
  auto mgr = StripedVolumeManager::Create({2 * kMiB, 2 * kMiB}, {{0}, {0}},
                                          {kGiB}, kMiB);
  ASSERT_TRUE(mgr.ok());
  std::vector<TargetChunk> a, b;
  mgr->Map(0, 0, 2 * kMiB, &a);
  mgr->Map(1, 0, 2 * kMiB, &b);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_GE(b[0].offset, a[0].offset + a[0].size);
}

TEST(LvmTest, RejectsOverCapacity) {
  auto mgr =
      StripedVolumeManager::Create({2 * kGiB}, {{0}}, {1 * kGiB}, kMiB);
  EXPECT_FALSE(mgr.ok());
  EXPECT_EQ(mgr.status().code(), StatusCode::kCapacityExceeded);
}

TEST(LvmTest, RejectsDuplicateTargets) {
  auto mgr = StripedVolumeManager::Create({kMiB}, {{0, 0}}, {kGiB}, kMiB);
  EXPECT_FALSE(mgr.ok());
}

TEST(LvmTest, RejectsUnknownTarget) {
  auto mgr = StripedVolumeManager::Create({kMiB}, {{3}}, {kGiB}, kMiB);
  EXPECT_FALSE(mgr.ok());
}

TEST(LvmTest, AccountsAllocationPerTarget) {
  auto mgr = StripedVolumeManager::Create({3 * kMiB}, {{0, 1}}, {kGiB, kGiB},
                                          kMiB);
  ASSERT_TRUE(mgr.ok());
  // 3 stripes: 2 on target 0, 1 on target 1.
  EXPECT_EQ(mgr->allocated_on(0), 2 * kMiB);
  EXPECT_EQ(mgr->allocated_on(1), 1 * kMiB);
}

TEST(LvmTest, MapSplitsAcrossStripeBoundary) {
  auto mgr = StripedVolumeManager::Create({8 * kMiB}, {{0, 1}}, {kGiB, kGiB},
                                          kMiB);
  ASSERT_TRUE(mgr.ok());
  std::vector<TargetChunk> chunks;
  // Read 1 MiB starting half-way into stripe 0: spans stripes 0 and 1.
  mgr->Map(0, kMiB / 2, kMiB, &chunks);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].target, 0);
  EXPECT_EQ(chunks[0].size, kMiB / 2);
  EXPECT_EQ(chunks[1].target, 1);
  EXPECT_EQ(chunks[1].size, kMiB / 2);
}


TEST(StorageTargetTest, DeadlineBoundPreventsStarvation) {
  // One sequential stream that would monopolize a pure SPTF scheduler,
  // plus one far-away request. With the starvation bound the far request
  // must be served within the bound (~max_wait) rather than after the
  // whole stream.
  EventQueue q;
  DiskModel proto(Scsi15kParams());
  std::vector<std::unique_ptr<BlockDevice>> devs;
  devs.push_back(proto.Clone());
  StorageTarget t("t", std::move(devs), 64 * kKiB, &q,
                  /*scheduler_max_wait_s=*/0.02);
  // Occupy the device with the first sequential request, then queue the
  // far request behind a long sequential backlog.
  int seq_done = 0;
  t.Submit({0, 64 * kKiB, false, 0}, [&](double) { ++seq_done; });
  double far_done = -1;
  t.Submit({10 * kGiB, 8 * kKiB, false, 0}, [&](double w) { far_done = w; });
  // 200 more sequential requests: SPTF alone would serve every one of
  // them (positioning estimate 0) before the far request.
  for (int i = 1; i <= 200; ++i) {
    t.Submit({i * 64 * kKiB, 64 * kKiB, false, 0},
             [&](double) { ++seq_done; });
  }
  q.RunUntilIdle();
  EXPECT_GT(far_done, 0.0);
  EXPECT_LT(far_done, 0.1);  // served near the bound, not after ~200 reqs
  EXPECT_EQ(seq_done, 201);
}

TEST(StorageTargetTest, LargerMaxWaitServesMoreSequentialFirst) {
  auto far_completion_with_bound = [](double bound) {
    EventQueue q;
    DiskModel proto(Scsi15kParams());
    std::vector<std::unique_ptr<BlockDevice>> devs;
    devs.push_back(proto.Clone());
    StorageTarget t("t", std::move(devs), 64 * kKiB, &q, bound);
    t.Submit({0, 64 * kKiB, false, 0}, nullptr);  // occupies the device
    double far_done = -1;
    t.Submit({10 * kGiB, 8 * kKiB, false, 0},
             [&](double w) { far_done = w; });
    for (int i = 1; i <= 400; ++i) {
      t.Submit({i * 64 * kKiB, 64 * kKiB, false, 0}, nullptr);
    }
    q.RunUntilIdle();
    return far_done;
  };
  EXPECT_LT(far_completion_with_bound(0.01),
            far_completion_with_bound(0.2));
}

TEST(StorageSystemTest, SubmitSequenceNumbersAreMonotone) {
  DiskModel disk(Scsi15kParams());
  StorageSystem sys({{"d", &disk, 1, 64 * kKiB}});
  std::vector<uint64_t> seqs;
  sys.set_observer([&](const IoEvent& ev) { seqs.push_back(ev.seq); });
  for (int i = 0; i < 8; ++i) {
    sys.Submit(0, {i * kGiB, 8 * kKiB, false, 0, 0}, nullptr);
  }
  sys.queue().RunUntilIdle();
  ASSERT_EQ(seqs.size(), 8u);
  std::sort(seqs.begin(), seqs.end());
  for (size_t i = 0; i < seqs.size(); ++i) EXPECT_EQ(seqs[i], i);
}

}  // namespace
}  // namespace ldb
