#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "trace/analyzer.h"
#include "trace/trace.h"
#include "util/table.h"
#include "workload/catalog.h"
#include "workload/query.h"
#include "workload/runner.h"
#include "workload/spec.h"
#include "workload/tpch.h"

namespace ldb {
namespace {

// ---------------------------------------------------------------- Catalog

TEST(CatalogTest, TpchMatchesPaperFigure9) {
  Catalog c = Catalog::TpcH();
  int tables = 0, indexes = 0, temps = 0, logs = 0;
  for (const DbObject& o : c.objects()) {
    switch (o.kind) {
      case ObjectKind::kTable: ++tables; break;
      case ObjectKind::kIndex: ++indexes; break;
      case ObjectKind::kTempSpace: ++temps; break;
      case ObjectKind::kLog: ++logs; break;
    }
  }
  EXPECT_EQ(c.num_objects(), 20);
  EXPECT_EQ(tables, 8);
  EXPECT_EQ(indexes, 11);
  EXPECT_EQ(temps, 1);
  EXPECT_EQ(logs, 0);
  // ~9.4 GB total.
  EXPECT_NEAR(static_cast<double>(c.total_bytes()) / kGiB, 9.4, 0.6);
}

TEST(CatalogTest, TpccMatchesPaperFigure9) {
  Catalog c = Catalog::TpcC();
  int tables = 0, indexes = 0, temps = 0, logs = 0;
  for (const DbObject& o : c.objects()) {
    switch (o.kind) {
      case ObjectKind::kTable: ++tables; break;
      case ObjectKind::kIndex: ++indexes; break;
      case ObjectKind::kTempSpace: ++temps; break;
      case ObjectKind::kLog: ++logs; break;
    }
  }
  EXPECT_EQ(c.num_objects(), 20);
  EXPECT_EQ(tables, 9);
  EXPECT_EQ(indexes, 10);
  EXPECT_EQ(temps, 0);
  EXPECT_EQ(logs, 1);
  EXPECT_NEAR(static_cast<double>(c.total_bytes()) / kGiB, 9.1, 0.6);
}

TEST(CatalogTest, ScaleShrinksSizes) {
  Catalog full = Catalog::TpcH(1.0);
  Catalog tiny = Catalog::TpcH(0.1);
  auto li_full = full.Find("LINEITEM");
  auto li_tiny = tiny.Find("LINEITEM");
  ASSERT_TRUE(li_full.ok());
  EXPECT_NEAR(static_cast<double>(tiny.object(*li_tiny).size_bytes),
              0.1 * static_cast<double>(full.object(*li_full).size_bytes),
              static_cast<double>(kMiB));
}

TEST(CatalogTest, FindReportsMissing) {
  Catalog c = Catalog::TpcH();
  EXPECT_TRUE(c.Find("LINEITEM").ok());
  EXPECT_FALSE(c.Find("NO_SUCH_TABLE").ok());
}

TEST(CatalogTest, MergePrefixesAndPreservesOrder) {
  Catalog merged = Catalog::Merge(Catalog::TpcH(), Catalog::TpcC(), "", "C_");
  EXPECT_EQ(merged.num_objects(), 40);
  // TPC-H ORDERS and TPC-C C_ORDERS are distinct objects.
  auto h_orders = merged.Find("ORDERS");
  auto c_orders = merged.Find("C_ORDERS");
  ASSERT_TRUE(h_orders.ok());
  ASSERT_TRUE(c_orders.ok());
  EXPECT_NE(*h_orders, *c_orders);
  EXPECT_LT(*h_orders, 20);
  EXPECT_GE(*c_orders, 20);
}

// ---------------------------------------------------------------- Profiles

TEST(TpchProfilesTest, Produces21Queries) {
  Catalog c = Catalog::TpcH(0.1);
  auto profiles = TpchQueryProfiles(c);
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles->size(), 21u);  // Q9 excluded
  std::set<std::string> names;
  for (const QueryProfile& q : *profiles) {
    names.insert(q.name);
    EXPECT_FALSE(q.steps.empty());
    EXPECT_GT(q.TotalBytes(), 0);
    EXPECT_GT(q.TotalRequests(), 0);
  }
  EXPECT_EQ(names.size(), 21u);
  EXPECT_EQ(names.count("Q9"), 0u);
  EXPECT_EQ(names.count("Q18"), 1u);
}

TEST(TpchProfilesTest, LineitemIsHeaviestObject) {
  Catalog c = Catalog::TpcH(0.1);
  auto profiles = TpchQueryProfiles(c);
  ASSERT_TRUE(profiles.ok());
  std::vector<int64_t> bytes(static_cast<size_t>(c.num_objects()), 0);
  for (const QueryProfile& q : *profiles) {
    for (const QueryStep& s : q.steps) {
      for (const StreamSpec& st : s.streams) {
        bytes[static_cast<size_t>(st.object)] += st.bytes;
      }
    }
  }
  const ObjectId li = *c.Find("LINEITEM");
  for (int i = 0; i < c.num_objects(); ++i) {
    if (i == li) continue;
    EXPECT_LT(bytes[static_cast<size_t>(i)], bytes[static_cast<size_t>(li)]);
  }
}

TEST(TpchProfilesTest, RequestRateOrderMatchesPaperFigure1) {
  // The paper's most heavily requested objects, in order: LINEITEM,
  // ORDERS, I_L_ORDERKEY, TEMP SPACE (Figure 1).
  Catalog c = Catalog::TpcH(1.0);
  auto profiles = TpchQueryProfiles(c);
  ASSERT_TRUE(profiles.ok());
  std::vector<int64_t> requests(static_cast<size_t>(c.num_objects()), 0);
  for (const QueryProfile& q : *profiles) {
    for (const QueryStep& s : q.steps) {
      for (const StreamSpec& st : s.streams) {
        requests[static_cast<size_t>(st.object)] +=
            (st.bytes + st.request_bytes - 1) / st.request_bytes;
      }
    }
  }
  auto req = [&](const char* name) {
    return requests[static_cast<size_t>(*c.Find(name))];
  };
  EXPECT_GT(req("LINEITEM"), req("ORDERS"));
  EXPECT_GT(req("ORDERS"), req("I_L_ORDERKEY"));
  EXPECT_GT(req("I_L_ORDERKEY"), req("TEMP SPACE"));
  EXPECT_GT(req("TEMP SPACE"), req("PARTSUPP"));
}

TEST(TpchProfilesTest, FailsOnWrongCatalog) {
  Catalog c = Catalog::TpcC();
  EXPECT_FALSE(TpchQueryProfiles(c).ok());
}

TEST(TpccProfileTest, TransactionTouchesCoreObjects) {
  Catalog c = Catalog::TpcC(0.1);
  auto txn = TpccTransactionProfile(c);
  ASSERT_TRUE(txn.ok());
  std::set<ObjectId> touched;
  bool has_log_write = false;
  for (const QueryStep& s : txn->steps) {
    for (const StreamSpec& st : s.streams) {
      touched.insert(st.object);
      if (c.object(st.object).kind == ObjectKind::kLog &&
          st.write_fraction == 1.0) {
        has_log_write = true;
      }
    }
  }
  EXPECT_TRUE(touched.count(*c.Find("STOCK")));
  EXPECT_TRUE(touched.count(*c.Find("CUSTOMER")));
  EXPECT_TRUE(touched.count(*c.Find("ORDER_LINE")));
  EXPECT_TRUE(has_log_write);
}

TEST(TpccProfileTest, WorksOnMergedCatalogWithPrefix) {
  Catalog merged = Catalog::Merge(Catalog::TpcH(), Catalog::TpcC(), "", "C_");
  auto txn = TpccTransactionProfile(merged, "C_");
  ASSERT_TRUE(txn.ok());
  for (const QueryStep& s : txn->steps) {
    for (const StreamSpec& st : s.streams) EXPECT_GE(st.object, 20);
  }
  // Without the prefix, TPC-C-only objects are missing.
  EXPECT_FALSE(TpccTransactionProfile(merged, "ZZZ_").ok());
}

// ------------------------------------------------------------------ Specs

TEST(SpecTest, Olap163HasRightShape) {
  Catalog c = Catalog::TpcH(0.1);
  auto spec = MakeOlapSpec(c, 3, 1, 7);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "OLAP1-63");
  EXPECT_EQ(spec->queries.size(), 63u);
  EXPECT_EQ(spec->concurrency, 1);
  // Each template appears exactly three times.
  int q1 = 0;
  for (const auto& q : spec->queries) q1 += (q.name == "Q1");
  EXPECT_EQ(q1, 3);
}

TEST(SpecTest, ShuffleIsSeedDeterministic) {
  Catalog c = Catalog::TpcH(0.1);
  auto a = MakeOlapSpec(c, 3, 8, 7);
  auto b = MakeOlapSpec(c, 3, 8, 7);
  auto d = MakeOlapSpec(c, 3, 8, 8);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->name, "OLAP8-63");
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].name, b->queries[i].name);
  }
  bool any_diff = false;
  for (size_t i = 0; i < a->queries.size(); ++i) {
    any_diff |= a->queries[i].name != d->queries[i].name;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SpecTest, RejectsBadParameters) {
  Catalog c = Catalog::TpcH(0.1);
  EXPECT_FALSE(MakeOlapSpec(c, 0, 1, 7).ok());
  EXPECT_FALSE(MakeOlapSpec(c, 1, 0, 7).ok());
  EXPECT_FALSE(MakeOltpSpec(Catalog::TpcC(0.1), "", 0).ok());
}

// ------------------------------------------------------------------ Runner

struct TestRig {
  Catalog catalog;
  std::unique_ptr<StorageSystem> system;
  std::unique_ptr<StripedVolumeManager> volumes;

  static TestRig SeeOnFourDisks(Catalog cat) {
    TestRig rig{std::move(cat), nullptr, nullptr};
    DiskModel proto(Scsi15kParams());
    std::vector<TargetSpec> specs;
    for (int j = 0; j < 4; ++j) {
      specs.push_back({StrFormat("disk%d", j), &proto, 1, 64 * kKiB});
    }
    rig.system = std::make_unique<StorageSystem>(specs);
    std::vector<std::vector<int>> placements(
        static_cast<size_t>(rig.catalog.num_objects()),
        std::vector<int>{0, 1, 2, 3});
    auto vol = StripedVolumeManager::Create(rig.catalog.sizes(), placements,
                                            rig.system->capacities(), kMiB);
    LDB_CHECK(vol.ok());
    rig.volumes =
        std::make_unique<StripedVolumeManager>(std::move(vol).value());
    return rig;
  }
};

TEST(RunnerTest, RunsSmallOlapWorkloadToCompletion) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcH(0.01));
  auto spec = MakeOlapSpec(rig.catalog, 1, 1, 7);
  ASSERT_TRUE(spec.ok());
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  auto result = runner.RunOlap(*spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->olap_queries_completed, 21u);
  EXPECT_GT(result->elapsed_seconds, 0.0);
  EXPECT_GT(result->total_requests, 100u);
  ASSERT_EQ(result->utilization.size(), 4u);
  for (double u : result->utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
}

TEST(RunnerTest, ConcurrentOlapFasterThanSerialPerQuery) {
  // With 8-way concurrency the same queries finish in less wall-clock time
  // than serially (parallelism), though not 8x (interference).
  Catalog cat = Catalog::TpcH(0.01);
  auto serial = MakeOlapSpec(cat, 1, 1, 7);
  auto conc = MakeOlapSpec(cat, 1, 8, 7);
  ASSERT_TRUE(serial.ok());
  TestRig rig1 = TestRig::SeeOnFourDisks(cat);
  WorkloadRunner r1(rig1.system.get(), rig1.volumes.get());
  auto res1 = r1.RunOlap(*serial);
  TestRig rig2 = TestRig::SeeOnFourDisks(cat);
  WorkloadRunner r2(rig2.system.get(), rig2.volumes.get());
  auto res2 = r2.RunOlap(*conc);
  ASSERT_TRUE(res1.ok());
  ASSERT_TRUE(res2.ok());
  EXPECT_LT(res2->elapsed_seconds, res1->elapsed_seconds);
}

TEST(RunnerTest, OltpReportsThroughput) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcC(0.01));
  auto spec = MakeOltpSpec(rig.catalog, "", 9, /*warmup_s=*/2.0);
  ASSERT_TRUE(spec.ok());
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  auto result = runner.RunOltp(*spec, 20.0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->oltp_transactions, 10u);
  EXPECT_GT(result->tpm, 0.0);
  EXPECT_DOUBLE_EQ(result->elapsed_seconds, 20.0);
}

TEST(RunnerTest, MixedRunStopsOltpWhenOlapDone) {
  Catalog merged =
      Catalog::Merge(Catalog::TpcH(0.01), Catalog::TpcC(0.01), "", "C_");
  TestRig rig = TestRig::SeeOnFourDisks(merged);
  auto olap = MakeOlapSpec(merged, 1, 1, 7);
  auto oltp = MakeOltpSpec(merged, "C_", 9, 1.0);
  ASSERT_TRUE(olap.ok());
  ASSERT_TRUE(oltp.ok());
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  auto result = runner.RunMixed(*olap, *oltp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->olap_queries_completed, 21u);
  EXPECT_GT(result->oltp_transactions, 0u);
  EXPECT_GT(result->tpm, 0.0);
}

TEST(RunnerTest, DeterministicForEqualSeeds) {
  Catalog cat = Catalog::TpcH(0.01);
  auto spec = MakeOlapSpec(cat, 1, 2, 7);
  ASSERT_TRUE(spec.ok());
  TestRig rig1 = TestRig::SeeOnFourDisks(cat);
  TestRig rig2 = TestRig::SeeOnFourDisks(cat);
  WorkloadRunner r1(rig1.system.get(), rig1.volumes.get(), 99);
  WorkloadRunner r2(rig2.system.get(), rig2.volumes.get(), 99);
  auto a = r1.RunOlap(*spec);
  auto b = r2.RunOlap(*spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
  EXPECT_EQ(a->total_requests, b->total_requests);
}

TEST(RunnerTest, RejectsUnmappedObjects) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcH(0.01));
  OlapSpec bad;
  bad.name = "bad";
  QueryProfile q;
  q.name = "broken";
  q.steps.emplace_back();
  StreamSpec s;
  s.object = 999;  // not in the volume manager
  s.bytes = kMiB;
  q.steps.back().streams.push_back(s);
  bad.queries.push_back(q);
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  EXPECT_FALSE(runner.RunOlap(bad).ok());
}

TEST(RunnerTest, TraceCapturesWorkloadActivity) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcH(0.01));
  auto spec = MakeOlapSpec(rig.catalog, 1, 1, 7);
  ASSERT_TRUE(spec.ok());
  TraceCollector collector(rig.system.get());
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  auto result = runner.RunOlap(*spec);
  ASSERT_TRUE(result.ok());
  // Chunk splitting can make trace events >= logical requests.
  EXPECT_GE(collector.trace().size(), result->total_requests);

  // The fitted workloads see LINEITEM as the dominant, sequential object.
  TraceAnalyzer analyzer;
  auto ws = analyzer.Analyze(collector.trace(), rig.catalog.num_objects());
  ASSERT_TRUE(ws.ok());
  const ObjectId li = *rig.catalog.Find("LINEITEM");
  const WorkloadDesc& wli = (*ws)[static_cast<size_t>(li)];
  EXPECT_GT(wli.total_rate(), 0.0);
  EXPECT_GT(wli.run_count, 4.0);  // scans are sequential
  for (int i = 0; i < rig.catalog.num_objects(); ++i) {
    EXPECT_TRUE(IsValidWorkload((*ws)[static_cast<size_t>(i)],
                                static_cast<size_t>(rig.catalog.num_objects()),
                                static_cast<size_t>(i)));
  }
}


TEST(RunnerTest, LogicalObserverSeesOneEventPerRequest) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcH(0.01));
  auto spec = MakeOlapSpec(rig.catalog, 1, 1, 7);
  ASSERT_TRUE(spec.ok());
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  uint64_t logical_events = 0;
  int64_t logical_bytes = 0;
  runner.set_logical_observer([&](const IoEvent& ev) {
    ++logical_events;
    logical_bytes += ev.size;
    EXPECT_EQ(ev.target, -1);
    EXPECT_GE(ev.complete_time, ev.submit_time);
  });
  auto result = runner.RunOlap(*spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(logical_events, result->total_requests);
  EXPECT_GT(logical_bytes, 0);
}

TEST(RunnerTest, AppendStreamsContinueAcrossQueries) {
  // Two queries appending to the same object must continue one cursor:
  // their logical offsets chain rather than both starting at zero.
  Catalog cat;
  cat.Add(DbObject{"LOG", ObjectKind::kLog, 4 * kMiB});
  TestRig rig = TestRig::SeeOnFourDisks(cat);
  QueryProfile q;
  q.name = "appender";
  q.steps.emplace_back();
  q.steps.back().depth = 1;
  StreamSpec s;
  s.object = 0;
  s.bytes = 64 * kKiB;
  s.request_bytes = 16 * kKiB;
  s.pattern = AccessPattern::kAppend;
  s.write_fraction = 1.0;
  q.steps.back().streams.push_back(s);
  OlapSpec spec;
  spec.name = "appends";
  spec.queries = {q, q};
  spec.concurrency = 1;
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  std::vector<int64_t> offsets;
  runner.set_logical_observer(
      [&](const IoEvent& ev) { offsets.push_back(ev.logical_offset); });
  ASSERT_TRUE(runner.RunOlap(spec).ok());
  ASSERT_EQ(offsets.size(), 8u);  // 2 queries x 4 requests
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], offsets[i - 1] + 16 * kKiB);
  }
}

TEST(RunnerTest, WriteFractionProducesMixedRequests) {
  Catalog cat;
  cat.Add(DbObject{"T", ObjectKind::kTable, 16 * kMiB});
  TestRig rig = TestRig::SeeOnFourDisks(cat);
  QueryProfile q;
  q.name = "mixed";
  q.steps.emplace_back();
  StreamSpec s;
  s.object = 0;
  s.bytes = 4 * kMiB;
  s.request_bytes = 8 * kKiB;
  s.pattern = AccessPattern::kRandom;
  s.write_fraction = 0.5;
  q.steps.back().streams.push_back(s);
  OlapSpec spec;
  spec.name = "mixed";
  spec.queries = {q};
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  uint64_t reads = 0, writes = 0;
  runner.set_logical_observer([&](const IoEvent& ev) {
    (ev.is_write ? writes : reads) += 1;
  });
  ASSERT_TRUE(runner.RunOlap(spec).ok());
  const double total = static_cast<double>(reads + writes);
  EXPECT_GT(total, 400);
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.5, 0.1);
}

TEST(RunnerTest, OltpOverheadCapsThroughput) {
  TestRig rig = TestRig::SeeOnFourDisks(Catalog::TpcC(0.01));
  auto spec = MakeOltpSpec(rig.catalog, "", 9, /*warmup_s=*/1.0);
  ASSERT_TRUE(spec.ok());
  spec->txn_overhead_s = 1.0;
  WorkloadRunner runner(rig.system.get(), rig.volumes.get());
  auto result = runner.RunOltp(*spec, 30.0);
  ASSERT_TRUE(result.ok());
  // 9 terminals with >= 1 s per transaction: at most ~9 tx/s = 540 tpm.
  EXPECT_LT(result->tpm, 9.0 * 60.0 + 1.0);
  EXPECT_GT(result->tpm, 60.0);
}

TEST(SpecTest, Olap121MatchesPaperName) {
  Catalog c = Catalog::TpcH(0.1);
  auto spec = MakeOlapSpec(c, 1, 1, 7);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "OLAP1-21");
  EXPECT_EQ(spec->queries.size(), 21u);
}

}  // namespace
}  // namespace ldb
