#include <unistd.h>

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/harness.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace {

constexpr double kScale = 0.02;

const ExperimentRig& SmallRig() {
  static const ExperimentRig* rig = [] {
    auto r = ExperimentRig::Create(Catalog::TpcH(kScale),
                                   {{"d0"}, {"d1"}}, kScale, 3);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();
  return *rig;
}

TEST(HarnessTest, CreateValidatesInputs) {
  EXPECT_FALSE(ExperimentRig::Create(Catalog::TpcH(0.02), {}, 0.02).ok());
  EXPECT_FALSE(
      ExperimentRig::Create(Catalog::TpcH(0.02), {{"d0"}}, -1.0).ok());
  EXPECT_FALSE(
      ExperimentRig::Create(Catalog::TpcH(0.02), {{""}}, 0.02).ok());
  RigTargetDef bad{"x", 0};
  EXPECT_FALSE(
      ExperimentRig::Create(Catalog::TpcH(0.02), {bad}, 0.02).ok());
}

TEST(HarnessTest, AdvisorTargetsMatchSimulatedSystem) {
  const ExperimentRig& rig = SmallRig();
  auto targets = rig.AdvisorTargets();
  auto system = rig.MakeSystem();
  ASSERT_EQ(targets.size(), 2u);
  ASSERT_EQ(system->num_targets(), 2);
  for (int j = 0; j < 2; ++j) {
    EXPECT_EQ(targets[static_cast<size_t>(j)].capacity_bytes,
              system->target(j).capacity_bytes());
    EXPECT_NE(targets[static_cast<size_t>(j)].cost_model, nullptr);
  }
}

TEST(HarnessTest, ExecuteRequiresRegularLayout) {
  const ExperimentRig& rig = SmallRig();
  auto olap = MakeOlapSpec(rig.catalog(), 1, 1, 3);
  ASSERT_TRUE(olap.ok());
  Layout bad(rig.catalog().num_objects(), 2);
  for (int i = 0; i < rig.catalog().num_objects(); ++i) {
    bad.Set(i, 0, 0.3);
    bad.Set(i, 1, 0.7);
  }
  EXPECT_FALSE(rig.Execute(bad, &*olap, nullptr).ok());
}

TEST(HarnessTest, ExecuteRequiresSomeWorkload) {
  const ExperimentRig& rig = SmallRig();
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), 2);
  EXPECT_FALSE(rig.Execute(see, nullptr, nullptr).ok());
}

TEST(HarnessTest, ExecutionIsDeterministicAcrossFreshSystems) {
  const ExperimentRig& rig = SmallRig();
  auto olap = MakeOlapSpec(rig.catalog(), 1, 1, 3);
  ASSERT_TRUE(olap.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), 2);
  auto a = rig.Execute(see, &*olap, nullptr);
  auto b = rig.Execute(see, &*olap, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
  EXPECT_EQ(a->total_requests, b->total_requests);
}

TEST(HarnessTest, FitWorkloadsProducesProblemReadyOutput) {
  const ExperimentRig& rig = SmallRig();
  auto olap = MakeOlapSpec(rig.catalog(), 1, 1, 3);
  ASSERT_TRUE(olap.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), 2);
  auto ws = rig.FitWorkloads(see, &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  auto problem = rig.MakeProblem(std::move(ws).value());
  ASSERT_TRUE(problem.ok());
  EXPECT_TRUE(problem->Validate().ok());
  EXPECT_EQ(problem->num_targets(), 2);
}

TEST(HarnessTest, ScaledDeviceCapacityTracksScale) {
  auto small = ExperimentRig::Create(Catalog::TpcH(0.02), {{"d"}}, 0.02, 3);
  auto large = ExperimentRig::Create(Catalog::TpcH(0.04), {{"d"}}, 0.04, 3);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  const int64_t cap_small = small->AdvisorTargets()[0].capacity_bytes;
  const int64_t cap_large = large->AdvisorTargets()[0].capacity_bytes;
  EXPECT_NEAR(static_cast<double>(cap_large),
              2.0 * static_cast<double>(cap_small),
              static_cast<double>(cap_small) * 0.01);
}

TEST(HarnessTest, WarmCalibrationCacheSkipsAllMeasurement) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  dir += "ldb-harness-calib-cache-" + std::to_string(getpid());

  CalibrationOptions calibration;
  calibration.cache_dir = dir;

  auto cold = ExperimentRig::Create(Catalog::TpcH(kScale),
                                    {{"d0"}, {"d1"}}, kScale, 3, calibration);
  ASSERT_TRUE(cold.ok());

  // A second rig over the same devices and options must be served entirely
  // from the cache: zero grid-point measurements.
  const uint64_t before = CalibrationMeasurePoints();
  auto warm = ExperimentRig::Create(Catalog::TpcH(kScale),
                                    {{"d0"}, {"d1"}}, kScale, 3, calibration);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CalibrationMeasurePoints(), before);

  // A different rig seed changes calibration.seed, so the cache entry is
  // stale and measurement resumes.
  auto other_seed = ExperimentRig::Create(Catalog::TpcH(kScale),
                                          {{"d0"}, {"d1"}}, kScale, 4,
                                          calibration);
  ASSERT_TRUE(other_seed.ok());
  EXPECT_GT(CalibrationMeasurePoints(), before);
}

TEST(HarnessTest, SsdTargetUsesSsdCostModel) {
  std::vector<RigTargetDef> defs{{"d0"}};
  defs.push_back(RigTargetDef{"ssd", 1, true, 8 * kGiB});
  auto rig = ExperimentRig::Create(Catalog::TpcH(kScale), defs, kScale, 3);
  ASSERT_TRUE(rig.ok());
  auto targets = rig->AdvisorTargets();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].cost_model->device_model(), "disk-15k");
  EXPECT_EQ(targets[1].cost_model->device_model(), "ssd");
  // SSD random reads are much cheaper.
  EXPECT_LT(targets[1].cost_model->ReadCost(8 * kKiB, 1, 0),
            0.2 * targets[0].cost_model->ReadCost(8 * kKiB, 1, 0));
}

}  // namespace
}  // namespace ldb
