// Deterministic fault injection: plan parsing, the degraded RAID paths,
// bounded retry semantics, rebuild, and — the load-bearing property — that
// a seeded fault schedule replays bit-identically across repeated runs and
// host thread counts.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/harness.h"
#include "storage/disk.h"
#include "storage/fault.h"
#include "storage/storage_system.h"
#include "util/units.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace {

// ------------------------------------------------------------ plan parsing

TEST(FaultPlanTest, ParsesClausesAndPlanKeys) {
  auto plan = ParseFaultPlan(
      "seed=9,retries=5,backoff=0.01;"
      "t=1.5,target=0,member=1,kind=limp,scale=3;"
      "t=2,target=1,kind=transient,p=0.25,duration=4;"
      "t=3,target=1,kind=fail;"
      "t=8,target=1,kind=rebuild,chunk=1048576");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_EQ(plan->max_retries, 5);
  EXPECT_DOUBLE_EQ(plan->retry_backoff_s, 0.01);
  ASSERT_EQ(plan->faults.size(), 4u);
  EXPECT_EQ(plan->faults[0].kind, FaultKind::kLimp);
  EXPECT_DOUBLE_EQ(plan->faults[0].latency_scale, 3.0);
  EXPECT_EQ(plan->faults[0].member, 1);
  EXPECT_EQ(plan->faults[1].kind, FaultKind::kTransient);
  EXPECT_DOUBLE_EQ(plan->faults[1].error_prob, 0.25);
  EXPECT_DOUBLE_EQ(plan->faults[1].duration, 4.0);
  EXPECT_EQ(plan->faults[2].kind, FaultKind::kFailStop);
  EXPECT_EQ(plan->faults[3].kind, FaultKind::kRebuild);
  EXPECT_EQ(plan->faults[3].rebuild_chunk_bytes, 1048576);
}

TEST(FaultPlanTest, RoundTripsThroughString) {
  auto plan = ParseFaultPlan("seed=3;t=1,target=0,kind=fail;"
                             "t=2,target=0,member=1,kind=limp,scale=2.5");
  ASSERT_TRUE(plan.ok());
  auto again = ParseFaultPlan(FaultPlanToString(*plan));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->seed, plan->seed);
  ASSERT_EQ(again->faults.size(), plan->faults.size());
  for (size_t i = 0; i < plan->faults.size(); ++i) {
    EXPECT_EQ(again->faults[i].kind, plan->faults[i].kind);
    EXPECT_DOUBLE_EQ(again->faults[i].time, plan->faults[i].time);
    EXPECT_EQ(again->faults[i].target, plan->faults[i].target);
    EXPECT_EQ(again->faults[i].member, plan->faults[i].member);
  }
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultPlan("t=1,target=0,kind=meteor").ok());
  EXPECT_FALSE(ParseFaultPlan("t=abc,target=0,kind=fail").ok());
  EXPECT_FALSE(ParseFaultPlan("bogus=1").ok());
  EXPECT_FALSE(ParseFaultPlan("t=1,target=0,kind").ok());
}

TEST(FaultPlanTest, ErrorsNameTheOffendingClause) {
  // Second clause is bad; the error must say "clause 2", not just fail.
  auto r = ParseFaultPlan(
      "t=1,target=0,kind=fail;t=2,target=0,kind=meteor");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("clause 2"), std::string::npos)
      << r.status().message();

  auto bad_key = ParseFaultPlan("t=1,target=0,kind=fail;zork=3,kind=fail");
  ASSERT_FALSE(bad_key.ok());
  EXPECT_NE(bad_key.status().message().find("clause 2"), std::string::npos)
      << bad_key.status().message();
}

TEST(FaultPlanTest, RejectsOutOfRangeFieldValues) {
  EXPECT_FALSE(ParseFaultPlan("t=-1,target=0,kind=fail").ok());
  EXPECT_FALSE(ParseFaultPlan("t=1,target=-2,kind=fail").ok());
  EXPECT_FALSE(ParseFaultPlan("t=1,target=0,member=-1,kind=fail").ok());
  EXPECT_FALSE(ParseFaultPlan("t=1,target=0,kind=limp,scale=0").ok());
  EXPECT_FALSE(ParseFaultPlan("t=1,target=0,kind=transient,p=1.5").ok());
  EXPECT_FALSE(
      ParseFaultPlan("t=1,target=0,kind=transient,p=0.1,duration=-3").ok());
  EXPECT_FALSE(ParseFaultPlan("retries=-1;t=1,target=0,kind=fail").ok());
  EXPECT_FALSE(ParseFaultPlan("backoff=-0.5;t=1,target=0,kind=fail").ok());
  // The in-range versions of the same clauses parse fine.
  EXPECT_TRUE(ParseFaultPlan("t=1,target=0,kind=limp,scale=2").ok());
  EXPECT_TRUE(ParseFaultPlan("t=1,target=0,kind=transient,p=0.5").ok());
}

// ------------------------------------------------------------ injection

std::unique_ptr<StorageSystem> MakeSystem(int members, RaidLevel level) {
  static const DiskModel* disk = new DiskModel(Scsi15kParams());
  return std::make_unique<StorageSystem>(std::vector<TargetSpec>{
      {"t0", disk, members, 64 * kKiB, 0.060, level}});
}

TEST(FaultInjectorTest, ArmValidatesThePlan) {
  auto sys = MakeSystem(2, RaidLevel::kRaid1);
  {
    FaultPlan plan;
    plan.faults.push_back({1.0, 5, 0, FaultKind::kFailStop});
    EXPECT_FALSE(FaultInjector(sys.get(), plan).Arm().ok());
  }
  {
    FaultPlan plan;
    plan.faults.push_back({1.0, 0, 7, FaultKind::kFailStop});
    EXPECT_FALSE(FaultInjector(sys.get(), plan).Arm().ok());
  }
  {
    FaultPlan plan;
    plan.faults.push_back({1.0, 0, 0, FaultKind::kLimp, -2.0});
    EXPECT_FALSE(FaultInjector(sys.get(), plan).Arm().ok());
  }
  auto raid0 = MakeSystem(2, RaidLevel::kRaid0);
  {
    FaultPlan plan;
    plan.faults.push_back({1.0, 0, 0, FaultKind::kRebuild});
    EXPECT_FALSE(FaultInjector(raid0.get(), plan).Arm().ok());
  }
}

TEST(FaultInjectorTest, Raid1ServesDegradedReadsAfterFailStop) {
  auto sys = MakeSystem(2, RaidLevel::kRaid1);
  FaultPlan plan;
  plan.faults.push_back({0.0, 0, 0, FaultKind::kFailStop});
  FaultInjector injector(sys.get(), plan);
  ASSERT_TRUE(injector.Arm().ok());
  sys->queue().RunUntilIdle();  // deliver the t=0 fail-stop

  int ok_reads = 0, ok_writes = 0;
  for (int i = 0; i < 4; ++i) {
    sys->SubmitWithStatus(0, {i * kMiB, 8 * kKiB, false, 0},
                [&](double, const Status& s) { ok_reads += s.ok(); });
    sys->SubmitWithStatus(0, {i * kMiB, 8 * kKiB, true, 0},
                [&](double, const Status& s) { ok_writes += s.ok(); });
  }
  sys->queue().RunUntilIdle();
  EXPECT_EQ(ok_reads, 4);
  EXPECT_EQ(ok_writes, 4);
  EXPECT_EQ(injector.faults_applied(), 1u);
  const FaultStats stats = sys->TotalFaultStats();
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.degraded_reads, 4u);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_GT(stats.degraded_time, 0.0);
  EXPECT_TRUE(sys->target(0).degraded());
}

TEST(FaultInjectorTest, Raid5ReconstructsAndRaid0Fails) {
  auto raid5 = MakeSystem(4, RaidLevel::kRaid5);
  raid5->target(0).FailMember(1);
  int raid5_ok = 0;
  raid5->target(0).SubmitWithStatus({0, 256 * kKiB, false, 0},
                          [&](double, const Status& s) { raid5_ok += s.ok(); });
  raid5->target(0).SubmitWithStatus({0, 64 * kKiB, true, 0},
                          [&](double, const Status& s) { raid5_ok += s.ok(); });
  raid5->queue().RunUntilIdle();
  EXPECT_EQ(raid5_ok, 2);
  EXPECT_GE(raid5->TotalFaultStats().degraded_reads, 1u);

  auto raid0 = MakeSystem(2, RaidLevel::kRaid0);
  raid0->target(0).FailMember(0);
  Status raid0_status;
  raid0->target(0).SubmitWithStatus({0, 64 * kKiB, false, 0},
                          [&](double, const Status& s) { raid0_status = s; });
  raid0->queue().RunUntilIdle();
  EXPECT_EQ(raid0_status.code(), StatusCode::kIoError);
  EXPECT_EQ(raid0->TotalFaultStats().failed_requests, 1u);
}

TEST(FaultInjectorTest, TransientErrorsHonorTheRetryBound) {
  auto sys = MakeSystem(1, RaidLevel::kRaid0);
  sys->target(0).SetRetryPolicy(3, 0.001);
  sys->target(0).SetMemberErrorProbability(0, 1.0);  // every attempt fails
  Status last;
  sys->target(0).SubmitWithStatus({0, 8 * kKiB, false, 0},
                        [&](double, const Status& s) { last = s; });
  sys->queue().RunUntilIdle();
  // Initial attempt + exactly max_retries re-tries, then the error
  // surfaces on the request status.
  EXPECT_EQ(last.code(), StatusCode::kIoError);
  const FaultStats stats = sys->TotalFaultStats();
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.transient_errors, 4u);
  EXPECT_EQ(stats.failed_requests, 1u);
}

TEST(FaultInjectorTest, TransientErrorsBelowBoundAreMasked) {
  auto sys = MakeSystem(1, RaidLevel::kRaid0);
  sys->target(0).SetRetryPolicy(8, 0.001);
  sys->target(0).SetMemberErrorProbability(0, 0.5);
  int ok = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    ++total;
    sys->target(0).SubmitWithStatus({i * kMiB, 8 * kKiB, false, 0},
                          [&](double, const Status& s) { ok += s.ok(); });
  }
  sys->queue().RunUntilIdle();
  // With 8 retries at p=0.5 a surfaced failure needs 9 consecutive hits
  // (p ≈ 0.002 per request) — all 50 requests should be masked.
  EXPECT_EQ(ok, total);
  EXPECT_GT(sys->TotalFaultStats().retries, 0u);
  EXPECT_EQ(sys->TotalFaultStats().failed_requests, 0u);
}

TEST(FaultInjectorTest, RebuildRestoresHealthAndCountsBytes) {
  auto sys = MakeSystem(2, RaidLevel::kRaid1);
  FaultPlan plan;
  plan.faults.push_back({0.0, 0, 0, FaultKind::kFailStop});
  FaultSpec rebuild{0.1, 0, 0, FaultKind::kRebuild};
  rebuild.rebuild_chunk_bytes = 64 * kMiB;
  plan.faults.push_back(rebuild);
  FaultInjector injector(sys.get(), plan);
  ASSERT_TRUE(injector.Arm().ok());
  sys->queue().RunUntilIdle();
  EXPECT_EQ(injector.faults_applied(), 2u);
  EXPECT_EQ(sys->target(0).member_health(0), MemberHealth::kHealthy);
  EXPECT_FALSE(sys->target(0).degraded());
  const FaultStats stats = sys->TotalFaultStats();
  EXPECT_EQ(stats.rebuild_bytes, sys->target(0).capacity_bytes());
  EXPECT_GT(stats.degraded_time, 0.0);
}

TEST(FaultInjectorTest, SurvivorLossMidRebuildParksTheMember) {
  // fail m0; rebuild m0; fail m1 — a valid plan whose last survivor dies
  // mid-rebuild. The rebuild must park m0 as dead again (no source left),
  // not crash on a zero serving count.
  for (auto level : {RaidLevel::kRaid1, RaidLevel::kRaid5}) {
    auto sys = MakeSystem(level == RaidLevel::kRaid1 ? 2 : 4, level);
    FaultPlan plan;
    plan.faults.push_back({0.0, 0, 0, FaultKind::kFailStop});
    plan.faults.push_back({0.1, 0, 0, FaultKind::kRebuild});
    plan.faults.push_back({0.2, 0, 1, FaultKind::kFailStop});
    FaultInjector injector(sys.get(), plan);
    ASSERT_TRUE(injector.Arm().ok());
    sys->queue().RunUntilIdle();
    EXPECT_EQ(injector.faults_applied(), 3u);
    EXPECT_EQ(sys->target(0).member_health(0), MemberHealth::kDead);
    EXPECT_EQ(sys->target(0).member_health(1), MemberHealth::kDead);
    const FaultStats stats = sys->TotalFaultStats();
    EXPECT_GT(stats.rebuild_bytes, 0);
    EXPECT_LT(stats.rebuild_bytes, sys->target(0).capacity_bytes());
  }
}

TEST(FaultInjectorTest, InvalidAtFireTimeRebuildIsSkippedNotFatal) {
  // A rebuild with no preceding fail-stop passes Arm() (which cannot see
  // event ordering) but must be recorded as skipped at fire time, not
  // crash the process.
  auto sys = MakeSystem(2, RaidLevel::kRaid1);
  FaultPlan plan;
  plan.faults.push_back({1.0, 0, 0, FaultKind::kRebuild});
  FaultInjector injector(sys.get(), plan);
  ASSERT_TRUE(injector.Arm().ok());
  sys->queue().RunUntilIdle();
  EXPECT_EQ(injector.faults_applied(), 0u);
  ASSERT_EQ(injector.skipped().size(), 1u);
  EXPECT_NE(injector.skipped()[0].find("not dead"), std::string::npos);
  EXPECT_EQ(sys->target(0).member_health(0), MemberHealth::kHealthy);
  EXPECT_EQ(sys->TotalFaultStats().rebuild_bytes, 0);
}

TEST(FaultInjectorTest, DirectStartRebuildReportsPreconditions) {
  auto raid0 = MakeSystem(2, RaidLevel::kRaid0);
  EXPECT_EQ(raid0->target(0).StartRebuild(0).code(),
            StatusCode::kFailedPrecondition);
  auto raid1 = MakeSystem(2, RaidLevel::kRaid1);
  EXPECT_EQ(raid1->target(0).StartRebuild(0).code(),
            StatusCode::kFailedPrecondition);  // member 0 is not dead
  raid1->target(0).FailMember(0);
  raid1->target(0).FailMember(1);
  EXPECT_EQ(raid1->target(0).StartRebuild(0).code(),
            StatusCode::kFailedPrecondition);  // no survivor to read from
  raid1->target(0).RecoverMember(1);
  EXPECT_TRUE(raid1->target(0).StartRebuild(0).ok());
  raid1->queue().RunUntilIdle();
  EXPECT_EQ(raid1->target(0).member_health(0), MemberHealth::kHealthy);
}

// --------------------------------------------------------- determinism

struct RunSignature {
  double elapsed;
  uint64_t requests;
  FaultStats faults;
  std::vector<double> utilization;
};

RunSignature SignatureOf(const RunResult& r) {
  return {r.elapsed_seconds, r.total_requests, r.faults, r.utilization};
}

void ExpectIdentical(const RunSignature& a, const RunSignature& b) {
  EXPECT_EQ(a.elapsed, b.elapsed);  // bitwise, not approximate
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
  EXPECT_EQ(a.faults.transient_errors, b.faults.transient_errors);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.failed_requests, b.faults.failed_requests);
  EXPECT_EQ(a.faults.degraded_reads, b.faults.degraded_reads);
  EXPECT_EQ(a.faults.rebuild_bytes, b.faults.rebuild_bytes);
  EXPECT_EQ(a.faults.degraded_time, b.faults.degraded_time);
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (size_t j = 0; j < a.utilization.size(); ++j) {
    EXPECT_EQ(a.utilization[j], b.utilization[j]);
  }
}

constexpr double kScale = 0.02;

FaultPlan MixedPlan() {
  auto plan = ParseFaultPlan(
      "seed=11;t=0.2,target=0,kind=transient,p=0.05;"
      "t=0.5,target=1,member=0,kind=limp,scale=2,duration=1.0");
  LDB_CHECK(plan.ok());
  return *plan;
}

TEST(FaultDeterminismTest, RepeatedRunsAreBitIdentical) {
  auto rig = ExperimentRig::Create(Catalog::TpcH(kScale), {{"d0"}, {"d1"}},
                                   kScale, 3);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 1, 2, 3);
  ASSERT_TRUE(olap.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), rig->num_targets());
  auto a = rig->ExecuteWithFaults(see, &*olap, nullptr, MixedPlan());
  auto b = rig->ExecuteWithFaults(see, &*olap, nullptr, MixedPlan());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->faults.transient_errors, 0u);
  ExpectIdentical(SignatureOf(*a), SignatureOf(*b));
}

TEST(FaultDeterminismTest, IdenticalAcrossHostThreadCounts) {
  // The fault schedule lives on the (serial) event queue and draws from
  // per-target seeded streams, so calibration/solver parallelism must not
  // perturb it.
  std::vector<RunSignature> runs;
  for (int threads : {1, 2, 8}) {
    CalibrationOptions calibration;
    calibration.num_threads = threads;
    auto rig = ExperimentRig::Create(Catalog::TpcH(kScale),
                                     {{"d0"}, {"d1"}}, kScale, 3,
                                     calibration);
    ASSERT_TRUE(rig.ok());
    auto olap = MakeOlapSpec(rig->catalog(), 1, 2, 3);
    ASSERT_TRUE(olap.ok());
    const Layout see = Layout::StripeEverythingEverywhere(
        rig->catalog().num_objects(), rig->num_targets());
    auto run = rig->ExecuteWithFaults(see, &*olap, nullptr, MixedPlan());
    ASSERT_TRUE(run.ok());
    runs.push_back(SignatureOf(*run));
  }
  ExpectIdentical(runs[0], runs[1]);
  ExpectIdentical(runs[0], runs[2]);
}

TEST(FaultDeterminismTest, EmptyPlanMatchesPlainExecution) {
  auto rig = ExperimentRig::Create(Catalog::TpcH(kScale), {{"d0"}, {"d1"}},
                                   kScale, 3);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 1, 2, 3);
  ASSERT_TRUE(olap.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), rig->num_targets());
  auto plain = rig->Execute(see, &*olap, nullptr);
  auto faulty = rig->ExecuteWithFaults(see, &*olap, nullptr, FaultPlan{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(faulty.ok());
  RunSignature p = SignatureOf(*plain);
  p.faults = faulty->faults;  // plain runs carry all-zero fault stats too
  EXPECT_EQ(plain->faults.transient_errors, 0u);
  EXPECT_EQ(faulty->faults.transient_errors, 0u);
  ExpectIdentical(p, SignatureOf(*faulty));
}

}  // namespace
}  // namespace ldb
