// Tests for the parallel + incremental solver evaluation engine: the
// thread pool itself, bit-identical solver results across thread counts,
// and the incremental column evaluator against from-scratch µ_j.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "model/calibration.h"
#include "model/cost_model.h"
#include "model/target_model.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "solver/multistart.h"
#include "solver/projected_gradient.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace ldb {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, EffectiveThreads) {
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1);
  EXPECT_EQ(ThreadPool::EffectiveThreads(5), 5);
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1);  // hardware cores
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  // Disjoint index-addressed writes, the pattern the solver relies on.
  std::vector<int> visits(1000, 0);
  pool.ParallelFor(static_cast<int64_t>(visits.size()), [&](int rank,
                                                            int64_t i) {
    EXPECT_GE(rank, 0);
    EXPECT_LT(rank, 4);
    visits[static_cast<size_t>(i)] += 1;
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ThreadPoolTest, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(8);
  int ran = 0;
  pool.ParallelFor(0, [&](int, int64_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  std::vector<int> visits(3, 0);
  pool.ParallelFor(3, [&](int, int64_t i) { visits[static_cast<size_t>(i)]++; });
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1}));
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::vector<int> counts(6, 0);
  pool.ParallelFor(static_cast<int64_t>(counts.size()), [&](int, int64_t i) {
    // A nested call from a pool task must not deadlock; it runs inline on
    // the calling lane.
    int inner = 0;
    pool.ParallelFor(4, [&](int, int64_t) { ++inner; });
    counts[static_cast<size_t>(i)] = inner;
  });
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> visits(17, 0);
    pool.ParallelFor(17, [&](int, int64_t i) { visits[static_cast<size_t>(i)]++; });
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

// --------------------------------------------------- Model test fixtures

CostModel MakeSyntheticCostModel() {
  // Several contention-axis points so the incremental evaluator's cached
  // χ-segments actually get exercised (interior cells, clamped tails).
  std::vector<double> sizes{static_cast<double>(8 * kKiB),
                            static_cast<double>(64 * kKiB),
                            static_cast<double>(512 * kKiB)};
  std::vector<double> runs{1, 8, 64};
  std::vector<double> chis{0, 0.5, 1, 2, 4};
  std::vector<double> reads, writes;
  for (double s : sizes) {
    for (double q : runs) {
      for (double c : chis) {
        const double v =
            0.004 * (s / (8 * kKiB)) * (1.0 + 0.7 * c) / std::sqrt(q);
        reads.push_back(v);
        writes.push_back(1.4 * v);
      }
    }
  }
  auto m = CostModel::Create("synthetic", sizes, runs, chis, reads, writes);
  LDB_CHECK(m.ok());
  return std::move(m).value();
}

WorkloadSet MakeWorkloads(int n, Rng* rng) {
  WorkloadSet ws(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    WorkloadDesc& w = ws[static_cast<size_t>(i)];
    w.read_rate = rng->Uniform(1, 150);
    w.read_size = 64 * kKiB;
    w.write_rate = rng->Uniform(0, 25);
    w.write_size = 8 * kKiB;
    w.run_count = rng->Uniform(1, 60);
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    for (int k = 0; k < n; ++k) {
      w.overlap[static_cast<size_t>(k)] =
          k == i ? rng->Uniform(0, 0.5) : rng->Uniform(0, 1);
    }
  }
  return ws;
}

/// A full target-model NLP problem with stable addresses (everything the
/// lambdas capture lives behind unique_ptrs).
struct ModelProblem {
  std::unique_ptr<CostModel> cost;
  std::unique_ptr<TargetModel> model;
  std::unique_ptr<WorkloadSet> workloads;
  LayoutNlpProblem nlp;
};

ModelProblem MakeModelProblem(int n, int m, uint64_t seed) {
  ModelProblem mp;
  mp.cost = std::make_unique<CostModel>(MakeSyntheticCostModel());
  Rng rng(seed);
  mp.workloads = std::make_unique<WorkloadSet>(MakeWorkloads(n, &rng));
  std::vector<TargetModelInfo> infos(
      static_cast<size_t>(m), TargetModelInfo{mp.cost.get(), 1, 64 * kKiB});
  mp.model =
      std::make_unique<TargetModel>(infos, LvmLayoutModel(64 * kKiB));
  mp.nlp.num_objects = n;
  mp.nlp.num_targets = m;
  mp.nlp.object_sizes.assign(static_cast<size_t>(n), kGiB);
  mp.nlp.target_capacities.assign(static_cast<size_t>(m), 50 * kGiB);
  const TargetModel* model = mp.model.get();
  const WorkloadSet* ws = mp.workloads.get();
  mp.nlp.target_utilization = [model, ws](const Layout& l, int j) {
    return model->TargetUtilization(*ws, l, j);
  };
  mp.nlp.make_column_eval = [model, ws](int j) {
    return model->MakeColumnEvaluator(*ws, j);
  };
  return mp;
}

Layout RandomLayout(int n, int m, Rng* rng) {
  Layout l(n, m);
  for (int i = 0; i < n; ++i) {
    double* row = l.Row(i);
    double sum = 0;
    for (int j = 0; j < m; ++j) {
      row[j] = rng->Uniform(0, 1);
      sum += row[j];
    }
    for (int j = 0; j < m; ++j) row[j] /= sum;
    // Sparsify a little so some (i, j) entries are exactly absent.
    const int drop = rng->UniformInt(0, m - 1);
    row[drop] = 0.0;
  }
  return l;
}

// ------------------------------------------------- Column evaluator cache

TEST(ColumnCacheTest, BaseMatchesFromScratchUtilization) {
  const int n = 12, m = 5;
  ModelProblem mp = MakeModelProblem(n, m, 11);
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const Layout layout = RandomLayout(n, m, &rng);
    for (int j = 0; j < m; ++j) {
      auto ctx = mp.model->MakeColumnEvaluator(*mp.workloads, j);
      ctx->Rebuild(layout);
      const double full = mp.model->TargetUtilization(*mp.workloads, layout, j);
      EXPECT_DOUBLE_EQ(ctx->Base(), full) << "trial " << trial << " j " << j;
    }
  }
}

TEST(ColumnCacheTest, WithObjectMatchesSubstitutedRecompute) {
  const int n = 12, m = 5;
  ModelProblem mp = MakeModelProblem(n, m, 13);
  Rng rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    Layout layout = RandomLayout(n, m, &rng);
    for (int j = 0; j < m; ++j) {
      auto ctx = mp.model->MakeColumnEvaluator(*mp.workloads, j);
      ctx->Rebuild(layout);
      for (int i = 0; i < n; ++i) {
        // Perturbations an FD step makes: tiny moves, removals, and
        // from-zero insertions.
        for (double fraction :
             {layout.At(i, j) + 1e-4, layout.At(i, j) - 1e-4, 0.0, 0.37,
              1.0}) {
          if (fraction < 0.0 || fraction > 1.0) continue;
          const double got = ctx->WithObject(i, fraction);
          const double saved = layout.At(i, j);
          layout.Set(i, j, fraction);
          const double want =
              mp.model->TargetUtilization(*mp.workloads, layout, j);
          layout.Set(i, j, saved);
          EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::fabs(want)))
              << "i=" << i << " j=" << j << " fraction=" << fraction;
        }
      }
      // The context must not drift: WithObject calls leave Base intact.
      EXPECT_DOUBLE_EQ(
          ctx->Base(), mp.model->TargetUtilization(*mp.workloads, layout, j));
    }
  }
}

// ----------------------------------------------------- Solver determinism

SolverOptions FastOptions() {
  SolverOptions o;
  o.annealing_rounds = 3;
  o.max_iterations_per_round = 20;
  return o;
}

TEST(SolverThreadingTest, BitIdenticalAcrossThreadCounts) {
  const int n = 12, m = 6;
  ModelProblem mp = MakeModelProblem(n, m, 17);
  const Layout seed = Layout::StripeEverythingEverywhere(n, m);

  SolverResult reference;
  bool have_reference = false;
  for (int threads : {1, 2, 8}) {
    SolverOptions o = FastOptions();
    o.gradient_mode = GradientMode::kFd;  // this test pins the FD engine
    o.num_threads = threads;
    ProjectedGradientSolver solver(o);
    auto r = solver.Solve(mp.nlp, seed);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    if (!have_reference) {
      reference = std::move(r).value();
      have_reference = true;
      EXPECT_GT(reference.incremental_evaluations, 0);
      continue;
    }
    EXPECT_TRUE(r->layout == reference.layout) << "threads=" << threads;
    EXPECT_EQ(r->max_utilization, reference.max_utilization)
        << "threads=" << threads;
    EXPECT_EQ(r->iterations, reference.iterations);
    EXPECT_EQ(r->objective_evaluations, reference.objective_evaluations);
    EXPECT_EQ(r->incremental_evaluations, reference.incremental_evaluations);
    EXPECT_EQ(r->feasible, reference.feasible);
  }
}

TEST(SolverThreadingTest, AnalyticBitIdenticalAcrossThreadCounts) {
  // The analytic engine's gradient sweep fans one fused kernel pass per
  // column over the pool; entries land in disjoint dmu spans and all
  // reductions are serial, so the whole solve must be invariant in the
  // thread count — layout, objective, and every effort counter.
  const int n = 12, m = 6;
  ModelProblem mp = MakeModelProblem(n, m, 17);
  const Layout seed = Layout::StripeEverythingEverywhere(n, m);

  SolverResult reference;
  bool have_reference = false;
  for (int threads : {1, 2, 8}) {
    SolverOptions o = FastOptions();  // analytic is the default mode
    o.num_threads = threads;
    ProjectedGradientSolver solver(o);
    auto r = solver.Solve(mp.nlp, seed);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    if (!have_reference) {
      reference = std::move(r).value();
      have_reference = true;
      EXPECT_GT(reference.gradient_evaluations, 0);
      EXPECT_EQ(reference.incremental_evaluations, 0);
      EXPECT_GT(reference.interp_queries, 0);
      continue;
    }
    EXPECT_TRUE(r->layout == reference.layout) << "threads=" << threads;
    EXPECT_EQ(r->max_utilization, reference.max_utilization)
        << "threads=" << threads;
    EXPECT_EQ(r->iterations, reference.iterations);
    EXPECT_EQ(r->objective_evaluations, reference.objective_evaluations);
    EXPECT_EQ(r->gradient_evaluations, reference.gradient_evaluations);
    EXPECT_EQ(r->interp_queries, reference.interp_queries);
    EXPECT_EQ(r->feasible, reference.feasible);
  }
}

TEST(SolverThreadingTest, BitIdenticalWithoutCacheToo) {
  // The fallback (black-box µ_j) path must also be thread-count invariant.
  const int n = 10, m = 4;
  ModelProblem mp = MakeModelProblem(n, m, 19);
  const Layout seed = Layout::StripeEverythingEverywhere(n, m);

  SolverOptions o = FastOptions();
  o.gradient_mode = GradientMode::kFd;  // pin the black-box fallback
  o.use_incremental_cache = false;
  o.num_threads = 1;
  auto serial = ProjectedGradientSolver(o).Solve(mp.nlp, seed);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->incremental_evaluations, 0);

  o.num_threads = 4;
  auto threaded = ProjectedGradientSolver(o).Solve(mp.nlp, seed);
  ASSERT_TRUE(threaded.ok());
  EXPECT_TRUE(threaded->layout == serial->layout);
  EXPECT_EQ(threaded->max_utilization, serial->max_utilization);
  EXPECT_EQ(threaded->objective_evaluations, serial->objective_evaluations);
}

TEST(MultiStartThreadingTest, BitIdenticalAcrossThreadCounts) {
  const int n = 12, m = 6;
  ModelProblem mp = MakeModelProblem(n, m, 23);
  Rng rng(5);
  std::vector<Layout> seeds = MultiStartSolver::RandomSeeds(mp.nlp, 4, &rng);
  seeds.push_back(Layout::StripeEverythingEverywhere(n, m));

  SolverResult reference;
  bool have_reference = false;
  for (int threads : {1, 2, 8}) {
    SolverOptions o = FastOptions();
    o.num_threads = threads;
    MultiStartSolver solver(o);
    auto r = solver.Solve(mp.nlp, seeds);
    ASSERT_TRUE(r.ok()) << "threads=" << threads;
    if (!have_reference) {
      reference = std::move(r).value();
      have_reference = true;
      continue;
    }
    EXPECT_TRUE(r->layout == reference.layout) << "threads=" << threads;
    EXPECT_EQ(r->max_utilization, reference.max_utilization)
        << "threads=" << threads;
    EXPECT_EQ(r->iterations, reference.iterations);
    EXPECT_EQ(r->objective_evaluations, reference.objective_evaluations);
    EXPECT_EQ(r->incremental_evaluations, reference.incremental_evaluations);
  }
}

// ------------------------------------------------- Calibration threading

TEST(CalibrationThreadingTest, BitIdenticalAcrossThreadCounts) {
  DiskModel disk(Scsi15kParams());
  CalibrationOptions options;
  // Small multi-axis grid: fast, but still exercises the point -> (size,
  // runs, chi) decoding and the per-point RNG streams.
  options.size_axis = {static_cast<double>(8 * kKiB),
                       static_cast<double>(64 * kKiB)};
  options.run_axis = {1, 16};
  options.contention_axis = {0, 2};
  options.sample_requests = 48;
  options.warmup_requests = 8;

  options.num_threads = 1;
  auto golden = CalibrateDevice(disk, options);
  ASSERT_TRUE(golden.ok());
  const std::string golden_text = golden->ToText();

  for (int threads : {2, 8, 0}) {
    options.num_threads = threads;
    auto m = CalibrateDevice(disk, options);
    ASSERT_TRUE(m.ok()) << "threads=" << threads;
    EXPECT_EQ(m->ToText(), golden_text) << "threads=" << threads;
  }
}

TEST(CalibrationThreadingTest, SsdBitIdenticalAcrossThreadCounts) {
  SsdModel ssd(SsdParams{});
  CalibrationOptions options;
  options.size_axis = {static_cast<double>(8 * kKiB)};
  options.run_axis = {1, 8};
  options.contention_axis = {0, 4};
  options.sample_requests = 32;
  options.warmup_requests = 4;

  options.num_threads = 1;
  auto golden = CalibrateDevice(ssd, options);
  ASSERT_TRUE(golden.ok());

  options.num_threads = 8;
  auto parallel = CalibrateDevice(ssd, options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->ToText(), golden->ToText());
}

// ------------------------------------------------------- Engine economics

TEST(EngineTest, CacheCutsFullEvaluationsAndAgreesWithBaseline) {
  const int n = 12, m = 6;
  ModelProblem mp = MakeModelProblem(n, m, 29);
  // Unbalanced seed (everything on target 0) so the solver takes real
  // descent steps — from the perfectly balanced SEE seed both engines
  // spend their iterations exhausting the line search instead.
  Layout seed(n, m);
  for (int i = 0; i < n; ++i) seed.SetRowRegular(i, {0});

  SolverOptions on = FastOptions();
  on.gradient_mode = GradientMode::kFd;  // compare the two FD engines
  SolverOptions off = on;
  off.use_incremental_cache = false;
  auto cached = ProjectedGradientSolver(on).Solve(mp.nlp, seed);
  auto baseline = ProjectedGradientSolver(off).Solve(mp.nlp, seed);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(baseline.ok());

  // The cache converts the FD grid's 2·N·M full column evaluations per
  // iteration into rank-1 incremental ones; only the line search's full
  // refreshes (a handful of columns each) still pay for full evaluations.
  EXPECT_GT(cached->incremental_evaluations, 0);
  EXPECT_LT(cached->objective_evaluations, baseline->objective_evaluations);
  ASSERT_GT(cached->iterations, 0);
  ASSERT_GT(baseline->iterations, 0);
  const double cached_per_iter =
      static_cast<double>(cached->objective_evaluations) /
      static_cast<double>(cached->iterations);
  const double baseline_per_iter =
      static_cast<double>(baseline->objective_evaluations) /
      static_cast<double>(baseline->iterations);
  EXPECT_LT(cached_per_iter, baseline_per_iter / 2);
  // Both engines optimize the same objective and land on layouts of the
  // same quality (FD rounding differs, so exact equality is not required).
  EXPECT_NEAR(cached->max_utilization, baseline->max_utilization,
              0.05 * std::max(1.0, std::fabs(baseline->max_utilization)));
}

TEST(EngineTest, AnalyticAgreesWithFdAndDropsPerturbations) {
  // Differential test for the analytic-gradient engine: a full solve in
  // each mode from the same unbalanced seed must converge to layouts of
  // equal quality, while the analytic mode replaces the 2·N·M per-step
  // perturbations (incremental evaluations) with M fused gradient passes.
  const int n = 12, m = 6;
  ModelProblem mp = MakeModelProblem(n, m, 29);
  Layout seed(n, m);
  for (int i = 0; i < n; ++i) seed.SetRowRegular(i, {0});

  // Full default annealing schedule: under the fast test schedule the two
  // engines stop mid-descent at slightly different points; at convergence
  // they must agree tightly.
  SolverOptions analytic;  // kAnalytic is the default
  SolverOptions fd;
  fd.gradient_mode = GradientMode::kFd;
  auto a = ProjectedGradientSolver(analytic).Solve(mp.nlp, seed);
  auto f = ProjectedGradientSolver(fd).Solve(mp.nlp, seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(f.ok());

  EXPECT_GT(a->gradient_evaluations, 0);
  EXPECT_EQ(a->incremental_evaluations, 0);
  EXPECT_GT(f->incremental_evaluations, 0);
  EXPECT_EQ(f->gradient_evaluations, 0);
  ASSERT_GT(a->iterations, 0);
  // Equal converged quality. The objective is nonconvex (interference
  // couples columns), so the exact and FD gradients can descend into
  // different basins — pointwise gradient agreement to 1e-6 is what the
  // GradientProperty suite asserts; here the solves must land within
  // basin-hopping noise of each other.
  EXPECT_NEAR(a->max_utilization, f->max_utilization,
              0.02 * std::max(1.0, std::fabs(f->max_utilization)));
  EXPECT_EQ(a->feasible, f->feasible);
  // Reported quality must be the honest scalar recomputation at the
  // returned layout, not a batched-path approximation.
  double true_max = 0.0;
  for (int j = 0; j < m; ++j) {
    true_max = std::max(true_max, mp.nlp.target_utilization(a->layout, j));
  }
  EXPECT_NEAR(a->max_utilization, true_max,
              1e-9 * std::max(1.0, std::fabs(true_max)));
  // Per-phase profile: every phase that ran reported wall time.
  EXPECT_EQ(a->profile.gradient.calls, a->iterations);
  EXPECT_GT(a->profile.line_search.calls, 0);
  EXPECT_GT(a->profile.refresh.calls, 0);
}

}  // namespace
}  // namespace ldb
