#include "core/autopilot.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "model/layout.h"
#include "storage/fault.h"
#include "util/check.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace {

constexpr double kScale = 0.02;

// Three identical disks so a skewed deployment leaves one idle and a
// re-advise has an obvious improvement to find.
const ExperimentRig& TriRig() {
  static const ExperimentRig* rig = [] {
    auto r = ExperimentRig::Create(Catalog::TpcC(kScale),
                                   {{"d0"}, {"d1"}, {"d2"}}, kScale, 3);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();
  return *rig;
}

Result<OltpSpec> Oltp() { return MakeOltpSpec(TriRig().catalog()); }

// A reference the live OLTP window cannot resemble: every object idles at
// a token 1 req/s of 8 KiB reads. Guarantees a large drift score for the
// trip-driven tests; irrelevant when tripping is disabled.
WorkloadSet TokenReference(int n) {
  WorkloadSet ws(static_cast<size_t>(n));
  for (auto& w : ws) {
    w.read_rate = 1.0;
    w.read_size = 8 * 1024;
    w.run_count = 1.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
  }
  return ws;
}

// Everything piled on d0/d1; d2 idle.
Layout PairedLayout(int n) {
  Layout l(n, 3);
  for (int i = 0; i < n; ++i) l.Set(i, i % 2, 1.0);
  return l;
}

bool SameLayout(const Layout& a, const Layout& b) {
  if (a.num_objects() != b.num_objects()) return false;
  for (int i = 0; i < a.num_objects(); ++i) {
    if (a.TargetsOf(i) != b.TargetsOf(i)) return false;
  }
  return true;
}

// Fast-reacting monitor for the trip-driven tests: short window, one
// evaluation trips, permissive gate unless a test overrides it.
AutopilotOptions DriftingOptions() {
  AutopilotOptions o;
  o.config.analyzer.half_life_s = 10.0;
  o.config.check_interval_s = 1.0;
  o.config.drift.threshold = 0.3;
  o.config.drift.trip_evaluations = 1;
  o.config.drift.cooldown_s = 5.0;
  o.config.gate_min_gain = 0.0;
  o.config.gate_horizon_s = 1e9;
  o.config.gate_fallback_bandwidth = 1e12;
  return o;
}

void ExpectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.olap_queries_completed, b.olap_queries_completed);
  EXPECT_EQ(a.oltp_transactions, b.oltp_transactions);
  EXPECT_DOUBLE_EQ(a.tpm, b.tpm);
  ASSERT_EQ(a.utilization.size(), b.utilization.size());
  for (size_t j = 0; j < a.utilization.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.utilization[j], b.utilization[j]);
  }
}

// Satellite (d): with drift disabled the autopilot is a pure observer —
// the run must be bit-for-bit the plain Execute of the same layout.
TEST(AutopilotTest, InfiniteThresholdIsBitIdenticalToExecute) {
  const ExperimentRig& rig = TriRig();
  auto oltp = Oltp();
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout see = Layout::StripeEverythingEverywhere(n, 3);

  auto base = rig.Execute(see, nullptr, &*oltp, 20.0);
  ASSERT_TRUE(base.ok());

  AutopilotOptions options = DriftingOptions();
  options.config.drift.threshold = std::numeric_limits<double>::infinity();
  auto ap = rig.ExecuteWithAutopilot(see, TokenReference(n), nullptr, &*oltp,
                                     FaultPlan{}, options, 20.0);
  ASSERT_TRUE(ap.ok());

  ExpectSameRun(base.value(), ap->run);
  EXPECT_TRUE(ap->decisions.empty());
  EXPECT_EQ(ap->migrations_started, 0);
  EXPECT_EQ(ap->migrations_suppressed, 0);
  EXPECT_EQ(ap->bytes_copied, 0);
  EXPECT_TRUE(SameLayout(ap->final_layout, see));
  // The sensor still watched the whole run.
  EXPECT_GT(ap->ticks, 0u);
  EXPECT_GT(ap->monitor_events, 0u);
  EXPECT_GT(ap->fg_requests, 0u);
}

// Faults compose on the same system: a disabled autopilot over a faulty
// run must reproduce ExecuteWithFaults exactly.
TEST(AutopilotTest, InfiniteThresholdComposesWithFaults) {
  const ExperimentRig& rig = TriRig();
  auto oltp = Oltp();
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout see = Layout::StripeEverythingEverywhere(n, 3);
  auto plan = ParseFaultPlan("t=5,target=1,kind=limp,scale=4,duration=5");
  ASSERT_TRUE(plan.ok());

  auto base = rig.ExecuteWithFaults(see, nullptr, &*oltp, *plan, 20.0);
  ASSERT_TRUE(base.ok());

  AutopilotOptions options = DriftingOptions();
  options.config.drift.threshold = std::numeric_limits<double>::infinity();
  auto ap = rig.ExecuteWithAutopilot(see, TokenReference(n), nullptr, &*oltp,
                                     *plan, options, 20.0);
  ASSERT_TRUE(ap.ok());

  ExpectSameRun(base.value(), ap->run);
  EXPECT_EQ(base->faults.faults_injected, ap->run.faults.faults_injected);
  EXPECT_DOUBLE_EQ(base->faults.degraded_time, ap->run.faults.degraded_time);
  EXPECT_EQ(ap->migrations_started, 0);
}

// The cost-benefit gate suppresses a migration whose projected gain can
// never clear the bar, and the deployed layout survives untouched.
TEST(AutopilotTest, GateSuppressesAnUnprofitableMigration) {
  const ExperimentRig& rig = TriRig();
  auto oltp = Oltp();
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout paired = PairedLayout(n);

  AutopilotOptions options = DriftingOptions();
  options.config.drift.cooldown_s = 8.0;
  options.config.gate_min_gain = 0.9;  // no re-layout can gain 0.9 max-util
  auto ap = rig.ExecuteWithAutopilot(paired, TokenReference(n), nullptr,
                                     &*oltp, FaultPlan{}, options, 30.0);
  ASSERT_TRUE(ap.ok());

  ASSERT_FALSE(ap->decisions.empty());
  EXPECT_GE(ap->migrations_suppressed, 1);
  EXPECT_EQ(ap->migrations_started, 0);
  EXPECT_EQ(ap->bytes_copied, 0);
  EXPECT_TRUE(SameLayout(ap->final_layout, paired));
  for (const AutopilotDecision& d : ap->decisions) {
    EXPECT_FALSE(d.gate_passed);
    EXPECT_FALSE(d.started);
    EXPECT_FALSE(d.note.empty());
    EXPECT_GT(d.score, options.config.drift.threshold);
  }
}

// End to end: the live window departs from the reference, the detector
// trips, the re-advise spreads load onto the idle disk, the gate passes,
// and the migration runs to adoption while the workload keeps going.
TEST(AutopilotTest, DriftTripMigratesAndAdopts) {
  const ExperimentRig& rig = TriRig();
  auto oltp = Oltp();
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout paired = PairedLayout(n);

  auto ap = rig.ExecuteWithAutopilot(paired, TokenReference(n), nullptr,
                                     &*oltp, FaultPlan{}, DriftingOptions(),
                                     40.0);
  ASSERT_TRUE(ap.ok());

  ASSERT_FALSE(ap->decisions.empty());
  EXPECT_GE(ap->migrations_started, 1);
  EXPECT_GE(ap->migrations_completed, 1);
  EXPECT_EQ(ap->migrations_rolled_back, 0);
  EXPECT_EQ(ap->migrations_aborted, 0);
  EXPECT_GT(ap->bytes_copied, 0);
  EXPECT_FALSE(SameLayout(ap->final_layout, paired));
  EXPECT_TRUE(ap->final_layout.IsRegular());
  EXPECT_GT(ap->run.oltp_transactions, 0u);
  const AutopilotDecision& first = ap->decisions.front();
  EXPECT_TRUE(first.gate_passed);
  EXPECT_TRUE(first.started);
  EXPECT_GT(first.migration_bytes, 0.0);
}

// The re-advise inside the loop is the only threaded component, and the
// solver is bit-identical across thread counts — so the whole closed-loop
// run must be too. Fingerprint digests run metrics, every decision, and
// the final layout. Default options mean the analytic-gradient engine:
// this is the end-to-end thread-invariance check for its fused batched
// kernels (the FD engines have their own in threading_test.cc).
TEST(AutopilotTest, ReportIsBitIdenticalAcrossSolverThreadCounts) {
  const ExperimentRig& rig = TriRig();
  auto oltp = Oltp();
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout paired = PairedLayout(n);

  std::vector<std::string> prints;
  for (int threads : {1, 2, 8}) {
    AutopilotOptions options = DriftingOptions();
    options.advisor.solver.num_threads = threads;
    auto ap = rig.ExecuteWithAutopilot(paired, TokenReference(n), nullptr,
                                       &*oltp, FaultPlan{}, options, 40.0);
    ASSERT_TRUE(ap.ok()) << "threads=" << threads;
    ASSERT_FALSE(ap->decisions.empty()) << "threads=" << threads;
    prints.push_back(ap->Fingerprint());
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

}  // namespace
}  // namespace ldb
