// The autopilot's sensor stack: the shared sequential-run tracker, the
// streaming OnlineAnalyzer (whose stationary fit must reproduce the batch
// TraceAnalyzer — the load-bearing differential), the drift detector's
// score/hysteresis/cooldown state machine, and the --autopilot spec parser.

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "monitor/autopilot_spec.h"
#include "monitor/drift.h"
#include "monitor/online_analyzer.h"
#include "storage/io_request.h"
#include "trace/analyzer.h"
#include "trace/run_tracker.h"
#include "trace/trace.h"
#include "util/random.h"
#include "util/units.h"

namespace ldb {
namespace {

// ------------------------------------------------------ SequentialRunTracker

TEST(RunTrackerTest, FirstRequestOpensARun) {
  SequentialRunTracker tr(8, 16 * kKiB);
  EXPECT_TRUE(tr.Observe(0, 4096));
  EXPECT_FALSE(tr.Observe(4096, 4096));     // exact continuation
  EXPECT_FALSE(tr.Observe(2 * 4096, 4096));
}

TEST(RunTrackerTest, SlackAbsorbsSmallSkips) {
  SequentialRunTracker tr(8, 16 * kKiB);
  EXPECT_TRUE(tr.Observe(0, 4096));
  EXPECT_FALSE(tr.Observe(4096 + 16 * kKiB, 4096));  // at the slack edge
  SequentialRunTracker tr2(8, 16 * kKiB);
  EXPECT_TRUE(tr2.Observe(0, 4096));
  EXPECT_TRUE(tr2.Observe(4096 + 16 * kKiB + 1, 4096));  // past it
}

TEST(RunTrackerTest, TracksInterleavedStreams) {
  // Two interleaved sequential scans: with two open runs each stream
  // continues its own run, so only the two openings count.
  SequentialRunTracker tr(2, 0);
  int runs = 0;
  int64_t a = 0;
  int64_t b = 512 * kMiB;
  for (int k = 0; k < 100; ++k) {
    if (tr.Observe(a, 4096)) ++runs;
    a += 4096;
    if (tr.Observe(b, 4096)) ++runs;
    b += 4096;
  }
  EXPECT_EQ(runs, 2);
}

TEST(RunTrackerTest, LruEvictionBoundsInterleavedTracking) {
  // Three interleaved streams but only two slots: every request misses
  // (its run was evicted two steps ago), so every request opens a run.
  SequentialRunTracker tr(2, 0);
  int runs = 0;
  int64_t s[3] = {0, 512 * kMiB, 1024 * kMiB};
  for (int k = 0; k < 30; ++k) {
    for (int64_t& off : s) {
      if (tr.Observe(off, 4096)) ++runs;
      off += 4096;
    }
  }
  EXPECT_EQ(runs, 90);
}

TEST(RunTrackerTest, ResetForgetsOpenRuns) {
  SequentialRunTracker tr(8, 0);
  EXPECT_TRUE(tr.Observe(0, 4096));
  EXPECT_FALSE(tr.Observe(4096, 4096));
  tr.Reset();
  EXPECT_TRUE(tr.Observe(2 * 4096, 4096));
}

// ---------------------------------------------------- OnlineAnalyzer (diff)

/// Deterministic stationary multi-object stream with sequential runs,
/// writes, cross-object overlap structure (bursty phases) and genuine
/// same-object concurrency on object 0. Per-object completion order equals
/// submit order (serial streams with constant service), which pins the
/// run-detection order; cross-object orders interleave freely.
std::vector<IoEvent> MakeStationaryTrace(int num_objects, uint64_t seed) {
  Rng rng(seed);
  std::vector<IoEvent> events;
  uint64_t seq = 0;
  for (int i = 0; i < num_objects; ++i) {
    const double period = 0.004 + 0.0013 * i;
    const double service = 0.002;
    const int count = 300;
    int64_t offset = 0;
    for (int k = 0; k < count; ++k) {
      // Bursty schedule: object i is active in alternating windows so the
      // pairwise overlap matrix has structure instead of saturating at 1.
      const int burst = k / 50;
      const double base = burst * (0.8 + 0.11 * i) +
                          (k % 50) * period;
      IoEvent ev;
      ev.object = i;
      ev.submit_time = base;
      ev.complete_time = base + service;
      ev.seq = seq++;
      ev.size = 4 * kKiB + static_cast<int64_t>(
                               rng.UniformInt(4) * 4 * kKiB);
      if (k % 5 == 0) {
        offset = static_cast<int64_t>(rng.UniformInt(1024)) * kMiB;
      }
      ev.logical_offset = offset;
      offset += ev.size;
      ev.is_write = (i % 2 == 1) && (k % 7 == 0);
      events.push_back(ev);

      if (i == 0) {
        // A second concurrent stream on object 0: in flight alongside the
        // first (self-overlap), same constant service time so completion
        // order still matches submit order.
        IoEvent ev2 = ev;
        ev2.submit_time = base + 0.0005;
        ev2.complete_time = ev2.submit_time + service;
        ev2.seq = seq++;
        ev2.logical_offset =
            static_cast<int64_t>(rng.UniformInt(1024)) * kMiB;
        ev2.is_write = false;
        events.push_back(ev2);
      }
    }
  }
  return events;
}

void ExpectWorkloadsMatch(const WorkloadSet& batch, const WorkloadSet& online,
                          double tol) {
  ASSERT_EQ(batch.size(), online.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const WorkloadDesc& b = batch[i];
    const WorkloadDesc& o = online[i];
    EXPECT_NEAR(b.read_rate, o.read_rate, tol * (1.0 + b.read_rate))
        << "object " << i;
    EXPECT_NEAR(b.write_rate, o.write_rate, tol * (1.0 + b.write_rate))
        << "object " << i;
    EXPECT_NEAR(b.read_size, o.read_size, tol * (1.0 + b.read_size))
        << "object " << i;
    EXPECT_NEAR(b.write_size, o.write_size, tol * (1.0 + b.write_size))
        << "object " << i;
    EXPECT_NEAR(b.run_count, o.run_count, tol * (1.0 + b.run_count))
        << "object " << i;
    ASSERT_EQ(b.overlap.size(), o.overlap.size());
    for (size_t k = 0; k < b.overlap.size(); ++k) {
      EXPECT_NEAR(b.overlap[k], o.overlap[k], tol * (1.0 + b.overlap[k]))
          << "object " << i << " overlap " << k;
    }
  }
}

/// The differential itself: batch TraceAnalyzer over the trace vs
/// OnlineAnalyzer fed the same events in completion order, decay disabled.
void RunDifferential(double overlap_window_s, int ring_capacity,
                     uint64_t seed) {
  const int n = 4;
  std::vector<IoEvent> events = MakeStationaryTrace(n, seed);

  IoTrace trace;
  for (const IoEvent& ev : events) trace.Add(ev);
  AnalyzerOptions batch_opts;
  batch_opts.overlap_window_s = overlap_window_s;
  auto batch = TraceAnalyzer(batch_opts).Analyze(trace, n);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::stable_sort(events.begin(), events.end(),
                   [](const IoEvent& a, const IoEvent& b) {
                     if (a.complete_time != b.complete_time) {
                       return a.complete_time < b.complete_time;
                     }
                     return a.seq < b.seq;
                   });
  OnlineAnalyzerOptions online_opts;
  online_opts.half_life_s = 0.0;  // stationary window: batch semantics
  online_opts.overlap_window_s = overlap_window_s;
  online_opts.ring_capacity = ring_capacity;
  OnlineAnalyzer analyzer(n, online_opts);
  for (const IoEvent& ev : events) analyzer.Observe(ev);
  EXPECT_EQ(analyzer.events(), events.size());

  ExpectWorkloadsMatch(*batch, analyzer.Snapshot(), 1e-9);
}

TEST(OnlineAnalyzerTest, MatchesBatchAnalyzerOnStationaryTrace) {
  RunDifferential(/*overlap_window_s=*/0.05, /*ring_capacity=*/256, 7);
}

TEST(OnlineAnalyzerTest, MatchesBatchAcrossOverlapWindows) {
  RunDifferential(0.001, 256, 11);
  RunDifferential(0.005, 256, 11);
  RunDifferential(0.02, 256, 11);
}

TEST(OnlineAnalyzerTest, MatchesBatchAcrossRingCapacities) {
  // The deferred-overlap lookback only ever needs the pad window, so even
  // small rings reproduce the batch numbers on this stream.
  RunDifferential(0.005, 64, 13);
  RunDifferential(0.005, 1024, 13);
}

TEST(OnlineAnalyzerTest, SnapshotIsEmptyBeforeAnyEvent) {
  OnlineAnalyzer analyzer(3);
  WorkloadSet ws = analyzer.Snapshot();
  ASSERT_EQ(ws.size(), 3u);
  for (const WorkloadDesc& w : ws) {
    EXPECT_EQ(w.total_rate(), 0.0);
    EXPECT_EQ(w.run_count, 1.0);
    ASSERT_EQ(w.overlap.size(), 3u);
  }
}

TEST(OnlineAnalyzerTest, ResetReproducesAFreshFit) {
  std::vector<IoEvent> events = MakeStationaryTrace(4, 21);
  std::stable_sort(events.begin(), events.end(),
                   [](const IoEvent& a, const IoEvent& b) {
                     return a.complete_time < b.complete_time;
                   });
  OnlineAnalyzerOptions opts;
  opts.half_life_s = 0.0;
  OnlineAnalyzer a(4, opts);
  OnlineAnalyzer b(4, opts);
  for (const IoEvent& ev : events) a.Observe(ev);
  // b sees garbage first, then Reset, then the same stream.
  for (size_t k = 0; k < 100 && k < events.size(); ++k) b.Observe(events[k]);
  b.Reset();
  EXPECT_EQ(b.events(), 0u);
  for (const IoEvent& ev : events) b.Observe(ev);
  ExpectWorkloadsMatch(a.Snapshot(), b.Snapshot(), 1e-12);
}

TEST(OnlineAnalyzerTest, DecayForgetsAnOldPhase) {
  // Phase 1: object 0 hot. Phase 2 (much later): object 1 hot. With a
  // short half-life the snapshot after phase 2 is dominated by object 1.
  OnlineAnalyzerOptions opts;
  opts.half_life_s = 2.0;
  OnlineAnalyzer analyzer(2, opts);
  IoEvent ev;
  ev.size = 8 * kKiB;
  for (int k = 0; k < 500; ++k) {
    ev.object = 0;
    ev.submit_time = k * 0.01;
    ev.complete_time = ev.submit_time + 0.004;
    ev.logical_offset = k * ev.size;
    analyzer.Observe(ev);
  }
  for (int k = 0; k < 500; ++k) {
    ev.object = 1;
    ev.submit_time = 60.0 + k * 0.01;
    ev.complete_time = ev.submit_time + 0.004;
    ev.logical_offset = k * ev.size;
    analyzer.Observe(ev);
  }
  WorkloadSet ws = analyzer.Snapshot();
  EXPECT_GT(ws[1].read_rate, 50.0);
  EXPECT_LT(ws[0].read_rate, 0.01 * ws[1].read_rate);
}

// ------------------------------------------------------------ DriftDetector

WorkloadSet TwoObjectSet(double rate0, double size0, double rate1,
                         double size1) {
  WorkloadSet ws(2);
  ws[0].read_rate = rate0;
  ws[0].read_size = size0;
  ws[1].read_rate = rate1;
  ws[1].read_size = size1;
  for (WorkloadDesc& w : ws) {
    w.run_count = 4.0;
    w.overlap.assign(2, 0.0);
  }
  return ws;
}

TEST(DriftDetectorTest, IdenticalWorkloadScoresZero) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 50, 8 * kKiB);
  DriftDetector det(ref, DriftOptions{});
  EXPECT_DOUBLE_EQ(det.Score(ref), 0.0);
}

TEST(DriftDetectorTest, RateShiftScoresMonotonically) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  DriftDetector det(ref, DriftOptions{});
  const double s2 = det.Score(TwoObjectSet(200, 64 * kKiB, 200, 64 * kKiB));
  const double s4 = det.Score(TwoObjectSet(400, 64 * kKiB, 400, 64 * kKiB));
  const double s8 = det.Score(TwoObjectSet(800, 64 * kKiB, 800, 64 * kKiB));
  EXPECT_GT(s2, 0.3);  // 2x shift = half of the 4x saturation
  EXPECT_LT(s2, 0.7);
  EXPECT_GT(s4, 0.99);  // 4x shift saturates
  EXPECT_DOUBLE_EQ(s4, s8);  // capped
}

TEST(DriftDetectorTest, InactiveObjectsAreIgnored) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 0.0, 0.0);
  // Object 1 idle on both sides: a big relative "change" in its (noise)
  // stats must not register.
  WorkloadSet live = TwoObjectSet(100, 64 * kKiB, 0.1, 4 * kKiB);
  DriftOptions opts;
  opts.min_rate = 0.5;
  DriftDetector det(ref, opts);
  EXPECT_DOUBLE_EQ(det.Score(live), 0.0);
}

TEST(DriftDetectorTest, TripsAfterConsecutiveEvaluationsPastCooldown) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet drifted = TwoObjectSet(400, 64 * kKiB, 400, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 2;
  opts.cooldown_s = 10.0;
  DriftDetector det(ref, opts, 0.0);
  // Inside the initial cooldown: never trips, streak does not accumulate.
  EXPECT_FALSE(det.Evaluate(drifted, 1.0));
  EXPECT_FALSE(det.Evaluate(drifted, 9.0));
  // Past cooldown: first above-threshold evaluation arms the streak,
  // second trips.
  EXPECT_FALSE(det.Evaluate(drifted, 11.0));
  EXPECT_TRUE(det.Evaluate(drifted, 13.0));
  EXPECT_EQ(det.trips(), 1u);
  // Tripped: disarmed + fresh cooldown; staying drifted cannot re-trip.
  EXPECT_FALSE(det.Evaluate(drifted, 15.0));
  EXPECT_FALSE(det.Evaluate(drifted, 30.0));
  EXPECT_FALSE(det.Evaluate(drifted, 60.0));
  EXPECT_EQ(det.trips(), 1u);
}

TEST(DriftDetectorTest, HysteresisRequiresClearingBeforeRetrip) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet drifted = TwoObjectSet(400, 64 * kKiB, 400, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.clear_ratio = 0.5;
  opts.cooldown_s = 1.0;
  DriftDetector det(ref, opts, 0.0);
  EXPECT_TRUE(det.Evaluate(drifted, 2.0));
  // Cooldown expired but score never cleared: still disarmed.
  EXPECT_FALSE(det.Evaluate(drifted, 10.0));
  // Score clears below threshold * clear_ratio: re-arms (no trip yet)...
  EXPECT_FALSE(det.Evaluate(ref, 12.0));
  // ...so the next excursion trips again.
  EXPECT_TRUE(det.Evaluate(drifted, 14.0));
  EXPECT_EQ(det.trips(), 2u);
}

TEST(DriftDetectorTest, RearmAdoptsReferenceAndRestartsCooldown) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet drifted = TwoObjectSet(400, 64 * kKiB, 400, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.cooldown_s = 5.0;
  DriftDetector det(ref, opts, 0.0);
  EXPECT_TRUE(det.Evaluate(drifted, 6.0));
  det.Rearm(drifted, 6.0);
  // The drifted set is the reference now: no drift, even past cooldown.
  EXPECT_DOUBLE_EQ(det.Score(drifted), 0.0);
  EXPECT_FALSE(det.Evaluate(drifted, 20.0));
  // And the original set now reads as drift (the shift is symmetric).
  EXPECT_TRUE(det.Evaluate(ref, 22.0));
}

TEST(DriftDetectorTest, SubThresholdPlateauNeverTripsWithoutSustain) {
  // The adversarial slow-drift shape: the live workload plateaus *just
  // under* the trip threshold. With the historical (sustain-disabled)
  // configuration the edge trigger never fires, the reference is never
  // re-taken, and the stale layout persists forever. This test documents
  // that behavior; the next one shows the sustain knob fixing it.
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  // A ~1.8x rate shift scores between clear and trip for threshold=0.5.
  WorkloadSet plateau = TwoObjectSet(180, 64 * kKiB, 180, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.cooldown_s = 0.0;
  DriftDetector det(ref, opts, 0.0);
  ASSERT_GT(det.Score(plateau), opts.threshold * opts.clear_ratio);
  ASSERT_LT(det.Score(plateau), opts.threshold);
  for (int k = 1; k <= 1000; ++k) {
    EXPECT_FALSE(det.Evaluate(plateau, static_cast<double>(k)));
  }
  EXPECT_EQ(det.trips(), 0u);
}

TEST(DriftDetectorTest, SustainTripsOnSubThresholdPlateau) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet plateau = TwoObjectSet(180, 64 * kKiB, 180, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.cooldown_s = 4.0;
  opts.sustained_ratio = 0.6;  // dwell band starts at score 0.3
  opts.sustained_s = 10.0;
  DriftDetector det(ref, opts, 0.0);
  ASSERT_GT(det.Score(plateau), opts.threshold * opts.sustained_ratio);
  ASSERT_LT(det.Score(plateau), opts.threshold);
  // Inside the initial cooldown the dwell clock must not accumulate.
  EXPECT_FALSE(det.Evaluate(plateau, 1.0));
  // Dwell starts at t=5 (first armed evaluation); fires once 10 s elapse.
  EXPECT_FALSE(det.Evaluate(plateau, 5.0));
  EXPECT_FALSE(det.Evaluate(plateau, 12.0));
  EXPECT_TRUE(det.Evaluate(plateau, 15.0));
  EXPECT_EQ(det.trips(), 1u);
  EXPECT_EQ(det.sustained_trips(), 1u);
  // Tripped: disarmed until the score clears, exactly like an edge trip.
  EXPECT_FALSE(det.Evaluate(plateau, 30.0));
  EXPECT_FALSE(det.Evaluate(plateau, 60.0));
  EXPECT_EQ(det.trips(), 1u);
  // Rearm on a new reference: plateau reads as zero drift, no dwell.
  det.Rearm(plateau, 60.0);
  EXPECT_FALSE(det.Evaluate(plateau, 100.0));
  EXPECT_EQ(det.trips(), 1u);
}

TEST(DriftDetectorTest, SustainDwellResetsWhenScoreDips) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet plateau = TwoObjectSet(180, 64 * kKiB, 180, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.cooldown_s = 0.0;
  opts.sustained_ratio = 0.6;
  opts.sustained_s = 10.0;
  DriftDetector det(ref, opts, 0.0);
  EXPECT_FALSE(det.Evaluate(plateau, 1.0));  // dwell starts
  EXPECT_FALSE(det.Evaluate(ref, 8.0));      // dips below band: resets
  EXPECT_FALSE(det.Evaluate(plateau, 9.0));  // dwell restarts here
  EXPECT_FALSE(det.Evaluate(plateau, 18.0));  // 9 s < 10 s: no trip yet
  EXPECT_TRUE(det.Evaluate(plateau, 19.0));
  EXPECT_EQ(det.sustained_trips(), 1u);
}

TEST(DriftDetectorTest, EdgeTripStillWinsOverSustain) {
  // A hard shift must trip via the edge path immediately; the sustain
  // counter stays untouched.
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  WorkloadSet drifted = TwoObjectSet(400, 64 * kKiB, 400, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = 0.5;
  opts.trip_evaluations = 1;
  opts.cooldown_s = 0.0;
  opts.sustained_ratio = 0.6;
  opts.sustained_s = 1000.0;
  DriftDetector det(ref, opts, 0.0);
  EXPECT_TRUE(det.Evaluate(drifted, 1.0));
  EXPECT_EQ(det.trips(), 1u);
  EXPECT_EQ(det.sustained_trips(), 0u);
}

TEST(DriftDetectorTest, InfiniteThresholdNeverTrips) {
  WorkloadSet ref = TwoObjectSet(100, 64 * kKiB, 100, 64 * kKiB);
  DriftOptions opts;
  opts.threshold = std::numeric_limits<double>::infinity();
  opts.trip_evaluations = 1;
  opts.cooldown_s = 0.0;
  DriftDetector det(ref, opts, 0.0);
  for (int k = 0; k < 50; ++k) {
    EXPECT_FALSE(det.Evaluate(
        TwoObjectSet(100.0 * (k + 1), 4 * kKiB, 1.0, 64 * kMiB), k));
  }
  EXPECT_EQ(det.trips(), 0u);
}

// -------------------------------------------------------- ParseAutopilotSpec

TEST(AutopilotSpecTest, EmptySpecYieldsDefaults) {
  auto config = ParseAutopilotSpec("");
  ASSERT_TRUE(config.ok());
  AutopilotConfig defaults;
  EXPECT_DOUBLE_EQ(config->check_interval_s, defaults.check_interval_s);
  EXPECT_DOUBLE_EQ(config->drift.threshold, defaults.drift.threshold);
  EXPECT_DOUBLE_EQ(config->gate_horizon_s, defaults.gate_horizon_s);
}

TEST(AutopilotSpecTest, ParsesFullGrammar) {
  auto config = ParseAutopilotSpec(
      "interval=1.5;threshold=0.4,trip=3,clear=0.25,cooldown=45;"
      "window=20,slack=32768,runs=4,ring=512;"
      "gain=0.05,horizon=600,bandwidth=1048576,minrate=2");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_DOUBLE_EQ(config->check_interval_s, 1.5);
  EXPECT_DOUBLE_EQ(config->drift.threshold, 0.4);
  EXPECT_EQ(config->drift.trip_evaluations, 3);
  EXPECT_DOUBLE_EQ(config->drift.clear_ratio, 0.25);
  EXPECT_DOUBLE_EQ(config->drift.cooldown_s, 45.0);
  EXPECT_DOUBLE_EQ(config->analyzer.half_life_s, 20.0);
  EXPECT_EQ(config->analyzer.sequential_slack_bytes, 32768);
  EXPECT_EQ(config->analyzer.max_open_runs, 4);
  EXPECT_EQ(config->analyzer.ring_capacity, 512);
  EXPECT_DOUBLE_EQ(config->gate_min_gain, 0.05);
  EXPECT_DOUBLE_EQ(config->gate_horizon_s, 600.0);
  EXPECT_DOUBLE_EQ(config->gate_fallback_bandwidth, 1048576.0);
  EXPECT_DOUBLE_EQ(config->drift.min_rate, 2.0);
}

TEST(AutopilotSpecTest, InfTokensDisableWindowAndThreshold) {
  auto config = ParseAutopilotSpec("window=inf;threshold=inf");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_DOUBLE_EQ(config->analyzer.half_life_s, 0.0);  // no decay
  EXPECT_TRUE(std::isinf(config->drift.threshold));
}

TEST(AutopilotSpecTest, ErrorsAreClauseIndexed) {
  auto bad = ParseAutopilotSpec("interval=2;threshold=-1");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("clause 2"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("threshold"), std::string::npos);

  bad = ParseAutopilotSpec("interval=2;trip=1;bogus=3");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("clause 3"), std::string::npos);
  EXPECT_NE(bad.status().message().find("bogus"), std::string::npos);
}

TEST(AutopilotSpecTest, RejectsZeroAndNegativeThreshold) {
  EXPECT_FALSE(ParseAutopilotSpec("threshold=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("threshold=-0.5").ok());
  EXPECT_FALSE(ParseAutopilotSpec("threshold=nan").ok());
  EXPECT_TRUE(ParseAutopilotSpec("threshold=0.01").ok());
}

TEST(AutopilotSpecTest, RejectsMalformedItemsAndNumbers) {
  EXPECT_FALSE(ParseAutopilotSpec("interval").ok());         // no '='
  EXPECT_FALSE(ParseAutopilotSpec("interval=two").ok());     // bad number
  EXPECT_FALSE(ParseAutopilotSpec("interval=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("interval=inf").ok());
  EXPECT_FALSE(ParseAutopilotSpec("clear=1.5").ok());
  EXPECT_FALSE(ParseAutopilotSpec("cooldown=-1").ok());
  EXPECT_FALSE(ParseAutopilotSpec("ring=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("runs=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("horizon=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("bandwidth=0").ok());
}

TEST(AutopilotSpecTest, RoundTripsThroughToString) {
  auto config =
      ParseAutopilotSpec("interval=3;threshold=0.3,trip=2;window=inf");
  ASSERT_TRUE(config.ok());
  auto again = ParseAutopilotSpec(AutopilotConfigToString(*config));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_DOUBLE_EQ(again->check_interval_s, 3.0);
  EXPECT_DOUBLE_EQ(again->drift.threshold, 0.3);
  EXPECT_DOUBLE_EQ(again->analyzer.half_life_s, 0.0);
}

TEST(AutopilotSpecTest, ParsesAndRoundTripsSustainKeys) {
  auto config = ParseAutopilotSpec("threshold=0.4,sustain=0.7,sustain_s=90");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_DOUBLE_EQ(config->drift.sustained_ratio, 0.7);
  EXPECT_DOUBLE_EQ(config->drift.sustained_s, 90.0);
  auto again = ParseAutopilotSpec(AutopilotConfigToString(*config));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_DOUBLE_EQ(again->drift.sustained_ratio, 0.7);
  EXPECT_DOUBLE_EQ(again->drift.sustained_s, 90.0);
  // Disabled sustain is not emitted, so defaults round-trip unchanged.
  auto off = ParseAutopilotSpec(AutopilotConfigToString(AutopilotConfig{}));
  ASSERT_TRUE(off.ok());
  EXPECT_DOUBLE_EQ(off->drift.sustained_ratio, 0.0);
}

TEST(AutopilotSpecTest, RejectsBadSustainValues) {
  EXPECT_FALSE(ParseAutopilotSpec("sustain=1.5").ok());
  EXPECT_FALSE(ParseAutopilotSpec("sustain=-0.1").ok());
  EXPECT_FALSE(ParseAutopilotSpec("sustain=nan").ok());
  EXPECT_FALSE(ParseAutopilotSpec("sustain_s=0").ok());
  EXPECT_FALSE(ParseAutopilotSpec("sustain_s=inf").ok());
  // sustain without a dwell time fails Validate() at end-of-parse.
  EXPECT_FALSE(ParseAutopilotSpec("sustain=0.7").ok());
  EXPECT_TRUE(ParseAutopilotSpec("sustain=0.7,sustain_s=60").ok());
  EXPECT_TRUE(ParseAutopilotSpec("sustain=0").ok());  // 0 disables
}

TEST(AutopilotSpecTest, ValidateMirrorsParserChecks) {
  AutopilotConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.drift.threshold = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.drift.threshold = 0.25;
  config.check_interval_s = -1.0;
  EXPECT_FALSE(config.Validate().ok());
  config.check_interval_s = 2.0;
  config.gate_horizon_s = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

}  // namespace
}  // namespace ldb
