#include <string>

#include <gtest/gtest.h>

#include "core/problem_io.h"
#include "util/units.h"

namespace ldb {
namespace {

// A minimal valid problem, used as the base for mutations.
const char kSample[] = R"(
# comment line
lvm_stripe 64KiB
device d builtin:ssd
target t0 d capacity 8GiB
target t1 d capacity 8GiB members 2 stripe 128KiB
object A table 1GiB
object B index 512MiB
workload A read_rate 100 read_size 64KiB write_rate 10 write_size 8KiB run_count 50
workload B read_rate 20 read_size 8KiB write_rate 0 write_size 0 run_count 1
overlap A B 0.7
self_overlap A 2.5
pin B t1
separate A B
)";

TEST(ProblemIoTest, ParsesCompleteFile) {
  auto loaded = ParseProblemText(kSample);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LayoutProblem& p = loaded->problem;
  EXPECT_EQ(p.num_objects(), 2);
  EXPECT_EQ(p.num_targets(), 2);
  EXPECT_EQ(p.lvm_stripe_bytes, 64 * kKiB);
  EXPECT_EQ(p.object_names[0], "A");
  EXPECT_EQ(p.object_kinds[1], ObjectKind::kIndex);
  EXPECT_EQ(p.object_sizes[0], kGiB);
  EXPECT_EQ(p.object_sizes[1], 512 * kMiB);
  EXPECT_DOUBLE_EQ(p.workloads[0].read_rate, 100);
  EXPECT_DOUBLE_EQ(p.workloads[0].read_size, 64 * kKiB);
  EXPECT_DOUBLE_EQ(p.workloads[0].overlap[1], 0.7);
  EXPECT_DOUBLE_EQ(p.workloads[1].overlap[0], 0.7);  // symmetric
  EXPECT_DOUBLE_EQ(p.workloads[0].overlap[0], 2.5);  // self
  EXPECT_EQ(p.targets[1].num_members, 2);
  EXPECT_EQ(p.targets[1].stripe_bytes, 128 * kKiB);
  EXPECT_EQ(p.constraints.AllowedFor(1), (std::vector<int>{1}));
  EXPECT_TRUE(p.constraints.AllowedFor(0).empty());
  ASSERT_EQ(p.constraints.separate.size(), 1u);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ProblemIoTest, SharesOneCalibrationPerBuiltinModel) {
  const std::string text = std::string(kSample) + "device d2 builtin:ssd\n";
  auto loaded = ParseProblemText(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->owned_models.size(), 1u);  // d and d2 share "ssd"
}

TEST(ProblemIoTest, ReportsLineNumbersOnErrors) {
  auto r = ParseProblemText("lvm_stripe 64KiB\nbogus directive\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(ProblemIoTest, RejectsUnknownReferences) {
  EXPECT_FALSE(ParseProblemText("target t0 nodev capacity 1GiB\n").ok());
  EXPECT_FALSE(ParseProblemText("device d builtin:warp-drive\n").ok());
  const std::string base =
      "device d builtin:ssd\ntarget t0 d capacity 8GiB\n"
      "object A table 1GiB\n"
      "workload A read_rate 1 read_size 8KiB write_rate 0 write_size 0 "
      "run_count 1\n";
  EXPECT_FALSE(ParseProblemText(base + "overlap A NOPE 0.5\n").ok());
  EXPECT_FALSE(ParseProblemText(base + "pin A t9\n").ok());
  EXPECT_FALSE(ParseProblemText(base + "separate A Z\n").ok());
}

TEST(ProblemIoTest, RejectsDuplicatesAndBadSizes) {
  EXPECT_FALSE(
      ParseProblemText("device d builtin:ssd\ndevice d builtin:ssd\n").ok());
  EXPECT_FALSE(ParseProblemText("lvm_stripe -3\n").ok());
  EXPECT_FALSE(ParseProblemText("lvm_stripe 64QiB\n").ok());
  const std::string dup =
      "device d builtin:ssd\ntarget t0 d capacity 8GiB\n"
      "object A table 1GiB\nobject A table 1GiB\n";
  EXPECT_FALSE(ParseProblemText(dup).ok());
}

TEST(ProblemIoTest, DuplicateNamesReportLineAndWhichName) {
  auto dup_target = ParseProblemText(
      "device d builtin:ssd\n"
      "target t0 d capacity 8GiB\n"
      "target t0 d capacity 8GiB\n");
  ASSERT_FALSE(dup_target.ok());
  EXPECT_NE(dup_target.status().message().find("duplicate target"),
            std::string::npos)
      << dup_target.status().message();
  EXPECT_NE(dup_target.status().message().find("line 3"), std::string::npos)
      << dup_target.status().message();

  auto dup_object = ParseProblemText(
      "device d builtin:ssd\n"
      "target t0 d capacity 8GiB\n"
      "object A table 1GiB\n"
      "object A table 1GiB\n");
  ASSERT_FALSE(dup_object.ok());
  EXPECT_NE(dup_object.status().message().find("duplicate object"),
            std::string::npos)
      << dup_object.status().message();
  EXPECT_NE(dup_object.status().message().find("line 4"), std::string::npos)
      << dup_object.status().message();
}

TEST(ProblemIoTest, ValidatesFinalProblem) {
  // Objects exceed total capacity: Validate() must reject.
  const char text[] = R"(
device d builtin:ssd
target t0 d capacity 1GiB
object A table 4GiB
workload A read_rate 1 read_size 8KiB write_rate 0 write_size 0 run_count 1
)";
  auto r = ParseProblemText(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInfeasible);
}

TEST(ProblemIoTest, LoadProblemFileMissingPath) {
  EXPECT_FALSE(LoadProblemFile("/no/such/file.txt").ok());
}

TEST(ProblemIoTest, EndToEndAdvisorRunOnParsedProblem) {
  auto loaded = ParseProblemText(kSample);
  ASSERT_TRUE(loaded.ok());
  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(loaded->problem);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(loaded->problem.constraints.SatisfiedBy(rec->final_layout));
  const std::string report =
      FormatAdvisorReport(loaded->problem, *rec);
  EXPECT_NE(report.find("Recommended layout"), std::string::npos);
  EXPECT_NE(report.find("A"), std::string::npos);
}


TEST(ProblemIoTest, FormatProblemTextRoundTrips) {
  auto loaded = ParseProblemText(kSample);
  ASSERT_TRUE(loaded.ok());
  const std::string text = FormatProblemText(loaded->problem);
  auto reloaded = ParseProblemText(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString() << "\n" << text;
  const LayoutProblem& a = loaded->problem;
  const LayoutProblem& b = reloaded->problem;
  ASSERT_EQ(a.num_objects(), b.num_objects());
  ASSERT_EQ(a.num_targets(), b.num_targets());
  EXPECT_EQ(a.lvm_stripe_bytes, b.lvm_stripe_bytes);
  for (int i = 0; i < a.num_objects(); ++i) {
    EXPECT_EQ(a.object_names[static_cast<size_t>(i)],
              b.object_names[static_cast<size_t>(i)]);
    EXPECT_EQ(a.object_sizes[static_cast<size_t>(i)],
              b.object_sizes[static_cast<size_t>(i)]);
    EXPECT_EQ(a.object_kinds[static_cast<size_t>(i)],
              b.object_kinds[static_cast<size_t>(i)]);
    const WorkloadDesc& wa = a.workloads[static_cast<size_t>(i)];
    const WorkloadDesc& wb = b.workloads[static_cast<size_t>(i)];
    EXPECT_NEAR(wa.read_rate, wb.read_rate, 1e-6);
    EXPECT_NEAR(wa.write_rate, wb.write_rate, 1e-6);
    EXPECT_NEAR(wa.run_count, wb.run_count, 1e-6);
    for (int k = 0; k < a.num_objects(); ++k) {
      EXPECT_NEAR(wa.overlap[static_cast<size_t>(k)],
                  wb.overlap[static_cast<size_t>(k)], 1e-6)
          << i << "," << k;
    }
  }
  for (int j = 0; j < a.num_targets(); ++j) {
    EXPECT_EQ(a.targets[static_cast<size_t>(j)].capacity_bytes,
              b.targets[static_cast<size_t>(j)].capacity_bytes);
    EXPECT_EQ(a.targets[static_cast<size_t>(j)].num_members,
              b.targets[static_cast<size_t>(j)].num_members);
  }
  EXPECT_EQ(a.constraints.allowed_targets, b.constraints.allowed_targets);
  EXPECT_EQ(a.constraints.separate, b.constraints.separate);
}

TEST(ProblemIoTest, FormatSanitizesSpacesInNames) {
  auto loaded = ParseProblemText(kSample);
  ASSERT_TRUE(loaded.ok());
  loaded->problem.object_names[0] = "TEMP SPACE";
  const std::string text = FormatProblemText(loaded->problem);
  EXPECT_EQ(text.find("TEMP SPACE"), std::string::npos);
  EXPECT_NE(text.find("TEMP_SPACE"), std::string::npos);
  EXPECT_TRUE(ParseProblemText(text).ok());
}

TEST(ProblemIoTest, ParsesAutopilotDirective) {
  std::string text(kSample);
  text += "autopilot interval=1; threshold=0.4,trip=3, cooldown=10\n";
  auto loaded = ParseProblemText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_autopilot);
  EXPECT_DOUBLE_EQ(loaded->autopilot.check_interval_s, 1.0);
  EXPECT_DOUBLE_EQ(loaded->autopilot.drift.threshold, 0.4);
  EXPECT_EQ(loaded->autopilot.drift.trip_evaluations, 3);
  EXPECT_DOUBLE_EQ(loaded->autopilot.drift.cooldown_s, 10.0);
  // Absent directive leaves the flag unset.
  auto plain = ParseProblemText(kSample);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_autopilot);
}

TEST(ProblemIoTest, AutopilotDirectiveErrorsAreLineAndClauseIndexed) {
  auto bad = ParseProblemText(std::string(kSample) +
                              "autopilot interval=1;threshold=0\n");
  ASSERT_FALSE(bad.ok());
  // The outer parser prefixes the line, the spec parser the clause.
  EXPECT_NE(bad.status().message().find("line 15"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("clause 2"), std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("threshold"), std::string::npos);

  EXPECT_FALSE(ParseProblemText(std::string(kSample) + "autopilot\n").ok());
  EXPECT_FALSE(
      ParseProblemText(std::string(kSample) + "autopilot threshold=-1\n")
          .ok());
  EXPECT_FALSE(
      ParseProblemText(std::string(kSample) + "autopilot bogus=1\n").ok());
}

TEST(ProblemIoTest, ParsesFaultsDirective) {
  std::string text(kSample);
  text += "faults t=1,target=0,member=0,kind=fail; t=2,target=1,kind=limp, "
          "scale=0.5\n";
  auto loaded = ParseProblemText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->has_faults);
  EXPECT_EQ(loaded->faults.faults.size(), 2u);
  // Absent directive leaves the flag unset.
  auto plain = ParseProblemText(kSample);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_faults);
  // Fault-spec errors surface with the problem file's line prefix.
  auto bad = ParseProblemText(std::string(kSample) + "faults kind=bogus\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 15"), std::string::npos)
      << bad.status().ToString();
  EXPECT_FALSE(ParseProblemText(std::string(kSample) + "faults\n").ok());
}

// Satellite: the once-only directives must compose in either order and
// reject duplicates with the first occurrence's line as context.
TEST(ProblemIoTest, AutopilotAndFaultsComposeInEitherOrder) {
  const std::string ap = "autopilot interval=1;threshold=0.4\n";
  const std::string fp = "faults t=1,target=0,member=0,kind=fail\n";
  for (const std::string& tail : {ap + fp, fp + ap}) {
    auto loaded = ParseProblemText(std::string(kSample) + tail);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded->has_autopilot);
    EXPECT_TRUE(loaded->has_faults);
    EXPECT_DOUBLE_EQ(loaded->autopilot.drift.threshold, 0.4);
    EXPECT_EQ(loaded->faults.faults.size(), 1u);
  }
}

TEST(ProblemIoTest, DuplicateDirectivesNameTheFirstOccurrence) {
  auto dup_ap = ParseProblemText(std::string(kSample) +
                                 "autopilot threshold=0.4\n"
                                 "faults t=1,target=0,kind=limp,scale=0.5\n"
                                 "autopilot threshold=0.5\n");
  ASSERT_FALSE(dup_ap.ok());
  EXPECT_NE(dup_ap.status().message().find(
                "duplicate autopilot directive (first at line 15)"),
            std::string::npos)
      << dup_ap.status().ToString();
  EXPECT_NE(dup_ap.status().message().find("line 17"), std::string::npos);

  auto dup_fp = ParseProblemText(std::string(kSample) +
                                 "faults t=1,target=0,kind=limp,scale=0.5\n"
                                 "faults t=2,target=1,kind=limp,scale=0.5\n");
  ASSERT_FALSE(dup_fp.ok());
  EXPECT_NE(dup_fp.status().message().find(
                "duplicate faults directive (first at line 15)"),
            std::string::npos)
      << dup_fp.status().ToString();
}

TEST(ProblemIoTest, ScenarioDirectiveAccumulatesAcrossLines) {
  std::string text(kSample);
  text += "scenario duration=30;seed=9\n";
  text += "scenario tenant=front,objects=0:1,rate=40,write=0.25\n";
  text += "scenario tenant=back,objects=1:2,rate=5,arrive=10\n";
  text += "scenario flash=front,at=12,for=3,x=20\n";
  auto loaded = ParseProblemText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_scenario);
  EXPECT_DOUBLE_EQ(loaded->scenario.duration_s, 30.0);
  EXPECT_EQ(loaded->scenario.seed, 9u);
  ASSERT_EQ(loaded->scenario.tenants.size(), 2u);
  EXPECT_EQ(loaded->scenario.tenants[1].name, "back");
  ASSERT_EQ(loaded->scenario.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->scenario.phases[0].multiplier, 20.0);
}

TEST(ProblemIoTest, ScenarioErrorsCarryContext) {
  // Clause-indexed spec errors pass through with the directive's first
  // line attached.
  auto bad = ParseProblemText(std::string(kSample) +
                              "scenario duration=10\n"
                              "scenario tenant=a,objects=0:2,rate=frog\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("scenario directive (line 15)"),
            std::string::npos)
      << bad.status().ToString();
  EXPECT_NE(bad.status().message().find("clause 2"), std::string::npos);

  // Object ranges are validated against the declared objects (kSample has
  // two).
  auto range = ParseProblemText(
      std::string(kSample) + "scenario duration=10;tenant=a,objects=0:5,rate=1\n");
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.status().message().find("exceeds catalog size 2"),
            std::string::npos)
      << range.status().ToString();

  EXPECT_FALSE(ParseProblemText(std::string(kSample) + "scenario\n").ok());
}

TEST(ProblemIoTest, FormatLoadedProblemRoundTripsDirectives) {
  std::string text(kSample);
  text += "autopilot interval=1;threshold=0.4,sustain=0.7,sustain_s=60\n";
  text += "faults t=1,target=0,member=0,kind=fail\n";
  text += "scenario duration=30;tenant=front,objects=0:2,rate=40\n";
  auto loaded = ParseProblemText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const std::string rendered = FormatProblemText(*loaded);
  auto again = ParseProblemText(rendered);
  ASSERT_TRUE(again.ok()) << rendered << "\n" << again.status().ToString();
  EXPECT_TRUE(again->has_autopilot);
  EXPECT_TRUE(again->has_faults);
  EXPECT_TRUE(again->has_scenario);
  EXPECT_DOUBLE_EQ(again->autopilot.drift.sustained_ratio, 0.7);
  EXPECT_EQ(again->faults.faults.size(), 1u);
  EXPECT_DOUBLE_EQ(again->scenario.duration_s, 30.0);
  EXPECT_EQ(ScenarioToString(again->scenario),
            ScenarioToString(loaded->scenario));
}

}  // namespace
}  // namespace ldb
