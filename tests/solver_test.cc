#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "solver/layout_nlp.h"
#include "solver/multistart.h"
#include "solver/projected_gradient.h"
#include "solver/randomized.h"
#include "solver/simplex.h"
#include "util/random.h"
#include "util/units.h"

namespace ldb {
namespace {

// --------------------------------------------------------------- Simplex

TEST(SimplexTest, AlreadyOnSimplexUnchanged) {
  double v[3] = {0.2, 0.5, 0.3};
  ProjectToSimplex(v, 3);
  EXPECT_NEAR(v[0], 0.2, 1e-12);
  EXPECT_NEAR(v[1], 0.5, 1e-12);
  EXPECT_NEAR(v[2], 0.3, 1e-12);
}

TEST(SimplexTest, ProjectionSumsToRadius) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> v(5);
    for (auto& x : v) x = rng.Uniform(-2, 2);
    ProjectToSimplex(v.data(), v.size());
    double sum = 0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SimplexTest, UniformShiftInvariance) {
  // Projection of v and v + c*1 are identical.
  double a[4] = {0.9, -0.3, 0.4, 0.1};
  double b[4] = {1.9, 0.7, 1.4, 1.1};
  ProjectToSimplex(a, 4);
  ProjectToSimplex(b, 4);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(SimplexTest, DominantCoordinateWins) {
  double v[3] = {10.0, 0.0, 0.0};
  ProjectToSimplex(v, 3);
  EXPECT_NEAR(v[0], 1.0, 1e-12);
  EXPECT_NEAR(v[1], 0.0, 1e-12);
}

TEST(SimplexTest, ScaledRadius) {
  double v[2] = {3.0, 1.0};
  ProjectToSimplex(v, 2, 2.0);
  EXPECT_NEAR(v[0] + v[1], 2.0, 1e-12);
  EXPECT_GT(v[0], v[1]);
}

TEST(SimplexTest, ProjectionIsIdempotent) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(6), w;
    for (auto& x : v) x = rng.Uniform(-1, 3);
    ProjectToSimplex(v.data(), v.size());
    w = v;
    ProjectToSimplex(w.data(), w.size());
    for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(w[i], v[i], 1e-9);
  }
}

// -------------------------------------------------------------- SmoothMax

TEST(SmoothMaxTest, UpperBoundsMaxAndConverges) {
  const double v[3] = {0.2, 0.9, 0.5};
  EXPECT_GE(SmoothMax(v, 3, 10), 0.9);
  EXPECT_LE(SmoothMax(v, 3, 10), 0.9 + std::log(3.0) / 10);
  EXPECT_NEAR(SmoothMax(v, 3, 1000), 0.9, 1e-2);
  EXPECT_LT(SmoothMax(v, 3, 1000), SmoothMax(v, 3, 10));
}

TEST(SmoothMaxTest, StableForLargeValues) {
  const double v[2] = {1e6, 1e6 - 1};
  const double s = SmoothMax(v, 2, 50);
  EXPECT_TRUE(std::isfinite(s));
  EXPECT_NEAR(s, 1e6, 0.1);
}

// ---------------------------------------------------------------- Solver

/// Analytic toy problem: µ_j = (weighted load on target j) / speed_j, no
/// interference. The optimum spreads load proportionally to speed.
LayoutNlpProblem MakeLinearProblem(std::vector<double> rates,
                                   std::vector<double> speeds,
                                   std::vector<int64_t> sizes = {},
                                   std::vector<int64_t> caps = {}) {
  LayoutNlpProblem p;
  p.num_objects = static_cast<int>(rates.size());
  p.num_targets = static_cast<int>(speeds.size());
  p.object_sizes =
      sizes.empty() ? std::vector<int64_t>(rates.size(), kGiB) : sizes;
  p.target_capacities =
      caps.empty() ? std::vector<int64_t>(speeds.size(), 100 * kGiB) : caps;
  p.target_utilization = [rates, speeds](const Layout& l, int j) {
    double load = 0;
    for (int i = 0; i < l.num_objects(); ++i) {
      load += rates[static_cast<size_t>(i)] * l.At(i, j);
    }
    return load / speeds[static_cast<size_t>(j)];
  };
  return p;
}

TEST(SolverTest, RejectsMalformedProblems) {
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({1, 2}, {1, 1});
  Layout init = Layout::StripeEverythingEverywhere(2, 2);
  p.target_utilization = nullptr;
  EXPECT_FALSE(solver.Solve(p, init).ok());
  p = MakeLinearProblem({1, 2}, {1, 1});
  EXPECT_FALSE(
      solver.Solve(p, Layout::StripeEverythingEverywhere(3, 2)).ok());
  p.object_sizes[0] = 0;
  EXPECT_FALSE(solver.Solve(p, init).ok());
}

TEST(SolverTest, BalancesEqualObjectsOnEqualTargets) {
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({10, 10}, {1, 1});
  // Seed everything on target 0: max µ = 20.
  Layout init(2, 2);
  init.SetRowRegular(0, {0});
  init.SetRowRegular(1, {0});
  auto r = solver.Solve(p, init);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feasible);
  // Optimal max utilization is 10 (perfect balance).
  EXPECT_NEAR(r->max_utilization, 10.0, 0.3);
}

TEST(SolverTest, FasterTargetGetsMoreLoad) {
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({12}, {1, 3});
  Layout init = Layout::StripeEverythingEverywhere(1, 2);
  auto r = solver.Solve(p, init);
  ASSERT_TRUE(r.ok());
  // Optimum: L = (1/4, 3/4), max µ = 3.
  EXPECT_NEAR(r->max_utilization, 3.0, 0.15);
  EXPECT_GT(r->layout.At(0, 1), 2 * r->layout.At(0, 0));
}

TEST(SolverTest, ImprovesOnUnbalancedSeed) {
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({8, 4, 2, 1}, {1, 1, 1});
  Layout init(4, 3);
  for (int i = 0; i < 4; ++i) init.SetRowRegular(i, {0});
  const double seed_mu = 15.0;  // all on target 0
  auto r = solver.Solve(p, init);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->max_utilization, seed_mu / 2);
  EXPECT_NEAR(r->max_utilization, 5.0, 0.5);  // perfect balance = 5
  EXPECT_GT(r->iterations, 0);
  EXPECT_GT(r->objective_evaluations, 0);
}

TEST(SolverTest, RespectsCapacityConstraints) {
  // Two objects of 10 GiB each; target 0 can hold only 5 GiB total but is
  // much faster. Load balance wants everything on 0; capacity forbids it.
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem(
      {10, 10}, {10, 1}, {10 * kGiB, 10 * kGiB}, {5 * kGiB, 40 * kGiB});
  Layout init = Layout::StripeEverythingEverywhere(2, 2);
  auto r = solver.Solve(p, init);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feasible);
  EXPECT_TRUE(
      r->layout.SatisfiesCapacity(p.object_sizes, p.target_capacities));
  // At most 5 GiB (25% of the 20 GiB total) fits on the fast target.
  const double on_fast = r->layout.At(0, 0) + r->layout.At(1, 0);
  EXPECT_LE(on_fast, 0.5 + 1e-6);
  EXPECT_GT(on_fast, 0.3);  // ...but the solver should use what it can
}

TEST(SolverTest, SolutionRowsStayOnSimplex) {
  ProjectedGradientSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({5, 3, 2}, {1, 2});
  Rng rng(5);
  auto seeds = MultiStartSolver::RandomSeeds(p, 3, &rng);
  for (const Layout& seed : seeds) {
    auto r = solver.Solve(p, seed);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->layout.SatisfiesIntegrity(1e-6));
  }
}

TEST(SolverTest, InterferenceAwareObjectiveSeparatesObjects) {
  // µ_j = Σ load + quadratic interaction between co-located objects 0,1.
  LayoutNlpProblem p;
  p.num_objects = 2;
  p.num_targets = 2;
  p.object_sizes = {kGiB, kGiB};
  p.target_capacities = {10 * kGiB, 10 * kGiB};
  p.target_utilization = [](const Layout& l, int j) {
    const double a = l.At(0, j), b = l.At(1, j);
    return 0.3 * (a + b) + 2.0 * a * b;  // heavy interference term
  };
  ProjectedGradientSolver solver;
  // SEE is a symmetric saddle of this objective — the same trap the paper
  // reports for MINOS (Section 4.2), and why its advisor seeds the solver
  // with an asymmetric heuristic layout instead. Seed slightly off-balance.
  Layout seed(2, 2);
  seed.Set(0, 0, 0.6);
  seed.Set(0, 1, 0.4);
  seed.Set(1, 0, 0.4);
  seed.Set(1, 1, 0.6);
  auto r = solver.Solve(p, seed);
  ASSERT_TRUE(r.ok());
  // SEE gives µ = 0.3 + 0.5 = 0.8 on both targets; full separation gives
  // µ = 0.3. The solver must discover the separation.
  EXPECT_LT(r->max_utilization, 0.35);
  const double co0 = r->layout.At(0, 0) * r->layout.At(1, 0);
  const double co1 = r->layout.At(0, 1) * r->layout.At(1, 1);
  EXPECT_LT(co0 + co1, 0.05);
}

// ------------------------------------------------------------- MultiStart

TEST(MultiStartTest, RequiresSeeds) {
  MultiStartSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({1}, {1});
  EXPECT_FALSE(solver.Solve(p, {}).ok());
}

TEST(MultiStartTest, PicksBestOfSeeds) {
  MultiStartSolver ms;
  // Non-convex-ish: interference makes "together" a local optimum trap when
  // seeded together.
  LayoutNlpProblem p = MakeLinearProblem({6, 6}, {1, 1});
  Layout bad(2, 2), good(2, 2);
  bad.SetRowRegular(0, {0});
  bad.SetRowRegular(1, {0});
  good.SetRowRegular(0, {0});
  good.SetRowRegular(1, {1});
  auto r = ms.Solve(p, {bad, good});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->max_utilization, 6.0, 0.3);
}

TEST(MultiStartTest, AccumulatesEffortCounters) {
  MultiStartSolver ms;
  LayoutNlpProblem p = MakeLinearProblem({3, 2}, {1, 1});
  Layout a = Layout::StripeEverythingEverywhere(2, 2);
  ProjectedGradientSolver single;
  auto one = single.Solve(p, a);
  auto two = ms.Solve(p, {a, a});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());
  EXPECT_GE(two->objective_evaluations, 2 * one->objective_evaluations);
}

TEST(MultiStartTest, RandomSeedsAreValidSimplexRows) {
  LayoutNlpProblem p = MakeLinearProblem({1, 2, 3}, {1, 1, 1, 1});
  Rng rng(9);
  auto seeds = MultiStartSolver::RandomSeeds(p, 5, &rng);
  EXPECT_EQ(seeds.size(), 5u);
  for (const Layout& l : seeds) {
    EXPECT_EQ(l.num_objects(), 3);
    EXPECT_EQ(l.num_targets(), 4);
    EXPECT_TRUE(l.SatisfiesIntegrity(1e-9));
  }
}


// --------------------------------------------------- RandomizedSearch

TEST(RandomizedSearchTest, RejectsBadInputs) {
  RandomizedSearchSolver solver;
  LayoutNlpProblem p = MakeLinearProblem({1, 2}, {1, 1});
  Layout nonregular(2, 2);
  nonregular.Set(0, 0, 0.3);
  nonregular.Set(0, 1, 0.7);
  nonregular.SetRowRegular(1, {0});
  EXPECT_FALSE(solver.Solve(p, nonregular).ok());
  RandomizedSearchOptions bad;
  bad.iterations = 0;
  EXPECT_FALSE(RandomizedSearchSolver(bad)
                   .Solve(p, Layout::StripeEverythingEverywhere(2, 2))
                   .ok());
}

TEST(RandomizedSearchTest, ImprovesOnUnbalancedSeedAndStaysRegular) {
  LayoutNlpProblem p = MakeLinearProblem({8, 4, 2, 1}, {1, 1, 1});
  Layout seed(4, 3);
  for (int i = 0; i < 4; ++i) seed.SetRowRegular(i, {0});
  RandomizedSearchSolver solver;
  auto r = solver.Solve(p, seed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feasible);
  EXPECT_TRUE(r->layout.IsRegular(1e-9));
  EXPECT_LT(r->max_utilization, 15.0 / 2);      // beats the all-on-one seed
  EXPECT_NEAR(r->max_utilization, 5.0, 0.6);    // near-balanced optimum
}

TEST(RandomizedSearchTest, EscapesSeeSaddleUnlikeGradient) {
  // The interference objective whose SEE point traps the gradient solver
  // (symmetric saddle): random moves break the symmetry immediately.
  LayoutNlpProblem p;
  p.num_objects = 2;
  p.num_targets = 2;
  p.object_sizes = {kGiB, kGiB};
  p.target_capacities = {10 * kGiB, 10 * kGiB};
  p.target_utilization = [](const Layout& l, int j) {
    const double a = l.At(0, j), b = l.At(1, j);
    return 0.3 * (a + b) + 2.0 * a * b;
  };
  RandomizedSearchSolver solver;
  auto r = solver.Solve(p, Layout::StripeEverythingEverywhere(2, 2));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->max_utilization, 0.35);  // full separation found
}

TEST(RandomizedSearchTest, HonorsConstraints) {
  LayoutNlpProblem p = MakeLinearProblem({5, 5, 2}, {1, 1, 1});
  p.constraints.allowed_targets = {{0, 1}, {}, {2}};
  p.constraints.separate = {{0, 1}};
  Layout seed(3, 3);
  seed.SetRowRegular(0, {0});
  seed.SetRowRegular(1, {1});
  seed.SetRowRegular(2, {2});
  RandomizedSearchSolver solver;
  auto r = solver.Solve(p, seed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->feasible);
  EXPECT_TRUE(p.constraints.SatisfiedBy(r->layout));
}

TEST(RandomizedSearchTest, DeterministicForEqualSeeds) {
  LayoutNlpProblem p = MakeLinearProblem({6, 3, 2, 1}, {1, 2});
  Layout seed = Layout::StripeEverythingEverywhere(4, 2);
  RandomizedSearchOptions opts;
  opts.seed = 77;
  auto a = RandomizedSearchSolver(opts).Solve(p, seed);
  auto b = RandomizedSearchSolver(opts).Solve(p, seed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->max_utilization, b->max_utilization);
  EXPECT_TRUE(a->layout == b->layout);
}

}  // namespace
}  // namespace ldb
