// Durable control plane: the crash-matrix property suite. For every crash
// point — after each appended journal record, and at torn-write offsets
// inside the crashing record — killing the process, recovering the
// journal, and completing the migration must be indistinguishable (by
// StateFingerprint and CheckReadable) from an uninterrupted run. Includes
// a second crash during the recovery run, power-loss fsync drops, plan-
// and problem-digest binding, and the autopilot checkpoint/intent
// resolution rules.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/harness.h"
#include "core/journal.h"
#include "core/migrate.h"
#include "model/layout.h"
#include "model/workload.h"
#include "storage/disk.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/check.h"
#include "util/units.h"
#include "util/wal.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::unique_ptr<StorageSystem> MakeSystem3(const DiskModel& proto) {
  std::vector<TargetSpec> specs{
      {"d0", &proto, 1, 64 * kKiB},
      {"d1", &proto, 1, 64 * kKiB},
      {"d2", &proto, 1, 64 * kKiB},
  };
  return std::make_unique<StorageSystem>(specs);
}

StripedVolumeManager MakeVolumes(const StorageSystem& sys,
                                 std::vector<int64_t> sizes,
                                 std::vector<std::vector<int>> placements) {
  auto v = StripedVolumeManager::Create(std::move(sizes),
                                        std::move(placements),
                                        sys.capacities(), 64 * kKiB);
  LDB_CHECK(v.ok());
  return std::move(v).value();
}

// The matrix's one migration: two objects move, one stays, 7 chunks.
struct Rig {
  std::vector<int64_t> sizes{4 * kMiB + 100 * kKiB, 2 * kMiB, kMiB};
  std::vector<std::vector<int>> from{{0}, {0, 1}, {2}};
  std::vector<std::vector<int>> to{{1}, {2}, {2}};
  DiskModel proto;
  std::unique_ptr<StorageSystem> sys;
  StripedVolumeManager src;
  StripedVolumeManager dst;

  Rig()
      : proto(Scsi15kParams()),
        sys(MakeSystem3(proto)),
        src(MakeVolumes(*sys, sizes, from)),
        dst(MakeVolumes(*sys, sizes, to)) {}

  MigrateOptions Options() const {
    MigrateOptions o;
    o.chunk_bytes = kMiB;
    return o;
  }

  uint64_t Digest() const {
    return MigrationPlanDigest(sizes, from, to, Options().chunk_bytes);
  }
};

// Runs a fresh journaled migration that crashes per `policy`; returns the
// executor's journal-failure state. The journal file persists at `path`.
void RunUntilCrash(const std::string& path, const WalCrashPolicy& policy,
                   bool* crashed) {
  Rig rig;
  auto journal = ControlJournal::Open(path, policy);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  const Status bind = (*journal)->AppendPlanBinding(rig.Digest());
  if (!bind.ok()) {
    ASSERT_TRUE((*journal)->crashed());
    *crashed = true;
    return;
  }
  auto exec =
      MigrationExecutor::Create(rig.sys.get(), &rig.src, &rig.dst,
                                rig.Options());
  ASSERT_TRUE(exec.ok());
  (*exec)->set_journal_sink(journal->get());
  (*exec)->Start();
  rig.sys->queue().RunUntilIdle();
  *crashed = (*exec)->journal_failed();
  if (*crashed) {
    // Frozen, not broken: the executor stopped mid-flight but still
    // serves every byte from its last consistent state.
    EXPECT_NE((*exec)->outcome(), MigrationOutcome::kCompleted);
    EXPECT_TRUE((*exec)->CheckReadable().ok());
  } else {
    EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
  }
}

// Recovers `path` and runs the migration to completion (no crash policy),
// returning the final fingerprint.
std::string RecoverAndComplete(const std::string& path) {
  Rig rig;
  auto recovered = RecoverMigrationJournal(path, rig.Digest());
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return "recover-failed";
  auto journal = ControlJournal::Open(path);
  EXPECT_TRUE(journal.ok());
  auto exec = MigrationExecutor::Resume(rig.sys.get(), &rig.src, &rig.dst,
                                        rig.Options(), *recovered);
  EXPECT_TRUE(exec.ok()) << exec.status().ToString();
  if (!exec.ok()) return "resume-failed";
  (*exec)->set_journal_sink(journal->get());
  (*exec)->Start();
  rig.sys->queue().RunUntilIdle();
  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
  EXPECT_TRUE((*exec)->CheckReadable().ok());
  return (*exec)->StateFingerprint();
}

// The uninterrupted run every crashed-and-recovered run must match.
std::string ReferenceFingerprint(int64_t* records_total) {
  const std::string path = TmpPath("journal_reference.wal");
  std::remove(path.c_str());
  Rig rig;
  auto journal = ControlJournal::Open(path);
  LDB_CHECK(journal.ok());
  LDB_CHECK((*journal)->AppendPlanBinding(rig.Digest()).ok());
  auto exec = MigrationExecutor::Create(rig.sys.get(), &rig.src, &rig.dst,
                                        rig.Options());
  LDB_CHECK(exec.ok());
  (*exec)->set_journal_sink(journal->get());
  (*exec)->Start();
  rig.sys->queue().RunUntilIdle();
  LDB_CHECK((*exec)->outcome() == MigrationOutcome::kCompleted);
  *records_total = (*journal)->records_total();
  return (*exec)->StateFingerprint();
}

// ------------------------------------------------------------ crash matrix

// Crash after every prefix of appended records; recover; complete; equal.
TEST(JournalCrashMatrixTest, EveryCrashPointRecoversToReferenceState) {
  int64_t total = 0;
  const std::string want = ReferenceFingerprint(&total);
  ASSERT_GT(total, 10);  // the matrix is only meaningful with real depth

  const std::string path = TmpPath("journal_matrix.wal");
  for (int64_t n = 1; n < total; ++n) {
    std::remove(path.c_str());
    WalCrashPolicy policy;
    policy.fail_after_appends = n;
    bool crashed = false;
    RunUntilCrash(path, policy, &crashed);
    ASSERT_TRUE(crashed) << "crash point " << n << " never fired";
    EXPECT_EQ(RecoverAndComplete(path), want) << "crash point " << n;
  }
}

// Same matrix at torn-write offsets inside the crashing record: the torn
// frame must be truncated on recovery, then complete as before.
TEST(JournalCrashMatrixTest, TornWritesInsideTheCrashingRecordRecover) {
  int64_t total = 0;
  const std::string want = ReferenceFingerprint(&total);
  const std::string path = TmpPath("journal_torn.wal");
  for (int64_t n : {int64_t{1}, int64_t{2}, total / 2, total - 2}) {
    for (int64_t torn : {int64_t{1}, int64_t{4}, int64_t{9}, int64_t{12}}) {
      std::remove(path.c_str());
      WalCrashPolicy policy;
      policy.fail_after_appends = n;
      policy.torn_bytes = torn;
      bool crashed = false;
      RunUntilCrash(path, policy, &crashed);
      ASSERT_TRUE(crashed) << "n=" << n << " torn=" << torn;
      auto raw = ReadWalRecords(path);
      ASSERT_TRUE(raw.ok());
      EXPECT_TRUE(raw->torn_tail) << "n=" << n << " torn=" << torn;
      EXPECT_EQ(RecoverAndComplete(path), want)
          << "n=" << n << " torn=" << torn;
    }
  }
}

// A second crash during the recovery run must recover too.
TEST(JournalCrashMatrixTest, DoubleCrashStillConvergesToReferenceState) {
  int64_t total = 0;
  const std::string want = ReferenceFingerprint(&total);
  const std::string path = TmpPath("journal_double.wal");
  for (int64_t first : {int64_t{3}, total / 2}) {
    for (int64_t second : {int64_t{1}, int64_t{4}}) {
      std::remove(path.c_str());
      WalCrashPolicy policy;
      policy.fail_after_appends = first;
      bool crashed = false;
      RunUntilCrash(path, policy, &crashed);
      ASSERT_TRUE(crashed);

      // Recovery attempt #1 also dies, `second` records in.
      {
        Rig rig;
        auto recovered = RecoverMigrationJournal(path, rig.Digest());
        ASSERT_TRUE(recovered.ok());
        WalCrashPolicy again;
        again.fail_after_appends = second;
        again.torn_bytes = second % 2 == 0 ? 5 : -1;
        auto journal = ControlJournal::Open(path, again);
        ASSERT_TRUE(journal.ok());
        auto exec = MigrationExecutor::Resume(rig.sys.get(), &rig.src,
                                              &rig.dst, rig.Options(),
                                              *recovered);
        ASSERT_TRUE(exec.ok());
        (*exec)->set_journal_sink(journal->get());
        (*exec)->Start();
        rig.sys->queue().RunUntilIdle();
        ASSERT_TRUE((*exec)->journal_failed());
        EXPECT_TRUE((*exec)->CheckReadable().ok());
      }

      // Recovery attempt #2 completes and must match the reference.
      EXPECT_EQ(RecoverAndComplete(path), want)
          << "first=" << first << " second=" << second;
    }
  }
}

// Power loss instead of process death: fsyncs past the S-th never reached
// media, so the crash rolls the file back to the last effective barrier.
// The lost batched records only cost idempotent re-copies.
TEST(JournalCrashMatrixTest, DroppedFsyncsLoseOnlyRecopiableWork) {
  int64_t total = 0;
  const std::string want = ReferenceFingerprint(&total);
  const std::string path = TmpPath("journal_powerloss.wal");
  for (int64_t syncs : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    std::remove(path.c_str());
    WalCrashPolicy policy;
    policy.fail_after_appends = total / 2;
    policy.drop_syncs_after = syncs;
    bool crashed = false;
    RunUntilCrash(path, policy, &crashed);
    ASSERT_TRUE(crashed) << "syncs=" << syncs;
    auto raw = ReadWalRecords(path);
    ASSERT_TRUE(raw.ok()) << "syncs=" << syncs;
    EXPECT_LT(static_cast<int64_t>(raw->records.size()), total / 2 + 1)
        << "syncs=" << syncs;
    EXPECT_EQ(RecoverAndComplete(path), want) << "syncs=" << syncs;
  }
}

// ------------------------------------------------------------- bindings

TEST(JournalTest, RecoveryRefusesAForeignPlanDigest) {
  const std::string path = TmpPath("journal_foreign_plan.wal");
  std::remove(path.c_str());
  WalCrashPolicy policy;
  policy.fail_after_appends = 5;
  bool crashed = false;
  RunUntilCrash(path, policy, &crashed);
  ASSERT_TRUE(crashed);

  Rig rig;
  auto wrong = RecoverMigrationJournal(path, rig.Digest() ^ 1);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(RecoverMigrationJournal(path, rig.Digest()).ok());
}

TEST(JournalTest, RecoveryRefusesAJournalWithoutAPlanBinding) {
  const std::string path = TmpPath("journal_unbound.wal");
  std::remove(path.c_str());
  {
    auto journal = ControlJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    JournalRecord r;
    r.kind = JournalKind::kBeginMigration;
    r.object = -1;
    r.chunk = -1;
    ASSERT_TRUE((*journal)->Append(r).ok());
  }
  auto rec = RecoverMigrationJournal(path, 123);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.status().code(), StatusCode::kFailedPrecondition);
}

TEST(JournalTest, CorruptInteriorRecordIsAHardErrorNotAWrongJournal) {
  const std::string path = TmpPath("journal_interior.wal");
  std::remove(path.c_str());
  bool crashed = false;
  RunUntilCrash(path, WalCrashPolicy{}, &crashed);
  ASSERT_FALSE(crashed);

  // Flip one payload bit in an interior record.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x04, f);
  std::fclose(f);

  Rig rig;
  auto rec = RecoverMigrationJournal(path, rig.Digest());
  EXPECT_FALSE(rec.ok());
  EXPECT_FALSE(ControlJournal::Open(path).ok());
}

// ------------------------------------------- autopilot state resolution

WorkloadSet TwoWorkloads() {
  WorkloadSet ws(2);
  ws[0].read_rate = 120.5;
  ws[0].write_rate = 3.25;
  ws[0].read_size = 8192;
  ws[0].write_size = 4096;
  ws[0].run_count = 2.5;
  ws[0].overlap = {1.0, 0.125};
  ws[1].read_rate = 7.0;
  ws[1].overlap_index = {1};
  ws[1].overlap_value = {1.0};
  return ws;
}

void ExpectSameWorkloads(const WorkloadSet& a, const WorkloadSet& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].read_rate, b[i].read_rate);
    EXPECT_DOUBLE_EQ(a[i].write_rate, b[i].write_rate);
    EXPECT_DOUBLE_EQ(a[i].read_size, b[i].read_size);
    EXPECT_DOUBLE_EQ(a[i].write_size, b[i].write_size);
    EXPECT_DOUBLE_EQ(a[i].run_count, b[i].run_count);
    EXPECT_EQ(a[i].overlap, b[i].overlap);
    EXPECT_EQ(a[i].overlap_index, b[i].overlap_index);
    EXPECT_EQ(a[i].overlap_value, b[i].overlap_value);
  }
}

Layout SmallLayout(double w) {
  Layout l(2, 3);
  l.Set(0, 0, 1.0 - w);
  l.Set(0, 2, w);
  l.Set(1, 1, 1.0);
  return l;
}

TEST(JournalTest, CheckpointRoundTripsThroughRecovery) {
  const std::string path = TmpPath("journal_ckpt.wal");
  std::remove(path.c_str());
  const Layout layout = SmallLayout(0.25);
  const WorkloadSet ref = TwoWorkloads();
  {
    auto journal = ControlJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendProblemBinding(777).ok());
    ASSERT_TRUE((*journal)->AppendCheckpoint(12.5, layout, ref).ok());
  }
  auto rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->has_problem);
  EXPECT_EQ(rec->problem_digest, 777u);
  ASSERT_TRUE(rec->has_checkpoint);
  EXPECT_DOUBLE_EQ(rec->checkpoint_time, 12.5);
  EXPECT_EQ(rec->checkpoint_layout, layout);
  ExpectSameWorkloads(rec->checkpoint_reference, ref);

  Layout deployed(1, 1);
  WorkloadSet reference;
  ASSERT_TRUE(ResolveDeployedState(*rec, &deployed, &reference));
  EXPECT_EQ(deployed, layout);
  ExpectSameWorkloads(reference, ref);
}

// The resolution rules: a committed-but-uncheckpointed intent wins over
// the last checkpoint; an uncommitted intent is abandoned.
TEST(JournalTest, CommittedIntentWinsUncommittedIntentIsAbandoned) {
  const std::string path = TmpPath("journal_intent.wal");
  const Layout ckpt_layout = SmallLayout(0.0);
  const Layout intent_layout = SmallLayout(1.0);
  const WorkloadSet ref = TwoWorkloads();

  auto write = [&](bool committed) {
    std::remove(path.c_str());
    auto journal = ControlJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendCheckpoint(1.0, ckpt_layout, ref).ok());
    ASSERT_TRUE(
        (*journal)->AppendIntent(42, intent_layout, ref).ok());
    JournalRecord r;
    r.kind = JournalKind::kBeginMigration;
    r.object = -1;
    r.chunk = -1;
    ASSERT_TRUE((*journal)->Append(r).ok());
    if (committed) {
      r.kind = JournalKind::kCommitMigration;
      ASSERT_TRUE((*journal)->Append(r).ok());
    }
  };

  Layout deployed(1, 1);
  WorkloadSet reference;

  write(/*committed=*/true);
  auto rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->migration_committed);
  ASSERT_TRUE(ResolveDeployedState(*rec, &deployed, &reference));
  EXPECT_EQ(deployed, intent_layout);

  write(/*committed=*/false);
  rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->migration_committed);
  ASSERT_TRUE(ResolveDeployedState(*rec, &deployed, &reference));
  EXPECT_EQ(deployed, ckpt_layout);

  // No checkpoint, uncommitted intent: nothing durable to deploy.
  std::remove(path.c_str());
  {
    auto journal = ControlJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendIntent(42, intent_layout, ref).ok());
  }
  rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(ResolveDeployedState(*rec, &deployed, &reference));
}

// A checkpoint closes the migration segment: RecoverMigrationJournal must
// not see the previous migration's records after one.
TEST(JournalTest, CheckpointClosesTheMigrationSegment) {
  const std::string path = TmpPath("journal_segments.wal");
  std::remove(path.c_str());
  {
    auto journal = ControlJournal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->AppendPlanBinding(99).ok());
    JournalRecord r;
    r.kind = JournalKind::kBeginMigration;
    r.object = -1;
    r.chunk = -1;
    ASSERT_TRUE((*journal)->Append(r).ok());
    ASSERT_TRUE((*journal)
                    ->AppendCheckpoint(2.0, SmallLayout(0.5), TwoWorkloads())
                    .ok());
  }
  auto rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->has_plan);
  EXPECT_TRUE(rec->migration.empty());
  EXPECT_TRUE(rec->has_checkpoint);
  // And the plan binding no longer resolves for a resume.
  EXPECT_FALSE(RecoverMigrationJournal(path, 99).ok());
}

// --------------------------------------------- autopilot end-to-end rig

constexpr double kScale = 0.02;

const ExperimentRig& TriRig() {
  static const ExperimentRig* rig = [] {
    auto r = ExperimentRig::Create(Catalog::TpcC(kScale),
                                   {{"d0"}, {"d1"}, {"d2"}}, kScale, 3);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();
  return *rig;
}

WorkloadSet TokenReference(int n) {
  WorkloadSet ws(static_cast<size_t>(n));
  for (auto& w : ws) {
    w.read_rate = 1.0;
    w.read_size = 8 * 1024;
    w.run_count = 1.0;
    w.overlap.assign(static_cast<size_t>(n), 0.0);
  }
  return ws;
}

Layout PairedLayout(int n) {
  Layout l(n, 3);
  for (int i = 0; i < n; ++i) l.Set(i, i % 2, 1.0);
  return l;
}

AutopilotOptions DriftingOptions() {
  AutopilotOptions o;
  o.config.analyzer.half_life_s = 10.0;
  o.config.check_interval_s = 1.0;
  o.config.drift.threshold = 0.3;
  o.config.drift.trip_evaluations = 1;
  o.config.drift.cooldown_s = 5.0;
  o.config.gate_min_gain = 0.0;
  o.config.gate_horizon_s = 1e9;
  o.config.gate_fallback_bandwidth = 1e12;
  return o;
}

bool SameLayout(const Layout& a, const Layout& b) {
  if (a.num_objects() != b.num_objects() ||
      a.num_targets() != b.num_targets()) {
    return false;
  }
  for (int i = 0; i < a.num_objects(); ++i) {
    for (int j = 0; j < a.num_targets(); ++j) {
      if (a.At(i, j) != b.At(i, j)) return false;
    }
  }
  return true;
}

// An adopted layout survives the process: the journal checkpoints it, and
// a resumed run deploys it instead of the caller's initial layout.
TEST(JournalAutopilotTest, AdoptedLayoutIsCheckpointedAndRedeployed) {
  const ExperimentRig& rig = TriRig();
  auto oltp = MakeOltpSpec(rig.catalog());
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const Layout paired = PairedLayout(n);
  const std::string path = TmpPath("journal_autopilot.wal");
  std::remove(path.c_str());

  AutopilotOptions options = DriftingOptions();
  options.journal_path = path;
  auto ap = rig.ExecuteWithAutopilot(paired, TokenReference(n), nullptr,
                                     &*oltp, FaultPlan{}, options, 40.0);
  ASSERT_TRUE(ap.ok()) << ap.status().ToString();
  ASSERT_GE(ap->migrations_completed, 1);
  EXPECT_FALSE(ap->journal_crashed);
  EXPECT_GT(ap->journal_records, 0);
  EXPECT_GT(ap->journal_bytes, 0);
  EXPECT_FALSE(ap->resumed_from_journal);

  auto rec = RecoverControlState(path);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  ASSERT_TRUE(rec->has_checkpoint);
  EXPECT_TRUE(SameLayout(rec->checkpoint_layout, ap->final_layout));

  // Restarted process: --resume deploys the checkpointed layout.
  options.resume = true;
  // High threshold so the resumed run exposes the deployed layout rather
  // than immediately re-migrating.
  options.config.drift.threshold = 1e9;
  auto resumed = rig.ExecuteWithAutopilot(paired, TokenReference(n), nullptr,
                                          &*oltp, FaultPlan{}, options, 5.0);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->resumed_from_journal);
  EXPECT_TRUE(SameLayout(resumed->initial_layout, ap->final_layout));
  EXPECT_FALSE(SameLayout(resumed->initial_layout, paired));
}

// A journal crash freezes the control plane instead of killing the run:
// the foreground finishes, no further migrations start, and the durable
// state on disk is still recoverable.
TEST(JournalAutopilotTest, JournalCrashFreezesTheControlPlane) {
  const ExperimentRig& rig = TriRig();
  auto oltp = MakeOltpSpec(rig.catalog());
  ASSERT_TRUE(oltp.ok());
  const int n = rig.catalog().num_objects();
  const std::string path = TmpPath("journal_autopilot_crash.wal");
  std::remove(path.c_str());

  AutopilotOptions options = DriftingOptions();
  options.journal_path = path;
  options.journal_crash.fail_after_appends = 1;  // dies binding the intent
  auto ap = rig.ExecuteWithAutopilot(PairedLayout(n), TokenReference(n),
                                     nullptr, &*oltp, FaultPlan{}, options,
                                     20.0);
  ASSERT_TRUE(ap.ok()) << ap.status().ToString();
  EXPECT_TRUE(ap->journal_crashed);
  EXPECT_EQ(ap->migrations_completed, 0);
  EXPECT_GT(ap->run.oltp_transactions, 0u);

  // What did land on disk parses cleanly.
  EXPECT_TRUE(RecoverControlState(path).ok());
}

}  // namespace
}  // namespace ldb
