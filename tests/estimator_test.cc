#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/harness.h"
#include "workload/catalog.h"
#include "workload/estimator.h"
#include "workload/spec.h"

namespace ldb {
namespace {

TEST(EstimatorTest, RejectsBadInputs) {
  Catalog cat = Catalog::TpcH(0.05);
  EXPECT_FALSE(EstimateWorkloads(cat, nullptr, nullptr).ok());
  OlapSpec empty;
  EXPECT_FALSE(EstimateWorkloads(cat, &empty, nullptr).ok());
  auto olap = MakeOlapSpec(cat, 1, 1, 7);
  ASSERT_TRUE(olap.ok());
  EstimatorOptions bad;
  bad.nominal_bytes_per_second = 0;
  EXPECT_FALSE(EstimateWorkloads(cat, &*olap, nullptr, bad).ok());
}

TEST(EstimatorTest, ProducesValidWorkloads) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap = MakeOlapSpec(cat, 3, 1, 7);
  ASSERT_TRUE(olap.ok());
  auto ws = EstimateWorkloads(cat, &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  ASSERT_EQ(ws->size(), static_cast<size_t>(cat.num_objects()));
  for (size_t i = 0; i < ws->size(); ++i) {
    EXPECT_TRUE(IsValidWorkload((*ws)[i], ws->size(), i));
  }
}

TEST(EstimatorTest, RateOrderingMatchesVolumeOrdering) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap = MakeOlapSpec(cat, 3, 1, 7);
  ASSERT_TRUE(olap.ok());
  auto ws = EstimateWorkloads(cat, &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  auto rate = [&](const char* name) {
    return (*ws)[static_cast<size_t>(*cat.Find(name))].total_rate();
  };
  EXPECT_GT(rate("LINEITEM"), rate("ORDERS"));
  EXPECT_GT(rate("ORDERS"), rate("PARTSUPP"));
  EXPECT_GT(rate("LINEITEM"), 0.0);
  // NATION never appears in the profiles.
  EXPECT_DOUBLE_EQ(rate("NATION"), 0.0);
}

TEST(EstimatorTest, SequentialScansGetHighRunCounts) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap = MakeOlapSpec(cat, 3, 1, 7);
  ASSERT_TRUE(olap.ok());
  auto ws = EstimateWorkloads(cat, &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  const double li_run =
      (*ws)[static_cast<size_t>(*cat.Find("LINEITEM"))].run_count;
  EXPECT_GT(li_run, 20.0);
  // ORDERS_PKEY is dominated by random probes.
  const double pkey_run =
      (*ws)[static_cast<size_t>(*cat.Find("ORDERS_PKEY"))].run_count;
  EXPECT_LT(pkey_run, li_run / 4);
}

TEST(EstimatorTest, CoScannedObjectsOverlap) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap = MakeOlapSpec(cat, 3, 1, 7);
  ASSERT_TRUE(olap.ok());
  auto ws = EstimateWorkloads(cat, &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  const ObjectId li = *cat.Find("LINEITEM");
  const ObjectId ord = *cat.Find("ORDERS");
  const ObjectId nation = *cat.Find("NATION");
  // LINEITEM and ORDERS are joined in many queries.
  EXPECT_GT((*ws)[static_cast<size_t>(ord)].overlap[static_cast<size_t>(li)],
            0.5);
  EXPECT_DOUBLE_EQ(
      (*ws)[static_cast<size_t>(li)].overlap[static_cast<size_t>(nation)],
      0.0);
  // At concurrency 1, no self-overlap.
  EXPECT_DOUBLE_EQ(
      (*ws)[static_cast<size_t>(li)].overlap[static_cast<size_t>(li)], 0.0);
}

TEST(EstimatorTest, ConcurrencyRaisesOverlapAndSelfOverlap) {
  Catalog cat = Catalog::TpcH(0.05);
  auto olap1 = MakeOlapSpec(cat, 3, 1, 7);
  auto olap8 = MakeOlapSpec(cat, 3, 8, 7);
  ASSERT_TRUE(olap1.ok());
  ASSERT_TRUE(olap8.ok());
  auto ws1 = EstimateWorkloads(cat, &*olap1, nullptr);
  auto ws8 = EstimateWorkloads(cat, &*olap8, nullptr);
  ASSERT_TRUE(ws1.ok());
  ASSERT_TRUE(ws8.ok());
  const size_t li = static_cast<size_t>(*cat.Find("LINEITEM"));
  const size_t part = static_cast<size_t>(*cat.Find("PART"));
  EXPECT_GT((*ws8)[li].overlap[li], (*ws1)[li].overlap[li]);
  EXPECT_GE((*ws8)[part].overlap[li], (*ws1)[part].overlap[li]);
}

TEST(EstimatorTest, OltpSpecSupported) {
  Catalog cat = Catalog::TpcC(0.05);
  auto oltp = MakeOltpSpec(cat, "", 9, 0.0);
  ASSERT_TRUE(oltp.ok());
  auto ws = EstimateWorkloads(cat, nullptr, &*oltp);
  ASSERT_TRUE(ws.ok());
  const size_t stock = static_cast<size_t>(*cat.Find("STOCK"));
  const size_t log = static_cast<size_t>(*cat.Find("XactionLOG"));
  EXPECT_GT((*ws)[stock].total_rate(), 0.0);
  EXPECT_GT((*ws)[stock].write_rate, 0.0);
  // The log is written, never read, and purely sequential.
  EXPECT_DOUBLE_EQ((*ws)[log].read_rate, 0.0);
  EXPECT_GT((*ws)[log].write_rate, 0.0);
  EXPECT_GT((*ws)[log].run_count, 10.0);
}

TEST(EstimatorTest, EstimatorDrivenAdvisorStillBeatsSeeEndToEnd) {
  // The paper's claim: estimator input is convenient but less accurate.
  // The estimator-driven layout should still beat SEE, though generally by
  // less than the trace-driven one.
  const double scale = 0.03;
  auto rig = ExperimentRig::Create(Catalog::TpcH(scale),
                                   {{"d0"}, {"d1"}, {"d2"}, {"d3"}}, scale,
                                   7);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 3, 1, 7);
  ASSERT_TRUE(olap.ok());
  auto ws = EstimateWorkloads(rig->catalog(), &*olap, nullptr);
  ASSERT_TRUE(ws.ok());
  auto problem = rig->MakeProblem(std::move(ws).value());
  ASSERT_TRUE(problem.ok());
  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(*problem);
  ASSERT_TRUE(rec.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), 4);
  auto see_run = rig->Execute(see, &*olap, nullptr);
  auto opt_run = rig->Execute(rec->final_layout, &*olap, nullptr);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_GT(see_run->elapsed_seconds / opt_run->elapsed_seconds, 1.02);
}

}  // namespace
}  // namespace ldb
