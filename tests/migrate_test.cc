// Online migration executor: journaled chunk state machine, dual-location
// routing, throttle/backpressure, fault policy, and — the load-bearing
// properties — that interrupting at any chunk boundary and resuming from
// any journal prefix is equivalent to an uninterrupted migration, with
// every byte readable at every simulated instant along the way.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/migrate.h"
#include "core/replan.h"
#include "model/cost_model.h"
#include "model/workload.h"
#include "storage/disk.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/check.h"
#include "util/random.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {
namespace {

// Three independent single-disk targets; enough to stage pure-source,
// pure-destination, and shared roles.
std::unique_ptr<StorageSystem> MakeSystem3(const DiskModel& proto) {
  std::vector<TargetSpec> specs{
      {"d0", &proto, 1, 64 * kKiB},
      {"d1", &proto, 1, 64 * kKiB},
      {"d2", &proto, 1, 64 * kKiB},
  };
  return std::make_unique<StorageSystem>(specs);
}

StripedVolumeManager MakeVolumes(const StorageSystem& sys,
                                 std::vector<int64_t> sizes,
                                 std::vector<std::vector<int>> placements) {
  auto v = StripedVolumeManager::Create(std::move(sizes),
                                        std::move(placements),
                                        sys.capacities(), 64 * kKiB);
  LDB_CHECK(v.ok());
  return std::move(v).value();
}

// A deterministic closed-loop foreground driver that routes every request
// through the executor (the way WorkloadRunner does) and asserts the
// readability invariant after every completion.
class FgDriver {
 public:
  FgDriver(StorageSystem* sys, MigrationExecutor* exec, uint64_t seed,
           bool check_readable)
      : sys_(sys), exec_(exec), rng_(seed),
        check_readable_(check_readable) {}

  void ScheduleOps(int count, double interval_s) {
    for (int k = 0; k < count; ++k) {
      sys_->queue().ScheduleAfter((k + 1) * interval_s, [this]() {
        IssueOne();
      });
    }
  }

  int completed() const { return completed_; }
  int failed() const { return failed_; }

 private:
  void IssueOne() {
    const int n = exec_->num_objects();
    const ObjectId obj =
        static_cast<ObjectId>(rng_.UniformInt(static_cast<uint64_t>(n)));
    const int64_t size = exec_->object_size(obj);
    const int64_t req = std::min<int64_t>(size, 128 * kKiB);
    const int64_t offset =
        size > req ? static_cast<int64_t>(
                         rng_.UniformInt(static_cast<uint64_t>(size - req)))
                   : 0;
    const bool is_write = rng_.Bernoulli(0.3);
    chunks_.clear();
    exec_->Route(obj, offset, req, is_write, &chunks_);
    ASSERT_FALSE(chunks_.empty());
    auto pending = std::make_shared<int>(static_cast<int>(chunks_.size()));
    int64_t logical = offset;
    for (const TargetChunk& tc : chunks_) {
      TargetRequest tr;
      tr.offset = tc.offset;
      tr.size = tc.size;
      tr.is_write = is_write;
      tr.object = obj;
      tr.logical_offset = logical;
      logical += tc.size;
      sys_->SubmitWithStatus(tc.target, tr,
                             [this, pending](double, const Status& s) {
                               if (!s.ok()) ++failed_;
                               if (--*pending == 0) {
                                 ++completed_;
                                 if (check_readable_) {
                                   EXPECT_TRUE(exec_->CheckReadable().ok())
                                       << exec_->CheckReadable().ToString();
                                 }
                               }
                             });
    }
  }

  StorageSystem* sys_;
  MigrationExecutor* exec_;
  Rng rng_;
  bool check_readable_;
  int completed_ = 0;
  int failed_ = 0;
  std::vector<TargetChunk> chunks_;
};

std::vector<TargetChunk> RouteAll(MigrationExecutor* exec, ObjectId obj,
                                  int64_t offset, int64_t size,
                                  bool is_write) {
  std::vector<TargetChunk> out;
  exec->Route(obj, offset, size, is_write, &out);
  return out;
}

std::vector<TargetChunk> MapAll(const StripedVolumeManager& v, ObjectId obj,
                                int64_t offset, int64_t size) {
  std::vector<TargetChunk> out;
  v.Map(obj, offset, size, &out);
  return out;
}

bool SameChunks(const std::vector<TargetChunk>& a,
                const std::vector<TargetChunk>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].target != b[i].target || a[i].offset != b[i].offset ||
        a[i].size != b[i].size) {
      return false;
    }
  }
  return true;
}

// --------------------------------------------------------- no-op migration

TEST(MigrateTest, EmptyPlanIsNoOpAndRoutesLikeSource) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{5 * kMiB + 300 * kKiB, 3 * kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}, {1, 2}});
  auto dst = MakeVolumes(*sys, sizes, {{0}, {1, 2}});

  MigrateOptions opts;
  auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
  ASSERT_TRUE(exec.ok());
  (*exec)->Start();
  // Completes synchronously: no copy events at all.
  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
  EXPECT_DOUBLE_EQ(sys->queue().RunUntilIdle(), 0.0);
  EXPECT_EQ((*exec)->stats().chunks_total, 0);
  ASSERT_EQ((*exec)->journal().size(), 2u);
  EXPECT_EQ((*exec)->journal()[0].kind, JournalKind::kBeginMigration);
  EXPECT_EQ((*exec)->journal()[1].kind, JournalKind::kCommitMigration);
  EXPECT_TRUE((*exec)->CheckReadable().ok());

  Rng rng(11);
  for (int t = 0; t < 50; ++t) {
    const ObjectId obj = static_cast<ObjectId>(rng.UniformInt(uint64_t{2}));
    const int64_t size = sizes[static_cast<size_t>(obj)];
    const int64_t req = 1 + static_cast<int64_t>(
                                rng.UniformInt(static_cast<uint64_t>(size)));
    const int64_t off = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(size - req + 1)));
    const bool w = rng.Bernoulli(0.5);
    EXPECT_TRUE(SameChunks(RouteAll(&**exec, obj, off, req, w),
                           MapAll(src, obj, off, req)));
  }
}

// ------------------------------------------------- full migration + writes

TEST(MigrateTest, CompletesAndServesEveryReadFromDestination) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{4 * kMiB + 100 * kKiB, 2 * kMiB, kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}, {0, 1}, {2}});
  auto dst = MakeVolumes(*sys, sizes, {{1}, {2}, {2}});  // object 2 stays

  MigrateOptions opts;
  opts.chunk_bytes = kMiB;
  auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
  ASSERT_TRUE(exec.ok());

  FgDriver fg(sys.get(), exec->get(), 5, /*check_readable=*/true);
  fg.ScheduleOps(40, 0.005);
  sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
  sys->queue().RunUntilIdle();

  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
  EXPECT_EQ((*exec)->stats().chunks_committed, (*exec)->stats().chunks_total);
  EXPECT_EQ((*exec)->stats().objects_committed, 2);
  EXPECT_EQ(fg.completed(), 40);
  EXPECT_EQ(fg.failed(), 0);
  EXPECT_TRUE((*exec)->CheckReadable().ok());
  EXPECT_EQ((*exec)->journal().back().kind, JournalKind::kCommitMigration);

  // Every read now serves from the destination manager.
  Rng rng(3);
  for (int t = 0; t < 30; ++t) {
    const ObjectId obj = static_cast<ObjectId>(rng.UniformInt(uint64_t{3}));
    const int64_t size = sizes[static_cast<size_t>(obj)];
    const int64_t req = std::min<int64_t>(size, 256 * kKiB);
    const int64_t off = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(size - req + 1)));
    const auto expect = obj == 2 ? MapAll(src, obj, off, req)
                                 : MapAll(dst, obj, off, req);
    EXPECT_TRUE(SameChunks(RouteAll(&**exec, obj, off, req, false), expect));
  }
}

TEST(MigrateTest, ForegroundWriteDuringCopyForcesRecopy) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{4 * kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}});
  auto dst = MakeVolumes(*sys, sizes, {{1}});

  MigrateOptions opts;
  opts.chunk_bytes = kMiB;
  auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
  ASSERT_TRUE(exec.ok());
  sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
  // A write into chunk 0 while its copy is in flight (the first copy read
  // is issued at t=0 and disk service takes milliseconds).
  sys->queue().ScheduleAfter(0.0005, [&]() {
    std::vector<TargetChunk> chunks;
    (*exec)->Route(0, 4 * kKiB, 8 * kKiB, /*is_write=*/true, &chunks);
    for (const TargetChunk& tc : chunks) {
      sys->Submit(tc.target, {tc.offset, tc.size, true, 0, 4 * kKiB},
                  nullptr);
    }
  });
  sys->queue().RunUntilIdle();

  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
  EXPECT_GE((*exec)->stats().chunks_recopied, 1);
  EXPECT_TRUE((*exec)->CheckReadable().ok());
  // The recopy is journaled, so a resume replays it as pending.
  bool saw_recopy = false;
  for (const JournalRecord& r : (*exec)->journal()) {
    saw_recopy = saw_recopy || r.kind == JournalKind::kRecopyChunk;
  }
  EXPECT_TRUE(saw_recopy);
}

// ------------------------------------------------------------ fault policy

TEST(MigrateTest, DestinationLossRollsBackAndEverythingStaysReadable) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{8 * kMiB, 4 * kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}, {0, 2}});
  auto dst = MakeVolumes(*sys, sizes, {{1}, {1}});  // d1: pure destination

  MigrateOptions opts;
  opts.chunk_bytes = kMiB;
  // Stretch the copy so the fault lands mid-migration deterministically.
  opts.bandwidth_bytes_per_s = static_cast<double>(12 * kMiB) / 10.0;
  auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
  ASSERT_TRUE(exec.ok());

  // Per-op readability checks stay off here: between the destination dying
  // and the executor noticing at its next pump, committed chunks point at a
  // dead target by design — the property under test is that rollback then
  // restores full readability.
  FgDriver fg(sys.get(), exec->get(), 17, /*check_readable=*/false);
  fg.ScheduleOps(30, 0.3);
  sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
  sys->queue().ScheduleAfter(5.0, [&sys]() { sys->target(1).FailMember(0); });
  sys->queue().RunUntilIdle();

  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kRolledBack);
  EXPECT_GT((*exec)->stats().chunks_committed, 0);
  EXPECT_LT((*exec)->stats().chunks_committed, (*exec)->stats().chunks_total);
  EXPECT_EQ((*exec)->failed_target(), 1);
  EXPECT_TRUE((*exec)->CheckReadable().ok())
      << (*exec)->CheckReadable().ToString();
  EXPECT_EQ((*exec)->journal().back().kind,
            JournalKind::kRollbackMigration);
  // All routing is back on the source.
  EXPECT_TRUE(SameChunks(RouteAll(&**exec, 0, 0, sizes[0], false),
                         MapAll(src, 0, 0, sizes[0])));
  EXPECT_TRUE(SameChunks(RouteAll(&**exec, 1, 0, sizes[1], true),
                         MapAll(src, 1, 0, sizes[1])));
}

TEST(MigrateTest, SourceLossAbortsAndCommittedChunksServeDestination) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{8 * kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}});
  auto dst = MakeVolumes(*sys, sizes, {{1}});

  MigrateOptions opts;
  opts.chunk_bytes = kMiB;
  opts.bandwidth_bytes_per_s = static_cast<double>(8 * kMiB) / 10.0;
  auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
  ASSERT_TRUE(exec.ok());
  sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
  sys->queue().ScheduleAfter(5.0, [&sys]() { sys->target(0).FailMember(0); });
  sys->queue().RunUntilIdle();

  EXPECT_EQ((*exec)->outcome(), MigrationOutcome::kAborted);
  EXPECT_EQ((*exec)->failed_target(), 0);
  const int64_t committed = (*exec)->stats().chunks_committed;
  EXPECT_GT(committed, 0);
  EXPECT_LT(committed, (*exec)->stats().chunks_total);
  // Committed prefix serves the destination (alive); the tail points at
  // the dead source, which CheckReadable reports honestly.
  const auto head = RouteAll(&**exec, 0, 0, committed * kMiB, false);
  for (const TargetChunk& tc : head) EXPECT_EQ(tc.target, 1);
  EXPECT_FALSE((*exec)->CheckReadable().ok());
  EXPECT_EQ((*exec)->journal().back().kind, JournalKind::kAbortMigration);
}

// ----------------------------------------- interrupt / resume equivalence

struct Scenario {
  std::vector<int64_t> sizes;
  std::vector<std::vector<int>> from;
  std::vector<std::vector<int>> to;
};

Scenario RandomScenario(Rng& rng) {
  Scenario s;
  const int n = 2 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  for (int i = 0; i < n; ++i) {
    s.sizes.push_back(
        (1 + static_cast<int64_t>(rng.UniformInt(uint64_t{4}))) * kMiB +
        static_cast<int64_t>(rng.UniformInt(uint64_t{3})) * 100 * kKiB);
    const auto subset = [&rng]() {
      std::vector<int> t;
      for (int j = 0; j < 3; ++j) {
        if (rng.Bernoulli(0.4)) t.push_back(j);
      }
      if (t.empty()) {
        t.push_back(static_cast<int>(rng.UniformInt(uint64_t{3})));
      }
      return t;
    };
    s.from.push_back(subset());
    s.to.push_back(subset());
  }
  return s;
}

class MigrateResumeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrateResumeProperty, InterruptAtAnyChunkBoundaryThenResume) {
  DiskModel proto(Scsi15kParams());
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const Scenario sc = RandomScenario(rng);
    MigrateOptions opts;
    opts.chunk_bytes = 512 * kKiB;

    // Reference: uninterrupted run with deterministic foreground traffic;
    // readability is asserted at every completion.
    std::string ref_fingerprint;
    MigrationJournal ref_journal;
    int64_t ref_chunks = 0;
    {
      auto sys = MakeSystem3(proto);
      auto src = MakeVolumes(*sys, sc.sizes, sc.from);
      auto dst = MakeVolumes(*sys, sc.sizes, sc.to);
      auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
      ASSERT_TRUE(exec.ok());
      FgDriver fg(sys.get(), exec->get(), 1000 + trial, true);
      fg.ScheduleOps(25, 0.004);
      sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
      sys->queue().RunUntilIdle();
      ASSERT_EQ((*exec)->outcome(), MigrationOutcome::kCompleted);
      ASSERT_TRUE((*exec)->CheckReadable().ok());
      ref_fingerprint = (*exec)->StateFingerprint();
      ref_journal = (*exec)->journal();
      ref_chunks = (*exec)->stats().chunks_total;
    }

    // Interrupted: pause at a random commit boundary, hand the journal to
    // a fresh executor on a fresh system, and let it finish.
    {
      auto sys = MakeSystem3(proto);
      auto src = MakeVolumes(*sys, sc.sizes, sc.from);
      auto dst = MakeVolumes(*sys, sc.sizes, sc.to);
      auto exec = MigrationExecutor::Create(sys.get(), &src, &dst, opts);
      ASSERT_TRUE(exec.ok());
      const int64_t stop_after =
          ref_chunks == 0
              ? 0
              : 1 + static_cast<int64_t>(rng.UniformInt(
                        static_cast<uint64_t>(ref_chunks)));
      int64_t commits = 0;
      (*exec)->set_commit_hook([&]() {
        if (++commits >= stop_after) (*exec)->Pause();
      });
      FgDriver fg(sys.get(), exec->get(), 1000 + trial, true);
      fg.ScheduleOps(25, 0.004);
      sys->queue().ScheduleAfter(0.0, [&exec]() { (*exec)->Start(); });
      sys->queue().RunUntilIdle();
      ASSERT_TRUE((*exec)->CheckReadable().ok());
      const MigrationJournal interrupted = (*exec)->journal();

      auto sys2 = MakeSystem3(proto);
      auto src2 = MakeVolumes(*sys2, sc.sizes, sc.from);
      auto dst2 = MakeVolumes(*sys2, sc.sizes, sc.to);
      auto resumed = MigrationExecutor::Resume(sys2.get(), &src2, &dst2,
                                               opts, interrupted);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      sys2->queue().ScheduleAfter(0.0,
                                  [&resumed]() { (*resumed)->Start(); });
      sys2->queue().RunUntilIdle();
      EXPECT_EQ((*resumed)->outcome(), MigrationOutcome::kCompleted);
      EXPECT_EQ((*resumed)->StateFingerprint(), ref_fingerprint);
      EXPECT_EQ((*resumed)->stats().chunks_total, ref_chunks);
      EXPECT_TRUE((*resumed)->CheckReadable().ok());
    }

    // Idempotence: resuming from *every* prefix of the reference journal
    // and running to completion lands in the same state.
    for (size_t len = 0; len <= ref_journal.size();
         len += 1 + ref_journal.size() / 7) {
      auto sys = MakeSystem3(proto);
      auto src = MakeVolumes(*sys, sc.sizes, sc.from);
      auto dst = MakeVolumes(*sys, sc.sizes, sc.to);
      const MigrationJournal prefix(ref_journal.begin(),
                                    ref_journal.begin() +
                                        static_cast<long>(len));
      auto resumed =
          MigrationExecutor::Resume(sys.get(), &src, &dst, opts, prefix);
      ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
      sys->queue().ScheduleAfter(0.0, [&resumed]() { (*resumed)->Start(); });
      sys->queue().RunUntilIdle();
      EXPECT_EQ((*resumed)->outcome(), MigrationOutcome::kCompleted);
      EXPECT_EQ((*resumed)->StateFingerprint(), ref_fingerprint);
      EXPECT_TRUE((*resumed)->CheckReadable().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrateResumeProperty,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

TEST(MigrateTest, ResumeRejectsJournalForWrongPlan) {
  DiskModel proto(Scsi15kParams());
  auto sys = MakeSystem3(proto);
  const std::vector<int64_t> sizes{2 * kMiB};
  auto src = MakeVolumes(*sys, sizes, {{0}});
  auto dst = MakeVolumes(*sys, sizes, {{1}});
  MigrateOptions opts;
  opts.chunk_bytes = kMiB;

  MigrationJournal bad_object{{JournalKind::kCommitChunk, 7, 0}};
  EXPECT_FALSE(
      MigrationExecutor::Resume(sys.get(), &src, &dst, opts, bad_object)
          .ok());
  MigrationJournal bad_chunk{{JournalKind::kCommitChunk, 0, 99}};
  EXPECT_FALSE(
      MigrationExecutor::Resume(sys.get(), &src, &dst, opts, bad_chunk)
          .ok());
  // A non-migrating object must not appear in the journal.
  auto same = MakeVolumes(*sys, sizes, {{0}});
  MigrationJournal not_moving{{JournalKind::kBeginChunk, 0, 0}};
  EXPECT_FALSE(
      MigrationExecutor::Resume(sys.get(), &src, &same, opts, not_moving)
          .ok());
}

// ------------------------------------------------- satellite regressions

const CostModel& MigrateTestCost() {
  static const CostModel* model = [] {
    std::vector<double> sizes{static_cast<double>(8 * kKiB),
                              static_cast<double>(256 * kKiB)};
    std::vector<double> runs{1, 64};
    std::vector<double> chis{0, 2, 8};
    std::vector<double> reads, writes;
    for (double s : sizes) {
      for (double q : runs) {
        for (double c : chis) {
          const double v = 0.004 * (0.5 + 0.5 * s / (8 * kKiB)) * (1 + c) /
                           std::sqrt(q);
          reads.push_back(v);
          writes.push_back(0.8 * v);
        }
      }
    }
    auto m = CostModel::Create("mt", sizes, runs, chis, reads, writes);
    LDB_CHECK(m.ok());
    return new CostModel(std::move(m).value());
  }();
  return *model;
}

LayoutProblem TwoTargetProblem() {
  LayoutProblem p;
  for (int i = 0; i < 2; ++i) {
    p.object_names.push_back(StrFormat("obj%d", i));
    p.object_sizes.push_back(kGiB);
    p.object_kinds.push_back(ObjectKind::kTable);
    WorkloadDesc w;
    w.read_rate = 50;
    w.read_size = 8 * kKiB;
    w.run_count = 1.0;
    w.overlap.assign(2, 0.0);
    p.workloads.push_back(std::move(w));
  }
  for (int j = 0; j < 2; ++j) {
    p.targets.push_back(AdvisorTarget{StrFormat("t%d", j), 8 * kGiB,
                                      &MigrateTestCost(), 1, 64 * kKiB});
  }
  return p;
}

TEST(PriceMigrationTest, SolverNoiseBelowToleranceIsNotMovement) {
  const LayoutProblem p = TwoTargetProblem();
  Layout from(2, 2);
  from.SetRowRegular(0, {0, 1});
  from.SetRowRegular(1, {0});
  // The "new" layout is the same placement with sub-tolerance solver noise
  // on the fractions.
  Layout to = from;
  to.Set(0, 0, 0.5 + 5e-5);
  to.Set(0, 1, 0.5 - 5e-5);
  to.Set(1, 0, 1.0 - 2e-5);

  const MigrationPlan plan = PriceMigration(p, from, to, 1e-4);
  EXPECT_EQ(plan.objects_moved, 0);
  EXPECT_DOUBLE_EQ(plan.total_bytes, 0.0);
}

TEST(PriceMigrationTest, RegularMovePricesExactFractions) {
  const LayoutProblem p = TwoTargetProblem();
  Layout from(2, 2);
  from.SetRowRegular(0, {0});
  from.SetRowRegular(1, {0});
  Layout to(2, 2);
  to.SetRowRegular(0, {0, 1});  // half of object 0 moves onto t1
  to.SetRowRegular(1, {0});

  const MigrationPlan plan = PriceMigration(p, from, to, 1e-4);
  EXPECT_EQ(plan.objects_moved, 1);
  EXPECT_DOUBLE_EQ(plan.moved_in_bytes[0][1], 0.5 * kGiB);
  EXPECT_DOUBLE_EQ(plan.total_bytes, 0.5 * kGiB);
}

TEST(PriceMigrationTest, NonRegularRebalanceUsesRawDeltas) {
  const LayoutProblem p = TwoTargetProblem();
  Layout from(2, 2);
  from.Set(0, 0, 0.7);
  from.Set(0, 1, 0.3);
  from.SetRowRegular(1, {1});
  Layout to(2, 2);
  to.SetRowRegular(0, {0, 1});  // 0.7/0.3 -> 0.5/0.5: same targets, real move
  to.SetRowRegular(1, {1});

  const MigrationPlan plan = PriceMigration(p, from, to, 1e-4);
  EXPECT_EQ(plan.objects_moved, 1);
  EXPECT_NEAR(plan.moved_in_bytes[0][1], 0.2 * kGiB, 1.0);
  EXPECT_NEAR(plan.total_bytes, 0.2 * kGiB, 1.0);
}

TEST(ReplanTest, EveryTargetFailedIsCleanInfeasible) {
  const LayoutProblem p = TwoTargetProblem();
  Layout current(2, 2);
  current.SetRowRegular(0, {0});
  current.SetRowRegular(1, {1});
  TargetHealth health = TargetHealth::Healthy(2);
  health.MarkFailed(0);
  health.MarkFailed(1);
  auto result = ReplanAfterFailure(p, current, health);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
  EXPECT_NE(result.status().message().find("every target failed"),
            std::string::npos);
}

}  // namespace
}  // namespace ldb
