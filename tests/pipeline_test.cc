// End-to-end reproduction tests: the full paper pipeline (simulate under
// SEE -> trace -> fit workloads -> advise -> re-execute) with assertions on
// the headline shapes of the evaluation section. These are the most
// important tests in the suite: they fail if any model/solver/simulator
// change breaks a paper result.
//
// A reduced scale (0.03) keeps each case in the hundreds of milliseconds;
// the shapes are scale-robust.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/autoadmin.h"
#include "core/baselines.h"
#include "core/harness.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {
namespace {

constexpr double kScale = 0.03;
constexpr uint64_t kSeed = 7;

struct Advised {
  LayoutProblem problem;
  AdvisorResult result;
};

Advised Advise(const ExperimentRig& rig, const OlapSpec* olap,
               const OltpSpec* oltp) {
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), rig.num_targets());
  auto ws = rig.FitWorkloads(see, olap, oltp);
  LDB_CHECK(ws.ok());
  auto problem = rig.MakeProblem(std::move(ws).value());
  LDB_CHECK(problem.ok());
  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(*problem);
  LDB_CHECK(rec.ok());
  return Advised{std::move(problem).value(), std::move(rec).value()};
}

// Shared fixtures (built once: rig construction calibrates cost models).
const ExperimentRig& TpchRig() {
  static const ExperimentRig* rig = [] {
    auto r = ExperimentRig::Create(
        Catalog::TpcH(kScale), {{"d0"}, {"d1"}, {"d2"}, {"d3"}}, kScale,
        kSeed);
    LDB_CHECK(r.ok());
    return new ExperimentRig(std::move(r).value());
  }();
  return *rig;
}

TEST(PipelineTest, Olap1OptimizedBeatsSeeEndToEnd) {
  // The paper's headline (Fig. 11): 1.28x on OLAP1-63 over SEE.
  const ExperimentRig& rig = TpchRig();
  auto olap = MakeOlapSpec(rig.catalog(), 3, 1, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(rig, &*olap, nullptr);
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), rig.num_targets());

  auto see_run = rig.Execute(see, &*olap, nullptr);
  auto opt_run = rig.Execute(advised.result.final_layout, &*olap, nullptr);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  const double speedup =
      see_run->elapsed_seconds / opt_run->elapsed_seconds;
  EXPECT_GT(speedup, 1.10) << "paper reports 1.28x";

  // Estimated utilizations drop too (Fig. 13).
  const TargetModel model = advised.problem.MakeTargetModel();
  EXPECT_LT(advised.result.max_utilization_final,
            model.MaxUtilization(advised.problem.workloads, see));
}

TEST(PipelineTest, Olap1LayoutHasPaperStructure) {
  // Fig. 1: LINEITEM and ORDERS end up on disjoint targets.
  const ExperimentRig& rig = TpchRig();
  auto olap = MakeOlapSpec(rig.catalog(), 3, 1, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(rig, &*olap, nullptr);
  const auto li =
      advised.result.final_layout.TargetsOf(*rig.catalog().Find("LINEITEM"));
  const auto ord =
      advised.result.final_layout.TargetsOf(*rig.catalog().Find("ORDERS"));
  for (int a : li) {
    EXPECT_EQ(std::count(ord.begin(), ord.end(), a), 0)
        << "LINEITEM and ORDERS share target " << a;
  }
  EXPECT_TRUE(advised.result.final_layout.IsRegular(1e-9));
  EXPECT_TRUE(advised.result.final_layout.IsValid(
      advised.problem.object_sizes, advised.problem.capacities()));
}

TEST(PipelineTest, ConcurrencyReducesFittedSequentiality) {
  // Section 6.2: LINEITEM's workload is less sequential under OLAP8-63.
  const ExperimentRig& rig = TpchRig();
  auto olap1 = MakeOlapSpec(rig.catalog(), 3, 1, kSeed);
  auto olap8 = MakeOlapSpec(rig.catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap1.ok());
  ASSERT_TRUE(olap8.ok());
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), rig.num_targets());
  auto ws1 = rig.FitWorkloads(see, &*olap1, nullptr);
  auto ws8 = rig.FitWorkloads(see, &*olap8, nullptr);
  ASSERT_TRUE(ws1.ok());
  ASSERT_TRUE(ws8.ok());
  const ObjectId li = *rig.catalog().Find("LINEITEM");
  EXPECT_LT((*ws8)[static_cast<size_t>(li)].run_count,
            (*ws1)[static_cast<size_t>(li)].run_count);
  // ... and its concurrent streams overlap themselves.
  EXPECT_GT((*ws8)[static_cast<size_t>(li)].overlap[static_cast<size_t>(li)],
            1.0);
  EXPECT_LT((*ws1)[static_cast<size_t>(li)].overlap[static_cast<size_t>(li)],
            0.5);
}

TEST(PipelineTest, Olap8AdvisorDoesNotRegress) {
  // Under OLAP8-63 (saturated, symmetric) SEE is near-optimal in this
  // simulator; the advisor must stay within noise of it (the paper reports
  // a 1.19x gain on its testbed).
  const ExperimentRig& rig = TpchRig();
  auto olap = MakeOlapSpec(rig.catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(rig, &*olap, nullptr);
  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), rig.num_targets());
  auto see_run = rig.Execute(see, &*olap, nullptr);
  auto opt_run = rig.Execute(advised.result.final_layout, &*olap, nullptr);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_GT(see_run->elapsed_seconds / opt_run->elapsed_seconds, 0.93);
}

TEST(PipelineTest, HeterogeneousTargetsAmplifyGains) {
  // Fig. 17: the optimizer's advantage over SEE is larger on the "3-1"
  // configuration than on homogeneous disks.
  auto rig31 = ExperimentRig::Create(Catalog::TpcH(kScale),
                                     {{"raid0x3", 3}, {"disk", 1}}, kScale,
                                     kSeed);
  ASSERT_TRUE(rig31.ok());
  auto olap = MakeOlapSpec(rig31->catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(*rig31, &*olap, nullptr);
  const Layout see = Layout::StripeEverythingEverywhere(
      rig31->catalog().num_objects(), 2);
  auto see_run = rig31->Execute(see, &*olap, nullptr);
  auto opt_run = rig31->Execute(advised.result.final_layout, &*olap, nullptr);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_GT(see_run->elapsed_seconds / opt_run->elapsed_seconds, 1.3);
}

TEST(PipelineTest, SsdExploitedAndBeatsSsdOnly) {
  // Fig. 18 (32 GB SSD): optimized layout uses disks + SSD and beats both
  // SEE and the all-on-SSD baseline.
  std::vector<RigTargetDef> targets{{"d0"}, {"d1"}, {"d2"}, {"d3"}};
  targets.push_back(RigTargetDef{"ssd", 1, true, 32 * kGiB});
  auto rig = ExperimentRig::Create(Catalog::TpcH(kScale), targets, kScale,
                                   kSeed);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(*rig, &*olap, nullptr);
  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), 5);
  auto see_run = rig->Execute(see, &*olap, nullptr);
  auto opt_run = rig->Execute(advised.result.final_layout, &*olap, nullptr);
  auto ssd_only = AllOnOneTargetBaseline(advised.problem, 4);
  ASSERT_TRUE(ssd_only.ok());
  auto ssd_run = rig->Execute(*ssd_only, &*olap, nullptr);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  ASSERT_TRUE(ssd_run.ok());
  EXPECT_GT(see_run->elapsed_seconds / opt_run->elapsed_seconds, 1.5)
      << "paper reports 1.96x";
  EXPECT_LT(opt_run->elapsed_seconds, ssd_run->elapsed_seconds)
      << "paper: optimized beats SSD-only by ~10%";
}

TEST(PipelineTest, SmallSsdStillHelps) {
  // Fig. 18 (4 GB SSD): too small for SEE or SSD-only, but the advisor
  // exploits it and beats the disk-only SEE substantially.
  std::vector<RigTargetDef> targets{{"d0"}, {"d1"}, {"d2"}, {"d3"}};
  targets.push_back(RigTargetDef{"ssd", 1, true, 4 * kGiB});
  auto rig = ExperimentRig::Create(Catalog::TpcH(kScale), targets, kScale,
                                   kSeed);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(*rig, &*olap, nullptr);
  // The SSD is too small to hold all objects (paper: SSD-only is n/a
  // below 10 GB).
  EXPECT_FALSE(AllOnOneTargetBaseline(advised.problem, 4).ok());

  // Compare against disk-only SEE.
  const ExperimentRig& disk_rig = TpchRig();
  const Layout see4 = Layout::StripeEverythingEverywhere(
      disk_rig.catalog().num_objects(), 4);
  auto disk_run = disk_rig.Execute(see4, &*olap, nullptr);
  auto opt_run = rig->Execute(advised.result.final_layout, &*olap, nullptr);
  ASSERT_TRUE(disk_run.ok());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_GT(disk_run->elapsed_seconds / opt_run->elapsed_seconds, 1.2)
      << "paper: 16201s disk-only SEE vs 8529s with a 4GB SSD";
}

TEST(PipelineTest, ConsolidationImprovesOlapWithoutTankingOltp) {
  // Fig. 15: optimized layout speeds up OLAP1-21 sharing disks with OLTP.
  Catalog merged = Catalog::Merge(Catalog::TpcH(kScale),
                                  Catalog::TpcC(kScale), "", "C_");
  auto rig = ExperimentRig::Create(
      merged, {{"d0"}, {"d1"}, {"d2"}, {"d3"}}, kScale, kSeed);
  ASSERT_TRUE(rig.ok());
  auto olap = MakeOlapSpec(rig->catalog(), 1, 1, kSeed);
  auto oltp = MakeOltpSpec(rig->catalog(), "C_", 9, 2.0);
  ASSERT_TRUE(olap.ok());
  ASSERT_TRUE(oltp.ok());
  Advised advised = Advise(*rig, &*olap, &*oltp);
  const Layout see = Layout::StripeEverythingEverywhere(
      merged.num_objects(), 4);
  auto see_run = rig->Execute(see, &*olap, &*oltp);
  auto opt_run = rig->Execute(advised.result.final_layout, &*olap, &*oltp);
  ASSERT_TRUE(see_run.ok());
  ASSERT_TRUE(opt_run.ok());
  EXPECT_GT(see_run->elapsed_seconds / opt_run->elapsed_seconds, 1.1)
      << "paper reports 1.43x";
  EXPECT_GT(opt_run->tpm, 0.85 * see_run->tpm)
      << "paper reports a 1.18x tpmC gain";
}

TEST(PipelineTest, AutoAdminMatchesAdvisorSeriallyButHurtsConcurrent) {
  // Section 6.6: the AutoAdmin layout is competitive on OLAP1-63 but is
  // slower than SEE under OLAP8-63, while the concurrency-aware advisor
  // does not regress.
  const ExperimentRig& rig = TpchRig();
  auto olap1 = MakeOlapSpec(rig.catalog(), 3, 1, kSeed);
  auto olap8 = MakeOlapSpec(rig.catalog(), 3, 8, kSeed);
  ASSERT_TRUE(olap1.ok());
  ASSERT_TRUE(olap8.ok());
  Advised advised1 = Advise(rig, &*olap1, nullptr);
  AutoAdminAdvisor autoadmin;
  auto estimates = EstimateQueriesFromSpec(
      *olap1, advised1.problem, AutoAdminOptions{}.temp_estimate_error);
  auto aa = autoadmin.Recommend(advised1.problem, estimates);
  ASSERT_TRUE(aa.ok());

  const Layout see = Layout::StripeEverythingEverywhere(
      rig.catalog().num_objects(), rig.num_targets());
  auto see1 = rig.Execute(see, &*olap1, nullptr);
  auto aa1 = rig.Execute(*aa, &*olap1, nullptr);
  ASSERT_TRUE(see1.ok());
  ASSERT_TRUE(aa1.ok());
  // Competitive at concurrency 1 (paper: AA 32634s vs SEE 40927s).
  EXPECT_LT(aa1->elapsed_seconds, see1->elapsed_seconds);

  auto see8 = rig.Execute(see, &*olap8, nullptr);
  auto aa8 = rig.Execute(*aa, &*olap8, nullptr);
  ASSERT_TRUE(see8.ok());
  ASSERT_TRUE(aa8.ok());
  // Hurts at concurrency 8 (paper: AA 19937s vs SEE 16201s).
  EXPECT_GT(aa8->elapsed_seconds, 1.05 * see8->elapsed_seconds);

  // LINEITEM pinned to a single target (paper Fig. 20(b)): the
  // concurrency-oblivious choice behind the regression.
  EXPECT_EQ(aa->TargetsOf(*rig.catalog().Find("LINEITEM")).size(), 1u);
}

TEST(PipelineTest, AdvisorStagesAreConsistent) {
  // Fig. 13 mechanics: the solver improves on the unbalanced initial
  // layout and regularization stays close to the solver.
  const ExperimentRig& rig = TpchRig();
  auto olap = MakeOlapSpec(rig.catalog(), 3, 1, kSeed);
  ASSERT_TRUE(olap.ok());
  Advised advised = Advise(rig, &*olap, nullptr);
  const auto& r = advised.result;
  const double init_max = *std::max_element(r.utilization_initial.begin(),
                                            r.utilization_initial.end());
  const double solver_max = *std::max_element(r.utilization_solver.begin(),
                                              r.utilization_solver.end());
  EXPECT_LT(solver_max, init_max);
  EXPECT_LT(r.max_utilization_final, 1.2 * solver_max);
  EXPECT_GT(r.solver_stats.objective_evaluations, 0);
  EXPECT_GE(r.solver_seconds, 0.0);
}

}  // namespace
}  // namespace ldb
