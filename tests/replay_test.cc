#include <memory>

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/harness.h"
#include "storage/disk.h"
#include "trace/replay.h"
#include "workload/catalog.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace ldb {
namespace {

constexpr double kScale = 0.02;

struct Recorded {
  IoTrace trace;
  LayoutProblem problem;
  // Owns the cost models the problem's targets reference.
  std::shared_ptr<ExperimentRig> rig;
};

/// Records an object-level OLAP1-21 trace under SEE and fits the problem.
const Recorded& RecordedTrace() {
  static const Recorded* recorded = [] {
    auto created = ExperimentRig::Create(Catalog::TpcH(kScale),
                                         {{"d0"}, {"d1"}, {"d2"}, {"d3"}},
                                         kScale, 3);
    LDB_CHECK(created.ok());
    auto rig = std::make_shared<ExperimentRig>(std::move(created).value());
    auto olap = MakeOlapSpec(rig->catalog(), 1, 1, 3);
    LDB_CHECK(olap.ok());
    const Layout see = Layout::StripeEverythingEverywhere(
        rig->catalog().num_objects(), 4);
    auto ws = rig->FitWorkloads(see, &*olap, nullptr);
    LDB_CHECK(ws.ok());
    auto problem = rig->MakeProblem(std::move(ws).value());
    LDB_CHECK(problem.ok());

    // Record the logical trace of the same run.
    auto system = rig->MakeSystem();
    std::vector<std::vector<int>> placements(
        static_cast<size_t>(rig->catalog().num_objects()),
        std::vector<int>{0, 1, 2, 3});
    auto volumes = StripedVolumeManager::Create(
        rig->catalog().sizes(), placements, system->capacities(), 64 * kKiB);
    LDB_CHECK(volumes.ok());
    auto* out = new Recorded{IoTrace{}, std::move(problem).value(), rig};
    WorkloadRunner runner(system.get(), &*volumes, 3);
    runner.set_logical_observer(
        [out](const IoEvent& ev) { out->trace.Add(ev); });
    LDB_CHECK(runner.RunOlap(*olap).ok());
    return out;
  }();
  return *recorded;
}

std::unique_ptr<StorageSystem> FourDisks(double scale) {
  DiskParams params = Scsi15kParams();
  params.capacity_bytes =
      static_cast<int64_t>(params.capacity_bytes * scale);
  DiskModel proto(params);
  std::vector<TargetSpec> specs;
  for (int j = 0; j < 4; ++j) {
    TargetSpec s;
    s.name = "d";
    s.prototype = &proto;
    specs.push_back(s);
  }
  return std::make_unique<StorageSystem>(specs);
}

Result<StripedVolumeManager> VolumesFor(const Layout& layout,
                                        const LayoutProblem& problem,
                                        const StorageSystem& system) {
  std::vector<std::vector<int>> placements;
  for (int i = 0; i < problem.num_objects(); ++i) {
    placements.push_back(layout.TargetsOf(i));
  }
  return StripedVolumeManager::Create(problem.object_sizes, placements,
                                      system.capacities(), 64 * kKiB);
}

TEST(ReplayTest, RejectsBadInputs) {
  auto system = FourDisks(kScale);
  IoTrace empty;
  EXPECT_FALSE(ReplayTrace(empty, system.get(), nullptr).ok());
  const Recorded& rec = RecordedTrace();
  const Layout see = Layout::StripeEverythingEverywhere(
      rec.problem.num_objects(), 4);
  auto volumes = VolumesFor(see, rec.problem, *system);
  ASSERT_TRUE(volumes.ok());
  EXPECT_FALSE(ReplayTrace(empty, system.get(), &*volumes).ok());
  IoTrace bad;
  IoEvent ev;
  ev.object = 999;
  ev.size = kKiB;
  bad.Add(ev);
  EXPECT_FALSE(ReplayTrace(bad, system.get(), &*volumes).ok());
}

TEST(ReplayTest, ReplaysEveryRequestWithSaneMetrics) {
  const Recorded& rec = RecordedTrace();
  auto system = FourDisks(kScale);
  const Layout see = Layout::StripeEverythingEverywhere(
      rec.problem.num_objects(), 4);
  auto volumes = VolumesFor(see, rec.problem, *system);
  ASSERT_TRUE(volumes.ok());
  auto result = ReplayTrace(rec.trace, system.get(), &*volumes);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->requests, rec.trace.size());
  EXPECT_GT(result->mean_latency_s, 0.0);
  EXPECT_GE(result->p99_latency_s, result->mean_latency_s);
  // Open-loop replay: elapsed is close to the trace duration.
  EXPECT_NEAR(result->elapsed_seconds, rec.trace.Duration(),
              0.2 * rec.trace.Duration());
  ASSERT_EQ(result->utilization.size(), 4u);
}

TEST(ReplayTest, AdvisedLayoutLowersReplayLatency) {
  // The what-if check an administrator would run: replay the recorded SEE
  // trace under the advisor's layout and compare latencies.
  const Recorded& rec = RecordedTrace();
  LayoutAdvisor advisor;
  auto advised = advisor.Recommend(rec.problem);
  ASSERT_TRUE(advised.ok());

  auto sys_see = FourDisks(kScale);
  const Layout see = Layout::StripeEverythingEverywhere(
      rec.problem.num_objects(), 4);
  auto vol_see = VolumesFor(see, rec.problem, *sys_see);
  ASSERT_TRUE(vol_see.ok());
  auto r_see = ReplayTrace(rec.trace, sys_see.get(), &*vol_see);
  ASSERT_TRUE(r_see.ok());

  auto sys_opt = FourDisks(kScale);
  auto vol_opt = VolumesFor(advised->final_layout, rec.problem, *sys_opt);
  ASSERT_TRUE(vol_opt.ok());
  auto r_opt = ReplayTrace(rec.trace, sys_opt.get(), &*vol_opt);
  ASSERT_TRUE(r_opt.ok());

  EXPECT_LT(r_opt->mean_latency_s, r_see->mean_latency_s);
}

TEST(ReplayTest, DeterministicAcrossRuns) {
  const Recorded& rec = RecordedTrace();
  const Layout see = Layout::StripeEverythingEverywhere(
      rec.problem.num_objects(), 4);
  auto sys1 = FourDisks(kScale);
  auto vol1 = VolumesFor(see, rec.problem, *sys1);
  auto sys2 = FourDisks(kScale);
  auto vol2 = VolumesFor(see, rec.problem, *sys2);
  ASSERT_TRUE(vol1.ok());
  ASSERT_TRUE(vol2.ok());
  auto a = ReplayTrace(rec.trace, sys1.get(), &*vol1);
  auto b = ReplayTrace(rec.trace, sys2.get(), &*vol2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean_latency_s, b->mean_latency_s);
  EXPECT_DOUBLE_EQ(a->elapsed_seconds, b->elapsed_seconds);
}

}  // namespace
}  // namespace ldb
