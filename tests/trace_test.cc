#include <vector>

#include <gtest/gtest.h>

#include "storage/disk.h"
#include "storage/storage_system.h"
#include "trace/analyzer.h"
#include "trace/trace.h"
#include "util/units.h"

namespace ldb {
namespace {

IoEvent MakeEvent(double submit, double complete, ObjectId obj,
                  int64_t logical, int64_t size, bool write = false) {
  IoEvent ev;
  ev.submit_time = submit;
  ev.complete_time = complete;
  ev.target = 0;
  ev.object = obj;
  ev.offset = logical;  // target offset irrelevant to the analyzer
  ev.logical_offset = logical;
  ev.size = size;
  ev.is_write = write;
  return ev;
}

// ---------------------------------------------------------------- IoTrace

TEST(IoTraceTest, DurationSpansSubmitToComplete) {
  IoTrace t;
  t.Add(MakeEvent(1.0, 1.5, 0, 0, 8 * kKiB));
  t.Add(MakeEvent(2.0, 4.0, 0, 8 * kKiB, 8 * kKiB));
  EXPECT_DOUBLE_EQ(t.Duration(), 3.0);
  EXPECT_EQ(t.size(), 2u);
}

TEST(IoTraceTest, EmptyTraceHasZeroDuration) {
  IoTrace t;
  EXPECT_DOUBLE_EQ(t.Duration(), 0.0);
  EXPECT_TRUE(t.empty());
}

TEST(IoTraceTest, CountsPerObject) {
  IoTrace t;
  t.Add(MakeEvent(0, 1, 3, 0, kKiB));
  t.Add(MakeEvent(1, 2, 3, 0, kKiB));
  t.Add(MakeEvent(2, 3, 5, 0, kKiB));
  EXPECT_EQ(t.CountForObject(3), 2u);
  EXPECT_EQ(t.CountForObject(5), 1u);
  EXPECT_EQ(t.CountForObject(0), 0u);
}

TEST(TraceCollectorTest, CapturesSystemEvents) {
  DiskModel disk(Scsi15kParams());
  StorageSystem sys({{"d", &disk, 1, 64 * kKiB}});
  TraceCollector collector(&sys);
  for (int i = 0; i < 5; ++i) {
    sys.Submit(0, {i * kMiB, kMiB / 4, false, 2, i * kMiB}, nullptr);
  }
  sys.queue().RunUntilIdle();
  EXPECT_EQ(collector.trace().size(), 5u);
  EXPECT_EQ(collector.trace().CountForObject(2), 5u);
}

// ------------------------------------------------------------- Analyzer

TEST(AnalyzerTest, RejectsEmptyTrace) {
  TraceAnalyzer analyzer;
  IoTrace t;
  EXPECT_FALSE(analyzer.Analyze(t, 1).ok());
}

TEST(AnalyzerTest, RejectsUnknownObject) {
  TraceAnalyzer analyzer;
  IoTrace t;
  t.Add(MakeEvent(0, 1, 7, 0, kKiB));
  EXPECT_FALSE(analyzer.Analyze(t, 3).ok());
}

TEST(AnalyzerTest, FitsRatesAndSizes) {
  TraceAnalyzer analyzer;
  IoTrace t;
  // Object 0: 10 reads of 8 KiB over 10 seconds; 5 writes of 64 KiB.
  for (int i = 0; i < 10; ++i) {
    t.Add(MakeEvent(i, i + 0.01, 0, 100 * kMiB * i, 8 * kKiB, false));
  }
  for (int i = 0; i < 5; ++i) {
    t.Add(MakeEvent(i + 0.5, i + 0.51, 0, 500 * kMiB + 100 * kMiB * i,
                    64 * kKiB, true));
  }
  // Duration = 10.01 - 0 (first submit 0 ... last complete 10.01... actually
  // last read completes at 9.01, last write at 5.51 -> duration 9.01).
  auto ws = analyzer.Analyze(t, 1);
  ASSERT_TRUE(ws.ok());
  const WorkloadDesc& w = (*ws)[0];
  const double duration = t.Duration();
  EXPECT_NEAR(w.read_rate, 10.0 / duration, 1e-9);
  EXPECT_NEAR(w.write_rate, 5.0 / duration, 1e-9);
  EXPECT_DOUBLE_EQ(w.read_size, 8 * kKiB);
  EXPECT_DOUBLE_EQ(w.write_size, 64 * kKiB);
}

TEST(AnalyzerTest, DetectsSequentialRuns) {
  TraceAnalyzer analyzer;
  IoTrace t;
  // Runs of exactly 4 sequential 8 KiB requests, then a far jump.
  int64_t base = 0;
  double time = 0;
  for (int run = 0; run < 8; ++run) {
    for (int r = 0; r < 4; ++r) {
      t.Add(MakeEvent(time, time + 0.001, 0, base + r * 8 * kKiB, 8 * kKiB));
      time += 0.01;
    }
    base += kGiB;  // non-sequential jump
  }
  auto ws = analyzer.Analyze(t, 1);
  ASSERT_TRUE(ws.ok());
  EXPECT_NEAR((*ws)[0].run_count, 4.0, 1e-9);
}

TEST(AnalyzerTest, FullyRandomHasRunCountOne) {
  TraceAnalyzer analyzer;
  IoTrace t;
  double time = 0;
  for (int i = 0; i < 50; ++i) {
    t.Add(MakeEvent(time, time + 0.001, 0, (i % 2 == 0 ? i : 50 - i) * kGiB,
                    8 * kKiB));
    time += 0.01;
  }
  auto ws = analyzer.Analyze(t, 1);
  ASSERT_TRUE(ws.ok());
  EXPECT_NEAR((*ws)[0].run_count, 1.0, 1e-9);
}

TEST(AnalyzerTest, SmallForwardSkipsStaySequential) {
  AnalyzerOptions opts;
  opts.sequential_slack_bytes = 16 * kKiB;
  TraceAnalyzer analyzer(opts);
  IoTrace t;
  double time = 0;
  int64_t off = 0;
  for (int i = 0; i < 10; ++i) {
    t.Add(MakeEvent(time, time + 0.001, 0, off, 8 * kKiB));
    off += 8 * kKiB + 8 * kKiB;  // skip 8 KiB forward each time
    time += 0.01;
  }
  auto ws = analyzer.Analyze(t, 1);
  ASSERT_TRUE(ws.ok());
  EXPECT_NEAR((*ws)[0].run_count, 10.0, 1e-9);
}

TEST(AnalyzerTest, OverlapDetectedForConcurrentStreams) {
  AnalyzerOptions opts;
  opts.overlap_window_s = 0.05;
  TraceAnalyzer analyzer(opts);
  IoTrace t;
  // Objects 0 and 1 interleaved in time; object 2 active much later.
  for (int i = 0; i < 20; ++i) {
    const double time = i * 0.1;
    t.Add(MakeEvent(time, time + 0.02, 0, i * kMiB, 8 * kKiB));
    t.Add(MakeEvent(time + 0.03, time + 0.05, 1, i * kMiB, 8 * kKiB));
  }
  for (int i = 0; i < 20; ++i) {
    const double time = 100 + i * 0.1;
    t.Add(MakeEvent(time, time + 0.02, 2, i * kMiB, 8 * kKiB));
  }
  auto ws = analyzer.Analyze(t, 3);
  ASSERT_TRUE(ws.ok());
  EXPECT_GT((*ws)[0].overlap[1], 0.9);
  EXPECT_GT((*ws)[1].overlap[0], 0.9);
  EXPECT_LT((*ws)[0].overlap[2], 0.05);
  EXPECT_LT((*ws)[2].overlap[0], 0.05);
  EXPECT_DOUBLE_EQ((*ws)[0].overlap[0], 0.0);  // self-overlap not defined
}

TEST(AnalyzerTest, IdleObjectGetsZeroWorkload) {
  TraceAnalyzer analyzer;
  IoTrace t;
  t.Add(MakeEvent(0, 1, 0, 0, 8 * kKiB));
  t.Add(MakeEvent(1, 2, 0, 8 * kKiB, 8 * kKiB));
  auto ws = analyzer.Analyze(t, 2);
  ASSERT_TRUE(ws.ok());
  EXPECT_DOUBLE_EQ((*ws)[1].total_rate(), 0.0);
  EXPECT_DOUBLE_EQ((*ws)[1].run_count, 1.0);
  EXPECT_EQ((*ws)[1].overlap.size(), 2u);
}

TEST(AnalyzerTest, WorkloadsAreValid) {
  TraceAnalyzer analyzer;
  IoTrace t;
  for (int i = 0; i < 30; ++i) {
    t.Add(MakeEvent(i * 0.01, i * 0.01 + 0.005, i % 3, i * kMiB, 8 * kKiB,
                    i % 4 == 0));
  }
  auto ws = analyzer.Analyze(t, 3);
  ASSERT_TRUE(ws.ok());
  for (size_t i = 0; i < ws->size(); ++i) {
    EXPECT_TRUE(IsValidWorkload((*ws)[i], 3, i));
  }
}

}  // namespace
}  // namespace ldb
