// Full advisor pipeline on the paper's homogeneous setup (Section 6.2):
//
//   1. build a TPC-H database on four simulated 15K-RPM disks;
//   2. run the OLAP1-63 workload under the stripe-everything-everywhere
//      (SEE) baseline, collecting an I/O trace;
//   3. fit Rome-style workload descriptions from the trace;
//   4. ask the layout advisor for an optimized layout;
//   5. re-run the workload under the recommended layout and compare.
//
// Usage: trace_pipeline [scale]   (default scale 0.05)

#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "core/baselines.h"
#include "core/harness.h"
#include "util/table.h"
#include "util/units.h"
#include "workload/catalog.h"
#include "workload/spec.h"

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // 1. The rig: TPC-H catalog + four identical single-disk targets.
  ldb::Catalog catalog = ldb::Catalog::TpcH(scale);
  auto rig = ldb::ExperimentRig::Create(
      catalog,
      {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}}, scale);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }

  auto olap = ldb::MakeOlapSpec(rig->catalog(), /*copies=*/3,
                                /*concurrency=*/1, /*shuffle_seed=*/7);
  if (!olap.ok()) {
    std::fprintf(stderr, "spec: %s\n", olap.status().ToString().c_str());
    return 1;
  }
  std::printf("Workload: %s (%zu queries), TPC-H scale %.3g\n",
              olap->name.c_str(), olap->queries.size(), scale);

  // 2-3. Trace under SEE and fit workload descriptions.
  const ldb::Layout see = ldb::Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), rig->num_targets());
  auto workloads = rig->FitWorkloads(see, &*olap, nullptr);
  if (!workloads.ok()) {
    std::fprintf(stderr, "fit: %s\n", workloads.status().ToString().c_str());
    return 1;
  }

  // 4. Recommend a layout.
  auto problem = rig->MakeProblem(*workloads);
  if (!problem.ok()) {
    std::fprintf(stderr, "problem: %s\n",
                 problem.status().ToString().c_str());
    return 1;
  }
  ldb::LayoutAdvisor advisor;
  auto rec = advisor.Recommend(*problem);
  if (!rec.ok()) {
    std::fprintf(stderr, "advisor: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("\nAdvisor time: %.2fs (solver %.2fs, regularization %.2fs)\n",
              rec->total_seconds(), rec->solver_seconds,
              rec->regularization_seconds);
  std::printf("\nRecommended layout:\n%s\n",
              rec->final_layout.ToString(rig->catalog().names()).c_str());

  // 5. Execute both layouts.
  auto run_see = rig->Execute(see, &*olap, nullptr);
  auto run_opt = rig->Execute(rec->final_layout, &*olap, nullptr);
  if (!run_see.ok() || !run_opt.ok()) {
    std::fprintf(stderr, "execution failed\n");
    return 1;
  }
  ldb::TextTable table({"Layout", "Elapsed (s)", "Speedup"});
  table.AddRow({"SEE (baseline)",
                ldb::StrFormat("%.0f", run_see->elapsed_seconds), "1.00x"});
  table.AddRow({"Optimized",
                ldb::StrFormat("%.0f", run_opt->elapsed_seconds),
                ldb::StrFormat("%.2fx", run_see->elapsed_seconds /
                                            run_opt->elapsed_seconds)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
