// Storage configuration: from unconfigured devices to a configured,
// laid-out system (the paper's Section 8 future-work direction, after
// HP's Disk Array Designer).
//
// Given a pool of four bare 15K disks and one SSD, the configurator
// enumerates ways of grouping the disks into RAID0 targets (4, 3+1, 2+2,
// 2+1+1, 1+1+1+1), runs the layout advisor on each candidate
// configuration with the TPC-H OLAP8-63 workload, and reports the
// configuration + layout with the lowest maximum estimated utilization.
//
// Usage: configure [scale]   (default 0.05)

#include <cstdio>
#include <cstdlib>

#include "core/configurator.h"
#include "core/harness.h"
#include "model/calibration.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "workload/catalog.h"
#include "workload/spec.h"

int main(int argc, char** argv) {
  using namespace ldb;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // Fit workload descriptions the usual way (trace under SEE on a plain
  // four-disk rig).
  Catalog catalog = Catalog::TpcH(scale);
  auto rig = ExperimentRig::Create(
      catalog, {{"d0"}, {"d1"}, {"d2"}, {"d3"}}, scale);
  if (!rig.ok()) return 1;
  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, 7);
  if (!olap.ok()) return 1;
  const Layout see = Layout::StripeEverythingEverywhere(
      catalog.num_objects(), rig->num_targets());
  auto workloads = rig->FitWorkloads(see, &*olap, nullptr);
  if (!workloads.ok()) return 1;

  // Calibrate cost models for the raw device types.
  DiskModel disk_proto(Scsi15kParams());
  SsdModel ssd_proto(SsdParams{});
  auto disk_cm = CalibrateDevice(disk_proto);
  auto ssd_cm = CalibrateDevice(ssd_proto);
  if (!disk_cm.ok() || !ssd_cm.ok()) return 1;

  // Describe the unconfigured resources.
  ConfiguratorInput input;
  input.object_names = catalog.names();
  input.object_sizes = catalog.sizes();
  for (const DbObject& o : catalog.objects()) {
    input.object_kinds.push_back(o.kind);
  }
  input.workloads = *workloads;
  DevicePool disks;
  disks.name = "disk";
  disks.count = 4;
  disks.capacity_bytes = static_cast<int64_t>(18.4 * scale * kGiB);
  disks.cost_model = &*disk_cm;
  input.pools.push_back(disks);
  DevicePool ssd;
  ssd.name = "ssd";
  ssd.count = 1;
  ssd.capacity_bytes = static_cast<int64_t>(8.0 * scale * kGiB);
  ssd.cost_model = &*ssd_cm;
  ssd.allow_grouping = false;
  input.pools.push_back(ssd);

  std::printf(
      "Configuring %d objects onto 4 unconfigured disks + 1 SSD...\n",
      catalog.num_objects());
  auto result = RecommendConfiguration(input);
  if (!result.ok()) {
    std::fprintf(stderr, "configurator: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Best configuration: %s (%d targets)\n",
              result->description.c_str(), result->problem.num_targets());
  std::printf("Estimated max utilization: %.1f%%\n",
              100 * result->advice.max_utilization_final);
  std::printf("\nLayout:\n%s",
              result->advice.final_layout.ToString(catalog.names()).c_str());
  return 0;
}
