// Quickstart: the layout advisor on a hand-specified problem.
//
// This example skips the simulation machinery entirely: you describe your
// database objects, their I/O workloads (Rome-style statistics), and your
// storage targets with calibrated cost models — then ask the advisor for a
// layout. This is the standalone-advisor deployment mode the paper
// proposes (Section 8).

#include <cstdio>

#include "core/advisor.h"
#include "core/baselines.h"
#include "model/calibration.h"
#include "storage/disk.h"
#include "util/table.h"
#include "util/units.h"

int main() {
  using namespace ldb;

  // 1. Calibrate a cost model for the device type backing the targets.
  //    (With real hardware you would measure the calibration workloads on
  //    the device; here we calibrate the bundled 15K-RPM disk model.)
  DiskModel disk(Scsi15kParams());
  auto cost_model = CalibrateDevice(disk);
  if (!cost_model.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 cost_model.status().ToString().c_str());
    return 1;
  }

  // 2. Describe the layout problem: three objects on two disks.
  LayoutProblem problem;
  problem.object_names = {"SALES", "SALES_PKEY", "AUDIT_LOG"};
  problem.object_sizes = {6 * kGiB, kGiB, 2 * kGiB};
  problem.object_kinds = {ObjectKind::kTable, ObjectKind::kIndex,
                          ObjectKind::kLog};

  // SALES: heavy sequential scans; SALES_PKEY: random point reads that
  // always run while SALES is scanned; AUDIT_LOG: sequential appends.
  WorkloadDesc sales;
  sales.read_rate = 300;
  sales.read_size = 128 * kKiB;
  sales.run_count = 200;
  sales.overlap = {0.0, 0.9, 0.2};
  WorkloadDesc pkey;
  pkey.read_rate = 80;
  pkey.read_size = 8 * kKiB;
  pkey.run_count = 1;
  pkey.overlap = {0.9, 0.0, 0.2};
  WorkloadDesc log;
  log.write_rate = 40;
  log.write_size = 16 * kKiB;
  log.run_count = 500;
  log.overlap = {0.5, 0.5, 0.0};
  problem.workloads = {sales, pkey, log};

  for (int j = 0; j < 2; ++j) {
    AdvisorTarget t;
    t.name = StrFormat("disk%d", j);
    t.capacity_bytes = 18 * kGiB;
    t.cost_model = &*cost_model;
    problem.targets.push_back(t);
  }

  // 3. Recommend a layout and compare with SEE.
  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(problem);
  if (!rec.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }
  const TargetModel model = problem.MakeTargetModel();
  const Layout see = SeeBaseline(problem);

  std::printf("Recommended layout:\n%s\n",
              rec->final_layout.ToString(problem.object_names).c_str());
  std::printf("Estimated max utilization: SEE %.1f%% -> optimized %.1f%%\n",
              100 * model.MaxUtilization(problem.workloads, see),
              100 * rec->max_utilization_final);
  std::printf("Advisor time: %.0f ms (solver %.0f ms, regularization "
              "%.0f ms)\n",
              1e3 * rec->total_seconds(), 1e3 * rec->solver_seconds,
              1e3 * rec->regularization_seconds);
  return 0;
}
