// Consolidation: two database instances (an OLAP TPC-H and an OLTP TPC-C)
// share the same four disks, and the advisor lays out all 40 objects at
// once (paper Section 6.3).
//
// Demonstrates multi-database layout problems and the mixed OLAP+OLTP
// execution protocol (OLTP terminals run until the OLAP workload
// completes; throughput is reported as transactions/minute).
//
// Usage: consolidation [scale]   (default 0.05)

#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "core/harness.h"
#include "util/table.h"
#include "workload/catalog.h"
#include "workload/spec.h"

int main(int argc, char** argv) {
  using namespace ldb;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // One catalog holding both databases; TPC-C objects get a C_ prefix.
  Catalog merged = Catalog::Merge(Catalog::TpcH(scale), Catalog::TpcC(scale),
                                  "", "C_");
  auto rig = ExperimentRig::Create(
      merged, {{"disk0"}, {"disk1"}, {"disk2"}, {"disk3"}}, scale);
  if (!rig.ok()) return 1;

  auto olap = MakeOlapSpec(rig->catalog(), /*copies=*/1, /*concurrency=*/1,
                           /*shuffle_seed=*/7);
  auto oltp = MakeOltpSpec(rig->catalog(), "C_", /*terminals=*/9,
                           /*warmup_s=*/5.0);
  if (!olap.ok() || !oltp.ok()) return 1;
  std::printf("Laying out %d objects from two databases (%s + %s)\n",
              merged.num_objects(), olap->name.c_str(), oltp->name.c_str());

  const Layout see = Layout::StripeEverythingEverywhere(
      merged.num_objects(), rig->num_targets());
  auto workloads = rig->FitWorkloads(see, &*olap, &*oltp);
  if (!workloads.ok()) return 1;
  auto problem = rig->MakeProblem(std::move(workloads).value());
  if (!problem.ok()) return 1;

  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(*problem);
  if (!rec.ok()) return 1;

  auto see_run = rig->Execute(see, &*olap, &*oltp);
  auto opt_run = rig->Execute(rec->final_layout, &*olap, &*oltp);
  if (!see_run.ok() || !opt_run.ok()) return 1;

  TextTable table({"Layout", "OLAP elapsed (s)", "OLTP (tpm)"});
  table.AddRow({"SEE", StrFormat("%.0f", see_run->elapsed_seconds),
                StrFormat("%.0f", see_run->tpm)});
  table.AddRow({"Optimized", StrFormat("%.0f", opt_run->elapsed_seconds),
                StrFormat("%.0f", opt_run->tpm)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf("OLAP speedup %.2fx; OLTP throughput ratio %.2fx\n",
              see_run->elapsed_seconds / opt_run->elapsed_seconds,
              opt_run->tpm / see_run->tpm);
  return 0;
}
