// Heterogeneous storage: the advisor on a mixed RAID0 + single-disk + SSD
// configuration (the scenarios of paper Sections 6.4/6.5).
//
// Demonstrates how the advisor exploits performance asymmetry: fast
// targets attract the latency-critical random workloads, big striped
// groups take the sequential scans, and the layout respects each target's
// capacity.
//
// Usage: heterogeneous [scale]   (default 0.05)

#include <cstdio>
#include <cstdlib>

#include "core/advisor.h"
#include "core/harness.h"
#include "util/table.h"
#include "workload/catalog.h"
#include "workload/spec.h"

int main(int argc, char** argv) {
  using namespace ldb;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // A 2-disk RAID0 group, one standalone disk, and a 10 GB SSD.
  std::vector<RigTargetDef> targets{{"raid0x2", 2}, {"disk", 1}};
  targets.push_back(RigTargetDef{"ssd", 1, true, 10 * kGiB});
  auto rig = ExperimentRig::Create(Catalog::TpcH(scale), targets, scale);
  if (!rig.ok()) {
    std::fprintf(stderr, "rig: %s\n", rig.status().ToString().c_str());
    return 1;
  }

  auto olap = MakeOlapSpec(rig->catalog(), 3, 8, 7);
  if (!olap.ok()) return 1;

  const Layout see = Layout::StripeEverythingEverywhere(
      rig->catalog().num_objects(), rig->num_targets());
  auto workloads = rig->FitWorkloads(see, &*olap, nullptr);
  if (!workloads.ok()) return 1;
  auto problem = rig->MakeProblem(std::move(workloads).value());
  if (!problem.ok()) return 1;

  LayoutAdvisor advisor;
  auto rec = advisor.Recommend(*problem);
  if (!rec.ok()) {
    std::fprintf(stderr, "advisor: %s\n", rec.status().ToString().c_str());
    return 1;
  }
  std::printf("Recommended layout (raid0x2 / disk / ssd):\n%s\n",
              rec->final_layout.ToString(rig->catalog().names()).c_str());

  auto see_run = rig->Execute(see, &*olap, nullptr);
  auto opt_run = rig->Execute(rec->final_layout, &*olap, nullptr);
  if (!see_run.ok() || !opt_run.ok()) return 1;

  TextTable table({"Layout", "Elapsed (s)", "raid0x2 util", "disk util",
                   "ssd util"});
  auto row = [&](const char* name, const RunResult& r) {
    table.AddRow({name, StrFormat("%.0f", r.elapsed_seconds),
                  StrFormat("%.0f%%", 100 * r.utilization[0]),
                  StrFormat("%.0f%%", 100 * r.utilization[1]),
                  StrFormat("%.0f%%", 100 * r.utilization[2])});
  };
  row("SEE", *see_run);
  row("Optimized", *opt_run);
  std::printf("%s\nSpeedup: %.2fx\n", table.ToString().c_str(),
              see_run->elapsed_seconds / opt_run->elapsed_seconds);
  return 0;
}
