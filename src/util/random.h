#ifndef LAYOUTDB_UTIL_RANDOM_H_
#define LAYOUTDB_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ldb {

/// Derives a decorrelated seed for stream number `stream` of a family of
/// generators rooted at `seed` (a splitmix64 finalization of the pair).
/// Equal inputs give equal outputs, so parallel code can give each work
/// item its own Rng — `Rng(MixSeed(seed, index))` — and stay bit-identical
/// regardless of how items are scheduled over threads.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Used throughout the simulator and solver so that every experiment is
/// reproducible from a seed. Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the generator. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 42);

  /// Returns a uniform random 64-bit value.
  uint64_t Next();

  /// Returns a uniform double in [0, 1).
  double Uniform();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns an exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Randomly permutes `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_RANDOM_H_
