#ifndef LAYOUTDB_UTIL_STATUS_H_
#define LAYOUTDB_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace ldb {

/// Error categories for fallible library operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kCapacityExceeded,
  kInfeasible,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
};

/// Returns a human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Lightweight error-or-success type for recoverable failures.
///
/// Library operations that can fail due to caller input (e.g., an infeasible
/// layout problem) return Status or Result<T>; invariant violations use
/// LDB_CHECK instead. The library is exception-free.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs an error status with a message. `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    LDB_CHECK(code != StatusCode::kOk);
  }

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error. Holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::...;`.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    LDB_CHECK_MSG(!std::get<Status>(data_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  /// Requires ok().
  const T& value() const& {
    LDB_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(data_).message().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    LDB_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(data_).message().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    LDB_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(data_).message().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression returning Status.
#define LDB_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ldb::Status ldb_status__ = (expr);         \
    if (!ldb_status__.ok()) return ldb_status__; \
  } while (0)

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_STATUS_H_
