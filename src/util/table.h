#ifndef LAYOUTDB_UTIL_TABLE_H_
#define LAYOUTDB_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace ldb {

/// Plain-text table builder used by the benchmark harnesses to print
/// paper-style result tables.
///
/// Usage:
///   TextTable t({"Workload", "SEE (s)", "Optimized (s)", "Speedup"});
///   t.AddRow({"OLAP1-63", "40927", "31879", "1.28x"});
///   std::cout << t.ToString();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with aligned columns and a header separator.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style std::string formatting helper.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_TABLE_H_
