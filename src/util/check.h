#ifndef LAYOUTDB_UTIL_CHECK_H_
#define LAYOUTDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Assertion macros for programmer errors (invariant violations).
///
/// These terminate the process; they are for conditions that indicate a bug
/// in the caller or in the library itself, never for recoverable runtime
/// errors (use ldb::Status / ldb::Result for those).

/// Aborts with a message if `cond` is false. Enabled in all build types.
#define LDB_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Aborts with a formatted message if `cond` is false.
#define LDB_CHECK_MSG(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "LDB_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Comparison checks with operand printing.
#define LDB_CHECK_OP(op, a, b)                                               \
  do {                                                                      \
    if (!((a)op(b))) {                                                      \
      std::fprintf(stderr, "LDB_CHECK failed at %s:%d: %s %s %s (%g vs %g)\n", \
                   __FILE__, __LINE__, #a, #op, #b,                         \
                   static_cast<double>(a), static_cast<double>(b));         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define LDB_CHECK_EQ(a, b) LDB_CHECK_OP(==, a, b)
#define LDB_CHECK_NE(a, b) LDB_CHECK_OP(!=, a, b)
#define LDB_CHECK_LT(a, b) LDB_CHECK_OP(<, a, b)
#define LDB_CHECK_LE(a, b) LDB_CHECK_OP(<=, a, b)
#define LDB_CHECK_GT(a, b) LDB_CHECK_OP(>, a, b)
#define LDB_CHECK_GE(a, b) LDB_CHECK_OP(>=, a, b)

#endif  // LAYOUTDB_UTIL_CHECK_H_
