#include "util/interp.h"

#include <algorithm>

#include "util/check.h"

namespace ldb {

void LocateOnAxis(const std::vector<double>& axis, double x, size_t* index,
                  double* weight) {
  LDB_CHECK(!axis.empty());
  if (axis.size() == 1 || x <= axis.front()) {
    *index = 0;
    *weight = 0.0;
    return;
  }
  if (x >= axis.back()) {
    *index = axis.size() - 2;
    *weight = 1.0;
    return;
  }
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const size_t hi = static_cast<size_t>(it - axis.begin());
  const size_t lo = hi - 1;
  *index = lo;
  *weight = (x - axis[lo]) / (axis[hi] - axis[lo]);
}

Result<GridInterpolator> GridInterpolator::Create(
    std::vector<std::vector<double>> axes, std::vector<double> values) {
  if (axes.empty()) {
    return Status::InvalidArgument("interpolator needs at least one axis");
  }
  size_t expected = 1;
  for (const auto& axis : axes) {
    if (axis.empty()) {
      return Status::InvalidArgument("empty interpolation axis");
    }
    for (size_t i = 1; i < axis.size(); ++i) {
      if (axis[i] <= axis[i - 1]) {
        return Status::InvalidArgument(
            "interpolation axis must be strictly increasing");
      }
    }
    expected *= axis.size();
  }
  if (values.size() != expected) {
    return Status::InvalidArgument("value array size does not match grid");
  }
  std::vector<size_t> strides(axes.size());
  size_t stride = 1;
  for (size_t d = axes.size(); d-- > 0;) {
    strides[d] = stride;
    stride *= axes[d].size();
  }
  return GridInterpolator(std::move(axes), std::move(values),
                          std::move(strides));
}

GridInterpolator::GridInterpolator(std::vector<std::vector<double>> axes,
                                   std::vector<double> values,
                                   std::vector<size_t> strides)
    : axes_(std::move(axes)),
      values_(std::move(values)),
      strides_(std::move(strides)) {}

double GridInterpolator::At(const std::vector<double>& point) const {
  return At(point.data(), point.size());
}

double GridInterpolator::At(const double* point, size_t dims) const {
  LDB_CHECK_EQ(dims, axes_.size());
  // Per-axis cell index and upper-edge weight, on the stack: grid models in
  // this codebase are low-dimensional (cost models use 3 axes) and this
  // function sits inside the solver's inner loop.
  constexpr size_t kMaxDims = 8;
  LDB_CHECK_LE(dims, kMaxDims);
  size_t idx[kMaxDims];
  double w[kMaxDims];
  for (size_t d = 0; d < dims; ++d) {
    LocateOnAxis(axes_[d], point[d], &idx[d], &w[d]);
  }
  // Sum over the 2^dims cell corners.
  const size_t corners = size_t{1} << dims;
  double acc = 0.0;
  for (size_t corner = 0; corner < corners; ++corner) {
    double cw = 1.0;
    size_t offset = 0;
    for (size_t d = 0; d < dims; ++d) {
      const bool upper = (corner >> d) & 1;
      if (upper && axes_[d].size() == 1) {
        cw = 0.0;  // degenerate axis: only the lower corner exists
        break;
      }
      cw *= upper ? w[d] : (1.0 - w[d]);
      offset += (idx[d] + (upper ? 1 : 0)) * strides_[d];
    }
    if (cw > 0.0) acc += cw * values_[offset];
  }
  return acc;
}

}  // namespace ldb
