#include "util/interp.h"

#include <algorithm>

#include "util/check.h"

namespace ldb {

namespace {

/// Stack-array bound for per-axis cell state: grid models in this codebase
/// are low-dimensional (cost models use 3 axes) and these functions sit
/// inside the solver's inner loop.
constexpr size_t kMaxDims = 8;

}  // namespace

void LocateOnAxis(const std::vector<double>& axis, double x, size_t* index,
                  double* weight) {
  LDB_CHECK(!axis.empty());
  if (axis.size() == 1 || x <= axis.front()) {
    *index = 0;
    *weight = 0.0;
    return;
  }
  if (x >= axis.back()) {
    *index = axis.size() - 2;
    *weight = 1.0;
    return;
  }
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  const size_t hi = static_cast<size_t>(it - axis.begin());
  const size_t lo = hi - 1;
  *index = lo;
  *weight = (x - axis[lo]) / (axis[hi] - axis[lo]);
}

Result<GridInterpolator> GridInterpolator::Create(
    std::vector<std::vector<double>> axes, std::vector<double> values) {
  if (axes.empty()) {
    return Status::InvalidArgument("interpolator needs at least one axis");
  }
  size_t expected = 1;
  for (const auto& axis : axes) {
    if (axis.empty()) {
      return Status::InvalidArgument("empty interpolation axis");
    }
    for (size_t i = 1; i < axis.size(); ++i) {
      if (axis[i] <= axis[i - 1]) {
        return Status::InvalidArgument(
            "interpolation axis must be strictly increasing");
      }
    }
    expected *= axis.size();
  }
  if (values.size() != expected) {
    return Status::InvalidArgument("value array size does not match grid");
  }
  std::vector<size_t> strides(axes.size());
  size_t stride = 1;
  for (size_t d = axes.size(); d-- > 0;) {
    strides[d] = stride;
    stride *= axes[d].size();
  }
  return GridInterpolator(std::move(axes), std::move(values),
                          std::move(strides));
}

GridInterpolator::GridInterpolator(std::vector<std::vector<double>> axes,
                                   std::vector<double> values,
                                   std::vector<size_t> strides)
    : axes_(std::move(axes)),
      values_(std::move(values)),
      strides_(std::move(strides)) {}

double GridInterpolator::At(const std::vector<double>& point) const {
  return At(point.data(), point.size());
}

double GridInterpolator::At(const double* point, size_t dims) const {
  LDB_CHECK_EQ(dims, axes_.size());
  LDB_CHECK_LE(dims, kMaxDims);
  return ValueCore(point, dims);
}

double GridInterpolator::ValueCore(const double* point, size_t dims) const {
  // Per-axis cell index and upper-edge weight, on the stack.
  size_t idx[kMaxDims];
  double w[kMaxDims];
  for (size_t d = 0; d < dims; ++d) {
    LocateOnAxis(axes_[d], point[d], &idx[d], &w[d]);
  }
  // Sum over the 2^dims cell corners.
  const size_t corners = size_t{1} << dims;
  double acc = 0.0;
  for (size_t corner = 0; corner < corners; ++corner) {
    double cw = 1.0;
    size_t offset = 0;
    for (size_t d = 0; d < dims; ++d) {
      const bool upper = (corner >> d) & 1;
      if (upper && axes_[d].size() == 1) {
        cw = 0.0;  // degenerate axis: only the lower corner exists
        break;
      }
      cw *= upper ? w[d] : (1.0 - w[d]);
      offset += (idx[d] + (upper ? 1 : 0)) * strides_[d];
    }
    if (cw > 0.0) acc += cw * values_[offset];
  }
  return acc;
}

double GridInterpolator::ValueGradCore(const double* point, size_t dims,
                                       double* grad_out) const {
  size_t idx[kMaxDims];
  double w[kMaxDims];
  double dwdx[kMaxDims];  // d(weight)/d(coordinate); 0 where clamped
  for (size_t d = 0; d < dims; ++d) {
    const std::vector<double>& axis = axes_[d];
    LocateOnAxis(axis, point[d], &idx[d], &w[d]);
    dwdx[d] = (axis.size() < 2 || point[d] < axis.front() ||
               point[d] > axis.back())
                  ? 0.0
                  : 1.0 / (axis[idx[d] + 1] - axis[idx[d]]);
  }
  const size_t corners = size_t{1} << dims;
  double acc = 0.0;
  double dacc[kMaxDims] = {0.0};
  for (size_t corner = 0; corner < corners; ++corner) {
    double factor[kMaxDims];
    double cw = 1.0;
    size_t offset = 0;
    bool degenerate = false;
    for (size_t d = 0; d < dims; ++d) {
      const bool upper = (corner >> d) & 1;
      if (upper && axes_[d].size() == 1) {
        degenerate = true;  // corner does not exist; contributes nothing
        break;
      }
      factor[d] = upper ? w[d] : (1.0 - w[d]);
      cw *= factor[d];
      offset += (idx[d] + (upper ? 1 : 0)) * strides_[d];
    }
    if (degenerate) continue;
    const double v = values_[offset];
    if (cw > 0.0) acc += cw * v;
    // d(cw)/d(w_d) = ±Π_{e≠d} factor_e; recomputing the small product per
    // axis avoids dividing by factors that may be exactly zero.
    for (size_t d = 0; d < dims; ++d) {
      if (dwdx[d] == 0.0) continue;
      double others = 1.0;
      for (size_t e = 0; e < dims; ++e) {
        if (e != d) others *= factor[e];
      }
      if (others == 0.0) continue;
      const bool upper = (corner >> d) & 1;
      dacc[d] += (upper ? others : -others) * v;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    if (grad_out != nullptr) grad_out[d] = dacc[d] * dwdx[d];
  }
  return acc;
}

double GridInterpolator::Value3(const double* point) const {
  size_t i0, i1, i2;
  double w0, w1, w2;
  LocateOnAxis(axes_[0], point[0], &i0, &w0);
  LocateOnAxis(axes_[1], point[1], &i1, &w1);
  LocateOnAxis(axes_[2], point[2], &i2, &w2);
  // A single-entry axis locates to i=0, w=0; aliasing its upper corner to
  // the lower one keeps the lerp exact without branching in the gather.
  const size_t j0 = axes_[0].size() == 1 ? i0 : i0 + 1;
  const size_t j1 = axes_[1].size() == 1 ? i1 : i1 + 1;
  const size_t j2 = axes_[2].size() == 1 ? i2 : i2 + 1;
  const size_t s0 = strides_[0], s1 = strides_[1], s2 = strides_[2];
  const double* v = values_.data();
  const size_t lo0 = i0 * s0, hi0 = j0 * s0;
  const size_t lo1 = i1 * s1, hi1 = j1 * s1;
  const double v000 = v[lo0 + lo1 + i2 * s2], v001 = v[lo0 + lo1 + j2 * s2];
  const double v010 = v[lo0 + hi1 + i2 * s2], v011 = v[lo0 + hi1 + j2 * s2];
  const double v100 = v[hi0 + lo1 + i2 * s2], v101 = v[hi0 + lo1 + j2 * s2];
  const double v110 = v[hi0 + hi1 + i2 * s2], v111 = v[hi0 + hi1 + j2 * s2];
  // Lerp chain, innermost axis first.
  const double a00 = v000 + w2 * (v001 - v000);
  const double a01 = v010 + w2 * (v011 - v010);
  const double a10 = v100 + w2 * (v101 - v100);
  const double a11 = v110 + w2 * (v111 - v110);
  const double b0 = a00 + w1 * (a01 - a00);
  const double b1 = a10 + w1 * (a11 - a10);
  return b0 + w0 * (b1 - b0);
}

double GridInterpolator::ValueGrad3(const double* point,
                                    double* grad_out) const {
  size_t i0, i1, i2;
  double w0, w1, w2;
  LocateOnAxis(axes_[0], point[0], &i0, &w0);
  LocateOnAxis(axes_[1], point[1], &i1, &w1);
  LocateOnAxis(axes_[2], point[2], &i2, &w2);
  auto slope = [](const std::vector<double>& axis, double x,
                  size_t i) -> double {
    // 0 where the query clamps (the interpolant is constant there) or the
    // axis is degenerate; otherwise d(weight)/d(coordinate) on the cell.
    return (axis.size() < 2 || x < axis.front() || x > axis.back())
               ? 0.0
               : 1.0 / (axis[i + 1] - axis[i]);
  };
  const double dw0 = slope(axes_[0], point[0], i0);
  const double dw1 = slope(axes_[1], point[1], i1);
  const double dw2 = slope(axes_[2], point[2], i2);
  const size_t j0 = axes_[0].size() == 1 ? i0 : i0 + 1;
  const size_t j1 = axes_[1].size() == 1 ? i1 : i1 + 1;
  const size_t j2 = axes_[2].size() == 1 ? i2 : i2 + 1;
  const size_t s0 = strides_[0], s1 = strides_[1], s2 = strides_[2];
  const double* v = values_.data();
  const size_t lo0 = i0 * s0, hi0 = j0 * s0;
  const size_t lo1 = i1 * s1, hi1 = j1 * s1;
  const double v000 = v[lo0 + lo1 + i2 * s2], v001 = v[lo0 + lo1 + j2 * s2];
  const double v010 = v[lo0 + hi1 + i2 * s2], v011 = v[lo0 + hi1 + j2 * s2];
  const double v100 = v[hi0 + lo1 + i2 * s2], v101 = v[hi0 + lo1 + j2 * s2];
  const double v110 = v[hi0 + hi1 + i2 * s2], v111 = v[hi0 + hi1 + j2 * s2];
  const double a00 = v000 + w2 * (v001 - v000);
  const double a01 = v010 + w2 * (v011 - v010);
  const double a10 = v100 + w2 * (v101 - v100);
  const double a11 = v110 + w2 * (v111 - v110);
  const double b0 = a00 + w1 * (a01 - a00);
  const double b1 = a10 + w1 * (a11 - a10);
  // ∂value/∂w2 collapses the per-corner differences through the same chain.
  const double e0 = (v001 - v000) + w1 * ((v011 - v010) - (v001 - v000));
  const double e1 = (v101 - v100) + w1 * ((v111 - v110) - (v101 - v100));
  grad_out[0] = (b1 - b0) * dw0;
  grad_out[1] = ((a01 - a00) + w0 * ((a11 - a10) - (a01 - a00))) * dw1;
  grad_out[2] = (e0 + w0 * (e1 - e0)) * dw2;
  return b0 + w0 * (b1 - b0);
}

double GridInterpolator::AtWithGrad(const double* point, size_t dims,
                                    double* grad_out) const {
  LDB_CHECK_EQ(dims, axes_.size());
  LDB_CHECK_LE(dims, kMaxDims);
  LDB_CHECK(grad_out != nullptr);
  return ValueGradCore(point, dims, grad_out);
}

void GridInterpolator::AtBatch(size_t count, const double* const* coords,
                               double* out) const {
  const size_t dims = axes_.size();
  LDB_CHECK_LE(dims, kMaxDims);
  LDB_CHECK(out != nullptr);
  if (dims == 3) {
    const double* c0 = coords[0];
    const double* c1 = coords[1];
    const double* c2 = coords[2];
    for (size_t q = 0; q < count; ++q) {
      const double point[3] = {c0[q], c1[q], c2[q]};
      out[q] = Value3(point);
    }
    return;
  }
  double point[kMaxDims];
  for (size_t q = 0; q < count; ++q) {
    for (size_t d = 0; d < dims; ++d) point[d] = coords[d][q];
    out[q] = ValueCore(point, dims);
  }
}

void GridInterpolator::AtWithGradBatch(size_t count,
                                       const double* const* coords,
                                       double* out,
                                       double* const* grads) const {
  const size_t dims = axes_.size();
  LDB_CHECK_LE(dims, kMaxDims);
  LDB_CHECK(out != nullptr);
  if (dims == 3) {
    const double* c0 = coords[0];
    const double* c1 = coords[1];
    const double* c2 = coords[2];
    double grad[3];
    for (size_t q = 0; q < count; ++q) {
      const double point[3] = {c0[q], c1[q], c2[q]};
      out[q] = ValueGrad3(point, grad);
      if (grads[0] != nullptr) grads[0][q] = grad[0];
      if (grads[1] != nullptr) grads[1][q] = grad[1];
      if (grads[2] != nullptr) grads[2][q] = grad[2];
    }
    return;
  }
  double point[kMaxDims];
  double grad[kMaxDims];
  for (size_t q = 0; q < count; ++q) {
    for (size_t d = 0; d < dims; ++d) point[d] = coords[d][q];
    out[q] = ValueGradCore(point, dims, grad);
    for (size_t d = 0; d < dims; ++d) {
      if (grads[d] != nullptr) grads[d][q] = grad[d];
    }
  }
}

}  // namespace ldb
