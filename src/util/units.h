#ifndef LAYOUTDB_UTIL_UNITS_H_
#define LAYOUTDB_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace ldb {

/// Byte-size constants. All sizes in the library are int64_t bytes; all
/// times are double seconds; all rates are per-second.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

/// Formats a byte count as a human-readable string, e.g. "18.4 GiB".
std::string FormatBytes(int64_t bytes);

/// Formats seconds as "1234.5 s" or "12.3 ms" depending on magnitude.
std::string FormatSeconds(double seconds);

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_UNITS_H_
