#ifndef LAYOUTDB_UTIL_THREAD_POOL_H_
#define LAYOUTDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldb {

/// Fixed-size worker pool with a blocking ParallelFor, the execution engine
/// behind the solver's parallel evaluation paths.
///
/// Design notes for users:
///  * `num_threads` is the total parallelism, caller included: the pool
///    spawns `num_threads - 1` workers and the calling thread participates
///    in every ParallelFor. A pool of 1 spawns nothing and runs inline.
///  * ParallelFor makes no ordering promises between indices, so callers
///    that need deterministic results must write to disjoint, index-addressed
///    slots and perform reductions serially afterwards. All solver uses
///    follow that discipline, which is what makes solver output bit-identical
///    across thread counts.
///  * A ParallelFor issued from inside a pool task runs inline on the
///    calling thread (no deadlock, no extra threads); rank is reported as 0
///    relative to the nested call's own frame.
class ThreadPool {
 public:
  /// Resolves a user-facing thread-count knob: values <= 0 mean "one thread
  /// per hardware core", anything else is taken literally.
  static int EffectiveThreads(int num_threads);

  /// Creates a pool with `num_threads` total execution lanes (clamped to at
  /// least 1). Workers idle on a condition variable between calls.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes `fn(rank, index)` for every index in [0, count), distributing
  /// indices dynamically over all lanes, and blocks until every index has
  /// completed. `rank` is in [0, num_threads()) and is stable for the
  /// duration of one index, making it safe to key per-thread scratch
  /// buffers by rank.
  void ParallelFor(int64_t count,
                   const std::function<void(int rank, int64_t index)>& fn);

 private:
  void WorkerLoop(int rank);
  void RunChunks(int rank, const std::function<void(int, int64_t)>& fn,
                 int64_t count);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int64_t)>* fn_ = nullptr;  // guarded by mu_
  int64_t count_ = 0;                                      // guarded by mu_
  uint64_t epoch_ = 0;                                     // guarded by mu_
  int pending_workers_ = 0;                                // guarded by mu_
  bool stop_ = false;                                      // guarded by mu_
  std::atomic<int64_t> next_{0};
};

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_THREAD_POOL_H_
