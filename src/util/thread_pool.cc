#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace ldb {

namespace {

/// Set while a thread is executing pool work; nested ParallelFor calls from
/// such a thread run inline instead of re-entering the pool.
thread_local bool tls_in_pool_task = false;

}  // namespace

int ThreadPool::EffectiveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int rank = 1; rank < num_threads_; ++rank) {
    workers_.emplace_back([this, rank] { WorkerLoop(rank); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(int rank,
                           const std::function<void(int, int64_t)>& fn,
                           int64_t count) {
  // Dynamic chunking: large enough to keep the atomic off the critical
  // path, small enough to balance uneven per-index work.
  const int64_t chunk =
      std::max<int64_t>(1, count / (8 * static_cast<int64_t>(num_threads_)));
  const bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  for (;;) {
    const int64_t begin = next_.fetch_add(chunk, std::memory_order_relaxed);
    if (begin >= count) break;
    const int64_t end = std::min(begin + chunk, count);
    for (int64_t i = begin; i < end; ++i) fn(rank, i);
  }
  tls_in_pool_task = was_in_task;
}

void ThreadPool::WorkerLoop(int rank) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(int, int64_t)>* fn = nullptr;
    int64_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      fn = fn_;
      count = count_;
    }
    RunChunks(rank, *fn, count);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t count, const std::function<void(int rank, int64_t index)>& fn) {
  if (count <= 0) return;
  if (workers_.empty() || tls_in_pool_task) {
    // Serial pool, or a nested call from inside a task: run inline.
    for (int64_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_workers_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(/*rank=*/0, fn, count);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  fn_ = nullptr;
}

}  // namespace ldb
