#include "util/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "util/table.h"

namespace ldb {

namespace {

constexpr char kWalMagic[8] = {'L', 'D', 'B', 'W', 'A', 'L', '0', '1'};
constexpr size_t kHeaderBytes = sizeof(kWalMagic);
constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc.
// Control-plane records are tiny (tens of bytes); anything this large is a
// corrupt length field, not a real record.
constexpr uint32_t kMaxRecordBytes = 1u << 24;

std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

uint32_t LoadU32Le(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

void StoreU32Le(uint32_t v, char* p) {
  p[0] = static_cast<char>(v & 0xFF);
  p[1] = static_cast<char>((v >> 8) & 0xFF);
  p[2] = static_cast<char>((v >> 16) & 0xFF);
  p[3] = static_cast<char>((v >> 24) & 0xFF);
}

Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("wal %s: write failed: %s",
                                       path.c_str(), std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Result<std::string> ReadAll(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(StrFormat("wal %s: open failed: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::IoError(StrFormat("wal %s: read failed: %s", path.c_str(),
                                       std::strerror(err)));
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

/// Parses `data` (full file contents) per the recovery rules in wal.h.
Result<WalReadResult> ParseWalBytes(const std::string& data,
                                    const std::string& path) {
  WalReadResult result;
  if (data.size() < kHeaderBytes) {
    // A crash before the header sync can leave any prefix of the magic
    // (including an empty file): an empty log. Anything else is foreign.
    if (std::memcmp(data.data(), kWalMagic, data.size()) != 0) {
      return Status::IoError(
          StrFormat("wal %s: not a WAL file (bad header)", path.c_str()));
    }
    result.torn_tail = !data.empty();
    result.valid_bytes = 0;
    return result;
  }
  if (std::memcmp(data.data(), kWalMagic, kHeaderBytes) != 0) {
    return Status::IoError(StrFormat(
        "wal %s: bad magic (not a WAL file or unsupported version)",
        path.c_str()));
  }
  size_t pos = kHeaderBytes;
  result.valid_bytes = static_cast<int64_t>(pos);
  while (pos < data.size()) {
    const size_t remaining = data.size() - pos;
    if (remaining < kFrameHeaderBytes) {
      result.torn_tail = true;  // Partial frame header at EOF.
      return result;
    }
    const uint32_t length = LoadU32Le(data.data() + pos);
    const uint32_t stored_crc = LoadU32Le(data.data() + pos + 4);
    if (length > kMaxRecordBytes) {
      // An absurd length with nothing after the frame header could be a
      // torn header write; with more bytes it is interior corruption.
      if (remaining == kFrameHeaderBytes) {
        result.torn_tail = true;
        return result;
      }
      return Status::IoError(StrFormat(
          "wal %s: corrupt record at offset %zu (implausible length %u)",
          path.c_str(), pos, length));
    }
    if (remaining < kFrameHeaderBytes + length) {
      result.torn_tail = true;  // Payload runs past EOF.
      return result;
    }
    const char* payload = data.data() + pos + kFrameHeaderBytes;
    const uint32_t actual_crc = Crc32c(payload, length);
    if (actual_crc != stored_crc) {
      if (remaining == kFrameHeaderBytes + length) {
        // Final record, bit-flipped or half-written in place: torn tail.
        result.torn_tail = true;
        return result;
      }
      return Status::IoError(StrFormat(
          "wal %s: corrupt record at offset %zu (CRC mismatch)", path.c_str(),
          pos));
    }
    result.records.emplace_back(payload, length);
    pos += kFrameHeaderBytes + length;
    result.valid_bytes = static_cast<int64_t>(pos);
  }
  return result;
}

Status ParseCrashInt(const std::string& value, const std::string& key,
                     int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("journal-crash spec: bad integer '%s' for key '%s'",
                  value.c_str(), key.c_str()));
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = MakeCrc32cTable();
  uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

Result<WalCrashPolicy> ParseWalCrashPolicy(const std::string& text) {
  WalCrashPolicy policy;
  size_t pos = 0;
  int clause_index = 0;
  const auto clause_error = [&clause_index](const std::string& what) {
    return Status::InvalidArgument(StrFormat("journal-crash clause %d: %s",
                                             clause_index, what.c_str()));
  };
  while (pos <= text.size()) {
    const size_t clause_end = std::min(text.find(';', pos), text.size());
    const std::string clause = text.substr(pos, clause_end - pos);
    pos = clause_end + 1;
    if (clause.empty()) continue;
    ++clause_index;
    size_t cpos = 0;
    while (cpos <= clause.size()) {
      const size_t item_end = std::min(clause.find(',', cpos), clause.size());
      const std::string item = clause.substr(cpos, item_end - cpos);
      cpos = item_end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return clause_error(StrFormat("'%s' is not key=value", item.c_str()));
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      int64_t iv = 0;
      if (key == "seed") {
        LDB_RETURN_IF_ERROR(ParseCrashInt(value, key, &iv));
        policy.seed = static_cast<uint64_t>(iv);
      } else if (key == "after") {
        LDB_RETURN_IF_ERROR(ParseCrashInt(value, key, &iv));
        if (iv < 0) return clause_error("after must be >= 0");
        policy.fail_after_appends = iv;
      } else if (key == "torn") {
        LDB_RETURN_IF_ERROR(ParseCrashInt(value, key, &iv));
        if (iv < 0) return clause_error("torn must be >= 0");
        policy.torn_bytes = iv;
      } else if (key == "syncs") {
        LDB_RETURN_IF_ERROR(ParseCrashInt(value, key, &iv));
        if (iv < 0) return clause_error("syncs must be >= 0");
        policy.drop_syncs_after = iv;
      } else {
        return clause_error(StrFormat("unknown key '%s'", key.c_str()));
      }
    }
  }
  if (policy.torn_bytes >= 0 && policy.fail_after_appends < 0) {
    clause_index = 1;
    return clause_error("torn requires after=N (the crashing append)");
  }
  return policy;
}

Result<WalReadResult> ReadWalRecords(const std::string& path) {
  auto data = ReadAll(path);
  if (!data.ok()) return data.status();
  return ParseWalBytes(*data, path);
}

WalWriter::WalWriter(std::string path, int fd, WalCrashPolicy policy)
    : path_(std::move(path)), fd_(fd), policy_(policy) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!crashed_) (void)Flush();  // Best effort; barriers already synced.
    ::close(fd_);
  }
}

Status WalWriter::Flush() {
  if (buffer_.empty()) return Status::Ok();
  const Status s = WriteAll(fd_, buffer_.data(), buffer_.size(), path_);
  if (s.ok()) buffer_.clear();
  return s;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   WalCrashPolicy policy) {
  const int fd =
      ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("wal %s: open failed: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  auto data = ReadAll(path);
  if (!data.ok()) {
    ::close(fd);
    return data.status();
  }
  auto parsed = ParseWalBytes(*data, path);
  if (!parsed.ok()) {
    ::close(fd);
    return parsed.status();
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, policy));
  writer->recovered_ = static_cast<int64_t>(parsed->records.size());
  if (data->empty()) {
    // Fresh log: write and sync the header so a later torn tail can never
    // be confused with a foreign file.
    Status s = WriteAll(fd, kWalMagic, kHeaderBytes, path);
    if (s.ok() && ::fsync(fd) != 0) {
      s = Status::IoError(StrFormat("wal %s: fsync failed: %s", path.c_str(),
                                    std::strerror(errno)));
    }
    if (!s.ok()) return s;
    writer->file_bytes_ = static_cast<int64_t>(kHeaderBytes);
  } else {
    // Drop any torn tail so appends start at the last intact record. A
    // header-only torn prefix (valid_bytes == 0) is rewritten from scratch.
    int64_t valid = parsed->valid_bytes;
    if (valid < static_cast<int64_t>(kHeaderBytes)) {
      if (::ftruncate(fd, 0) != 0) {
        return Status::IoError(StrFormat("wal %s: ftruncate failed: %s",
                                         path.c_str(), std::strerror(errno)));
      }
      LDB_RETURN_IF_ERROR(WriteAll(fd, kWalMagic, kHeaderBytes, path));
      valid = static_cast<int64_t>(kHeaderBytes);
    } else if (valid < static_cast<int64_t>(data->size())) {
      if (::ftruncate(fd, valid) != 0) {
        return Status::IoError(StrFormat("wal %s: ftruncate failed: %s",
                                         path.c_str(), std::strerror(errno)));
      }
    }
    if (::fsync(fd) != 0) {
      return Status::IoError(StrFormat("wal %s: fsync failed: %s",
                                       path.c_str(), std::strerror(errno)));
    }
    if (::lseek(fd, valid, SEEK_SET) < 0) {
      return Status::IoError(StrFormat("wal %s: lseek failed: %s",
                                       path.c_str(), std::strerror(errno)));
    }
    writer->file_bytes_ = valid;
  }
  writer->synced_bytes_ = writer->file_bytes_;
  return writer;
}

Status WalWriter::Crash() {
  // Process death keeps OS-buffered bytes, so the batch reaches the fd
  // first; only the power-loss model below rolls any of it back.
  (void)Flush();
  crashed_ = true;
  if (policy_.drop_syncs_after >= 0 && synced_bytes_ < file_bytes_) {
    // Power-loss model: bytes buffered past the last effective fsync are
    // gone. Roll the file back so recovery sees what media would hold.
    if (::ftruncate(fd_, synced_bytes_) == 0) {
      file_bytes_ = synced_bytes_;
    }
  }
  return Status::IoError("wal: simulated crash");
}

Status WalWriter::Append(std::string_view payload) {
  if (crashed_) return Status::IoError("wal: simulated crash");
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument(
        StrFormat("wal %s: record of %zu bytes exceeds max %u", path_.c_str(),
                  payload.size(), kMaxRecordBytes));
  }
  std::string frame(kFrameHeaderBytes + payload.size(), '\0');
  StoreU32Le(static_cast<uint32_t>(payload.size()), frame.data());
  StoreU32Le(Crc32c(payload.data(), payload.size()), frame.data() + 4);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size());
  if (policy_.fail_after_appends >= 0 &&
      appended_ >= policy_.fail_after_appends) {
    // This is the crashing append. A torn policy writes a prefix of the
    // frame first — the partial record recovery must drop.
    if (policy_.torn_bytes > 0) {
      const size_t torn =
          std::min(static_cast<size_t>(policy_.torn_bytes), frame.size());
      if (Flush().ok()) {
        const Status s = WriteAll(fd_, frame.data(), torn, path_);
        if (s.ok()) file_bytes_ += static_cast<int64_t>(torn);
      }
    }
    return Crash();
  }
  buffer_ += frame;
  file_bytes_ += static_cast<int64_t>(frame.size());
  ++appended_;
  // Cap the batch so a barrier-less writer cannot grow it without bound.
  if (buffer_.size() >= (size_t{1} << 20)) return Flush();
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (crashed_) return Status::IoError("wal: simulated crash");
  // The batch always reaches the OS; a dropped sync only skips the fsync
  // (data written, never made durable) — exactly the power-loss window.
  LDB_RETURN_IF_ERROR(Flush());
  ++syncs_;
  if (policy_.drop_syncs_after >= 0 && syncs_ > policy_.drop_syncs_after) {
    return Status::Ok();  // Silently dropped; synced_bytes_ stays behind.
  }
  if (::fsync(fd_) != 0) {
    return Status::IoError(StrFormat("wal %s: fsync failed: %s", path_.c_str(),
                                     std::strerror(errno)));
  }
  synced_bytes_ = file_bytes_;
  return Status::Ok();
}

Status SyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(StrFormat("sync %s: open failed: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  Status status;
  if (::fsync(fd) != 0) {
    status = Status::IoError(StrFormat("sync %s: fsync failed: %s",
                                       path.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  return status;
}

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  static std::atomic<uint64_t> counter{0};
  const std::filesystem::path target(path);
  const std::filesystem::path dir =
      target.has_parent_path() ? target.parent_path()
                               : std::filesystem::path(".");
  const std::string tmp =
      (dir / StrFormat(".%s.tmp.%d.%llu", target.filename().c_str(),
                       static_cast<int>(::getpid()),
                       static_cast<unsigned long long>(
                           counter.fetch_add(1, std::memory_order_relaxed))))
          .string();
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError(StrFormat("durable write %s: open failed: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  Status status = WriteAll(fd, contents.data(), contents.size(), tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(StrFormat("durable write %s: fsync failed: %s",
                                       tmp.c_str(), std::strerror(errno)));
  }
  ::close(fd);
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IoError(StrFormat("durable write %s: rename failed: %s",
                                       path.c_str(), std::strerror(errno)));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // The rename itself must survive a crash: sync the parent directory.
  return SyncPath(dir.string());
}

}  // namespace ldb
