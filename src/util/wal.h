#ifndef LAYOUTDB_UTIL_WAL_H_
#define LAYOUTDB_UTIL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ldb {

/// CRC32C (Castagnoli) checksum. `seed` chains partial checksums.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

/// Deterministic crash injection for WalWriter, mirroring FaultPlan: a test
/// (or `layout_advisor --journal-crash=`) arms a policy and the writer dies
/// at an exact, reproducible point instead of a random one.
///
/// Crash model:
///  - `fail_after_appends = N`: the first N appends succeed; append N+1
///    triggers the crash. With `torn_bytes = K >= 0` the crashing append
///    writes the first K bytes of its frame before dying (a torn write);
///    otherwise nothing of that record reaches the file.
///  - `drop_syncs_after = S`: Sync() calls after the S-th silently no-op
///    (an fsync that never made it to media). On crash the file is rolled
///    back to its size at the last *effective* sync, modeling a power loss
///    rather than a mere process death.
///
/// After the crash fires, every Append/Sync on the writer returns
/// kIoError and crashed() is true — the process is "dead"; callers treat
/// this as a stop-the-world signal (see MigrationExecutor freeze).
struct WalCrashPolicy {
  uint64_t seed = 0;               ///< Reserved for seeded fuzz harnesses.
  int64_t fail_after_appends = -1;  ///< Crash on append #(this+1); <0 = never.
  int64_t torn_bytes = -1;  ///< Frame bytes written by the crashing append.
  int64_t drop_syncs_after = -1;  ///< Syncs after this count no-op; <0 = none.

  bool enabled() const {
    return fail_after_appends >= 0 || drop_syncs_after >= 0;
  }
};

/// Parses a crash-policy spec: comma-separated `key=value` items, with
/// `;`-separated clauses for error indexing (normally one clause). Keys:
/// `after` (fail_after_appends), `torn` (torn_bytes), `syncs`
/// (drop_syncs_after), `seed`. Example: "after=12,torn=5".
Result<WalCrashPolicy> ParseWalCrashPolicy(const std::string& text);

/// Parsed contents of a WAL file.
struct WalReadResult {
  std::vector<std::string> records;  ///< Payloads of all intact records.
  bool torn_tail = false;   ///< A partial final record was dropped.
  int64_t valid_bytes = 0;  ///< File offset just past the last intact record.
};

/// Reads all records from the WAL at `path`.
///
/// Recovery rules (the contract wal_test's fuzzers pin down):
///  - A frame that runs past EOF, or whose CRC mismatches with *no* bytes
///    after it, is a torn tail: dropped silently, `torn_tail` set.
///  - A CRC mismatch or malformed length with more data after it is interior
///    corruption: hard kIoError (never a silently wrong record list).
///  - A file shorter than the header that is a prefix of the magic is an
///    empty log (crash before the header sync); any other header is a hard
///    error.
Result<WalReadResult> ReadWalRecords(const std::string& path);

/// Append-only durable record log.
///
/// File layout: 8-byte magic/version header ("LDBWAL01"), then frames of
/// u32-LE payload length + u32-LE CRC32C(payload) + payload. Append()
/// buffers into the OS (no fsync); Sync() is the durability barrier.
/// Open() validates existing content, truncates a torn tail, and positions
/// for append, so crash → reopen → append is the normal lifecycle.
class WalWriter {
 public:
  /// Opens (creating if absent) the WAL at `path`. Fails on interior
  /// corruption or a foreign header. `policy` arms simulated crashes.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 WalCrashPolicy policy = {});
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record. Returns kIoError after a (simulated or real) crash.
  Status Append(std::string_view payload);
  /// Durability barrier: fsyncs all appended records.
  Status Sync();

  /// True once a simulated crash has fired; all further ops fail.
  bool crashed() const { return crashed_; }
  /// Records appended in this session (not counting recovered ones).
  int64_t appended() const { return appended_; }
  /// Records already present when the file was opened.
  int64_t recovered() const { return recovered_; }
  /// Current file size in bytes.
  int64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, WalCrashPolicy policy);
  Status Crash();  // Simulated death: rolls back unsynced bytes if armed.
  Status Flush();  // Drains the append buffer into the fd.

  std::string path_;
  int fd_ = -1;
  WalCrashPolicy policy_;
  bool crashed_ = false;
  int64_t appended_ = 0;
  int64_t recovered_ = 0;
  int64_t syncs_ = 0;
  int64_t file_bytes_ = 0;
  int64_t synced_bytes_ = 0;  // File size as of the last effective fsync.
  // Frames batched between barriers: one write() per Sync() instead of one
  // per Append() — the group commit that keeps journal overhead in the
  // noise. Drained by Sync(), a simulated Crash() (so the injected crash
  // leaves exactly the appended records on disk), and the destructor.
  std::string buffer_;
};

/// fsyncs the file or directory at `path`. Directory sync makes a preceding
/// rename durable.
Status SyncPath(const std::string& path);

/// Atomically and durably replaces `path` with `contents`: unique tmp file
/// in the same directory, write, fsync, rename, fsync parent directory.
/// A crash at any point leaves either the old file or the complete new one,
/// never a truncated hybrid.
Status WriteFileDurable(const std::string& path, std::string_view contents);

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_WAL_H_
