#ifndef LAYOUTDB_UTIL_INTERP_H_
#define LAYOUTDB_UTIL_INTERP_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace ldb {

/// Multilinear interpolation over a rectilinear grid of tabulated values.
///
/// Axes are strictly increasing coordinate vectors; values are stored in
/// row-major order (last axis fastest). Queries outside the grid are clamped
/// to the boundary, which matches how the paper's black-box cost models are
/// used: calibration covers the operating range, and queries beyond it
/// saturate rather than extrapolate.
///
/// This is the interpolation engine behind the tabulated device cost models
/// (Section 5.2.2 of the paper).
class GridInterpolator {
 public:
  /// Creates an interpolator.
  ///
  /// \param axes one strictly-increasing coordinate vector per dimension
  ///   (each with at least one entry).
  /// \param values row-major value array; size must equal the product of
  ///   the axis lengths.
  static Result<GridInterpolator> Create(std::vector<std::vector<double>> axes,
                                         std::vector<double> values);

  /// Evaluates the interpolant at `point` (size must equal dimensions()).
  double At(const std::vector<double>& point) const;

  /// Allocation-free variant: `point` must hold dimensions() coordinates.
  /// This is the form used by hot paths (the solver evaluates cost models
  /// millions of times per run).
  double At(const double* point, size_t dims) const;

  /// Fused value + gradient: evaluates the interpolant and its partial
  /// derivative along every axis in one cell-location pass. `grad_out`
  /// receives dimensions() entries. This is the analytic-gradient hot
  /// path: pricing value and slopes separately would locate the cell (one
  /// binary search per axis) multiple times for the same query.
  ///
  /// Outside the grid the interpolant clamps and is therefore constant, so
  /// the derivative along a clamped axis is 0. Exactly on the boundary the
  /// interior one-sided slope is returned — a valid subgradient of the
  /// clamped interpolant.
  double AtWithGrad(const double* point, size_t dims, double* grad_out) const;

  /// Structure-of-arrays batch evaluation: `coords[d]` holds `count`
  /// coordinates for axis d; `out` receives `count` values. Equivalent to
  /// calling At() per query with the argument checks hoisted out of the
  /// loop, keeping the weight/stride arithmetic tight over contiguous
  /// arrays.
  void AtBatch(size_t count, const double* const* coords, double* out) const;

  /// Batched AtWithGrad: `grads[d]` receives the axis-d partials of every
  /// query; a null `grads[d]` skips that axis (callers that never need a
  /// size derivative, say, pay nothing for it).
  void AtWithGradBatch(size_t count, const double* const* coords, double* out,
                       double* const* grads) const;

  size_t dimensions() const { return axes_.size(); }
  const std::vector<std::vector<double>>& axes() const { return axes_; }
  const std::vector<double>& values() const { return values_; }

 private:
  GridInterpolator(std::vector<std::vector<double>> axes,
                   std::vector<double> values, std::vector<size_t> strides);

  /// Shared per-query kernels behind At/AtWithGrad and their batch forms
  /// (argument checks live in the public entry points).
  double ValueCore(const double* point, size_t dims) const;
  double ValueGradCore(const double* point, size_t dims,
                       double* grad_out) const;

  /// Straight-line trilinear kernels for the 3-axis grids every cost model
  /// uses: a factored lerp chain instead of the generic 2^dims corner sweep
  /// (whose per-corner bit tests and degenerate-axis branches dominate the
  /// batched evaluators' profile). Values agree with ValueCore to rounding
  /// (different association order), so only the batch entry points use
  /// them; the scalar At/AtWithGrad keep their historical bit patterns.
  double Value3(const double* point) const;
  double ValueGrad3(const double* point, double* grad_out) const;

  std::vector<std::vector<double>> axes_;
  std::vector<double> values_;
  std::vector<size_t> strides_;  // row-major strides per axis
};

/// Finds the cell `[i, i+1]` of a strictly increasing axis containing `x`
/// and the interpolation weight `w` of the upper edge, clamping out-of-range
/// queries. With a single-entry axis returns i=0, w=0.
void LocateOnAxis(const std::vector<double>& axis, double x, size_t* index,
                  double* weight);

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_INTERP_H_
