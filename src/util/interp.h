#ifndef LAYOUTDB_UTIL_INTERP_H_
#define LAYOUTDB_UTIL_INTERP_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace ldb {

/// Multilinear interpolation over a rectilinear grid of tabulated values.
///
/// Axes are strictly increasing coordinate vectors; values are stored in
/// row-major order (last axis fastest). Queries outside the grid are clamped
/// to the boundary, which matches how the paper's black-box cost models are
/// used: calibration covers the operating range, and queries beyond it
/// saturate rather than extrapolate.
///
/// This is the interpolation engine behind the tabulated device cost models
/// (Section 5.2.2 of the paper).
class GridInterpolator {
 public:
  /// Creates an interpolator.
  ///
  /// \param axes one strictly-increasing coordinate vector per dimension
  ///   (each with at least one entry).
  /// \param values row-major value array; size must equal the product of
  ///   the axis lengths.
  static Result<GridInterpolator> Create(std::vector<std::vector<double>> axes,
                                         std::vector<double> values);

  /// Evaluates the interpolant at `point` (size must equal dimensions()).
  double At(const std::vector<double>& point) const;

  /// Allocation-free variant: `point` must hold dimensions() coordinates.
  /// This is the form used by hot paths (the solver evaluates cost models
  /// millions of times per run).
  double At(const double* point, size_t dims) const;

  size_t dimensions() const { return axes_.size(); }
  const std::vector<std::vector<double>>& axes() const { return axes_; }
  const std::vector<double>& values() const { return values_; }

 private:
  GridInterpolator(std::vector<std::vector<double>> axes,
                   std::vector<double> values, std::vector<size_t> strides);

  std::vector<std::vector<double>> axes_;
  std::vector<double> values_;
  std::vector<size_t> strides_;  // row-major strides per axis
};

/// Finds the cell `[i, i+1]` of a strictly increasing axis containing `x`
/// and the interpolation weight `w` of the upper edge, clamping out-of-range
/// queries. With a single-entry axis returns i=0, w=0.
void LocateOnAxis(const std::vector<double>& axis, double x, size_t* index,
                  double* weight);

}  // namespace ldb

#endif  // LAYOUTDB_UTIL_INTERP_H_
