#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace ldb {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // Advance a splitmix64 state by `stream + 1` gammas, then finalize. The
  // +1 keeps MixSeed(s, 0) != s so stream 0 is decorrelated from the root.
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  LDB_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LDB_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Exponential(double mean) {
  LDB_CHECK_GT(mean, 0.0);
  double u = Uniform();
  if (u <= 0.0) u = 1e-300;
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

}  // namespace ldb
