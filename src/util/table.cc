#include "util/table.h"

#include <cstdarg>
#include <cstdio>

#include "util/check.h"

namespace ldb {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  LDB_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  LDB_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(widths[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out += "|";
    out.append(widths[c] + 2, '-');
  }
  out += "|\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  LDB_CHECK_GE(needed, 0);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace ldb
