#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace ldb {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (std::fabs(seconds) >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else if (std::fabs(seconds) >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace ldb
