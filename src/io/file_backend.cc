#include "io/file_backend.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/table.h"

#if LDB_HAVE_LIBURING
#include <liburing.h>
#endif

namespace ldb {

namespace {

int64_t RoundUp(int64_t v, int64_t unit) {
  return (v + unit - 1) / unit * unit;
}

Status ClauseError(int clause, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("backend target clause %d: %s", clause, what.c_str()));
}

}  // namespace

FileBackend::Bounce::~Bounce() { std::free(data); }

Status FileBackend::Bounce::Reserve(int64_t bytes, int64_t align) {
  if (bytes <= size) return Status::Ok();
  std::free(data);
  data = nullptr;
  size = 0;
  void* p = nullptr;
  const int64_t rounded = RoundUp(bytes, align);
  if (posix_memalign(&p, static_cast<size_t>(align),
                     static_cast<size_t>(rounded)) != 0) {
    return Status::IoError(
        StrFormat("posix_memalign(%lld) failed", (long long)rounded));
  }
  data = static_cast<char*>(p);
  size = rounded;
  return Status::Ok();
}

bool FileBackend::IoUringCompiledIn() {
#if LDB_HAVE_LIBURING
  return true;
#else
  return false;
#endif
}

Result<std::unique_ptr<FileBackend>> FileBackend::Open(
    const FileBackendOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("file backend requires a directory");
  }
  const int64_t lbs = options.logical_block_bytes;
  if (lbs <= 0 || (lbs & (lbs - 1)) != 0 || lbs % 512 != 0) {
    return Status::InvalidArgument(StrFormat(
        "logical_block_bytes must be a power-of-two multiple of 512, got "
        "%lld",
        (long long)lbs));
  }
  if (options.capacity_bytes.empty()) {
    return Status::InvalidArgument("file backend requires >= 1 target");
  }
  if (options.queue_depth <= 0 || options.num_workers <= 0) {
    return Status::InvalidArgument(
        "queue_depth and num_workers must be positive");
  }

  auto backend = std::unique_ptr<FileBackend>(new FileBackend());
  backend->options_ = options;
  backend->geometry_.kind = BackendKind::kFile;
  backend->geometry_.num_targets =
      static_cast<int>(options.capacity_bytes.size());
  backend->geometry_.logical_block_bytes = lbs;
  backend->geometry_.direct_io = true;
  backend->epoch_ = std::chrono::steady_clock::now();

  ::mkdir(options.dir.c_str(), 0755);  // best-effort; open() reports errors

  bool warned_direct = false;
  for (size_t t = 0; t < options.capacity_bytes.size(); ++t) {
    const int clause = static_cast<int>(t) + 1;
    const int64_t want = options.capacity_bytes[t];
    if (want <= 0) {
      return ClauseError(clause, StrFormat("capacity must be > 0, got %lld",
                                           (long long)want));
    }
    Target target;
    target.path =
        options.dir + StrFormat("/target-%03d.dat", static_cast<int>(t));

    // Probe a pre-existing file before touching it: a size that is not a
    // multiple of the logical block would silently lose its tail under
    // O_DIRECT round-down, so reject it outright.
    struct stat st;
    if (::stat(target.path.c_str(), &st) == 0) {
      if (!S_ISREG(st.st_mode) && !S_ISBLK(st.st_mode)) {
        return ClauseError(
            clause, StrFormat("%s is neither a regular file nor a block "
                              "device",
                              target.path.c_str()));
      }
      if (S_ISREG(st.st_mode) && st.st_size % lbs != 0) {
        return ClauseError(
            clause,
            StrFormat("file %s size %lld is not a multiple of the %lld-byte "
                      "logical block",
                      target.path.c_str(), (long long)st.st_size,
                      (long long)lbs));
      }
    }

    target.buffered_fd = ::open(target.path.c_str(), O_RDWR | O_CREAT, 0644);
    if (target.buffered_fd < 0) {
      return ClauseError(clause, StrFormat("open(%s) failed: %s",
                                           target.path.c_str(),
                                           strerror(errno)));
    }
    const int64_t provisioned = RoundUp(want, lbs);
    target.capacity = options.dual_epoch ? 2 * provisioned : provisioned;
    struct stat now;
    if (::fstat(target.buffered_fd, &now) != 0) {
      ::close(target.buffered_fd);
      return ClauseError(clause, StrFormat("fstat(%s) failed: %s",
                                           target.path.c_str(),
                                           strerror(errno)));
    }
    if (S_ISREG(now.st_mode) && now.st_size < target.capacity &&
        ::ftruncate(target.buffered_fd, target.capacity) != 0) {
      ::close(target.buffered_fd);
      return ClauseError(clause, StrFormat("ftruncate(%s, %lld) failed: %s",
                                           target.path.c_str(),
                                           (long long)target.capacity,
                                           strerror(errno)));
    }
    if (S_ISREG(now.st_mode) && now.st_size > target.capacity) {
      // Never shrink a pre-existing file; expose what is there.
      target.capacity = now.st_size;
    }

    if (options.try_direct) {
      target.direct_fd = ::open(target.path.c_str(), O_RDWR | O_DIRECT);
    }
    if (target.direct_fd < 0) {
      backend->geometry_.direct_io = false;
      if (options.try_direct && !options.quiet && !warned_direct) {
        std::fprintf(stderr,
                     "layoutdb: O_DIRECT unavailable for %s (%s); falling "
                     "back to buffered I/O\n",
                     target.path.c_str(), strerror(errno));
        warned_direct = true;
      }
    }
    backend->geometry_.capacity_bytes.push_back(target.capacity);
    if (options.dual_epoch) {
      backend->geometry_.epoch_stride.push_back(provisioned);
    }
    backend->targets_.push_back(target);
  }

  backend->worker_bounce_.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    backend->worker_bounce_.push_back(std::make_unique<Bounce>());
  }
  for (int w = 0; w < options.num_workers; ++w) {
    backend->workers_.emplace_back(
        [b = backend.get(), w]() { b->WorkerLoop(w); });
  }
  return backend;
}

FileBackend::~FileBackend() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  job_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  for (auto& target : targets_) {
    if (target.direct_fd >= 0) ::close(target.direct_fd);
    if (target.buffered_fd >= 0) ::close(target.buffered_fd);
  }
}

const std::string& FileBackend::target_path(int t) const {
  return targets_[static_cast<size_t>(t)].path;
}

double FileBackend::NowS() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void FileBackend::Submit(int target, const TargetRequest& req, void* data,
                         Completion done) {
  Job job;
  job.target = target;
  job.offset = req.offset;
  job.size = req.size;
  job.is_write = req.is_write;
  job.data = data;
  job.done = std::move(done);

  std::unique_lock<std::mutex> lock(mu_);
  if (target < 0 || target >= static_cast<int>(targets_.size()) ||
      req.size <= 0 || req.offset < 0 ||
      req.offset + req.size > targets_[static_cast<size_t>(target)].capacity) {
    ++counters_.errors;
    fired_.push_back(Fired{std::move(job.done), NowS(),
                           Status::InvalidArgument(StrFormat(
                               "request [%lld, +%lld) out of range on "
                               "target %d",
                               (long long)req.offset, (long long)req.size,
                               target))});
    return;
  }
  Target& tgt = targets_[static_cast<size_t>(target)];
  space_cv_.wait(lock,
                 [&] { return tgt.inflight < options_.queue_depth; });
  ++tgt.inflight;
  ++total_inflight_;
  jobs_.push_back(std::move(job));
  lock.unlock();
  job_cv_.notify_one();
}

void FileBackend::WorkerLoop(int worker) {
  Bounce* bounce = worker_bounce_[static_cast<size_t>(worker)].get();
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping, queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    const Status status = Execute(job, bounce);
    {
      std::lock_guard<std::mutex> lock(mu_);
      fired_.push_back(Fired{std::move(job.done), NowS(), status});
      --targets_[static_cast<size_t>(job.target)].inflight;
      --total_inflight_;
    }
    space_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

Status FileBackend::Execute(const Job& job, Bounce* bounce) {
  const Target& target = targets_[static_cast<size_t>(job.target)];
  const int64_t lbs = geometry_.logical_block_bytes;
  const bool aligned = job.offset % lbs == 0 && job.size % lbs == 0;
  const bool data_aligned =
      job.data != nullptr &&
      reinterpret_cast<uintptr_t>(job.data) % static_cast<uintptr_t>(lbs) ==
          0;
  const bool use_direct = aligned && target.direct_fd >= 0;
  const int fd = use_direct ? target.direct_fd : target.buffered_fd;

  char* buf;
  if (job.data != nullptr && (!use_direct || data_aligned)) {
    buf = static_cast<char*>(job.data);
  } else {
    // Timing-only replay (null data) or an unaligned caller buffer under
    // O_DIRECT: move bytes through the worker's aligned scratch.
    LDB_RETURN_IF_ERROR(bounce->Reserve(job.size, lbs));
    buf = bounce->data;
    if (job.is_write && job.data != nullptr) {
      memcpy(buf, job.data, static_cast<size_t>(job.size));
    }
  }

  const double start = NowS();
  Status status = Transfer(fd, job.is_write, job.offset, job.size, buf);
  const double elapsed = NowS() - start;

  if (status.ok() && !job.is_write && job.data != nullptr &&
      buf != job.data) {
    memcpy(job.data, buf, static_cast<size_t>(job.size));
  }

  std::lock_guard<std::mutex> lock(mu_);
  counters_.io_time_s += elapsed;
  if (!aligned) ++counters_.unaligned_requests;
  if (!status.ok()) {
    ++counters_.errors;
  } else if (job.is_write) {
    ++counters_.writes;
    counters_.bytes_written += job.size;
  } else {
    ++counters_.reads;
    counters_.bytes_read += job.size;
  }
  return status;
}

Status FileBackend::Transfer(int fd, bool is_write, int64_t offset,
                             int64_t size, char* buf) {
#if LDB_HAVE_LIBURING
  if (options_.use_io_uring) {
    struct io_uring ring;
    if (io_uring_queue_init(4, &ring, 0) == 0) {
      int64_t done = 0;
      Status status;
      while (done < size) {
        struct io_uring_sqe* sqe = io_uring_get_sqe(&ring);
        const unsigned len = static_cast<unsigned>(
            std::min<int64_t>(size - done, 1 << 30));
        if (is_write) {
          io_uring_prep_write(sqe, fd, buf + done, len, offset + done);
        } else {
          io_uring_prep_read(sqe, fd, buf + done, len, offset + done);
        }
        io_uring_submit(&ring);
        struct io_uring_cqe* cqe = nullptr;
        const int rc = io_uring_wait_cqe(&ring, &cqe);
        if (rc != 0) {
          status = Status::IoError(
              StrFormat("io_uring_wait_cqe failed: %s", strerror(-rc)));
          break;
        }
        const int res = cqe->res;
        io_uring_cqe_seen(&ring, cqe);
        if (res < 0) {
          status = Status::IoError(StrFormat("io_uring %s failed: %s",
                                             is_write ? "write" : "read",
                                             strerror(-res)));
          break;
        }
        if (res == 0) {
          status = Status::IoError("io_uring short transfer at EOF");
          break;
        }
        done += res;
      }
      io_uring_queue_exit(&ring);
      return status;
    }
    // Ring setup failed (kernel too old, rlimit): fall through to p{read,
    // write}.
  }
#endif
  int64_t done = 0;
  while (done < size) {
    const size_t len = static_cast<size_t>(size - done);
    const ssize_t n =
        is_write ? ::pwrite(fd, buf + done, len, offset + done)
                 : ::pread(fd, buf + done, len, offset + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("%s(%lld, +%lld) failed: %s",
                                       is_write ? "pwrite" : "pread",
                                       (long long)(offset + done),
                                       (long long)(size - done),
                                       strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError(
          StrFormat("short %s at offset %lld", is_write ? "write" : "read",
                    (long long)(offset + done)));
    }
    done += n;
  }
  return Status::Ok();
}

Status FileBackend::ReadSync(int target, int64_t offset, int64_t size,
                             void* buf) {
  if (target < 0 || target >= static_cast<int>(targets_.size()) ||
      size <= 0 || offset < 0 ||
      offset + size > targets_[static_cast<size_t>(target)].capacity) {
    return Status::InvalidArgument(
        StrFormat("ReadSync [%lld, +%lld) out of range on target %d",
                  (long long)offset, (long long)size, target));
  }
  Job job;
  job.target = target;
  job.offset = offset;
  job.size = size;
  job.is_write = false;
  job.data = buf;
  std::lock_guard<std::mutex> lock(sync_mu_);
  return Execute(job, &sync_bounce_);
}

Status FileBackend::WriteSync(int target, int64_t offset, int64_t size,
                              const void* buf) {
  if (target < 0 || target >= static_cast<int>(targets_.size()) ||
      size <= 0 || offset < 0 ||
      offset + size > targets_[static_cast<size_t>(target)].capacity) {
    return Status::InvalidArgument(
        StrFormat("WriteSync [%lld, +%lld) out of range on target %d",
                  (long long)offset, (long long)size, target));
  }
  Job job;
  job.target = target;
  job.offset = offset;
  job.size = size;
  job.is_write = true;
  job.data = const_cast<void*>(buf);
  std::lock_guard<std::mutex> lock(sync_mu_);
  return Execute(job, &sync_bounce_);
}

Status FileBackend::Sync() {
  for (const Target& target : targets_) {
    if (::fdatasync(target.buffered_fd) != 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.errors;
      return Status::IoError(StrFormat("fdatasync(%s) failed: %s",
                                       target.path.c_str(),
                                       strerror(errno)));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.syncs;
  return Status::Ok();
}

int FileBackend::PumpCompletions() {
  std::vector<Fired> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ready.swap(fired_);
  }
  for (Fired& f : ready) {
    if (f.done) f.done(f.when_s, f.status);
  }
  return static_cast<int>(ready.size());
}

Status FileBackend::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock,
                   [&] { return total_inflight_ == 0 && jobs_.empty(); });
  }
  PumpCompletions();
  return Status::Ok();
}

BackendCounters FileBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace ldb
