#ifndef LAYOUTDB_IO_BACKEND_H_
#define LAYOUTDB_IO_BACKEND_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/io_request.h"
#include "storage/lvm.h"
#include "util/status.h"

namespace ldb {

/// Which engine serves a backend's block I/O.
enum class BackendKind {
  kSim,   ///< event-queue simulator (virtual time, no data plane)
  kFile,  ///< real files / raw devices (wall-clock time, real bytes)
};

const char* BackendKindName(BackendKind kind);

/// Capacity and alignment description of a backend, filled by the probe at
/// open time. Requests address each target's linear byte space, exactly as
/// with StorageTarget.
struct BackendGeometry {
  BackendKind kind = BackendKind::kSim;
  int num_targets = 0;
  std::vector<int64_t> capacity_bytes;  ///< per target, indexed like requests
  /// Alignment unit for the direct-I/O fast path. Requests whose offset and
  /// size are multiples of this are eligible for O_DIRECT; others take the
  /// buffered fallback (and are counted). The sim backend has no alignment
  /// requirement and reports its stripe-friendly 512.
  int64_t logical_block_bytes = 512;
  /// True when every target serves aligned I/O with O_DIRECT (file backend
  /// on a filesystem that supports it). False on the sim backend and on
  /// buffered fallbacks (e.g. tmpfs).
  bool direct_io = false;
  /// Per-target byte stride between data-plane epochs (see
  /// TargetChunk::epoch). Empty (or zero) = a single epoch: chunk offsets
  /// address the file directly. A dual-epoch file backend provisions each
  /// target at twice the simulated capacity and reports the simulated
  /// capacity here, so a migration's source (epoch 0) and destination
  /// (epoch 1) extents land in disjoint halves of the file.
  std::vector<int64_t> epoch_stride;
};

/// Byte offset of `chunk` in its target's backing store: the simulated
/// offset shifted into the chunk's epoch half when the backend is
/// dual-epoch.
inline int64_t DataPlaneOffset(const BackendGeometry& geometry,
                               const TargetChunk& chunk) {
  if (chunk.epoch == 0 || geometry.epoch_stride.empty()) return chunk.offset;
  return chunk.offset +
         chunk.epoch *
             geometry.epoch_stride[static_cast<size_t>(chunk.target)];
}

/// Cumulative I/O counters of a backend. Monotone over the backend's
/// lifetime; read them before/after a phase and subtract.
struct BackendCounters {
  uint64_t reads = 0;
  uint64_t writes = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  uint64_t syncs = 0;
  /// Requests that missed the alignment contract and were served through
  /// the buffered fallback path.
  uint64_t unaligned_requests = 0;
  uint64_t errors = 0;
  /// Wall-clock seconds spent inside I/O syscalls, summed over workers
  /// (file backend only; the sim backend reports 0).
  double io_time_s = 0.0;
};

/// Uniform block-execution seam between the layout control plane and
/// whatever serves the I/O: the event-queue simulator (SimBackend) or real
/// files / raw devices (FileBackend).
///
/// Seam contract:
///  - Submit() is asynchronous. `done` fires exactly once with the
///    completion time in the backend's own clock — virtual simulation
///    seconds for the sim, wall-clock seconds since backend creation for
///    files — plus the request outcome.
///  - SimBackend delivers completions inline from the event queue, so a
///    closed loop driven by the virtual clock (the WorkloadRunner) keeps
///    working unchanged; PumpCompletions()/Drain() are no-ops there.
///  - FileBackend executes on a worker pool and queues completions;
///    callers must PumpCompletions() (or Drain()) to receive them on their
///    own thread. Its wall-clock completion times cannot drive the
///    simulator's virtual clock, so the file backend is *not* a valid
///    foreground engine for the closed-loop runner — it is the data plane
///    (migration copies, calibration, replay benches), while the simulator
///    remains the timing driver.
///  - `data` may be null: the backend then moves bytes through an internal
///    scratch buffer (timing-only replay). With real data the pointer need
///    not be aligned; the backend bounces through an aligned buffer when
///    O_DIRECT demands it.
///  - ReadSync/WriteSync are the synchronous data plane (migration chunk
///    copies, pattern verification). The sim backend has no bytes to serve
///    and fails them with kFailedPrecondition.
class BlockBackend {
 public:
  using Completion = std::function<void(double when_s, const Status& status)>;

  virtual ~BlockBackend() = default;

  virtual const BackendGeometry& geometry() const = 0;

  /// Submits `req` against target `target`'s byte space. `done` fires once
  /// (see the seam contract above for where and when).
  virtual void Submit(int target, const TargetRequest& req, void* data,
                     Completion done) = 0;

  /// Synchronously reads `size` bytes at `offset` of `target` into `buf`.
  virtual Status ReadSync(int target, int64_t offset, int64_t size,
                          void* buf) = 0;

  /// Synchronously writes `size` bytes at `offset` of `target` from `buf`.
  virtual Status WriteSync(int target, int64_t offset, int64_t size,
                           const void* buf) = 0;

  /// Durability barrier: flushes all completed writes to media.
  virtual Status Sync() = 0;

  /// Delivers queued completions on the calling thread; returns how many
  /// fired. Sim backend: always 0 (completions ride the event queue).
  virtual int PumpCompletions() = 0;

  /// Blocks until every submitted request has completed and its completion
  /// has been delivered.
  virtual Status Drain() = 0;

  virtual BackendCounters counters() const = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_IO_BACKEND_H_
