#include "io/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include "util/random.h"
#include "util/table.h"

namespace ldb {

namespace {

uint64_t HashText(uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string KeyHex(uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

double NowS() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times the mean primary service time of one real grid point.
Result<double> MeasureRealPoint(BlockBackend* backend, int target,
                                double request_size, double run_count,
                                double contention, bool primary_is_write,
                                const CalibrationOptions& opts, Rng* rng,
                                std::vector<char>* buf) {
  const int64_t lbs = backend->geometry().logical_block_bytes;
  const int64_t capacity =
      backend->geometry().capacity_bytes[static_cast<size_t>(target)];
  const int64_t size =
      std::max(lbs, static_cast<int64_t>(request_size) / lbs * lbs);
  if (capacity <= size) {
    return Status::InvalidArgument(
        StrFormat("target %d capacity %lld too small for %lld-byte "
                  "calibration requests",
                  target, (long long)capacity, (long long)size));
  }
  const int64_t run_len =
      std::max<int64_t>(1, static_cast<int64_t>(run_count));
  const int64_t interferer_size = std::max(
      lbs, static_cast<int64_t>(opts.interferer_size_bytes) / lbs * lbs);
  buf->resize(static_cast<size_t>(std::max(size, interferer_size)));

  auto random_offset = [&](int64_t req_size) {
    const int64_t slots = (capacity - req_size) / req_size;
    return rng->UniformInt(int64_t{0}, slots) * req_size;
  };

  int64_t next_offset = random_offset(size);
  int64_t run_pos = 0;
  double interferer_credit = 0.0;
  double total = 0.0;
  int measured = 0;
  const int rounds = opts.warmup_requests + opts.sample_requests;
  for (int round = 0; round < rounds; ++round) {
    // Interferers first: they are the queue the primary contends with.
    interferer_credit += contention;
    while (interferer_credit >= 1.0) {
      LDB_RETURN_IF_ERROR(backend->ReadSync(
          target, random_offset(interferer_size), interferer_size,
          buf->data()));
      interferer_credit -= 1.0;
    }
    if (run_pos >= run_len || next_offset + size > capacity) {
      next_offset = random_offset(size);
      run_pos = 0;
    }
    const double start = NowS();
    if (primary_is_write) {
      LDB_RETURN_IF_ERROR(
          backend->WriteSync(target, next_offset, size, buf->data()));
    } else {
      LDB_RETURN_IF_ERROR(
          backend->ReadSync(target, next_offset, size, buf->data()));
    }
    if (round >= opts.warmup_requests) {
      total += NowS() - start;
      ++measured;
    }
    next_offset += size;
    ++run_pos;
  }
  if (measured == 0) {
    return Status::InvalidArgument("sample_requests must be positive");
  }
  return total / measured;
}

}  // namespace

Result<CostModel> CalibrateBackendTarget(BlockBackend* backend, int target,
                                         const std::string& model_name,
                                         const CalibrationOptions& options) {
  if (options.size_axis.empty() || options.run_axis.empty() ||
      options.contention_axis.empty()) {
    return Status::InvalidArgument("calibration axes must be non-empty");
  }
  if (options.sample_requests <= 0) {
    return Status::InvalidArgument("sample_requests must be positive");
  }
  if (target < 0 || target >= backend->geometry().num_targets) {
    return Status::InvalidArgument(
        StrFormat("calibration target %d out of range", target));
  }
  const size_t n_run = options.run_axis.size();
  const size_t n_chi = options.contention_axis.size();
  const size_t points = options.size_axis.size() * n_run * n_chi;
  std::vector<double> read_costs(points), write_costs(points);
  std::vector<char> buf;
  for (size_t p = 0; p < points; ++p) {
    const double size = options.size_axis[p / (n_run * n_chi)];
    const double run = options.run_axis[(p / n_chi) % n_run];
    const double chi = options.contention_axis[p % n_chi];
    Rng rng(MixSeed(options.seed, p));
    auto r = MeasureRealPoint(backend, target, size, run, chi, false,
                              options, &rng, &buf);
    if (!r.ok()) return r.status();
    read_costs[p] = *r;
    auto w = MeasureRealPoint(backend, target, size, run, chi, true,
                              options, &rng, &buf);
    if (!w.ok()) return w.status();
    write_costs[p] = *w;
  }
  return CostModel::Create(model_name, options.size_axis, options.run_axis,
                           options.contention_axis, std::move(read_costs),
                           std::move(write_costs));
}

uint64_t BackendCalibrationKey(const BlockBackend& backend, int target,
                               const std::string& model_name,
                               const CalibrationOptions& options) {
  const BackendGeometry& g = backend.geometry();
  std::ostringstream text;
  text.precision(17);
  text << "calib-real-v1|" << model_name << "|kind "
       << BackendKindName(g.kind) << "|target " << target << "|capacity "
       << g.capacity_bytes[static_cast<size_t>(target)] << "|lbs "
       << g.logical_block_bytes << "|direct " << (g.direct_io ? 1 : 0)
       << "|sizes";
  for (double v : options.size_axis) text << " " << v;
  text << "|runs";
  for (double v : options.run_axis) text << " " << v;
  text << "|chi";
  for (double v : options.contention_axis) text << " " << v;
  text << "|warmup " << options.warmup_requests << "|samples "
       << options.sample_requests << "|intf " << options.interferer_size_bytes
       << "|seed " << options.seed;
  return HashText(14695981039346656037ULL, text.str());
}

Result<CostModel> CalibrateBackendTargetCached(
    BlockBackend* backend, int target, const std::string& model_name,
    const CalibrationOptions& options) {
  std::string dir = options.cache_dir;
  if (dir.empty()) {
    const char* env = std::getenv("LDB_CALIBRATION_CACHE");
    if (env != nullptr) dir = env;
  }
  if (dir.empty()) {
    return CalibrateBackendTarget(backend, target, model_name, options);
  }
  const uint64_t key =
      BackendCalibrationKey(*backend, target, model_name, options);
  const std::string path =
      dir + "/" + model_name + "-" + KeyHex(key) + ".costmodel";
  auto cached = LoadCostModelCache(path, key);
  if (cached.ok()) return cached;
  auto model = CalibrateBackendTarget(backend, target, model_name, options);
  if (!model.ok()) return model;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  (void)SaveCostModelCache(path, key, *model);
  return model;
}

}  // namespace ldb
