#include "io/pattern.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/table.h"

namespace ldb {

uint64_t PatternWord(ObjectId object, int64_t word_offset) {
  // splitmix64 over the (object, word) coordinates: cheap, well mixed, and
  // stable across platforms.
  uint64_t z = (static_cast<uint64_t>(static_cast<uint32_t>(object)) << 40) ^
               static_cast<uint64_t>(word_offset) ^ 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void FillPattern(ObjectId object, int64_t offset, int64_t size, void* buf) {
  char* out = static_cast<char*>(buf);
  int64_t pos = offset;
  int64_t remaining = size;
  while (remaining > 0) {
    const int64_t word_base = pos / 8 * 8;
    const uint64_t word = PatternWord(object, word_base);
    const int64_t in_word = pos - word_base;
    const int64_t n = std::min<int64_t>(8 - in_word, remaining);
    const char* bytes = reinterpret_cast<const char*>(&word);
    memcpy(out, bytes + in_word, static_cast<size_t>(n));
    out += n;
    pos += n;
    remaining -= n;
  }
}

int64_t FindPatternMismatch(ObjectId object, int64_t offset, int64_t size,
                            const void* buf) {
  const char* in = static_cast<const char*>(buf);
  int64_t pos = offset;
  int64_t remaining = size;
  while (remaining > 0) {
    const int64_t word_base = pos / 8 * 8;
    const uint64_t word = PatternWord(object, word_base);
    const int64_t in_word = pos - word_base;
    const int64_t n = std::min<int64_t>(8 - in_word, remaining);
    const char* bytes = reinterpret_cast<const char*>(&word);
    for (int64_t b = 0; b < n; ++b) {
      if (in[b] != bytes[in_word + b]) return pos + b;
    }
    in += n;
    pos += n;
    remaining -= n;
  }
  return -1;
}

namespace {

/// Runs `chunk_bytes`-sized logical windows of every object through the
/// router's read path and invokes `fn(object, logical_offset, chunk)` per
/// mapped target chunk, with `buf` holding the window's pattern bytes at
/// the matching position.
template <typename Fn>
Status ForEachChunk(VolumeRouter* router, int64_t chunk_bytes, Fn fn) {
  std::vector<TargetChunk> chunks;
  for (ObjectId i = 0; i < router->num_objects(); ++i) {
    const int64_t object_size = router->object_size(i);
    for (int64_t off = 0; off < object_size; off += chunk_bytes) {
      const int64_t len = std::min(chunk_bytes, object_size - off);
      chunks.clear();
      router->Route(i, off, len, /*is_write=*/false, &chunks);
      int64_t logical = off;
      for (const TargetChunk& c : chunks) {
        LDB_RETURN_IF_ERROR(fn(i, logical, c));
        logical += c.size;
      }
      if (logical != off + len) {
        return Status::Internal(StrFormat(
            "router mapped %lld of %lld bytes for object %d @%lld",
            (long long)(logical - off), (long long)len, (int)i,
            (long long)off));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status PopulateBackendPattern(BlockBackend* backend, VolumeRouter* router,
                              int64_t chunk_bytes) {
  std::vector<char> buf;
  LDB_RETURN_IF_ERROR(ForEachChunk(
      router, chunk_bytes,
      [&](ObjectId object, int64_t logical, const TargetChunk& c) {
        buf.resize(static_cast<size_t>(c.size));
        FillPattern(object, logical, c.size, buf.data());
        return backend->WriteSync(c.target,
                                  DataPlaneOffset(backend->geometry(), c),
                                  c.size, buf.data());
      }));
  return backend->Sync();
}

Result<int64_t> VerifyBackendPattern(BlockBackend* backend,
                                     VolumeRouter* router,
                                     int64_t chunk_bytes) {
  std::vector<char> buf;
  int64_t verified = 0;
  const Status status = ForEachChunk(
      router, chunk_bytes,
      [&](ObjectId object, int64_t logical, const TargetChunk& c) {
        buf.resize(static_cast<size_t>(c.size));
        const int64_t file_off = DataPlaneOffset(backend->geometry(), c);
        LDB_RETURN_IF_ERROR(
            backend->ReadSync(c.target, file_off, c.size, buf.data()));
        const int64_t bad =
            FindPatternMismatch(object, logical, c.size, buf.data());
        if (bad >= 0) {
          return Status::IoError(StrFormat(
              "pattern mismatch: object %d logical offset %lld (target %d "
              "@%lld)",
              (int)object, (long long)bad, c.target,
              (long long)(file_off + (bad - logical))));
        }
        verified += c.size;
        return Status::Ok();
      });
  if (!status.ok()) return status;
  return verified;
}

}  // namespace ldb
