#ifndef LAYOUTDB_IO_CALIBRATE_H_
#define LAYOUTDB_IO_CALIBRATE_H_

#include <string>

#include "io/backend.h"
#include "model/calibration.h"

namespace ldb {

/// Real-measurement calibration: times actual I/O on one backend target
/// over the same (request size × run count × contention) grid that
/// CalibrateDevice sweeps in simulation, producing a CostModel
/// interchangeable with the simulated tables.
///
/// Semantics mirror the simulator's MeasurePoint: each round issues one
/// primary request (continuing a sequential run of `run_count` requests,
/// then jumping to a random aligned offset) plus `contention` interfering
/// random reads, and only the primary's wall-clock service time is
/// recorded. Measurement is synchronous and single-streamed — grid points
/// run serially so one point's queue pressure cannot leak into another,
/// which is why this does NOT parallelize like the simulated calibration.
///
/// Request sizes and offsets are aligned to the backend's logical block,
/// so the grid rides the O_DIRECT fast path where available; on a
/// buffered fallback the tables measure the page cache, which the caller
/// should treat as a lower bound (the probe's `direct_io` flag says
/// which).
Result<CostModel> CalibrateBackendTarget(BlockBackend* backend, int target,
                                         const std::string& model_name,
                                         const CalibrationOptions& options);

/// Cache key for a real-backend calibration: hashes the backend geometry
/// (kind, capacity, block size, direct-I/O flag) and the grid/options, in
/// a namespace ("calib-real-v1") disjoint from simulated keys so real and
/// simulated tables never alias in the calibcache.
uint64_t BackendCalibrationKey(const BlockBackend& backend, int target,
                               const std::string& model_name,
                               const CalibrationOptions& options);

/// CalibrateBackendTarget with the same persistent cache protocol as
/// CalibrateDeviceCached: cache dir from options.cache_dir or
/// LDB_CALIBRATION_CACHE, `<model_name>-<key>.costmodel` files in the
/// calibcache v1 format.
Result<CostModel> CalibrateBackendTargetCached(
    BlockBackend* backend, int target, const std::string& model_name,
    const CalibrationOptions& options);

}  // namespace ldb

#endif  // LAYOUTDB_IO_CALIBRATE_H_
