#include "io/sim_backend.h"

#include <utility>

namespace ldb {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kFile:
      return "file";
  }
  return "?";
}

SimBackend::SimBackend(StorageSystem* system) : system_(system) {
  geometry_.kind = BackendKind::kSim;
  geometry_.num_targets = system->num_targets();
  geometry_.capacity_bytes = system->capacities();
  geometry_.logical_block_bytes = 512;
  geometry_.direct_io = false;
}

void SimBackend::Submit(int target, const TargetRequest& req, void* /*data*/,
                        Completion done) {
  if (req.is_write) {
    ++counters_.writes;
    counters_.bytes_written += req.size;
  } else {
    ++counters_.reads;
    counters_.bytes_read += req.size;
  }
  system_->Submit(target, req, [done = std::move(done)](double when) {
    done(when, Status::Ok());
  });
}

Status SimBackend::ReadSync(int /*target*/, int64_t /*offset*/,
                            int64_t /*size*/, void* /*buf*/) {
  return Status::FailedPrecondition(
      "sim backend has no data plane (ReadSync)");
}

Status SimBackend::WriteSync(int /*target*/, int64_t /*offset*/,
                             int64_t /*size*/, const void* /*buf*/) {
  return Status::FailedPrecondition(
      "sim backend has no data plane (WriteSync)");
}

Status SimBackend::Sync() {
  ++counters_.syncs;
  return Status::Ok();
}

}  // namespace ldb
