#ifndef LAYOUTDB_IO_PATTERN_H_
#define LAYOUTDB_IO_PATTERN_H_

#include <cstdint>

#include "io/backend.h"
#include "storage/lvm.h"
#include "util/status.h"

namespace ldb {

/// Deterministic verification pattern keyed by (object, logical offset):
/// every 8-byte word of an object's logical byte space has a fixed value
/// independent of where the layout places it. Migration copies therefore
/// preserve the pattern byte for byte, and "every byte readable" reduces
/// to re-deriving the expected word at each logical offset and comparing.
///
/// `word_offset` must be a multiple of 8 (the word's logical position).
uint64_t PatternWord(ObjectId object, int64_t word_offset);

/// Fills `buf` with the pattern of object bytes [offset, offset + size).
void FillPattern(ObjectId object, int64_t offset, int64_t size, void* buf);

/// Returns the object-relative offset of the first byte of `buf` that does
/// not match the pattern, or -1 when all `size` bytes match.
int64_t FindPatternMismatch(ObjectId object, int64_t offset, int64_t size,
                            const void* buf);

/// Writes every object's full pattern through `router`'s *read* routing
/// (the authoritative single location) onto `backend`. Used once at the
/// start of a fresh real-backend run, before any migration moves bytes.
Status PopulateBackendPattern(BlockBackend* backend, VolumeRouter* router,
                              int64_t chunk_bytes = 1 << 20);

/// Reads every object byte back through `router`'s read routing and checks
/// it against the pattern. Returns the total bytes verified, or an error
/// naming the first mismatching object/offset.
Result<int64_t> VerifyBackendPattern(BlockBackend* backend,
                                     VolumeRouter* router,
                                     int64_t chunk_bytes = 1 << 20);

}  // namespace ldb

#endif  // LAYOUTDB_IO_PATTERN_H_
