#ifndef LAYOUTDB_IO_FILE_BACKEND_H_
#define LAYOUTDB_IO_FILE_BACKEND_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/backend.h"

namespace ldb {

/// Configuration of a FileBackend: one regular file (or raw device node)
/// per storage target under `dir`, named `target-NNN.dat`.
struct FileBackendOptions {
  std::string dir;                      ///< directory holding target files
  std::vector<int64_t> capacity_bytes;  ///< per-target capacity to provision
  /// Alignment unit for O_DIRECT. Capacities round up to a multiple of
  /// this; pre-existing files whose size is not a multiple are rejected by
  /// the probe (clause-indexed error) rather than silently truncated.
  int64_t logical_block_bytes = 4096;
  int queue_depth = 32;  ///< per-target async inflight cap (Submit blocks)
  int num_workers = 4;   ///< I/O worker threads
  bool try_direct = true;  ///< attempt O_DIRECT; fall back buffered + warn
  bool use_io_uring = true;  ///< use io_uring when compiled in
  bool quiet = false;        ///< suppress the buffered-fallback warning
  /// Provision each target file at *twice* its capacity and report the
  /// capacity as the geometry's epoch stride: migration runs place source
  /// (epoch 0) and destination (epoch 1) extents in disjoint halves (see
  /// DataPlaneOffset). Off for single-layout uses (calibration, replay).
  bool dual_epoch = false;
};

/// Real-I/O BlockBackend: stripes each target's byte space over one regular
/// file (or raw device), served by a preadv/pwritev worker pool — or
/// io_uring when liburing is available at build time — with O_DIRECT
/// aligned buffers and a buffered fallback for filesystems (tmpfs) and
/// requests that cannot satisfy the alignment contract.
///
/// Completion times are wall-clock seconds since Open(). Completions are
/// queued and delivered on the caller's thread via PumpCompletions()/
/// Drain() — see the seam contract in backend.h.
class FileBackend final : public BlockBackend {
 public:
  /// Probes/creates the target files and starts the worker pool. Probe
  /// failures (bad sizes, unwritable dir) are clause-indexed by target:
  /// "backend target clause N: ...".
  static Result<std::unique_ptr<FileBackend>> Open(
      const FileBackendOptions& options);

  ~FileBackend() override;

  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  const BackendGeometry& geometry() const override { return geometry_; }
  void Submit(int target, const TargetRequest& req, void* data,
              Completion done) override;
  Status ReadSync(int target, int64_t offset, int64_t size,
                  void* buf) override;
  Status WriteSync(int target, int64_t offset, int64_t size,
                   const void* buf) override;
  Status Sync() override;
  int PumpCompletions() override;
  Status Drain() override;
  BackendCounters counters() const override;

  /// Path of target `t`'s backing file.
  const std::string& target_path(int t) const;

  /// True when this build carries the io_uring submission path.
  static bool IoUringCompiledIn();

 private:
  struct Target {
    std::string path;
    int buffered_fd = -1;
    int direct_fd = -1;  ///< -1 when O_DIRECT is unsupported here
    int64_t capacity = 0;
    int inflight = 0;
  };
  struct Job {
    int target = 0;
    int64_t offset = 0;
    int64_t size = 0;
    bool is_write = false;
    void* data = nullptr;  ///< null = timing-only, use worker scratch
    Completion done;
  };
  struct Fired {
    Completion done;
    double when_s = 0.0;
    Status status;
  };
  /// Per-thread aligned bounce buffer (posix_memalign), grown on demand.
  struct Bounce {
    char* data = nullptr;
    int64_t size = 0;
    ~Bounce();
    Status Reserve(int64_t bytes, int64_t align);
  };

  FileBackend() = default;

  void WorkerLoop(int worker);
  /// Executes one I/O on the caller's thread through `bounce`; fills
  /// counters under mu_.
  Status Execute(const Job& job, Bounce* bounce);
  /// The raw transfer loop (pread/pwrite or io_uring) on `fd`.
  Status Transfer(int fd, bool is_write, int64_t offset, int64_t size,
                  char* buf);
  double NowS() const;

  FileBackendOptions options_;
  BackendGeometry geometry_;
  std::vector<Target> targets_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable job_cv_;    ///< workers wait for jobs
  std::condition_variable space_cv_;  ///< Submit waits for queue depth
  std::condition_variable drain_cv_;  ///< Drain waits for idle
  std::deque<Job> jobs_;
  std::vector<Fired> fired_;
  int total_inflight_ = 0;
  bool stopping_ = false;
  BackendCounters counters_;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Bounce>> worker_bounce_;
  std::mutex sync_mu_;  ///< serializes ReadSync/WriteSync bounce use
  Bounce sync_bounce_;
};

}  // namespace ldb

#endif  // LAYOUTDB_IO_FILE_BACKEND_H_
