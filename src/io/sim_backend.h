#ifndef LAYOUTDB_IO_SIM_BACKEND_H_
#define LAYOUTDB_IO_SIM_BACKEND_H_

#include "io/backend.h"
#include "storage/storage_system.h"

namespace ldb {

/// BlockBackend adapter over the event-queue simulator. Submit() forwards
/// to StorageSystem::Submit with an identical completion wrapper, so a run
/// routed through this backend schedules the exact same events as one
/// calling the simulator directly — the differential tests pin the two
/// paths bit-identical (StateFingerprint).
///
/// The sim has no data plane: ReadSync/WriteSync return
/// kFailedPrecondition. Completion times are virtual simulation seconds.
class SimBackend final : public BlockBackend {
 public:
  /// `system` must outlive the backend.
  explicit SimBackend(StorageSystem* system);

  const BackendGeometry& geometry() const override { return geometry_; }
  void Submit(int target, const TargetRequest& req, void* data,
              Completion done) override;
  Status ReadSync(int target, int64_t offset, int64_t size,
                  void* buf) override;
  Status WriteSync(int target, int64_t offset, int64_t size,
                   const void* buf) override;
  Status Sync() override;
  int PumpCompletions() override { return 0; }
  Status Drain() override { return Status::Ok(); }
  BackendCounters counters() const override { return counters_; }

 private:
  StorageSystem* system_;
  BackendGeometry geometry_;
  BackendCounters counters_;
};

}  // namespace ldb

#endif  // LAYOUTDB_IO_SIM_BACKEND_H_
