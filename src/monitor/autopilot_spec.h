#ifndef LAYOUTDB_MONITOR_AUTOPILOT_SPEC_H_
#define LAYOUTDB_MONITOR_AUTOPILOT_SPEC_H_

#include <string>

#include "monitor/drift.h"
#include "monitor/online_analyzer.h"
#include "util/status.h"

namespace ldb {

/// Monitor-level configuration of the layout autopilot: how the sensor
/// windows the workload, when the drift detector trips, and how the
/// cost-benefit gate prices a proposed migration.
struct AutopilotConfig {
  OnlineAnalyzerOptions analyzer;
  DriftOptions drift;
  /// How often the controller samples the window and evaluates drift.
  double check_interval_s = 2.0;
  /// Minimum projected drop in maximum utilization (old minus re-advised)
  /// for a migration to be worth starting at all.
  double gate_min_gain = 0.02;
  /// Amortization horizon: the projected gain must repay the migration's
  /// copy time within this many seconds —
  ///   (mu_old - mu_new) * horizon >= bytes / bandwidth.
  double gate_horizon_s = 300.0;
  /// Bandwidth used to price the copy when the migration executor is
  /// unthrottled (MigrateOptions::bandwidth_bytes_per_s == 0).
  double gate_fallback_bandwidth = 64.0 * 1024 * 1024;

  /// Range-checks every field (the programmatic twin of the parser's
  /// clause checks).
  Status Validate() const;
};

/// Parses an `--autopilot` spec: semicolon-separated clauses of
/// comma-separated key=value items, in the ParseFaultPlan grammar style,
/// with clause-indexed errors.
///
///   "interval=2;threshold=0.25,trip=2,cooldown=30;window=15,gain=0.02"
///
/// Keys: interval (s, > 0), window (analyzer half-life s, > 0 or inf for
/// an all-history window), slack (sequential slack bytes, >= 0), runs
/// (max open runs, >= 1), ring (retained requests per object, >= 1),
/// threshold (> 0; inf disables drift tripping), trip (evaluations, >=
/// 1), clear (hysteresis ratio in (0,1]), cooldown (s, >= 0), minrate
/// (req/s, > 0), gain (utilization, >= 0), horizon (s, > 0), bandwidth
/// (gate fallback bytes/s, > 0). An empty spec yields the defaults.
Result<AutopilotConfig> ParseAutopilotSpec(const std::string& text);

/// Renders a config back to the spec grammar (for logs and reports).
std::string AutopilotConfigToString(const AutopilotConfig& config);

}  // namespace ldb

#endif  // LAYOUTDB_MONITOR_AUTOPILOT_SPEC_H_
