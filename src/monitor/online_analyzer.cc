#include "monitor/online_analyzer.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ldb {

OnlineAnalyzer::OnlineAnalyzer(int num_objects, OnlineAnalyzerOptions options)
    : n_(num_objects), options_(options) {
  LDB_CHECK_GT(n_, 0);
  options_.ring_capacity = std::max(1, options_.ring_capacity);
  options_.busy_capacity = std::max(1, options_.busy_capacity);
  if (options_.half_life_s > 0.0 && std::isfinite(options_.half_life_s)) {
    lambda_ = std::log(2.0) / options_.half_life_s;
  }
  mask_words_ = (n_ + 63) / 64;
  rows_.assign(static_cast<size_t>(n_), Row{});
  hits_.assign(static_cast<size_t>(n_) * static_cast<size_t>(n_), 0.0);
  trackers_.assign(static_cast<size_t>(n_),
                   SequentialRunTracker(options_.max_open_runs,
                                        options_.sequential_slack_bytes));
  ring_.assign(static_cast<size_t>(n_) *
                   static_cast<size_t>(options_.ring_capacity),
               Entry{});
  masks_.assign(ring_.size() * static_cast<size_t>(mask_words_), 0);
  busy_.assign(static_cast<size_t>(n_) *
                   static_cast<size_t>(options_.busy_capacity),
               BusyInterval{});
  mask_scratch_.assign(static_cast<size_t>(mask_words_), 0);
}

double OnlineAnalyzer::DecayFactor(double dt) const {
  if (lambda_ == 0.0 || dt <= 0.0) return 1.0;
  return std::exp(-lambda_ * dt);
}

void OnlineAnalyzer::DecayRowTo(int i, double t) {
  Row& row = rows_[static_cast<size_t>(i)];
  if (t <= row.last_t) return;
  if (lambda_ == 0.0) {
    row.last_t = t;
    return;
  }
  const double f = std::exp(-lambda_ * (t - row.last_t));
  row.last_t = t;
  row.reads *= f;
  row.writes *= f;
  row.read_bytes *= f;
  row.write_bytes *= f;
  row.runs *= f;
  row.requests *= f;
  row.self_sum *= f;
  double* hrow = &hits_[static_cast<size_t>(i) * static_cast<size_t>(n_)];
  for (int k = 0; k < n_; ++k) hrow[k] *= f;
}

uint64_t* OnlineAnalyzer::MaskOf(int object, int slot) {
  return &masks_[(static_cast<size_t>(object) *
                      static_cast<size_t>(options_.ring_capacity) +
                  static_cast<size_t>(slot)) *
                 static_cast<size_t>(mask_words_)];
}

const uint64_t* OnlineAnalyzer::MaskOf(int object, int slot) const {
  return &masks_[(static_cast<size_t>(object) *
                      static_cast<size_t>(options_.ring_capacity) +
                  static_cast<size_t>(slot)) *
                 static_cast<size_t>(mask_words_)];
}

void OnlineAnalyzer::Observe(const IoEvent& ev) {
  LDB_CHECK(ev.object >= 0 && ev.object < n_);
  const int i = ev.object;
  const double t = ev.submit_time;
  const double c = ev.complete_time;
  const double w = options_.overlap_window_s;
  const int cap = options_.ring_capacity;

  if (events_ == 0) {
    min_submit_ = t;
    max_complete_ = c;
  } else {
    min_submit_ = std::min(min_submit_, t);
    max_complete_ = std::max(max_complete_, c);
  }
  ++events_;

  DecayRowTo(i, c);
  Row& row = rows_[static_cast<size_t>(i)];
  row.requests += 1.0;
  if (ev.is_write) {
    row.writes += 1.0;
    row.write_bytes += static_cast<double>(ev.size);
  } else {
    row.reads += 1.0;
    row.read_bytes += static_cast<double>(ev.size);
  }
  if (trackers_[static_cast<size_t>(i)].Observe(ev.logical_offset, ev.size)) {
    row.runs += 1.0;
  }

  // Overlap accounting. mask_scratch_ accumulates which objects k already
  // scored a hit against this request's submit; it becomes the ring
  // entry's hit mask.
  for (int mw = 0; mw < mask_words_; ++mw) mask_scratch_[mw] = 0;
  double* hrow = &hits_[static_cast<size_t>(i) * static_cast<size_t>(n_)];

  // Immediate half: this submit against each other object's merged busy
  // union observed so far (one hit per k at most; sets the mask bit).
  for (int k = 0; k < n_; ++k) {
    if (k == i) continue;
    const Row& rk = rows_[static_cast<size_t>(k)];
    const BusyInterval* kbusy =
        &busy_[static_cast<size_t>(k) *
               static_cast<size_t>(options_.busy_capacity)];
    for (int idx = rk.busy_size - 1; idx >= 0; --idx) {
      const BusyInterval& bi =
          kbusy[(rk.busy_head + idx) % options_.busy_capacity];
      if (bi.hi < t) break;  // sorted by hi: older ones end even earlier
      if (bi.lo <= t) {
        hrow[k] += 1.0;
        mask_scratch_[k >> 6] |= uint64_t{1} << (k & 63);
        break;
      }
    }
  }

  // Deferred half: this request's in-flight interval against every
  // object's retained submits observed before it. Self pairs use the raw
  // interval (only genuinely concurrent own requests compete); cross
  // pairs use the padded one and respect the per-entry hit mask.
  for (int o = 0; o < n_; ++o) {
    Row& ro = rows_[static_cast<size_t>(o)];
    const Entry* oring =
        &ring_[static_cast<size_t>(o) * static_cast<size_t>(cap)];
    if (o == i) {
      for (int idx = ro.ring_size - 1; idx >= 0; --idx) {
        const Entry& e = oring[(ro.ring_head + idx) % cap];
        if (e.complete < t) break;
        // Immediate self: the retained request was in flight at this
        // submit (its weight is this event's, i.e. 1).
        if (e.complete > t && e.submit <= t) row.self_sum += 1.0;
        // Deferred self: this interval covers the retained submit (its
        // weight is the retained request's).
        if (e.submit >= t && e.submit < c) {
          row.self_sum += DecayFactor(c - e.complete);
        }
      }
      continue;
    }
    const double lo = t - w;
    bool decayed = false;
    for (int idx = ro.ring_size - 1; idx >= 0; --idx) {
      const int slot = (ro.ring_head + idx) % cap;
      const Entry& e = oring[slot];
      if (e.complete < lo) break;
      if (e.submit < lo) continue;
      uint64_t* mask = MaskOf(o, slot);
      if ((mask[i >> 6] >> (i & 63)) & 1) continue;  // already hit k=i
      if (!decayed) {
        DecayRowTo(o, c);
        decayed = true;
      }
      hits_[static_cast<size_t>(o) * static_cast<size_t>(n_) + i] +=
          DecayFactor(c - e.complete);
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }

  // Retain this request in the submit ring (evicting the oldest entry
  // when full) with the hit mask accumulated above.
  int slot;
  if (row.ring_size < cap) {
    slot = (row.ring_head + row.ring_size) % cap;
    ++row.ring_size;
  } else {
    slot = row.ring_head;
    row.ring_head = (row.ring_head + 1) % cap;
  }
  Entry& mine = ring_[static_cast<size_t>(i) * static_cast<size_t>(cap) +
                      static_cast<size_t>(slot)];
  mine.submit = t;
  mine.complete = c;
  uint64_t* mymask = MaskOf(i, slot);
  for (int mw = 0; mw < mask_words_; ++mw) mymask[mw] = mask_scratch_[mw];

  // Merge the padded interval into the busy union. Completion times are
  // nondecreasing, so the new interval has the largest hi; it may swallow
  // any number of recent entries whose hi reaches back past its lo.
  {
    const int bcap = options_.busy_capacity;
    BusyInterval* mybusy =
        &busy_[static_cast<size_t>(i) * static_cast<size_t>(bcap)];
    double lo = t - w;
    double hi = c + w;
    while (row.busy_size > 0) {
      BusyInterval& newest =
          mybusy[(row.busy_head + row.busy_size - 1) % bcap];
      if (newest.hi < lo) break;
      lo = std::min(lo, newest.lo);
      hi = std::max(hi, newest.hi);
      --row.busy_size;
    }
    int bslot;
    if (row.busy_size < bcap) {
      bslot = (row.busy_head + row.busy_size) % bcap;
      ++row.busy_size;
    } else {
      bslot = row.busy_head;
      row.busy_head = (row.busy_head + 1) % bcap;
    }
    mybusy[bslot] = BusyInterval{lo, hi};
  }
}

WorkloadSet OnlineAnalyzer::Snapshot() const {
  WorkloadSet out(static_cast<size_t>(n_));
  for (WorkloadDesc& w : out) w.overlap.assign(static_cast<size_t>(n_), 0.0);
  if (events_ == 0) return out;

  const double T = max_complete_;
  const double duration = std::max(T - min_submit_, 1e-12);
  const double window =
      lambda_ > 0.0 ? (1.0 - std::exp(-lambda_ * duration)) / lambda_
                    : duration;

  for (int i = 0; i < n_; ++i) {
    const Row& row = rows_[static_cast<size_t>(i)];
    WorkloadDesc& w = out[static_cast<size_t>(i)];
    const double f = DecayFactor(T - row.last_t);
    const double requests = row.requests * f;
    if (requests <= 1e-12) continue;
    w.read_rate = row.reads * f / window;
    w.write_rate = row.writes * f / window;
    w.read_size = row.reads > 0.0 ? row.read_bytes / row.reads : 0.0;
    w.write_size = row.writes > 0.0 ? row.write_bytes / row.writes : 0.0;
    w.run_count =
        row.runs > 0.0 ? std::max(1.0, row.requests / row.runs) : 1.0;
    const double* hrow =
        &hits_[static_cast<size_t>(i) * static_cast<size_t>(n_)];
    for (int k = 0; k < n_; ++k) {
      if (k == i) continue;
      w.overlap[static_cast<size_t>(k)] =
          std::clamp(hrow[k] / row.requests, 0.0, 1.0);
    }
    w.overlap[static_cast<size_t>(i)] =
        std::max(0.0, row.self_sum / row.requests);
    LDB_CHECK(IsValidWorkload(w, static_cast<size_t>(n_),
                              static_cast<size_t>(i)));
  }
  if (options_.sparse_overlap) SparsifyOverlap(&out, options_.sparsify);
  return out;
}

void OnlineAnalyzer::Reset() {
  rows_.assign(rows_.size(), Row{});
  std::fill(hits_.begin(), hits_.end(), 0.0);
  for (SequentialRunTracker& tr : trackers_) tr.Reset();
  std::fill(masks_.begin(), masks_.end(), 0);
  events_ = 0;
  min_submit_ = 0.0;
  max_complete_ = 0.0;
}

}  // namespace ldb
