#include "monitor/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.h"

namespace ldb {

namespace {

/// |log(a/b)| scaled so a 4x shift scores 1, capped at 1.
double LogShift(double a, double b) {
  const double shift = std::fabs(std::log(a / b)) / std::log(4.0);
  return std::min(1.0, shift);
}

double WriteFraction(const WorkloadDesc& w) {
  const double total = w.total_rate();
  return total > 0.0 ? w.write_rate / total : 0.0;
}

/// Off-diagonal L1 distance between two overlap rows when at least one is
/// in the sparse representation. Walks the union of supports; entries
/// outside both supports contribute exactly zero.
double SparseOverlapL1(const WorkloadDesc& l, const WorkloadDesc& r,
                       size_t i) {
  double ovl = 0.0;
  if (l.has_sparse_overlap() && r.has_sparse_overlap()) {
    size_t a = 0, b = 0;
    const size_t na = l.overlap_index.size(), nb = r.overlap_index.size();
    while (a < na || b < nb) {
      const int32_t ka = a < na ? l.overlap_index[a]
                                : std::numeric_limits<int32_t>::max();
      const int32_t kb = b < nb ? r.overlap_index[b]
                                : std::numeric_limits<int32_t>::max();
      const int32_t k = std::min(ka, kb);
      const double lv = ka == k ? l.overlap_value[a++] : 0.0;
      const double rv = kb == k ? r.overlap_value[b++] : 0.0;
      if (static_cast<size_t>(k) != i) ovl += std::fabs(lv - rv);
    }
    return ovl;
  }
  const WorkloadDesc& dense = l.has_sparse_overlap() ? r : l;
  const WorkloadDesc& sparse = l.has_sparse_overlap() ? l : r;
  for (size_t k = 0; k < dense.overlap.size(); ++k) {
    if (k == i) continue;
    ovl += std::fabs(dense.overlap[k] - sparse.overlap_with(k));
  }
  return ovl;
}

}  // namespace

DriftDetector::DriftDetector(WorkloadSet reference, DriftOptions options,
                             double now)
    : reference_(std::move(reference)), options_(options) {
  LDB_CHECK_GT(options_.threshold, 0.0);
  LDB_CHECK_GE(options_.trip_evaluations, 1);
  LDB_CHECK(options_.clear_ratio > 0.0 && options_.clear_ratio <= 1.0);
  LDB_CHECK_GE(options_.cooldown_s, 0.0);
  LDB_CHECK_GT(options_.min_rate, 0.0);
  LDB_CHECK(options_.sustained_ratio >= 0.0 &&
            options_.sustained_ratio <= 1.0);
  LDB_CHECK(options_.sustained_ratio == 0.0 || options_.sustained_s > 0.0);
  cooldown_until_ = now + options_.cooldown_s;
}

double DriftDetector::Score(const WorkloadSet& live) const {
  const size_t n = reference_.size();
  LDB_CHECK(live.size() == n);
  const double floor = options_.min_rate;
  double weight_sum = 0.0;
  double score_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const WorkloadDesc& r = reference_[i];
    const WorkloadDesc& l = live[i];
    const double rate_r = r.total_rate();
    const double rate_l = l.total_rate();
    if (rate_r < floor && rate_l < floor) continue;  // inactive both sides
    // Weight by bytes/s of demand so cold objects cannot drown out the
    // tables that actually load the system.
    const double weight = std::max(std::max(rate_r * r.mean_size(),
                                            rate_l * l.mean_size()),
                                   1.0);
    double d = LogShift(std::max(rate_l, floor), std::max(rate_r, floor));
    d = std::max(d, LogShift(std::max(l.mean_size(), 512.0),
                             std::max(r.mean_size(), 512.0)));
    d = std::max(d, LogShift(l.run_count, r.run_count));
    d = std::max(d, std::fabs(WriteFraction(l) - WriteFraction(r)));
    const bool r_has = r.has_sparse_overlap() || !r.overlap.empty();
    const bool l_has = l.has_sparse_overlap() || !l.overlap.empty();
    if (r_has && l_has &&
        (r.has_sparse_overlap() || l.has_sparse_overlap() ||
         r.overlap.size() == l.overlap.size())) {
      double ovl = 0.0;
      if (!r.has_sparse_overlap() && !l.has_sparse_overlap()) {
        for (size_t k = 0; k < n; ++k) {
          if (k == i) continue;
          ovl += std::fabs(l.overlap[k] - r.overlap[k]);
        }
      } else {
        ovl = SparseOverlapL1(l, r, i);
      }
      // Entries outside either support differ by exactly zero, so the
      // dense normalization (n-1 terms) carries over to the sparse walk.
      if (n > 1) d = std::max(d, ovl / static_cast<double>(n - 1));
      // Self-overlap is unbounded (a concurrency count): compare as a
      // log ratio like the other magnitude-type statistics.
      d = std::max(d, LogShift(1.0 + l.overlap_with(i),
                               1.0 + r.overlap_with(i)));
    }
    weight_sum += weight;
    score_sum += weight * d;
  }
  return weight_sum > 0.0 ? score_sum / weight_sum : 0.0;
}

bool DriftDetector::Evaluate(const WorkloadSet& live, double now) {
  last_score_ = Score(live);
  if (now < cooldown_until_) {
    above_ = 0;
    elevated_since_ = -1.0;
    return false;
  }
  if (!armed_) {
    if (last_score_ <= options_.threshold * options_.clear_ratio) {
      armed_ = true;
      above_ = 0;
    } else {
      return false;
    }
  }
  // Sustained sub-threshold path: a score plateauing in
  // (ratio * threshold, threshold] would never edge-trigger; the dwell
  // clock catches it. It only runs while armed and outside cooldown, so a
  // freshly advised layout gets the same grace period as the edge trigger.
  if (options_.sustained_ratio > 0.0 &&
      last_score_ > options_.threshold * options_.sustained_ratio) {
    if (elevated_since_ < 0.0) elevated_since_ = now;
    if (now - elevated_since_ >= options_.sustained_s) {
      ++trips_;
      ++sustained_trips_;
      armed_ = false;
      above_ = 0;
      elevated_since_ = -1.0;
      cooldown_until_ = now + options_.cooldown_s;
      return true;
    }
  } else {
    elevated_since_ = -1.0;
  }
  if (last_score_ > options_.threshold) {
    if (++above_ >= options_.trip_evaluations) {
      ++trips_;
      armed_ = false;
      above_ = 0;
      elevated_since_ = -1.0;
      cooldown_until_ = now + options_.cooldown_s;
      return true;
    }
  } else {
    above_ = 0;
  }
  return false;
}

void DriftDetector::Rearm(WorkloadSet reference, double now) {
  reference_ = std::move(reference);
  cooldown_until_ = now + options_.cooldown_s;
  armed_ = true;
  above_ = 0;
  elevated_since_ = -1.0;
}

}  // namespace ldb
