#ifndef LAYOUTDB_MONITOR_ONLINE_ANALYZER_H_
#define LAYOUTDB_MONITOR_ONLINE_ANALYZER_H_

#include <cstdint>
#include <vector>

#include "model/workload.h"
#include "storage/io_request.h"
#include "trace/run_tracker.h"
#include "util/units.h"

namespace ldb {

/// Options of the streaming workload analyzer. The sequential-run and
/// overlap knobs default to the batch TraceAnalyzer's values so a
/// stationary window reproduces the batch fit.
struct OnlineAnalyzerOptions {
  /// Exponential-decay half-life of the statistics window in simulated
  /// seconds; recent traffic dominates the fit and phases fade at this
  /// rate. <= 0 disables decay (all-history window, exactly the batch
  /// analyzer's semantics).
  double half_life_s = 15.0;
  /// See AnalyzerOptions::sequential_slack_bytes.
  int64_t sequential_slack_bytes = 16 * kKiB;
  /// See AnalyzerOptions::overlap_window_s.
  double overlap_window_s = 0.05;
  /// See AnalyzerOptions::max_open_runs.
  int max_open_runs = 8;
  /// Recent completed requests retained per object for the deferred half
  /// of overlap accounting (an arriving in-flight interval is matched
  /// against submits observed before it). Bounded: requests older than the
  /// ring undercount overlap slightly, which the windowed estimate
  /// tolerates.
  int ring_capacity = 256;
  /// Merged padded busy intervals retained per object (the immediate half
  /// of overlap accounting). Continuous activity merges into few
  /// intervals; only workloads with many gaps longer than
  /// 2*overlap_window_s need depth here.
  int busy_capacity = 64;
  /// When true, Snapshot() emits the overlap matrix in the sparse CSR form
  /// (SparsifyOverlap with `sparsify` below) so fleet-scale consumers never
  /// hold N² dense rows. The internal hit accounting stays dense — the
  /// analyzer was constructed for a fixed N.
  bool sparse_overlap = false;
  /// Sparsification policy when `sparse_overlap` is set; the default keeps
  /// every nonzero neighbor (threshold 0) and drops the dense rows.
  SparsifyOptions sparsify;
};

/// Streaming counterpart of TraceAnalyzer (the monitor's sensor): ingests
/// object-level completion events one at a time — O(ring scan) per event,
/// no allocation after construction — and maintains exponentially-decayed
/// Rome workload statistics per object: read/write rates and sizes,
/// sequential run counts, and the full temporal-overlap matrix including
/// the self-overlap diagonal.
///
/// With decay disabled the statistics over a stationary window match the
/// batch analyzer's up to two bounded effects: events arrive in completion
/// order rather than submit order (run detection can interleave
/// differently near the max_open_runs bound) and the per-object rings
/// truncate overlap lookback. The differential test pins the agreement.
///
/// Overlap accounting splits each (submit of i, in-flight interval of k)
/// pair by observation order: an arriving submit is checked against k's
/// already-merged busy intervals, and an arriving interval is checked
/// against every object's retained submits. A per-entry bitmask caps
/// off-diagonal hits at one per submit per k, matching the batch
/// definition (fraction of i's submits inside k's merged busy union).
class OnlineAnalyzer {
 public:
  explicit OnlineAnalyzer(int num_objects, OnlineAnalyzerOptions options = {});

  /// Feeds one completed object-level request (the WorkloadRunner's
  /// logical-observer event). Events must arrive in completion order, as
  /// the simulator delivers them. Allocation-free.
  void Observe(const IoEvent& ev);

  /// Fits the current window: one WorkloadDesc per object, rates
  /// normalized by the effective (decay-weighted) window length. Objects
  /// with no surviving weight get an all-zero description. The result
  /// always satisfies IsValidWorkload.
  WorkloadSet Snapshot() const;

  /// Forgets everything (a fresh window).
  void Reset();

  int num_objects() const { return n_; }
  uint64_t events() const { return events_; }
  const OnlineAnalyzerOptions& options() const { return options_; }

 private:
  struct Row {
    double last_t = 0.0;  ///< decay reference time of this row's counters
    double reads = 0.0;
    double writes = 0.0;
    double read_bytes = 0.0;
    double write_bytes = 0.0;
    double runs = 0.0;
    double requests = 0.0;
    double self_sum = 0.0;  ///< Σ over submits of own other in-flight reqs
    int ring_head = 0;      ///< oldest live slot in the submit ring
    int ring_size = 0;
    int busy_head = 0;
    int busy_size = 0;
  };

  /// One retained completed request (submit ring entry).
  struct Entry {
    double submit = 0.0;
    double complete = 0.0;
  };

  struct BusyInterval {
    double lo = 0.0;
    double hi = 0.0;
  };

  double DecayFactor(double dt) const;
  /// Brings row i's decayed counters (including its hits_ row) to time t.
  void DecayRowTo(int i, double t);

  uint64_t* MaskOf(int object, int slot);
  const uint64_t* MaskOf(int object, int slot) const;

  int n_;
  OnlineAnalyzerOptions options_;
  double lambda_ = 0.0;  ///< ln 2 / half_life (0 = no decay)
  int mask_words_ = 1;

  std::vector<Row> rows_;
  std::vector<double> hits_;  ///< N x N decayed overlap hit counts
  std::vector<SequentialRunTracker> trackers_;
  std::vector<Entry> ring_;           ///< N x ring_capacity submit entries
  std::vector<uint64_t> masks_;       ///< N x ring_capacity x mask_words
  std::vector<BusyInterval> busy_;    ///< N x busy_capacity merged intervals
  std::vector<uint64_t> mask_scratch_;

  uint64_t events_ = 0;
  double min_submit_ = 0.0;
  double max_complete_ = 0.0;
};

}  // namespace ldb

#endif  // LAYOUTDB_MONITOR_ONLINE_ANALYZER_H_
