#ifndef LAYOUTDB_MONITOR_DRIFT_H_
#define LAYOUTDB_MONITOR_DRIFT_H_

#include <cstdint>

#include "model/workload.h"

namespace ldb {

/// Knobs of the drift detector.
struct DriftOptions {
  /// Drift score above which the detector considers the live window to
  /// have departed from the reference. Must be > 0; +infinity disables
  /// tripping entirely (the score is always finite).
  double threshold = 0.25;
  /// Consecutive above-threshold evaluations required to trip (a noise
  /// gate against transient spikes).
  int trip_evaluations = 2;
  /// Hysteresis: after a trip, the score must fall below
  /// threshold * clear_ratio before the detector re-arms, so a workload
  /// hovering at the threshold cannot oscillate the controller.
  double clear_ratio = 0.5;
  /// Minimum time between trips; also applied after Rearm() so a freshly
  /// advised layout gets a grace period while the window repopulates.
  double cooldown_s = 30.0;
  /// Request-rate floor (req/s): objects below it on both sides are
  /// considered inactive and score zero; it also floors log-ratio
  /// denominators so idle objects cannot produce infinite drift.
  double min_rate = 0.5;
};

/// Scores divergence between a live workload window and the WorkloadSet
/// the current layout was advised for, and turns the score into edge-
/// triggered re-layout trips with hysteresis and cooldown.
///
/// The score is a demand-weighted mean over objects of per-object drift
/// components — log-ratio shifts of request rate, mean request size and
/// sequential run count (a 4x shift saturates at 1), the absolute change
/// in write fraction, and mean absolute overlap-matrix change — each in
/// [0,1], combined by max. A score of 0 means the live window looks like
/// the reference; 1 means every byte of demand changed character.
class DriftDetector {
 public:
  /// `reference` is the workload set the current layout was advised for.
  /// `now` starts the initial cooldown clock.
  DriftDetector(WorkloadSet reference, DriftOptions options,
                double now = 0.0);

  /// Stateless drift score of `live` against the current reference.
  double Score(const WorkloadSet& live) const;

  /// Scores `live`, advances the hysteresis state machine, and returns
  /// true exactly when a trip fires (the controller should re-advise).
  /// After a trip the detector disarms until the score clears and the
  /// cooldown expires.
  bool Evaluate(const WorkloadSet& live, double now);

  /// Adopts a new reference (the workload set a new layout was advised
  /// for) and restarts the cooldown.
  void Rearm(WorkloadSet reference, double now);

  const WorkloadSet& reference() const { return reference_; }
  const DriftOptions& options() const { return options_; }
  double last_score() const { return last_score_; }
  uint64_t trips() const { return trips_; }

 private:
  WorkloadSet reference_;
  DriftOptions options_;
  double cooldown_until_ = 0.0;
  bool armed_ = true;
  int above_ = 0;
  double last_score_ = 0.0;
  uint64_t trips_ = 0;
};

}  // namespace ldb

#endif  // LAYOUTDB_MONITOR_DRIFT_H_
