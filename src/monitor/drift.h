#ifndef LAYOUTDB_MONITOR_DRIFT_H_
#define LAYOUTDB_MONITOR_DRIFT_H_

#include <cstdint>

#include "model/workload.h"

namespace ldb {

/// Knobs of the drift detector.
struct DriftOptions {
  /// Drift score above which the detector considers the live window to
  /// have departed from the reference. Must be > 0; +infinity disables
  /// tripping entirely (the score is always finite).
  double threshold = 0.25;
  /// Consecutive above-threshold evaluations required to trip (a noise
  /// gate against transient spikes).
  int trip_evaluations = 2;
  /// Hysteresis: after a trip, the score must fall below
  /// threshold * clear_ratio before the detector re-arms, so a workload
  /// hovering at the threshold cannot oscillate the controller.
  double clear_ratio = 0.5;
  /// Minimum time between trips; also applied after Rearm() so a freshly
  /// advised layout gets a grace period while the window repopulates.
  double cooldown_s = 30.0;
  /// Request-rate floor (req/s): objects below it on both sides are
  /// considered inactive and score zero; it also floors log-ratio
  /// denominators so idle objects cannot produce infinite drift.
  double min_rate = 0.5;
  /// Sustained sub-threshold drift trip. An adversarial workload can drift
  /// slowly and then *plateau* just under `threshold`: the edge trigger
  /// never fires, the reference is never re-taken, and the deployed layout
  /// stays stale forever. With `sustained_ratio` in (0,1], a score held
  /// continuously above threshold * sustained_ratio for `sustained_s`
  /// seconds trips the detector even though the threshold was never
  /// crossed. 0 disables (the historical behavior, which the slow-drift
  /// scenario test documents).
  double sustained_ratio = 0.0;
  /// Dwell time for the sustained trip; must be > 0 when
  /// `sustained_ratio` > 0.
  double sustained_s = 0.0;
};

/// Scores divergence between a live workload window and the WorkloadSet
/// the current layout was advised for, and turns the score into edge-
/// triggered re-layout trips with hysteresis and cooldown.
///
/// The score is a demand-weighted mean over objects of per-object drift
/// components — log-ratio shifts of request rate, mean request size and
/// sequential run count (a 4x shift saturates at 1), the absolute change
/// in write fraction, and mean absolute overlap-matrix change — each in
/// [0,1], combined by max. A score of 0 means the live window looks like
/// the reference; 1 means every byte of demand changed character.
class DriftDetector {
 public:
  /// `reference` is the workload set the current layout was advised for.
  /// `now` starts the initial cooldown clock.
  DriftDetector(WorkloadSet reference, DriftOptions options,
                double now = 0.0);

  /// Stateless drift score of `live` against the current reference.
  double Score(const WorkloadSet& live) const;

  /// Scores `live`, advances the hysteresis state machine, and returns
  /// true exactly when a trip fires (the controller should re-advise).
  /// After a trip the detector disarms until the score clears and the
  /// cooldown expires.
  bool Evaluate(const WorkloadSet& live, double now);

  /// Adopts a new reference (the workload set a new layout was advised
  /// for) and restarts the cooldown.
  void Rearm(WorkloadSet reference, double now);

  const WorkloadSet& reference() const { return reference_; }
  const DriftOptions& options() const { return options_; }
  double last_score() const { return last_score_; }
  uint64_t trips() const { return trips_; }
  /// Trips fired by the sustained sub-threshold path (a subset of
  /// trips()).
  uint64_t sustained_trips() const { return sustained_trips_; }

 private:
  WorkloadSet reference_;
  DriftOptions options_;
  double cooldown_until_ = 0.0;
  bool armed_ = true;
  int above_ = 0;
  double last_score_ = 0.0;
  uint64_t trips_ = 0;
  uint64_t sustained_trips_ = 0;
  /// Time the score first rose above threshold * sustained_ratio and
  /// stayed there; negative = not currently elevated.
  double elevated_since_ = -1.0;
};

}  // namespace ldb

#endif  // LAYOUTDB_MONITOR_DRIFT_H_
