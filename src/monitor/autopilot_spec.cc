#include "monitor/autopilot_spec.h"

#include <cmath>
#include <cstdlib>

#include "util/table.h"

namespace ldb {

namespace {

Status ParseDouble(const std::string& value, const std::string& key,
                   double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("autopilot spec: bad number '%s' for key '%s'",
                  value.c_str(), key.c_str()));
  }
  return Status::Ok();
}

Status ParseInt(const std::string& value, const std::string& key,
                int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("autopilot spec: bad integer '%s' for key '%s'",
                  value.c_str(), key.c_str()));
  }
  return Status::Ok();
}

}  // namespace

Status AutopilotConfig::Validate() const {
  if (!(check_interval_s > 0.0) || !std::isfinite(check_interval_s)) {
    return Status::InvalidArgument("check interval must be positive");
  }
  if (analyzer.half_life_s < 0.0) {
    return Status::InvalidArgument("analyzer half-life must be >= 0");
  }
  if (analyzer.sequential_slack_bytes < 0) {
    return Status::InvalidArgument("sequential slack must be >= 0");
  }
  if (analyzer.max_open_runs < 1) {
    return Status::InvalidArgument("max open runs must be >= 1");
  }
  if (analyzer.ring_capacity < 1) {
    return Status::InvalidArgument("ring capacity must be >= 1");
  }
  if (!(drift.threshold > 0.0)) {  // NaN also fails here
    return Status::InvalidArgument("drift threshold must be > 0");
  }
  if (drift.trip_evaluations < 1) {
    return Status::InvalidArgument("trip evaluations must be >= 1");
  }
  if (!(drift.clear_ratio > 0.0 && drift.clear_ratio <= 1.0)) {
    return Status::InvalidArgument("clear ratio must be in (0,1]");
  }
  if (drift.cooldown_s < 0.0) {
    return Status::InvalidArgument("cooldown must be >= 0");
  }
  if (!(drift.min_rate > 0.0)) {
    return Status::InvalidArgument("min rate must be > 0");
  }
  if (drift.sustained_ratio < 0.0 || drift.sustained_ratio > 1.0 ||
      std::isnan(drift.sustained_ratio)) {
    return Status::InvalidArgument("sustain ratio must be in [0,1]");
  }
  if (drift.sustained_ratio > 0.0 && !(drift.sustained_s > 0.0)) {
    return Status::InvalidArgument(
        "sustain_s must be > 0 when sustain is enabled");
  }
  if (gate_min_gain < 0.0) {
    return Status::InvalidArgument("gate gain must be >= 0");
  }
  if (!(gate_horizon_s > 0.0)) {
    return Status::InvalidArgument("gate horizon must be > 0");
  }
  if (!(gate_fallback_bandwidth > 0.0)) {
    return Status::InvalidArgument("gate bandwidth must be > 0");
  }
  return Status::Ok();
}

Result<AutopilotConfig> ParseAutopilotSpec(const std::string& text) {
  AutopilotConfig config;
  size_t pos = 0;
  int clause_index = 0;
  const auto clause_error = [&clause_index](const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("autopilot spec clause %d: %s", clause_index,
                  what.c_str()));
  };
  while (pos <= text.size()) {
    const size_t clause_end = std::min(text.find(';', pos), text.size());
    const std::string clause = text.substr(pos, clause_end - pos);
    pos = clause_end + 1;
    if (clause.empty()) continue;
    ++clause_index;

    size_t cpos = 0;
    while (cpos <= clause.size()) {
      const size_t item_end = std::min(clause.find(',', cpos), clause.size());
      const std::string item = clause.substr(cpos, item_end - cpos);
      cpos = item_end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos) {
        return clause_error(
            StrFormat("'%s' is not key=value", item.c_str()));
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      int64_t iv = 0;
      double dv = 0.0;
      if (key == "interval") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0) || !std::isfinite(dv)) {
          return clause_error("interval must be > 0");
        }
        config.check_interval_s = dv;
      } else if (key == "window") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0)) return clause_error("window must be > 0");
        // An infinite window means no decay (the batch semantics).
        config.analyzer.half_life_s = std::isfinite(dv) ? dv : 0.0;
      } else if (key == "slack") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 0) return clause_error("slack must be >= 0");
        config.analyzer.sequential_slack_bytes = iv;
      } else if (key == "runs") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 1) return clause_error("runs must be >= 1");
        config.analyzer.max_open_runs = static_cast<int>(iv);
      } else if (key == "ring") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 1) return clause_error("ring must be >= 1");
        config.analyzer.ring_capacity = static_cast<int>(iv);
      } else if (key == "threshold") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0)) {
          return clause_error("threshold must be > 0 (inf disables)");
        }
        config.drift.threshold = dv;
      } else if (key == "trip") {
        LDB_RETURN_IF_ERROR(ParseInt(value, key, &iv));
        if (iv < 1) return clause_error("trip must be >= 1");
        config.drift.trip_evaluations = static_cast<int>(iv);
      } else if (key == "clear") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0 && dv <= 1.0)) {
          return clause_error("clear must be in (0,1]");
        }
        config.drift.clear_ratio = dv;
      } else if (key == "cooldown") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0 || !std::isfinite(dv)) {
          return clause_error("cooldown must be >= 0");
        }
        config.drift.cooldown_s = dv;
      } else if (key == "minrate") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0)) return clause_error("minrate must be > 0");
        config.drift.min_rate = dv;
      } else if (key == "sustain") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0 || dv > 1.0 || std::isnan(dv)) {
          return clause_error("sustain must be in [0,1] (0 disables)");
        }
        config.drift.sustained_ratio = dv;
      } else if (key == "sustain_s") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0) || !std::isfinite(dv)) {
          return clause_error("sustain_s must be > 0");
        }
        config.drift.sustained_s = dv;
      } else if (key == "gain") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (dv < 0.0 || !std::isfinite(dv)) {
          return clause_error("gain must be >= 0");
        }
        config.gate_min_gain = dv;
      } else if (key == "horizon") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0) || !std::isfinite(dv)) {
          return clause_error("horizon must be > 0");
        }
        config.gate_horizon_s = dv;
      } else if (key == "bandwidth") {
        LDB_RETURN_IF_ERROR(ParseDouble(value, key, &dv));
        if (!(dv > 0.0) || !std::isfinite(dv)) {
          return clause_error("bandwidth must be > 0");
        }
        config.gate_fallback_bandwidth = dv;
      } else {
        return clause_error(StrFormat("unknown key '%s'", key.c_str()));
      }
    }
  }
  LDB_RETURN_IF_ERROR(config.Validate());
  return config;
}

std::string AutopilotConfigToString(const AutopilotConfig& config) {
  std::string out = StrFormat(
      "interval=%g,window=%s,threshold=%g,trip=%d,clear=%g,cooldown=%g",
      config.check_interval_s,
      config.analyzer.half_life_s > 0.0
          ? StrFormat("%g", config.analyzer.half_life_s).c_str()
          : "inf",
      config.drift.threshold, config.drift.trip_evaluations,
      config.drift.clear_ratio, config.drift.cooldown_s);
  if (config.drift.sustained_ratio > 0.0) {
    out += StrFormat(",sustain=%g,sustain_s=%g",
                     config.drift.sustained_ratio,
                     config.drift.sustained_s);
  }
  out += StrFormat(";gain=%g,horizon=%g", config.gate_min_gain,
                   config.gate_horizon_s);
  return out;
}

}  // namespace ldb
