#ifndef LAYOUTDB_WORKLOAD_RUNNER_H_
#define LAYOUTDB_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/random.h"
#include "util/status.h"
#include "workload/spec.h"

namespace ldb {

class BlockBackend;

/// Outcome of a workload execution on the simulated storage system.
struct RunResult {
  double elapsed_seconds = 0.0;      ///< wall-clock (simulated) duration
  uint64_t olap_queries_completed = 0;
  uint64_t oltp_transactions = 0;    ///< counted after warmup
  double tpm = 0.0;                  ///< transactions/minute over the
                                     ///< measurement window (tpmC analogue)
  uint64_t total_requests = 0;       ///< target-level requests completed
  std::vector<double> utilization;   ///< measured per-target utilization
  /// Fault-path counters summed over targets (all-zero without a fault
  /// plan; see FaultInjector).
  FaultStats faults;
  /// Fault specs the injector skipped as invalid at fire time (filled by
  /// harness-level fault runs; empty without a fault plan).
  std::vector<std::string> skipped_faults;
};

/// Executes workload specs against a StorageSystem through a striped
/// volume manager — the simulated counterpart of PostgreSQL running the
/// paper's SQL workloads on real disks.
///
/// All I/O is closed-loop: each stream keeps `depth` requests outstanding
/// and issues the next one when a previous completes, so storage service
/// times directly determine workload elapsed time, as on the paper's
/// testbed.
///
/// The runner assumes a freshly-constructed (or Reset) StorageSystem so
/// that measured utilizations correspond to this run only.
class WorkloadRunner {
 public:
  /// `system` and `volumes` must outlive the runner. `volumes` must map
  /// every object referenced by the workloads.
  WorkloadRunner(StorageSystem* system, const StripedVolumeManager* volumes,
                 uint64_t seed = 42);

  /// Routes all foreground I/O through `router` instead of a fixed volume
  /// manager — the migration-aware path. `system` and `router` must
  /// outlive the runner.
  WorkloadRunner(StorageSystem* system, VolumeRouter* router,
                 uint64_t seed = 42);

  /// Installs a logical-level observer: called once per *object-level*
  /// request (pre-striping), with `target` set to -1. This is the level at
  /// which the paper's workload model describes objects; the per-target
  /// chunk stream is observable separately via StorageSystem's observer.
  void set_logical_observer(StorageSystem::Observer observer) {
    logical_observer_ = std::move(observer);
  }

  /// Installs a completion hook: called once, at the simulated time the
  /// workload logically finishes (last OLAP query done, or the OLTP
  /// duration stop), while in-flight requests may still be draining. This
  /// is how run-long periodic activities (the autopilot's drift ticks)
  /// know to stop rescheduling themselves so the event queue can idle.
  void set_on_finished(std::function<void()> hook) {
    on_finished_ = std::move(hook);
  }

  /// Routes foreground submissions through a BlockBackend seam instead of
  /// calling the simulator directly. Only backends whose completions ride
  /// the event queue (SimBackend) can drive the closed loop — see the seam
  /// contract in io/backend.h. A SimBackend over the same system is
  /// bit-identical to the default direct path. `backend` must outlive the
  /// runner; null restores the direct path.
  void set_backend(BlockBackend* backend) { backend_ = backend; }

  /// Runs an OLAP workload to completion.
  Result<RunResult> RunOlap(const OlapSpec& olap);

  /// Runs an OLTP workload for `duration_s` simulated seconds.
  Result<RunResult> RunOltp(const OltpSpec& oltp, double duration_s);

  /// Consolidation scenario: runs the OLAP workload to completion with the
  /// OLTP workload active alongside; OLTP terminals stop once the OLAP
  /// workload finishes (paper Section 6.3). The tpm window is
  /// [warmup, OLAP completion].
  Result<RunResult> RunMixed(const OlapSpec& olap, const OltpSpec& oltp);

 private:
  /// Shared implementation; all driver state lives on the stack because
  /// the event loop runs to completion before this returns.
  Result<RunResult> Run(const OlapSpec* olap, const OltpSpec* oltp,
                        double duration_s);

  StorageSystem* system_;
  BlockBackend* backend_ = nullptr;  ///< optional submission seam
  std::unique_ptr<PassthroughRouter> owned_router_;  ///< legacy-ctor shim
  VolumeRouter* router_;
  Rng rng_;
  StorageSystem::Observer logical_observer_;
  std::function<void()> on_finished_;
  uint64_t next_logical_seq_ = 0;
  /// Per-object append cursors shared by kAppend streams (logs, temp).
  std::vector<int64_t> append_cursor_;
};

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_RUNNER_H_
