#ifndef LAYOUTDB_WORKLOAD_ESTIMATOR_H_
#define LAYOUTDB_WORKLOAD_ESTIMATOR_H_

#include "model/workload.h"
#include "util/status.h"
#include "workload/catalog.h"
#include "workload/spec.h"

namespace ldb {

/// Options for the analytic workload estimator.
struct EstimatorOptions {
  /// Nominal aggregate storage throughput used to convert volumes into
  /// request rates. Only the *relative* rates matter to the layout
  /// optimizer (they cancel in the contention factor and scale all
  /// utilizations uniformly), so this does not need to be accurate.
  double nominal_bytes_per_second = 100.0 * 1024 * 1024;
};

/// Storage workload estimator (paper Section 5.1, citing the authors'
/// SIGMOD'07 estimator [19]): derives Rome-style workload descriptions
/// directly from the declarative workload specs, *without* running the
/// workload and collecting traces.
///
/// Approximations (the paper notes estimator-derived descriptions "may be
/// less accurate" than trace-fitted ones):
///  * request rates are volumes divided by a nominal total duration;
///  * run counts come from stream shapes (sequential streams are one run,
///    random streams are all jumps), volume-weighted per object;
///  * overlap O_i[k] counts co-membership in the same step (streams of a
///    step are consumed together) plus, at multiprogramming level c > 1, a
///    background term for other concurrently-running queries;
///  * self-overlap at c > 1 is the expected number of other queries
///    touching the same object at a random instant.
///
/// Exactly one of `olap`/`oltp` may be null.
Result<WorkloadSet> EstimateWorkloads(const Catalog& catalog,
                                      const OlapSpec* olap,
                                      const OltpSpec* oltp,
                                      EstimatorOptions options = {});

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_ESTIMATOR_H_
