#include "workload/catalog.h"

#include <algorithm>

#include "util/check.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {

namespace {

/// Scales a size, keeping a 1 MiB floor so tiny objects stay mappable.
int64_t Scaled(double mib, double scale) {
  const double bytes = mib * static_cast<double>(kMiB) * scale;
  return std::max<int64_t>(kMiB, static_cast<int64_t>(bytes));
}

}  // namespace

const char* ObjectKindName(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kTable:
      return "table";
    case ObjectKind::kIndex:
      return "index";
    case ObjectKind::kTempSpace:
      return "temp";
    case ObjectKind::kLog:
      return "log";
  }
  return "unknown";
}

Catalog Catalog::TpcH(double scale) {
  LDB_CHECK_GT(scale, 0.0);
  Catalog c;
  auto add = [&](const char* name, ObjectKind kind, double mib) {
    c.Add(DbObject{name, kind, Scaled(mib, scale)});
  };
  // Tables (8), sized after a scale-factor-5 PostgreSQL TPC-H database.
  add("LINEITEM", ObjectKind::kTable, 3800);
  add("ORDERS", ObjectKind::kTable, 860);
  add("PARTSUPP", ObjectKind::kTable, 600);
  add("PART", ObjectKind::kTable, 150);
  add("CUSTOMER", ObjectKind::kTable, 125);
  add("SUPPLIER", ObjectKind::kTable, 9);
  add("NATION", ObjectKind::kTable, 1);
  add("REGION", ObjectKind::kTable, 1);
  // Indexes (11).
  add("I_L_ORDERKEY", ObjectKind::kIndex, 620);
  add("I_L_SUPPK_PARTK", ObjectKind::kIndex, 540);
  add("I_L_SHIPDATE", ObjectKind::kIndex, 470);
  add("ORDERS_PKEY", ObjectKind::kIndex, 180);
  add("I_O_CUSTKEY", ObjectKind::kIndex, 170);
  add("I_O_ORDERDATE", ObjectKind::kIndex, 165);
  add("PARTSUPP_PKEY", ObjectKind::kIndex, 130);
  add("PART_PKEY", ObjectKind::kIndex, 28);
  add("CUSTOMER_PKEY", ObjectKind::kIndex, 24);
  add("I_C_NATIONKEY", ObjectKind::kIndex, 22);
  add("SUPPLIER_PKEY", ObjectKind::kIndex, 2);
  // Temporary tablespace (1).
  add("TEMP SPACE", ObjectKind::kTempSpace, 1280);
  return c;
}

Catalog Catalog::TpcC(double scale) {
  LDB_CHECK_GT(scale, 0.0);
  Catalog c;
  auto add = [&](const char* name, ObjectKind kind, double mib) {
    c.Add(DbObject{name, kind, Scaled(mib, scale)});
  };
  // Tables (9), sized after a 90-warehouse TPC-C database.
  add("STOCK", ObjectKind::kTable, 2900);
  add("ORDER_LINE", ObjectKind::kTable, 1950);
  add("CUSTOMER", ObjectKind::kTable, 1700);
  add("HISTORY", ObjectKind::kTable, 450);
  add("ORDERS", ObjectKind::kTable, 350);
  add("NEW_ORDER", ObjectKind::kTable, 100);
  add("ITEM", ObjectKind::kTable, 80);
  add("DISTRICT", ObjectKind::kTable, 2);
  add("WAREHOUSE", ObjectKind::kTable, 1);
  // Indexes (10).
  add("PK_STOCK", ObjectKind::kIndex, 340);
  add("PK_ORDER_LINE", ObjectKind::kIndex, 440);
  add("PK_CUSTOMER", ObjectKind::kIndex, 180);
  add("I_CUSTOMER", ObjectKind::kIndex, 160);
  add("PK_ORDERS", ObjectKind::kIndex, 75);
  add("I_ORDERS", ObjectKind::kIndex, 70);
  add("PK_NEW_ORDER", ObjectKind::kIndex, 25);
  add("PK_ITEM", ObjectKind::kIndex, 10);
  add("PK_DISTRICT", ObjectKind::kIndex, 1);
  add("PK_WAREHOUSE", ObjectKind::kIndex, 1);
  // Transaction log (1).
  add("XactionLOG", ObjectKind::kLog, 280);
  return c;
}

Catalog Catalog::Merge(const Catalog& a, const Catalog& b,
                       const std::string& prefix_a,
                       const std::string& prefix_b) {
  Catalog merged;
  for (const DbObject& o : a.objects_) {
    DbObject copy = o;
    if (!prefix_a.empty()) copy.name = prefix_a + copy.name;
    merged.Add(std::move(copy));
  }
  for (const DbObject& o : b.objects_) {
    DbObject copy = o;
    if (!prefix_b.empty()) copy.name = prefix_b + copy.name;
    merged.Add(std::move(copy));
  }
  return merged;
}

Result<ObjectId> Catalog::Find(const std::string& name) const {
  for (size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].name == name) return static_cast<ObjectId>(i);
  }
  return Status::NotFound(StrFormat("no object named %s", name.c_str()));
}

std::vector<int64_t> Catalog::sizes() const {
  std::vector<int64_t> out;
  out.reserve(objects_.size());
  for (const DbObject& o : objects_) out.push_back(o.size_bytes);
  return out;
}

int64_t Catalog::total_bytes() const {
  int64_t total = 0;
  for (const DbObject& o : objects_) total += o.size_bytes;
  return total;
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(objects_.size());
  for (const DbObject& o : objects_) out.push_back(o.name);
  return out;
}

ObjectId Catalog::Add(DbObject object) {
  LDB_CHECK(!object.name.empty());
  LDB_CHECK_GT(object.size_bytes, 0);
  objects_.push_back(std::move(object));
  return static_cast<ObjectId>(objects_.size() - 1);
}

}  // namespace ldb
