#include "workload/estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/check.h"

namespace ldb {

namespace {

/// Per-object accumulators gathered from the specs.
struct ObjectAcc {
  double read_requests = 0;
  double write_requests = 0;
  double read_bytes = 0;
  double write_bytes = 0;
  double runs = 0;  ///< estimated count of sequential runs
  /// coactive[k]: requests of this object issued in steps where object k
  /// is also active.
  std::vector<double> coactive;
};

/// Requests a stream contributes.
double StreamRequests(const StreamSpec& s) {
  return std::ceil(static_cast<double>(s.bytes) /
                   static_cast<double>(s.request_bytes));
}

/// Accumulates one profile, weighted by `weight` executions.
void AccumulateProfile(const QueryProfile& profile, double weight,
                       std::vector<ObjectAcc>* acc) {
  for (const QueryStep& step : profile.steps) {
    for (const StreamSpec& s : step.streams) {
      ObjectAcc& a = (*acc)[static_cast<size_t>(s.object)];
      const double requests = StreamRequests(s) * weight;
      const double bytes = static_cast<double>(s.bytes) * weight;
      a.read_requests += requests * (1.0 - s.write_fraction);
      a.write_requests += requests * s.write_fraction;
      a.read_bytes += bytes * (1.0 - s.write_fraction);
      a.write_bytes += bytes * s.write_fraction;
      // Random streams jump on every request; sequential streams are one
      // run per execution; append streams continue a shared cursor across
      // executions, forming a single long run.
      switch (s.pattern) {
        case AccessPattern::kRandom:
          a.runs += requests;
          break;
        case AccessPattern::kSequential:
          a.runs += weight;
          break;
        case AccessPattern::kAppend:
          break;  // one run overall; max(1, runs) below
      }
      // Step co-membership: a stream's requests are co-active with every
      // other object in the same (paced) step.
      for (const StreamSpec& other : step.streams) {
        if (other.object == s.object) continue;
        a.coactive[static_cast<size_t>(other.object)] += requests;
      }
    }
  }
}

}  // namespace

Result<WorkloadSet> EstimateWorkloads(const Catalog& catalog,
                                      const OlapSpec* olap,
                                      const OltpSpec* oltp,
                                      EstimatorOptions options) {
  if (olap == nullptr && oltp == nullptr) {
    return Status::InvalidArgument("no workload spec given");
  }
  if (options.nominal_bytes_per_second <= 0) {
    return Status::InvalidArgument("nominal throughput must be positive");
  }
  const int n = catalog.num_objects();
  std::vector<ObjectAcc> acc(static_cast<size_t>(n));
  for (ObjectAcc& a : acc) a.coactive.assign(static_cast<size_t>(n), 0.0);

  int concurrency = 1;
  if (olap != nullptr) {
    if (olap->queries.empty()) {
      return Status::InvalidArgument("OLAP spec has no queries");
    }
    concurrency = std::max(concurrency, olap->concurrency);
    for (const QueryProfile& q : olap->queries) {
      for (const QueryStep& step : q.steps) {
        for (const StreamSpec& s : step.streams) {
          if (s.object < 0 || s.object >= n) {
            return Status::InvalidArgument("spec references unknown object");
          }
        }
      }
      AccumulateProfile(q, 1.0, &acc);
    }
  }
  if (oltp != nullptr) {
    // OLTP terminals run transactions back to back; weight the profile by
    // a nominal transaction count comparable to the OLAP volume (only
    // relative rates matter).
    const double weight = 1000.0 * oltp->terminals;
    concurrency = std::max(concurrency, oltp->terminals);
    for (const QueryStep& step : oltp->transaction.steps) {
      for (const StreamSpec& s : step.streams) {
        if (s.object < 0 || s.object >= n) {
          return Status::InvalidArgument("spec references unknown object");
        }
      }
    }
    AccumulateProfile(oltp->transaction, weight, &acc);
  }

  // Nominal duration converts volumes to rates.
  double total_bytes = 0;
  for (const ObjectAcc& a : acc) total_bytes += a.read_bytes + a.write_bytes;
  if (total_bytes <= 0) {
    return Status::InvalidArgument("specs generate no I/O");
  }
  const double duration = total_bytes / options.nominal_bytes_per_second;

  WorkloadSet out(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ObjectAcc& a = acc[static_cast<size_t>(i)];
    WorkloadDesc& w = out[static_cast<size_t>(i)];
    w.overlap.assign(static_cast<size_t>(n), 0.0);
    const double requests = a.read_requests + a.write_requests;
    if (requests <= 0) continue;
    w.read_rate = a.read_requests / duration;
    w.write_rate = a.write_requests / duration;
    w.read_size = a.read_requests > 0 ? a.read_bytes / a.read_requests : 0;
    w.write_size =
        a.write_requests > 0 ? a.write_bytes / a.write_requests : 0;
    w.run_count = std::max(1.0, requests / std::max(1.0, a.runs));

    // Duty cycle of object k: its share of total volume, the probability a
    // concurrently running query is touching it at a random instant.
    for (int k = 0; k < n; ++k) {
      if (k == i) {
        // Self-overlap: expected number of *other* concurrent executions
        // on this object.
        const double duty = (a.read_bytes + a.write_bytes) / total_bytes;
        w.overlap[static_cast<size_t>(k)] =
            std::max(0.0, (concurrency - 1) * duty);
        continue;
      }
      const ObjectAcc& b = acc[static_cast<size_t>(k)];
      const double intra = a.coactive[static_cast<size_t>(k)] / requests;
      double inter = 0.0;
      if (concurrency > 1) {
        const double duty_k = (b.read_bytes + b.write_bytes) / total_bytes;
        inter = 1.0 - std::exp(-(concurrency - 1) * duty_k);
      }
      w.overlap[static_cast<size_t>(k)] =
          std::min(1.0, intra + (1.0 - intra) * inter);
    }
  }

  for (int i = 0; i < n; ++i) {
    LDB_CHECK(IsValidWorkload(out[static_cast<size_t>(i)],
                              static_cast<size_t>(n),
                              static_cast<size_t>(i)));
  }
  return out;
}

}  // namespace ldb
