#include "workload/spec.h"

#include <utility>

#include "util/random.h"
#include "util/table.h"
#include "workload/tpch.h"

namespace ldb {

Result<OlapSpec> MakeOlapSpec(const Catalog& tpch_catalog, int copies,
                              int concurrency, uint64_t shuffle_seed) {
  if (copies <= 0 || concurrency <= 0) {
    return Status::InvalidArgument("copies and concurrency must be positive");
  }
  auto templates = TpchQueryProfiles(tpch_catalog);
  if (!templates.ok()) return templates.status();

  OlapSpec spec;
  spec.name = StrFormat("OLAP%d-%d", concurrency,
                        copies * static_cast<int>(templates->size()));
  spec.concurrency = concurrency;
  for (int c = 0; c < copies; ++c) {
    for (const QueryProfile& q : *templates) spec.queries.push_back(q);
  }
  Rng rng(shuffle_seed);
  rng.Shuffle(&spec.queries);
  return spec;
}

Result<OltpSpec> MakeOltpSpec(const Catalog& catalog,
                              const std::string& name_prefix, int terminals,
                              double warmup_s) {
  if (terminals <= 0) {
    return Status::InvalidArgument("terminals must be positive");
  }
  auto txn = TpccTransactionProfile(catalog, name_prefix);
  if (!txn.ok()) return txn.status();
  OltpSpec spec;
  spec.name = "OLTP";
  spec.transaction = std::move(txn).value();
  spec.terminals = terminals;
  spec.warmup_s = warmup_s;
  return spec;
}

}  // namespace ldb
