#ifndef LAYOUTDB_WORKLOAD_CATALOG_H_
#define LAYOUTDB_WORKLOAD_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_request.h"
#include "util/status.h"

namespace ldb {

/// Kinds of database objects the advisor lays out.
enum class ObjectKind { kTable, kIndex, kTempSpace, kLog };

const char* ObjectKindName(ObjectKind kind);

/// One database object: a table, index, temporary tablespace, or log.
struct DbObject {
  std::string name;
  ObjectKind kind = ObjectKind::kTable;
  int64_t size_bytes = 0;
};

/// A database catalog: the set of objects to be laid out. Mirrors the
/// paper's Figure 9 databases — a scale-factor-5 TPC-H database (8 tables,
/// 11 indexes, 1 temp space; ~9.4 GB) and a scale-factor-90 TPC-C database
/// (9 tables, 10 indexes, 1 log; ~9.1 GB).
class Catalog {
 public:
  /// TPC-H SF5-like catalog. `scale` scales all object sizes (1.0 = paper
  /// scale); benchmarks use smaller scales for fast simulation.
  static Catalog TpcH(double scale = 1.0);

  /// TPC-C SF90-like catalog.
  static Catalog TpcC(double scale = 1.0);

  /// Concatenates two catalogs (the consolidation scenario, Section 6.3).
  /// Object names are prefixed with `prefix_a`/`prefix_b` when non-empty.
  static Catalog Merge(const Catalog& a, const Catalog& b,
                       const std::string& prefix_a = "",
                       const std::string& prefix_b = "");

  int num_objects() const { return static_cast<int>(objects_.size()); }
  const DbObject& object(ObjectId i) const {
    return objects_[static_cast<size_t>(i)];
  }
  const std::vector<DbObject>& objects() const { return objects_; }

  /// Index of the object named `name`, or error if absent.
  Result<ObjectId> Find(const std::string& name) const;

  /// All object sizes, indexed by ObjectId.
  std::vector<int64_t> sizes() const;

  /// Sum of all object sizes.
  int64_t total_bytes() const;

  /// Object names, indexed by ObjectId (for report printing).
  std::vector<std::string> names() const;

  /// Appends an object and returns its id.
  ObjectId Add(DbObject object);

 private:
  std::vector<DbObject> objects_;
};

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_CATALOG_H_
