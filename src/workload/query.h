#ifndef LAYOUTDB_WORKLOAD_QUERY_H_
#define LAYOUTDB_WORKLOAD_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_request.h"
#include "util/units.h"

namespace ldb {

/// How a stream walks its object.
enum class AccessPattern {
  kSequential,  ///< consecutive requests from a random aligned start
  kRandom,      ///< independent uniform aligned offsets
  kAppend,      ///< continues the object's global append cursor (logs, temp
                ///< spills); wraps at the end of the object
};

/// One I/O stream within a query step: `bytes` of the object accessed in
/// `request_bytes` units with the given pattern.
struct StreamSpec {
  ObjectId object = kNoObject;
  int64_t bytes = 0;
  int64_t request_bytes = 256 * kKiB;
  AccessPattern pattern = AccessPattern::kSequential;
  double write_fraction = 0.0;  ///< probability each request is a write
};

/// A step accesses its streams concurrently and completes when all finish
/// — e.g. a join reading two tables, or a scan spilling to temp space.
///
/// Execution is *paced*: the step is one closed loop with up to `depth`
/// outstanding requests — at most one per stream — always advancing the
/// stream that is least complete. All streams therefore progress
/// proportionally and finish together, the way join operators consume
/// their inputs, which sustains the temporal overlap between co-accessed
/// objects that the paper's workload model describes with O_i[k]. Each
/// stream itself is a synchronous request chain, like a scan thread: more
/// targets never deepen a single scan's pipeline.
struct QueryStep {
  std::vector<StreamSpec> streams;
  int depth = 4;  ///< outstanding requests across the step (1 per stream)
};

/// A query (or OLTP transaction) profile: steps execute in order.
///
/// Profiles describe the *post-buffer-pool* block I/O a query generates:
/// objects that fit in the database buffer cache simply contribute little
/// or no volume. This is the level at which the paper's advisor sees the
/// workload, so no separate cache simulation is needed.
struct QueryProfile {
  std::string name;
  std::vector<QueryStep> steps;

  /// Total bytes transferred by the profile.
  int64_t TotalBytes() const {
    int64_t total = 0;
    for (const QueryStep& s : steps) {
      for (const StreamSpec& st : s.streams) total += st.bytes;
    }
    return total;
  }

  /// Total requests issued by the profile.
  int64_t TotalRequests() const {
    int64_t total = 0;
    for (const QueryStep& s : steps) {
      for (const StreamSpec& st : s.streams) {
        total += (st.bytes + st.request_bytes - 1) / st.request_bytes;
      }
    }
    return total;
  }
};

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_QUERY_H_
