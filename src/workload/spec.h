#ifndef LAYOUTDB_WORKLOAD_SPEC_H_
#define LAYOUTDB_WORKLOAD_SPEC_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "workload/catalog.h"
#include "workload/query.h"

namespace ldb {

/// An OLAP workload: a sequence of queries executed with a fixed
/// multiprogramming level (paper Figure 10). With concurrency k, k queries
/// are active at all times; whenever one finishes the next in sequence
/// starts.
struct OlapSpec {
  std::string name;
  std::vector<QueryProfile> queries;
  int concurrency = 1;
};

/// An OLTP workload: `terminals` simulated clients repeatedly executing
/// the transaction profile with no think time (paper Section 6.1).
struct OltpSpec {
  std::string name;
  QueryProfile transaction;
  int terminals = 9;
  double warmup_s = 0.0;  ///< transactions before this are not counted
  /// Non-I/O time per transaction (CPU, locking, commit processing).
  /// Terminals wait this long between transactions, which keeps closed-loop
  /// OLTP from trivially saturating the disks — matching the modest tpmC
  /// levels of the paper's testbed.
  double txn_overhead_s = 1.2;
};

/// Builds the paper's OLAP workloads over a TPC-H catalog:
///  * OLAP1-21: copies=1, concurrency=1 (21 queries, sequential)
///  * OLAP1-63: copies=3, concurrency=1
///  * OLAP8-63: copies=3, concurrency=8
/// The query sequence is a random permutation of `copies` repetitions of
/// the 21 profiles, determined by `shuffle_seed`.
Result<OlapSpec> MakeOlapSpec(const Catalog& tpch_catalog, int copies,
                              int concurrency, uint64_t shuffle_seed);

/// Builds the paper's OLTP workload over a TPC-C catalog (optionally with
/// prefixed names from a merged catalog).
Result<OltpSpec> MakeOltpSpec(const Catalog& catalog,
                              const std::string& name_prefix = "",
                              int terminals = 9, double warmup_s = 0.0);

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_SPEC_H_
