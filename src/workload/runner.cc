#include "workload/runner.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "io/backend.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

/// Execution state of one stream within the current step of a query.
struct StreamState {
  StreamSpec spec;
  int64_t request_bytes = 0;  ///< spec request size clamped to object size
  int64_t total_requests = 0;
  int64_t issued = 0;
  int64_t completed = 0;
  int64_t next_offset = 0;  ///< sequential cursor
};

/// Execution state of one query (or OLTP transaction) instance.
struct QueryRun {
  const QueryProfile* profile = nullptr;
  size_t next_step = 0;
  std::vector<StreamState> streams;  ///< current step's streams
  int64_t step_total = 0;            ///< requests in the current step
  int64_t step_completed = 0;
  std::function<void(QueryRun*)> on_done;
};

}  // namespace

WorkloadRunner::WorkloadRunner(StorageSystem* system,
                               const StripedVolumeManager* volumes,
                               uint64_t seed)
    : system_(system),
      owned_router_(std::make_unique<PassthroughRouter>(volumes)),
      router_(owned_router_.get()),
      rng_(seed) {
  LDB_CHECK(system_ != nullptr);
  LDB_CHECK(volumes != nullptr);
  append_cursor_.assign(static_cast<size_t>(router_->num_objects()), 0);
}

WorkloadRunner::WorkloadRunner(StorageSystem* system, VolumeRouter* router,
                               uint64_t seed)
    : system_(system), router_(router), rng_(seed) {
  LDB_CHECK(system_ != nullptr);
  LDB_CHECK(router_ != nullptr);
  append_cursor_.assign(static_cast<size_t>(router_->num_objects()), 0);
}

Result<RunResult> WorkloadRunner::RunOlap(const OlapSpec& olap) {
  return Run(&olap, nullptr, 0.0);
}

Result<RunResult> WorkloadRunner::RunOltp(const OltpSpec& oltp,
                                          double duration_s) {
  if (duration_s <= 0.0) {
    return Status::InvalidArgument("duration must be positive");
  }
  return Run(nullptr, &oltp, duration_s);
}

Result<RunResult> WorkloadRunner::RunMixed(const OlapSpec& olap,
                                           const OltpSpec& oltp) {
  return Run(&olap, &oltp, 0.0);
}

Result<RunResult> WorkloadRunner::Run(const OlapSpec* olap,
                                      const OltpSpec* oltp,
                                      double duration_s) {
  LDB_CHECK(olap != nullptr || oltp != nullptr);

  // Validate workload object references against the volume manager.
  auto validate_profile = [&](const QueryProfile& q) -> Status {
    if (q.steps.empty()) {
      return Status::InvalidArgument(
          StrFormat("query %s has no steps", q.name.c_str()));
    }
    for (const QueryStep& step : q.steps) {
      if (step.streams.empty() || step.depth <= 0) {
        return Status::InvalidArgument(
            StrFormat("query %s has an empty or depthless step",
                      q.name.c_str()));
      }
      for (const StreamSpec& s : step.streams) {
        if (s.object < 0 || s.object >= router_->num_objects()) {
          return Status::InvalidArgument(
              StrFormat("query %s references unmapped object %d",
                        q.name.c_str(), s.object));
        }
        if (s.bytes <= 0 || s.request_bytes <= 0) {
          return Status::InvalidArgument(
              StrFormat("query %s has a degenerate stream", q.name.c_str()));
        }
      }
    }
    return Status::Ok();
  };
  if (olap != nullptr) {
    if (olap->queries.empty() || olap->concurrency <= 0) {
      return Status::InvalidArgument("OLAP spec needs queries/concurrency");
    }
    for (const QueryProfile& q : olap->queries) {
      LDB_RETURN_IF_ERROR(validate_profile(q));
    }
  }
  if (oltp != nullptr) {
    if (oltp->terminals <= 0) {
      return Status::InvalidArgument("OLTP spec needs terminals");
    }
    LDB_RETURN_IF_ERROR(validate_profile(oltp->transaction));
  }

  // Start from quiescent devices so measurements reflect this run only.
  for (int j = 0; j < system_->num_targets(); ++j) system_->target(j).Reset();

  const double start_time = system_->Now();
  uint64_t requests_completed = 0;

  // ---- Core stream machinery (mutually recursive via std::function). ----
  std::function<void(QueryRun*, size_t)> issue_request;
  std::function<void(QueryRun*, size_t)> on_request_done;
  std::function<void(QueryRun*)> start_step;

  std::vector<TargetChunk> chunks;  // scratch, reused across submissions
  issue_request = [&](QueryRun* q, size_t si) {
    StreamState& st = q->streams[si];
    const int64_t osize = router_->object_size(st.spec.object);
    const int64_t req = st.request_bytes;
    int64_t offset = 0;
    switch (st.spec.pattern) {
      case AccessPattern::kSequential:
        if (st.next_offset + req > osize) st.next_offset = 0;
        offset = st.next_offset;
        st.next_offset += req;
        break;
      case AccessPattern::kRandom: {
        const int64_t slots = (osize - req) / req;
        offset = slots > 0 ? rng_.UniformInt(int64_t{0}, slots) * req : 0;
        break;
      }
      case AccessPattern::kAppend: {
        int64_t& cursor = append_cursor_[static_cast<size_t>(st.spec.object)];
        if (cursor + req > osize) cursor = 0;
        offset = cursor;
        cursor += req;
        break;
      }
    }
    const bool is_write = st.spec.write_fraction >= 1.0 ||
                          (st.spec.write_fraction > 0.0 &&
                           rng_.Bernoulli(st.spec.write_fraction));
    ++st.issued;

    chunks.clear();
    router_->Route(st.spec.object, offset, req, is_write, &chunks);
    auto pending = std::make_shared<int>(static_cast<int>(chunks.size()));
    // Object-level (pre-striping) event, reported when the last chunk of
    // the request completes.
    std::shared_ptr<IoEvent> logical_ev;
    if (logical_observer_) {
      logical_ev = std::make_shared<IoEvent>();
      logical_ev->submit_time = system_->Now();
      logical_ev->seq = next_logical_seq_++;
      logical_ev->target = -1;
      logical_ev->object = st.spec.object;
      logical_ev->offset = offset;
      logical_ev->logical_offset = offset;
      logical_ev->size = req;
      logical_ev->is_write = is_write;
    }
    int64_t logical = offset;
    for (const TargetChunk& c : chunks) {
      TargetRequest tr;
      tr.offset = c.offset;
      tr.size = c.size;
      tr.is_write = is_write;
      tr.object = st.spec.object;
      tr.logical_offset = logical;
      logical += c.size;
      auto completion = [&, q, si, pending, logical_ev](double when) {
        if (--*pending == 0) {
          if (logical_ev) {
            logical_ev->complete_time = when;
            logical_observer_(*logical_ev);
          }
          on_request_done(q, si);
        }
      };
      if (backend_ != nullptr) {
        backend_->Submit(c.target, tr, nullptr,
                         [completion](double when, const Status& /*status*/) {
                           completion(when);
                         });
      } else {
        system_->Submit(c.target, tr, completion);
      }
    }
  };

  // Paced issuing: advance the least-complete *idle* stream of the current
  // step. Each stream is a synchronous request chain (at most one request
  // in flight, like a scan thread issuing dependent reads), so the step's
  // depth only buys cross-stream parallelism, never deeper pipelining of a
  // single scan. Returns false if no stream is eligible right now.
  auto issue_next_in_step = [&](QueryRun* q) {
    size_t best = q->streams.size();
    double best_fraction = 2.0;
    for (size_t si = 0; si < q->streams.size(); ++si) {
      const StreamState& st = q->streams[si];
      if (st.issued >= st.total_requests) continue;
      if (st.issued > st.completed) continue;  // already in flight
      const double fraction = static_cast<double>(st.issued) /
                              static_cast<double>(st.total_requests);
      if (fraction < best_fraction) {
        best_fraction = fraction;
        best = si;
      }
    }
    if (best == q->streams.size()) return false;
    issue_request(q, best);
    return true;
  };

  on_request_done = [&](QueryRun* q, size_t si) {
    ++requests_completed;
    StreamState& st = q->streams[si];
    ++st.completed;
    ++q->step_completed;
    if (q->step_completed == q->step_total) {
      start_step(q);
    } else {
      issue_next_in_step(q);
    }
  };

  start_step = [&](QueryRun* q) {
    if (q->next_step >= q->profile->steps.size()) {
      q->on_done(q);
      return;
    }
    const QueryStep& step = q->profile->steps[q->next_step++];
    q->streams.clear();
    q->step_total = 0;
    q->step_completed = 0;
    for (const StreamSpec& spec : step.streams) {
      StreamState st;
      st.spec = spec;
      const int64_t osize = router_->object_size(spec.object);
      st.request_bytes = std::min(spec.request_bytes, osize);
      st.total_requests =
          (spec.bytes + st.request_bytes - 1) / st.request_bytes;
      q->step_total += st.total_requests;
      // Sequential streams start at a random aligned position.
      const int64_t slots = (osize - st.request_bytes) / st.request_bytes;
      st.next_offset =
          slots > 0 ? rng_.UniformInt(int64_t{0}, slots) * st.request_bytes
                    : 0;
      q->streams.push_back(st);
    }
    // Prime the step's pipeline: up to `depth` requests, at most one per
    // stream.
    const int64_t prime = std::min<int64_t>(step.depth, q->step_total);
    for (int64_t d = 0; d < prime; ++d) {
      if (!issue_next_in_step(q)) break;
    }
  };

  // ---- OLAP driver. ----
  std::deque<std::unique_ptr<QueryRun>> olap_runs;
  size_t next_query = 0;
  int olap_active = 0;
  uint64_t olap_completed = 0;
  double olap_done_time = -1.0;
  bool oltp_stop = false;
  bool counting = false;       // OLTP measurement window open
  double measure_start = 0.0;  // set below
  double measure_end = -1.0;
  uint64_t counted_txns = 0;

  std::function<void()> olap_start_next;
  std::function<void(QueryRun*)> olap_on_done = [&](QueryRun*) {
    --olap_active;
    ++olap_completed;
    if (olap_completed == olap->queries.size()) {
      olap_done_time = system_->Now();
      oltp_stop = true;  // consolidation: OLTP runs until OLAP finishes
      if (counting) {
        counting = false;
        measure_end = olap_done_time;
      }
      if (on_finished_) on_finished_();
    } else {
      olap_start_next();
    }
  };
  olap_start_next = [&]() {
    while (olap != nullptr && olap_active < olap->concurrency &&
           next_query < olap->queries.size()) {
      auto run = std::make_unique<QueryRun>();
      run->profile = &olap->queries[next_query++];
      run->on_done = olap_on_done;
      ++olap_active;
      QueryRun* raw = run.get();
      olap_runs.push_back(std::move(run));
      start_step(raw);
    }
  };

  // ---- OLTP driver. ----
  std::vector<std::unique_ptr<QueryRun>> terminals;
  std::function<void(QueryRun*)> oltp_on_done = [&](QueryRun* q) {
    if (counting) ++counted_txns;
    if (!oltp_stop) {
      // The next transaction starts after the non-I/O portion of the
      // transaction (CPU, locking, commit processing).
      system_->queue().ScheduleAfter(oltp->txn_overhead_s, [&, q]() {
        if (oltp_stop) return;
        q->next_step = 0;
        start_step(q);
      });
    }
  };

  // ---- Launch. ----
  if (oltp != nullptr) {
    measure_start = start_time + oltp->warmup_s;
    if (oltp->warmup_s <= 0.0) {
      counting = true;
    } else {
      system_->queue().ScheduleAt(measure_start, [&]() {
        if (measure_end < 0.0) counting = true;
      });
    }
    for (int t = 0; t < oltp->terminals; ++t) {
      auto run = std::make_unique<QueryRun>();
      run->profile = &oltp->transaction;
      run->on_done = oltp_on_done;
      QueryRun* raw = run.get();
      terminals.push_back(std::move(run));
      start_step(raw);
    }
    if (olap == nullptr) {
      // Pure OLTP: stop after the requested duration.
      system_->queue().ScheduleAt(start_time + duration_s, [&]() {
        oltp_stop = true;
        if (counting) {
          counting = false;
          measure_end = system_->Now();
        }
        if (on_finished_) on_finished_();
      });
    }
  }
  olap_start_next();

  system_->queue().RunUntilIdle();

  // ---- Collect results. ----
  RunResult result;
  if (olap != nullptr) {
    LDB_CHECK_GE(olap_done_time, 0.0);
    result.elapsed_seconds = olap_done_time - start_time;
    result.olap_queries_completed = olap_completed;
  } else {
    result.elapsed_seconds = duration_s;
  }
  if (oltp != nullptr) {
    result.oltp_transactions = counted_txns;
    if (measure_end < 0.0) measure_end = system_->Now();
    const double window = measure_end - measure_start;
    if (window > 0.0) {
      result.tpm = static_cast<double>(counted_txns) / (window / 60.0);
    }
  }
  result.total_requests = requests_completed;
  result.faults = system_->TotalFaultStats();
  const double elapsed = std::max(result.elapsed_seconds, 1e-9);
  for (int j = 0; j < system_->num_targets(); ++j) {
    result.utilization.push_back(system_->MeasuredUtilization(j, elapsed));
  }
  return result;
}

}  // namespace ldb
