#include "workload/tpch.h"

#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

/// Request sizes used by the profile generator.
// Request sizes used by the profile generator. They reflect what a
// period DBMS with OS readahead issues to storage: ~64 KiB effective
// sequential reads (8 KiB page reads coalesced by readahead, one LVM
// stripe), and 8 KiB point probes. Each stream is a synchronous request
// chain, so a single scan runs at roughly one disk's bandwidth no matter
// how many targets the object is striped across — as on the paper's
// testbed.
constexpr int64_t kScanRequest = 64 * kKiB;    // table scans
constexpr int64_t kIndexRequest = 64 * kKiB;   // index range scans
constexpr int64_t kProbeRequest = 8 * kKiB;    // index/heap probes
// Temp spills are written and read back in larger buffered units (sort
// and hash operators do 128 KiB transfers).
constexpr int64_t kTempRequest = 128 * kKiB;

/// Helper that resolves names against the catalog and assembles profiles,
/// accumulating the first lookup error.
class ProfileBuilder {
 public:
  ProfileBuilder(const Catalog& catalog, std::string prefix)
      : catalog_(catalog), prefix_(std::move(prefix)) {}

  /// Starts a new profile.
  void Begin(const char* name) {
    profile_ = QueryProfile{};
    profile_.name = name;
  }

  /// Starts a new (initially empty) step in the current profile with the
  /// given paced-loop depth.
  void Step(int depth = 4) {
    profile_.steps.emplace_back();
    profile_.steps.back().depth = depth;
  }

  /// Adds a sequential scan over `fraction` of the named table.
  void Scan(const char* object, double fraction) {
    AddStream(object, fraction, kScanRequest, AccessPattern::kSequential,
              /*write_fraction=*/0.0);
  }

  /// Adds a sequential range scan over `fraction` of the named index.
  void IndexScan(const char* object, double fraction) {
    AddStream(object, fraction, kIndexRequest, AccessPattern::kSequential,
              0.0);
  }

  /// Adds random point probes covering `fraction` of the named object.
  void Probe(const char* object, double fraction) {
    AddStream(object, fraction, kProbeRequest, AccessPattern::kRandom, 0.0);
  }

  /// Adds a temp-space spill (append writes) of `fraction` of TEMP SPACE.
  void TempWrite(double fraction) {
    AddStream("TEMP SPACE", fraction, kTempRequest, AccessPattern::kAppend,
              1.0);
  }

  /// Adds a sequential read-back of `fraction` of TEMP SPACE.
  void TempRead(double fraction) {
    AddStream("TEMP SPACE", fraction, kTempRequest,
              AccessPattern::kSequential, 0.0);
  }

  /// Finishes the current profile and appends it to the output.
  void End() {
    // Drop empty steps defensively (a profile must make progress).
    LDB_CHECK(!profile_.steps.empty());
    profiles_.push_back(std::move(profile_));
  }

  Result<std::vector<QueryProfile>> Take() {
    if (!status_.ok()) return status_;
    return std::move(profiles_);
  }

  /// Adds a stream transferring `fraction` of the named object.
  void AddStream(const char* object, double fraction, int64_t request_bytes,
                 AccessPattern pattern, double write_fraction) {
    auto id = Resolve(object);
    if (!id.ok()) return;
    const int64_t size = catalog_.object(*id).size_bytes;
    const int64_t bytes = std::max<int64_t>(
        request_bytes,
        static_cast<int64_t>(fraction * static_cast<double>(size)));
    AddStreamBytes(*id, bytes, request_bytes, pattern, write_fraction);
  }

  /// Adds a stream of exactly `count` requests (OLTP point accesses).
  void Requests(const char* object, int64_t count, int64_t request_bytes,
                AccessPattern pattern, double write_fraction) {
    auto id = Resolve(object);
    if (!id.ok()) return;
    AddStreamBytes(*id, count * request_bytes, request_bytes, pattern,
                   write_fraction);
  }

 private:
  Result<ObjectId> Resolve(const char* object) {
    if (!status_.ok()) return status_;
    auto id = catalog_.Find(prefix_ + object);
    if (!id.ok()) status_ = id.status();
    return id;
  }

  void AddStreamBytes(ObjectId id, int64_t bytes, int64_t request_bytes,
                      AccessPattern pattern, double write_fraction) {
    LDB_CHECK(!profile_.steps.empty());
    StreamSpec s;
    s.object = id;
    s.bytes = bytes;
    s.request_bytes = request_bytes;
    s.pattern = pattern;
    s.write_fraction = write_fraction;
    profile_.steps.back().streams.push_back(s);
  }

  const Catalog& catalog_;
  std::string prefix_;
  Status status_;
  QueryProfile profile_;
  std::vector<QueryProfile> profiles_;
};

}  // namespace

Result<std::vector<QueryProfile>> TpchQueryProfiles(const Catalog& catalog) {
  ProfileBuilder b(catalog, "");

  // Q1: pricing summary — full LINEITEM scan.
  b.Begin("Q1");
  b.Step();
  b.Scan("LINEITEM", 1.0);
  b.End();

  // Q2: minimum-cost supplier — PART/PARTSUPP/SUPPLIER join.
  b.Begin("Q2");
  b.Step();
  b.Scan("PART", 0.5);
  b.Scan("PARTSUPP", 0.5);
  b.Scan("SUPPLIER", 1.0);
  b.End();

  // Q3: shipping priority — LINEITEM/ORDERS/CUSTOMER join with a sort spill.
  b.Begin("Q3");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("ORDERS", 0.9);
  b.Scan("CUSTOMER", 0.8);
  b.TempWrite(0.20);
  b.Step();
  b.TempRead(0.20);
  b.End();

  // Q4: order priority checking — ORDERS scan with an index semi-join.
  b.Begin("Q4");
  b.Step();
  b.Scan("ORDERS", 1.0);
  b.IndexScan("I_L_ORDERKEY", 0.7);
  b.Probe("ORDERS_PKEY", 0.15);
  b.End();

  // Q5: local supplier volume.
  b.Begin("Q5");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("ORDERS", 0.8);
  b.Scan("CUSTOMER", 0.6);
  b.Scan("SUPPLIER", 1.0);
  b.End();

  // Q6: forecasting revenue change — full LINEITEM scan.
  b.Begin("Q6");
  b.Step();
  b.Scan("LINEITEM", 1.0);
  b.End();

  // Q7: volume shipping.
  b.Begin("Q7");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("ORDERS", 0.7);
  b.Scan("CUSTOMER", 0.5);
  b.TempWrite(0.14);
  b.Step();
  b.TempRead(0.14);
  b.End();

  // Q8: national market share.
  b.Begin("Q8");
  b.Step();
  b.Scan("LINEITEM", 0.8);
  b.Scan("ORDERS", 0.7);
  b.Scan("PART", 0.6);
  b.Scan("CUSTOMER", 0.4);
  b.End();

  // (Q9 excluded — excessive runtime on the paper's system, Section 6.1.)

  // Q10: returned item reporting.
  b.Begin("Q10");
  b.Step();
  b.Scan("LINEITEM", 0.7);
  b.Scan("ORDERS", 0.9);
  b.Scan("CUSTOMER", 0.9);
  b.TempWrite(0.16);
  b.Step();
  b.TempRead(0.16);
  b.End();

  // Q11: important stock identification.
  b.Begin("Q11");
  b.Step();
  b.Scan("PARTSUPP", 1.0);
  b.Scan("SUPPLIER", 1.0);
  b.TempWrite(0.05);
  b.Step();
  b.TempRead(0.05);
  b.End();

  // Q12: shipping modes (orderkey merge join uses the lineitem index).
  b.Begin("Q12");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("ORDERS", 0.8);
  b.IndexScan("I_L_ORDERKEY", 0.5);
  b.End();

  // Q13: customer distribution (outer join + aggregation spill).
  b.Begin("Q13");
  b.Step();
  b.Scan("ORDERS", 1.0);
  b.Scan("CUSTOMER", 1.0);
  b.TempWrite(0.20);
  b.Step();
  b.TempRead(0.20);
  b.End();

  // Q14: promotion effect.
  b.Begin("Q14");
  b.Step();
  b.Scan("LINEITEM", 0.8);
  b.Scan("PART", 0.7);
  b.End();

  // Q15: top supplier.
  b.Begin("Q15");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("SUPPLIER", 1.0);
  b.TempWrite(0.04);
  b.Step();
  b.TempRead(0.04);
  b.End();

  // Q16: parts/supplier relationship.
  b.Begin("Q16");
  b.Step();
  b.Scan("PARTSUPP", 0.7);
  b.Scan("PART", 0.8);
  b.TempWrite(0.06);
  b.Step();
  b.TempRead(0.06);
  b.End();

  // Q17: small-quantity-order revenue — index-nested-loop into LINEITEM.
  b.Begin("Q17");
  b.Step();
  b.Scan("PART", 0.4);
  b.Step(/*depth=*/1);  // index-nested-loop: dependent point reads
  b.Probe("I_L_ORDERKEY", 0.18);
  b.Probe("LINEITEM", 0.02);
  b.End();

  // Q18: large-volume customer — the paper's temp-heavy query (its
  // intermediate results are what AutoAdmin's cardinality estimates get
  // wrong, Section 6.6).
  b.Begin("Q18");
  b.Step();
  b.Scan("ORDERS", 1.0);
  b.Scan("LINEITEM", 1.0);
  b.IndexScan("I_L_ORDERKEY", 0.5);
  b.TempWrite(0.7);
  b.Step();
  b.TempRead(0.7);
  b.End();

  // Q19: discounted revenue.
  b.Begin("Q19");
  b.Step();
  b.Scan("LINEITEM", 0.8);
  b.Scan("PART", 0.9);
  b.End();

  // Q20: potential part promotion.
  b.Begin("Q20");
  b.Step();
  b.Scan("PARTSUPP", 0.7);
  b.Scan("PART", 0.5);
  b.IndexScan("I_L_SUPPK_PARTK", 0.5);
  b.Step();
  b.Scan("LINEITEM", 0.5);
  b.End();

  // Q21: suppliers who kept orders waiting.
  b.Begin("Q21");
  b.Step();
  b.Scan("LINEITEM", 0.9);
  b.Scan("ORDERS", 0.6);
  b.Scan("SUPPLIER", 1.0);
  b.Step();
  b.IndexScan("I_L_ORDERKEY", 0.5);
  b.Probe("ORDERS_PKEY", 0.2);
  b.End();

  // Q22: global sales opportunity.
  b.Begin("Q22");
  b.Step();
  b.Scan("CUSTOMER", 1.0);
  b.IndexScan("ORDERS_PKEY", 0.6);
  b.End();

  return b.Take();
}

Result<QueryProfile> TpccTransactionProfile(const Catalog& catalog,
                                            const std::string& name_prefix) {
  ProfileBuilder b(catalog, name_prefix);
  // A NewOrder-dominated transaction mix (nine terminals, no think time):
  // stock/customer lookups, stock updates, order-line inserts, then a log
  // force. Request counts are per transaction; offsets are randomized per
  // instance by the runner.
  b.Begin("TPCC-NewOrder");
  // Request counts are the post-buffer-pool I/O of a NewOrder-dominated
  // mix: upper B-tree levels and hot heap pages are cached, dirty pages
  // are coalesced by checkpointing, and order-line inserts pack several
  // rows per page.
  // Step 1: reads — index probes and heap reads (serial within the
  // transaction).
  b.Step(/*depth=*/1);
  b.Requests("PK_STOCK", 2, 8 * kKiB, AccessPattern::kRandom, 0.0);
  b.Requests("STOCK", 6, 8 * kKiB, AccessPattern::kRandom, 0.0);
  b.Requests("PK_CUSTOMER", 1, 8 * kKiB, AccessPattern::kRandom, 0.0);
  b.Requests("CUSTOMER", 1, 8 * kKiB, AccessPattern::kRandom, 0.0);
  // Step 2: updates and inserts.
  b.Step(/*depth=*/1);
  b.Requests("STOCK", 3, 8 * kKiB, AccessPattern::kRandom, 1.0);
  b.Requests("CUSTOMER", 1, 8 * kKiB, AccessPattern::kRandom, 1.0);
  b.Requests("ORDER_LINE", 2, 8 * kKiB, AccessPattern::kAppend, 1.0);
  b.Requests("ORDERS", 1, 8 * kKiB, AccessPattern::kAppend, 1.0);
  b.Requests("HISTORY", 1, 8 * kKiB, AccessPattern::kAppend, 1.0);
  // Step 3: commit — log force.
  b.Step(/*depth=*/1);
  b.Requests("XactionLOG", 1, 16 * kKiB, AccessPattern::kAppend, 1.0);
  b.End();

  auto profiles = b.Take();
  if (!profiles.ok()) return profiles.status();
  return std::move((*profiles)[0]);
}

}  // namespace ldb
