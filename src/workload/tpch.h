#ifndef LAYOUTDB_WORKLOAD_TPCH_H_
#define LAYOUTDB_WORKLOAD_TPCH_H_

#include <vector>

#include "util/status.h"
#include "workload/catalog.h"
#include "workload/query.h"

namespace ldb {

/// Builds I/O profiles for the 21 TPC-H benchmark queries used in the
/// paper's OLAP workloads (Q9 is excluded, as in Section 6.1).
///
/// Each profile encodes the query's dominant storage behaviour — which
/// objects it scans or probes, roughly what fraction of each object hits
/// storage after buffer caching, join-phase concurrency between streams,
/// and temp-space spill volume. The profiles are a documented substitution
/// for running real SQL through PostgreSQL (see DESIGN.md): the advisor
/// only observes the resulting block-I/O statistics.
///
/// \param catalog must be (or start with) Catalog::TpcH objects.
Result<std::vector<QueryProfile>> TpchQueryProfiles(const Catalog& catalog);

/// Builds the TPC-C NewOrder-dominated transaction profile used by the
/// paper's OLTP workload (nine terminals, no think time).
///
/// \param catalog must be (or start with) Catalog::TpcC objects; pass the
///   merged catalog with `name_prefix` set for the consolidation scenario.
Result<QueryProfile> TpccTransactionProfile(const Catalog& catalog,
                                            const std::string& name_prefix = "");

}  // namespace ldb

#endif  // LAYOUTDB_WORKLOAD_TPCH_H_
