#ifndef LAYOUTDB_TRACE_REPLAY_H_
#define LAYOUTDB_TRACE_REPLAY_H_

#include <cstdint>
#include <vector>

#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "trace/trace.h"
#include "util/status.h"

namespace ldb {

/// Outcome of replaying a trace against a candidate layout.
struct ReplayResult {
  double elapsed_seconds = 0.0;   ///< first submit to last completion
  double mean_latency_s = 0.0;    ///< mean request latency
  double p99_latency_s = 0.0;     ///< 99th-percentile request latency
  uint64_t requests = 0;
  std::vector<double> utilization;  ///< measured per-target utilization
};

/// What-if trace replay: re-executes a recorded *object-level* trace (as
/// captured via WorkloadRunner::set_logical_observer) against a storage
/// system under a possibly different layout.
///
/// Requests are submitted open-loop at their recorded submit times
/// (shifted so the trace starts at the system's current clock) and mapped
/// through `volumes`. This evaluates a candidate layout using only a
/// recorded trace — no workload generator needed — complementing the
/// advisor's model-based estimates with a replayed measurement, in the
/// spirit of the trace-driven storage-management tools the paper builds
/// on.
///
/// Open-loop semantics mean the arrival pattern is frozen: a better layout
/// shows up as lower per-request latency (and lower utilization), not as a
/// shorter trace.
///
/// \returns InvalidArgument for an empty trace or one referencing objects
///   the volume manager does not map.
Result<ReplayResult> ReplayTrace(const IoTrace& trace, StorageSystem* system,
                                 const StripedVolumeManager* volumes);

}  // namespace ldb

#endif  // LAYOUTDB_TRACE_REPLAY_H_
