#include "trace/replay.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

Result<ReplayResult> ReplayTrace(const IoTrace& trace, StorageSystem* system,
                                 const StripedVolumeManager* volumes) {
  if (system == nullptr || volumes == nullptr) {
    return Status::InvalidArgument("system and volumes required");
  }
  if (trace.empty()) {
    return Status::InvalidArgument("cannot replay an empty trace");
  }
  for (const IoEvent& ev : trace.events()) {
    if (ev.object < 0 || ev.object >= volumes->num_objects()) {
      return Status::InvalidArgument(
          StrFormat("trace references unmapped object %d", ev.object));
    }
    if (ev.logical_offset < 0 || ev.size <= 0 ||
        ev.logical_offset + ev.size > volumes->object_size(ev.object)) {
      return Status::InvalidArgument(
          StrFormat("trace request outside object %d", ev.object));
    }
  }

  // Start from quiescent devices and shift the trace to the current clock.
  for (int j = 0; j < system->num_targets(); ++j) system->target(j).Reset();
  double min_submit = trace.events().front().submit_time;
  for (const IoEvent& ev : trace.events()) {
    min_submit = std::min(min_submit, ev.submit_time);
  }
  const double base = system->Now();
  const double shift = base - min_submit;

  // Order submissions by recorded issue order.
  std::vector<const IoEvent*> order;
  order.reserve(trace.size());
  for (const IoEvent& ev : trace.events()) order.push_back(&ev);
  std::stable_sort(order.begin(), order.end(),
                   [](const IoEvent* a, const IoEvent* b) {
                     if (a->submit_time != b->submit_time) {
                       return a->submit_time < b->submit_time;
                     }
                     return a->seq < b->seq;
                   });

  auto latencies = std::make_shared<std::vector<double>>();
  latencies->reserve(order.size());
  double last_completion = base;
  auto chunks = std::make_shared<std::vector<TargetChunk>>();

  for (const IoEvent* ev : order) {
    const double submit_at = ev->submit_time + shift;
    system->queue().ScheduleAt(
        submit_at, [system, volumes, ev, submit_at, latencies, chunks,
                    &last_completion]() {
          chunks->clear();
          volumes->Map(ev->object, ev->logical_offset, ev->size,
                       chunks.get());
          auto pending =
              std::make_shared<int>(static_cast<int>(chunks->size()));
          for (const TargetChunk& c : *chunks) {
            TargetRequest tr;
            tr.offset = c.offset;
            tr.size = c.size;
            tr.is_write = ev->is_write;
            tr.object = ev->object;
            tr.logical_offset = ev->logical_offset;
            system->Submit(c.target, tr,
                           [submit_at, pending, latencies,
                            &last_completion](double when) {
                             if (--*pending == 0) {
                               latencies->push_back(when - submit_at);
                               last_completion =
                                   std::max(last_completion, when);
                             }
                           });
          }
        });
  }
  system->queue().RunUntilIdle();

  ReplayResult result;
  result.requests = latencies->size();
  LDB_CHECK_EQ(result.requests, order.size());
  result.elapsed_seconds = last_completion - base;
  double total = 0;
  for (double l : *latencies) total += l;
  result.mean_latency_s = total / static_cast<double>(latencies->size());
  std::sort(latencies->begin(), latencies->end());
  result.p99_latency_s =
      (*latencies)[static_cast<size_t>(0.99 * (latencies->size() - 1))];
  const double elapsed = std::max(result.elapsed_seconds, 1e-9);
  for (int j = 0; j < system->num_targets(); ++j) {
    result.utilization.push_back(system->MeasuredUtilization(j, elapsed));
  }
  return result;
}

}  // namespace ldb
