#ifndef LAYOUTDB_TRACE_ANALYZER_H_
#define LAYOUTDB_TRACE_ANALYZER_H_

#include <cstdint>

#include "model/workload.h"
#include "trace/trace.h"
#include "util/status.h"
#include "util/units.h"

namespace ldb {

/// Options for fitting workload descriptions to a trace.
struct AnalyzerOptions {
  /// A request whose logical offset starts within this many bytes after the
  /// previous request's logical end still counts as continuing a sequential
  /// run (readahead absorbs small skips).
  int64_t sequential_slack_bytes = 16 * kKiB;
  /// Padding added around each request's in-flight interval when computing
  /// temporal overlap: two requests within this window of each other are
  /// considered concurrent.
  double overlap_window_s = 0.05;
  /// Number of interleaved sequential runs tracked per object. Concurrent
  /// queries scanning the same object interleave their requests in the
  /// trace; tracking several open runs (as Rubicon-style analysis does)
  /// recovers each stream's sequentiality instead of reporting run counts
  /// of ~1. Bounded, so very high concurrency still fits lower run counts
  /// — the paper's observation that LINEITEM is "less sequential" under
  /// OLAP8-63 than OLAP1-63.
  int max_open_runs = 8;
  /// When true the fitted overlap matrix is emitted in the sparse CSR form
  /// (SparsifyOverlap with `sparsify` below) — required at fleet scale,
  /// where dense rows are O(N²) across the set.
  bool sparse_overlap = false;
  /// Sparsification policy when `sparse_overlap` is set. The default
  /// (threshold 0, unbounded top_k, dense dropped) keeps every nonzero
  /// neighbor, so the sparse output reproduces the dense fit exactly.
  SparsifyOptions sparsify;
};

/// Rubicon-style trace analysis (paper Section 5.1): fits the Rome workload
/// parameters of Figure 5 — per-object read/write request rates and sizes,
/// mean sequential run counts, and the pairwise temporal-overlap matrix —
/// from an I/O trace.
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Fits workload descriptions for objects 0..num_objects-1.
  ///
  /// Rates are computed over the trace duration. Objects with no requests
  /// get an all-zero description (rate 0, run_count 1).
  ///
  /// \returns InvalidArgument if the trace is empty or references an object
  ///   outside [0, num_objects).
  Result<WorkloadSet> Analyze(const IoTrace& trace, int num_objects) const;

 private:
  AnalyzerOptions options_;
};

}  // namespace ldb

#endif  // LAYOUTDB_TRACE_ANALYZER_H_
