#include "trace/analyzer.h"

#include <algorithm>
#include <vector>

#include "trace/run_tracker.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

/// Per-object view of the trace, in submit order.
struct ObjectStream {
  std::vector<double> submit_times;             // sorted
  std::vector<std::pair<double, double>> busy;  // merged in-flight intervals
  std::vector<std::pair<double, double>> intervals;  // raw padded intervals
  uint64_t reads = 0;
  uint64_t writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  uint64_t runs = 0;
  uint64_t requests = 0;
};

}  // namespace

Result<WorkloadSet> TraceAnalyzer::Analyze(const IoTrace& trace,
                                           int num_objects) const {
  if (trace.empty()) {
    return Status::InvalidArgument("cannot analyze an empty trace");
  }
  if (num_objects <= 0) {
    return Status::InvalidArgument("num_objects must be positive");
  }
  const double duration = trace.Duration();
  LDB_CHECK_GT(duration, 0.0);

  // Sort events by submit time (the trace is stored in completion order).
  std::vector<const IoEvent*> order;
  order.reserve(trace.size());
  for (const IoEvent& ev : trace.events()) {
    if (ev.object < 0 || ev.object >= num_objects) {
      return Status::InvalidArgument(
          StrFormat("trace references unknown object %d", ev.object));
    }
    order.push_back(&ev);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const IoEvent* a, const IoEvent* b) {
                     if (a->submit_time != b->submit_time) {
                       return a->submit_time < b->submit_time;
                     }
                     return a->seq < b->seq;  // exact issue order on ties
                   });

  std::vector<ObjectStream> streams(static_cast<size_t>(num_objects));
  // Sequential-run detection state: per object, up to max_open_runs
  // concurrently-open runs (expected next offset + LRU stamp). Shared with
  // the online monitor via SequentialRunTracker.
  std::vector<SequentialRunTracker> trackers(
      static_cast<size_t>(num_objects),
      SequentialRunTracker(options_.max_open_runs,
                           options_.sequential_slack_bytes));

  for (const IoEvent* ev : order) {
    ObjectStream& s = streams[static_cast<size_t>(ev->object)];
    s.submit_times.push_back(ev->submit_time);
    ++s.requests;
    if (ev->is_write) {
      ++s.writes;
      s.write_bytes += ev->size;
    } else {
      ++s.reads;
      s.read_bytes += ev->size;
    }
    // Run detection on logical (object-relative) addresses: continue any
    // open run, else open a new one (evicting the least recently used).
    if (trackers[static_cast<size_t>(ev->object)].Observe(
            ev->logical_offset, ev->size)) {
      ++s.runs;
    }

    // Record the (padded) in-flight interval for overlap computation,
    // merging with the previous interval when they touch.
    // Raw in-flight interval, for self-overlap (no padding: only requests
    // actually concurrent at the device compete with each other).
    s.intervals.emplace_back(ev->submit_time, ev->complete_time);
    const double lo = ev->submit_time - options_.overlap_window_s;
    const double hi = ev->complete_time + options_.overlap_window_s;
    if (!s.busy.empty() && lo <= s.busy.back().second) {
      s.busy.back().second = std::max(s.busy.back().second, hi);
    } else {
      s.busy.emplace_back(lo, hi);
    }
  }

  WorkloadSet out(static_cast<size_t>(num_objects));
  for (int i = 0; i < num_objects; ++i) {
    const ObjectStream& s = streams[static_cast<size_t>(i)];
    WorkloadDesc& w = out[static_cast<size_t>(i)];
    w.overlap.assign(static_cast<size_t>(num_objects), 0.0);
    if (s.requests == 0) continue;
    w.read_rate = static_cast<double>(s.reads) / duration;
    w.write_rate = static_cast<double>(s.writes) / duration;
    w.read_size = s.reads > 0
                      ? static_cast<double>(s.read_bytes) /
                            static_cast<double>(s.reads)
                      : 0.0;
    w.write_size = s.writes > 0
                       ? static_cast<double>(s.write_bytes) /
                             static_cast<double>(s.writes)
                       : 0.0;
    LDB_CHECK_GT(s.runs, 0u);
    w.run_count = static_cast<double>(s.requests) /
                  static_cast<double>(s.runs);
  }

  // Pairwise overlap: fraction of i's submits inside k's busy intervals.
  for (int i = 0; i < num_objects; ++i) {
    const ObjectStream& si = streams[static_cast<size_t>(i)];
    if (si.requests == 0) continue;
    for (int k = 0; k < num_objects; ++k) {
      if (k == i) continue;
      const ObjectStream& sk = streams[static_cast<size_t>(k)];
      if (sk.requests == 0) continue;
      uint64_t hits = 0;
      size_t cursor = 0;
      for (const double t : si.submit_times) {
        while (cursor < sk.busy.size() && sk.busy[cursor].second < t) {
          ++cursor;
        }
        if (cursor < sk.busy.size() && sk.busy[cursor].first <= t) ++hits;
      }
      out[static_cast<size_t>(i)].overlap[static_cast<size_t>(k)] =
          static_cast<double>(hits) / static_cast<double>(si.requests);
    }
  }

  // Self-overlap: mean number of the object's own *other* requests in
  // flight at its submit times. This is how concurrent queries scanning
  // the same object show up; the target model folds it into the
  // contention factor.
  {
    struct Edge {
      double t;
      int delta;
    };
    std::vector<Edge> edges;
    for (int i = 0; i < num_objects; ++i) {
      const ObjectStream& s = streams[static_cast<size_t>(i)];
      if (s.requests == 0) continue;
      edges.clear();
      edges.reserve(2 * s.intervals.size());
      for (const auto& iv : s.intervals) {
        edges.push_back(Edge{iv.first, +1});
        edges.push_back(Edge{iv.second, -1});
      }
      std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.delta > b.delta;  // open before close at equal times
      });
      // Sweep: at each submit time, the number of open intervals includes
      // the request's own, so subtract one.
      uint64_t concurrent_sum = 0;
      size_t cursor = 0;
      int open = 0;
      for (const double t : s.submit_times) {
        while (cursor < edges.size() && edges[cursor].t <= t) {
          open += edges[cursor].delta;
          ++cursor;
        }
        concurrent_sum += static_cast<uint64_t>(std::max(0, open - 1));
      }
      out[static_cast<size_t>(i)].overlap[static_cast<size_t>(i)] =
          static_cast<double>(concurrent_sum) /
          static_cast<double>(s.requests);
    }
  }

  if (options_.sparse_overlap) SparsifyOverlap(&out, options_.sparsify);

  for (int i = 0; i < num_objects; ++i) {
    LDB_CHECK(IsValidWorkload(out[static_cast<size_t>(i)],
                              static_cast<size_t>(num_objects),
                              static_cast<size_t>(i)));
  }
  return out;
}

}  // namespace ldb
