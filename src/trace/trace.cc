#include "trace/trace.h"

#include <algorithm>

namespace ldb {

double IoTrace::Duration() const {
  if (events_.empty()) return 0.0;
  double min_submit = events_.front().submit_time;
  double max_complete = events_.front().complete_time;
  for (const IoEvent& ev : events_) {
    min_submit = std::min(min_submit, ev.submit_time);
    max_complete = std::max(max_complete, ev.complete_time);
  }
  return max_complete - min_submit;
}

uint64_t IoTrace::CountForObject(ObjectId i) const {
  uint64_t n = 0;
  for (const IoEvent& ev : events_) n += (ev.object == i);
  return n;
}

TraceCollector::TraceCollector(StorageSystem* system) : system_(system) {
  system_->set_observer([this](const IoEvent& ev) { trace_.Add(ev); });
}

TraceCollector::~TraceCollector() { Detach(); }

void TraceCollector::Detach() {
  if (system_ != nullptr) {
    system_->set_observer(nullptr);
    system_ = nullptr;
  }
}

}  // namespace ldb
