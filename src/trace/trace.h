#ifndef LAYOUTDB_TRACE_TRACE_H_
#define LAYOUTDB_TRACE_TRACE_H_

#include <cstdint>
#include <vector>

#include "storage/io_request.h"
#include "storage/storage_system.h"

namespace ldb {

/// An I/O trace: the record of every request completed during a simulation
/// run, in completion order. The analogue of the kernel block traces the
/// paper collected from its instrumented Linux kernel (Section 6.1).
class IoTrace {
 public:
  IoTrace() = default;

  void Add(const IoEvent& ev) { events_.push_back(ev); }

  const std::vector<IoEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

  /// Trace duration: max completion time minus min submit time (0 if empty).
  double Duration() const;

  /// Total requests recorded for object `i`.
  uint64_t CountForObject(ObjectId i) const;

 private:
  std::vector<IoEvent> events_;
};

/// Attaches an IoTrace to a StorageSystem as its observer. The collector
/// must outlive the observation period; call Detach() (or destroy the
/// system first) before destroying the collector.
class TraceCollector {
 public:
  /// Starts collecting: installs this collector as `system`'s observer.
  explicit TraceCollector(StorageSystem* system);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Stops collecting and removes the observer.
  void Detach();

  IoTrace& trace() { return trace_; }
  const IoTrace& trace() const { return trace_; }

 private:
  StorageSystem* system_;
  IoTrace trace_;
};

}  // namespace ldb

#endif  // LAYOUTDB_TRACE_TRACE_H_
