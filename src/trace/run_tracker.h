#ifndef LAYOUTDB_TRACE_RUN_TRACKER_H_
#define LAYOUTDB_TRACE_RUN_TRACKER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ldb {

/// Sequential-run detection for one object's request stream (the Q_i fit of
/// the paper's Figure 5, Rubicon-style): up to `max_open_runs` concurrently
/// open runs are tracked, each remembering the logical offset it expects
/// next. A request continues the first run whose expectation it matches
/// (within `slack_bytes` of readahead slack); otherwise it opens a new run,
/// evicting the least recently used one when the table is full.
///
/// Shared by the batch TraceAnalyzer and the online monitor so both fit
/// identical run statistics from identical streams. Bounded state, no
/// allocation after construction.
class SequentialRunTracker {
 public:
  SequentialRunTracker(int max_open_runs, int64_t slack_bytes)
      : max_open_runs_(std::max(1, max_open_runs)), slack_(slack_bytes) {
    runs_.reserve(static_cast<size_t>(max_open_runs_));
  }

  /// Feeds one request; returns true when it starts a new sequential run.
  ///
  /// Eviction uses a per-tracker LRU clock. A clock shared across objects
  /// (as the batch analyzer once kept) orders a single object's stamps
  /// identically, so per-object results are unchanged.
  bool Observe(int64_t logical_offset, int64_t size) {
    OpenRun* hit = nullptr;
    for (OpenRun& r : runs_) {
      if (logical_offset >= r.next_logical &&
          logical_offset <= r.next_logical + slack_) {
        hit = &r;
        break;
      }
    }
    const bool new_run = hit == nullptr;
    if (new_run) {
      if (static_cast<int>(runs_.size()) < max_open_runs_) {
        runs_.push_back(OpenRun{});
        hit = &runs_.back();
      } else {
        hit = &*std::min_element(runs_.begin(), runs_.end(),
                                 [](const OpenRun& a, const OpenRun& b) {
                                   return a.last_use < b.last_use;
                                 });
      }
    }
    hit->next_logical = logical_offset + size;
    hit->last_use = ++clock_;
    return new_run;
  }

  void Reset() {
    runs_.clear();
    clock_ = 0;
  }

 private:
  struct OpenRun {
    int64_t next_logical = 0;
    uint64_t last_use = 0;
  };

  int max_open_runs_;
  int64_t slack_;
  uint64_t clock_ = 0;
  std::vector<OpenRun> runs_;
};

}  // namespace ldb

#endif  // LAYOUTDB_TRACE_RUN_TRACKER_H_
