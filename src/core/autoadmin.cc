#include "core/autoadmin.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

AutoAdminAdvisor::AutoAdminAdvisor(AutoAdminOptions options)
    : options_(options) {}

Result<Layout> AutoAdminAdvisor::Recommend(
    const LayoutProblem& problem,
    const std::vector<QueryEstimate>& queries) const {
  LDB_RETURN_IF_ERROR(problem.Validate());
  if (queries.empty()) {
    return Status::InvalidArgument("no query estimates");
  }
  const int n = problem.num_objects();
  const int m = problem.num_targets();
  const size_t nn = static_cast<size_t>(n);

  // Build the co-access graph: node weights (estimated volume) and edge
  // weights (concurrent-access volume).
  std::vector<double> weight(nn, 0.0);
  std::vector<double> edge(nn * nn, 0.0);
  for (const QueryEstimate& q : queries) {
    for (const QueryAccessEstimate& a : q.accesses) {
      if (a.object < 0 || a.object >= n) {
        return Status::InvalidArgument(
            StrFormat("estimate references unknown object %d", a.object));
      }
      weight[static_cast<size_t>(a.object)] += a.estimated_bytes;
    }
    for (size_t x = 0; x < q.accesses.size(); ++x) {
      for (size_t y = x + 1; y < q.accesses.size(); ++y) {
        const QueryAccessEstimate& a = q.accesses[x];
        const QueryAccessEstimate& b = q.accesses[y];
        if (a.object == b.object) continue;
        const double w = std::min(a.estimated_bytes, b.estimated_bytes);
        edge[static_cast<size_t>(a.object) * nn +
             static_cast<size_t>(b.object)] += w;
        edge[static_cast<size_t>(b.object) * nn +
             static_cast<size_t>(a.object)] += w;
      }
    }
  }

  std::vector<int> order(nn);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weight[static_cast<size_t>(a)] > weight[static_cast<size_t>(b)];
  });

  // Step 1: single-target placement separating co-accessed objects.
  Layout layout(n, m);
  std::vector<std::vector<int>> on_target(static_cast<size_t>(m));
  std::vector<double> target_weight(static_cast<size_t>(m), 0.0);
  std::vector<int64_t> remaining = problem.capacities();
  std::vector<int> home(nn, -1);
  for (int i : order) {
    const int64_t size = problem.object_sizes[static_cast<size_t>(i)];
    int best = -1;
    double best_penalty = 0.0;
    double best_load = 0.0;
    for (int j = 0; j < m; ++j) {
      if (remaining[static_cast<size_t>(j)] < size) continue;
      double penalty = 0.0;
      for (int k : on_target[static_cast<size_t>(j)]) {
        penalty += edge[static_cast<size_t>(i) * nn + static_cast<size_t>(k)];
      }
      const double load = target_weight[static_cast<size_t>(j)];
      if (best < 0 || penalty < best_penalty ||
          (penalty == best_penalty && load < best_load)) {
        best = j;
        best_penalty = penalty;
        best_load = load;
      }
    }
    if (best < 0) {
      return Status::Infeasible(StrFormat(
          "object %s fits on no target",
          problem.object_names[static_cast<size_t>(i)].c_str()));
    }
    layout.SetRowRegular(i, {best});
    home[static_cast<size_t>(i)] = best;
    on_target[static_cast<size_t>(best)].push_back(i);
    target_weight[static_cast<size_t>(best)] +=
        weight[static_cast<size_t>(i)];
    remaining[static_cast<size_t>(best)] -= size;
  }

  // Step 2: spread heavy objects across additional targets for I/O
  // parallelism, where co-location stays negligible.
  const double max_weight =
      *std::max_element(weight.begin(), weight.end());
  const std::vector<int64_t> capacities = problem.capacities();
  for (int i : order) {
    const double wi = weight[static_cast<size_t>(i)];
    if (max_weight <= 0.0 || wi < options_.spread_threshold * max_weight) {
      continue;
    }
    std::vector<int> spread_targets;
    for (int j = 0; j < m; ++j) {
      double coaccess = 0.0;
      for (int k : on_target[static_cast<size_t>(j)]) {
        if (k == i) continue;
        coaccess +=
            edge[static_cast<size_t>(i) * nn + static_cast<size_t>(k)];
      }
      if (j == home[static_cast<size_t>(i)] ||
          coaccess <= options_.coaccess_tolerance * wi) {
        spread_targets.push_back(j);
      }
    }
    if (spread_targets.size() < 2) continue;
    // Tentatively spread; revert if capacity breaks.
    const std::vector<int> old_targets = layout.TargetsOf(i);
    layout.SetRowRegular(i, spread_targets);
    if (!layout.SatisfiesCapacity(problem.object_sizes, capacities)) {
      layout.SetRowRegular(i, old_targets);
      continue;
    }
    for (int j : spread_targets) {
      auto& list = on_target[static_cast<size_t>(j)];
      if (std::find(list.begin(), list.end(), i) == list.end()) {
        list.push_back(i);
      }
    }
  }

  LDB_CHECK(layout.IsRegular(1e-9));
  return layout;
}

std::vector<QueryEstimate> EstimateQueriesFromSpec(
    const OlapSpec& spec, const LayoutProblem& problem,
    double temp_estimate_error) {
  std::vector<QueryEstimate> out;
  out.reserve(spec.queries.size());
  for (const QueryProfile& q : spec.queries) {
    QueryEstimate est;
    // Aggregate per-object bytes across the whole query (the optimizer
    // sees the statement, not its execution phases).
    std::vector<double> bytes(problem.object_sizes.size(), 0.0);
    for (const QueryStep& step : q.steps) {
      for (const StreamSpec& s : step.streams) {
        bytes[static_cast<size_t>(s.object)] +=
            static_cast<double>(s.bytes);
      }
    }
    for (size_t i = 0; i < bytes.size(); ++i) {
      if (bytes[i] <= 0.0) continue;
      double v = bytes[i];
      if (problem.object_kinds[i] == ObjectKind::kTempSpace) {
        v *= temp_estimate_error;
      }
      est.accesses.push_back(
          QueryAccessEstimate{static_cast<ObjectId>(i), v});
    }
    out.push_back(std::move(est));
  }
  return out;
}

}  // namespace ldb
