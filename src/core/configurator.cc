#include "core/configurator.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

/// Integer partitions of `n` in decreasing-part order (e.g. 4 -> [4],
/// [3,1], [2,2], [2,1,1], [1,1,1,1]), capped at `limit` partitions.
std::vector<std::vector<int>> Partitions(int n, int limit) {
  std::vector<std::vector<int>> out;
  std::vector<int> current;
  // Depth-first with non-increasing parts.
  std::function<void(int, int)> rec = [&](int remaining, int max_part) {
    if (static_cast<int>(out.size()) >= limit) return;
    if (remaining == 0) {
      out.push_back(current);
      return;
    }
    for (int part = std::min(remaining, max_part); part >= 1; --part) {
      current.push_back(part);
      rec(remaining - part, part);
      current.pop_back();
      if (static_cast<int>(out.size()) >= limit) return;
    }
  };
  rec(n, n);
  return out;
}

std::string DescribePartition(const DevicePool& pool,
                              const std::vector<int>& partition) {
  std::string out = pool.name + " x [";
  for (size_t i = 0; i < partition.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%d", partition[i]);
  }
  out += "]";
  return out;
}

}  // namespace

Result<ConfiguratorResult> RecommendConfiguration(
    const ConfiguratorInput& input, ConfiguratorOptions options) {
  if (input.pools.empty()) {
    return Status::InvalidArgument("no device pools");
  }
  for (const DevicePool& pool : input.pools) {
    if (pool.count <= 0 || pool.capacity_bytes <= 0) {
      return Status::InvalidArgument(
          StrFormat("pool %s has no devices/capacity", pool.name.c_str()));
    }
    if (pool.cost_model == nullptr) {
      return Status::InvalidArgument(
          StrFormat("pool %s has no cost model", pool.name.c_str()));
    }
  }
  if (options.max_partitions_per_pool <= 0) {
    return Status::InvalidArgument("max_partitions_per_pool must be > 0");
  }

  // Grouping choices per pool.
  std::vector<std::vector<std::vector<int>>> pool_partitions;
  for (const DevicePool& pool : input.pools) {
    if (pool.allow_grouping) {
      pool_partitions.push_back(
          Partitions(pool.count, options.max_partitions_per_pool));
    } else {
      pool_partitions.push_back(
          {std::vector<int>(static_cast<size_t>(pool.count), 1)});
    }
  }

  // Cartesian product over pools, evaluated with the advisor.
  bool have_best = false;
  ConfiguratorResult best;
  Status last_error = Status::Infeasible("no feasible configuration found");

  std::vector<size_t> choice(pool_partitions.size(), 0);
  while (true) {
    // Build the candidate problem.
    LayoutProblem problem;
    problem.object_names = input.object_names;
    problem.object_sizes = input.object_sizes;
    problem.object_kinds = input.object_kinds;
    problem.workloads = input.workloads;
    problem.lvm_stripe_bytes = input.lvm_stripe_bytes;
    std::string description;
    for (size_t pi = 0; pi < input.pools.size(); ++pi) {
      const DevicePool& pool = input.pools[pi];
      const std::vector<int>& partition = pool_partitions[pi][choice[pi]];
      if (!description.empty()) description += " + ";
      description += DescribePartition(pool, partition);
      int index = 0;
      for (int members : partition) {
        AdvisorTarget target;
        target.name = StrFormat("%s%d", pool.name.c_str(), index++);
        target.capacity_bytes = pool.capacity_bytes * members;
        target.cost_model = pool.cost_model;
        target.num_members = members;
        target.stripe_bytes = pool.stripe_bytes;
        problem.targets.push_back(std::move(target));
      }
    }

    const Status valid = problem.Validate();
    if (valid.ok()) {
      LayoutAdvisor advisor(options.advisor);
      auto advice = advisor.Recommend(problem);
      if (advice.ok()) {
        const bool better =
            !have_best ||
            advice->max_utilization_final < best.advice.max_utilization_final;
        if (better) {
          best.description = description;
          best.problem = problem;
          best.advice = std::move(advice).value();
          have_best = true;
        }
      } else {
        last_error = advice.status();
      }
    } else {
      last_error = valid;
    }

    // Advance the cartesian-product counter.
    size_t pi = 0;
    while (pi < choice.size()) {
      if (++choice[pi] < pool_partitions[pi].size()) break;
      choice[pi] = 0;
      ++pi;
    }
    if (pi == choice.size()) break;
  }

  if (!have_best) return last_error;
  return best;
}

}  // namespace ldb
