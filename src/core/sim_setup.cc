#include "core/sim_setup.h"

#include <algorithm>

#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/table.h"

namespace ldb {

Result<RebuiltSystem> BuildSystemForProblem(const LayoutProblem& problem) {
  RebuiltSystem out;
  for (const AdvisorTarget& t : problem.targets) {
    const std::string model =
        t.cost_model != nullptr ? t.cost_model->device_model() : "";
    const int members = std::max(1, t.num_members);
    int64_t member_capacity = t.capacity_bytes;
    switch (t.raid_level) {
      case RaidLevel::kRaid0:
        member_capacity = t.capacity_bytes / members;
        break;
      case RaidLevel::kRaid1:
        member_capacity = t.capacity_bytes;
        break;
      case RaidLevel::kRaid5:
        member_capacity = t.capacity_bytes / std::max(1, members - 1);
        break;
    }
    std::unique_ptr<BlockDevice> proto;
    if (model == "disk-15k" || model == "disk-7200") {
      DiskParams params =
          model == "disk-15k" ? Scsi15kParams() : Nearline7200Params();
      params.capacity_bytes = member_capacity;
      proto = std::make_unique<DiskModel>(params);
    } else if (model == "ssd") {
      SsdParams params;
      params.capacity_bytes = member_capacity;
      proto = std::make_unique<SsdModel>(params);
    } else {
      return Status::InvalidArgument(StrFormat(
          "target %s: cannot rebuild device model '%s' for simulation",
          t.name.c_str(), model.c_str()));
    }
    TargetSpec spec;
    spec.name = t.name;
    spec.prototype = proto.get();
    spec.num_members = members;
    spec.stripe_bytes = t.stripe_bytes;
    spec.raid_level = t.raid_level;
    out.prototypes.push_back(std::move(proto));
    out.specs.push_back(std::move(spec));
  }
  out.system = std::make_unique<StorageSystem>(out.specs);
  return out;
}

Result<OltpSpec> SyntheticForeground(const LayoutProblem& problem,
                                     const std::string& label,
                                     const std::string& context) {
  OltpSpec fg;
  fg.name = label;
  fg.transaction.name = "synthetic";
  QueryStep step;
  step.depth = 8;
  for (int i = 0; i < problem.num_objects(); ++i) {
    const WorkloadDesc& w = problem.workloads[static_cast<size_t>(i)];
    const double rate = w.total_rate();
    if (rate <= 0.0) continue;
    StreamSpec s;
    s.object = i;
    const double mean = w.mean_size();
    s.request_bytes = std::max<int64_t>(
        4 * kKiB, std::min<int64_t>(static_cast<int64_t>(mean),
                                    problem.object_sizes[static_cast<size_t>(
                                        i)]));
    // One simulated second of this object's fitted demand per transaction.
    s.bytes = std::max<int64_t>(
        s.request_bytes, static_cast<int64_t>(rate) * s.request_bytes);
    s.pattern = AccessPattern::kRandom;
    s.write_fraction = rate > 0.0 ? w.write_rate / rate : 0.0;
    step.streams.push_back(s);
  }
  if (step.streams.empty()) {
    return Status::InvalidArgument(StrFormat(
        "%s: every object has zero fitted request rate; nothing to run",
        context.c_str()));
  }
  fg.transaction.steps.push_back(std::move(step));
  fg.terminals = 1;
  fg.txn_overhead_s = 0.0;
  fg.warmup_s = 0.0;
  return fg;
}

namespace {

uint64_t FnvMixU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t FnvMixStr(uint64_t h, const std::string& s) {
  h = FnvMixU64(h, static_cast<uint64_t>(s.size()));
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

uint64_t ProblemStateDigest(const LayoutProblem& problem) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  h = FnvMixU64(h, static_cast<uint64_t>(problem.num_objects()));
  h = FnvMixU64(h, static_cast<uint64_t>(problem.num_targets()));
  h = FnvMixU64(h, static_cast<uint64_t>(problem.lvm_stripe_bytes));
  for (int64_t s : problem.object_sizes) {
    h = FnvMixU64(h, static_cast<uint64_t>(s));
  }
  for (const AdvisorTarget& t : problem.targets) {
    h = FnvMixStr(h, t.name);
    h = FnvMixStr(h, t.cost_model != nullptr ? t.cost_model->device_model()
                                             : std::string());
    h = FnvMixU64(h, static_cast<uint64_t>(t.capacity_bytes));
    h = FnvMixU64(h, static_cast<uint64_t>(t.num_members));
    h = FnvMixU64(h, static_cast<uint64_t>(t.stripe_bytes));
    h = FnvMixU64(h, static_cast<uint64_t>(t.raid_level));
  }
  return h;
}

}  // namespace ldb
