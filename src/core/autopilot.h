#ifndef LAYOUTDB_CORE_AUTOPILOT_H_
#define LAYOUTDB_CORE_AUTOPILOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/migrate.h"
#include "core/problem.h"
#include "model/layout.h"
#include "monitor/autopilot_spec.h"
#include "storage/fault.h"
#include "storage/storage_system.h"
#include "util/status.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace ldb {

/// Everything the closed-loop autopilot needs: the monitor/gate
/// configuration (sensor), the re-advise knobs (decision), and the
/// migration executor knobs (actuator).
struct AutopilotOptions {
  AutopilotConfig config;
  /// Throttle/backpressure of migrations the autopilot starts. Its
  /// bandwidth also prices the cost-benefit gate (the fallback bandwidth
  /// in `config` applies when unthrottled).
  MigrateOptions migrate;
  /// Re-advise configuration. The solver's num_threads is honored with
  /// bit-identical results across thread counts (solver guarantee), so
  /// autopilot runs are deterministic for any --threads. The current
  /// layout is automatically added to `advisor.warm_seeds` on every
  /// re-advise.
  AdvisorOptions advisor;
  /// Simulated times (seconds) at which the controller's deployed layout
  /// is sampled into AutopilotReport::sampled_layouts. The sampling events
  /// submit no I/O and touch no RNG, so they never perturb the foreground
  /// — bench_scenarios uses them to score the autopilot per scenario
  /// segment. Times past the end of the run record the final layout.
  std::vector<double> layout_sample_times;
  /// Durable control plane: path of the WAL the controller checkpoints
  /// adopted layouts (and the executor journals transitions) into. Empty =
  /// no durability; state lives and dies with the process.
  std::string journal_path;
  /// Deterministic crash injection for the journal writer (tests/CLI).
  WalCrashPolicy journal_crash;
  /// Recover `journal_path` on startup: deploy the last checkpointed (or
  /// committed-but-uncheckpointed) layout and its drift reference instead
  /// of the caller's initial layout. Requires a non-empty journal_path.
  bool resume = false;
  /// Scenario-clock recording: when >= 0 (and a journal is open), every
  /// tick appends an `spos` record carrying `offset + now` — the absolute
  /// scenario position — so a mid-scenario kill/resume can restart the
  /// player where the dead process left off. The offset is the position
  /// the scenario was resumed *at* (0 for a fresh run). < 0 disables
  /// recording (plain workload runs have no scenario clock).
  double scenario_position_offset_s = -1.0;
};

/// One controller decision, recorded at every drift trip.
struct AutopilotDecision {
  double time = 0.0;   ///< simulated seconds since run start
  double score = 0.0;  ///< drift score that tripped
  double current_max_util = 0.0;  ///< model max-util of the deployed layout
                                  ///< under the live window
  double advised_max_util = 0.0;  ///< model max-util of the re-advised one
  double migration_bytes = 0.0;   ///< priced data movement
  double migration_seconds = 0.0; ///< copy time under the gate bandwidth
  bool gate_passed = false;
  bool started = false;  ///< a migration was actually launched
  std::string note;      ///< human-readable gate verdict
};

/// The deployed layout observed at one requested sample time.
struct LayoutSample {
  double time;
  Layout layout;
};

/// Outcome of one autopilot run: the foreground results plus the full
/// decision log and actuator counters.
struct AutopilotReport {
  RunResult run;
  std::vector<AutopilotDecision> decisions;  ///< one per drift trip
  uint64_t ticks = 0;           ///< drift evaluations performed
  uint64_t monitor_events = 0;  ///< completions the analyzer ingested
  int migrations_started = 0;
  int migrations_completed = 0;
  int migrations_suppressed = 0;  ///< tripped, moved bytes priced, gate said no
  int migrations_rolled_back = 0;
  int migrations_aborted = 0;
  int64_t bytes_copied = 0;  ///< copy writes issued by all migrations
  uint64_t fg_requests = 0;
  double fg_mean_latency_s = 0.0;
  Layout initial_layout;
  Layout final_layout;  ///< layout in effect when the run ended
  double final_drift_score = 0.0;
  std::vector<std::string> skipped_faults;
  /// One entry per AutopilotOptions::layout_sample_times, in order.
  std::vector<LayoutSample> sampled_layouts;
  /// Durable journal accounting (zero/false without a journal_path).
  bool journal_crashed = false;  ///< injected crash froze the control plane
  int64_t journal_records = 0;   ///< records in the WAL at end of run
  int64_t journal_bytes = 0;     ///< WAL file size at end of run
  /// True when --resume recovered a deployed layout from the journal
  /// (initial_layout then reflects the recovered state, not the caller's).
  bool resumed_from_journal = false;
  /// Real data plane accounting (MigrateOptions::data_backend runs only).
  bool real_backend = false;        ///< a data backend carried the bytes
  Status real_readable;             ///< end-of-run pattern verification
  int64_t real_bytes_verified = 0;  ///< bytes checked against the pattern

  AutopilotReport() : initial_layout(1, 1), final_layout(1, 1) {}

  /// Deterministic digest of everything observable: run metrics, the
  /// decision log, and the final layout. Two runs with equal fingerprints
  /// behaved identically — the bit-identity tests compare these.
  std::string Fingerprint() const;
};

/// The foreground half of an autopilot run. RunAutopilotLoop builds the
/// controller (analyzer, drift detector, volume-manager chain, migration
/// executors) and then calls the driver exactly once to run the workload:
/// the driver must submit all foreground I/O through `router` (the splice
/// seam migrations are swapped into), report every logical completion to
/// `observe` (which feeds the streaming analyzer), invoke `on_finished`
/// when the workload logically completes (so the controller stops
/// rescheduling ticks and the event queue can idle), and pump the event
/// loop to completion before returning.
using AutopilotForegroundDriver = std::function<Result<RunResult>(
    VolumeRouter* router, const StorageSystem::Observer& observe,
    const std::function<void()>& on_finished)>;

/// The reusable sense→decide→act loop under any foreground driver:
/// WorkloadRunner (RunAutopilotSim) or a ScenarioPlayer (scenario/sim).
/// Handles controller construction, fault arming, periodic ticks, layout
/// sampling, terminal migration accounting, and report assembly.
Result<AutopilotReport> RunAutopilotLoop(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const FaultPlan& faults,
    const AutopilotOptions& options,
    const AutopilotForegroundDriver& foreground);

/// Runs workloads on `system` with the full sense→decide→act loop closed:
/// a streaming analyzer taps the runner's object-level completions, a
/// drift detector compares the live window against `problem.workloads`
/// (the set `initial_layout` was advised for), and on a trip the advisor
/// is re-run — warm-started from the deployed layout — with the resulting
/// migration executed through MigrationExecutor iff the cost-benefit gate
/// passes:
///
///   (mu_old - mu_new) >= gate_min_gain   and
///   (mu_old - mu_new) * gate_horizon_s >= total_bytes / bandwidth.
///
/// Faults compose exactly as in RunMigrationSim. With drift disabled
/// (threshold = inf) the run is bit-for-bit identical to a plain Execute
/// of `initial_layout`.
Result<AutopilotReport> RunAutopilotSim(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const OlapSpec* olap, const OltpSpec* oltp,
    double oltp_duration_s, const FaultPlan& faults,
    const AutopilotOptions& options, uint64_t seed);

/// CLI-facing autopilot simulation (sibling of SimulateProblemMigration):
/// rebuilds devices from the problem's calibrated cost-model names,
/// synthesizes a closed-loop foreground workload from the fitted
/// descriptions, and runs it under the autopilot with `current` deployed.
/// Note the synthetic foreground is random-access, so a problem fitted
/// from sequential scans can legitimately trip drift: the autopilot
/// re-fits what actually runs.
Result<AutopilotReport> SimulateProblemAutopilot(
    const LayoutProblem& problem, const Layout& current,
    const FaultPlan& faults, const AutopilotOptions& options,
    double duration_s = 30.0, uint64_t seed = 42);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_AUTOPILOT_H_
