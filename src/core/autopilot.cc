#include "core/autopilot.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/journal.h"
#include "core/replan.h"
#include "core/sim_setup.h"
#include "io/pattern.h"
#include "model/target_model.h"
#include "monitor/drift.h"
#include "monitor/online_analyzer.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

/// All controller state shared by the tick callback chain. Lives on
/// RunAutopilotSim's stack: the event loop runs to completion inside the
/// runner before the frame unwinds, exactly like the runner's own driver
/// state.
struct Controller {
  Controller(StorageSystem* system_in, const LayoutProblem* problem_in,
             const AutopilotOptions* options_in, const Layout& initial)
      : system(system_in),
        problem(problem_in),
        options(options_in),
        model(problem_in->MakeTargetModel()),
        analyzer(problem_in->num_objects(), options_in->config.analyzer),
        detector(problem_in->workloads, options_in->config.drift,
                 system_in->queue().Now()),
        current_layout(initial),
        pending_layout(initial),
        pending_reference(problem_in->workloads) {}

  StorageSystem* system;
  const LayoutProblem* problem;
  const AutopilotOptions* options;
  TargetModel model;
  OnlineAnalyzer analyzer;
  DriftDetector detector;

  /// Deployed-state chain: every adopted layout keeps its volume manager
  /// (and passthrough router) alive because in-flight and journaled state
  /// may still reference it.
  std::vector<std::unique_ptr<StripedVolumeManager>> managers;
  std::vector<std::unique_ptr<PassthroughRouter>> passthroughs;
  std::vector<std::unique_ptr<MigrationExecutor>> executors;

  SwitchableRouter* router = nullptr;       ///< foreground splice seam
  MigrationExecutor* active = nullptr;      ///< copy in flight, or null
  size_t current_manager = 0;               ///< index into `managers`
  size_t pending_manager = 0;
  Layout current_layout;
  Layout pending_layout;
  WorkloadSet pending_reference;  ///< live window the pending layout fits

  bool run_active = true;   ///< workload still logically running
  bool frozen = false;      ///< an abort froze routing; stop acting
  ControlJournal* journal = nullptr;  ///< durable control plane, or null
  AutopilotReport* report = nullptr;

  PassthroughRouter* current_passthrough() {
    return passthroughs[current_manager].get();
  }

  void AdoptCompleted() {
    if (journal != nullptr) {
      // Checkpoint before adopting (write-ahead). A failed append is
      // process death: the in-memory adoption still happens — the commit
      // record already switched authority durably, and the intent record
      // carries the same layout — but the controller stops acting.
      const Status ckpt = journal->AppendCheckpoint(
          system->queue().Now(), pending_layout, pending_reference);
      if (!ckpt.ok()) frozen = true;
    }
    current_layout = pending_layout;
    current_manager = pending_manager;
    router->set_delegate(current_passthrough());
    detector.Rearm(std::move(pending_reference), system->queue().Now());
    active = nullptr;
    ++report->migrations_completed;
  }

  void HandleRollback() {
    // The old layout is authoritative again; route around the executor and
    // take a fresh cooldown before trying anything else.
    router->set_delegate(current_passthrough());
    detector.Rearm(detector.reference(), system->queue().Now());
    active = nullptr;
    ++report->migrations_rolled_back;
  }

  void HandleAbort() {
    // Source lost mid-copy: the executor's per-chunk routing is the only
    // consistent view of where data lives, so it stays in the path and the
    // autopilot stops acting (failure-aware re-layout is the replan tool's
    // job, not the drift loop's).
    frozen = true;
    active = nullptr;
    ++report->migrations_aborted;
  }

  /// A drift trip: re-advise for the live window (warm-started from the
  /// deployed layout), price the move, and act iff the gate passes.
  void Decide(WorkloadSet live, double now);
};

void Controller::Decide(WorkloadSet live, double now) {
  AutopilotDecision d;
  d.time = now;
  d.score = detector.last_score();

  LayoutProblem live_problem = *problem;
  live_problem.workloads = live;
  AdvisorOptions adv = options->advisor;
  adv.warm_seeds.push_back(current_layout);
  const auto suppress = [&](std::string note, bool count) {
    d.note = std::move(note);
    if (count) ++report->migrations_suppressed;
    // Keep the old reference: the workload drifted but we are not moving,
    // and the cooldown stops the same trip from re-firing every tick.
    detector.Rearm(detector.reference(), now);
    report->decisions.push_back(std::move(d));
  };

  auto advised = LayoutAdvisor(adv).Recommend(live_problem);
  if (!advised.ok()) {
    suppress(StrFormat("re-advise failed: %s",
                       advised.status().message().c_str()),
             /*count=*/false);
    return;
  }
  const Layout& candidate = advised.value().final_layout;
  const std::vector<double> mu_old =
      model.Utilizations(live, current_layout);
  d.current_max_util = *std::max_element(mu_old.begin(), mu_old.end());
  d.advised_max_util = advised.value().max_utilization_final;

  const MigrationPlan plan =
      PriceMigration(live_problem, current_layout, candidate,
                     adv.regularizer.zero_tolerance);
  const double bandwidth = options->migrate.bandwidth_bytes_per_s > 0.0
                               ? options->migrate.bandwidth_bytes_per_s
                               : options->config.gate_fallback_bandwidth;
  d.migration_bytes = plan.total_bytes;
  d.migration_seconds = plan.total_bytes / bandwidth;

  if (plan.objects_moved == 0) {
    // The deployed layout is already (near-)optimal for the new workload:
    // adopt the live window as the reference so drift stops firing.
    d.note = "re-advise kept the deployed layout";
    detector.Rearm(std::move(live), now);
    report->decisions.push_back(std::move(d));
    return;
  }

  const double gain = d.current_max_util - d.advised_max_util;
  d.gate_passed = gain >= options->config.gate_min_gain &&
                  gain * options->config.gate_horizon_s >= d.migration_seconds;
  if (!d.gate_passed) {
    suppress(StrFormat("gate: gain %.4f does not amortize %.1f MiB "
                       "(%.1f s copy) within %.0f s horizon",
                       gain, plan.total_bytes / (1024.0 * 1024.0),
                       d.migration_seconds, options->config.gate_horizon_s),
             /*count=*/true);
    return;
  }

  // Act: build the destination and splice a migration executor in.
  auto to_placements = LayoutToPlacements(live_problem, candidate);
  if (!to_placements.ok()) {
    suppress(StrFormat("destination rejected: %s",
                       to_placements.status().message().c_str()),
             /*count=*/true);
    return;
  }
  uint64_t plan_digest = 0;
  if (journal != nullptr) {
    std::vector<std::vector<int>> from_placements;
    from_placements.reserve(problem->object_sizes.size());
    for (size_t i = 0; i < problem->object_sizes.size(); ++i) {
      from_placements.push_back(
          managers[current_manager]->targets_of(static_cast<int>(i)));
    }
    plan_digest =
        MigrationPlanDigest(problem->object_sizes, from_placements,
                            to_placements.value(), options->migrate.chunk_bytes);
  }
  auto dest = StripedVolumeManager::Create(
      problem->object_sizes, std::move(to_placements).value(),
      system->capacities(), problem->lvm_stripe_bytes);
  if (!dest.ok()) {
    suppress(StrFormat("destination rejected: %s",
                       dest.status().message().c_str()),
             /*count=*/true);
    return;
  }
  managers.push_back(
      std::make_unique<StripedVolumeManager>(std::move(dest).value()));
  // Real data plane: ping-pong the epoch so the live layout's extents and
  // the new destination's occupy disjoint file halves during the copy (at
  // most two layouts are ever live, so two epochs suffice forever).
  if (options->migrate.data_backend != nullptr) {
    managers.back()->set_data_epoch(
        1 - managers[current_manager]->data_epoch());
  }
  auto created = MigrationExecutor::Create(
      system, managers[current_manager].get(), managers.back().get(),
      options->migrate);
  if (!created.ok()) {
    managers.pop_back();
    suppress(StrFormat("executor rejected: %s",
                       created.status().message().c_str()),
             /*count=*/true);
    return;
  }
  passthroughs.push_back(
      std::make_unique<PassthroughRouter>(managers.back().get()));
  executors.push_back(std::move(created).value());
  if (journal != nullptr) {
    // Durable intent before any copy I/O: a restarted process can tell a
    // committed-but-uncheckpointed migration (intent + commit record →
    // deploy the intent layout) from an abandoned one (source is still
    // authoritative → deploy the last checkpoint).
    const Status intent =
        journal->AppendIntent(plan_digest, candidate, live);
    if (!intent.ok()) {
      // Process death before the migration started: nothing was copied,
      // the deployed layout stands. Freeze the control plane.
      frozen = true;
      executors.pop_back();
      passthroughs.pop_back();
      managers.pop_back();
      d.note = StrFormat("journal crash before migration start: %s",
                         intent.message().c_str());
      report->decisions.push_back(std::move(d));
      return;
    }
    executors.back()->set_journal_sink(journal);
  }
  active = executors.back().get();
  pending_layout = candidate;
  pending_manager = managers.size() - 1;
  pending_reference = std::move(live);
  router->set_delegate(active);
  if (options->migrate.start_delay_s > 0.0) {
    MigrationExecutor* exec = active;
    system->queue().ScheduleAfter(options->migrate.start_delay_s,
                                  [exec]() { exec->Start(); });
  } else {
    active->Start();
  }
  d.started = true;
  d.note = StrFormat("migration started: %d objects, %.1f MiB",
                     plan.objects_moved,
                     plan.total_bytes / (1024.0 * 1024.0));
  ++report->migrations_started;
  report->decisions.push_back(std::move(d));
}

/// The periodic sense→decide→act tick. Self-rescheduling; stops once the
/// workload logically finishes so the queue can idle (a still-running
/// migration keeps its own events alive until it terminates).
void Tick(Controller* c) {
  if (!c->run_active) return;
  ++c->report->ticks;
  const double now = c->system->queue().Now();

  // Scenario-clock heartbeat: record the absolute scenario position so a
  // kill after this instant resumes within one tick of it. Appended (and
  // synced) before any control decision this tick, mirroring write-ahead
  // order; a failed append is process death — freeze like the executor.
  if (c->journal != nullptr && !c->frozen &&
      c->options->scenario_position_offset_s >= 0.0) {
    const Status appended = c->journal->AppendScenarioPosition(
        c->options->scenario_position_offset_s + now);
    if (!appended.ok()) c->frozen = true;
  }

  if (c->active != nullptr && c->active->journal_failed()) {
    // The executor froze on a journal crash mid-migration. Its per-chunk
    // routing is the last consistent view, so it stays spliced in; the
    // control plane stops acting (recovery is a restarted process's job).
    c->frozen = true;
    c->active = nullptr;
  }
  if (c->active != nullptr) {
    switch (c->active->outcome()) {
      case MigrationOutcome::kNotStarted:
      case MigrationOutcome::kRunning:
        break;  // copy still in flight; sensing continues, deciding waits
      case MigrationOutcome::kCompleted:
        c->AdoptCompleted();
        break;
      case MigrationOutcome::kRolledBack:
        c->HandleRollback();
        break;
      case MigrationOutcome::kAborted:
        c->HandleAbort();
        break;
    }
  } else if (!c->frozen) {
    WorkloadSet live = c->analyzer.Snapshot();
    if (c->detector.Evaluate(live, now)) {
      c->Decide(std::move(live), now);
    }
  }

  c->system->queue().ScheduleAfter(c->options->config.check_interval_s,
                                   [c]() { Tick(c); });
}

}  // namespace

std::string AutopilotReport::Fingerprint() const {
  std::string out = StrFormat(
      "elapsed=%.17g;requests=%llu;olap=%llu;oltp=%llu;tpm=%.17g;events=%llu",
      run.elapsed_seconds, static_cast<unsigned long long>(run.total_requests),
      static_cast<unsigned long long>(run.olap_queries_completed),
      static_cast<unsigned long long>(run.oltp_transactions), run.tpm,
      static_cast<unsigned long long>(monitor_events));
  out += ";util";
  for (double u : run.utilization) out += StrFormat("|%.17g", u);
  for (const AutopilotDecision& d : decisions) {
    out += StrFormat(";d:t=%.17g,s=%.17g,g=%d,st=%d,b=%.17g", d.time, d.score,
                     d.gate_passed ? 1 : 0, d.started ? 1 : 0,
                     d.migration_bytes);
  }
  out += ";layout";
  for (int i = 0; i < final_layout.num_objects(); ++i) {
    out += '|';
    for (int t : final_layout.TargetsOf(i)) out += StrFormat("%d,", t);
  }
  return out;
}

Result<AutopilotReport> RunAutopilotLoop(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const FaultPlan& faults,
    const AutopilotOptions& options,
    const AutopilotForegroundDriver& foreground) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  LDB_RETURN_IF_ERROR(options.config.Validate());
  if (options.resume && options.migrate.data_backend != nullptr) {
    // The recovered layout's data-plane epoch is not journaled, so a
    // resumed run cannot know which file half holds the live bytes.
    // Kill/resume with real files is exercised through --migrate, whose
    // epoch assignment (source 0, destination 1) is static.
    return Status::FailedPrecondition(
        "autopilot: resuming with a real data backend is not supported; "
        "use the file backend with a --migrate resume instead");
  }
  if (options.resume && options.journal_path.empty()) {
    return Status::InvalidArgument(
        "autopilot: --resume requires a journal path");
  }

  // Durable control plane: recover the deployed layout + drift reference
  // from the journal (resume), and bind the journal to this problem so a
  // later --resume against a different problem file is rejected.
  Layout deployed = initial_layout;
  WorkloadSet reference = problem.workloads;
  std::unique_ptr<ControlJournal> journal;
  bool resumed = false;
  if (!options.journal_path.empty()) {
    auto opened =
        ControlJournal::Open(options.journal_path, options.journal_crash);
    if (!opened.ok()) return opened.status();
    journal = std::move(opened).value();
    const uint64_t digest = ProblemStateDigest(problem);
    const RecoveredControlState& rec = journal->recovered();
    if (options.resume) {
      if (rec.has_problem && rec.problem_digest != digest) {
        return Status::FailedPrecondition(StrFormat(
            "journal %s was recorded for a different problem (journal "
            "digest %llx, problem digest %llx); refusing to resume",
            options.journal_path.c_str(),
            static_cast<unsigned long long>(rec.problem_digest),
            static_cast<unsigned long long>(digest)));
      }
      Layout recovered_layout(1, 1);
      WorkloadSet recovered_reference;
      if (ResolveDeployedState(rec, &recovered_layout,
                               &recovered_reference)) {
        if (recovered_layout.num_objects() != problem.num_objects() ||
            recovered_layout.num_targets() != problem.num_targets()) {
          return Status::FailedPrecondition(StrFormat(
              "journal %s checkpoints a %dx%d layout but the problem is "
              "%dx%d; refusing to resume",
              options.journal_path.c_str(), recovered_layout.num_objects(),
              recovered_layout.num_targets(), problem.num_objects(),
              problem.num_targets()));
        }
        deployed = std::move(recovered_layout);
        reference = std::move(recovered_reference);
        resumed = true;
      }
    }
    if (!rec.has_problem || rec.problem_digest != digest) {
      const Status bind = journal->AppendProblemBinding(digest);
      // A simulated crash during binding means the process died at t=0;
      // the run proceeds with a frozen control plane.
      if (!bind.ok() && !journal->crashed()) return bind;
    }
  }

  // The initial layout is pre-existing physical state; like a migration
  // source it need not honor pin/separate policy (that can be exactly what
  // drift-driven re-layout later fixes).
  auto placements = LayoutToPlacements(problem, deployed,
                                       /*check_placement_constraints=*/false);
  if (!placements.ok()) return placements.status();
  auto volumes = StripedVolumeManager::Create(
      problem.object_sizes, std::move(placements).value(),
      system->capacities(), problem.lvm_stripe_bytes);
  if (!volumes.ok()) return volumes.status();

  AutopilotReport report;
  report.initial_layout = deployed;
  report.final_layout = deployed;
  report.resumed_from_journal = resumed;

  Controller controller(system, &problem, &options, deployed);
  controller.journal = journal.get();
  controller.frozen = journal != nullptr && journal->crashed();
  if (resumed) {
    // Rearm the drift detector with the recovered reference (the window
    // the deployed layout was advised for), not the problem file's.
    controller.detector.Rearm(reference, system->queue().Now());
    controller.pending_reference = reference;
  }
  controller.report = &report;
  controller.managers.push_back(
      std::make_unique<StripedVolumeManager>(std::move(volumes).value()));
  controller.passthroughs.push_back(std::make_unique<PassthroughRouter>(
      controller.managers.front().get()));
  SwitchableRouter router(controller.passthroughs.front().get());
  controller.router = &router;

  // Real data plane: on a fresh run, lay the verification pattern down at
  // the deployed layout's locations before the loop starts migrating.
  // Resumed runs keep the bytes the killed process left behind.
  if (options.migrate.data_backend != nullptr && !options.resume) {
    LDB_RETURN_IF_ERROR(PopulateBackendPattern(
        options.migrate.data_backend, controller.passthroughs.front().get()));
  }

  // Faults compose exactly as in the plain and migration harness paths.
  FaultInjector injector(system, faults);
  LDB_RETURN_IF_ERROR(injector.Arm());

  // First tick one interval in; reschedules itself until the workload
  // logically finishes. Ticks never submit I/O or touch the runner's RNG,
  // so with drift disabled the run is bit-identical to a plain Execute.
  Controller* c = &controller;
  system->queue().ScheduleAfter(options.config.check_interval_s,
                                [c]() { Tick(c); });

  // Layout sampling: pure reads of controller state at fixed times. Like
  // ticks they submit no I/O and touch no RNG, so the foreground is
  // byte-for-byte unaffected by the sampling schedule.
  report.sampled_layouts.reserve(options.layout_sample_times.size());
  for (double t : options.layout_sample_times) {
    system->queue().ScheduleAt(t, [c, t]() {
      c->report->sampled_layouts.push_back(
          LayoutSample{t, c->current_layout});
    });
  }

  std::vector<double> latencies;
  Result<RunResult> run = foreground(
      &router,
      [c, &latencies](const IoEvent& ev) {
        c->analyzer.Observe(ev);
        latencies.push_back(ev.complete_time - ev.submit_time);
      },
      [c]() { c->run_active = false; });
  if (!run.ok()) return run.status();
  report.run = std::move(run).value();
  report.run.skipped_faults = injector.skipped();
  report.skipped_faults = injector.skipped();

  // A migration still in flight at the last tick drains inside the
  // runner's event loop; account for its terminal state here.
  if (controller.active != nullptr) {
    if (controller.active->journal_failed()) {
      // Journal crash froze the executor mid-copy; its routing stays the
      // consistent view and the run ends with the migration unfinished.
      controller.frozen = true;
      controller.active = nullptr;
    } else {
      switch (controller.active->outcome()) {
        case MigrationOutcome::kCompleted:
          controller.AdoptCompleted();
          break;
        case MigrationOutcome::kRolledBack:
          controller.HandleRollback();
          break;
        case MigrationOutcome::kAborted:
          controller.HandleAbort();
          break;
        case MigrationOutcome::kNotStarted:
        case MigrationOutcome::kRunning:
          break;  // unreachable: the pump only idles at a terminal state
      }
    }
  }

  report.final_layout = controller.current_layout;
  report.final_drift_score = controller.detector.last_score();
  report.monitor_events = controller.analyzer.events();
  for (const auto& exec : controller.executors) {
    report.bytes_copied += exec->stats().bytes_written;
  }
  report.fg_requests = static_cast<uint64_t>(latencies.size());
  if (!latencies.empty()) {
    double sum = 0.0;
    for (double l : latencies) sum += l;
    report.fg_mean_latency_s = sum / static_cast<double>(latencies.size());
  }
  if (journal != nullptr) {
    report.journal_crashed = journal->crashed();
    report.journal_records = journal->records_total();
    report.journal_bytes = journal->file_bytes();
  }
  // "Every byte readable" on real media, through the live routing chain
  // (the router delegates to the last adopted manager or frozen executor).
  if (options.migrate.data_backend != nullptr) {
    report.real_backend = true;
    auto verified =
        VerifyBackendPattern(options.migrate.data_backend, &router);
    if (verified.ok()) {
      report.real_readable = Status::Ok();
      report.real_bytes_verified = *verified;
    } else {
      report.real_readable = verified.status();
    }
  }
  return report;
}

Result<AutopilotReport> RunAutopilotSim(
    StorageSystem* system, const LayoutProblem& problem,
    const Layout& initial_layout, const OlapSpec* olap, const OltpSpec* oltp,
    double oltp_duration_s, const FaultPlan& faults,
    const AutopilotOptions& options, uint64_t seed) {
  return RunAutopilotLoop(
      system, problem, initial_layout, faults, options,
      [&](VolumeRouter* router, const StorageSystem::Observer& observe,
          const std::function<void()>& on_finished) -> Result<RunResult> {
        WorkloadRunner runner(system, router, seed);
        runner.set_on_finished(on_finished);
        runner.set_logical_observer(observe);
        if (olap != nullptr && oltp != nullptr) {
          return runner.RunMixed(*olap, *oltp);
        }
        if (olap != nullptr) return runner.RunOlap(*olap);
        if (oltp != nullptr) return runner.RunOltp(*oltp, oltp_duration_s);
        return Status::InvalidArgument("no workload given");
      });
}

Result<AutopilotReport> SimulateProblemAutopilot(
    const LayoutProblem& problem, const Layout& current,
    const FaultPlan& faults, const AutopilotOptions& options,
    double duration_s, uint64_t seed) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  if (duration_s <= 0.0) {
    return Status::InvalidArgument("autopilot: duration must be positive");
  }

  // Rebuild simulated devices from the calibrated cost models' device
  // names, exactly as SimulateProblemMigration does. The synthetic
  // foreground is random-access: a problem fitted from sequential scans
  // will legitimately drift against it.
  auto rebuilt = BuildSystemForProblem(problem);
  if (!rebuilt.ok()) return rebuilt.status();
  auto fg = SyntheticForeground(problem, "autopilot-fg", "autopilot");
  if (!fg.ok()) return fg.status();

  return RunAutopilotSim(rebuilt->system.get(), problem, current,
                         /*olap=*/nullptr, &fg.value(), duration_s, faults,
                         options, seed);
}

}  // namespace ldb
