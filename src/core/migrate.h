#ifndef LAYOUTDB_CORE_MIGRATE_H_
#define LAYOUTDB_CORE_MIGRATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "model/layout.h"
#include "storage/fault.h"
#include "storage/lvm.h"
#include "storage/storage_system.h"
#include "util/status.h"
#include "util/units.h"
#include "util/wal.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace ldb {

class BlockBackend;

/// Copy progress of one migration chunk.
enum class ChunkState {
  kPending,     ///< not copied yet (serves from the old location)
  kReading,     ///< copy read in flight on the source
  kWriting,     ///< copy write in flight on the destination
  kCommitted,   ///< new location current (reads serve from it)
  kAborted,     ///< migration aborted before this chunk committed
  kRolledBack,  ///< migration rolled back; old location is authoritative
};

const char* ChunkStateName(ChunkState state);

/// Terminal/overall state of a migration.
enum class MigrationOutcome {
  kNotStarted,
  kRunning,
  kCompleted,   ///< every chunk committed; new layout authoritative
  kRolledBack,  ///< destination lost (or copy write failed): old layout
                ///< authoritative, all data intact on the source
  kAborted,     ///< source lost mid-copy: committed chunks serve the new
                ///< location, the rest stay pointed at the (broken) source
};

const char* MigrationOutcomeName(MigrationOutcome outcome);

/// Record kinds of the in-memory write-ahead intent log. The journal is
/// ordered; replaying any prefix through MigrationExecutor::Resume yields a
/// consistent executor (committed chunks serve the new location, chunks
/// with a begun-but-uncommitted copy are re-copied — copying is idempotent).
enum class JournalKind {
  kBeginMigration,     ///< intent to run this plan
  kBeginChunk,         ///< chunk copy issued (object, chunk)
  kRecopyChunk,        ///< chunk dirtied by a foreground write; re-queued
  kCommitChunk,        ///< chunk's new location is current (object, chunk)
  kCommitObject,       ///< every chunk of the object committed
  kCommitMigration,    ///< point of no return: new layout authoritative
  kRollbackMigration,  ///< old layout authoritative again
  kAbortMigration,     ///< source lost; per-chunk routing frozen
};

const char* JournalKindName(JournalKind kind);

struct JournalRecord {
  JournalKind kind = JournalKind::kBeginMigration;
  int object = -1;    ///< object id, or -1 for migration-level records
  int64_t chunk = -1; ///< chunk index, or -1
};

using MigrationJournal = std::vector<JournalRecord>;

/// Durable sink for journal records. The executor calls Append *before*
/// the corresponding state transition takes effect (write-ahead), so a
/// sink's on-disk log is always a prefix of the applied transitions and
/// replaying it through Resume() reconstructs a consistent executor.
/// Commit-point durability (fsync) is the sink's policy; see
/// ControlJournal in core/journal.h. A failed Append is treated as
/// process death: the executor freezes without applying the transition.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual Status Append(const JournalRecord& record) = 0;
  /// Explicit durability barrier (sinks may also sync inside Append).
  virtual Status Sync() = 0;
};

/// Knobs of the migration executor.
struct MigrateOptions {
  /// Copy granularity; also the state-machine/journal granularity.
  int64_t chunk_bytes = kMiB;
  /// Token-bucket rate for migration I/O, counted in *copied* bytes (each
  /// copied byte costs one read plus one write). 0 = unthrottled.
  double bandwidth_bytes_per_s = 0.0;
  /// Bucket capacity; 0 defaults to one chunk.
  int64_t burst_bytes = 0;
  /// Backpressure: migration submissions stall while background requests
  /// would exceed this share of in-flight requests system-wide
  /// (bg / (bg + fg) > max_bg_share with the next copy counted in). 1.0
  /// disables backpressure.
  double max_bg_share = 1.0;
  /// How long a backpressure-deferred pump waits before rechecking.
  double backpressure_recheck_s = 0.002;
  /// Copy pipeline depth, in chunks.
  int max_inflight_chunks = 1;
  /// Simulated seconds to wait after run start before copying begins
  /// (honored by the harness entry points, which schedule Start()).
  double start_delay_s = 0.0;
  /// Durable control plane (harness entry points): path of the WAL every
  /// JournalRecord is serialized into before taking effect. Empty =
  /// in-memory journaling only.
  std::string journal_path;
  /// Deterministic crash injection for the journal writer (tests/CLI).
  WalCrashPolicy journal_crash;
  /// Recover `journal_path` and resume the recorded migration instead of
  /// starting fresh. Requires a non-empty journal_path.
  bool resume = false;
  /// Real data plane: when set, every chunk commit first copies the
  /// chunk's actual bytes source → destination through this backend
  /// (ReadSync/WriteSync), and Complete() issues a backend Sync() before
  /// the commit record. The simulator remains the timing driver; journal
  /// semantics are unchanged (the real copy happens *before* kCommitChunk
  /// is journaled, so journaled-committed implies copied, and unjournaled
  /// chunks are re-copied idempotently on resume). A real-copy failure
  /// rolls the migration back. Must outlive the executor.
  BlockBackend* data_backend = nullptr;
};

/// Progress/impact counters of one migration.
struct MigrationStats {
  int64_t chunks_total = 0;      ///< chunks across all migrating objects
  int64_t chunks_committed = 0;
  int64_t chunks_recopied = 0;   ///< dirty re-copies (extra passes)
  int objects_migrating = 0;
  int objects_committed = 0;
  int64_t bytes_read = 0;        ///< copy reads issued to the source
  int64_t bytes_written = 0;     ///< copy writes issued to the destination
  double start_time = -1.0;      ///< simulation time of Start()
  double end_time = -1.0;        ///< simulation time of the terminal record
  double throttle_wait_s = 0.0;  ///< total token-bucket stall time
  uint64_t backpressure_deferrals = 0;
};

/// Chunk-level online migration executor.
///
/// Carries a layout transition out as background I/O on the simulator
/// while foreground traffic keeps flowing: every object whose target set
/// differs between the `source` and `destination` volume managers is
/// copied chunk by chunk (kPending → kReading → kWriting → kCommitted),
/// with every transition journaled into an in-memory write-ahead intent
/// log. The executor is itself the foreground VolumeRouter:
///
///  * reads of committed chunks serve from the new location, everything
///    else from the old one;
///  * writes always land on the source until the *whole* migration commits
///    (so rollback is consistent at any earlier instant), mirror onto the
///    destination for committed chunks, and dirty in-flight chunks so they
///    are re-copied;
///  * objects that do not move route through the source manager untouched.
///
/// Failure policy: a copy-write failure or a dead destination target rolls
/// the whole migration back (old layout authoritative, no data loss — the
/// source was never released); a copy-read failure aborts it (committed
/// chunks keep serving the new location). `ReplanAfterFailure` +  a fresh
/// executor handle re-planning around the lost target.
///
/// Copy I/O flows through a token-bucket throttle plus a foreground
/// queue-depth backpressure gate (MigrateOptions), so impact on foreground
/// p99 latency is tunable against migration duration.
class MigrationExecutor final : public VolumeRouter {
 public:
  /// Builds an executor migrating from `source` to `destination` placements.
  /// All three pointers must outlive the executor; the two managers must
  /// describe the same objects (sizes equal). No I/O until Start().
  static Result<std::unique_ptr<MigrationExecutor>> Create(
      StorageSystem* system, const StripedVolumeManager* source,
      const StripedVolumeManager* destination, const MigrateOptions& options);

  /// Rebuilds an executor from a journal prefix of a previous attempt of
  /// the *same* migration (same managers, same chunking). Chunks with a
  /// kCommitChunk record resume as committed; chunks with only a begin
  /// record are re-copied (idempotent); a terminal record fixes the
  /// outcome and Start() becomes a no-op. Resume is idempotent: resuming
  /// from any prefix and running to completion is equivalent to an
  /// uninterrupted run.
  static Result<std::unique_ptr<MigrationExecutor>> Resume(
      StorageSystem* system, const StripedVolumeManager* source,
      const StripedVolumeManager* destination, const MigrateOptions& options,
      const MigrationJournal& journal);

  /// Starts (or, after Pause(), restarts) the copy engine. An empty plan
  /// (no object moves) completes synchronously and schedules zero events,
  /// making the migration a bit-for-bit no-op for the foreground run.
  void Start();

  /// Stops issuing new copies after the in-flight ones complete. Routing
  /// continues normally; Start() resumes.
  void Pause();

  // ---- VolumeRouter (foreground traffic). ----
  int num_objects() const override;
  int64_t object_size(ObjectId i) const override;
  void Route(ObjectId object, int64_t offset, int64_t size, bool is_write,
             std::vector<TargetChunk>* out) override;

  MigrationOutcome outcome() const { return outcome_; }
  const MigrationStats& stats() const;
  const MigrationJournal& journal() const { return journal_; }
  /// Target blamed for a rollback/abort, or -1.
  int failed_target() const { return failed_target_; }
  const std::string& failure_reason() const { return failure_reason_; }

  /// Invoked after every chunk commit and at every terminal transition —
  /// the chunk-boundary hook the interrupt/resume property tests use.
  void set_commit_hook(std::function<void()> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Installs a durable journal sink (must outlive the executor). Every
  /// subsequent record is appended to the sink before its transition is
  /// applied; a failed append freezes the executor (see journal_failed()).
  void set_journal_sink(JournalSink* sink) { journal_sink_ = sink; }

  /// True once a sink append failed: the durable intent could not be
  /// recorded, so the executor behaves as if the process died — no further
  /// copies are issued and no more transitions are applied. Routing keeps
  /// serving from the last consistent state.
  bool journal_failed() const { return journal_failed_; }
  const Status& journal_failure() const { return journal_failure_; }

  /// Verifies that every byte of every object is currently readable: the
  /// serving location of each chunk holds the latest version and every
  /// target backing it is serviceable. This is the "no instant of
  /// unreadability" invariant the property tests check at arbitrary
  /// simulated times.
  Status CheckReadable() const;

  /// Deterministic digest of the routing-relevant state: outcome plus each
  /// migrating chunk's serving side. Two executors with equal fingerprints
  /// route every request identically.
  std::string StateFingerprint() const;

 private:
  struct Chunk {
    int64_t offset = 0;
    int64_t size = 0;
    ChunkState state = ChunkState::kPending;
    uint64_t cur_version = 0;   ///< latest logical version of the range
    uint64_t src_version = 0;   ///< version held by the source location
    uint64_t dst_version = 0;   ///< version held by the destination
    uint64_t read_version = 0;  ///< version captured by the copy read
    bool dirty = false;         ///< foreground write landed mid-copy
    bool begun = false;         ///< kBeginChunk journaled
  };
  struct ObjectPlan {
    int object = 0;
    std::vector<Chunk> chunks;
    int64_t committed = 0;
  };

  MigrationExecutor(StorageSystem* system, const StripedVolumeManager* source,
                    const StripedVolumeManager* destination,
                    const MigrateOptions& options);

  /// Issues the next copies allowed by throttle/backpressure/pipeline.
  void Pump();
  void SchedulePump(double delay_s);
  void IssueCopy(size_t plan_index, size_t chunk_index);
  void FinishCopyRead(size_t plan_index, size_t chunk_index,
                      const Status& status);
  void FinishCopyWrite(size_t plan_index, size_t chunk_index,
                       const Status& status);
  void CommitChunk(size_t plan_index, size_t chunk_index);
  /// Copies the chunk's real bytes source → destination through
  /// options_.data_backend (no-op without one).
  Status CopyChunkReal(const ObjectPlan& plan, const Chunk& chunk);
  void Complete();
  void Rollback(int target, const std::string& reason);
  void Abort(int target, const std::string& reason);
  /// Appends to the sink (if any) then the in-memory journal. Returns
  /// false — and freezes the executor — when the sink append failed; the
  /// caller must not apply the transition in that case.
  bool Journal(JournalKind kind, int object, int64_t chunk);

  /// Submits one copy pass (all target chunks of `range` on one side) and
  /// fires `done` with the first error once all complete.
  void SubmitCopyPass(const std::vector<TargetChunk>& chunks, ObjectId object,
                      int64_t logical_offset, bool is_write,
                      std::function<void(const Status&)> done);

  /// True when the chunk's reads serve from the destination.
  bool ServesFromDestination(const ObjectPlan& plan,
                             const Chunk& chunk) const;

  StorageSystem* system_;
  const StripedVolumeManager* source_;
  const StripedVolumeManager* destination_;
  MigrateOptions options_;

  std::vector<ObjectPlan> plans_;       ///< migrating objects only
  std::vector<int> plan_of_object_;     ///< object id → plans_ index or -1
  std::vector<std::pair<size_t, size_t>> work_;  ///< pending (plan, chunk)
  size_t work_head_ = 0;

  MigrationOutcome outcome_ = MigrationOutcome::kNotStarted;
  MigrationJournal journal_;
  mutable MigrationStats stats_;
  int failed_target_ = -1;
  std::string failure_reason_;
  JournalSink* journal_sink_ = nullptr;
  bool journal_failed_ = false;
  Status journal_failure_;
  std::function<void()> commit_hook_;
  bool paused_ = false;
  bool pump_scheduled_ = false;
  int inflight_chunks_ = 0;
  uint64_t bg_inflight_requests_ = 0;  ///< our submissions still in flight
  int64_t objects_done_ = 0;

  // Token bucket (copied bytes).
  double tokens_ = 0.0;
  double last_refill_ = 0.0;

  // Scratch buffers reused across Route/copy submissions.
  std::vector<TargetChunk> scratch_;
  std::vector<char> copy_buf_;  ///< real-chunk staging (data_backend runs)
};

/// Everything a migration experiment reports: the foreground run, the
/// migration outcome, and consistency/latency measurements.
struct MigrationRunReport {
  RunResult run;
  MigrationOutcome outcome = MigrationOutcome::kNotStarted;
  MigrationStats stats;
  MigrationJournal journal;
  int failed_target = -1;
  std::string failure_reason;
  /// CheckReadable() at end of run.
  Status readable = Status::Ok();
  /// Foreground object-level request latencies (from the logical observer).
  uint64_t fg_requests = 0;
  double fg_mean_s = 0.0;
  double fg_p50_s = 0.0;
  double fg_p99_s = 0.0;
  /// Fault specs the injector skipped as invalid at fire time.
  std::vector<std::string> skipped_faults;
  /// Durable journal accounting (zero when MigrateOptions::journal_path is
  /// empty). `journal_crashed` means the injected crash policy fired and
  /// the executor froze mid-run; `journal_error` carries the reason.
  bool journal_crashed = false;
  int64_t journal_records = 0;   ///< records in the WAL at end of run
  int64_t journal_bytes = 0;     ///< WAL file size at end of run
  int64_t resumed_records = 0;   ///< records recovered before this run
  std::string journal_error;
  /// Real data plane accounting (MigrateOptions::data_backend runs only).
  bool real_backend = false;        ///< a data backend carried the bytes
  Status real_readable;             ///< end-of-run pattern verification
  int64_t real_bytes_verified = 0;  ///< bytes checked against the pattern
};

/// Runs workloads on a fresh system while migrating from `from_placements`
/// to `to_placements`, with an optional fault plan composed in. The shared
/// engine behind ExperimentRig::ExecuteWithMigration and the CLI
/// `--migrate` path.
Result<MigrationRunReport> RunMigrationSim(
    StorageSystem* system, const std::vector<int64_t>& object_sizes,
    std::vector<std::vector<int>> from_placements,
    std::vector<std::vector<int>> to_placements, int64_t lvm_stripe_bytes,
    const OlapSpec* olap, const OltpSpec* oltp, double oltp_duration_s,
    const FaultPlan& faults, const MigrateOptions& options, uint64_t seed);

/// CLI-facing migration simulation: builds a storage system from the
/// problem's targets (device models reconstructed from the calibrated cost
/// models' names — disk-15k, disk-7200, ssd), synthesizes a closed-loop
/// foreground workload from the problem's fitted workload descriptions,
/// and migrates `from` → `to` under it.
Result<MigrationRunReport> SimulateProblemMigration(
    const LayoutProblem& problem, const Layout& from, const Layout& to,
    const FaultPlan& faults, const MigrateOptions& options,
    double duration_s = 30.0, uint64_t seed = 42);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_MIGRATE_H_
