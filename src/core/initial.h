#ifndef LAYOUTDB_CORE_INITIAL_H_
#define LAYOUTDB_CORE_INITIAL_H_

#include "core/problem.h"
#include "model/layout.h"
#include "util/status.h"

namespace ldb {

/// Computes the advisor's initial layout (paper Section 4.2): objects are
/// placed one at a time in decreasing order of total request rate, each
/// assigned entirely to the storage target with the lowest total assigned
/// request rate among those with enough remaining capacity.
///
/// The result is approximately rate-balanced but interference- and
/// heterogeneity-oblivious — it exists to give the NLP solver a reasonable,
/// asymmetric starting point (SEE tends to be a local optimum the solver
/// cannot escape).
///
/// \returns Infeasible if some object fits on no remaining target.
Result<Layout> InitialLayout(const LayoutProblem& problem);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_INITIAL_H_
