#include "core/problem_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>

#include "model/calibration.h"
#include "storage/disk.h"
#include "storage/ssd.h"
#include "util/table.h"
#include "util/units.h"

namespace ldb {

namespace {

/// Parses "64KiB" / "18.4GiB" / "65536" into bytes.
Result<int64_t> ParseSize(const std::string& token) {
  size_t suffix = 0;
  double value = 0;
  try {
    value = std::stod(token, &suffix);
  } catch (...) {
    return Status::InvalidArgument(StrFormat("bad size '%s'", token.c_str()));
  }
  const std::string unit = token.substr(suffix);
  double mult = 1;
  if (unit == "KiB") {
    mult = static_cast<double>(kKiB);
  } else if (unit == "MiB") {
    mult = static_cast<double>(kMiB);
  } else if (unit == "GiB") {
    mult = static_cast<double>(kGiB);
  } else if (!unit.empty() && unit != "B") {
    return Status::InvalidArgument(
        StrFormat("unknown size unit '%s'", unit.c_str()));
  }
  const double bytes = value * mult;
  if (bytes <= 0 || bytes > 9e18) {
    return Status::InvalidArgument(StrFormat("bad size '%s'", token.c_str()));
  }
  return static_cast<int64_t>(bytes);
}

Result<double> ParseDouble(const std::string& token) {
  try {
    return std::stod(token);
  } catch (...) {
    return Status::InvalidArgument(
        StrFormat("bad number '%s'", token.c_str()));
  }
}

Result<ObjectKind> ParseKind(const std::string& token) {
  if (token == "table") return ObjectKind::kTable;
  if (token == "index") return ObjectKind::kIndex;
  if (token == "temp") return ObjectKind::kTempSpace;
  if (token == "log") return ObjectKind::kLog;
  return Status::InvalidArgument(
      StrFormat("unknown object kind '%s'", token.c_str()));
}

/// Mutable state while parsing.
struct ParseState {
  ProblemIoOptions options;
  LoadedProblem out;
  std::map<std::string, const CostModel*> devices;  // device name -> model
  std::map<std::string, int> object_index;
  std::map<std::string, int> target_index;
  std::vector<std::pair<std::string, std::vector<std::string>>> pins;
  std::vector<std::pair<std::string, std::string>> separations;
  // overlap rows buffered until all objects are known
  struct OverlapEntry {
    std::string a, b;
    double value;
  };
  std::vector<OverlapEntry> overlaps;
  std::vector<std::pair<std::string, double>> self_overlaps;
  // First-occurrence line numbers of the once-only directives (0 = not
  // seen yet), for duplicate-directive error context.
  int autopilot_line = 0;
  int faults_line = 0;
  // Accumulated `scenario` directive text and its first line, parsed
  // after the whole file is read (so ranges can be checked against the
  // declared objects).
  std::string scenario_text;
  int scenario_line = 0;
};

Status HandleDevice(ParseState* st, const std::vector<std::string>& tok) {
  if (tok.size() != 3) {
    return Status::InvalidArgument("device <name> builtin:<model>");
  }
  if (st->devices.count(tok[1]) != 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate device '%s'", tok[1].c_str()));
  }
  if (tok[2].rfind("builtin:", 0) != 0) {
    return Status::InvalidArgument("device source must be builtin:<model>");
  }
  const std::string model = tok[2].substr(8);
  std::unique_ptr<BlockDevice> proto;
  if (model == "disk-15k") {
    proto = std::make_unique<DiskModel>(Scsi15kParams());
  } else if (model == "disk-7200") {
    proto = std::make_unique<DiskModel>(Nearline7200Params());
  } else if (model == "ssd") {
    proto = std::make_unique<SsdModel>(SsdParams{});
  } else {
    return Status::InvalidArgument(
        StrFormat("unknown builtin device '%s'", model.c_str()));
  }
  // Reuse a prior calibration of the same builtin model if present.
  for (const auto& [name, cm] : st->devices) {
    if (cm->device_model() == proto->model_name()) {
      st->devices[tok[1]] = cm;
      return Status::Ok();
    }
  }
  auto calibrated = CalibrateDeviceCached(*proto, st->options.calibration);
  if (!calibrated.ok()) return calibrated.status();
  st->out.owned_models.push_back(
      std::make_unique<CostModel>(std::move(calibrated).value()));
  st->devices[tok[1]] = st->out.owned_models.back().get();
  return Status::Ok();
}

Status HandleTarget(ParseState* st, const std::vector<std::string>& tok) {
  if (tok.size() < 5 || tok[3] != "capacity") {
    return Status::InvalidArgument(
        "target <name> <device> capacity <size> [members <n>] "
        "[stripe <size>]");
  }
  const auto dev = st->devices.find(tok[2]);
  if (dev == st->devices.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown device '%s'", tok[2].c_str()));
  }
  AdvisorTarget target;
  target.name = tok[1];
  target.cost_model = dev->second;
  auto capacity = ParseSize(tok[4]);
  if (!capacity.ok()) return capacity.status();
  target.capacity_bytes = *capacity;
  for (size_t a = 5; a + 1 < tok.size(); a += 2) {
    if (tok[a] == "members") {
      auto v = ParseDouble(tok[a + 1]);
      if (!v.ok() || *v < 1) {
        return Status::InvalidArgument("bad members count");
      }
      target.num_members = static_cast<int>(*v);
    } else if (tok[a] == "stripe") {
      auto v = ParseSize(tok[a + 1]);
      if (!v.ok()) return v.status();
      target.stripe_bytes = *v;
    } else if (tok[a] == "raid") {
      if (tok[a + 1] == "raid0") {
        target.raid_level = RaidLevel::kRaid0;
      } else if (tok[a + 1] == "raid1") {
        target.raid_level = RaidLevel::kRaid1;
      } else if (tok[a + 1] == "raid5") {
        target.raid_level = RaidLevel::kRaid5;
      } else {
        return Status::InvalidArgument(
            StrFormat("unknown raid level '%s'", tok[a + 1].c_str()));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown target option '%s'", tok[a].c_str()));
    }
  }
  if (st->target_index.count(target.name) != 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate target '%s'", target.name.c_str()));
  }
  st->target_index[target.name] =
      static_cast<int>(st->out.problem.targets.size());
  st->out.problem.targets.push_back(std::move(target));
  return Status::Ok();
}

Status HandleObject(ParseState* st, const std::vector<std::string>& tok) {
  if (tok.size() != 4) {
    return Status::InvalidArgument("object <name> <kind> <size>");
  }
  if (st->object_index.count(tok[1]) != 0) {
    return Status::InvalidArgument(
        StrFormat("duplicate object '%s'", tok[1].c_str()));
  }
  auto kind = ParseKind(tok[2]);
  if (!kind.ok()) return kind.status();
  auto size = ParseSize(tok[3]);
  if (!size.ok()) return size.status();
  st->object_index[tok[1]] =
      static_cast<int>(st->out.problem.object_names.size());
  st->out.problem.object_names.push_back(tok[1]);
  st->out.problem.object_kinds.push_back(*kind);
  st->out.problem.object_sizes.push_back(*size);
  st->out.problem.workloads.emplace_back();
  return Status::Ok();
}

Status HandleWorkload(ParseState* st, const std::vector<std::string>& tok) {
  if (tok.size() != 12) {
    return Status::InvalidArgument(
        "workload <object> read_rate <r> read_size <s> write_rate <r> "
        "write_size <s> run_count <q>");
  }
  const auto it = st->object_index.find(tok[1]);
  if (it == st->object_index.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown object '%s'", tok[1].c_str()));
  }
  WorkloadDesc& w =
      st->out.problem.workloads[static_cast<size_t>(it->second)];
  for (size_t a = 2; a + 1 < tok.size(); a += 2) {
    const std::string& key = tok[a];
    const std::string& value = tok[a + 1];
    if (key == "read_rate" || key == "write_rate" || key == "run_count") {
      auto v = ParseDouble(value);
      if (!v.ok()) return v.status();
      if (key == "read_rate") w.read_rate = *v;
      if (key == "write_rate") w.write_rate = *v;
      if (key == "run_count") w.run_count = *v;
    } else if (key == "read_size" || key == "write_size") {
      // Sizes of 0 are allowed when the matching rate is 0.
      double bytes = 0;
      if (value != "0") {
        auto v = ParseSize(value);
        if (!v.ok()) return v.status();
        bytes = static_cast<double>(*v);
      }
      if (key == "read_size") w.read_size = bytes;
      if (key == "write_size") w.write_size = bytes;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown workload field '%s'", key.c_str()));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<LoadedProblem> ParseProblemText(const std::string& text,
                                       const ProblemIoOptions& options) {
  ParseState st;
  st.options = options;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::vector<std::string> tok;
    std::string t;
    while (ls >> t) tok.push_back(t);
    if (tok.empty()) continue;

    Status status = Status::Ok();
    if (tok[0] == "lvm_stripe") {
      if (tok.size() != 2) {
        status = Status::InvalidArgument("lvm_stripe <size>");
      } else {
        auto v = ParseSize(tok[1]);
        if (!v.ok()) {
          status = v.status();
        } else {
          st.out.problem.lvm_stripe_bytes = *v;
        }
      }
    } else if (tok[0] == "device") {
      status = HandleDevice(&st, tok);
    } else if (tok[0] == "target") {
      status = HandleTarget(&st, tok);
    } else if (tok[0] == "object") {
      status = HandleObject(&st, tok);
    } else if (tok[0] == "workload") {
      status = HandleWorkload(&st, tok);
    } else if (tok[0] == "overlap") {
      if (tok.size() != 4) {
        status = Status::InvalidArgument("overlap <a> <b> <fraction>");
      } else {
        auto v = ParseDouble(tok[3]);
        if (!v.ok()) {
          status = v.status();
        } else {
          st.overlaps.push_back({tok[1], tok[2], *v});
        }
      }
    } else if (tok[0] == "self_overlap") {
      if (tok.size() != 3) {
        status = Status::InvalidArgument("self_overlap <object> <mean>");
      } else {
        auto v = ParseDouble(tok[2]);
        if (!v.ok()) {
          status = v.status();
        } else {
          st.self_overlaps.emplace_back(tok[1], *v);
        }
      }
    } else if (tok[0] == "pin") {
      if (tok.size() < 3) {
        status = Status::InvalidArgument("pin <object> <target>...");
      } else {
        st.pins.emplace_back(
            tok[1], std::vector<std::string>(tok.begin() + 2, tok.end()));
      }
    } else if (tok[0] == "separate") {
      if (tok.size() != 3) {
        status = Status::InvalidArgument("separate <a> <b>");
      } else {
        st.separations.emplace_back(tok[1], tok[2]);
      }
    } else if (tok[0] == "autopilot") {
      if (tok.size() < 2) {
        status = Status::InvalidArgument("autopilot <spec>");
      } else if (st.autopilot_line != 0) {
        status = Status::InvalidArgument(StrFormat(
            "duplicate autopilot directive (first at line %d)",
            st.autopilot_line));
      } else {
        // Concatenating tokens tolerates whitespace after ';'/',' while
        // keeping the spec grammar (and its clause-indexed errors) intact.
        std::string spec;
        for (size_t i = 1; i < tok.size(); ++i) spec += tok[i];
        auto cfg = ParseAutopilotSpec(spec);
        if (!cfg.ok()) {
          status = cfg.status();
        } else {
          st.autopilot_line = line_no;
          st.out.has_autopilot = true;
          st.out.autopilot = *cfg;
        }
      }
    } else if (tok[0] == "faults") {
      if (tok.size() < 2) {
        status = Status::InvalidArgument("faults <spec>");
      } else if (st.faults_line != 0) {
        status = Status::InvalidArgument(StrFormat(
            "duplicate faults directive (first at line %d)",
            st.faults_line));
      } else {
        std::string spec;
        for (size_t i = 1; i < tok.size(); ++i) spec += tok[i];
        auto plan = ParseFaultPlan(spec);
        if (!plan.ok()) {
          status = plan.status();
        } else {
          st.faults_line = line_no;
          st.out.has_faults = true;
          st.out.faults = std::move(plan).value();
        }
      }
    } else if (tok[0] == "scenario") {
      if (tok.size() < 2) {
        status = Status::InvalidArgument("scenario <spec>");
      } else {
        if (st.scenario_line == 0) st.scenario_line = line_no;
        if (!st.scenario_text.empty()) st.scenario_text += ';';
        std::string spec;
        for (size_t i = 1; i < tok.size(); ++i) spec += tok[i];
        st.scenario_text += spec;
      }
    } else {
      status = Status::InvalidArgument(
          StrFormat("unknown directive '%s'", tok[0].c_str()));
    }
    if (!status.ok()) {
      return Status::InvalidArgument(StrFormat(
          "line %d: %s", line_no, status.message().c_str()));
    }
  }

  // Resolve deferred references now that all names are known.
  LayoutProblem& p = st.out.problem;
  const size_t n = p.object_names.size();
  for (WorkloadDesc& w : p.workloads) w.overlap.assign(n, 0.0);
  auto object_id = [&](const std::string& name) -> Result<int> {
    const auto it = st.object_index.find(name);
    if (it == st.object_index.end()) {
      return Status::InvalidArgument(
          StrFormat("unknown object '%s'", name.c_str()));
    }
    return it->second;
  };
  for (const auto& o : st.overlaps) {
    auto a = object_id(o.a);
    auto b = object_id(o.b);
    if (!a.ok()) return a.status();
    if (!b.ok()) return b.status();
    p.workloads[static_cast<size_t>(*a)].overlap[static_cast<size_t>(*b)] =
        o.value;
    p.workloads[static_cast<size_t>(*b)].overlap[static_cast<size_t>(*a)] =
        o.value;
  }
  for (const auto& [name, value] : st.self_overlaps) {
    auto a = object_id(name);
    if (!a.ok()) return a.status();
    p.workloads[static_cast<size_t>(*a)].overlap[static_cast<size_t>(*a)] =
        value;
  }
  if (!st.pins.empty()) {
    p.constraints.allowed_targets.assign(n, {});
    for (const auto& [name, targets] : st.pins) {
      auto a = object_id(name);
      if (!a.ok()) return a.status();
      for (const std::string& tname : targets) {
        const auto it = st.target_index.find(tname);
        if (it == st.target_index.end()) {
          return Status::InvalidArgument(
              StrFormat("unknown target '%s'", tname.c_str()));
        }
        p.constraints.allowed_targets[static_cast<size_t>(*a)].push_back(
            it->second);
      }
    }
  }
  for (const auto& [na, nb] : st.separations) {
    auto a = object_id(na);
    auto b = object_id(nb);
    if (!a.ok()) return a.status();
    if (!b.ok()) return b.status();
    p.constraints.separate.emplace_back(*a, *b);
  }

  // The scenario accumulates across lines, so it can only be parsed (and
  // its object ranges checked) once the whole file — including all
  // `object` lines — is in. Clause-indexed errors pass through with the
  // first scenario line as context.
  if (st.scenario_line != 0) {
    auto spec = ParseScenarioSpec(st.scenario_text);
    if (spec.ok()) {
      Status valid = spec->Validate(static_cast<int>(n));
      if (!valid.ok()) spec = valid;
    }
    if (!spec.ok()) {
      return Status::InvalidArgument(
          StrFormat("scenario directive (line %d): %s", st.scenario_line,
                    spec.status().message().c_str()));
    }
    st.out.has_scenario = true;
    st.out.scenario = std::move(spec).value();
  }

  LDB_RETURN_IF_ERROR(p.Validate());
  return std::move(st.out);
}

Result<LoadedProblem> LoadProblemFile(const std::string& path,
                                      const ProblemIoOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseProblemText(buffer.str(), options);
}

std::string FormatAdvisorReport(const LayoutProblem& problem,
                                const AdvisorResult& result) {
  std::string out;
  out += "Recommended layout:\n";
  out += result.final_layout.ToString(problem.object_names);
  out += "\nEstimated per-target utilization:\n";
  TextTable table({"Stage", "per-target", "max"});
  auto add = [&](const char* stage, const std::vector<double>& mu) {
    std::string cells;
    for (double m : mu) cells += StrFormat("%.1f%% ", 100 * m);
    table.AddRow({stage, cells,
                  StrFormat("%.1f%%",
                            100 * *std::max_element(mu.begin(), mu.end()))});
  };
  add("initial", result.utilization_initial);
  add("solver", result.utilization_solver);
  add("final", result.utilization_final);
  out += table.ToString();
  out += StrFormat(
      "\nAdvisor time: %.2fs (solver %.2fs, regularization %.2fs)\n",
      result.total_seconds(), result.solver_seconds,
      result.regularization_seconds);
  return out;
}

namespace {

/// The problem-file format is whitespace-tokenized, so serialized names
/// must not contain spaces.
std::string SanitizeName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (std::isspace(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

}  // namespace

std::string FormatProblemText(const LayoutProblem& problem) {
  std::string out = "# layoutdb problem file (generated)\n";
  out += StrFormat("lvm_stripe %lld\n\n",
                   static_cast<long long>(problem.lvm_stripe_bytes));

  // Devices: one per distinct cost-model device name.
  std::vector<std::string> device_names;
  auto device_for = [&](const CostModel* cm) {
    for (const std::string& name : device_names) {
      if (name == cm->device_model()) return name;
    }
    device_names.push_back(cm->device_model());
    return device_names.back();
  };
  for (const AdvisorTarget& t : problem.targets) device_for(t.cost_model);
  for (const std::string& name : device_names) {
    out += StrFormat("device %s builtin:%s\n", name.c_str(), name.c_str());
  }
  out += "\n";
  for (const AdvisorTarget& t : problem.targets) {
    out += StrFormat("target %s %s capacity %lld members %d stripe %lld",
                     SanitizeName(t.name).c_str(),
                     t.cost_model->device_model().c_str(),
                     static_cast<long long>(t.capacity_bytes),
                     t.num_members,
                     static_cast<long long>(t.stripe_bytes));
    if (t.raid_level != RaidLevel::kRaid0) {
      out += StrFormat(" raid %s", RaidLevelName(t.raid_level));
    }
    out += "\n";
  }
  out += "\n";
  const int n = problem.num_objects();
  auto kind_name = [](ObjectKind k) {
    switch (k) {
      case ObjectKind::kTable:
        return "table";
      case ObjectKind::kIndex:
        return "index";
      case ObjectKind::kTempSpace:
        return "temp";
      case ObjectKind::kLog:
        return "log";
    }
    return "table";
  };
  for (int i = 0; i < n; ++i) {
    out += StrFormat("object %s %s %lld\n",
                     SanitizeName(problem.object_names[static_cast<size_t>(i)]).c_str(),
                     kind_name(problem.object_kinds[static_cast<size_t>(i)]),
                     static_cast<long long>(
                         problem.object_sizes[static_cast<size_t>(i)]));
  }
  out += "\n";
  for (int i = 0; i < n; ++i) {
    const WorkloadDesc& w = problem.workloads[static_cast<size_t>(i)];
    out += StrFormat(
        "workload %s read_rate %.6g read_size %.0f write_rate %.6g "
        "write_size %.0f run_count %.6g\n",
        SanitizeName(problem.object_names[static_cast<size_t>(i)]).c_str(),
        w.read_rate,
        w.read_size, w.write_rate, w.write_size, w.run_count);
  }
  out += "\n";
  // Overlaps: symmetric entries are emitted once with the mean of the two
  // directions (the format is symmetric); self-overlaps get their own line.
  for (int i = 0; i < n; ++i) {
    const WorkloadDesc& wi = problem.workloads[static_cast<size_t>(i)];
    // overlap_with() reads either representation (sparse rows have no
    // dense vector to index at fleet scale).
    if (wi.overlap_with(static_cast<size_t>(i)) > 0) {
      out += StrFormat("self_overlap %s %.6g\n",
                       SanitizeName(problem.object_names[static_cast<size_t>(i)]).c_str(),
                       wi.overlap_with(static_cast<size_t>(i)));
    }
    for (int k = i + 1; k < n; ++k) {
      const double a = wi.overlap_with(static_cast<size_t>(k));
      const double b =
          problem.workloads[static_cast<size_t>(k)].overlap_with(
              static_cast<size_t>(i));
      const double mean = (a + b) / 2.0;
      if (mean > 1e-9) {
        out += StrFormat(
            "overlap %s %s %.6g\n",
            SanitizeName(problem.object_names[static_cast<size_t>(i)]).c_str(),
            SanitizeName(problem.object_names[static_cast<size_t>(k)]).c_str(),
            mean);
      }
    }
  }
  // Constraints.
  for (size_t i = 0; i < problem.constraints.allowed_targets.size(); ++i) {
    const auto& allowed = problem.constraints.allowed_targets[i];
    if (allowed.empty()) continue;
    out += StrFormat("pin %s", SanitizeName(problem.object_names[i]).c_str());
    for (int j : allowed) {
      out += StrFormat(
          " %s",
          SanitizeName(problem.targets[static_cast<size_t>(j)].name).c_str());
    }
    out += "\n";
  }
  for (const auto& [a, b] : problem.constraints.separate) {
    out += StrFormat(
        "separate %s %s\n",
        SanitizeName(problem.object_names[static_cast<size_t>(a)]).c_str(),
        SanitizeName(problem.object_names[static_cast<size_t>(b)]).c_str());
  }
  return out;
}

std::string FormatProblemText(const LoadedProblem& loaded) {
  std::string out = FormatProblemText(loaded.problem);
  if (loaded.has_autopilot) {
    out += StrFormat("autopilot %s\n",
                     AutopilotConfigToString(loaded.autopilot).c_str());
  }
  if (loaded.has_faults) {
    out += StrFormat("faults %s\n",
                     FaultPlanToString(loaded.faults).c_str());
  }
  if (loaded.has_scenario) {
    out += StrFormat("scenario %s\n",
                     ScenarioToString(loaded.scenario).c_str());
  }
  return out;
}

}  // namespace ldb
