#include "core/baselines.h"

#include <vector>

#include "util/check.h"
#include "util/table.h"

namespace ldb {

namespace {

Status CheckTarget(const LayoutProblem& problem, int target) {
  if (target < 0 || target >= problem.num_targets()) {
    return Status::InvalidArgument(StrFormat("no target %d", target));
  }
  return Status::Ok();
}

Result<Layout> FinishBaseline(const LayoutProblem& problem, Layout layout,
                              const char* name) {
  if (!layout.SatisfiesCapacity(problem.object_sizes,
                                problem.capacities())) {
    return Status::CapacityExceeded(
        StrFormat("%s baseline does not fit the target capacities", name));
  }
  return layout;
}

}  // namespace

Layout SeeBaseline(const LayoutProblem& problem) {
  return Layout::StripeEverythingEverywhere(problem.num_objects(),
                                            problem.num_targets());
}

Result<Layout> IsolateTablesBaseline(const LayoutProblem& problem,
                                     int table_target) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  LDB_RETURN_IF_ERROR(CheckTarget(problem, table_target));
  if (problem.num_targets() < 2) {
    return Status::InvalidArgument("needs at least two targets");
  }
  std::vector<int> others;
  for (int j = 0; j < problem.num_targets(); ++j) {
    if (j != table_target) others.push_back(j);
  }
  Layout layout(problem.num_objects(), problem.num_targets());
  for (int i = 0; i < problem.num_objects(); ++i) {
    if (problem.object_kinds[static_cast<size_t>(i)] == ObjectKind::kTable) {
      layout.SetRowRegular(i, {table_target});
    } else {
      layout.SetRowRegular(i, others);
    }
  }
  return FinishBaseline(problem, std::move(layout), "isolate-tables");
}

Result<Layout> IsolateTablesIndexesBaseline(const LayoutProblem& problem,
                                            int table_target,
                                            int index_target,
                                            int temp_target) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  LDB_RETURN_IF_ERROR(CheckTarget(problem, table_target));
  LDB_RETURN_IF_ERROR(CheckTarget(problem, index_target));
  LDB_RETURN_IF_ERROR(CheckTarget(problem, temp_target));
  if (table_target == index_target || index_target == temp_target ||
      table_target == temp_target) {
    return Status::InvalidArgument("isolation targets must be distinct");
  }
  Layout layout(problem.num_objects(), problem.num_targets());
  for (int i = 0; i < problem.num_objects(); ++i) {
    switch (problem.object_kinds[static_cast<size_t>(i)]) {
      case ObjectKind::kTable:
        layout.SetRowRegular(i, {table_target});
        break;
      case ObjectKind::kIndex:
        layout.SetRowRegular(i, {index_target});
        break;
      case ObjectKind::kTempSpace:
      case ObjectKind::kLog:
        layout.SetRowRegular(i, {temp_target});
        break;
    }
  }
  return FinishBaseline(problem, std::move(layout),
                        "isolate-tables-and-indexes");
}

Result<Layout> AllOnOneTargetBaseline(const LayoutProblem& problem,
                                      int target) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  LDB_RETURN_IF_ERROR(CheckTarget(problem, target));
  Layout layout(problem.num_objects(), problem.num_targets());
  for (int i = 0; i < problem.num_objects(); ++i) {
    layout.SetRowRegular(i, {target});
  }
  return FinishBaseline(problem, std::move(layout), "all-on-one-target");
}

}  // namespace ldb
