#ifndef LAYOUTDB_CORE_JOURNAL_H_
#define LAYOUTDB_CORE_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/migrate.h"
#include "model/layout.h"
#include "model/workload.h"
#include "util/status.h"
#include "util/wal.h"

namespace ldb {

/// FNV-1a digest binding a journal to one specific migration plan: object
/// count and sizes, chunking, and the from/to placements. Recovery refuses
/// a journal whose digest disagrees with the plan being resumed — replaying
/// chunk commits against different placements would route reads at data
/// that was never copied there.
uint64_t MigrationPlanDigest(const std::vector<int64_t>& object_sizes,
                             const std::vector<std::vector<int>>& from,
                             const std::vector<std::vector<int>>& to,
                             int64_t chunk_bytes);

/// Everything recovered from a control journal on open. The journal is a
/// sequence of *segments*: each `plan` (CLI --migrate) or `intent`
/// (autopilot decision) record starts a new migration whose `m` records
/// follow; a `ckpt` record marks an adopted layout and closes the segment.
/// Recovery keeps only what a restarted process needs: the last
/// checkpoint, and the last still-open segment's migration records.
struct RecoveredControlState {
  bool torn_tail = false;  ///< a partial final record was dropped on open
  int64_t records = 0;     ///< intact records recovered

  // Last migration segment (open or terminal, cleared by a checkpoint).
  bool has_plan = false;
  uint64_t plan_digest = 0;
  MigrationJournal migration;
  bool migration_committed = false;  ///< segment ended in kCommitMigration

  // Autopilot state.
  bool has_problem = false;     ///< a problem-binding record was present
  uint64_t problem_digest = 0;  ///< ProblemStateDigest of the bound problem
  bool has_intent = false;      ///< last segment was an autopilot intent
  Layout intent_layout = Layout(1, 1);  ///< placeholder until has_intent
  WorkloadSet intent_reference;
  bool has_checkpoint = false;
  double checkpoint_time = 0.0;
  Layout checkpoint_layout = Layout(1, 1);  ///< placeholder until set
  WorkloadSet checkpoint_reference;

  // Scenario clock (last `spos` record, NOT cleared by segment
  // boundaries): the absolute scenario position a resumed run should
  // restart the player at, so a mid-scenario kill/resume continues the
  // scenario timeline instead of replaying it from zero.
  bool has_scenario_position = false;
  double scenario_position_s = 0.0;
};

/// Resolves the layout (and drift reference) a restarted autopilot should
/// deploy: a committed-but-uncheckpointed intent wins over the last
/// checkpoint (authority switched at the commit record; the crash merely
/// beat the checkpoint append), otherwise the last checkpoint. Returns
/// false when the journal pins neither — the caller falls back to the
/// problem file's layout. An *uncommitted* intent is deliberately
/// abandoned: foreground writes always land on the source until a
/// migration commits, so the pre-intent layout is consistent and the
/// restarted controller simply re-advises.
bool ResolveDeployedState(const RecoveredControlState& state, Layout* layout,
                          WorkloadSet* reference);

/// Durable control-plane journal: a JournalSink over a WalWriter, plus the
/// plan-binding / intent / checkpoint records the migration and autopilot
/// control paths append around the executor's own records.
///
/// Sync policy ("commit points synced, intra-chunk records batched"):
/// kBeginMigration and every terminal record fsync; kBeginChunk /
/// kCommitChunk / kRecopyChunk / kCommitObject ride with the next barrier.
/// Batching chunk commits is safe because the source mirrors every
/// foreground write until the migration itself commits — losing a batched
/// record only re-copies the chunk from a still-current source. Binding,
/// intent, and checkpoint records always sync.
class ControlJournal final : public JournalSink {
 public:
  /// Opens (creating or recovering) the journal at `path`. Torn tails are
  /// truncated; interior corruption is a hard error. `policy` arms
  /// deterministic crash injection on the underlying writer.
  static Result<std::unique_ptr<ControlJournal>> Open(
      const std::string& path, WalCrashPolicy policy = {});

  /// State recovered at Open() time (unchanged by later appends).
  const RecoveredControlState& recovered() const { return recovered_; }

  // ---- JournalSink (MigrationExecutor records). ----
  Status Append(const JournalRecord& record) override;
  Status Sync() override;

  /// Binds the following migration records to a plan digest. Synced.
  Status AppendPlanBinding(uint64_t digest);
  /// Binds the journal to a problem state (autopilot). Synced.
  Status AppendProblemBinding(uint64_t digest);
  /// Autopilot decision record: destination layout + the live reference it
  /// was advised for, written *before* the migration starts. Synced.
  Status AppendIntent(uint64_t plan_digest, const Layout& destination,
                      const WorkloadSet& reference);
  /// Adopted-layout checkpoint (closes the open segment). Synced.
  Status AppendCheckpoint(double time, const Layout& layout,
                          const WorkloadSet& reference);
  /// Scenario-clock record: the absolute scenario position (seconds into
  /// the scenario timeline) as of this append. Synced, so a kill at any
  /// later instant resumes within one autopilot tick of where it died.
  Status AppendScenarioPosition(double position_s);

  bool crashed() const { return writer_->crashed(); }
  int64_t file_bytes() const { return writer_->file_bytes(); }
  /// Total records in the file: recovered + appended this session.
  int64_t records_total() const {
    return writer_->recovered() + writer_->appended();
  }
  const std::string& path() const { return writer_->path(); }

 private:
  explicit ControlJournal(std::unique_ptr<WalWriter> writer)
      : writer_(std::move(writer)) {}

  std::unique_ptr<WalWriter> writer_;
  RecoveredControlState recovered_;
};

/// Read-only recovery (no writer, no truncation): parses the journal at
/// `path` into a RecoveredControlState. Used by tests and diagnostics.
Result<RecoveredControlState> RecoverControlState(const std::string& path);

/// Recovers the migration journal at `path` for MigrationExecutor::Resume,
/// verifying the recorded plan binding against `expected_digest` (pass the
/// MigrationPlanDigest of the plan being resumed). A digest disagreement —
/// the journal belongs to a different migration — is a hard
/// kFailedPrecondition with both digests in the message.
Result<MigrationJournal> RecoverMigrationJournal(const std::string& path,
                                                 uint64_t expected_digest);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_JOURNAL_H_
