#ifndef LAYOUTDB_CORE_AUTOADMIN_H_
#define LAYOUTDB_CORE_AUTOADMIN_H_

#include <vector>

#include "core/problem.h"
#include "model/layout.h"
#include "util/status.h"
#include "workload/spec.h"

namespace ldb {

/// One query's estimated I/O volume on one object, as a database query
/// optimizer would predict it from SQL (cardinality estimates).
struct QueryAccessEstimate {
  ObjectId object = kNoObject;
  double estimated_bytes = 0.0;
};

/// Optimizer-level estimate of one query: the set of objects it accesses
/// concurrently and how much I/O it is predicted to do on each.
struct QueryEstimate {
  std::vector<QueryAccessEstimate> accesses;
};

/// Options for the AutoAdmin-style advisor.
struct AutoAdminOptions {
  /// Multiplier on temp-space volume estimates, modeling the optimizer
  /// cardinality-estimation errors the paper observed for PostgreSQL on
  /// TPC-H Q18 (Section 6.6): intermediate-result sizes are mispredicted
  /// by orders of magnitude, inflating TEMP SPACE's apparent importance.
  double temp_estimate_error = 20.0;
  /// Step 2 considers spreading an object only if its total estimated
  /// volume is at least this fraction of the heaviest object's.
  double spread_threshold = 0.10;
  /// Step 2 will spread an object onto a target only if the co-access
  /// weight with objects already there is at most this fraction of the
  /// object's own weight. Zero (the default) spreads only onto targets
  /// holding no co-accessed object at all — which is why AutoAdmin keeps
  /// LINEITEM on a single target in the paper's Figure 20(b).
  double coaccess_tolerance = 0.0;
};

/// Reimplementation of the AutoAdmin relational-layout technique
/// (Agrawal, Chaudhuri, Das, Narasayya, ICDE 2003) the paper compares
/// against in Section 6.6:
///  * builds a co-access graph over objects from *query-level* estimates
///    (not measured I/O), with nodes weighted by estimated volume and
///    edges by concurrent-access volume;
///  * step 1 places each object on a single target, separating heavily
///    co-accessed objects while balancing estimated load;
///  * step 2 spreads heavy objects across additional targets for I/O
///    parallelism where that creates no significant co-location.
///
/// By construction the technique is oblivious to workload concurrency and
/// to target performance differences — the two properties whose
/// consequences Section 6.6 measures.
class AutoAdminAdvisor {
 public:
  explicit AutoAdminAdvisor(AutoAdminOptions options = {});

  /// Recommends a (regular) layout from query-level estimates.
  Result<Layout> Recommend(const LayoutProblem& problem,
                           const std::vector<QueryEstimate>& queries) const;

 private:
  AutoAdminOptions options_;
};

/// Derives query-level estimates from an OLAP spec the way an optimizer
/// would see it: per query, total bytes per object — with temp-space
/// estimates inflated by `temp_estimate_error`. Deliberately ignores the
/// spec's concurrency level (AutoAdmin sees only SQL text, so OLAP1-63 and
/// OLAP8-63 produce identical estimates).
std::vector<QueryEstimate> EstimateQueriesFromSpec(
    const OlapSpec& spec, const LayoutProblem& problem,
    double temp_estimate_error);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_AUTOADMIN_H_
