#ifndef LAYOUTDB_CORE_PROBLEM_IO_H_
#define LAYOUTDB_CORE_PROBLEM_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/problem.h"
#include "model/calibration.h"
#include "model/cost_model.h"
#include "monitor/autopilot_spec.h"
#include "scenario/scenario.h"
#include "storage/fault.h"

namespace ldb {

/// A layout problem loaded from text, owning its calibrated cost models.
struct LoadedProblem {
  LayoutProblem problem;
  std::vector<std::unique_ptr<CostModel>> owned_models;
  /// Autopilot configuration from an `autopilot` directive, when present
  /// (the file-level twin of the CLI's `--autopilot` flag, which takes
  /// precedence).
  bool has_autopilot = false;
  AutopilotConfig autopilot;
  /// Fault plan from a `faults` directive, when present (the file-level
  /// twin of the CLI's `--faults` flag, which takes precedence).
  bool has_faults = false;
  FaultPlan faults;
  /// Scenario from `scenario` directives, when present. Multiple
  /// `scenario` lines accumulate (joined with ';'), so long specs can be
  /// split clause-per-line; the accumulated spec is parsed and validated
  /// against the declared objects once the whole file is read.
  bool has_scenario = false;
  ScenarioSpec scenario;
};

/// Knobs for loading problem files.
struct ProblemIoOptions {
  /// Calibration of `device` directives: grid, parallelism, and the
  /// persistent cost-model cache (`--calibration-cache` on the CLIs).
  CalibrationOptions calibration;
};

/// Parses the layoutdb problem-file format — the input of the standalone
/// advisor CLI (the deployment mode the paper proposes in Section 8).
///
/// Line-oriented; `#` starts a comment. Sizes accept `KiB`/`MiB`/`GiB`
/// suffixes. Directives:
///
///   lvm_stripe <size>
///   device <name> builtin:<model>         # disk-15k | disk-7200 | ssd
///   target <name> <device> capacity <size> [members <n>] [stripe <size>]
///   object <name> <table|index|temp|log> <size>
///   workload <object> read_rate <r/s> read_size <size>
///            write_rate <r/s> write_size <size> run_count <q>
///   overlap <object_a> <object_b> <fraction>      # symmetric O_a[b]=O_b[a]
///   self_overlap <object> <mean concurrent requests>
///   pin <object> <target> [<target> ...]          # allowed targets
///   separate <object_a> <object_b>
///   autopilot <spec>            # ParseAutopilotSpec grammar; whitespace
///                               # between clauses is tolerated
///   faults <spec>               # ParseFaultPlan grammar, same tolerance
///   scenario <spec>             # ParseScenarioSpec grammar; repeated
///                               # lines accumulate (joined with ';')
///
/// `autopilot` and `faults` may each appear at most once (a duplicate is
/// an error naming the first occurrence's line). `device` calibrates the
/// built-in device model on first use (one calibration per distinct model
/// per load, served from the calibration cache when one is configured).
Result<LoadedProblem> ParseProblemText(const std::string& text,
                                       const ProblemIoOptions& options = {});

/// Reads and parses a problem file from disk.
Result<LoadedProblem> LoadProblemFile(const std::string& path,
                                      const ProblemIoOptions& options = {});

/// Renders an advisor result as a human-readable report (layouts,
/// per-stage utilizations, timings) for the CLI.
std::string FormatAdvisorReport(const LayoutProblem& problem,
                                const AdvisorResult& result);

/// Serializes a problem back to the problem-file format, so fitted
/// workloads can be saved, edited, and fed to the CLI. Device lines use
/// the cost models' device-model names, which round-trip for the builtin
/// models ("disk-15k", "disk-7200", "ssd"); custom cost models serialize
/// as builtin references by name and may not round-trip exactly.
std::string FormatProblemText(const LayoutProblem& problem);

/// As above, but also re-emits the loaded problem's `autopilot`, `faults`
/// and `scenario` directives, so a full LoadedProblem round-trips.
std::string FormatProblemText(const LoadedProblem& loaded);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_PROBLEM_IO_H_
