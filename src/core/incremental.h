#ifndef LAYOUTDB_CORE_INCREMENTAL_H_
#define LAYOUTDB_CORE_INCREMENTAL_H_

#include "core/problem.h"
#include "core/regularize.h"
#include "model/layout.h"
#include "util/status.h"

namespace ldb {

/// Incremental placement (paper Section 8): dynamic environments such as
/// NetApp FlexVols allocate capacity as data is written, rather than in an
/// up-front configuration step. This routine extends an existing layout
/// with newly created objects *without moving anything already placed* —
/// the advisor's models guide each allocation decision the way the paper
/// suggests they "could be used to guide the storage system's dynamic
/// allocation decisions".
///
/// `current` holds the frozen layout: rows of already-placed objects must
/// be regular and sum to 1; rows of objects to place must be all-zero.
/// New objects are placed one at a time in decreasing request-rate order,
/// each on the candidate set (singletons through full stripes over the
/// least-loaded targets) minimizing the maximum estimated utilization,
/// subject to capacity and placement constraints.
///
/// \returns the extended layout; Infeasible when a new object fits
///   nowhere without moving frozen rows (re-run the full advisor), or
///   InvalidArgument for malformed inputs.
Result<Layout> PlaceIncrementally(const LayoutProblem& problem,
                                  const Layout& current,
                                  RegularizerOptions options = {});

}  // namespace ldb

#endif  // LAYOUTDB_CORE_INCREMENTAL_H_
