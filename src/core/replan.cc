#include "core/replan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "solver/projected_gradient.h"
#include "util/check.h"
#include "util/table.h"

namespace ldb {

bool TargetHealth::AllHealthy() const {
  for (char f : failed) {
    if (f != 0) return false;
  }
  for (double d : derate) {
    if (d < 1.0 - 1e-12) return false;
  }
  return true;
}

Status TargetHealth::Validate(int num_targets) const {
  if (failed.size() != static_cast<size_t>(num_targets) ||
      derate.size() != static_cast<size_t>(num_targets)) {
    return Status::InvalidArgument("health dimensions mismatch problem");
  }
  for (size_t j = 0; j < derate.size(); ++j) {
    if (failed[j] != 0) continue;
    if (derate[j] <= 0.0 || derate[j] > 1.0) {
      return Status::InvalidArgument(StrFormat(
          "derate[%d]=%.3f outside (0,1]", static_cast<int>(j), derate[j]));
    }
  }
  return Status::Ok();
}

TargetHealth HealthFromFaultPlan(const FaultPlan& plan,
                                 const std::vector<AdvisorTarget>& targets) {
  const int m = static_cast<int>(targets.size());
  TargetHealth health = TargetHealth::Healthy(m);

  // Replay the plan in time order, tracking per-member end states; only
  // sticky conditions (duration == 0, never recovered/rebuilt) survive
  // into the health picture.
  struct MemberEnd {
    bool dead = false;
    double scale = 1.0;
    double prob = 0.0;
  };
  std::vector<std::vector<MemberEnd>> members(static_cast<size_t>(m));
  for (int j = 0; j < m; ++j) {
    members[static_cast<size_t>(j)].resize(
        static_cast<size_t>(std::max(1, targets[static_cast<size_t>(j)]
                                            .num_members)));
  }
  std::vector<const FaultSpec*> order;
  order.reserve(plan.faults.size());
  for (const FaultSpec& f : plan.faults) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const FaultSpec* a, const FaultSpec* b) {
                     return a->time < b->time;
                   });
  for (const FaultSpec* f : order) {
    if (f->target < 0 || f->target >= m) continue;
    auto& group = members[static_cast<size_t>(f->target)];
    if (f->member < 0 || f->member >= static_cast<int>(group.size())) {
      continue;
    }
    MemberEnd& me = group[static_cast<size_t>(f->member)];
    switch (f->kind) {
      case FaultKind::kFailStop:
        me.dead = true;
        break;
      case FaultKind::kLimp:
        if (f->duration <= 0.0) me.scale = f->latency_scale;
        break;
      case FaultKind::kTransient:
        if (f->duration <= 0.0) me.prob = f->error_prob;
        break;
      case FaultKind::kRebuild:
      case FaultKind::kRecover:
        me = MemberEnd{};
        break;
    }
  }

  for (int j = 0; j < m; ++j) {
    const auto& group = members[static_cast<size_t>(j)];
    const int k = static_cast<int>(group.size());
    int dead = 0;
    double alive_fraction = 0.0;  // Σ over live members of their remaining
                                  // service rate, relative to one healthy
    for (const MemberEnd& me : group) {
      if (me.dead) {
        ++dead;
        continue;
      }
      alive_fraction += (1.0 / me.scale) * (1.0 - me.prob);
    }
    const RaidLevel level = targets[static_cast<size_t>(j)].raid_level;
    bool failed = false;
    switch (level) {
      case RaidLevel::kRaid0:
        failed = dead > 0;
        break;
      case RaidLevel::kRaid1:
        failed = dead >= k;
        break;
      case RaidLevel::kRaid5:
        failed = dead >= 2;
        break;
    }
    if (failed) {
      health.MarkFailed(j);
      continue;
    }
    double derate = alive_fraction / static_cast<double>(k);
    if (level == RaidLevel::kRaid5 && dead == 1) {
      // Degraded RAID5 reconstructs reads from every survivor: roughly
      // half the group's effective throughput remains.
      derate *= 0.5;
    }
    health.derate[static_cast<size_t>(j)] =
        std::min(1.0, std::max(derate, 1e-6));
  }
  return health;
}

namespace {

/// max_j µ_j / derate_j over the cache.
double EffectiveMax(const RegularizerOptions& options,
                    const std::vector<double>& mu) {
  double out = 0.0;
  for (size_t j = 0; j < mu.size(); ++j) {
    out = std::max(out, EffectiveTargetUtilization(options, mu[j],
                                                   static_cast<int>(j)));
  }
  return out;
}

std::vector<double> ColumnUtilizations(const LayoutProblem& problem,
                                       const TargetModel& model,
                                       const Layout& layout) {
  std::vector<double> mu(static_cast<size_t>(problem.num_targets()));
  for (int j = 0; j < problem.num_targets(); ++j) {
    mu[static_cast<size_t>(j)] =
        model.TargetUtilization(problem.workloads, layout, j);
  }
  return mu;
}

/// Row i of `layout` is regular over exactly `targets` within `tol`: every
/// listed fraction equals 1/k up to tol (TargetsOf already excluded the
/// sub-tol rest).
bool RowIsRegular(const Layout& layout, int i, const std::vector<int>& targets,
                  double tol) {
  if (targets.empty()) return false;
  const double share = 1.0 / static_cast<double>(targets.size());
  for (int j : targets) {
    if (std::fabs(layout.At(i, j) - share) > tol) return false;
  }
  return true;
}

}  // namespace

MigrationPlan PriceMigration(const LayoutProblem& problem, const Layout& from,
                             const Layout& to, double zero_tolerance) {
  MigrationPlan plan;
  const int n = problem.num_objects();
  const int m = problem.num_targets();
  plan.moved_in_bytes.assign(static_cast<size_t>(n),
                             std::vector<double>(static_cast<size_t>(m),
                                                 0.0));
  for (int i = 0; i < n; ++i) {
    const double s =
        static_cast<double>(problem.object_sizes[static_cast<size_t>(i)]);
    // Regular rows are priced on the exact 1/k fractions their target sets
    // imply; fraction values within zero_tolerance of 1/k are solver noise,
    // not movement.
    const std::vector<int> from_targets = from.TargetsOf(i, zero_tolerance);
    const std::vector<int> to_targets = to.TargetsOf(i, zero_tolerance);
    const bool regular =
        RowIsRegular(from, i, from_targets, zero_tolerance) &&
        RowIsRegular(to, i, to_targets, zero_tolerance);
    bool moved = false;
    if (regular) {
      if (from_targets != to_targets) {
        moved = true;
        const double to_fraction =
            1.0 / static_cast<double>(to_targets.size());
        const double from_fraction =
            1.0 / static_cast<double>(from_targets.size());
        for (int j : to_targets) {
          const bool was_on =
              std::find(from_targets.begin(), from_targets.end(), j) !=
              from_targets.end();
          const double delta = to_fraction - (was_on ? from_fraction : 0.0);
          if (delta > 0.0) {
            const double bytes = delta * s;
            plan.moved_in_bytes[static_cast<size_t>(i)]
                               [static_cast<size_t>(j)] = bytes;
            plan.total_bytes += bytes;
          }
        }
      }
    } else {
      for (int j = 0; j < m; ++j) {
        const double delta = to.At(i, j) - from.At(i, j);
        if (delta > zero_tolerance) {
          const double bytes = delta * s;
          plan.moved_in_bytes[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              bytes;
          plan.total_bytes += bytes;
        }
        if (std::fabs(delta) > zero_tolerance) moved = true;
      }
    }
    if (moved) ++plan.objects_moved;
  }
  return plan;
}

Result<ReplanResult> ReplanAfterFailure(const LayoutProblem& problem,
                                        const Layout& current,
                                        const TargetHealth& health,
                                        const ReplanOptions& options) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  const int n = problem.num_objects();
  const int m = problem.num_targets();
  if (current.num_objects() != n || current.num_targets() != m) {
    return Status::InvalidArgument("layout dimensions mismatch problem");
  }
  LDB_RETURN_IF_ERROR(health.Validate(m));
  if (!current.SatisfiesIntegrity()) {
    return Status::InvalidArgument("current layout rows must sum to 1");
  }
  if (!current.IsRegular()) {
    return Status::InvalidArgument("current layout must be regular");
  }

  const TargetModel model = problem.MakeTargetModel();
  const double tol = options.regularize.zero_tolerance;

  // Healthy input: guaranteed no-op — the differential baseline.
  if (health.AllHealthy()) {
    ReplanResult result;
    result.layout = current;
    result.migration = PriceMigration(problem, current, current, tol);
    const std::vector<double> mu = ColumnUtilizations(problem, model, current);
    result.max_utilization = *std::max_element(mu.begin(), mu.end());
    result.previous_max_utilization = result.max_utilization;
    result.replanned = false;
    return result;
  }

  // The degraded problem: same objects and targets, but every object's
  // allowed-target set excludes failed targets, and candidate ranking is
  // derated. Keeping failed targets in the matrix (at zero) keeps
  // dimensions stable for the caller.
  std::vector<int> alive;
  for (int j = 0; j < m; ++j) {
    if (!health.IsFailed(j)) alive.push_back(j);
  }
  if (alive.empty()) {
    return Status::Infeasible("every target failed; nothing to replan onto");
  }
  {
    int64_t total_size = 0;
    for (int64_t s : problem.object_sizes) total_size += s;
    int64_t alive_capacity = 0;
    for (int j : alive) {
      alive_capacity +=
          problem.targets[static_cast<size_t>(j)].capacity_bytes;
    }
    if (total_size > alive_capacity) {
      return Status::Infeasible(
          StrFormat("surviving capacity %lld < data size %lld",
                    static_cast<long long>(alive_capacity),
                    static_cast<long long>(total_size)));
    }
  }
  LayoutProblem degraded = problem;
  {
    std::vector<std::vector<int>> allowed(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::vector<int>& base = problem.constraints.AllowedFor(i);
      std::vector<int>& out = allowed[static_cast<size_t>(i)];
      for (int j : alive) {
        if (!base.empty() &&
            std::find(base.begin(), base.end(), j) == base.end()) {
          continue;
        }
        out.push_back(j);
      }
      if (out.empty()) {
        return Status::Infeasible(StrFormat(
            "object %s has no surviving allowed target",
            problem.object_names[static_cast<size_t>(i)].c_str()));
      }
    }
    degraded.constraints.allowed_targets = std::move(allowed);
  }
  RegularizerOptions ropts = options.regularize;
  ropts.target_derate = health.derate;
  for (int j = 0; j < m; ++j) {
    if (health.IsFailed(j)) ropts.target_derate[static_cast<size_t>(j)] = 0.0;
  }

  // Partition rows: displaced (mass on a failed target — must move),
  // eligible (mass on a derated target — may move if it helps), frozen
  // (everything else — never moves).
  std::vector<int> displaced;
  std::vector<char> is_displaced(static_cast<size_t>(n), 0);
  std::vector<char> is_eligible(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < m; ++j) {
      if (current.At(i, j) <= tol) continue;
      if (health.IsFailed(j)) {
        is_displaced[static_cast<size_t>(i)] = 1;
      } else if (health.derate[static_cast<size_t>(j)] < 1.0 - 1e-12) {
        is_eligible[static_cast<size_t>(i)] = 1;
      }
    }
    if (is_displaced[static_cast<size_t>(i)]) displaced.push_back(i);
  }

  Layout layout = current;
  for (int i : displaced) {
    for (int j = 0; j < m; ++j) layout.Set(i, j, 0.0);
  }

  // Displaced objects re-enter by decreasing request rate (the ordering
  // the initial-layout heuristic and PlaceIncrementally use).
  std::stable_sort(displaced.begin(), displaced.end(), [&](int a, int b) {
    return problem.workloads[static_cast<size_t>(a)].total_rate() >
           problem.workloads[static_cast<size_t>(b)].total_rate();
  });

  std::vector<double> mu = ColumnUtilizations(degraded, model, layout);
  for (int i : displaced) {
    RegularCandidateChoice choice =
        BestRegularRowForObject(degraded, model, ropts, &layout, i, mu);
    if (!choice.found) {
      return Status::Infeasible(StrFormat(
          "no surviving placement for object %s; re-run the full advisor",
          problem.object_names[static_cast<size_t>(i)].c_str()));
    }
    layout.SetRowRegular(i, choice.targets);
    mu = std::move(choice.mu);
  }

  // Refinement sweeps over movable rows only: displaced rows may settle
  // better once all are placed, and rows on derated targets may escape
  // them. Frozen rows are never revisited.
  std::vector<int> movable;
  for (int i = 0; i < n; ++i) {
    if (is_displaced[static_cast<size_t>(i)] ||
        is_eligible[static_cast<size_t>(i)]) {
      movable.push_back(i);
    }
  }
  for (int pass = 0; pass < ropts.refinement_passes; ++pass) {
    bool improved = false;
    for (int i : movable) {
      const double incumbent = EffectiveMax(ropts, mu);
      RegularCandidateChoice choice =
          BestRegularRowForObject(degraded, model, ropts, &layout, i, mu);
      if (choice.found &&
          choice.objective < incumbent - options.improvement_epsilon &&
          layout.TargetsOf(i) != choice.targets) {
        layout.SetRowRegular(i, choice.targets);
        mu = std::move(choice.mu);
        improved = true;
      }
    }
    if (!improved) break;
  }

  // Warm-started solver polish: re-optimize the displaced rows only (all
  // surviving rows frozen), under the derated objective, then
  // re-regularize the displaced rows. Kept only on strict improvement.
  if (options.solver_polish && !displaced.empty() &&
      displaced.size() < static_cast<size_t>(n)) {
    LayoutNlpProblem nlp = degraded.MakeNlp(&model);
    nlp.frozen_rows.assign(static_cast<size_t>(n), 1);
    for (int i : displaced) nlp.frozen_rows[static_cast<size_t>(i)] = 0;
    // Derate-aware objective; the incremental column caches and the
    // analytic gradient engine both price raw µ_j, so column evaluators
    // are disabled for the (small) polish solve — the solver probes
    // make_column_eval and falls back to black-box finite differences.
    auto base = nlp.target_utilization;
    const std::vector<double> derate = ropts.target_derate;
    nlp.target_utilization = [base, derate](const Layout& l, int j) {
      const double d = derate[static_cast<size_t>(j)];
      if (d <= 0.0) return 0.0;  // failed: constraints keep it empty
      const double u = base(l, j);
      return d >= 1.0 ? u : u / d;
    };
    nlp.make_column_eval = nullptr;

    ProjectedGradientSolver solver(options.solver);
    Result<SolverResult> polished = solver.Solve(nlp, layout);
    if (polished.ok()) {
      Layout candidate = polished->layout;
      std::vector<double> cmu = ColumnUtilizations(degraded, model, candidate);
      bool regularized = true;
      for (int i : displaced) {
        RegularCandidateChoice choice = BestRegularRowForObject(
            degraded, model, ropts, &candidate, i, cmu);
        if (!choice.found) {
          regularized = false;
          break;
        }
        candidate.SetRowRegular(i, choice.targets);
        cmu = std::move(choice.mu);
      }
      if (regularized &&
          EffectiveMax(ropts, cmu) <
              EffectiveMax(ropts, mu) - options.improvement_epsilon &&
          candidate.SatisfiesCapacity(problem.object_sizes,
                                      problem.capacities()) &&
          degraded.constraints.SatisfiedBy(candidate)) {
        layout = std::move(candidate);
        mu = std::move(cmu);
      }
    }
  }

  // Structural guarantees the property tests lean on.
  LDB_CHECK(layout.SatisfiesIntegrity());
  LDB_CHECK(layout.IsRegular());
  LDB_CHECK(
      layout.SatisfiesCapacity(problem.object_sizes, problem.capacities()));
  LDB_CHECK(degraded.constraints.SatisfiedBy(layout));
  for (int i = 0; i < n; ++i) {
    if (!is_displaced[static_cast<size_t>(i)] &&
        !is_eligible[static_cast<size_t>(i)]) {
      for (int j = 0; j < m; ++j) {
        LDB_CHECK_MSG(layout.At(i, j) == current.At(i, j),
                      "frozen row %d moved", i);
      }
    }
    for (int j = 0; j < m; ++j) {
      if (health.IsFailed(j)) LDB_CHECK_MSG(layout.At(i, j) == 0.0,
                                            "mass left on failed target %d",
                                            j);
    }
  }

  ReplanResult result;
  result.layout = layout;
  result.migration = PriceMigration(problem, current, layout, tol);
  result.max_utilization = EffectiveMax(ropts, mu);
  {
    const std::vector<double> prev_mu =
        ColumnUtilizations(problem, model, current);
    double prev = 0.0;
    bool on_failed = false;
    for (int j = 0; j < m; ++j) {
      if (health.IsFailed(j)) {
        for (int i = 0; i < n; ++i) {
          if (current.At(i, j) > tol) on_failed = true;
        }
        continue;
      }
      prev = std::max(prev, EffectiveTargetUtilization(
                                ropts, prev_mu[static_cast<size_t>(j)], j));
    }
    result.previous_max_utilization =
        on_failed ? std::numeric_limits<double>::infinity() : prev;
  }
  result.replanned = true;
  return result;
}

}  // namespace ldb
