#include "core/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "core/initial.h"
#include "solver/multistart.h"
#include "solver/projected_gradient.h"
#include "util/check.h"
#include "util/random.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace ldb {

namespace {

/// Layout entries below this are "object not on target" for membership
/// accounting (matches the model's presence filter scale).
constexpr double kMassEpsilon = 1e-12;

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Union-find with deterministic roots: the smaller index always wins, so
/// cluster identities depend only on the merge sequence, never on rank
/// heuristics.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  /// Merges the trees of a and b; the smaller root becomes the root.
  int Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return a;
    if (b < a) std::swap(a, b);
    parent_[static_cast<size_t>(b)] = a;
    return a;
  }

 private:
  std::vector<int> parent_;
};

/// One undirected co-access edge (a < b).
struct CoEdge {
  int a = 0;
  int b = 0;
  double w = 0.0;
};

/// Builds the rate-weighted co-access graph from the overlap rows (sparse
/// or dense): edge weight a<->b accumulates O_a[b]·rate_a + O_b[a]·rate_b —
/// the interference both directions would price if the two objects shared a
/// target. Same graph family the AutoAdmin baseline separates on, here used
/// to keep co-accessed objects *together* so their coupling stays inside
/// one shard's solve.
std::vector<CoEdge> BuildCoAccessEdges(const WorkloadSet& workloads) {
  const int n = static_cast<int>(workloads.size());
  std::vector<CoEdge> directed;
  for (int i = 0; i < n; ++i) {
    const WorkloadDesc& w = workloads[static_cast<size_t>(i)];
    const double rate = w.total_rate();
    auto add = [&](int k, double v) {
      if (k == i || v <= 0.0) return;
      directed.push_back(CoEdge{std::min(i, k), std::max(i, k), v * rate});
    };
    if (w.has_sparse_overlap()) {
      for (size_t s = 0; s < w.overlap_index.size(); ++s) {
        add(w.overlap_index[s], w.overlap_value[s]);
      }
    } else {
      for (size_t k = 0; k < w.overlap.size(); ++k) {
        add(static_cast<int>(k), w.overlap[k]);
      }
    }
  }
  std::sort(directed.begin(), directed.end(),
            [](const CoEdge& x, const CoEdge& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  std::vector<CoEdge> edges;
  for (const CoEdge& e : directed) {
    if (!edges.empty() && edges.back().a == e.a && edges.back().b == e.b) {
      edges.back().w += e.w;
    } else {
      edges.push_back(e);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const CoEdge& x, const CoEdge& y) {
    if (x.w != y.w) return x.w > y.w;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return edges;
}

/// Restriction of `full` to the given objects and targets, with overlap
/// rows remapped to shard-local indices. Cross-shard overlap entries are
/// dropped — exact, not an approximation, because interference only couples
/// objects that share a target and the callers only ever pair objects with
/// the target set that holds all their mass.
LayoutProblem SubProblem(const LayoutProblem& full,
                         const std::vector<int>& objects,
                         const std::vector<int>& targets) {
  const size_t n = full.workloads.size();
  std::vector<int> inv(n, -1);
  for (size_t pos = 0; pos < objects.size(); ++pos) {
    inv[static_cast<size_t>(objects[pos])] = static_cast<int>(pos);
  }
  LayoutProblem sub;
  sub.lvm_stripe_bytes = full.lvm_stripe_bytes;
  const size_t ns = objects.size();
  sub.object_names.reserve(ns);
  sub.object_sizes.reserve(ns);
  sub.object_kinds.reserve(ns);
  sub.workloads.reserve(ns);
  for (const int o : objects) {
    const size_t uo = static_cast<size_t>(o);
    sub.object_names.push_back(full.object_names[uo]);
    sub.object_sizes.push_back(full.object_sizes[uo]);
    sub.object_kinds.push_back(full.object_kinds[uo]);
    WorkloadDesc w = full.workloads[uo];
    if (w.has_sparse_overlap()) {
      std::vector<int32_t> idx;
      std::vector<double> val;
      idx.reserve(w.overlap_index.size());
      val.reserve(w.overlap_value.size());
      // `objects` is ascending, so the remap preserves sort order.
      for (size_t s = 0; s < w.overlap_index.size(); ++s) {
        const int t = inv[static_cast<size_t>(w.overlap_index[s])];
        if (t < 0) continue;
        idx.push_back(static_cast<int32_t>(t));
        val.push_back(w.overlap_value[s]);
      }
      w.overlap_index = std::move(idx);
      w.overlap_value = std::move(val);
    }
    if (!w.overlap.empty()) {
      std::vector<double> dense(ns, 0.0);
      for (size_t k = 0; k < ns; ++k) {
        dense[k] = w.overlap[static_cast<size_t>(objects[k])];
      }
      w.overlap = std::move(dense);
    }
    sub.workloads.push_back(std::move(w));
  }
  sub.targets.reserve(targets.size());
  for (const int t : targets) {
    sub.targets.push_back(full.targets[static_cast<size_t>(t)]);
  }
  return sub;
}

/// Accumulates one inner solve's effort counters into the fleet result.
void AccumulateEffort(const SolverResult& r, FleetResult* out) {
  out->iterations += r.iterations;
  out->objective_evaluations += r.objective_evaluations;
  out->incremental_evaluations += r.incremental_evaluations;
  out->gradient_evaluations += r.gradient_evaluations;
  out->interp_queries += r.interp_queries;
}

}  // namespace

FleetSolver::FleetSolver(FleetOptions options) : options_(options) {
  LDB_CHECK_GE(options_.shard_target_objects, 1);
  LDB_CHECK_GE(options_.min_shard_targets, 1);
  LDB_CHECK_GE(options_.coordination_partners, 1);
  LDB_CHECK_GE(options_.max_coordination_rounds, 0);
  LDB_CHECK_GE(options_.gain_tolerance, 0.0);
  LDB_CHECK_GE(options_.coordination_free_rows, 1);
  LDB_CHECK_GE(options_.extra_random_seeds, 0);
}

Result<FleetResult> FleetSolver::Solve(const LayoutProblem& problem) const {
  LDB_RETURN_IF_ERROR(problem.Validate());
  if (!problem.constraints.empty()) {
    return Status::InvalidArgument(
        "fleet solver does not support placement constraints; use the flat "
        "advisor");
  }
  const int n = problem.num_objects();
  const int m = problem.num_targets();

  FleetResult out;
  auto t0 = std::chrono::steady_clock::now();

  // ---- Phase 1: cluster objects and partition targets ----

  std::vector<double> demand(static_cast<size_t>(n));
  double total_demand = 0.0;
  for (int i = 0; i < n; ++i) {
    demand[static_cast<size_t>(i)] =
        problem.workloads[static_cast<size_t>(i)].total_rate();
    total_demand += demand[static_cast<size_t>(i)];
  }

  int num_shards = (n + options_.shard_target_objects - 1) /
                   options_.shard_target_objects;
  num_shards = std::min(num_shards, std::max(1, m / options_.min_shard_targets));
  num_shards = std::max(1, std::min(num_shards, n));

  // Kruskal-style greedy merge along the heaviest co-access edges, capped
  // so no cluster exceeds the mean shard size or hogs the demand budget.
  UnionFind uf(n);
  std::vector<int> csize(static_cast<size_t>(n), 1);
  std::vector<double> cdemand = demand;
  const int cap_objects = (n + num_shards - 1) / num_shards;
  const double cap_demand =
      num_shards > 1 ? 1.25 * total_demand / num_shards
                     : std::numeric_limits<double>::infinity();
  for (const CoEdge& e : BuildCoAccessEdges(problem.workloads)) {
    const int ra = uf.Find(e.a);
    const int rb = uf.Find(e.b);
    if (ra == rb) continue;
    if (csize[static_cast<size_t>(ra)] + csize[static_cast<size_t>(rb)] >
        cap_objects) {
      continue;
    }
    if (cdemand[static_cast<size_t>(ra)] + cdemand[static_cast<size_t>(rb)] >
        cap_demand) {
      continue;
    }
    const int r = uf.Union(ra, rb);
    const int other = r == ra ? rb : ra;
    csize[static_cast<size_t>(r)] += csize[static_cast<size_t>(other)];
    cdemand[static_cast<size_t>(r)] += cdemand[static_cast<size_t>(other)];
  }

  // Collect clusters (objects ascending per root) and LPT-pack them into
  // shards by demand: heaviest cluster first, always into the currently
  // lightest shard. Every tie breaks toward the lower index.
  std::vector<std::vector<int>> members(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    members[static_cast<size_t>(uf.Find(i))].push_back(i);
  }
  std::vector<int> roots;
  for (int r = 0; r < n; ++r) {
    if (!members[static_cast<size_t>(r)].empty()) roots.push_back(r);
  }
  std::sort(roots.begin(), roots.end(), [&](int a, int b) {
    const double da = cdemand[static_cast<size_t>(a)];
    const double db = cdemand[static_cast<size_t>(b)];
    if (da != db) return da > db;
    return a < b;
  });
  num_shards = std::min(num_shards, static_cast<int>(roots.size()));
  std::vector<FleetShardInfo> shards(static_cast<size_t>(num_shards));
  std::vector<int64_t> shard_bytes(static_cast<size_t>(num_shards), 0);
  for (const int r : roots) {
    size_t best = 0;
    for (size_t s = 1; s < shards.size(); ++s) {
      if (shards[s].demand < shards[best].demand) best = s;
    }
    FleetShardInfo& sh = shards[best];
    sh.demand += cdemand[static_cast<size_t>(r)];
    for (const int o : members[static_cast<size_t>(r)]) {
      sh.objects.push_back(o);
      shard_bytes[best] += problem.object_sizes[static_cast<size_t>(o)];
    }
  }
  for (FleetShardInfo& sh : shards) {
    std::sort(sh.objects.begin(), sh.objects.end());
  }

  // Partition targets: byte feasibility first, then the minimum target
  // count, then proportionality to demand. Targets are dealt in capacity
  // order so the big devices settle the big deficits.
  const std::vector<int64_t> capacities = problem.capacities();
  double total_capacity = 0.0;
  for (const int64_t c : capacities) total_capacity += static_cast<double>(c);
  std::vector<int> target_order(static_cast<size_t>(m));
  std::iota(target_order.begin(), target_order.end(), 0);
  std::sort(target_order.begin(), target_order.end(), [&](int a, int b) {
    if (capacities[static_cast<size_t>(a)] !=
        capacities[static_cast<size_t>(b)]) {
      return capacities[static_cast<size_t>(a)] >
             capacities[static_cast<size_t>(b)];
    }
    return a < b;
  });
  std::vector<int64_t> shard_cap(shards.size(), 0);
  for (const int t : target_order) {
    int best = -1;
    int best_stage = -1;
    double best_value = 0.0;
    for (size_t s = 0; s < shards.size(); ++s) {
      const double deficit =
          static_cast<double>(shard_bytes[s] - shard_cap[s]);
      int stage;
      double value;
      if (deficit > 0.0) {
        stage = 2;
        value = deficit;
      } else if (static_cast<int>(shards[s].targets.size()) <
                 options_.min_shard_targets) {
        stage = 1;
        value = static_cast<double>(options_.min_shard_targets) -
                static_cast<double>(shards[s].targets.size());
      } else {
        stage = 0;
        value = (total_demand > 0.0 ? shards[s].demand / total_demand : 0.0) -
                (total_capacity > 0.0
                     ? static_cast<double>(shard_cap[s]) / total_capacity
                     : 0.0);
      }
      if (stage > best_stage ||
          (stage == best_stage && value > best_value)) {
        best = static_cast<int>(s);
        best_stage = stage;
        best_value = value;
      }
    }
    shards[static_cast<size_t>(best)].targets.push_back(t);
    shard_cap[static_cast<size_t>(best)] += capacities[static_cast<size_t>(t)];
  }
  for (FleetShardInfo& sh : shards) {
    std::sort(sh.targets.begin(), sh.targets.end());
  }

  // Spill pass: a shard whose clusters outweigh its assigned capacity
  // sheds its smallest objects to the shard with the most spare bytes.
  for (int guard = 0; guard < n; ++guard) {
    int worst = -1;
    int64_t worst_deficit = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      const int64_t deficit = shard_bytes[s] - shard_cap[s];
      if (deficit > worst_deficit) {
        worst = static_cast<int>(s);
        worst_deficit = deficit;
      }
    }
    if (worst < 0) break;
    int roomiest = -1;
    int64_t spare = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      if (static_cast<int>(s) == worst) continue;
      const int64_t sp = shard_cap[s] - shard_bytes[s];
      if (roomiest < 0 || sp > spare) {
        roomiest = static_cast<int>(s);
        spare = sp;
      }
    }
    FleetShardInfo& from = shards[static_cast<size_t>(worst)];
    int move_pos = -1;
    int64_t move_size = 0;
    for (size_t p = 0; p < from.objects.size(); ++p) {
      const int64_t sz =
          problem.object_sizes[static_cast<size_t>(from.objects[p])];
      if (sz > spare) continue;
      if (move_pos < 0 || sz < move_size) {
        move_pos = static_cast<int>(p);
        move_size = sz;
      }
    }
    if (roomiest < 0 || move_pos < 0) {
      return Status::Infeasible(
          StrFormat("fleet target partition infeasible: shard %d needs %lld "
                    "bytes over its capacity and no object fits elsewhere",
                    worst, static_cast<long long>(worst_deficit)));
    }
    const int obj = from.objects[static_cast<size_t>(move_pos)];
    from.objects.erase(from.objects.begin() + move_pos);
    from.demand -= demand[static_cast<size_t>(obj)];
    shard_bytes[static_cast<size_t>(worst)] -= move_size;
    FleetShardInfo& to = shards[static_cast<size_t>(roomiest)];
    to.objects.insert(
        std::lower_bound(to.objects.begin(), to.objects.end(), obj), obj);
    to.demand += demand[static_cast<size_t>(obj)];
    shard_bytes[static_cast<size_t>(roomiest)] += move_size;
  }

  out.cluster_seconds = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();

  // ---- Phase 2: independent shard solves on the pool ----

  SolverOptions inner = options_.solver;
  inner.num_threads = 1;  // shard-level parallelism only: see header
  struct ShardSlot {
    Status status;
    SolverResult result;
  };
  std::vector<ShardSlot> slots(shards.size());
  ThreadPool pool(ThreadPool::EffectiveThreads(options_.num_threads));
  const FleetOptions& opts = options_;
  pool.ParallelFor(
      static_cast<int64_t>(shards.size()), [&](int, int64_t s) {
        const FleetShardInfo& sh = shards[static_cast<size_t>(s)];
        ShardSlot& slot = slots[static_cast<size_t>(s)];
        if (sh.objects.empty()) {
          slot.result.feasible = true;
          return;
        }
        const LayoutProblem sub =
            SubProblem(problem, sh.objects, sh.targets);
        const TargetModel model = sub.MakeTargetModel();
        const LayoutNlpProblem nlp = sub.MakeNlp(&model);
        Result<Layout> init = InitialLayout(sub);
        Layout seed = init.ok()
                          ? std::move(init).value()
                          : Layout::StripeEverythingEverywhere(
                                sub.num_objects(), sub.num_targets());
        std::vector<Layout> seeds;
        seeds.push_back(std::move(seed));
        if (opts.extra_random_seeds > 0) {
          Rng rng(MixSeed(opts.seed, static_cast<uint64_t>(s)));
          const std::vector<Layout> extra = MultiStartSolver::RandomSeeds(
              nlp, opts.extra_random_seeds, &rng);
          seeds.insert(seeds.end(), extra.begin(), extra.end());
        }
        const MultiStartSolver solver(inner);
        Result<SolverResult> solved = solver.Solve(nlp, seeds);
        if (!solved.ok()) {
          slot.status = solved.status();
          return;
        }
        slot.result = std::move(solved).value();
      });
  for (size_t s = 0; s < slots.size(); ++s) {
    if (!slots[s].status.ok()) return slots[s].status;
  }

  Layout layout(n, m);
  for (size_t s = 0; s < shards.size(); ++s) {
    const FleetShardInfo& sh = shards[s];
    if (sh.objects.empty()) continue;
    const Layout& sub = slots[s].result.layout;
    for (size_t pi = 0; pi < sh.objects.size(); ++pi) {
      for (size_t pj = 0; pj < sh.targets.size(); ++pj) {
        layout.Set(sh.objects[pi], sh.targets[pj],
                   sub.At(static_cast<int>(pi), static_cast<int>(pj)));
      }
    }
    AccumulateEffort(slots[s].result, &out);
  }
  out.shard_solve_seconds = SecondsSince(t0);
  t0 = std::chrono::steady_clock::now();

  // ---- Phase 3: cross-shard coordination ----

  const TargetModel model = problem.MakeTargetModel();
  std::vector<int> owner(static_cast<size_t>(m), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    for (const int t : shards[s].targets) {
      owner[static_cast<size_t>(t)] = static_cast<int>(s);
    }
  }

  std::vector<double> mu_ij;
  for (int round = 0; round < options_.max_coordination_rounds &&
                      shards.size() > 1;
       ++round) {
    const std::vector<double> mu =
        model.Utilizations(problem.workloads, layout, &mu_ij);
    int hot_target = 0;
    for (int j = 1; j < m; ++j) {
      if (mu[static_cast<size_t>(j)] > mu[static_cast<size_t>(hot_target)]) {
        hot_target = j;
      }
    }
    const double cur_max = mu[static_cast<size_t>(hot_target)];
    if (cur_max <= 0.0) break;
    const int hot_shard = owner[static_cast<size_t>(hot_target)];

    // Partner shards, coolest own-max first.
    std::vector<double> shard_max(shards.size(), 0.0);
    for (int j = 0; j < m; ++j) {
      double& sm = shard_max[static_cast<size_t>(owner[static_cast<size_t>(j)])];
      sm = std::max(sm, mu[static_cast<size_t>(j)]);
    }
    std::vector<int> partners;
    for (size_t s = 0; s < shards.size(); ++s) {
      if (static_cast<int>(s) != hot_shard) {
        partners.push_back(static_cast<int>(s));
      }
    }
    std::sort(partners.begin(), partners.end(), [&](int a, int b) {
      if (shard_max[static_cast<size_t>(a)] !=
          shard_max[static_cast<size_t>(b)]) {
        return shard_max[static_cast<size_t>(a)] <
               shard_max[static_cast<size_t>(b)];
      }
      return a < b;
    });
    if (partners.size() > static_cast<size_t>(options_.coordination_partners)) {
      partners.resize(static_cast<size_t>(options_.coordination_partners));
    }

    double best_gain = 0.0;
    Layout best_layout(1, 1);
    bool have_best = false;
    for (const int partner : partners) {
      // The pair subproblem: both shards' targets, every object with mass
      // on them. Objects whose mass extends outside the pair (straddlers
      // from earlier rounds) are frozen — their fixed fractions still
      // price into the pair's columns, but only fully-contained rows move.
      std::vector<int> pair_targets;
      for (const int t : shards[static_cast<size_t>(hot_shard)].targets) {
        pair_targets.push_back(t);
      }
      for (const int t : shards[static_cast<size_t>(partner)].targets) {
        pair_targets.push_back(t);
      }
      std::sort(pair_targets.begin(), pair_targets.end());
      std::vector<char> in_pair(static_cast<size_t>(m), 0);
      for (const int t : pair_targets) in_pair[static_cast<size_t>(t)] = 1;

      std::vector<int> pair_objects;
      std::vector<char> movable;
      std::vector<double> contribution;
      for (int i = 0; i < n; ++i) {
        double inside = 0.0;
        double contrib = 0.0;
        for (const int t : pair_targets) {
          inside += std::max(0.0, layout.At(i, t));
          contrib += mu_ij[static_cast<size_t>(i) * static_cast<size_t>(m) +
                           static_cast<size_t>(t)];
        }
        if (inside <= kMassEpsilon) continue;
        const double outside =
            std::max(0.0, layout.RowSum(i) - inside);
        pair_objects.push_back(i);
        movable.push_back(outside <= 1e-9 ? 1 : 0);
        contribution.push_back(contrib);
      }
      if (pair_objects.empty()) continue;

      // Free the top contributors on the pair's targets; freeze the rest.
      std::vector<int> order(pair_objects.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        if (contribution[static_cast<size_t>(a)] !=
            contribution[static_cast<size_t>(b)]) {
          return contribution[static_cast<size_t>(a)] >
                 contribution[static_cast<size_t>(b)];
        }
        return pair_objects[static_cast<size_t>(a)] <
               pair_objects[static_cast<size_t>(b)];
      });
      std::vector<char> frozen(pair_objects.size(), 1);
      int freed = 0;
      for (const int p : order) {
        if (freed >= options_.coordination_free_rows) break;
        if (!movable[static_cast<size_t>(p)]) continue;
        frozen[static_cast<size_t>(p)] = 0;
        ++freed;
      }
      if (freed == 0) continue;

      LayoutProblem sub = SubProblem(problem, pair_objects, pair_targets);
      const TargetModel sub_model = sub.MakeTargetModel();
      LayoutNlpProblem nlp = sub.MakeNlp(&sub_model);
      nlp.frozen_rows.assign(frozen.begin(), frozen.end());
      Layout warm(static_cast<int>(pair_objects.size()),
                  static_cast<int>(pair_targets.size()));
      for (size_t pi = 0; pi < pair_objects.size(); ++pi) {
        for (size_t pj = 0; pj < pair_targets.size(); ++pj) {
          warm.Set(static_cast<int>(pi), static_cast<int>(pj),
                   std::max(0.0, layout.At(pair_objects[pi],
                                           pair_targets[pj])));
        }
      }
      // Two seeds: the warm current layout, and a fresh rate-balance
      // initial of the pair subproblem (frozen rows overwritten from the
      // warm layout, which the solver takes verbatim) so the polish can
      // leave the sharded solution's basin when a better one exists.
      std::vector<Layout> seeds;
      seeds.push_back(warm);
      Result<Layout> fresh = InitialLayout(sub);
      if (fresh.ok()) {
        Layout f = std::move(fresh).value();
        for (size_t pi = 0; pi < pair_objects.size(); ++pi) {
          if (!frozen[pi]) continue;
          for (size_t pj = 0; pj < pair_targets.size(); ++pj) {
            f.Set(static_cast<int>(pi), static_cast<int>(pj),
                  warm.At(static_cast<int>(pi), static_cast<int>(pj)));
          }
        }
        seeds.push_back(std::move(f));
      }
      const MultiStartSolver solver(inner);
      Result<SolverResult> polished = solver.Solve(nlp, seeds);
      if (!polished.ok()) continue;
      AccumulateEffort(*polished, &out);

      Layout candidate = layout;
      for (size_t pi = 0; pi < pair_objects.size(); ++pi) {
        for (size_t pj = 0; pj < pair_targets.size(); ++pj) {
          candidate.Set(pair_objects[pi], pair_targets[pj],
                        polished->layout.At(static_cast<int>(pi),
                                            static_cast<int>(pj)));
        }
      }
      // Only the pair's columns changed; everything else keeps its µ.
      double new_max = 0.0;
      for (int j = 0; j < m; ++j) {
        const double v =
            in_pair[static_cast<size_t>(j)]
                ? model.TargetUtilization(problem.workloads, candidate, j)
                : mu[static_cast<size_t>(j)];
        new_max = std::max(new_max, v);
      }
      const double gain = cur_max - new_max;
      if (gain > best_gain) {
        best_gain = gain;
        best_layout = std::move(candidate);
        have_best = true;
      }
    }

    ++out.coordination_rounds;
    if (!have_best || best_gain <= options_.gain_tolerance * cur_max) break;
    layout = std::move(best_layout);
    ++out.accepted_moves;
  }
  out.coordination_seconds = SecondsSince(t0);

  // ---- Assemble ----
  out.utilizations = model.Utilizations(problem.workloads, layout);
  out.max_utilization =
      *std::max_element(out.utilizations.begin(), out.utilizations.end());
  for (FleetShardInfo& sh : shards) {
    sh.max_utilization = 0.0;
    for (const int t : sh.targets) {
      sh.max_utilization =
          std::max(sh.max_utilization, out.utilizations[static_cast<size_t>(t)]);
    }
  }
  out.feasible = layout.IsValid(problem.object_sizes, capacities);
  out.shards = std::move(shards);
  out.layout = std::move(layout);
  return out;
}

}  // namespace ldb
