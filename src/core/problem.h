#ifndef LAYOUTDB_CORE_PROBLEM_H_
#define LAYOUTDB_CORE_PROBLEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/constraints.h"
#include "model/cost_model.h"
#include "model/target_model.h"
#include "model/workload.h"
#include "solver/layout_nlp.h"
#include "util/status.h"
#include "workload/catalog.h"

namespace ldb {

/// Advisor-facing description of one storage target: capacity, the
/// calibrated cost model for its device type, and its internal striping.
struct AdvisorTarget {
  std::string name;
  int64_t capacity_bytes = 0;
  const CostModel* cost_model = nullptr;
  int num_members = 1;
  int64_t stripe_bytes = 64 * 1024;
  RaidLevel raid_level = RaidLevel::kRaid0;
};

/// The database object layout problem (paper Definition 1): N objects with
/// sizes and workload descriptions, M targets with capacities and
/// performance models. This is the single input to the layout advisor.
struct LayoutProblem {
  std::vector<std::string> object_names;
  std::vector<int64_t> object_sizes;
  std::vector<ObjectKind> object_kinds;
  WorkloadSet workloads;
  std::vector<AdvisorTarget> targets;
  int64_t lvm_stripe_bytes = 1024 * 1024;  ///< stripe size of the LVM that
                                           ///< will implement the layout
  /// Administrative constraints (pinning / separation); empty = none.
  PlacementConstraints constraints;

  int num_objects() const { return static_cast<int>(object_sizes.size()); }
  int num_targets() const { return static_cast<int>(targets.size()); }

  /// Checks internal consistency (sizes/kinds/workloads dimensions, target
  /// fields, total capacity at least total size).
  Status Validate() const;

  /// Target capacities, indexed by target.
  std::vector<int64_t> capacities() const;

  /// Builds the performance model for these targets.
  TargetModel MakeTargetModel() const;

  /// Builds the solver-facing NLP. `model` must outlive the returned
  /// problem (the utilization callback captures it).
  LayoutNlpProblem MakeNlp(const TargetModel* model) const;
};

/// Assembles a LayoutProblem from a catalog, targets, and fitted
/// workload descriptions (one per catalog object).
Result<LayoutProblem> MakeLayoutProblem(const Catalog& catalog,
                                        std::vector<AdvisorTarget> targets,
                                        WorkloadSet workloads,
                                        int64_t lvm_stripe_bytes = 1024 *
                                                                   1024);

/// Converts a regular layout to per-object target lists for the volume
/// manager. Fails if `layout` is not regular or not valid. Administrative
/// pin/separate constraints are policy, not physics: pass
/// `check_placement_constraints = false` for a layout describing a
/// pre-existing on-disk state (e.g. the source of a migration), which may
/// legitimately violate them.
Result<std::vector<std::vector<int>>> LayoutToPlacements(
    const LayoutProblem& problem, const Layout& layout,
    bool check_placement_constraints = true);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_PROBLEM_H_
