#ifndef LAYOUTDB_CORE_HARNESS_H_
#define LAYOUTDB_CORE_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/autopilot.h"
#include "core/migrate.h"
#include "core/problem.h"
#include "model/calibration.h"
#include "storage/fault.h"
#include "storage/storage_system.h"
#include "util/status.h"
#include "workload/catalog.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace ldb {

/// Declarative description of one storage target in an experiment rig:
/// either a group of 15K-RPM disks (RAID0 when members > 1) or an SSD.
struct RigTargetDef {
  std::string name;
  int disk_members = 1;      ///< number of 15K disks grouped together
  bool is_ssd = false;       ///< SSD target instead of disks
  int64_t ssd_capacity_bytes = 0;  ///< SSD capacity (pre-scaling); 0 = default
  RaidLevel raid_level = RaidLevel::kRaid0;  ///< grouping of disk members
};

/// Experiment rig reproducing the paper's testbed in simulation: a set of
/// storage targets built from 18.4 GB 15K-RPM disk models and an optional
/// SSD, calibrated cost models, and the trace→fit→advise→execute pipeline
/// of Sections 5–6.
///
/// `scale` proportionally shrinks database object sizes *and* device
/// capacities, preserving capacity pressure and seek geometry while making
/// simulations fast. Paper scale is 1.0.
class ExperimentRig {
 public:
  /// Builds a rig. Calibrates one cost model per distinct device type
  /// (cached inside the rig).
  static Result<ExperimentRig> Create(Catalog catalog,
                                      std::vector<RigTargetDef> targets,
                                      double scale = 1.0,
                                      uint64_t seed = 42);

  /// Same, with explicit calibration options — grid, parallelism, and the
  /// persistent cost-model cache (`--calibration-cache` in the CLIs). The
  /// rig seed overrides `calibration.seed` so one knob controls a run.
  static Result<ExperimentRig> Create(Catalog catalog,
                                      std::vector<RigTargetDef> targets,
                                      double scale, uint64_t seed,
                                      CalibrationOptions calibration);

  const Catalog& catalog() const { return catalog_; }
  int num_targets() const { return static_cast<int>(targets_.size()); }
  double scale() const { return scale_; }

  /// A fresh storage system with quiescent devices for one measured run.
  std::unique_ptr<StorageSystem> MakeSystem() const;

  /// Advisor-facing target descriptions (capacities, cost models).
  std::vector<AdvisorTarget> AdvisorTargets() const;

  /// Executes the given workloads under `layout` (must be regular and
  /// valid) on a fresh system; returns the measured results. Exactly one
  /// of `olap`/`oltp` may be null; with both set, runs the consolidation
  /// protocol (OLTP until OLAP completes).
  Result<RunResult> Execute(const Layout& layout, const OlapSpec* olap,
                            const OltpSpec* oltp,
                            double oltp_duration_s = 0.0) const;

  /// Execute with a deterministic fault plan armed on the fresh system
  /// before the run starts (fault times are relative to run start). An
  /// empty plan reproduces Execute exactly — the differential baseline the
  /// fault tests pin down. The run's FaultStats land in RunResult::faults.
  Result<RunResult> ExecuteWithFaults(const Layout& layout,
                                      const OlapSpec* olap,
                                      const OltpSpec* oltp,
                                      const FaultPlan& plan,
                                      double oltp_duration_s = 0.0) const;

  /// Executes the workloads while an online migration carries the layout
  /// from `from` to `to` in the background (both must be regular). Faults
  /// compose: the plan is armed on the same system, so a target can die
  /// mid-copy. With `from == to` the migration is an empty plan and the run
  /// reproduces Execute bit for bit.
  Result<MigrationRunReport> ExecuteWithMigration(
      const Layout& from, const Layout& to, const OlapSpec* olap,
      const OltpSpec* oltp, const FaultPlan& faults,
      const MigrateOptions& options, double oltp_duration_s = 0.0) const;

  /// Executes the workloads with the closed-loop layout autopilot engaged:
  /// `layout` is deployed, `reference` is the workload set it was advised
  /// for, and the monitor/drift/gate loop re-advises and migrates online
  /// when the live workload departs from the reference. Faults compose on
  /// the same system. With drift disabled (threshold = inf) the run is
  /// bit-identical to Execute(layout, ...).
  Result<AutopilotReport> ExecuteWithAutopilot(
      const Layout& layout, WorkloadSet reference, const OlapSpec* olap,
      const OltpSpec* oltp, const FaultPlan& faults,
      const AutopilotOptions& options, double oltp_duration_s = 0.0) const;

  /// The paper's workload-characterization pipeline (Section 5.1): runs
  /// the workloads under `trace_layout` with tracing enabled and fits
  /// Rome-style workload descriptions from the trace.
  Result<WorkloadSet> FitWorkloads(const Layout& trace_layout,
                                   const OlapSpec* olap,
                                   const OltpSpec* oltp,
                                   double oltp_duration_s = 0.0) const;

  /// Builds the layout problem from fitted workloads.
  Result<LayoutProblem> MakeProblem(WorkloadSet workloads) const;

 private:
  ExperimentRig() = default;

  Catalog catalog_;
  std::vector<RigTargetDef> defs_;
  std::vector<TargetSpec> target_specs_;  ///< prototypes owned below
  std::vector<std::unique_ptr<BlockDevice>> prototypes_;
  std::vector<std::string> target_names_;
  CostModelRegistry cost_models_;
  std::vector<RigTargetDef> targets_;
  double scale_ = 1.0;
  uint64_t seed_ = 42;
};

}  // namespace ldb

#endif  // LAYOUTDB_CORE_HARNESS_H_
