#include "core/initial.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/table.h"

namespace ldb {

Result<Layout> InitialLayout(const LayoutProblem& problem) {
  LDB_RETURN_IF_ERROR(problem.Validate());
  const int n = problem.num_objects();
  const int m = problem.num_targets();

  // Objects in decreasing order of total request rate; ties by size
  // (larger first) so big cold objects are placed while space is plentiful.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double ra = problem.workloads[static_cast<size_t>(a)].total_rate();
    const double rb = problem.workloads[static_cast<size_t>(b)].total_rate();
    if (ra != rb) return ra > rb;
    return problem.object_sizes[static_cast<size_t>(a)] >
           problem.object_sizes[static_cast<size_t>(b)];
  });

  Layout layout(n, m);
  std::vector<double> assigned_rate(static_cast<size_t>(m), 0.0);
  std::vector<int64_t> remaining = problem.capacities();

  // Track single-target placements for separation checks.
  std::vector<int> placed_on(static_cast<size_t>(n), -1);
  for (int i : order) {
    const int64_t size = problem.object_sizes[static_cast<size_t>(i)];
    const std::vector<int>& allowed = problem.constraints.AllowedFor(i);
    int best = -1;
    for (int j = 0; j < m; ++j) {
      if (remaining[static_cast<size_t>(j)] < size) continue;
      if (!allowed.empty() &&
          std::find(allowed.begin(), allowed.end(), j) == allowed.end()) {
        continue;
      }
      bool separated_ok = true;
      for (const auto& [a, b] : problem.constraints.separate) {
        const int partner = a == i ? b : (b == i ? a : -1);
        if (partner >= 0 && placed_on[static_cast<size_t>(partner)] == j) {
          separated_ok = false;
          break;
        }
      }
      if (!separated_ok) continue;
      if (best < 0 || assigned_rate[static_cast<size_t>(j)] <
                          assigned_rate[static_cast<size_t>(best)]) {
        best = j;
      }
    }
    if (best < 0) {
      return Status::Infeasible(StrFormat(
          "object %s (%lld bytes) fits on no target",
          problem.object_names[static_cast<size_t>(i)].c_str(),
          static_cast<long long>(size)));
    }
    layout.Set(i, best, 1.0);
    placed_on[static_cast<size_t>(i)] = best;
    assigned_rate[static_cast<size_t>(best)] +=
        problem.workloads[static_cast<size_t>(i)].total_rate();
    remaining[static_cast<size_t>(best)] -= size;
  }
  return layout;
}

}  // namespace ldb
