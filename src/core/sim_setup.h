#ifndef LAYOUTDB_CORE_SIM_SETUP_H_
#define LAYOUTDB_CORE_SIM_SETUP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "storage/storage_system.h"
#include "util/status.h"
#include "workload/spec.h"

namespace ldb {

/// A simulated StorageSystem rebuilt from a calibrated LayoutProblem.
/// The prototypes own the device models the system was constructed from;
/// keep the bundle alive as long as the system runs.
struct RebuiltSystem {
  std::vector<std::unique_ptr<BlockDevice>> prototypes;
  std::vector<TargetSpec> specs;
  std::unique_ptr<StorageSystem> system;
};

/// Rebuilds simulated devices from the problem's calibrated cost-model
/// names. Only the built-in models (disk-15k, disk-7200, ssd) can be
/// reconstructed; problems calibrated against exotic devices must use the
/// rig API instead. Shared by the migration, autopilot, and scenario
/// problem-level simulation entry points.
Result<RebuiltSystem> BuildSystemForProblem(const LayoutProblem& problem);

/// Synthesizes a closed-loop foreground workload from the problem's fitted
/// per-object descriptions: each active object gets one random-access
/// stream whose request size and write fraction match its description;
/// rates set the per-transaction volume (one simulated second of fitted
/// demand per transaction). `label` names the spec ("migrate-fg",
/// "autopilot-fg", ...); `context` prefixes the every-object-idle error.
Result<OltpSpec> SyntheticForeground(const LayoutProblem& problem,
                                     const std::string& label,
                                     const std::string& context);

/// FNV-1a digest of the problem's *physical* state: object count and
/// sizes, LVM stripe size, and each target's name, geometry, and device
/// model. Workload descriptions are deliberately excluded — they drift
/// (that is the autopilot's whole job) without invalidating a journal.
/// The autopilot control journal binds itself to this digest so that
/// `--resume` against a journal recorded for a different problem file is
/// rejected with a diagnostic instead of deploying a meaningless layout.
uint64_t ProblemStateDigest(const LayoutProblem& problem);

}  // namespace ldb

#endif  // LAYOUTDB_CORE_SIM_SETUP_H_
